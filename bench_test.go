package geomds

// This file regenerates every table and figure of the paper's evaluation as
// Go benchmarks, plus ablation benches for the design choices listed in
// DESIGN.md. Each benchmark runs a size-reduced version of the corresponding
// experiment (the shape and the strategy ordering are preserved; absolute
// magnitudes are reported by cmd/metasim at full scale) and reports the
// figure's key quantities via b.ReportMetric.
//
// Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=Figure7 -benchtime=3x

import (
	"context"
	"fmt"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/experiments"
	"geomds/internal/latency"
	"geomds/internal/registry"
	"geomds/internal/workloads"
)

var bctx = context.Background()

// benchConfig is the reduced-size experiment configuration used by every
// figure benchmark.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.SizeFactor = 0.004
	cfg.Nodes = 8
	cfg.SyncInterval = 200 * time.Millisecond
	cfg.FlushInterval = 100 * time.Millisecond
	return cfg
}

// BenchmarkFigure1RemoteMetadataLatency regenerates Fig. 1: the cost of
// posting file metadata from West Europe to a local, same-region and
// geo-distant registry. Reported metrics are the simulated seconds for the
// 5000-file case.
func BenchmarkFigure1RemoteMetadataLatency(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(bctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Local.Seconds(), "local_s")
		b.ReportMetric(last.SameRegion.Seconds(), "same_region_s")
		b.ReportMetric(last.GeoDistant.Seconds(), "geo_distant_s")
	}
}

// BenchmarkFigure5Strategies regenerates Fig. 5: mean node execution time for
// the four strategies at the largest per-node operation count. The reported
// gain is the improvement of the hybrid strategy over the centralized
// baseline (paper: up to 50 % for metadata-intensive workloads).
func BenchmarkFigure5Strategies(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(bctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		biggest := experiments.Figure5OpCounts[len(experiments.Figure5OpCounts)-1]
		central, _ := res.Cell(core.Centralized, biggest)
		hybrid, _ := res.Cell(core.DecentralizedReplicated, biggest)
		b.ReportMetric(central.MeanNodeTime.Seconds(), "centralized_s")
		b.ReportMetric(hybrid.MeanNodeTime.Seconds(), "hybrid_s")
		if central.MeanNodeTime > 0 {
			gain := 100 * (1 - float64(hybrid.MeanNodeTime)/float64(central.MeanNodeTime))
			b.ReportMetric(gain, "gain_%")
		}
	}
}

// BenchmarkFigure6Progress regenerates Fig. 6: the completion-progress curves
// of the centralized and decentralized strategies and the speedup of local
// replication in the 20-70 % band (paper: at least 1.25x).
func BenchmarkFigure6Progress(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(bctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MidBandSpeedup, "dr_vs_dn_speedup")
	}
}

// BenchmarkFigure7Throughput regenerates Fig. 7: metadata throughput while
// scaling from 8 to 128 nodes. Reported metrics are the 128-node throughput
// of the centralized baseline and of the decentralized strategy (paper:
// ~1150 ops/s, near-linear scaling).
func BenchmarkFigure7Throughput(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(bctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := experiments.ScalingNodeCounts[len(experiments.ScalingNodeCounts)-1]
		cen, _ := res.Point(core.Centralized, last)
		dec, _ := res.Point(core.Decentralized, last)
		rep, _ := res.Point(core.Replicated, last)
		b.ReportMetric(cen.Throughput, "centralized_ops_per_s")
		b.ReportMetric(dec.Throughput, "decentralized_ops_per_s")
		b.ReportMetric(rep.Throughput, "replicated_ops_per_s")
	}
}

// BenchmarkFigure8Completion regenerates Fig. 8: completion time of a fixed
// 32 000-operation workload as the node count grows.
func BenchmarkFigure8Completion(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(bctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cen, _ := res.Point(core.Centralized, 128)
		dec, _ := res.Point(core.Decentralized, 128)
		b.ReportMetric(cen.CompletionTime.Seconds(), "centralized_128n_s")
		b.ReportMetric(dec.CompletionTime.Seconds(), "decentralized_128n_s")
	}
}

// BenchmarkFigure9WorkflowShapes regenerates Fig. 9: the DAG construction of
// the two real-life workflows (the paper presents their shapes; the bench
// verifies generation cost and reports the job counts).
func BenchmarkFigure9WorkflowShapes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(float64(row.Jobs), row.Workflow+"_jobs")
		}
	}
}

// BenchmarkTableIScenarios regenerates Table I: the total metadata operation
// counts per scenario derived from the generators.
func BenchmarkTableIScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		rows := tbl.Rows
		mi := rows[len(rows)-1]
		b.ReportMetric(float64(mi.TotalOpsBuzz), "buzzflow_mi_ops")
		b.ReportMetric(float64(mi.TotalOpsMontage), "montage_mi_ops")
	}
}

// BenchmarkFigure10Workflows regenerates Fig. 10: the makespan of BuzzFlow
// and Montage under the Table I scenarios for all four strategies. The
// reported gains compare the hybrid strategy with the centralized baseline in
// the metadata-intensive scenario (paper: 15 % for BuzzFlow, 28 % for
// Montage).
func BenchmarkFigure10Workflows(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(bctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, wf := range experiments.Figure10Workflows {
			central, _ := res.Cell(wf, "MI", core.Centralized)
			hybrid, _ := res.Cell(wf, "MI", core.DecentralizedReplicated)
			if central.Makespan > 0 {
				gain := 100 * (1 - float64(hybrid.Makespan)/float64(central.Makespan))
				b.ReportMetric(gain, wf+"_mi_gain_%")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkAblationLocalReplica measures the read-path speedup of keeping a
// local replica (Dec-Rep) vs pure hashing (Dec-NonRep).
func BenchmarkAblationLocalReplica(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationLocalReplica(bctx, cfg, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "read_speedup")
		b.ReportMetric(res.LocalHitRate*100, "local_hit_%")
	}
}

// BenchmarkAblationLazyVsEager measures the writer-perceived latency benefit
// of lazy batched propagation over eager remote writes.
func BenchmarkAblationLazyVsEager(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationLazyVsEager(bctx, cfg, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WriteSpeedup, "write_speedup")
	}
}

// BenchmarkAblationHashingChurn measures how many placements move when a
// fifth site joins, under modulo vs consistent hashing.
func BenchmarkAblationHashingChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationHashingChurn(20000)
		b.ReportMetric(res.ModuloFraction*100, "modulo_moved_%")
		b.ReportMetric(res.RingFraction*100, "ring_moved_%")
	}
}

// BenchmarkAblationRegistryCapacity measures how the centralized baseline
// saturates with the capacity of its single cache instance while the
// partitioned registry keeps scaling.
func BenchmarkAblationRegistryCapacity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRegistryCapacity(bctx, cfg, cfg.ServiceTime, 16, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CentralizedThroughput, "centralized_ops_per_s")
		b.ReportMetric(res.DecentralizedThroughput, "decentralized_ops_per_s")
	}
}

// BenchmarkAblationScheduler compares locality-aware, round-robin and random
// task placement for a reduced Montage run under the hybrid strategy.
func BenchmarkAblationScheduler(b *testing.B) {
	cfg := benchConfig()
	sc := workloads.Scenario{Name: "bench", OpsPerTask: 4, Compute: 100 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationScheduler(bctx, cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
		for name, makespan := range res.Makespan {
			b.ReportMetric(makespan.Seconds(), name+"_s")
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the metadata operations themselves
// ---------------------------------------------------------------------------

// newMicroService builds a no-latency service for pure-software-path
// micro-benchmarks (encoding, hashing, cache operations).
func newMicroService(b *testing.B, kind core.StrategyKind) core.MetadataService {
	b.Helper()
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(1), latency.WithSleeper(func(time.Duration) {}))
	fabric := core.NewFabric(topo, lat, core.WithCacheCapacity(0, 0))
	svc, err := core.NewService(fabric, kind)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	return svc
}

// BenchmarkMetadataCreate measures the software-path cost of publishing one
// metadata entry under each strategy (latency injection disabled).
func BenchmarkMetadataCreate(b *testing.B) {
	for _, kind := range core.Strategies {
		b.Run(kind.String(), func(b *testing.B) {
			svc := newMicroService(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := registry.NewEntry(fmt.Sprintf("micro/create/%d", i), 1024, "bench",
					registry.Location{Site: cloud.SiteID(i % 4), Node: cloud.NodeID(i % 8)})
				if _, err := svc.Create(bctx, cloud.SiteID(i%4), e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetadataLookup measures the software-path cost of resolving one
// metadata entry under each strategy (latency injection disabled).
func BenchmarkMetadataLookup(b *testing.B) {
	for _, kind := range core.Strategies {
		b.Run(kind.String(), func(b *testing.B) {
			svc := newMicroService(b, kind)
			const preload = 1024
			for i := 0; i < preload; i++ {
				e := registry.NewEntry(fmt.Sprintf("micro/lookup/%d", i), 1024, "bench",
					registry.Location{Site: cloud.SiteID(i % 4), Node: cloud.NodeID(i % 8)})
				if _, err := svc.Create(bctx, cloud.SiteID(i%4), e); err != nil {
					b.Fatal(err)
				}
			}
			if err := svc.Flush(bctx); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("micro/lookup/%d", i%preload)
				if _, err := svc.Lookup(bctx, cloud.SiteID(i%4), name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProvisioning measures the planning cost and the idle-time
// reduction of provenance-driven data provisioning for a Montage run.
func BenchmarkAblationProvisioning(b *testing.B) {
	cfg := benchConfig()
	sc := workloads.Scenario{Name: "bench-prov", OpsPerTask: 6, Compute: 2 * time.Second}
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationProvisioning(cfg, sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Transfers), "transfers")
		b.ReportMetric(res.IdleReduction*100, "idle_reduction_%")
	}
}
