// Multisite example: a real multi-process-style deployment of the metadata
// service. One registry TCP server is started per datacenter (the role
// cmd/metaserver plays in a real deployment), the strategies talk to them
// through rpc clients plugged into the fabric, and a small produce/consume
// workload runs across the four sites.
//
// Run with:
//
//	go run ./examples/multisite
//	go run ./examples/multisite -strategy dn -entries 200
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/memcache"
	"geomds/internal/metrics"
	"geomds/internal/registry"
	"geomds/internal/rpc"
)

func main() {
	var (
		strategyName = flag.String("strategy", "dr", "metadata strategy: c, r, dn or dr")
		entries      = flag.Int("entries", 100, "entries produced per site")
		scale        = flag.Float64("scale", 0.05, "time-compression factor for the injected WAN latency")
	)
	flag.Parse()
	ctx := context.Background()

	kind, err := core.ParseStrategy(*strategyName)
	if err != nil {
		log.Fatal(err)
	}

	topo := cloud.Azure4DC()

	// Start one registry server per datacenter on a local TCP port and dial a
	// client proxy for each — exactly what cmd/metaserver + rpc.Dial do in a
	// real deployment, collapsed into one process for the example.
	proxies := make(map[cloud.SiteID]registry.API, topo.NumSites())
	for _, site := range topo.Sites() {
		inst := registry.NewInstance(site.ID, memcache.New(memcache.Config{}))
		srv := rpc.NewServer(inst, nil)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			log.Fatalf("starting registry for %s: %v", site.Name, err)
		}
		defer srv.Close()
		client, err := rpc.Dial(ctx, addr)
		if err != nil {
			log.Fatalf("dialing registry for %s: %v", site.Name, err)
		}
		defer client.Close()
		proxies[site.ID] = client
		fmt.Printf("registry for %-16s listening on %s\n", site.Name, addr)
	}

	// The fabric charges the WAN latency between sites; the actual storage
	// operations go over the loopback TCP connections to the servers above.
	lat := latency.New(topo, latency.WithScale(*scale), latency.WithSeed(5))
	rec := metrics.NewRecorder()
	rec.SetSimConverter(lat.ToSimulated)
	fabric := core.NewFabric(topo, lat, core.WithInstances(proxies), core.WithRecorder(rec))

	svc, err := core.NewService(fabric, kind)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	dep := cloud.NewDeployment(topo)
	dep.SpreadNodes(topo.NumSites() * 2)

	// Producers: every site publishes its share of entries.
	start := time.Now()
	for _, node := range dep.Nodes() {
		client := core.NewClient(svc, node)
		for i := 0; i < *entries/2; i++ {
			name := fmt.Sprintf("multisite/%s/site%d-node%d/file%04d", kind.Short(), node.Site, node.ID, i)
			if _, err := client.PublishFile(ctx, name, 64<<10, "producer"); err != nil {
				log.Fatalf("publish: %v", err)
			}
		}
	}
	if err := svc.Flush(ctx); err != nil {
		log.Fatal(err)
	}

	// Consumers: every node reads back entries produced by the node "across
	// the ocean" (same position, different site).
	misses := 0
	for _, node := range dep.Nodes() {
		peer := dep.Node((node.ID + 2) % cloud.NodeID(dep.NumNodes()))
		for i := 0; i < *entries/2; i++ {
			name := fmt.Sprintf("multisite/%s/site%d-node%d/file%04d", kind.Short(), peer.Site, peer.ID, i)
			if _, err := svc.Lookup(ctx, node.Site, name); err != nil {
				misses++
			}
		}
	}
	elapsed := lat.ToSimulated(time.Since(start))

	summary := rec.Summarize()
	fmt.Printf("\nstrategy %s: %d ops in %.1f simulated seconds (%d unresolved reads)\n",
		kind.String(), summary.Count, elapsed.Seconds(), misses)
	fmt.Printf("  mean op latency %v, p95 %v, %d ops crossed datacenters\n",
		summary.Mean.Round(time.Millisecond), summary.P95.Round(time.Millisecond), summary.RemoteCount)
	for _, site := range topo.Sites() {
		fmt.Printf("  registry at %-16s holds %5d entries\n", site.Name, proxies[site.ID].Len(ctx))
	}
}
