// BuzzFlow example: execute the near-pipelined publication-mining workflow of
// the paper (Fig. 9a) under all four metadata management strategies and show
// how the choice of strategy changes both the makespan and the mix of
// local/remote metadata operations.
//
// Run with:
//
//	go run ./examples/buzzflow
//	go run ./examples/buzzflow -scenario MI -scheduler locality
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/metrics"
	"geomds/internal/workflow"
	"geomds/internal/workloads"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "SS", "Table I scenario: SS, CI or MI")
		nodes        = flag.Int("nodes", 16, "number of execution nodes")
		scale        = flag.Float64("scale", 0.02, "time-compression factor")
		width        = flag.Int("width", 8, "tasks per parallel BuzzFlow stage (16 reproduces the paper's 72-job run)")
		schedName    = flag.String("scheduler", "round-robin", "task scheduler: round-robin or locality")
	)
	flag.Parse()

	var scenario workloads.Scenario
	found := false
	for _, sc := range workloads.Scenarios {
		if sc.Short() == *scenarioName {
			scenario, found = sc, true
		}
	}
	if !found {
		log.Fatalf("unknown scenario %q", *scenarioName)
	}
	var sched workflow.Scheduler = workflow.RoundRobinScheduler{}
	if *schedName == "locality" {
		sched = workflow.LocalityScheduler{}
	}

	cfg := workloads.DefaultBuzzFlowConfig(scenario)
	cfg.Width = *width
	shape := workloads.BuzzFlow(cfg)
	stats, err := shape.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BuzzFlow (%s): %d jobs in a %d-level near-pipeline, ~%d metadata operations\n",
		scenario.Name, stats.Tasks, stats.Levels, stats.MetadataOps)

	for _, kind := range core.Strategies {
		if err := run(cfg, kind, sched, *nodes, *scale); err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
	}
}

func run(cfg workloads.WorkflowConfig, kind core.StrategyKind, sched workflow.Scheduler, nodes int, scale float64) error {
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithScale(scale), latency.WithSeed(23))
	rec := metrics.NewRecorder()
	rec.SetSimConverter(lat.ToSimulated)
	fabric := core.NewFabric(topo, lat, core.WithRecorder(rec))
	svc, err := core.NewService(fabric, kind)
	if err != nil {
		return err
	}
	defer svc.Close()

	dep := cloud.NewDeployment(topo)
	dep.SpreadNodes(nodes)

	wf := workloads.BuzzFlow(cfg)
	plan, err := sched.Schedule(wf, dep)
	if err != nil {
		return err
	}
	eng := workflow.NewEngine(dep, svc, lat, workflow.EngineConfig{})
	res, err := eng.Run(context.Background(), wf, plan)
	if err != nil {
		return err
	}

	summary := rec.Summarize()
	remotePct := 0.0
	if summary.Count > 0 {
		remotePct = 100 * float64(summary.RemoteCount) / float64(summary.Count)
	}
	fmt.Printf("  %-22s makespan %7.1f s   metadata ops %6d (%.0f%% remote)   median op %v\n",
		kind.String(), res.Makespan.Seconds(), res.MetadataOps(), remotePct, summary.Median)
	return nil
}
