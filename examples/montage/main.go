// Montage example: execute the astronomy mosaic workflow of the paper
// (Fig. 9b) across four datacenters and compare the makespan under the
// centralized baseline and the hybrid (decentralized + locally replicated)
// strategy — the comparison behind the paper's headline 28 % improvement.
//
// Run with:
//
//	go run ./examples/montage
//	go run ./examples/montage -scenario MI -nodes 32
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/workflow"
	"geomds/internal/workloads"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "SS", "Table I scenario: SS, CI or MI")
		nodes        = flag.Int("nodes", 16, "number of execution nodes spread over the 4 datacenters")
		scale        = flag.Float64("scale", 0.02, "time-compression factor (0.02 = 50x faster than real time)")
		width        = flag.Int("width", 12, "tasks per parallel Montage stage (52 reproduces the paper's 160-job run)")
	)
	flag.Parse()

	var scenario workloads.Scenario
	found := false
	for _, sc := range workloads.Scenarios {
		if sc.Short() == *scenarioName {
			scenario, found = sc, true
		}
	}
	if !found {
		log.Fatalf("unknown scenario %q", *scenarioName)
	}

	cfg := workloads.DefaultMontageConfig(scenario)
	cfg.Width = *width
	wf := workloads.Montage(cfg)
	stats, err := wf.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Montage (%s): %d jobs, %d files, ~%d metadata operations\n",
		scenario.Name, stats.Tasks, stats.Files, stats.MetadataOps)

	var baseline time.Duration
	for _, kind := range []core.StrategyKind{core.Centralized, core.DecentralizedReplicated} {
		makespan, err := run(wf, kind, *nodes, *scale)
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		fmt.Printf("  %-22s makespan %7.1f s", kind.String(), makespan.Seconds())
		if kind == core.Centralized {
			baseline = makespan
			fmt.Println("  (baseline)")
		} else {
			gain := 100 * (1 - makespan.Seconds()/baseline.Seconds())
			fmt.Printf("  (%.0f%% faster than the baseline)\n", gain)
		}
	}
}

func run(wf *workflow.Workflow, kind core.StrategyKind, nodes int, scale float64) (time.Duration, error) {
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithScale(scale), latency.WithSeed(11))
	fabric := core.NewFabric(topo, lat)
	svc, err := core.NewService(fabric, kind)
	if err != nil {
		return 0, err
	}
	defer svc.Close()

	dep := cloud.NewDeployment(topo)
	dep.SpreadNodes(nodes)

	// The paper distributes the jobs evenly across the nodes.
	sched, err := (workflow.RoundRobinScheduler{}).Schedule(wf, dep)
	if err != nil {
		return 0, err
	}
	eng := workflow.NewEngine(dep, svc, lat, workflow.EngineConfig{})
	res, err := eng.Run(context.Background(), wf, sched)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
