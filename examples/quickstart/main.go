// Quickstart: build a 4-datacenter metadata fabric, publish and look up file
// metadata under each of the four strategies, and print what each one costs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

func main() {
	// The paper's testbed: North Europe, West Europe, South Central US and
	// East US, with realistic inter-datacenter latencies. Scale 0.1 runs the
	// demo 10x faster than real time while preserving every ratio.
	topo := cloud.Azure4DC()

	for _, kind := range core.Strategies {
		if err := demo(topo, kind); err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
	}
}

func demo(topo *cloud.Topology, kind core.StrategyKind) error {
	// Every operation below runs under this deadline; if a strategy ever
	// stalled, the demo would fail with context.DeadlineExceeded instead of
	// hanging.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	lat := latency.New(topo, latency.WithScale(0.1), latency.WithSeed(7))
	rec := metrics.NewRecorder()
	rec.SetSimConverter(lat.ToSimulated)

	// One registry instance per datacenter, backed by the in-memory cache tier.
	fabric := core.NewFabric(topo, lat, core.WithRecorder(rec))

	// The architecture controller builds any of the four strategies over the
	// same fabric.
	svc, err := core.NewService(fabric, kind)
	if err != nil {
		return err
	}
	defer svc.Close()

	// Two execution nodes: a producer in West Europe, a consumer in East US.
	dep := cloud.NewDeployment(topo)
	weu, _ := topo.SiteByName(cloud.SiteWestEU)
	eus, _ := topo.SiteByName(cloud.SiteEastUS)
	producer := core.NewClient(svc, dep.Node(dep.AddNode(weu.ID)))
	consumer := core.NewClient(svc, dep.Node(dep.AddNode(eus.ID)))

	// The producer publishes metadata for a handful of small files, the way a
	// workflow task publishes its outputs.
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("quickstart/%s/result-%02d.dat", kind.Short(), i)
		if _, err := producer.PublishFile(ctx, name, 256<<10, "task-producer"); err != nil {
			return fmt.Errorf("publish %s: %w", name, err)
		}
	}

	// Make any asynchronous propagation (sync agent, lazy batches) converge
	// so the consumer is guaranteed to see the entries.
	if err := svc.Flush(ctx); err != nil {
		return err
	}

	// The consumer, an ocean away, resolves the files it needs.
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("quickstart/%s/result-%02d.dat", kind.Short(), i)
		e, err := consumer.LocateFile(ctx, name)
		if err != nil {
			return fmt.Errorf("locate %s: %w", name, err)
		}
		if best, ok := e.NearestCopy(topo, eus.ID); ok && i == 0 {
			fmt.Printf("  nearest copy of %s is in %s\n", e.Name, topo.Site(best.Site).Name)
		}
		// Register that the consumer now also holds a copy (e.g. after a
		// transfer), enriching provenance for later tasks.
		if _, err := consumer.RegisterCopy(ctx, name); err != nil && !errors.Is(err, core.ErrNotFound) {
			return fmt.Errorf("register copy %s: %w", name, err)
		}
	}

	writes := rec.SummarizeKind(metrics.OpWrite)
	reads := rec.SummarizeKind(metrics.OpRead)
	fmt.Printf("%-22s mean write %8s   mean read %8s   remote ops %d/%d\n",
		kind.String(),
		writes.Mean.Round(time.Millisecond), reads.Mean.Round(time.Millisecond),
		rec.Summarize().RemoteCount, rec.Summarize().Count)
	return nil
}

// Compile-time reminder that registry entries are plain values a client
// application can construct directly as well.
var _ = registry.Entry{}
