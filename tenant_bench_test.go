package geomds

// This file benchmarks multi-tenant admission control under the workload it
// exists for: a noisy neighbor. A 4-shard registry tier is served over TCP by
// an rpc.Server while two well-behaved tenants run a read-heavy mix at the
// benchmark's pace and one abusive tenant hammers the server flat-out from
// its own connections. Three sub-benchmarks run the identical well-behaved
// mix; only what rides alongside it changes:
//
//   - isolated: no abuser. The well-behaved p99 with the tier to themselves —
//     the number the other two variants are judged against.
//   - noisy_unlimited: the abuser runs with admission control off. Its
//     flat-out stream queues on the same shard slots, so the well-behaved
//     p99 fattens — the failure mode this PR removes.
//   - noisy_limited: the same abuser, but the server enforces a token-bucket
//     quota on it (well-behaved tenants stay unlimited). The abuser is
//     refused at the frame-decode boundary, its rejections land in
//     limits_rejected_total, it backs off for the server's retry-after hint
//     the way any client library would, and the well-behaved p99 recovers.
//
// Run with:
//
//	go test -bench=TenantNoisyNeighbor -benchtime=2000x
//	go test -bench=TenantNoisyNeighbor -benchtime=2000x -benchjson .
//
// The recorded BENCH_tenant_{isolated,noisy_unlimited,noisy_limited}.json
// ride the CI perf-trajectory gate (cmd/benchdiff), whose p99 check pins the
// limited variant's tail against the committed no-abuser-shaped baseline: a
// change that lets the abuser's load leak past admission control again fails
// the push. On runs long enough to measure (>=1000 well-behaved ops) the
// parent benchmark also asserts the limited p99 beats the unlimited p99
// outright.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/experiments"
	"geomds/internal/limits"
	"geomds/internal/memcache"
	"geomds/internal/metrics"
	"geomds/internal/registry"
	"geomds/internal/rpc"
)

// runTenantBench runs the well-behaved mix against a 4-shard tier served
// over TCP, optionally alongside an abusive tenant, and returns the recorded
// well-behaved result. Only well-behaved operations are measured: the bench
// is about what the abuser does to everyone else, not about the abuser.
func runTenantBench(b *testing.B, name string, abuser bool, lcfg *limits.Config) experiments.BenchResult {
	const (
		nShards         = 4
		preload         = 1024
		goodTenants     = 2
		abuserGoroutine = 16
	)
	apis := make([]registry.API, nShards)
	for i := range apis {
		apis[i] = registry.NewInstance(1, memcache.New(memcache.Config{
			ServiceTime: benchShardServiceTime,
			Concurrency: benchShardConcurrency,
		}))
	}
	tier, err := registry.NewRouter(1, apis, registry.WithRouterMetrics(nil))
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()

	reg := metrics.NewRegistry()
	srvOpts := []rpc.ServerOption{rpc.WithServerMetrics(reg)}
	if lcfg != nil {
		srvOpts = append(srvOpts, rpc.WithServerLimits(limits.New(*lcfg, reg)))
	}
	srv := rpc.NewServer(tier, nil, srvOpts...)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	dial := func(tenant string) *rpc.Client {
		c, err := rpc.Dial(bctx, addr, rpc.WithTenant(tenant), rpc.WithPoolSize(4))
		if err != nil {
			b.Fatalf("dial as %s: %v", tenant, err)
		}
		return c
	}

	// Preload through the wire so every tenant's Gets hit existing entries.
	loader := dial("")
	entries := make([]registry.Entry, preload)
	for i := range entries {
		entries[i] = registry.NewEntry(fmt.Sprintf("bench/tenant/preload/%d", i), 4096, "bench",
			registry.Location{Site: 1, Node: cloud.NodeID(i % 16)})
	}
	if _, err := loader.PutMany(bctx, entries); err != nil {
		b.Fatal(err)
	}
	loader.Close()

	clients := make([]*rpc.Client, goodTenants)
	for i := range clients {
		clients[i] = dial(fmt.Sprintf("tenant-%d", i))
		defer clients[i].Close()
	}

	// The abuser hammers Gets flat-out on its own connections until the
	// measured run ends. Overload rejections are the mechanism under test,
	// so they are expected (and counted); any other error is a real failure.
	var (
		stop         = make(chan struct{})
		abuserWG     sync.WaitGroup
		abuserOps    atomic.Int64
		abuserErrs   atomic.Int64
		abuserDenied atomic.Int64
	)
	if abuser {
		ac := dial("abuser")
		defer ac.Close()
		abuserWG.Add(abuserGoroutine)
		for g := 0; g < abuserGoroutine; g++ {
			go func(g int) {
				defer abuserWG.Done()
				rng := rand.New(rand.NewSource(1000 + int64(g)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, err := ac.Get(bctx, fmt.Sprintf("bench/tenant/preload/%d", rng.Intn(preload)))
					switch {
					case err == nil:
						abuserOps.Add(1)
					case errors.Is(err, limits.ErrOverloaded):
						abuserDenied.Add(1)
						// Back off for the server's retry-after hint (capped):
						// even a greedy tenant's client library honors the
						// hint rather than hot-spinning rejected frames —
						// which would turn the quota test into a decode-CPU
						// stress test.
						d, _ := limits.RetryAfter(err)
						if d <= 0 || d > 100*time.Millisecond {
							d = 100 * time.Millisecond
						}
						select {
						case <-stop:
							return
						case <-time.After(d):
						}
					default:
						abuserErrs.Add(1)
					}
				}
			}(g)
		}
	}

	rec := experiments.NewBenchRecorder(name)
	var (
		workerSeq atomic.Int64
		seq       atomic.Int64
		goodFails atomic.Int64
	)
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		worker := workerSeq.Add(1)
		client := clients[int(worker)%goodTenants]
		rng := rand.New(rand.NewSource(42 + worker))
		for pb.Next() {
			i := seq.Add(1)
			key := fmt.Sprintf("bench/tenant/preload/%d", rng.Intn(preload))
			opStart := time.Now()
			if i%10 == 0 {
				if _, err := client.AddLocation(bctx, key,
					registry.Location{Site: 1, Node: cloud.NodeID(i % 16)}); err != nil {
					goodFails.Add(1)
				}
			} else {
				if _, err := client.Get(bctx, key); err != nil {
					goodFails.Add(1)
				}
			}
			rec.Observe(time.Since(opStart))
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	abuserWG.Wait()

	if n := goodFails.Load(); n > 0 {
		b.Fatalf("%d well-behaved operations failed; only the abuser may be refused", n)
	}
	if n := abuserErrs.Load(); n > 0 {
		b.Fatalf("%d abuser operations failed with something other than overloaded", n)
	}

	res := rec.Result(elapsed)
	rejected := reg.Snapshot().Counters["limits_rejected_total"]
	switch {
	// On a short calibration run the abuser may not exhaust its burst before
	// the measurement ends; >=1000 well-behaved ops (the -benchtime=2000x
	// measured mode) is plenty of time for the flood to hit the bucket.
	case lcfg != nil && abuser && rejected == 0 && res.Ops >= 1000:
		b.Error("admission control enforced nothing: limits_rejected_total = 0")
	case lcfg == nil && rejected != 0:
		b.Errorf("no limiter configured yet %d rejections were counted", rejected)
	}
	b.ReportMetric(res.OpsPerSec, "ops/s")
	b.ReportMetric(float64(res.LatencyNs.P99)/1e6, "p99_ms")
	if abuser {
		b.ReportMetric(float64(abuserOps.Load())/elapsed.Seconds(), "abuser_ops/s")
		b.ReportMetric(float64(rejected), "abuser_rejected")
	}
	if *benchJSONDir != "" {
		path, err := res.WriteJSON(*benchJSONDir)
		if err != nil {
			b.Fatalf("writing benchmark JSON: %v", err)
		}
		b.Logf("machine-readable result written to %s", path)
	}
	return res
}

// BenchmarkTenantNoisyNeighbor measures the well-behaved tenants' latency
// with no abuser, with an unthrottled abuser, and with the abuser held to a
// token-bucket quota, and on runs long enough for a stable p99 asserts that
// admission control actually protects the neighbors: the whole point of
// refusing the abuser at the frame boundary is that its load stops setting
// everyone else's tail.
func BenchmarkTenantNoisyNeighbor(b *testing.B) {
	// The abuser's quota: enough to keep it alive (its dial handshake and a
	// trickle of Gets succeed) while refusing the flood. Well-behaved tenants
	// and the default tenant stay unlimited.
	limited := limits.Config{
		Tenants: map[string]limits.TenantLimit{
			"abuser": {OpsPerSec: 100, OpsBurst: 100},
		},
	}
	results := make(map[string]experiments.BenchResult, 3)
	b.Run("isolated", func(b *testing.B) {
		results["isolated"] = runTenantBench(b, "tenant_isolated", false, nil)
	})
	b.Run("noisy_unlimited", func(b *testing.B) {
		results["noisy_unlimited"] = runTenantBench(b, "tenant_noisy_unlimited", true, nil)
	})
	b.Run("noisy_limited", func(b *testing.B) {
		results["noisy_limited"] = runTenantBench(b, "tenant_noisy_limited", true, &limited)
	})

	unlimited, isolated := results["noisy_unlimited"], results["isolated"]
	limitedRes := results["noisy_limited"]
	if isolated.Ops < 1000 || unlimited.Ops < 1000 || limitedRes.Ops < 1000 {
		return // too short for a trustworthy p99; -benchtime=2000x is the measured mode
	}
	b.Logf("well-behaved p99: isolated %.2f ms, noisy unlimited %.2f ms, noisy limited %.2f ms",
		float64(isolated.LatencyNs.P99)/1e6, float64(unlimited.LatencyNs.P99)/1e6,
		float64(limitedRes.LatencyNs.P99)/1e6)
	if limitedRes.LatencyNs.P99 >= unlimited.LatencyNs.P99 {
		b.Errorf("limited p99 %.2f ms did not beat the unthrottled p99 %.2f ms",
			float64(limitedRes.LatencyNs.P99)/1e6, float64(unlimited.LatencyNs.P99)/1e6)
	}
}
