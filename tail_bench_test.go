package geomds

// This file benchmarks the tail-latency machinery under the workload it was
// built for: a Zipfian-skewed read mix on a 4-shard, 2-way replicated tier
// where one shard answers reads slowly (a straggler, not a failure — its
// breaker stays closed, so failover never kicks in). Two sub-benchmarks run
// the identical mix:
//
//   - baseline: the feature-off router. Every read homed on the straggler
//     waits out its full delay, so the straggler's key share sets the p99.
//   - hedged: hedged reads (fixed ~1ms threshold via the clamp band) plus
//     read coalescing. Reads stuck on the straggler re-issue to the healthy
//     replica after the threshold and take the faster answer; concurrent
//     reads of the same hot key share one downstream call.
//
// Run with:
//
//	go test -bench=TailLatencySkewedMix -benchtime=2000x
//	go test -bench=TailLatencySkewedMix -benchtime=2000x -benchjson .
//
// The recorded BENCH_tail_zipfian_{baseline,hedged}.json ride the CI
// perf-trajectory gate (cmd/benchdiff), which now checks p99 latency next to
// ops/s — so the hedging win is pinned against a committed baseline, and a
// change that quietly fattens the tail fails the push. On runs long enough
// to measure (>=1000 ops per variant) the parent benchmark also asserts the
// hedged p99 beats the feature-off p99 outright.

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/experiments"
	"geomds/internal/memcache"
	"geomds/internal/registry"
	"geomds/internal/workloads"
)

// benchSlowShard wraps a shard instance and stretches every Get by a fixed
// delay — a straggler replica (overloaded box, GC pause, noisy neighbor)
// that still answers correctly and so never trips the health breaker. The
// sleep respects context cancellation so a hedged winner can cut the
// straggler's leg short.
type benchSlowShard struct {
	registry.API
	delay time.Duration
}

func (s *benchSlowShard) Get(ctx context.Context, name string) (registry.Entry, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return registry.Entry{}, ctx.Err()
	}
	return s.API.Get(ctx, name)
}

// runTailBench runs the Zipfian read mix against a 4-shard, 2-way replicated
// tier with one straggler shard, with or without the tail-latency features,
// and returns the recorded result.
func runTailBench(b *testing.B, name string, hedged bool) experiments.BenchResult {
	const (
		nShards           = 4
		replication       = 2
		straggler         = 2
		stragglerGetDelay = 10 * time.Millisecond
		hedgeAfter        = time.Millisecond
		preload           = 1024
	)
	apis := make([]registry.API, nShards)
	for i := range apis {
		inst := registry.NewInstance(1, memcache.New(memcache.Config{
			ServiceTime: benchShardServiceTime,
			Concurrency: benchShardConcurrency,
			Metrics:     nil,
		}))
		if i == straggler {
			apis[i] = &benchSlowShard{API: inst, delay: stragglerGetDelay}
		} else {
			apis[i] = inst
		}
	}
	opts := []registry.RouterOption{
		registry.WithRouterMetrics(nil),
		registry.WithRouterReplication(replication),
		registry.WithRouterHealth(3, 5*time.Millisecond),
	}
	if hedged {
		// min == max pins the hedge threshold at 1ms regardless of what the
		// latency histogram has seen, keeping the two variants comparable
		// from the first operation.
		opts = append(opts,
			registry.WithRouterHedgedReads(hedgeAfter, hedgeAfter),
			registry.WithRouterReadCoalescing())
	}
	tier, err := registry.NewRouter(1, apis, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()

	entries := make([]registry.Entry, preload)
	for i := range entries {
		entries[i] = registry.NewEntry(fmt.Sprintf("bench/tail/preload/%d", i), 4096, "bench",
			registry.Location{Site: 1, Node: cloud.NodeID(i % 16)})
	}
	if _, err := tier.PutMany(bctx, entries); err != nil {
		b.Fatal(err)
	}

	sampler := workloads.NewKeySampler(workloads.KeyDist{Kind: workloads.KeyZipfian}, preload)
	rec := experiments.NewBenchRecorder(name)
	var (
		workerSeq atomic.Int64
		seq       atomic.Int64
		readFails atomic.Int64
	)
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(42 + workerSeq.Add(1)))
		for pb.Next() {
			i := seq.Add(1)
			key := fmt.Sprintf("bench/tail/preload/%d", sampler.Rank(rng, preload))
			opStart := time.Now()
			if i%10 == 0 {
				if _, err := tier.AddLocation(bctx, key,
					registry.Location{Site: 1, Node: cloud.NodeID(i % 16)}); err != nil {
					b.Errorf("addlocation %q: %v", key, err)
				}
			} else {
				if _, err := tier.Get(bctx, key); err != nil {
					readFails.Add(1)
				}
			}
			rec.Observe(time.Since(opStart))
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if n := readFails.Load(); n > 0 {
		b.Fatalf("%d reads failed; the straggler is slow, not broken", n)
	}

	res := rec.Result(elapsed)
	b.ReportMetric(res.OpsPerSec, "ops/s")
	b.ReportMetric(float64(res.LatencyNs.P99)/1e6, "p99_ms")
	if *benchJSONDir != "" {
		path, err := res.WriteJSON(*benchJSONDir)
		if err != nil {
			b.Fatalf("writing benchmark JSON: %v", err)
		}
		b.Logf("machine-readable result written to %s", path)
	}
	return res
}

// BenchmarkTailLatencySkewedMix measures the Zipfian mix with the
// tail-latency features off (baseline) and on (hedged reads + coalescing),
// and on runs long enough for a stable p99 asserts that hedging actually cut
// the tail: the whole point of re-issuing a slow read to the healthy replica
// is that the straggler's delay stops being the p99.
func BenchmarkTailLatencySkewedMix(b *testing.B) {
	results := make(map[string]experiments.BenchResult, 2)
	b.Run("baseline", func(b *testing.B) {
		results["baseline"] = runTailBench(b, "tail_zipfian_baseline", false)
	})
	b.Run("hedged", func(b *testing.B) {
		results["hedged"] = runTailBench(b, "tail_zipfian_hedged", true)
	})

	base, hedged := results["baseline"], results["hedged"]
	if base.Ops < 1000 || hedged.Ops < 1000 {
		return // too short for a trustworthy p99; -benchtime=2000x is the measured mode
	}
	b.Logf("p99 baseline %.2f ms -> hedged %.2f ms",
		float64(base.LatencyNs.P99)/1e6, float64(hedged.LatencyNs.P99)/1e6)
	if hedged.LatencyNs.P99 >= base.LatencyNs.P99 {
		b.Errorf("hedged p99 %.2f ms did not beat the feature-off p99 %.2f ms",
			float64(hedged.LatencyNs.P99)/1e6, float64(base.LatencyNs.P99)/1e6)
	}
}
