package geomds

// This file benchmarks the replicated registry tier under fault injection:
// a 4-shard, 2-way replicated site runs the paper's metadata-intensive mix
// while one shard is killed mid-run. It is the availability companion to
// shard_bench_test.go — same capacity model, same operation mix — and the
// acceptance harness for the failover routing layer:
//
//   - the workload completes: reads of the dead shard's keys succeed via the
//     replica list, writes re-route to healthy successors once the breaker
//     opens, and only the handful of writes in flight while the breaker was
//     still counting failures may error (they are reported un-acknowledged);
//   - zero acknowledged writes are lost: after the run, every create the
//     benchmark got an acknowledgement for is read back through the router
//     with the shard still dead.
//
// Run with:
//
//	go test -bench=ReplicatedTierFailover -benchtime=2000x
//	go test -bench=ReplicatedTierFailover -benchtime=2000x -benchjson .
//
// The recorded BENCH_replicated_tier_failover.json rides the same CI
// perf-trajectory gate as the sharded-tier benchmark (cmd/benchdiff), so the
// cost of replication and failover is measured against a committed baseline
// on every push, not guessed.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/experiments"
	"geomds/internal/memcache"
	"geomds/internal/metrics"
	"geomds/internal/registry"
	"geomds/internal/store"
)

// benchKillableShard wraps a shard instance and, once killed, answers every
// operation with a transport failure wrapping registry.ErrUnavailable — a
// shard server whose process died mid-run.
type benchKillableShard struct {
	registry.API
	dead atomic.Bool
}

var errBenchShardDown = fmt.Errorf("shard killed mid-benchmark: %w", registry.ErrUnavailable)

func (k *benchKillableShard) Create(ctx context.Context, e registry.Entry) (registry.Entry, error) {
	if k.dead.Load() {
		return registry.Entry{}, errBenchShardDown
	}
	return k.API.Create(ctx, e)
}

func (k *benchKillableShard) Put(ctx context.Context, e registry.Entry) (registry.Entry, error) {
	if k.dead.Load() {
		return registry.Entry{}, errBenchShardDown
	}
	return k.API.Put(ctx, e)
}

func (k *benchKillableShard) Get(ctx context.Context, name string) (registry.Entry, error) {
	if k.dead.Load() {
		return registry.Entry{}, errBenchShardDown
	}
	return k.API.Get(ctx, name)
}

func (k *benchKillableShard) AddLocation(ctx context.Context, name string, loc registry.Location) (registry.Entry, error) {
	if k.dead.Load() {
		return registry.Entry{}, errBenchShardDown
	}
	return k.API.AddLocation(ctx, name, loc)
}

func (k *benchKillableShard) Delete(ctx context.Context, name string) error {
	if k.dead.Load() {
		return errBenchShardDown
	}
	return k.API.Delete(ctx, name)
}

func (k *benchKillableShard) GetMany(ctx context.Context, names []string) ([]registry.Entry, error) {
	if k.dead.Load() {
		return nil, errBenchShardDown
	}
	return k.API.GetMany(ctx, names)
}

func (k *benchKillableShard) PutMany(ctx context.Context, entries []registry.Entry) ([]registry.Entry, error) {
	if k.dead.Load() {
		return nil, errBenchShardDown
	}
	return k.API.PutMany(ctx, entries)
}

func (k *benchKillableShard) DeleteMany(ctx context.Context, names []string) (int, error) {
	if k.dead.Load() {
		return 0, errBenchShardDown
	}
	return k.API.DeleteMany(ctx, names)
}

func (k *benchKillableShard) Merge(ctx context.Context, entries []registry.Entry) (int, error) {
	if k.dead.Load() {
		return 0, errBenchShardDown
	}
	return k.API.Merge(ctx, entries)
}

func (k *benchKillableShard) Entries(ctx context.Context) ([]registry.Entry, error) {
	if k.dead.Load() {
		return nil, errBenchShardDown
	}
	return k.API.Entries(ctx)
}

func (k *benchKillableShard) Names(ctx context.Context) []string {
	if k.dead.Load() {
		return nil
	}
	return k.API.Names(ctx)
}

func (k *benchKillableShard) Contains(ctx context.Context, name string) bool {
	if k.dead.Load() {
		return false
	}
	return k.API.Contains(ctx, name)
}

func (k *benchKillableShard) Len(ctx context.Context) int {
	if k.dead.Load() {
		return 0
	}
	return k.API.Len(ctx)
}

// BenchmarkReplicatedTierFailover measures the metadata-intensive mix on a
// 4-shard, 2-way replicated tier with one shard killed halfway through the
// run. Throughput (ops/s) covers the whole run including the kill; the
// failure accounting proves availability: reads never fail, un-acknowledged
// writes are bounded by the breaker window, and every acknowledged create is
// read back after the run with the shard still dead.
func BenchmarkReplicatedTierFailover(b *testing.B) {
	const (
		nShards     = 4
		replication = 2
	)
	kills := make([]*benchKillableShard, nShards)
	apis := make([]registry.API, nShards)
	for i := range apis {
		kills[i] = &benchKillableShard{API: registry.NewInstance(1, memcache.New(memcache.Config{
			ServiceTime: benchShardServiceTime,
			Concurrency: benchShardConcurrency,
			Metrics:     nil,
		}))}
		apis[i] = kills[i]
	}
	tier, err := registry.NewRouter(1, apis,
		registry.WithRouterMetrics(nil),
		registry.WithRouterReplication(replication),
		registry.WithRouterHealth(3, 5*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()

	// Preload a working set for the read side, one bulk batch.
	const preload = 1024
	entries := make([]registry.Entry, preload)
	for i := range entries {
		entries[i] = registry.NewEntry(fmt.Sprintf("bench/failover/preload/%d", i), 4096, "bench",
			registry.Location{Site: 1, Node: cloud.NodeID(i % 16)})
	}
	if _, err := tier.PutMany(bctx, entries); err != nil {
		b.Fatal(err)
	}

	// The kill fires when the shared op counter crosses the run's midpoint —
	// but only on runs long enough for the breaker to open and a meaningful
	// post-failure window to be measured.
	killAt := int64(b.N / 2)
	injectFault := b.N >= 256
	const victim = 2

	rec := experiments.NewBenchRecorder("replicated_tier_failover")
	var (
		seq       atomic.Int64
		readFails atomic.Int64
		writeErrs atomic.Int64
		ackMu     sync.Mutex
		acked     []string
	)
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			if injectFault && i == killAt {
				kills[victim].dead.Store(true)
			}
			opStart := time.Now()
			switch i % 8 {
			case 0, 1:
				name := fmt.Sprintf("bench/failover/new/%d", i)
				_, err := tier.Create(bctx, registry.NewEntry(name, 4096, "bench",
					registry.Location{Site: 1, Node: cloud.NodeID(i % 16)}))
				if err == nil {
					ackMu.Lock()
					acked = append(acked, name)
					ackMu.Unlock()
				} else if errors.Is(err, registry.ErrUnavailable) {
					writeErrs.Add(1) // un-acknowledged: in flight while the breaker counted
				} else {
					b.Errorf("create %q: %v", name, err)
				}
			case 2:
				name := fmt.Sprintf("bench/failover/preload/%d", i%preload)
				if _, err := tier.AddLocation(bctx, name,
					registry.Location{Site: 1, Node: cloud.NodeID(i % 16)}); err != nil {
					if errors.Is(err, registry.ErrUnavailable) {
						writeErrs.Add(1)
					} else {
						b.Errorf("addlocation %q: %v", name, err)
					}
				}
			default:
				if _, err := tier.Get(bctx, fmt.Sprintf("bench/failover/preload/%d", i%preload)); err != nil {
					readFails.Add(1)
				}
			}
			rec.Observe(time.Since(opStart))
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	// Availability: reads must have failed over, never failed outright, and
	// write errors are bounded by the breaker window (a handful of in-flight
	// writes while the failure count climbed), not an error storm.
	if n := readFails.Load(); n > 0 {
		b.Fatalf("%d reads failed despite replication and failover", n)
	}
	if n := writeErrs.Load(); injectFault && n > int64(b.N/10+64) {
		b.Fatalf("%d of %d writes failed; the breaker did not contain the dead shard", n, b.N)
	}

	// Zero lost acknowledged writes: with the shard still dead, every
	// acknowledged create reads back through the router.
	for off := 0; off < len(acked); off += 256 {
		end := off + 256
		if end > len(acked) {
			end = len(acked)
		}
		got, err := tier.GetMany(bctx, acked[off:end])
		if err != nil {
			b.Fatalf("reading back acknowledged writes: %v", err)
		}
		if len(got) != end-off {
			b.Fatalf("lost acknowledged writes: read back %d of %d", len(got), end-off)
		}
	}

	res := rec.Result(elapsed)
	b.ReportMetric(res.OpsPerSec, "ops/s")
	b.ReportMetric(float64(res.LatencyNs.P99)/1e6, "p99_ms")
	b.ReportMetric(float64(writeErrs.Load()), "unacked_writes")
	if *benchJSONDir != "" {
		path, err := res.WriteJSON(*benchJSONDir)
		if err != nil {
			b.Fatalf("writing benchmark JSON: %v", err)
		}
		b.Logf("machine-readable result written to %s", path)
	}
}

// benchRestartableShard wraps a durable shard whose process is killed and
// later restarted: while dead every operation fails with a transport error,
// and restart swaps in a fresh instance recovered from the shard's data
// directory. The inner handle is mutex-guarded so the swap is race-free
// against in-flight operations.
type benchRestartableShard struct {
	mu    sync.RWMutex
	inner registry.API
	dead  atomic.Bool
}

func (s *benchRestartableShard) kill() { s.dead.Store(true) }

func (s *benchRestartableShard) restart(inner registry.API) {
	s.mu.Lock()
	s.inner = inner
	s.mu.Unlock()
	s.dead.Store(false)
}

func (s *benchRestartableShard) api() (registry.API, error) {
	if s.dead.Load() {
		return nil, errBenchShardDown
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner, nil
}

// DurableSeq lets the router sample the shard's durable sequence number when
// its breaker opens, enabling the delta repair after the restart.
func (s *benchRestartableShard) DurableSeq() (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rec, ok := s.inner.(registry.Recoverable); ok {
		return rec.DurableSeq()
	}
	return 0, false
}

func (s *benchRestartableShard) Site() cloud.SiteID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Site()
}

func (s *benchRestartableShard) Create(ctx context.Context, e registry.Entry) (registry.Entry, error) {
	api, err := s.api()
	if err != nil {
		return registry.Entry{}, err
	}
	return api.Create(ctx, e)
}

func (s *benchRestartableShard) Put(ctx context.Context, e registry.Entry) (registry.Entry, error) {
	api, err := s.api()
	if err != nil {
		return registry.Entry{}, err
	}
	return api.Put(ctx, e)
}

func (s *benchRestartableShard) Get(ctx context.Context, name string) (registry.Entry, error) {
	api, err := s.api()
	if err != nil {
		return registry.Entry{}, err
	}
	return api.Get(ctx, name)
}

func (s *benchRestartableShard) AddLocation(ctx context.Context, name string, loc registry.Location) (registry.Entry, error) {
	api, err := s.api()
	if err != nil {
		return registry.Entry{}, err
	}
	return api.AddLocation(ctx, name, loc)
}

func (s *benchRestartableShard) Delete(ctx context.Context, name string) error {
	api, err := s.api()
	if err != nil {
		return err
	}
	return api.Delete(ctx, name)
}

func (s *benchRestartableShard) GetMany(ctx context.Context, names []string) ([]registry.Entry, error) {
	api, err := s.api()
	if err != nil {
		return nil, err
	}
	return api.GetMany(ctx, names)
}

func (s *benchRestartableShard) PutMany(ctx context.Context, entries []registry.Entry) ([]registry.Entry, error) {
	api, err := s.api()
	if err != nil {
		return nil, err
	}
	return api.PutMany(ctx, entries)
}

func (s *benchRestartableShard) DeleteMany(ctx context.Context, names []string) (int, error) {
	api, err := s.api()
	if err != nil {
		return 0, err
	}
	return api.DeleteMany(ctx, names)
}

func (s *benchRestartableShard) Merge(ctx context.Context, entries []registry.Entry) (int, error) {
	api, err := s.api()
	if err != nil {
		return 0, err
	}
	return api.Merge(ctx, entries)
}

func (s *benchRestartableShard) Entries(ctx context.Context) ([]registry.Entry, error) {
	api, err := s.api()
	if err != nil {
		return nil, err
	}
	return api.Entries(ctx)
}

func (s *benchRestartableShard) Names(ctx context.Context) []string {
	api, err := s.api()
	if err != nil {
		return nil
	}
	return api.Names(ctx)
}

func (s *benchRestartableShard) Contains(ctx context.Context, name string) bool {
	api, err := s.api()
	if err != nil {
		return false
	}
	return api.Contains(ctx, name)
}

func (s *benchRestartableShard) Len(ctx context.Context) int {
	api, err := s.api()
	if err != nil {
		return 0
	}
	return api.Len(ctx)
}

// BenchmarkDurableRestartFailover is the kill-and-*restart* companion of
// BenchmarkReplicatedTierFailover: a 4-shard, 2-way replicated tier of
// durable (WAL-backed, fsync-per-append) shards runs the same mix while one
// shard is killed at the midpoint and restarted from its data directory a
// short outage later. It proves the durability story end to end:
//
//   - zero acknowledged writes are lost (read back after the run);
//   - the restarted shard serves its range from recovered local state — it
//     holds its pre-outage share of the tier without a full re-sync;
//   - repair traffic is the outage delta, near zero relative to the data:
//     router_repaired_entries_total is bounded by the writes issued while
//     the shard was away, and no full sweep runs.
func BenchmarkDurableRestartFailover(b *testing.B) {
	const (
		nShards     = 4
		replication = 2
		victim      = 2
	)
	dataDir := b.TempDir()
	storeOpts := []store.Option{store.WithFsync(store.FsyncAlways)}
	openShard := func(i int) *registry.Instance {
		inst, err := registry.OpenInstance(1, memcache.New(memcache.Config{
			ServiceTime: benchShardServiceTime,
			Concurrency: benchShardConcurrency,
			Metrics:     nil,
		}), filepath.Join(dataDir, fmt.Sprintf("shard-%d", i)), storeOpts)
		if err != nil {
			b.Fatal(err)
		}
		return inst
	}
	shards := make([]*benchRestartableShard, nShards)
	apis := make([]registry.API, nShards)
	insts := make([]*registry.Instance, nShards)
	for i := range apis {
		insts[i] = openShard(i)
		shards[i] = &benchRestartableShard{inner: insts[i]}
		apis[i] = shards[i]
	}
	reg := metrics.NewRegistry()
	tier, err := registry.NewRouter(1, apis,
		registry.WithRouterMetrics(reg),
		registry.WithRouterReplication(replication),
		registry.WithRouterHealth(3, 5*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()

	const preload = 1024
	entries := make([]registry.Entry, preload)
	for i := range entries {
		entries[i] = registry.NewEntry(fmt.Sprintf("bench/restart/preload/%d", i), 4096, "bench",
			registry.Location{Site: 1, Node: cloud.NodeID(i % 16)})
	}
	if _, err := tier.PutMany(bctx, entries); err != nil {
		b.Fatal(err)
	}

	// Kill at the midpoint, restart an outage window later. The outage is
	// kept short (N/8 operations) so the benchmark measures recovery of a
	// briefly-dead shard, not an abandoned one.
	killAt := int64(b.N / 2)
	restartAt := killAt + int64(b.N/8)
	injectFault := b.N >= 512
	var recovered *registry.Instance

	rec := experiments.NewBenchRecorder("durable_restart_failover")
	var (
		seq       atomic.Int64
		readFails atomic.Int64
		writeErrs atomic.Int64
		ackMu     sync.Mutex
		acked     []string
	)
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			if injectFault && i == killAt {
				// The process dies: the breaker is opened immediately (the
				// organic threshold path is BenchmarkReplicatedTierFailover's
				// subject) and the router samples the shard's durable seq.
				shards[victim].kill()
				tier.MarkShardDown(victim)
			}
			if injectFault && i == restartAt {
				// The process restarts: recover a fresh instance from the
				// shard's data directory and re-enter it into routing.
				insts[victim].Close() //nolint:errcheck // already fsynced per append
				recovered = openShard(victim)
				shards[victim].restart(recovered)
				tier.MarkShardUp(victim)
			}
			opStart := time.Now()
			switch i % 8 {
			case 0, 1:
				name := fmt.Sprintf("bench/restart/new/%d", i)
				_, err := tier.Create(bctx, registry.NewEntry(name, 4096, "bench",
					registry.Location{Site: 1, Node: cloud.NodeID(i % 16)}))
				if err == nil {
					ackMu.Lock()
					acked = append(acked, name)
					ackMu.Unlock()
				} else if errors.Is(err, registry.ErrUnavailable) {
					writeErrs.Add(1)
				} else {
					b.Errorf("create %q: %v", name, err)
				}
			case 2:
				name := fmt.Sprintf("bench/restart/preload/%d", i%preload)
				if _, err := tier.AddLocation(bctx, name,
					registry.Location{Site: 1, Node: cloud.NodeID(i % 16)}); err != nil {
					if errors.Is(err, registry.ErrUnavailable) {
						writeErrs.Add(1)
					} else {
						b.Errorf("addlocation %q: %v", name, err)
					}
				}
			default:
				if _, err := tier.Get(bctx, fmt.Sprintf("bench/restart/preload/%d", i%preload)); err != nil {
					readFails.Add(1)
				}
			}
			rec.Observe(time.Since(opStart))
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	tier.Wait() // the delta repair must finish before the books are checked

	if n := readFails.Load(); n > 0 {
		b.Fatalf("%d reads failed despite replication and failover", n)
	}
	if n := writeErrs.Load(); injectFault && n > int64(b.N/10+64) {
		b.Fatalf("%d of %d writes failed; the breaker did not contain the dead shard", n, b.N)
	}

	// Zero lost acknowledged writes, with the tier fully recovered.
	for off := 0; off < len(acked); off += 256 {
		end := off + 256
		if end > len(acked) {
			end = len(acked)
		}
		got, err := tier.GetMany(bctx, acked[off:end])
		if err != nil {
			b.Fatalf("reading back acknowledged writes: %v", err)
		}
		if len(got) != end-off {
			b.Fatalf("lost acknowledged writes: read back %d of %d", len(got), end-off)
		}
	}

	if injectFault {
		snap := reg.Snapshot()
		if got := snap.Counters["router_delta_repairs_total"]; got < 1 {
			b.Fatalf("restarted shard was not delta-repaired (router_delta_repairs_total=%d, router_sweeps_total=%d)",
				got, snap.Counters["router_sweeps_total"])
		}
		if got := snap.Counters["router_sweeps_total"]; got != 0 {
			b.Fatalf("recovery fell back to a full re-sync sweep (%d sweeps)", got)
		}
		// Repair traffic near zero: bounded by the outage delta (at most the
		// writes issued during the N/8-op window), nowhere near the tier's
		// total entry count.
		bound := int64(b.N/16 + 64)
		if got := snap.Counters["router_repaired_entries_total"]; got > bound {
			b.Fatalf("router_repaired_entries_total=%d exceeds the outage delta bound %d", got, bound)
		}
		b.ReportMetric(float64(snap.Counters["router_repaired_entries_total"]), "repaired_entries")
		// Local state: the restarted shard answers from what it recovered,
		// holding its pre-outage share of the tier rather than starting cold.
		if n := recovered.Len(bctx); n < preload/8 {
			b.Fatalf("restarted shard recovered only %d entries; it is not serving from local state", n)
		}
	}

	res := rec.Result(elapsed)
	b.ReportMetric(res.OpsPerSec, "ops/s")
	b.ReportMetric(float64(res.LatencyNs.P99)/1e6, "p99_ms")
	if *benchJSONDir != "" {
		path, err := res.WriteJSON(*benchJSONDir)
		if err != nil {
			b.Fatalf("writing benchmark JSON: %v", err)
		}
		b.Logf("machine-readable result written to %s", path)
	}
}
