package geomds

// This file keeps the documentation honest: every relative markdown link in
// README.md, CHANGES.md and docs/*.md must point at a file (or directory)
// that exists, and in-document fragments must anchor a real heading. CI's
// docs job runs it, so docs rot fails the build.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownFiles returns every markdown file the link check covers.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "CHANGES.md", "ROADMAP.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	return append(files, docs...)
}

// linkRe matches inline markdown links [text](target), skipping images.
var linkRe = regexp.MustCompile(`[^!]\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings, whose GitHub anchors fragments refer to.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// TestMarkdownLinks resolves every relative link target against the linking
// file's directory and fails on dangling files or unknown heading anchors.
func TestMarkdownLinks(t *testing.T) {
	for _, file := range markdownFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			path, fragment, _ := strings.Cut(target, "#")
			if path == "" {
				// Pure fragment: must anchor a heading in this file.
				if !hasAnchor(body, fragment) {
					t.Errorf("%s: link %q: no heading anchors #%s", file, target, fragment)
				}
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), path)
			info, err := os.Stat(resolved)
			if err != nil {
				t.Errorf("%s: link %q: %s does not exist", file, target, resolved)
				continue
			}
			if fragment != "" && !info.IsDir() && strings.HasSuffix(resolved, ".md") {
				linked, err := os.ReadFile(resolved)
				if err != nil {
					t.Errorf("%s: link %q: %v", file, target, err)
					continue
				}
				if !hasAnchor(linked, fragment) {
					t.Errorf("%s: link %q: no heading in %s anchors #%s", file, target, resolved, fragment)
				}
			}
		}
	}
}

// hasAnchor reports whether any heading in body produces the given GitHub
// anchor fragment.
func hasAnchor(body []byte, fragment string) bool {
	for _, h := range headingRe.FindAllStringSubmatch(string(body), -1) {
		if githubAnchor(h[1]) == strings.ToLower(fragment) {
			return true
		}
	}
	return false
}

// githubAnchor approximates GitHub's heading-to-anchor rule: lowercase,
// spaces to dashes, punctuation dropped.
func githubAnchor(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// TestDocsDirReferenced makes sure the docs directory stays discoverable:
// README.md must link both design documents.
func TestDocsDirReferenced(t *testing.T) {
	body, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/WIRE.md"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("README.md does not reference %s", want)
		}
	}
	if _, err := os.Stat("docs"); err != nil {
		t.Fatal(fmt.Errorf("docs directory missing: %w", err))
	}
}
