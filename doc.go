// Package geomds is a Go reproduction of "Towards Multi-site Metadata
// Management for Geographically Distributed Cloud Workflows"
// (Pineda-Morales, Costan, Antoniu — IEEE CLUSTER 2015).
//
// The repository provides, under internal/, a multi-site cloud model with
// WAN latency injection (cloud, latency), an in-memory cache tier modelled
// after a managed cloud cache (memcache), a metadata registry built on it
// (registry, dht), the paper's four metadata management strategies and their
// supporting machinery (core), a TCP transport to run registry instances as
// separate processes — with connection pooling, request pipelining and batch
// frames that carry many registry operations per round trip (rpc) — a
// workflow DAG model and execution engine
// (workflow), the paper's synthetic and real-life workloads (workloads), and
// one harness per table and figure of the evaluation (experiments).
//
// Executables live under cmd/ (metasim, metaserver, metactl, wfrun), runnable
// examples under examples/, and the benchmark suite that regenerates every
// table and figure lives in bench_test.go at the repository root.
package geomds
