// Package geomds is a Go reproduction of "Towards Multi-site Metadata
// Management for Geographically Distributed Cloud Workflows"
// (Pineda-Morales, Costan, Antoniu — IEEE CLUSTER 2015).
//
// The repository provides, under internal/, a multi-site cloud model with
// WAN latency injection (cloud, latency), an in-memory cache tier modelled
// after a managed cloud cache (memcache), a metadata registry built on it
// (registry, dht), the paper's four metadata management strategies and their
// supporting machinery (core), a TCP transport to run registry instances as
// separate processes — with connection pooling, request pipelining and batch
// frames that carry many registry operations per round trip (rpc; the frame
// spec lives in docs/WIRE.md) — a workflow DAG model and execution engine
// (workflow), the paper's synthetic and real-life workloads (workloads), and
// one harness per table and figure of the evaluation (experiments). The
// package map and layer diagram live in docs/ARCHITECTURE.md.
//
// # Sharded per-site registry tier
//
// A site's registry deployment is not limited to one instance: registry.Router
// implements registry.API over N shard instances — in-process or remote rpc
// proxies — routing single-key operations to the shard owning the key and
// splitting bulk operations into one concurrent sub-batch per shard, with
// online shard add/remove and background entry migration. core.WithShardsPerSite
// shards every fabric site, metaserver -shards / -shard-addrs serve a sharded
// tier over TCP, and shard_bench_test.go measures the tier's throughput
// scaling against the single-instance baseline (docs/ARCHITECTURE.md, "The
// shard-router layer").
//
// Placement can be replicated: registry.WithRouterReplication(r)
// (core.WithShardReplication, metaserver -replication) stores every key on
// the first r distinct shards of its consistent-hash successor list —
// writes fan out to all r replicas under an all-or-quorum write concern,
// reads fail over down the replica list, and a per-shard health breaker
// with a background probe routes around crashed shards until an automatic
// re-sync sweep repairs them, so a site serves its whole key range through
// the loss of any r-1 shards. failover_bench_test.go kills a shard mid-run
// to prove it (zero lost acknowledged writes), and cmd/benchdiff gates the
// recorded throughput against baselines committed under bench/.
//
// # Context-first API
//
// The metadata stack is context-first end to end: every operation on
// registry.API, core.MetadataService, the core.Client session wrapper and
// rpc.Client takes a context.Context as its first parameter. Deadlines and
// cancellation propagate through every layer — a cancelled caller unblocks
// from the modelled WAN sleeps of the latency model, retires its pipelined
// RPC without disturbing the other requests in flight on the same
// connection, and (via the relative time budget carried in the rpc frame
// header, Header.TimeoutNs) makes the remote server abandon work the client
// has given up on. Failures are typed: strategy operations return
// *core.OpError values wrapping sentinel causes (core.ErrNotFound,
// core.ErrExists, core.ErrClosed, core.ErrSiteUnreachable,
// context.DeadlineExceeded), so callers branch with errors.Is and recover
// structured detail with errors.As; over the wire the causes round-trip as
// structured code+message frames (docs/WIRE.md lists the code table), and
// cmd/metactl folds them into exit codes (0 ok, 1 error, 2 usage, 3 not
// found, 4 deadline exceeded).
//
// # Live observability
//
// Every hot path reports to a metrics.Registry of named counters, gauges
// and streaming histograms plus a bounded trace ring of recent per-op
// events: the rpc client and server, the cache tier, all four strategies
// (via their shared fabric), the lazy propagator, the synchronization agent
// and the workflow engine. cmd/metaserver exports the registry over HTTP
// (-metrics-addr: Prometheus text at /metrics, JSON at /metrics.json and
// /trace.json), cmd/metactl renders it in the terminal (the stats command),
// and cmd/metasim / cmd/wfrun print live statistics with -stats. See
// docs/ARCHITECTURE.md for the full series catalogue.
//
// Executables live under cmd/ (metasim, metaserver, metactl, wfrun), runnable
// examples under examples/, and the benchmark suite that regenerates every
// table and figure lives in bench_test.go at the repository root.
package geomds
