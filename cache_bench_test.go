package geomds

// This file benchmarks the feed-coherent near cache under the workload it was
// built for: a Zipfian-skewed, read-heavy mix against a registry instance
// whose in-memory cache tier models a real service time. Three sub-benchmarks
// run the same mix:
//
//   - off:   every read pays the instance's modelled service time — the
//     feature-off baseline.
//   - on:    reads go through the near cache, kept coherent by the
//     instance's change feed; the hot Zipfian head answers locally.
//   - mixed: cache-on with a 10x higher write share. Writes invalidate
//     through the cache and via feed events, so the run demonstrates the
//     staleness bound: after the feed drains, the cache agrees with the
//     origin on every sampled key.
//
// Run with:
//
//	go test -bench=CacheZipfianReadMix -benchtime=2000x
//	go test -bench=CacheZipfianReadMix -benchtime=2000x -benchjson .
//
// The recorded BENCH_cache_zipfian_{off,on,mixed}.json ride the CI
// perf-trajectory gate (cmd/benchdiff). On runs long enough to measure
// (>=1000 ops per variant) the parent benchmark asserts the cache-on variant
// sustains at least 2x the cache-off throughput with a p99 no worse — the
// acceptance bar of the near-cache work.

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/experiments"
	"geomds/internal/feed"
	"geomds/internal/memcache"
	"geomds/internal/readcache"
	"geomds/internal/registry"
	"geomds/internal/workloads"
)

const cacheBenchPreload = 1024

func cacheBenchKey(i int) string { return fmt.Sprintf("bench/cache/preload/%d", i) }

// runCacheBench runs the Zipfian mix against one feeding registry instance,
// optionally through a feed-coherent near cache, and returns the recorded
// result. writeEvery sets the write share: one AddLocation per writeEvery
// operations, the rest Gets.
func runCacheBench(b *testing.B, name string, useCache bool, writeEvery int) experiments.BenchResult {
	inst := registry.NewInstance(1, memcache.New(memcache.Config{
		ServiceTime: benchShardServiceTime,
		Concurrency: benchShardConcurrency,
	}), registry.WithChangeFeed())
	defer inst.Close()

	entries := make([]registry.Entry, cacheBenchPreload)
	for i := range entries {
		entries[i] = registry.NewEntry(cacheBenchKey(i), 4096, "bench",
			registry.Location{Site: 1, Node: cloud.NodeID(i % 16)})
	}
	if _, err := inst.PutMany(bctx, entries); err != nil {
		b.Fatal(err)
	}

	var api registry.API = inst
	var cache *readcache.Cache
	if useCache {
		cache = readcache.New(inst, readcache.Options{Capacity: 2 * cacheBenchPreload})
		cache.AttachFeed(bctx, []feed.Source{{
			Name: "origin",
			Subscribe: func(ctx context.Context, from uint64) (feed.Stream, error) {
				return inst.ChangeFeed().Subscribe(from)
			},
			Snapshot: inst.FeedSnapshot,
		}})
		defer cache.Close()
		api = cache
		// Wait for the subscription to go live: the cache serves through
		// (and skips fills) until the stream is connected, so a fill that
		// sticks proves the feed is up.
		deadline := time.Now().Add(5 * time.Second)
		for cache.Stats().Entries == 0 {
			if _, err := cache.Get(bctx, cacheBenchKey(0)); err != nil {
				b.Fatal(err)
			}
			if time.Now().After(deadline) {
				b.Fatal("near cache never connected to the change feed")
			}
			time.Sleep(time.Millisecond)
		}
	}

	sampler := workloads.NewKeySampler(workloads.KeyDist{Kind: workloads.KeyZipfian}, cacheBenchPreload)
	rec := experiments.NewBenchRecorder(name)
	var (
		workerSeq atomic.Int64
		seq       atomic.Int64
	)
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(42 + workerSeq.Add(1)))
		for pb.Next() {
			i := seq.Add(1)
			key := cacheBenchKey(sampler.Rank(rng, cacheBenchPreload))
			opStart := time.Now()
			if i%int64(writeEvery) == 0 {
				if _, err := api.AddLocation(bctx, key,
					registry.Location{Site: 1, Node: cloud.NodeID(i % 16)}); err != nil {
					b.Errorf("addlocation %q: %v", key, err)
				}
			} else {
				if _, err := api.Get(bctx, key); err != nil {
					b.Errorf("get %q: %v", key, err)
				}
			}
			rec.Observe(time.Since(opStart))
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if useCache {
		// The staleness bound, demonstrated: once the feed drains, a read
		// through the cache agrees with the origin on every sampled key.
		head, err := inst.FeedBarrier(bctx)
		if err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for sampled := 0; sampled < 32; {
			key := cacheBenchKey(sampled)
			want, err := inst.Get(bctx, key)
			if err != nil {
				b.Fatal(err)
			}
			got, err := cache.Get(bctx, key)
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Locations) == len(want.Locations) {
				sampled++
				continue
			}
			if time.Now().After(deadline) {
				b.Fatalf("cache still stale on %q after feed drained to %d: %d locations cached, %d at origin",
					key, head, len(got.Locations), len(want.Locations))
			}
			time.Sleep(time.Millisecond)
		}
		st := cache.Stats()
		hitRatio := float64(st.Hits) / float64(st.Hits+st.Misses)
		b.ReportMetric(hitRatio, "hit_ratio")
	}

	res := rec.Result(elapsed)
	b.ReportMetric(res.OpsPerSec, "ops/s")
	b.ReportMetric(float64(res.LatencyNs.P99)/1e6, "p99_ms")
	if *benchJSONDir != "" {
		path, err := res.WriteJSON(*benchJSONDir)
		if err != nil {
			b.Fatalf("writing benchmark JSON: %v", err)
		}
		b.Logf("machine-readable result written to %s", path)
	}
	return res
}

// BenchmarkCacheZipfianReadMix measures the read-heavy Zipfian mix with the
// near cache off and on, plus a mixed-write cache-on run, and on runs long
// enough to trust (>=1000 ops per variant) asserts the acceptance bar: the
// cached read path sustains at least 2x the uncached throughput with a p99
// no worse.
func BenchmarkCacheZipfianReadMix(b *testing.B) {
	results := make(map[string]experiments.BenchResult, 3)
	b.Run("off", func(b *testing.B) {
		results["off"] = runCacheBench(b, "cache_zipfian_off", false, 100)
	})
	b.Run("on", func(b *testing.B) {
		results["on"] = runCacheBench(b, "cache_zipfian_on", true, 100)
	})
	b.Run("mixed", func(b *testing.B) {
		results["mixed"] = runCacheBench(b, "cache_zipfian_mixed", true, 10)
	})

	off, on := results["off"], results["on"]
	if off.Ops < 1000 || on.Ops < 1000 {
		return // too short for a trustworthy comparison; -benchtime=2000x is the measured mode
	}
	b.Logf("ops/s off %.0f -> on %.0f (%.1fx), p99 off %.2f ms -> on %.2f ms",
		off.OpsPerSec, on.OpsPerSec, on.OpsPerSec/off.OpsPerSec,
		float64(off.LatencyNs.P99)/1e6, float64(on.LatencyNs.P99)/1e6)
	if on.OpsPerSec < 2*off.OpsPerSec {
		b.Errorf("cache-on %.0f ops/s is not 2x the cache-off %.0f ops/s", on.OpsPerSec, off.OpsPerSec)
	}
	if on.LatencyNs.P99 > off.LatencyNs.P99 {
		b.Errorf("cache-on p99 %.2f ms is worse than cache-off %.2f ms",
			float64(on.LatencyNs.P99)/1e6, float64(off.LatencyNs.P99)/1e6)
	}
}
