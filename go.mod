module geomds

go 1.24
