// Package cloud models a multi-site public cloud: geographically distributed
// datacenters (sites), the regions they belong to, the wide-area links that
// connect them and the deployments of execution nodes placed on them.
//
// The model follows the terminology of Pineda-Morales et al. (CLUSTER 2015):
// a *site* is a datacenter, a *region* is a geographic area grouping sites
// (e.g. Europe, US), a *deployment* is a set of virtual machines provisioned
// at once inside one site, and a *multi-site application* runs deployments on
// several sites at the same time.
//
// Distances between a node and a metadata registry instance are qualified as
//
//   - Local:      node and registry are in the same datacenter,
//   - SameRegion: different datacenters of the same geographic region,
//   - GeoDistant: datacenters in different geographic regions.
//
// The latency hierarchy Local ≪ SameRegion ≪ GeoDistant is the driving force
// behind every experiment in the paper.
package cloud

import (
	"fmt"
	"sort"
	"time"
)

// SiteID identifies a datacenter inside a Topology. IDs are dense indices
// assigned in the order sites are added, which makes them convenient to use
// as array indices in latency matrices and placement tables.
type SiteID int

// NoSite is the zero-value placeholder for "no site selected".
const NoSite SiteID = -1

// Region is a geographic area (e.g. "Europe", "US") grouping several sites.
type Region string

// Distance qualifies how far apart two sites are, following the paper's
// local / same-region / geo-distant classification.
type Distance int

const (
	// Local means the two endpoints are in the same datacenter.
	Local Distance = iota
	// SameRegion means different datacenters within one geographic region.
	SameRegion
	// GeoDistant means datacenters in different geographic regions.
	GeoDistant
)

// String returns the paper's name for the distance class.
func (d Distance) String() string {
	switch d {
	case Local:
		return "local"
	case SameRegion:
		return "same-region"
	case GeoDistant:
		return "geo-distant"
	default:
		return fmt.Sprintf("Distance(%d)", int(d))
	}
}

// Remote reports whether the distance class involves crossing datacenter
// boundaries (the paper calls both same-region and geo-distant "remote").
func (d Distance) Remote() bool { return d != Local }

// Site describes one datacenter.
type Site struct {
	// ID is the dense index of the site within its topology.
	ID SiteID
	// Name is a human-readable datacenter name (e.g. "West Europe").
	Name string
	// Region is the geographic region the site belongs to.
	Region Region
}

// Link describes the network path between two sites. A link is symmetric:
// the same parameters apply in both directions.
type Link struct {
	// RTT is the round-trip time of the link.
	RTT time.Duration
	// Jitter is the maximum absolute deviation applied to RTT per message.
	Jitter time.Duration
	// BandwidthMBps is the sustained throughput of the link in megabytes per
	// second; it converts message sizes into a transfer-time component.
	BandwidthMBps float64
}

// Topology is an immutable description of a multi-site cloud: the set of
// sites and the link parameters between every pair of sites.
//
// Build a topology with NewTopology / AddSite / SetLink (or use Azure4DC for
// the testbed used in the paper), then treat it as read-only; Topology values
// are safe for concurrent use once construction has finished.
type Topology struct {
	sites []Site
	// links[i][j] holds the link between site i and site j. links[i][i] is
	// the intra-datacenter link.
	links [][]Link
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{}
}

// AddSite registers a new datacenter and returns its identifier.
func (t *Topology) AddSite(name string, region Region) SiteID {
	id := SiteID(len(t.sites))
	t.sites = append(t.sites, Site{ID: id, Name: name, Region: region})
	// Grow the link matrix, defaulting every new link to a zero value that
	// callers are expected to overwrite via SetLink / SetDefaultLinks.
	for i := range t.links {
		t.links[i] = append(t.links[i], Link{})
	}
	t.links = append(t.links, make([]Link, len(t.sites)))
	return id
}

// NumSites returns the number of datacenters in the topology.
func (t *Topology) NumSites() int { return len(t.sites) }

// Sites returns a copy of the site descriptors in ID order.
func (t *Topology) Sites() []Site {
	out := make([]Site, len(t.sites))
	copy(out, t.sites)
	return out
}

// Site returns the descriptor of the given site.
// It panics if the ID is out of range; use Valid to check first.
func (t *Topology) Site(id SiteID) Site {
	return t.sites[id]
}

// Valid reports whether id designates a site of this topology.
func (t *Topology) Valid(id SiteID) bool {
	return id >= 0 && int(id) < len(t.sites)
}

// SiteByName returns the site with the given name.
func (t *Topology) SiteByName(name string) (Site, bool) {
	for _, s := range t.sites {
		if s.Name == name {
			return s, true
		}
	}
	return Site{}, false
}

// SetLink sets the (symmetric) link parameters between sites a and b.
// Setting a == b configures the intra-datacenter link.
func (t *Topology) SetLink(a, b SiteID, link Link) {
	t.links[a][b] = link
	t.links[b][a] = link
}

// Link returns the link parameters between sites a and b.
func (t *Topology) Link(a, b SiteID) Link {
	return t.links[a][b]
}

// DistanceClass classifies the distance between two sites.
func (t *Topology) DistanceClass(a, b SiteID) Distance {
	if a == b {
		return Local
	}
	if t.sites[a].Region == t.sites[b].Region {
		return SameRegion
	}
	return GeoDistant
}

// Centrality returns the average one-way latency from the given site to every
// other site of the topology. The paper defines a site's centrality as the
// average distance from it to the rest of the datacenters; lower is more
// central. A single-site topology has centrality zero.
func (t *Topology) Centrality(id SiteID) time.Duration {
	if len(t.sites) <= 1 {
		return 0
	}
	var sum time.Duration
	for _, other := range t.sites {
		if other.ID == id {
			continue
		}
		sum += t.links[id][other.ID].RTT / 2
	}
	return sum / time.Duration(len(t.sites)-1)
}

// MostCentralSite returns the site with the lowest centrality (ties broken by
// lowest ID). It panics on an empty topology.
func (t *Topology) MostCentralSite() SiteID {
	return t.rankByCentrality()[0]
}

// LeastCentralSite returns the site with the highest centrality (ties broken
// by lowest ID). It panics on an empty topology.
func (t *Topology) LeastCentralSite() SiteID {
	ranked := t.rankByCentrality()
	return ranked[len(ranked)-1]
}

// rankByCentrality returns site IDs sorted from most to least central.
func (t *Topology) rankByCentrality() []SiteID {
	if len(t.sites) == 0 {
		panic("cloud: rankByCentrality on empty topology")
	}
	ids := make([]SiteID, len(t.sites))
	for i := range ids {
		ids[i] = SiteID(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		return t.Centrality(ids[i]) < t.Centrality(ids[j])
	})
	return ids
}

// SetDefaultLinks fills every unset link (zero RTT) using the distance class
// between the two sites: local links get the local parameters, same-region
// links the regional ones and geo-distant links the wan ones. Already
// configured links are left untouched.
func (t *Topology) SetDefaultLinks(local, regional, wan Link) {
	for i := range t.sites {
		for j := range t.sites {
			if t.links[i][j].RTT != 0 {
				continue
			}
			switch t.DistanceClass(SiteID(i), SiteID(j)) {
			case Local:
				t.links[i][j] = local
			case SameRegion:
				t.links[i][j] = regional
			default:
				t.links[i][j] = wan
			}
		}
	}
}

// Validate checks structural invariants of the topology: at least one site,
// a square link matrix, symmetric links, strictly positive RTTs, and the
// intra-datacenter RTT being no larger than any remote RTT from that site.
func (t *Topology) Validate() error {
	if len(t.sites) == 0 {
		return fmt.Errorf("cloud: topology has no sites")
	}
	if len(t.links) != len(t.sites) {
		return fmt.Errorf("cloud: link matrix has %d rows, want %d", len(t.links), len(t.sites))
	}
	for i := range t.links {
		if len(t.links[i]) != len(t.sites) {
			return fmt.Errorf("cloud: link matrix row %d has %d columns, want %d", i, len(t.links[i]), len(t.sites))
		}
		for j := range t.links[i] {
			if t.links[i][j] != t.links[j][i] {
				return fmt.Errorf("cloud: link %d<->%d is not symmetric", i, j)
			}
			if t.links[i][j].RTT <= 0 {
				return fmt.Errorf("cloud: link %d<->%d has non-positive RTT", i, j)
			}
			if t.links[i][j].BandwidthMBps < 0 {
				return fmt.Errorf("cloud: link %d<->%d has negative bandwidth", i, j)
			}
		}
		for j := range t.links[i] {
			if i != j && t.links[i][j].RTT < t.links[i][i].RTT {
				return fmt.Errorf("cloud: remote link %d<->%d is faster than local link of site %d", i, j, i)
			}
		}
	}
	return nil
}
