package cloud

import (
	"fmt"
	"sort"
)

// NodeID identifies one execution node (a virtual machine) within a
// multi-site deployment. IDs are dense and assigned in creation order.
type NodeID int

// Node is one execution node: a VM provisioned in a particular site.
// In the paper's implementation nodes are Azure Worker Roles; here they are
// descriptors the workflow engine and the experiment harness attach clients
// and goroutines to.
type Node struct {
	// ID is the dense index of the node within its deployment.
	ID NodeID
	// Site is the datacenter the node runs in.
	Site SiteID
	// Name is a human-readable identifier, e.g. "node-07@West Europe".
	Name string
}

// Deployment describes a multi-site provisioning of execution nodes: which
// node runs in which datacenter. The paper's Azure limit of 300 cores per
// single-site deployment is the practical reason applications end up
// multi-site; MaxNodesPerSite lets callers model such per-site caps.
type Deployment struct {
	topo  *Topology
	nodes []Node
	// perSite caches the node IDs hosted by each site.
	perSite map[SiteID][]NodeID
}

// NewDeployment returns an empty deployment over the given topology.
func NewDeployment(topo *Topology) *Deployment {
	return &Deployment{topo: topo, perSite: make(map[SiteID][]NodeID)}
}

// Topology returns the cloud topology this deployment is placed on.
func (d *Deployment) Topology() *Topology { return d.topo }

// AddNode provisions one node in the given site and returns its ID.
func (d *Deployment) AddNode(site SiteID) NodeID {
	if !d.topo.Valid(site) {
		panic(fmt.Sprintf("cloud: AddNode on invalid site %d", site))
	}
	id := NodeID(len(d.nodes))
	n := Node{
		ID:   id,
		Site: site,
		Name: fmt.Sprintf("node-%03d@%s", id, d.topo.Site(site).Name),
	}
	d.nodes = append(d.nodes, n)
	d.perSite[site] = append(d.perSite[site], id)
	return id
}

// SpreadNodes provisions n nodes distributed as evenly as possible across all
// sites of the topology, in round-robin order starting at site 0. This is the
// node placement used by every experiment in the paper ("evenly distributed
// in our datacenters").
func (d *Deployment) SpreadNodes(n int) []NodeID {
	ids := make([]NodeID, 0, n)
	sites := d.topo.NumSites()
	for i := 0; i < n; i++ {
		ids = append(ids, d.AddNode(SiteID(i%sites)))
	}
	return ids
}

// NumNodes returns the number of provisioned nodes.
func (d *Deployment) NumNodes() int { return len(d.nodes) }

// Node returns the descriptor of a node. It panics on an unknown ID.
func (d *Deployment) Node(id NodeID) Node { return d.nodes[id] }

// Nodes returns a copy of all node descriptors in ID order.
func (d *Deployment) Nodes() []Node {
	out := make([]Node, len(d.nodes))
	copy(out, d.nodes)
	return out
}

// NodesAt returns the IDs of the nodes provisioned in the given site,
// in creation order.
func (d *Deployment) NodesAt(site SiteID) []NodeID {
	src := d.perSite[site]
	out := make([]NodeID, len(src))
	copy(out, src)
	return out
}

// SiteOf returns the site hosting the given node.
func (d *Deployment) SiteOf(id NodeID) SiteID { return d.nodes[id].Site }

// SiteLoad returns, for each site, the number of nodes it hosts.
func (d *Deployment) SiteLoad() map[SiteID]int {
	out := make(map[SiteID]int, len(d.perSite))
	for s, nodes := range d.perSite {
		out[s] = len(nodes)
	}
	return out
}

// Balance returns the difference between the most and least loaded sites
// (counting every site of the topology, including empty ones). A perfectly
// even spread over k sites has balance 0 or 1 depending on divisibility.
func (d *Deployment) Balance() int {
	if d.topo.NumSites() == 0 {
		return 0
	}
	counts := make([]int, 0, d.topo.NumSites())
	for i := 0; i < d.topo.NumSites(); i++ {
		counts = append(counts, len(d.perSite[SiteID(i)]))
	}
	sort.Ints(counts)
	return counts[len(counts)-1] - counts[0]
}

// Validate checks that every node sits on a valid site and that per-site
// indices are consistent with node descriptors.
func (d *Deployment) Validate() error {
	for _, n := range d.nodes {
		if !d.topo.Valid(n.Site) {
			return fmt.Errorf("cloud: node %d placed on invalid site %d", n.ID, n.Site)
		}
	}
	total := 0
	for site, ids := range d.perSite {
		for _, id := range ids {
			if d.nodes[id].Site != site {
				return fmt.Errorf("cloud: per-site index lists node %d under site %d but node is at %d", id, site, d.nodes[id].Site)
			}
		}
		total += len(ids)
	}
	if total != len(d.nodes) {
		return fmt.Errorf("cloud: per-site index counts %d nodes, want %d", total, len(d.nodes))
	}
	return nil
}
