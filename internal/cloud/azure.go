package cloud

import "time"

// Names of the four Azure datacenters used as the testbed in the paper
// (Section VI-A): two European sites and two US sites.
const (
	SiteNorthEU        = "North Europe"     // Ireland
	SiteWestEU         = "West Europe"      // Netherlands
	SiteSouthCentralUS = "South Central US" // Texas
	SiteEastUS         = "East US"          // Virginia
)

// Regions of the paper's testbed.
const (
	RegionEurope Region = "Europe"
	RegionUS     Region = "US"
)

// Default link parameters calibrated to publicly reported Azure inter-region
// round-trip times circa 2015. Absolute values only need to preserve the
// local ≪ same-region ≪ geo-distant hierarchy; the experiments report
// relative gains.
var (
	// DefaultLocalLink models intra-datacenter communication.
	DefaultLocalLink = Link{RTT: 600 * time.Microsecond, Jitter: 100 * time.Microsecond, BandwidthMBps: 1000}
	// DefaultRegionalLink models two datacenters within one region
	// (e.g. North Europe <-> West Europe).
	DefaultRegionalLink = Link{RTT: 24 * time.Millisecond, Jitter: 3 * time.Millisecond, BandwidthMBps: 200}
	// DefaultWANLink models transatlantic communication.
	DefaultWANLink = Link{RTT: 95 * time.Millisecond, Jitter: 10 * time.Millisecond, BandwidthMBps: 80}
)

// Azure4DC builds the four-datacenter topology used throughout the paper's
// evaluation: North Europe (Ireland), West Europe (Netherlands), South
// Central US (Texas) and East US (Virginia).
//
// The per-pair RTTs are chosen so that East US is the most central site and
// South Central US the least central one, matching the observation of
// Section VI-B ("the best performance ... corresponds to the nodes executed
// in the most centric datacenter - East US. Worst cases ... correspond to the
// least centric datacenter, South Central US").
func Azure4DC() *Topology {
	t := NewTopology()
	neu := t.AddSite(SiteNorthEU, RegionEurope)
	weu := t.AddSite(SiteWestEU, RegionEurope)
	scus := t.AddSite(SiteSouthCentralUS, RegionUS)
	eus := t.AddSite(SiteEastUS, RegionUS)

	for _, id := range []SiteID{neu, weu, scus, eus} {
		t.SetLink(id, id, DefaultLocalLink)
	}
	// Intra-region links.
	t.SetLink(neu, weu, Link{RTT: 24 * time.Millisecond, Jitter: 3 * time.Millisecond, BandwidthMBps: 200})
	t.SetLink(scus, eus, Link{RTT: 34 * time.Millisecond, Jitter: 4 * time.Millisecond, BandwidthMBps: 200})
	// Transatlantic links. East US (Virginia) is closer to Europe than South
	// Central US (Texas), which makes East US the most central site overall.
	t.SetLink(neu, eus, Link{RTT: 80 * time.Millisecond, Jitter: 8 * time.Millisecond, BandwidthMBps: 80})
	t.SetLink(weu, eus, Link{RTT: 88 * time.Millisecond, Jitter: 8 * time.Millisecond, BandwidthMBps: 80})
	t.SetLink(neu, scus, Link{RTT: 112 * time.Millisecond, Jitter: 10 * time.Millisecond, BandwidthMBps: 70})
	t.SetLink(weu, scus, Link{RTT: 120 * time.Millisecond, Jitter: 10 * time.Millisecond, BandwidthMBps: 70})
	return t
}

// SingleSite builds a degenerate one-datacenter topology, useful for tests
// and for the single-site baseline scenarios.
func SingleSite(name string, region Region) *Topology {
	t := NewTopology()
	id := t.AddSite(name, region)
	t.SetLink(id, id, DefaultLocalLink)
	return t
}

// TwoRegions builds a topology with nSitesPerRegion datacenters in each of
// two regions, using the default link parameters. It is handy for scaling
// and churn experiments beyond the paper's four-site testbed.
func TwoRegions(nSitesPerRegion int) *Topology {
	t := NewTopology()
	for i := 0; i < nSitesPerRegion; i++ {
		t.AddSite("EU-"+string(rune('A'+i)), RegionEurope)
	}
	for i := 0; i < nSitesPerRegion; i++ {
		t.AddSite("US-"+string(rune('A'+i)), RegionUS)
	}
	t.SetDefaultLinks(DefaultLocalLink, DefaultRegionalLink, DefaultWANLink)
	return t
}
