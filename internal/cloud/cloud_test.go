package cloud

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDistanceString(t *testing.T) {
	cases := []struct {
		d    Distance
		want string
	}{
		{Local, "local"},
		{SameRegion, "same-region"},
		{GeoDistant, "geo-distant"},
		{Distance(42), "Distance(42)"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Distance(%d).String() = %q, want %q", int(c.d), got, c.want)
		}
	}
}

func TestDistanceRemote(t *testing.T) {
	if Local.Remote() {
		t.Error("Local should not be remote")
	}
	if !SameRegion.Remote() {
		t.Error("SameRegion should be remote")
	}
	if !GeoDistant.Remote() {
		t.Error("GeoDistant should be remote")
	}
}

func TestAddSiteAssignsDenseIDs(t *testing.T) {
	topo := NewTopology()
	a := topo.AddSite("A", RegionEurope)
	b := topo.AddSite("B", RegionUS)
	if a != 0 || b != 1 {
		t.Fatalf("got IDs %d, %d; want 0, 1", a, b)
	}
	if topo.NumSites() != 2 {
		t.Fatalf("NumSites = %d, want 2", topo.NumSites())
	}
	if topo.Site(a).Name != "A" || topo.Site(b).Region != RegionUS {
		t.Error("site descriptors not preserved")
	}
}

func TestSiteByName(t *testing.T) {
	topo := Azure4DC()
	s, ok := topo.SiteByName(SiteEastUS)
	if !ok {
		t.Fatal("East US not found")
	}
	if s.Region != RegionUS {
		t.Errorf("East US region = %q, want %q", s.Region, RegionUS)
	}
	if _, ok := topo.SiteByName("Mars Central"); ok {
		t.Error("unexpected site found")
	}
}

func TestValid(t *testing.T) {
	topo := Azure4DC()
	if !topo.Valid(0) || !topo.Valid(3) {
		t.Error("expected sites 0..3 to be valid")
	}
	if topo.Valid(-1) || topo.Valid(4) || topo.Valid(NoSite) {
		t.Error("expected out-of-range IDs to be invalid")
	}
}

func TestSetLinkIsSymmetric(t *testing.T) {
	topo := NewTopology()
	a := topo.AddSite("A", RegionEurope)
	b := topo.AddSite("B", RegionEurope)
	link := Link{RTT: 10 * time.Millisecond, Jitter: time.Millisecond, BandwidthMBps: 100}
	topo.SetLink(a, b, link)
	if topo.Link(b, a) != link {
		t.Errorf("Link(b,a) = %+v, want %+v", topo.Link(b, a), link)
	}
}

func TestDistanceClass(t *testing.T) {
	topo := Azure4DC()
	neu, _ := topo.SiteByName(SiteNorthEU)
	weu, _ := topo.SiteByName(SiteWestEU)
	eus, _ := topo.SiteByName(SiteEastUS)
	if got := topo.DistanceClass(neu.ID, neu.ID); got != Local {
		t.Errorf("same site = %v, want Local", got)
	}
	if got := topo.DistanceClass(neu.ID, weu.ID); got != SameRegion {
		t.Errorf("NEU-WEU = %v, want SameRegion", got)
	}
	if got := topo.DistanceClass(weu.ID, eus.ID); got != GeoDistant {
		t.Errorf("WEU-EUS = %v, want GeoDistant", got)
	}
}

func TestAzure4DCValidates(t *testing.T) {
	topo := Azure4DC()
	if err := topo.Validate(); err != nil {
		t.Fatalf("Azure4DC topology invalid: %v", err)
	}
	if topo.NumSites() != 4 {
		t.Fatalf("NumSites = %d, want 4", topo.NumSites())
	}
}

func TestAzure4DCCentrality(t *testing.T) {
	topo := Azure4DC()
	eus, _ := topo.SiteByName(SiteEastUS)
	scus, _ := topo.SiteByName(SiteSouthCentralUS)
	if got := topo.MostCentralSite(); got != eus.ID {
		t.Errorf("most central site = %s, want %s", topo.Site(got).Name, SiteEastUS)
	}
	if got := topo.LeastCentralSite(); got != scus.ID {
		t.Errorf("least central site = %s, want %s", topo.Site(got).Name, SiteSouthCentralUS)
	}
}

func TestCentralitySingleSite(t *testing.T) {
	topo := SingleSite("Solo", RegionEurope)
	if got := topo.Centrality(0); got != 0 {
		t.Errorf("single-site centrality = %v, want 0", got)
	}
	if topo.MostCentralSite() != 0 || topo.LeastCentralSite() != 0 {
		t.Error("single-site most/least central should both be site 0")
	}
}

func TestSetDefaultLinksRespectsExisting(t *testing.T) {
	topo := NewTopology()
	a := topo.AddSite("A", RegionEurope)
	b := topo.AddSite("B", RegionEurope)
	c := topo.AddSite("C", RegionUS)
	custom := Link{RTT: 5 * time.Millisecond, BandwidthMBps: 42}
	topo.SetLink(a, b, custom)
	topo.SetDefaultLinks(DefaultLocalLink, DefaultRegionalLink, DefaultWANLink)
	if topo.Link(a, b) != custom {
		t.Error("SetDefaultLinks overwrote an existing link")
	}
	if topo.Link(a, a) != DefaultLocalLink {
		t.Error("local default not applied")
	}
	if topo.Link(a, c) != DefaultWANLink {
		t.Error("wan default not applied")
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("topology invalid after defaults: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	empty := NewTopology()
	if err := empty.Validate(); err == nil {
		t.Error("empty topology should not validate")
	}

	missing := NewTopology()
	missing.AddSite("A", RegionEurope)
	if err := missing.Validate(); err == nil {
		t.Error("topology with zero-RTT link should not validate")
	}

	asym := NewTopology()
	a := asym.AddSite("A", RegionEurope)
	b := asym.AddSite("B", RegionEurope)
	asym.SetLink(a, a, DefaultLocalLink)
	asym.SetLink(b, b, DefaultLocalLink)
	asym.SetLink(a, b, DefaultRegionalLink)
	asym.links[a][b] = Link{RTT: time.Millisecond} // break symmetry directly
	if err := asym.Validate(); err == nil {
		t.Error("asymmetric topology should not validate")
	}

	slowLocal := NewTopology()
	a = slowLocal.AddSite("A", RegionEurope)
	b = slowLocal.AddSite("B", RegionEurope)
	slowLocal.SetLink(a, a, Link{RTT: time.Second})
	slowLocal.SetLink(b, b, DefaultLocalLink)
	slowLocal.SetLink(a, b, Link{RTT: time.Millisecond})
	if err := slowLocal.Validate(); err == nil {
		t.Error("remote link faster than local should not validate")
	}
}

func TestTwoRegions(t *testing.T) {
	topo := TwoRegions(3)
	if topo.NumSites() != 6 {
		t.Fatalf("NumSites = %d, want 6", topo.NumSites())
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("TwoRegions invalid: %v", err)
	}
	if topo.DistanceClass(0, 1) != SameRegion {
		t.Error("sites in the same region should be SameRegion")
	}
	if topo.DistanceClass(0, 3) != GeoDistant {
		t.Error("sites in different regions should be GeoDistant")
	}
}

func TestDeploymentSpreadNodes(t *testing.T) {
	topo := Azure4DC()
	dep := NewDeployment(topo)
	ids := dep.SpreadNodes(10)
	if len(ids) != 10 || dep.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", dep.NumNodes())
	}
	if dep.Balance() > 1 {
		t.Errorf("Balance = %d, want <= 1", dep.Balance())
	}
	if err := dep.Validate(); err != nil {
		t.Fatalf("deployment invalid: %v", err)
	}
	// Nodes are spread round-robin: node 0 on site 0, node 5 on site 1, etc.
	if dep.SiteOf(0) != 0 || dep.SiteOf(5) != 1 {
		t.Error("round-robin placement not respected")
	}
}

func TestDeploymentNodesAt(t *testing.T) {
	topo := Azure4DC()
	dep := NewDeployment(topo)
	dep.SpreadNodes(8)
	for s := 0; s < topo.NumSites(); s++ {
		at := dep.NodesAt(SiteID(s))
		if len(at) != 2 {
			t.Errorf("site %d hosts %d nodes, want 2", s, len(at))
		}
		for _, id := range at {
			if dep.SiteOf(id) != SiteID(s) {
				t.Errorf("node %d reported at site %d but SiteOf says %d", id, s, dep.SiteOf(id))
			}
		}
	}
	load := dep.SiteLoad()
	for s, n := range load {
		if n != 2 {
			t.Errorf("SiteLoad[%d] = %d, want 2", s, n)
		}
	}
}

func TestDeploymentAddNodePanicsOnBadSite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid site")
		}
	}()
	dep := NewDeployment(Azure4DC())
	dep.AddNode(99)
}

func TestDeploymentNodeNames(t *testing.T) {
	dep := NewDeployment(Azure4DC())
	id := dep.AddNode(0)
	n := dep.Node(id)
	if n.Name == "" {
		t.Error("node name should not be empty")
	}
	nodes := dep.Nodes()
	if len(nodes) != 1 || nodes[0].ID != id {
		t.Error("Nodes() should return the provisioned node")
	}
}

// Property: for any pair of sites in any generated topology the distance
// class is symmetric and Local iff the sites are identical.
func TestDistanceClassProperties(t *testing.T) {
	f := func(nEU, nUS uint8, aRaw, bRaw uint16) bool {
		nPerRegion := int(nEU%4) + 1
		topo := TwoRegions(nPerRegion)
		n := topo.NumSites()
		a := SiteID(int(aRaw) % n)
		b := SiteID(int(bRaw) % n)
		da := topo.DistanceClass(a, b)
		db := topo.DistanceClass(b, a)
		if da != db {
			return false
		}
		if (a == b) != (da == Local) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SpreadNodes always yields a deployment whose per-site load
// differs by at most one node.
func TestSpreadNodesBalanceProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 200)
		dep := NewDeployment(Azure4DC())
		dep.SpreadNodes(n)
		return dep.Balance() <= 1 && dep.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: centrality is always non-negative and bounded by the largest
// one-way link latency of the topology.
func TestCentralityBoundsProperty(t *testing.T) {
	topo := Azure4DC()
	var maxOneWay time.Duration
	for i := 0; i < topo.NumSites(); i++ {
		for j := 0; j < topo.NumSites(); j++ {
			if rtt := topo.Link(SiteID(i), SiteID(j)).RTT / 2; rtt > maxOneWay {
				maxOneWay = rtt
			}
		}
	}
	for i := 0; i < topo.NumSites(); i++ {
		c := topo.Centrality(SiteID(i))
		if c < 0 || c > maxOneWay {
			t.Errorf("centrality of site %d = %v out of bounds [0, %v]", i, c, maxOneWay)
		}
	}
}
