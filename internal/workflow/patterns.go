package workflow

import (
	"fmt"
	"time"
)

// This file provides builders for the canonical data-access patterns of
// scientific workflows identified by the paper (§II-A): pipeline, scatter,
// gather, reduce and broadcast. Real workflows are typically a combination of
// these patterns; the builders compose by sharing file names.

// PatternConfig parameterizes the pattern builders.
type PatternConfig struct {
	// Prefix namespaces task IDs and file names so several patterns can be
	// combined in one workflow without collisions.
	Prefix string
	// FileSize is the size of every produced file.
	FileSize int64
	// Compute is the compute time of every task.
	Compute time.Duration
}

func (c PatternConfig) name(format string, args ...any) string {
	return c.Prefix + fmt.Sprintf(format, args...)
}

// Pipeline builds a linear chain of n tasks: each task consumes the file
// produced by its predecessor and produces one file. The first task reads an
// external input.
func Pipeline(cfg PatternConfig, n int) *Workflow {
	w := New(cfg.Prefix + "pipeline")
	if n <= 0 {
		return w
	}
	prev := cfg.name("input")
	w.AddExternalInput(prev, cfg.FileSize)
	for i := 0; i < n; i++ {
		out := cfg.name("stage%03d.out", i)
		w.MustAddTask(Task{
			ID:      cfg.name("stage%03d", i),
			Stage:   "pipeline",
			Inputs:  []string{prev},
			Outputs: []FileSpec{{Name: out, Size: cfg.FileSize}},
			Compute: cfg.Compute,
		})
		prev = out
	}
	return w
}

// Scatter builds one splitter task that produces fanout files, each consumed
// by an independent worker task.
func Scatter(cfg PatternConfig, fanout int) *Workflow {
	w := New(cfg.Prefix + "scatter")
	input := cfg.name("input")
	w.AddExternalInput(input, cfg.FileSize)
	splitter := Task{
		ID:      cfg.name("split"),
		Stage:   "scatter",
		Inputs:  []string{input},
		Compute: cfg.Compute,
	}
	for i := 0; i < fanout; i++ {
		splitter.Outputs = append(splitter.Outputs, FileSpec{Name: cfg.name("part%03d", i), Size: cfg.FileSize})
	}
	w.MustAddTask(splitter)
	for i := 0; i < fanout; i++ {
		w.MustAddTask(Task{
			ID:      cfg.name("work%03d", i),
			Stage:   "scatter-work",
			Inputs:  []string{cfg.name("part%03d", i)},
			Outputs: []FileSpec{{Name: cfg.name("work%03d.out", i), Size: cfg.FileSize}},
			Compute: cfg.Compute,
		})
	}
	return w
}

// Gather builds fanin independent producer tasks whose outputs are all
// consumed by a single collector task.
func Gather(cfg PatternConfig, fanin int) *Workflow {
	w := New(cfg.Prefix + "gather")
	collector := Task{
		ID:      cfg.name("collect"),
		Stage:   "gather",
		Outputs: []FileSpec{{Name: cfg.name("collected.out"), Size: cfg.FileSize}},
		Compute: cfg.Compute,
	}
	for i := 0; i < fanin; i++ {
		in := cfg.name("src%03d", i)
		w.AddExternalInput(in, cfg.FileSize)
		out := cfg.name("prod%03d.out", i)
		w.MustAddTask(Task{
			ID:      cfg.name("prod%03d", i),
			Stage:   "gather-produce",
			Inputs:  []string{in},
			Outputs: []FileSpec{{Name: out, Size: cfg.FileSize}},
			Compute: cfg.Compute,
		})
		collector.Inputs = append(collector.Inputs, out)
	}
	w.MustAddTask(collector)
	return w
}

// Reduce builds a binary reduction tree over leaves inputs: pairs of files
// are combined level by level until a single file remains. leaves is rounded
// up to the next power of two by reusing the last input.
func Reduce(cfg PatternConfig, leaves int) *Workflow {
	w := New(cfg.Prefix + "reduce")
	if leaves < 1 {
		leaves = 1
	}
	current := make([]string, 0, leaves)
	for i := 0; i < leaves; i++ {
		name := cfg.name("leaf%03d", i)
		w.AddExternalInput(name, cfg.FileSize)
		current = append(current, name)
	}
	level := 0
	for len(current) > 1 {
		var next []string
		for i := 0; i < len(current); i += 2 {
			j := i + 1
			if j >= len(current) {
				j = i // odd leftover pairs with itself
			}
			out := cfg.name("red-l%d-%03d", level, i/2)
			inputs := []string{current[i]}
			if current[j] != current[i] {
				inputs = append(inputs, current[j])
			}
			w.MustAddTask(Task{
				ID:      cfg.name("reduce-l%d-%03d", level, i/2),
				Stage:   fmt.Sprintf("reduce-level-%d", level),
				Inputs:  inputs,
				Outputs: []FileSpec{{Name: out, Size: cfg.FileSize}},
				Compute: cfg.Compute,
			})
			next = append(next, out)
		}
		current = next
		level++
	}
	return w
}

// Broadcast builds one producer task whose single output file is consumed by
// fanout independent consumer tasks (read-many, the paper's "write once, read
// many times" pattern in its purest form).
func Broadcast(cfg PatternConfig, fanout int) *Workflow {
	w := New(cfg.Prefix + "broadcast")
	input := cfg.name("input")
	w.AddExternalInput(input, cfg.FileSize)
	shared := cfg.name("shared.out")
	w.MustAddTask(Task{
		ID:      cfg.name("produce"),
		Stage:   "broadcast",
		Inputs:  []string{input},
		Outputs: []FileSpec{{Name: shared, Size: cfg.FileSize}},
		Compute: cfg.Compute,
	})
	for i := 0; i < fanout; i++ {
		w.MustAddTask(Task{
			ID:      cfg.name("consume%03d", i),
			Stage:   "broadcast-consume",
			Inputs:  []string{shared},
			Outputs: []FileSpec{{Name: cfg.name("consume%03d.out", i), Size: cfg.FileSize}},
			Compute: cfg.Compute,
		})
	}
	return w
}
