package workflow

import (
	"testing"
	"time"

	"geomds/internal/cloud"
)

func testDeployment(nodes int) *cloud.Deployment {
	dep := cloud.NewDeployment(cloud.Azure4DC())
	dep.SpreadNodes(nodes)
	return dep
}

func TestRoundRobinScheduler(t *testing.T) {
	w := diamond()
	dep := testDeployment(8)
	sched, err := (RoundRobinScheduler{}).Schedule(w, dep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(w, dep); err != nil {
		t.Fatal(err)
	}
	if len(sched) != 4 {
		t.Errorf("schedule covers %d tasks, want 4", len(sched))
	}
	load := sched.SiteLoad(dep)
	total := 0
	for _, n := range load {
		total += n
	}
	if total != 4 {
		t.Errorf("SiteLoad totals %d, want 4", total)
	}
}

func TestRoundRobinEmptyDeployment(t *testing.T) {
	dep := cloud.NewDeployment(cloud.Azure4DC())
	if _, err := (RoundRobinScheduler{}).Schedule(diamond(), dep); err == nil {
		t.Error("expected error for empty deployment")
	}
	if _, err := (RandomScheduler{}).Schedule(diamond(), dep); err == nil {
		t.Error("expected error for empty deployment")
	}
	if _, err := (LocalityScheduler{}).Schedule(diamond(), dep); err == nil {
		t.Error("expected error for empty deployment")
	}
}

func TestRandomSchedulerDeterministicWithSeed(t *testing.T) {
	w := Scatter(PatternConfig{Prefix: "r-"}, 12)
	dep := testDeployment(16)
	a, err := (RandomScheduler{Seed: 7}).Schedule(w, dep)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := (RandomScheduler{Seed: 7}).Schedule(w, dep)
	for id := range a {
		if a[id] != b[id] {
			t.Fatalf("same seed produced different schedules for %q", id)
		}
	}
	if err := a.Validate(w, dep); err != nil {
		t.Fatal(err)
	}
}

func TestLocalitySchedulerKeepsPipelinesTogether(t *testing.T) {
	// A pure pipeline should stay within a single site under the locality
	// policy: each task follows its only input's producer.
	w := Pipeline(PatternConfig{Prefix: "lp-", Compute: time.Second}, 10)
	dep := testDeployment(16)
	sched, err := (LocalityScheduler{}).Schedule(w, dep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(w, dep); err != nil {
		t.Fatal(err)
	}
	sites := make(map[cloud.SiteID]bool)
	for _, node := range sched {
		sites[dep.SiteOf(node)] = true
	}
	if len(sites) != 1 {
		t.Errorf("pipeline scheduled across %d sites, want 1", len(sites))
	}
}

func TestLocalitySchedulerSpreadsRoots(t *testing.T) {
	// Independent producers (gather pattern roots) should spread across sites.
	w := Gather(PatternConfig{Prefix: "lg-"}, 8)
	dep := testDeployment(16)
	sched, err := (LocalityScheduler{}).Schedule(w, dep)
	if err != nil {
		t.Fatal(err)
	}
	load := sched.SiteLoad(dep)
	if len(load) < 2 {
		t.Errorf("gather roots all landed on %d site(s), want spread", len(load))
	}
}

func TestLocalitySchedulerSingleSiteDeployment(t *testing.T) {
	// All nodes in one datacenter: every task must still get a node.
	dep := cloud.NewDeployment(cloud.Azure4DC())
	for i := 0; i < 4; i++ {
		dep.AddNode(1)
	}
	w := Scatter(PatternConfig{Prefix: "ss-"}, 6)
	sched, err := (LocalityScheduler{}).Schedule(w, dep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(w, dep); err != nil {
		t.Fatal(err)
	}
	for _, node := range sched {
		if dep.SiteOf(node) != 1 {
			t.Errorf("task scheduled outside the only populated site")
		}
	}
}

func TestScheduleValidateErrors(t *testing.T) {
	w := diamond()
	dep := testDeployment(4)
	sched := Schedule{"a": 0, "b": 1, "c": 2} // misses d
	if err := sched.Validate(w, dep); err == nil {
		t.Error("missing task should fail validation")
	}
	sched = Schedule{"a": 0, "b": 1, "c": 2, "d": 99}
	if err := sched.Validate(w, dep); err == nil {
		t.Error("unknown node should fail validation")
	}
}

func TestSchedulerNames(t *testing.T) {
	if (RoundRobinScheduler{}).Name() != "round-robin" ||
		(RandomScheduler{}).Name() != "random" ||
		(LocalityScheduler{}).Name() != "locality" {
		t.Error("scheduler names changed")
	}
}
