package workflow

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// diamond builds the classic diamond DAG:
//
//	  a
//	 / \
//	b   c
//	 \ /
//	  d
func diamond() *Workflow {
	w := New("diamond")
	w.AddExternalInput("in", 100)
	w.MustAddTask(Task{ID: "a", Inputs: []string{"in"}, Outputs: []FileSpec{{Name: "a.out", Size: 10}}, Compute: time.Second})
	w.MustAddTask(Task{ID: "b", Inputs: []string{"a.out"}, Outputs: []FileSpec{{Name: "b.out", Size: 10}}, Compute: 2 * time.Second})
	w.MustAddTask(Task{ID: "c", Inputs: []string{"a.out"}, Outputs: []FileSpec{{Name: "c.out", Size: 10}}, Compute: 3 * time.Second})
	w.MustAddTask(Task{ID: "d", Inputs: []string{"b.out", "c.out"}, Outputs: []FileSpec{{Name: "d.out", Size: 10}}, Compute: time.Second})
	return w
}

func TestAddTaskErrors(t *testing.T) {
	w := New("w")
	if err := w.AddTask(Task{ID: ""}); err == nil {
		t.Error("empty ID should be rejected")
	}
	if err := w.AddTask(Task{ID: "t1", Outputs: []FileSpec{{Name: "f"}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask(Task{ID: "t1"}); !errors.Is(err, ErrDuplicateTask) {
		t.Errorf("duplicate task = %v", err)
	}
	if err := w.AddTask(Task{ID: "t2", Outputs: []FileSpec{{Name: "f"}}}); !errors.Is(err, ErrDuplicateOutput) {
		t.Errorf("duplicate output = %v", err)
	}
}

func TestMustAddTaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w := New("w")
	w.MustAddTask(Task{ID: ""})
}

func TestTaskLookup(t *testing.T) {
	w := diamond()
	if w.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d", w.NumTasks())
	}
	task, err := w.Task("b")
	if err != nil || task.ID != "b" {
		t.Errorf("Task(b): %v", err)
	}
	if _, err := w.Task("zzz"); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown task = %v", err)
	}
	if p := w.Producer("a.out"); p == nil || p.ID != "a" {
		t.Error("Producer(a.out) should be task a")
	}
	if w.Producer("in") != nil {
		t.Error("external inputs have no producer")
	}
	if len(w.Tasks()) != 4 {
		t.Error("Tasks() length mismatch")
	}
}

func TestDependencies(t *testing.T) {
	w := diamond()
	deps, err := w.Dependencies("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 2 || deps[0] != "b" || deps[1] != "c" {
		t.Errorf("Dependencies(d) = %v", deps)
	}
	deps, _ = w.Dependencies("a")
	if len(deps) != 0 {
		t.Errorf("Dependencies(a) = %v, want none (external input)", deps)
	}
}

func TestValidateMissingInput(t *testing.T) {
	w := New("w")
	w.MustAddTask(Task{ID: "t", Inputs: []string{"ghost"}})
	if err := w.Validate(); !errors.Is(err, ErrMissingInput) {
		t.Errorf("Validate = %v, want ErrMissingInput", err)
	}
}

func TestValidateCycle(t *testing.T) {
	w := New("w")
	w.MustAddTask(Task{ID: "x", Inputs: []string{"y.out"}, Outputs: []FileSpec{{Name: "x.out"}}})
	w.MustAddTask(Task{ID: "y", Inputs: []string{"x.out"}, Outputs: []FileSpec{{Name: "y.out"}}})
	if err := w.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate = %v, want ErrCycle", err)
	}
}

func TestTopoSort(t *testing.T) {
	w := diamond()
	order, err := w.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, id := range order {
		pos[id] = i
	}
	if !(pos["a"] < pos["b"] && pos["a"] < pos["c"] && pos["b"] < pos["d"] && pos["c"] < pos["d"]) {
		t.Errorf("topological order violated: %v", order)
	}
}

func TestLevels(t *testing.T) {
	w := diamond()
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("Levels = %d, want 3", len(levels))
	}
	if len(levels[0]) != 1 || levels[0][0] != "a" {
		t.Errorf("level 0 = %v", levels[0])
	}
	if len(levels[1]) != 2 {
		t.Errorf("level 1 = %v", levels[1])
	}
	if len(levels[2]) != 1 || levels[2][0] != "d" {
		t.Errorf("level 2 = %v", levels[2])
	}
}

func TestCriticalPath(t *testing.T) {
	w := diamond()
	cp, err := w.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// a(1) -> c(3) -> d(1) = 5s
	if cp != 5*time.Second {
		t.Errorf("CriticalPath = %v, want 5s", cp)
	}
}

func TestStats(t *testing.T) {
	w := diamond()
	s, err := w.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks != 4 || s.Files != 4 || s.ExternalInputs != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Levels != 3 || s.MaxWidth != 2 {
		t.Errorf("Levels/MaxWidth = %d/%d", s.Levels, s.MaxWidth)
	}
	if s.TotalCompute != 7*time.Second {
		t.Errorf("TotalCompute = %v", s.TotalCompute)
	}
	// inputs: 1+1+1+2 = 5 reads, outputs: 4 writes
	if s.MetadataOps != 9 {
		t.Errorf("MetadataOps = %d, want 9", s.MetadataOps)
	}
}

func TestPatternPipeline(t *testing.T) {
	cfg := PatternConfig{Prefix: "p-", FileSize: 1 << 20, Compute: time.Second}
	w := Pipeline(cfg, 5)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s, _ := w.Stats()
	if s.Tasks != 5 || s.Levels != 5 || s.MaxWidth != 1 {
		t.Errorf("pipeline stats = %+v", s)
	}
	if Pipeline(cfg, 0).NumTasks() != 0 {
		t.Error("zero-length pipeline should be empty")
	}
}

func TestPatternScatter(t *testing.T) {
	w := Scatter(PatternConfig{Prefix: "s-"}, 8)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s, _ := w.Stats()
	if s.Tasks != 9 || s.Levels != 2 || s.MaxWidth != 8 {
		t.Errorf("scatter stats = %+v", s)
	}
}

func TestPatternGather(t *testing.T) {
	w := Gather(PatternConfig{Prefix: "g-"}, 6)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s, _ := w.Stats()
	if s.Tasks != 7 || s.Levels != 2 || s.MaxWidth != 6 {
		t.Errorf("gather stats = %+v", s)
	}
	collect, _ := w.Task("g-collect")
	if len(collect.Inputs) != 6 {
		t.Errorf("collector inputs = %d", len(collect.Inputs))
	}
}

func TestPatternReduce(t *testing.T) {
	w := Reduce(PatternConfig{Prefix: "r-"}, 8)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s, _ := w.Stats()
	// 8 -> 4 -> 2 -> 1: 4+2+1 = 7 tasks, 3 levels
	if s.Tasks != 7 || s.Levels != 3 {
		t.Errorf("reduce stats = %+v", s)
	}
	// Odd leaf counts still validate.
	if err := Reduce(PatternConfig{Prefix: "r2-"}, 5).Validate(); err != nil {
		t.Errorf("reduce(5): %v", err)
	}
	if Reduce(PatternConfig{Prefix: "r3-"}, 0).NumTasks() != 0 {
		t.Error("reduce(0) should have no tasks (single leaf, nothing to combine)")
	}
}

func TestPatternBroadcast(t *testing.T) {
	w := Broadcast(PatternConfig{Prefix: "b-"}, 10)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s, _ := w.Stats()
	if s.Tasks != 11 || s.MaxWidth != 10 {
		t.Errorf("broadcast stats = %+v", s)
	}
}

// Property: every pattern builder yields a valid (acyclic, closed) workflow
// whose topological order contains every task exactly once.
func TestPatternValidityProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		cfg := PatternConfig{Prefix: fmt.Sprintf("q%d-", n), FileSize: 1024, Compute: time.Millisecond}
		for _, w := range []*Workflow{
			Pipeline(cfg, n), Scatter(cfg, n), Gather(cfg, n), Reduce(cfg, n), Broadcast(cfg, n),
		} {
			if err := w.Validate(); err != nil {
				return false
			}
			order, err := w.TopoSort()
			if err != nil || len(order) != w.NumTasks() {
				return false
			}
			seen := make(map[string]bool)
			for _, id := range order {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the critical path never exceeds the total compute time and is at
// least the longest single task.
func TestCriticalPathBoundsProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%15) + 1
		cfg := PatternConfig{Prefix: "cp-", Compute: 3 * time.Second}
		w := Scatter(cfg, n)
		cp, err := w.CriticalPath()
		if err != nil {
			return false
		}
		s, _ := w.Stats()
		return cp >= cfg.Compute && cp <= s.TotalCompute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
