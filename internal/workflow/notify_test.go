package workflow

import (
	"context"
	"errors"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/registry"
)

func TestNotifierWaitNotify(t *testing.T) {
	n := NewNotifier()
	wakeA, cancelA := n.Wait("a")
	wakeB, cancelB := n.Wait("b")
	defer cancelB()

	n.Notify("a")
	select {
	case <-wakeA:
	default:
		t.Fatal("waiter on \"a\" not woken by Notify(\"a\")")
	}
	select {
	case <-wakeB:
		t.Fatal("waiter on \"b\" woken by Notify(\"a\")")
	default:
	}
	cancelA() // idempotent after the wake
	cancelA()

	// A cancelled waiter is not woken (and does not leak).
	wakeC, cancelC := n.Wait("c")
	cancelC()
	n.Notify("c")
	select {
	case <-wakeC:
		t.Fatal("cancelled waiter woken")
	default:
	}

	// Close wakes everything still parked, and later Waits return pre-woken.
	n.Close()
	select {
	case <-wakeB:
	default:
		t.Fatal("Close left a waiter parked")
	}
	wakeD, cancelD := n.Wait("d")
	defer cancelD()
	select {
	case <-wakeD:
	default:
		t.Fatal("Wait on a closed notifier must return a pre-woken channel")
	}
}

func TestNotifierConsumeFeed(t *testing.T) {
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(7), latency.WithSleeper(func(time.Duration) {}))

	// A feed-less fabric is refused.
	bare := core.NewFabric(topo, lat, core.WithCacheCapacity(0, 0))
	if err := NewNotifier().ConsumeFeed(bare); !errors.Is(err, core.ErrNoFeed) {
		t.Fatalf("ConsumeFeed over feed-less fabric = %v, want ErrNoFeed", err)
	}

	fabric := core.NewFabric(topo, lat, core.WithCacheCapacity(0, 0), core.WithChangeFeeds())
	defer fabric.Close()
	svc, err := core.NewService(fabric, core.Centralized)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	n := NewNotifier()
	if err := n.ConsumeFeed(fabric); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	wake, cancel := n.Wait("nf/a")
	defer cancel()
	entry := registry.NewEntry("nf/a", 64, "test", registry.Location{Site: 0, Node: registry.NoNode})
	if _, err := svc.Create(context.Background(), 0, entry); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wake:
	case <-time.After(5 * time.Second):
		t.Fatal("feed put never woke the waiter")
	}
}

// TestEngineFeedNotifierReactive runs a cross-site pipeline under feed-driven
// replication with a retry interval far longer than the test budget: the run
// can only finish in time if blocked tasks are woken by the feeds rather than
// sleeping out their polling intervals.
func TestEngineFeedNotifierReactive(t *testing.T) {
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(11), latency.WithSleeper(func(time.Duration) {}))
	fabric := core.NewFabric(topo, lat, core.WithCacheCapacity(0, 0), core.WithChangeFeeds())
	defer fabric.Close()
	svc, err := core.NewReplicated(fabric, 0, core.WithSyncInterval(time.Hour), core.WithFeedSync())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	n := NewNotifier()
	if err := n.ConsumeFeed(fabric); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	dep := cloud.NewDeployment(topo)
	dep.SpreadNodes(8)
	const interval = 30 * time.Second
	eng := NewEngine(dep, svc, lat, EngineConfig{RetryInterval: interval, Notifier: n})

	w := Pipeline(PatternConfig{Prefix: "nf-", FileSize: 1 << 12, Compute: 0}, 6)
	sched, err := (RoundRobinScheduler{}).Schedule(w, dep)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), w, sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Wall >= interval {
		t.Fatalf("run took %v — a blocked task slept out the %v polling interval instead of being woken", res.Wall, interval)
	}
	t.Logf("pipeline finished in %v with %d retries short-circuited by feed wake-ups", res.Wall, res.Retries)
}
