package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// Engine executes workflows on a multi-site deployment, performing every
// file-metadata interaction through a core.MetadataService. Each execution
// node processes its assigned tasks sequentially (the paper's small VMs have
// a single core); independent nodes run concurrently.
//
// For every task the engine follows the metadata passing scheme of §II-A:
// it queries the metadata service for the task's input files, simulates the
// task's computation, and publishes the metadata of the produced files.
// Under eventually consistent strategies an input's metadata may not be
// visible yet; the engine then polls with a configurable back-off, which is
// exactly the "idle time" the hybrid strategy is designed to shrink.
type Engine struct {
	dep *cloud.Deployment
	svc core.MetadataService
	lat *latency.Model
	cfg EngineConfig
	obs engineObs
}

// engineObs holds the engine's observability instruments, resolved once at
// construction. All fields tolerate being nil (instrumentation disabled).
type engineObs struct {
	started   *metrics.Counter   // workflow_tasks_started_total
	completed *metrics.Counter   // workflow_tasks_completed_total
	failed    *metrics.Counter   // workflow_tasks_failed_total
	retries   *metrics.Counter   // workflow_retries_total: polls that found an input not yet visible
	taskTime  *metrics.Histogram // workflow_task_latency_ns (wall-clock)
}

func newEngineObs(reg *metrics.Registry) engineObs {
	return engineObs{
		started:   reg.Counter("workflow_tasks_started_total"),
		completed: reg.Counter("workflow_tasks_completed_total"),
		failed:    reg.Counter("workflow_tasks_failed_total"),
		retries:   reg.Counter("workflow_retries_total"),
		taskTime:  reg.Histogram("workflow_task_latency_ns"),
	}
}

// EngineConfig tunes the execution engine.
type EngineConfig struct {
	// RetryInterval is the simulated delay between polls when an input's
	// metadata is not yet visible (default 250 ms).
	RetryInterval time.Duration
	// MaxRetries bounds the polls per input before giving up (default 400).
	MaxRetries int
	// Progress optionally receives one completion event per metadata
	// operation performed by tasks (used to build Fig. 6-style timelines).
	Progress *metrics.Progress
	// SkipStageIn skips publishing metadata for the workflow's external
	// inputs; use it when the caller has already registered them.
	SkipStageIn bool
	// Notifier, when set, turns invisible-input waits reactive: the engine
	// parks on the input's name and the notifier wakes it as soon as the
	// change feeds publish a put for it, instead of sleeping the full
	// RetryInterval. Polling continues underneath as the fall-back, so a
	// missed wake-up costs one interval, never correctness.
	Notifier *Notifier
	// Metrics selects the live-observability registry the engine reports
	// tasks started/completed/failed, retry counts and task latencies to.
	// nil means metrics.Default; DisableMetrics turns instrumentation off.
	Metrics *metrics.Registry
	// DisableMetrics disables live instrumentation even when Metrics is nil.
	DisableMetrics bool
}

// DefaultRetryInterval is the default simulated metadata-poll interval.
const DefaultRetryInterval = 250 * time.Millisecond

// DefaultMaxRetries is the default bound on metadata polls per input.
const DefaultMaxRetries = 400

// NewEngine returns an engine executing workflows on the given deployment
// through the given metadata service. The latency model converts simulated
// compute and retry intervals into (scaled) wall-clock waits.
func NewEngine(dep *cloud.Deployment, svc core.MetadataService, lat *latency.Model, cfg EngineConfig) *Engine {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = DefaultRetryInterval
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	reg := cfg.Metrics
	if reg == nil && !cfg.DisableMetrics {
		reg = metrics.Default
	}
	return &Engine{dep: dep, svc: svc, lat: lat, cfg: cfg, obs: newEngineObs(reg)}
}

// Result summarizes one workflow execution.
type Result struct {
	// Workflow is the executed workflow's name.
	Workflow string
	// Strategy is the metadata strategy used.
	Strategy core.StrategyKind
	// Makespan is the end-to-end execution time in simulated seconds.
	Makespan time.Duration
	// Wall is the wall-clock time the (scaled) execution took.
	Wall time.Duration
	// Reads and Writes count metadata operations performed by tasks.
	Reads, Writes int
	// Retries counts metadata polls that found an input not yet visible.
	Retries int
	// StageInWrites counts metadata writes for external inputs.
	StageInWrites int
	// TaskTime records each task's execution time (metadata + compute).
	TaskTime map[string]time.Duration
	// NodeBusy records the total busy time per node.
	NodeBusy map[cloud.NodeID]time.Duration
}

// MetadataOps returns the total number of task-issued metadata operations.
func (r Result) MetadataOps() int { return r.Reads + r.Writes }

// Run executes the workflow under the given schedule and returns the
// execution summary. The workflow must validate and the schedule must cover
// it. The context bounds the whole run: once it is cancelled (or its
// deadline passes) every in-flight task aborts at its next metadata
// operation, retry wait, or simulated-compute sleep, and Run returns with
// the first error recorded — typically one wrapping context.Canceled or
// context.DeadlineExceeded.
func (e *Engine) Run(ctx context.Context, w *Workflow, sched Schedule) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := sched.Validate(w, e.dep); err != nil {
		return Result{}, err
	}

	res := Result{
		Workflow: w.Name,
		Strategy: e.svc.Kind(),
		TaskTime: make(map[string]time.Duration, w.NumTasks()),
		NodeBusy: make(map[cloud.NodeID]time.Duration, e.dep.NumNodes()),
	}
	start := time.Now()

	if !e.cfg.SkipStageIn {
		n, err := e.stageIn(ctx, w)
		res.StageInWrites = n
		if err != nil {
			return res, err
		}
	}

	// Dependency bookkeeping.
	tasks := w.Tasks()
	remaining := make(map[string]int, len(tasks))
	dependents := make(map[string][]string, len(tasks))
	for _, t := range tasks {
		deps, err := w.Dependencies(t.ID)
		if err != nil {
			return res, err
		}
		remaining[t.ID] = len(deps)
		for _, d := range deps {
			dependents[d] = append(dependents[d], t.ID)
		}
	}

	// One buffered queue per node; the dispatcher never blocks.
	queues := make(map[cloud.NodeID]chan *Task, e.dep.NumNodes())
	for i := 0; i < e.dep.NumNodes(); i++ {
		queues[cloud.NodeID(i)] = make(chan *Task, len(tasks))
	}

	var (
		mu       sync.Mutex
		firstErr error
		done     sync.WaitGroup
	)
	done.Add(len(tasks))

	var dispatch func(id string)
	dispatch = func(id string) {
		t, _ := w.Task(id)
		queues[sched[id]] <- t
	}

	complete := func(id string) {
		mu.Lock()
		next := make([]string, 0, len(dependents[id]))
		for _, dep := range dependents[id] {
			remaining[dep]--
			if remaining[dep] == 0 {
				next = append(next, dep)
			}
		}
		mu.Unlock()
		for _, id := range next {
			dispatch(id)
		}
		done.Done()
	}

	recordErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// Node workers.
	var workers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < e.dep.NumNodes(); i++ {
		node := e.dep.Node(cloud.NodeID(i))
		workers.Add(1)
		go func(node cloud.Node, queue chan *Task) {
			defer workers.Done()
			for {
				select {
				case <-stop:
					return
				case t := <-queue:
					e.obs.started.Inc()
					taskStart := time.Now()
					reads, writes, retries, err := e.runTask(ctx, node, t)
					wall := time.Since(taskStart)
					if err == nil {
						e.obs.completed.Inc()
					} else {
						e.obs.failed.Inc()
					}
					e.obs.retries.Add(int64(retries))
					e.obs.taskTime.ObserveDuration(wall)
					elapsed := e.lat.ToSimulated(wall)
					mu.Lock()
					res.Reads += reads
					res.Writes += writes
					res.Retries += retries
					res.TaskTime[t.ID] = elapsed
					res.NodeBusy[node.ID] += elapsed
					mu.Unlock()
					if err != nil {
						recordErr(fmt.Errorf("task %q on %s: %w", t.ID, node.Name, err))
					}
					complete(t.ID)
				}
			}
		}(node, queues[node.ID])
	}

	// Seed the ready tasks.
	initial := make([]string, 0)
	mu.Lock()
	for id, n := range remaining {
		if n == 0 {
			initial = append(initial, id)
		}
	}
	mu.Unlock()
	for _, id := range initial {
		dispatch(id)
	}

	done.Wait()
	close(stop)
	workers.Wait()

	res.Wall = time.Since(start)
	res.Makespan = e.lat.ToSimulated(res.Wall)
	return res, firstErr
}

// stageIn publishes metadata entries for the workflow's external inputs,
// spreading their locations round-robin across the deployment's sites.
func (e *Engine) stageIn(ctx context.Context, w *Workflow) (int, error) {
	sites := e.dep.Topology().Sites()
	writes := 0
	for i, f := range w.ExternalInputs {
		site := sites[i%len(sites)].ID
		entry := registry.NewEntry(f.Name, f.Size, "stage-in", registry.Location{Site: site, Node: registry.NoNode})
		if _, err := e.svc.Create(ctx, site, entry); err != nil && !errors.Is(err, core.ErrExists) {
			return writes, fmt.Errorf("stage-in %q: %w", f.Name, err)
		}
		writes++
	}
	return writes, nil
}

// runTask executes one task on one node: resolve inputs, compute, publish
// outputs.
func (e *Engine) runTask(ctx context.Context, node cloud.Node, t *Task) (reads, writes, retries int, err error) {
	// Resolve every input's metadata, polling while it is not yet visible.
	for _, in := range t.Inputs {
		r, rr, lookupErr := e.lookupWithRetry(ctx, node, in)
		reads += r
		retries += rr
		if lookupErr != nil {
			return reads, writes, retries, lookupErr
		}
	}

	// Simulate the task's computation.
	if t.Compute > 0 {
		if err := e.lat.InjectDuration(ctx, t.Compute); err != nil {
			return reads, writes, retries, err
		}
	}

	// Publish the produced files.
	for _, out := range t.Outputs {
		entry := registry.NewEntry(out.Name, out.Size, t.ID, registry.Location{Site: node.Site, Node: node.ID})
		if _, createErr := e.svc.Create(ctx, node.Site, entry); createErr != nil {
			if errors.Is(createErr, core.ErrExists) {
				// Another attempt already published it (idempotent restart);
				// record the copy we now hold instead.
				if _, locErr := e.svc.AddLocation(ctx, node.Site, out.Name, registry.Location{Site: node.Site, Node: node.ID}); locErr != nil {
					return reads, writes, retries, locErr
				}
			} else {
				return reads, writes, retries, createErr
			}
		}
		writes++
		if e.cfg.Progress != nil {
			e.cfg.Progress.Done()
		}
	}
	return reads, writes, retries, nil
}

// lookupWithRetry polls the metadata service until the entry is visible from
// the node's site or the retry budget is exhausted. With a Notifier the wait
// between polls is cut short by a feed wake-up for the input's name; the
// waiter is always registered before the lookup so a put racing the check
// wakes the next round instead of being lost.
func (e *Engine) lookupWithRetry(ctx context.Context, node cloud.Node, name string) (reads, retries int, err error) {
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		var wake <-chan struct{}
		cancelWait := func() {}
		if e.cfg.Notifier != nil {
			wake, cancelWait = e.cfg.Notifier.Wait(name)
		}
		reads++
		_, lookupErr := e.svc.Lookup(ctx, node.Site, name)
		if lookupErr == nil {
			cancelWait()
			if e.cfg.Progress != nil {
				e.cfg.Progress.Done()
			}
			return reads, retries, nil
		}
		if !errors.Is(lookupErr, core.ErrNotFound) {
			cancelWait()
			return reads, retries, lookupErr
		}
		retries++
		if wake != nil {
			timer := time.NewTimer(e.lat.ToWall(e.cfg.RetryInterval))
			select {
			case <-wake:
				timer.Stop()
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				cancelWait()
				return reads, retries, ctx.Err()
			}
			cancelWait()
			continue
		}
		if err := e.lat.InjectDuration(ctx, e.cfg.RetryInterval); err != nil {
			return reads, retries, err
		}
	}
	return reads, retries, fmt.Errorf("workflow: input %q never became visible from %s after %d polls: %w",
		name, node.Name, e.cfg.MaxRetries, core.ErrNotFound)
}
