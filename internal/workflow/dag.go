// Package workflow models scientific workflows — directed acyclic graphs of
// batch tasks exchanging data through files — and executes them on a
// multi-site cloud deployment through a metadata service.
//
// Workflow tasks are standalone computations that read input files, compute
// for a while and produce output files; the workflow engine is essentially a
// scheduler that builds and manages the task-dependency graph based on the
// tasks' input/output files (paper §I). The engine in this package follows
// the paper's well-defined metadata passing scheme: it queries the metadata
// service to retrieve a job's input files, runs the job, and stores the
// metadata of the results (§II-A).
package workflow

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// FileSpec describes one file produced by a task.
type FileSpec struct {
	// Name is the globally unique file name.
	Name string
	// Size is the file size in bytes.
	Size int64
}

// Task is one batch job of a workflow.
type Task struct {
	// ID uniquely identifies the task within its workflow.
	ID string
	// Stage is an optional label grouping tasks of the same phase
	// (e.g. "mProject", "mAdd"); used for reporting only.
	Stage string
	// Inputs are the names of the files the task reads. They must either be
	// produced by other tasks of the workflow or declared as external inputs.
	Inputs []string
	// Outputs are the files the task produces. Output names must be unique
	// across the whole workflow (write-once semantics, paper §II-A).
	Outputs []FileSpec
	// Compute is the simulated computation time of the task.
	Compute time.Duration
}

// Workflow is a DAG of tasks connected by file dependencies.
type Workflow struct {
	// Name identifies the workflow (e.g. "montage", "buzzflow").
	Name string
	// ExternalInputs are files assumed to pre-exist (staged-in data sets).
	ExternalInputs []FileSpec

	tasks []*Task
	byID  map[string]*Task
	// producer maps every produced file name to the task that creates it.
	producer map[string]*Task
}

// Validation errors.
var (
	// ErrDuplicateTask is returned when two tasks share an ID.
	ErrDuplicateTask = errors.New("workflow: duplicate task id")
	// ErrDuplicateOutput is returned when two tasks produce the same file.
	ErrDuplicateOutput = errors.New("workflow: duplicate output file")
	// ErrMissingInput is returned when a task reads a file nobody produces
	// and that is not an external input.
	ErrMissingInput = errors.New("workflow: missing input file")
	// ErrCycle is returned when the task graph contains a cycle.
	ErrCycle = errors.New("workflow: dependency cycle")
	// ErrUnknownTask is returned when referencing a task that does not exist.
	ErrUnknownTask = errors.New("workflow: unknown task")
)

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{
		Name:     name,
		byID:     make(map[string]*Task),
		producer: make(map[string]*Task),
	}
}

// AddExternalInput declares a file that exists before the workflow starts.
func (w *Workflow) AddExternalInput(name string, size int64) {
	w.ExternalInputs = append(w.ExternalInputs, FileSpec{Name: name, Size: size})
}

// AddTask adds a task to the workflow. It returns an error if the ID or any
// output name is already taken.
func (w *Workflow) AddTask(t Task) error {
	if t.ID == "" {
		return fmt.Errorf("%w: empty id", ErrUnknownTask)
	}
	if _, exists := w.byID[t.ID]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateTask, t.ID)
	}
	for _, out := range t.Outputs {
		if _, exists := w.producer[out.Name]; exists {
			return fmt.Errorf("%w: %q", ErrDuplicateOutput, out.Name)
		}
	}
	task := t // copy; the workflow owns its task values
	w.tasks = append(w.tasks, &task)
	w.byID[task.ID] = &task
	for _, out := range task.Outputs {
		w.producer[out.Name] = &task
	}
	return nil
}

// MustAddTask adds a task and panics on error; convenient in generators whose
// construction is statically known to be valid.
func (w *Workflow) MustAddTask(t Task) {
	if err := w.AddTask(t); err != nil {
		panic(err)
	}
}

// NumTasks returns the number of tasks.
func (w *Workflow) NumTasks() int { return len(w.tasks) }

// Tasks returns the tasks in insertion order.
func (w *Workflow) Tasks() []*Task {
	out := make([]*Task, len(w.tasks))
	copy(out, w.tasks)
	return out
}

// Task returns the task with the given ID.
func (w *Workflow) Task(id string) (*Task, error) {
	t, ok := w.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTask, id)
	}
	return t, nil
}

// Producer returns the task producing the given file, or nil if the file is
// an external input (or unknown).
func (w *Workflow) Producer(file string) *Task { return w.producer[file] }

// isExternal reports whether the file is declared as an external input.
func (w *Workflow) isExternal(file string) bool {
	for _, f := range w.ExternalInputs {
		if f.Name == file {
			return true
		}
	}
	return false
}

// Dependencies returns the IDs of the tasks that must complete before the
// given task can run (the producers of its non-external inputs), without
// duplicates, in sorted order.
func (w *Workflow) Dependencies(id string) ([]string, error) {
	t, err := w.Task(id)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, in := range t.Inputs {
		if p := w.producer[in]; p != nil {
			set[p.ID] = true
		} else if !w.isExternal(in) {
			return nil, fmt.Errorf("%w: task %q reads %q", ErrMissingInput, id, in)
		}
	}
	deps := make([]string, 0, len(set))
	for d := range set {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	return deps, nil
}

// Validate checks the structural invariants of the workflow: every input is
// produced exactly once or staged externally, and the graph is acyclic.
func (w *Workflow) Validate() error {
	for _, t := range w.tasks {
		if _, err := w.Dependencies(t.ID); err != nil {
			return err
		}
	}
	if _, err := w.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns the task IDs in a topological order (dependencies before
// dependents). It returns ErrCycle if the graph has a cycle.
func (w *Workflow) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(w.tasks))
	dependents := make(map[string][]string, len(w.tasks))
	for _, t := range w.tasks {
		deps, err := w.Dependencies(t.ID)
		if err != nil {
			return nil, err
		}
		indeg[t.ID] = len(deps)
		for _, d := range deps {
			dependents[d] = append(dependents[d], t.ID)
		}
	}
	// Kahn's algorithm with deterministic (sorted) tie-breaking.
	var ready []string
	for _, t := range w.tasks {
		if indeg[t.ID] == 0 {
			ready = append(ready, t.ID)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		next := dependents[id]
		sort.Strings(next)
		for _, dep := range next {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(order) != len(w.tasks) {
		return nil, ErrCycle
	}
	return order, nil
}

// Levels groups task IDs by dependency depth: level 0 contains tasks with no
// workflow-internal dependencies, level k tasks whose deepest dependency is
// at level k-1. Tasks within one level can run in parallel.
func (w *Workflow) Levels() ([][]string, error) {
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	depth := make(map[string]int, len(order))
	maxDepth := 0
	for _, id := range order {
		deps, _ := w.Dependencies(id)
		d := 0
		for _, dep := range deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]string, maxDepth+1)
	for _, id := range order {
		levels[depth[id]] = append(levels[depth[id]], id)
	}
	return levels, nil
}

// CriticalPath returns the longest chain of compute time through the DAG,
// i.e. the minimum possible makespan with unlimited parallelism and free
// metadata/data access.
func (w *Workflow) CriticalPath() (time.Duration, error) {
	order, err := w.TopoSort()
	if err != nil {
		return 0, err
	}
	finish := make(map[string]time.Duration, len(order))
	var longest time.Duration
	for _, id := range order {
		t := w.byID[id]
		deps, _ := w.Dependencies(id)
		var start time.Duration
		for _, dep := range deps {
			if finish[dep] > start {
				start = finish[dep]
			}
		}
		finish[id] = start + t.Compute
		if finish[id] > longest {
			longest = finish[id]
		}
	}
	return longest, nil
}

// Stats summarizes a workflow's shape.
type Stats struct {
	// Tasks is the number of tasks.
	Tasks int
	// Files is the number of files produced by the workflow.
	Files int
	// ExternalInputs is the number of staged-in files.
	ExternalInputs int
	// Levels is the DAG depth.
	Levels int
	// MaxWidth is the size of the largest level (degree of parallelism).
	MaxWidth int
	// TotalCompute is the sum of all task compute times.
	TotalCompute time.Duration
	// MetadataOps estimates the number of metadata operations an execution
	// performs: one read per task input plus one write per task output.
	MetadataOps int
}

// Stats computes summary statistics; the workflow must be valid.
func (w *Workflow) Stats() (Stats, error) {
	levels, err := w.Levels()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Tasks:          len(w.tasks),
		Files:          len(w.producer),
		ExternalInputs: len(w.ExternalInputs),
		Levels:         len(levels),
	}
	for _, lvl := range levels {
		if len(lvl) > s.MaxWidth {
			s.MaxWidth = len(lvl)
		}
	}
	for _, t := range w.tasks {
		s.TotalCompute += t.Compute
		s.MetadataOps += len(t.Inputs) + len(t.Outputs)
	}
	return s, nil
}
