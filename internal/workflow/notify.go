package workflow

import (
	"sync"

	"context"

	"geomds/internal/core"
	"geomds/internal/feed"
	"geomds/internal/metrics"
)

// Notifier turns the fabric's change feeds into task wake-ups: instead of
// polling for an input's metadata on a fixed interval, a blocked task parks
// on its input's name and is woken the moment a put for that name is
// published anywhere in the deployment. Sync-marked events wake waiters too
// — deliberately: under feed-driven replication the Sync apply is exactly
// the moment the entry becomes visible at the waiting task's site.
//
// The polling fall-back never goes away: the engine still re-polls on its
// retry interval even with a Notifier attached, so a wake-up lost to feed
// retention (snapshot fallback collapses events) only costs latency, never
// progress.
type Notifier struct {
	mu      sync.Mutex
	waiters map[string][]chan struct{}
	closed  bool

	cancel context.CancelFunc
	comb   *feed.Combiner
	done   chan struct{}

	wakeups *metrics.Counter // workflow_feed_wakeups_total
}

// NewNotifier returns an empty notifier. Attach it to a fabric's feeds with
// ConsumeFeed, or drive it manually with Notify (tests, external feeds).
func NewNotifier() *Notifier {
	return &Notifier{waiters: make(map[string][]chan struct{})}
}

// ConsumeFeed subscribes the notifier to every site feed of the fabric and
// starts waking waiters on put events. It fails with core.ErrNoFeed when the
// fabric was not built WithChangeFeeds. Call Close to detach.
func (n *Notifier) ConsumeFeed(fabric *core.Fabric) error {
	sources, err := fabric.FeedSources()
	if err != nil {
		return err
	}
	n.wakeups = fabric.Metrics().Counter("workflow_feed_wakeups_total")
	comb := feed.NewCombiner(sources, feed.WithCombinerMetrics(fabric.Metrics()))
	ctx, cancel := context.WithCancel(context.Background())
	comb.Start(ctx)
	n.cancel, n.comb, n.done = cancel, comb, make(chan struct{})
	go func() {
		defer close(n.done)
		for sev := range comb.Events() {
			if sev.Event.Op == feed.OpPut {
				n.Notify(sev.Event.Name)
			}
		}
	}()
	return nil
}

// Wait registers interest in the next put of name. It returns the wake
// channel (closed on notification) and a cancel function releasing the
// registration; cancel is idempotent and must be called when the waiter
// stops caring (the engine calls it after every poll round). Register BEFORE
// checking the lookup — never after — or a put landing between the check
// and the registration is lost and the waiter sleeps a full poll interval.
func (n *Notifier) Wait(name string) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		close(ch) // wake immediately: a closed notifier must not park anyone
		return ch, func() {}
	}
	n.waiters[name] = append(n.waiters[name], ch)
	n.mu.Unlock()
	return ch, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		ws := n.waiters[name]
		for i, w := range ws {
			if w == ch {
				n.waiters[name] = append(ws[:i], ws[i+1:]...)
				if len(n.waiters[name]) == 0 {
					delete(n.waiters, name)
				}
				return
			}
		}
	}
}

// Notify wakes every waiter parked on exactly name and clears them. Waking
// is per-name, not broadcast: a thousand tasks blocked on distinct inputs do
// not stampede the metadata service when one unrelated file lands.
func (n *Notifier) Notify(name string) {
	n.mu.Lock()
	ws := n.waiters[name]
	delete(n.waiters, name)
	n.mu.Unlock()
	if len(ws) > 0 && n.wakeups != nil {
		n.wakeups.Add(int64(len(ws)))
	}
	for _, ch := range ws {
		close(ch)
	}
}

// Close detaches the feed consumer (if attached) and wakes every remaining
// waiter so nothing stays parked on a dead notifier. Idempotent.
func (n *Notifier) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	all := n.waiters
	n.waiters = make(map[string][]chan struct{})
	n.mu.Unlock()
	if n.cancel != nil {
		n.cancel()
		n.comb.Close()
		<-n.done
	}
	for _, ws := range all {
		for _, ch := range ws {
			close(ch)
		}
	}
}
