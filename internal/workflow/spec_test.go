package workflow

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSpecRoundTrip(t *testing.T) {
	w := diamond()
	spec := w.ToSpec()
	if spec.Name != "diamond" || len(spec.Tasks) != 4 || len(spec.ExternalInputs) != 1 {
		t.Fatalf("spec shape wrong: %+v", spec)
	}
	back, err := FromSpec(spec)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	if back.NumTasks() != w.NumTasks() {
		t.Errorf("tasks = %d, want %d", back.NumTasks(), w.NumTasks())
	}
	origStats, _ := w.Stats()
	backStats, _ := back.Stats()
	if origStats != backStats {
		t.Errorf("stats changed across round trip:\n  orig %+v\n  back %+v", origStats, backStats)
	}
	tb, _ := back.Task("b")
	if tb.Compute != 2*time.Second {
		t.Errorf("compute lost: %v", tb.Compute)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	w := Scatter(PatternConfig{Prefix: "sp-", FileSize: 4096, Compute: 1500 * time.Millisecond}, 5)
	var buf bytes.Buffer
	if err := w.WriteSpec(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"tasks\"") {
		t.Error("JSON spec missing tasks field")
	}
	back, err := ReadSpec(&buf)
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	if back.NumTasks() != w.NumTasks() {
		t.Errorf("tasks = %d, want %d", back.NumTasks(), w.NumTasks())
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped workflow invalid: %v", err)
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.json")
	w := Pipeline(PatternConfig{Prefix: "fp-", Compute: time.Second}, 4)
	if err := w.SaveSpec(path); err != nil {
		t.Fatalf("SaveSpec: %v", err)
	}
	back, err := LoadSpec(path)
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if back.Name != w.Name || back.NumTasks() != 4 {
		t.Errorf("loaded workflow differs: %s, %d tasks", back.Name, back.NumTasks())
	}
}

func TestFromSpecErrors(t *testing.T) {
	// Bad compute duration.
	_, err := FromSpec(Spec{Name: "bad", Tasks: []TaskSpec{{ID: "t", Compute: "three seconds"}}})
	if err == nil {
		t.Error("invalid compute should fail")
	}
	// Duplicate task IDs.
	_, err = FromSpec(Spec{Name: "dup", Tasks: []TaskSpec{{ID: "t"}, {ID: "t"}}})
	if err == nil {
		t.Error("duplicate IDs should fail")
	}
	// Missing input (validation failure).
	_, err = FromSpec(Spec{Name: "missing", Tasks: []TaskSpec{{ID: "t", Inputs: []string{"ghost"}}}})
	if err == nil {
		t.Error("missing input should fail validation")
	}
}

func TestReadSpecGarbage(t *testing.T) {
	if _, err := ReadSpec(strings.NewReader("{not json")); err == nil {
		t.Error("garbage JSON should fail")
	}
}

func TestLoadSpecMissingFile(t *testing.T) {
	if _, err := LoadSpec("/nonexistent/path/wf.json"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSpecOfGeneratedWorkflowsExecutable(t *testing.T) {
	// A generated workflow survives the JSON round trip and still runs
	// through the engine.
	w := Gather(PatternConfig{Prefix: "ge-", FileSize: 512}, 4)
	var buf bytes.Buffer
	if err := w.WriteSpec(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	order, err := back.TopoSort()
	if err != nil || len(order) != back.NumTasks() {
		t.Fatalf("TopoSort after round trip: %v", err)
	}
}
