package workflow

import (
	"context"
	"errors"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/metrics"
)

// newEngineFixture builds a 4-site deployment, a no-sleep latency model and a
// metadata service of the given strategy, plus an engine over them.
func newEngineFixture(t *testing.T, kind core.StrategyKind, nodes int, cfg EngineConfig) (*Engine, core.MetadataService, *cloud.Deployment, *latency.Model) {
	t.Helper()
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(3), latency.WithSleeper(func(time.Duration) {}))
	fabric := core.NewFabric(topo, lat, core.WithCacheCapacity(0, 0))
	svc, err := core.NewService(fabric, kind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	dep := cloud.NewDeployment(topo)
	dep.SpreadNodes(nodes)
	return NewEngine(dep, svc, lat, cfg), svc, dep, lat
}

func TestEngineRunsDiamond(t *testing.T) {
	eng, svc, dep, _ := newEngineFixture(t, core.Centralized, 8, EngineConfig{})
	w := diamond()
	sched, _ := (RoundRobinScheduler{}).Schedule(w, dep)
	res, err := eng.Run(context.Background(), w, sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Workflow != "diamond" || res.Strategy != core.Centralized {
		t.Errorf("result identity wrong: %+v", res)
	}
	// 5 input reads, 4 output writes, 1 external stage-in.
	if res.Reads < 5 || res.Writes != 4 || res.StageInWrites != 1 {
		t.Errorf("ops = %d reads / %d writes / %d stage-in", res.Reads, res.Writes, res.StageInWrites)
	}
	if res.MetadataOps() != res.Reads+res.Writes {
		t.Error("MetadataOps accessor inconsistent")
	}
	if len(res.TaskTime) != 4 {
		t.Errorf("TaskTime covers %d tasks", len(res.TaskTime))
	}
	// Every produced file must now be resolvable.
	for _, f := range []string{"a.out", "b.out", "c.out", "d.out"} {
		if _, err := svc.Lookup(context.Background(), 0, f); err != nil {
			t.Errorf("output %q not published: %v", f, err)
		}
	}
}

func TestEngineAllStrategies(t *testing.T) {
	w := Scatter(PatternConfig{Prefix: "es-", FileSize: 1 << 16, Compute: 0}, 12)
	for _, kind := range core.Strategies {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			// A short retry interval keeps eventually consistent strategies fast
			// in the no-sleep test fixture.
			eng, _, dep, _ := newEngineFixture(t, kind, 16, EngineConfig{RetryInterval: time.Millisecond})
			sched, err := (LocalityScheduler{}).Schedule(w, dep)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(context.Background(), w, sched)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			// Scatter(12): the splitter publishes 12 part files and each of
			// the 12 workers publishes one output.
			if res.Writes != 24 {
				t.Errorf("Writes = %d, want 24", res.Writes)
			}
		})
	}
}

func TestEngineWithProgress(t *testing.T) {
	w := Pipeline(PatternConfig{Prefix: "pr-", Compute: 0}, 6)
	stats, _ := w.Stats()
	prog := metrics.NewProgress(stats.MetadataOps)
	eng, _, dep, _ := newEngineFixture(t, core.Decentralized, 8, EngineConfig{Progress: prog})
	sched, _ := (RoundRobinScheduler{}).Schedule(w, dep)
	if _, err := eng.Run(context.Background(), w, sched); err != nil {
		t.Fatal(err)
	}
	if prog.Completed() < stats.MetadataOps {
		t.Errorf("progress recorded %d of %d ops", prog.Completed(), stats.MetadataOps)
	}
}

func TestEngineSkipStageIn(t *testing.T) {
	eng, svc, dep, _ := newEngineFixture(t, core.Centralized, 4, EngineConfig{SkipStageIn: true, MaxRetries: 3, RetryInterval: time.Millisecond})
	w := diamond()
	sched, _ := (RoundRobinScheduler{}).Schedule(w, dep)
	// Without stage-in and without pre-registered inputs, task "a" can never
	// resolve "in" and the run must fail cleanly.
	if _, err := eng.Run(context.Background(), w, sched); err == nil {
		t.Error("expected failure when external inputs are missing")
	}
	// Pre-register the input and re-run on a fresh workflow state.
	client := core.NewClient(svc, dep.Node(0))
	if _, err := client.PublishFile(context.Background(), "in", 100, "external"); err != nil {
		t.Fatal(err)
	}
	w2 := diamond()
	res, err := eng.Run(context.Background(), w2, sched)
	if err == nil {
		if res.StageInWrites != 0 {
			t.Errorf("StageInWrites = %d, want 0", res.StageInWrites)
		}
	} else {
		// Outputs from the failed first attempt may collide; tolerate only
		// ErrExists-driven AddLocation paths, anything else is a bug.
		t.Logf("re-run returned: %v", err)
	}
}

func TestEngineRejectsInvalidWorkflow(t *testing.T) {
	eng, _, dep, _ := newEngineFixture(t, core.Centralized, 4, EngineConfig{})
	bad := New("bad")
	bad.MustAddTask(Task{ID: "t", Inputs: []string{"ghost"}})
	sched := Schedule{"t": 0}
	if _, err := eng.Run(context.Background(), bad, sched); err == nil {
		t.Error("invalid workflow should not run")
	}
	// Valid workflow, incomplete schedule.
	w := diamond()
	if _, err := eng.Run(context.Background(), w, Schedule{"a": 0}); err == nil {
		t.Error("incomplete schedule should not run")
	}
	_ = dep
}

func TestEngineMakespanReflectsCompute(t *testing.T) {
	// With a real (scaled) latency model, a pipeline of 4 tasks x 100ms of
	// compute must take at least 400ms of simulated time.
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(3), latency.WithScale(0.05))
	fabric := core.NewFabric(topo, lat, core.WithCacheCapacity(0, 0))
	svc, err := core.NewService(fabric, core.Decentralized)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	dep := cloud.NewDeployment(topo)
	dep.SpreadNodes(4)
	eng := NewEngine(dep, svc, lat, EngineConfig{})

	w := Pipeline(PatternConfig{Prefix: "mk-", Compute: 100 * time.Millisecond}, 4)
	sched, _ := (LocalityScheduler{}).Schedule(w, dep)
	res, err := eng.Run(context.Background(), w, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 400*time.Millisecond {
		t.Errorf("Makespan = %v, want >= 400ms of simulated compute", res.Makespan)
	}
	if res.Wall >= res.Makespan {
		t.Errorf("wall time %v should be far below simulated makespan %v at scale 0.05", res.Wall, res.Makespan)
	}
}

func TestEngineEventualConsistencyRetries(t *testing.T) {
	// Under the replicated strategy with a long sync interval, a consumer
	// task scheduled on a different site than its producer must poll until
	// the agent propagates the metadata; the run still completes because the
	// engine flushes... it does not flush, so the retries are resolved by the
	// background agent. Use a short agent interval to keep the test fast.
	topo := cloud.Azure4DC()
	// Real sleeps at a small scale so the retry interval genuinely waits for
	// the background agent instead of spinning through the retry budget.
	lat := latency.New(topo, latency.WithSeed(5), latency.WithScale(0.05))
	fabric := core.NewFabric(topo, lat, core.WithCacheCapacity(0, 0))
	svc, err := core.NewReplicated(fabric, 0, core.WithSyncInterval(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	dep := cloud.NewDeployment(topo)
	dep.SpreadNodes(8)
	// Simulated 50ms polls at scale 0.05 = 2.5ms of wall time per retry.
	eng := NewEngine(dep, svc, lat, EngineConfig{RetryInterval: 50 * time.Millisecond, MaxRetries: 5000})

	w := Pipeline(PatternConfig{Prefix: "ec-"}, 4)
	// Force producer/consumer onto different sites with a round-robin
	// schedule over a spread deployment.
	sched, _ := (RoundRobinScheduler{}).Schedule(w, dep)
	res, err := eng.Run(context.Background(), w, sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Retries == 0 {
		t.Log("no retries observed (agent was fast enough); acceptable but unusual")
	}
}

// TestEngineRunHonoursCancelledContext asserts a cancelled run context aborts
// the workflow: tasks fail at their next metadata operation instead of
// executing to completion, and the error surfaces context.Canceled.
func TestEngineRunHonoursCancelledContext(t *testing.T) {
	eng, _, dep, _ := newEngineFixture(t, core.Centralized, 8, EngineConfig{})
	w := diamond()
	sched, _ := (RoundRobinScheduler{}).Schedule(w, dep)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.Run(ctx, w, sched)
	if err == nil {
		t.Fatal("Run under a cancelled context should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run = %v, want context.Canceled", err)
	}
}
