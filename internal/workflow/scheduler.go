package workflow

import (
	"fmt"
	"math/rand"
	"sort"

	"geomds/internal/cloud"
)

// Schedule maps every task of a workflow to the execution node that will run
// it.
type Schedule map[string]cloud.NodeID

// Scheduler assigns workflow tasks to the nodes of a deployment.
type Scheduler interface {
	// Schedule returns a complete task→node assignment for the workflow.
	Schedule(w *Workflow, dep *cloud.Deployment) (Schedule, error)
	// Name identifies the scheduling policy.
	Name() string
}

// Validate checks that the schedule covers every task of the workflow and
// only references nodes of the deployment.
func (s Schedule) Validate(w *Workflow, dep *cloud.Deployment) error {
	for _, t := range w.Tasks() {
		node, ok := s[t.ID]
		if !ok {
			return fmt.Errorf("workflow: schedule misses task %q", t.ID)
		}
		if int(node) < 0 || int(node) >= dep.NumNodes() {
			return fmt.Errorf("workflow: schedule assigns task %q to unknown node %d", t.ID, node)
		}
	}
	return nil
}

// SiteLoad returns how many tasks the schedule places on each site.
func (s Schedule) SiteLoad(dep *cloud.Deployment) map[cloud.SiteID]int {
	out := make(map[cloud.SiteID]int)
	for _, node := range s {
		out[dep.SiteOf(node)]++
	}
	return out
}

// RoundRobinScheduler spreads tasks over nodes in topological order, which
// also spreads them evenly over sites when the deployment itself is spread.
// This is the paper's baseline placement ("the workflow jobs were evenly
// distributed across 32 nodes").
type RoundRobinScheduler struct{}

// Name implements Scheduler.
func (RoundRobinScheduler) Name() string { return "round-robin" }

// Schedule implements Scheduler.
func (RoundRobinScheduler) Schedule(w *Workflow, dep *cloud.Deployment) (Schedule, error) {
	if dep.NumNodes() == 0 {
		return nil, fmt.Errorf("workflow: deployment has no nodes")
	}
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	s := make(Schedule, len(order))
	for i, id := range order {
		s[id] = cloud.NodeID(i % dep.NumNodes())
	}
	return s, nil
}

// RandomScheduler assigns every task to a uniformly random node. It serves as
// the pessimistic baseline in the scheduler ablation.
type RandomScheduler struct {
	// Seed makes assignments reproducible.
	Seed int64
}

// Name implements Scheduler.
func (RandomScheduler) Name() string { return "random" }

// Schedule implements Scheduler.
func (r RandomScheduler) Schedule(w *Workflow, dep *cloud.Deployment) (Schedule, error) {
	if dep.NumNodes() == 0 {
		return nil, fmt.Errorf("workflow: deployment has no nodes")
	}
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	s := make(Schedule, len(order))
	for _, id := range order {
		s[id] = cloud.NodeID(rng.Intn(dep.NumNodes()))
	}
	return s, nil
}

// LocalityScheduler implements the locality policy the paper attributes to
// workflow execution engines: sequential jobs with tight data dependencies
// are scheduled in the same site as their predecessors, to prevent
// unnecessary data movements (§VII-A). A task is placed on the least-loaded
// node of the site that produces most of its inputs; tasks without
// workflow-internal inputs are spread round-robin across sites.
type LocalityScheduler struct{}

// Name implements Scheduler.
func (LocalityScheduler) Name() string { return "locality" }

// Schedule implements Scheduler.
func (LocalityScheduler) Schedule(w *Workflow, dep *cloud.Deployment) (Schedule, error) {
	if dep.NumNodes() == 0 {
		return nil, fmt.Errorf("workflow: deployment has no nodes")
	}
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	topo := dep.Topology()
	s := make(Schedule, len(order))
	// load counts tasks assigned per node, to break ties evenly.
	load := make(map[cloud.NodeID]int, dep.NumNodes())
	nextSite := 0

	pickNodeAt := func(site cloud.SiteID) cloud.NodeID {
		candidates := dep.NodesAt(site)
		if len(candidates) == 0 {
			// Site hosts no nodes: fall back to the globally least loaded node.
			best := cloud.NodeID(0)
			for id := cloud.NodeID(0); int(id) < dep.NumNodes(); id++ {
				if load[id] < load[best] {
					best = id
				}
			}
			return best
		}
		best := candidates[0]
		for _, c := range candidates[1:] {
			if load[c] < load[best] {
				best = c
			}
		}
		return best
	}

	for _, id := range order {
		task, _ := w.Task(id)
		votes := make(map[cloud.SiteID]int)
		for _, in := range task.Inputs {
			if p := w.Producer(in); p != nil {
				if node, ok := s[p.ID]; ok {
					votes[dep.SiteOf(node)]++
				}
			}
		}
		var site cloud.SiteID
		if len(votes) == 0 {
			// Root task: spread across sites round-robin.
			site = cloud.SiteID(nextSite % topo.NumSites())
			nextSite++
		} else {
			site = bestSite(votes)
		}
		node := pickNodeAt(site)
		s[id] = node
		load[node]++
	}
	return s, nil
}

// bestSite returns the site with the most votes, breaking ties by lowest ID
// for determinism.
func bestSite(votes map[cloud.SiteID]int) cloud.SiteID {
	sites := make([]cloud.SiteID, 0, len(votes))
	for s := range votes {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	best := sites[0]
	for _, s := range sites[1:] {
		if votes[s] > votes[best] {
			best = s
		}
	}
	return best
}
