package workflow

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// This file provides a JSON interchange format for workflows, so that DAGs
// produced by external workflow engines (or written by hand) can be executed
// by cmd/wfrun and the engine without recompiling. The format mirrors the
// declarative task descriptions used by engines such as Pegasus or Swift:
// tasks, their input/output files and an estimated run time.

// Spec is the serializable form of a workflow.
type Spec struct {
	// Name identifies the workflow.
	Name string `json:"name"`
	// ExternalInputs lists files that exist before the workflow starts.
	ExternalInputs []FileSpecJSON `json:"external_inputs,omitempty"`
	// Tasks lists every task of the DAG.
	Tasks []TaskSpec `json:"tasks"`
}

// FileSpecJSON is the serializable form of a produced or staged-in file.
type FileSpecJSON struct {
	Name string `json:"name"`
	Size int64  `json:"size,omitempty"`
}

// TaskSpec is the serializable form of one task.
type TaskSpec struct {
	ID string `json:"id"`
	// Stage is an optional phase label.
	Stage string `json:"stage,omitempty"`
	// Inputs are the names of the files the task reads.
	Inputs []string `json:"inputs,omitempty"`
	// Outputs are the files the task produces.
	Outputs []FileSpecJSON `json:"outputs,omitempty"`
	// Compute is the task's estimated run time, in Go duration syntax
	// (e.g. "1s", "750ms"). Empty means zero.
	Compute string `json:"compute,omitempty"`
}

// ToSpec converts a workflow into its serializable form.
func (w *Workflow) ToSpec() Spec {
	spec := Spec{Name: w.Name}
	for _, f := range w.ExternalInputs {
		spec.ExternalInputs = append(spec.ExternalInputs, FileSpecJSON{Name: f.Name, Size: f.Size})
	}
	for _, t := range w.Tasks() {
		ts := TaskSpec{ID: t.ID, Stage: t.Stage, Inputs: append([]string(nil), t.Inputs...)}
		for _, o := range t.Outputs {
			ts.Outputs = append(ts.Outputs, FileSpecJSON{Name: o.Name, Size: o.Size})
		}
		if t.Compute > 0 {
			ts.Compute = t.Compute.String()
		}
		spec.Tasks = append(spec.Tasks, ts)
	}
	return spec
}

// FromSpec builds a workflow from its serializable form and validates it.
func FromSpec(spec Spec) (*Workflow, error) {
	w := New(spec.Name)
	for _, f := range spec.ExternalInputs {
		w.AddExternalInput(f.Name, f.Size)
	}
	for _, ts := range spec.Tasks {
		var compute time.Duration
		if ts.Compute != "" {
			var err error
			compute, err = time.ParseDuration(ts.Compute)
			if err != nil {
				return nil, fmt.Errorf("workflow: task %q: invalid compute %q: %w", ts.ID, ts.Compute, err)
			}
		}
		task := Task{ID: ts.ID, Stage: ts.Stage, Inputs: append([]string(nil), ts.Inputs...), Compute: compute}
		for _, o := range ts.Outputs {
			task.Outputs = append(task.Outputs, FileSpec{Name: o.Name, Size: o.Size})
		}
		if err := w.AddTask(task); err != nil {
			return nil, err
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MarshalJSON encodes the workflow as its Spec.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(w.ToSpec(), "", "  ")
}

// WriteSpec writes the workflow as JSON to the writer.
func (w *Workflow) WriteSpec(out io.Writer) error {
	data, err := w.MarshalJSON()
	if err != nil {
		return fmt.Errorf("workflow: encoding spec: %w", err)
	}
	if _, err := out.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("workflow: writing spec: %w", err)
	}
	return nil
}

// SaveSpec writes the workflow as JSON to the given file.
func (w *Workflow) SaveSpec(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workflow: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := w.WriteSpec(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadSpec parses a workflow from JSON.
func ReadSpec(in io.Reader) (*Workflow, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, fmt.Errorf("workflow: reading spec: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("workflow: parsing spec: %w", err)
	}
	return FromSpec(spec)
}

// LoadSpec parses a workflow from a JSON file.
func LoadSpec(path string) (*Workflow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workflow: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadSpec(f)
}
