package rpc

// Admission-control tests: rejection happens at the frame-decode boundary
// (no registry work), the "overloaded" code round-trips with its retry-after
// hint, v1 clients land on the default tenant, and per-call context tenants
// override the client-wide one.

import (
	"errors"
	"net"
	"testing"

	"geomds/internal/cloud"
	"geomds/internal/limits"
	"geomds/internal/memcache"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// startLimitedServer brings up a server enforcing cfg and returns it with
// its metrics registry and address.
func startLimitedServer(t *testing.T, cfg limits.Config) (*Server, *metrics.Registry, string) {
	t.Helper()
	reg := metrics.NewRegistry()
	inst := registry.NewInstance(cloud.SiteID(1), memcache.New(memcache.Config{}))
	srv := NewServer(inst, nil,
		WithServerMetrics(reg),
		WithServerLimits(limits.New(cfg, reg)))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, reg, addr
}

func TestOverLimitRejectedBeforeDispatch(t *testing.T) {
	srv, reg, addr := startLimitedServer(t, limits.Config{
		Tenants: map[string]limits.TenantLimit{
			// Two tokens: one for the dial handshake (OpSite), one for the
			// first Create. Negligible refill afterwards.
			"greedy": {OpsPerSec: 0.0001, OpsBurst: 2},
		},
	})
	client, err := Dial(tctx, addr, WithTenant("greedy"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	if _, err := client.Create(tctx, wireEntry("adm-1")); err != nil {
		t.Fatalf("Create within budget: %v", err)
	}
	served := srv.Requests()

	_, err = client.Create(tctx, wireEntry("adm-2"))
	if !errors.Is(err, limits.ErrOverloaded) {
		t.Fatalf("over-limit Create = %v, want ErrOverloaded", err)
	}
	// Rejected before dispatch: no registry work was performed.
	if srv.Requests() != served {
		t.Fatalf("rejected request reached dispatch: Requests %d -> %d", served, srv.Requests())
	}
	var o *limits.Overload
	if !errors.As(err, &o) || o.RetryAfter <= 0 {
		t.Fatalf("decoded error carries no retry-after hint: %v", err)
	}

	snap := reg.Snapshot()
	if snap.Counters["limits_rejected_total"] == 0 ||
		snap.Counters["limits_tenant_greedy_rejected_total"] == 0 {
		t.Fatalf("rejection not counted: %v", snap.Counters)
	}
	if snap.Counters["rpc_server_errors_overloaded_total"] == 0 {
		t.Fatal("rpc_server_errors_overloaded_total not incremented")
	}
	if snap.Counters["rpc_server_dispatched_total"] != served {
		t.Fatal("rejected request was dispatched")
	}
}

func TestBatchRejectionAnswersEveryOp(t *testing.T) {
	_, _, addr := startLimitedServer(t, limits.Config{
		Tenants: map[string]limits.TenantLimit{
			"batcher": {OpsPerSec: 0.0001, OpsBurst: 2},
		},
	})
	client, err := Dial(tctx, addr, WithTenant("batcher"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	// Dial consumed one token; a 3-op batch exceeds the remaining budget
	// and must be refused as a whole, one response per op.
	ops := []Request{
		{Op: OpCreate, Entry: wireEntry("b-1")},
		{Op: OpCreate, Entry: wireEntry("b-2")},
		{Op: OpCreate, Entry: wireEntry("b-3")},
	}
	resps, err := client.Batch(tctx, ops)
	if err != nil {
		t.Fatalf("Batch transport error: %v", err)
	}
	if len(resps) != len(ops) {
		t.Fatalf("batch answered %d of %d ops", len(resps), len(ops))
	}
	for i, r := range resps {
		if r.OK || r.Err != ErrOverloaded || r.RetryAfterNs <= 0 {
			t.Fatalf("op %d = %+v, want overloaded with retry-after", i, r)
		}
		if err := decodeRespErr(r); !errors.Is(err, limits.ErrOverloaded) {
			t.Fatalf("op %d decodes to %v", i, err)
		}
	}
}

func TestV1ClientsMapToDefaultTenant(t *testing.T) {
	_, reg, addr := startLimitedServer(t, limits.Config{
		Default: limits.TenantLimit{OpsPerSec: 0.0001, OpsBurst: 1},
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exchange := func(req Request) Response {
		t.Helper()
		if err := writeFrame(conn, req); err != nil {
			t.Fatalf("legacy write: %v", err)
		}
		var resp Response
		if err := readFrame(conn, &resp); err != nil {
			t.Fatalf("legacy read: %v", err)
		}
		return resp
	}
	if resp := exchange(Request{Op: OpPing}); !resp.OK {
		t.Fatalf("first legacy request rejected: %+v", resp)
	}
	resp := exchange(Request{Op: OpPing})
	if resp.OK || resp.Err != ErrOverloaded {
		t.Fatalf("over-budget legacy request = %+v, want overloaded", resp)
	}
	if resp.RetryAfterNs <= 0 {
		t.Fatal("legacy rejection carries no retry-after")
	}
	if reg.Snapshot().Counters["limits_tenant_default_rejected_total"] == 0 {
		t.Fatal("legacy rejection not accounted to the default tenant")
	}
}

func TestContextTenantOverridesClientTenant(t *testing.T) {
	_, _, addr := startLimitedServer(t, limits.Config{
		Tenants: map[string]limits.TenantLimit{
			"blocked": {OpsPerSec: -1}, // deny everything
		},
	})
	client, err := Dial(tctx, addr) // default tenant: unlimited
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	if _, err := client.Create(tctx, wireEntry("ov-1")); err != nil {
		t.Fatalf("default-tenant Create: %v", err)
	}
	_, err = client.Create(limits.WithTenant(tctx, "blocked"), wireEntry("ov-2"))
	if !errors.Is(err, limits.ErrOverloaded) {
		t.Fatalf("context-tenant Create = %v, want ErrOverloaded", err)
	}
	// The override is per call: the next default-tenant call still works.
	if _, err := client.Create(tctx, wireEntry("ov-3")); err != nil {
		t.Fatalf("Create after override: %v", err)
	}
}

func TestWatchAdmission(t *testing.T) {
	_, _, addr := startLimitedServer(t, limits.Config{
		Tenants: map[string]limits.TenantLimit{
			"blocked": {OpsPerSec: -1},
		},
	})
	client, err := Dial(tctx, addr, WithTenant("blocked"))
	// Dial itself is rejected for a denied tenant: admission covers the
	// handshake too.
	if !errors.Is(err, limits.ErrOverloaded) {
		if client != nil {
			client.Close()
		}
		t.Fatalf("dial as blocked tenant = %v, want ErrOverloaded", err)
	}

	// An unlimited client whose watch call names the blocked tenant is
	// refused at the frame boundary — even though this registry has no
	// change feed, the admission check fires first.
	open, err := Dial(tctx, addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer open.Close()
	_, err = open.Watch(limits.WithTenant(tctx, "blocked"), 0, WatchOptions{})
	if !errors.Is(err, limits.ErrOverloaded) {
		t.Fatalf("watch as blocked tenant = %v, want ErrOverloaded", err)
	}
	if d, ok := limits.RetryAfter(err); !ok || d <= 0 {
		t.Fatalf("watch rejection retry-after = %v,%v", d, ok)
	}
}

func TestByteQuotaOverWire(t *testing.T) {
	_, reg, addr := startLimitedServer(t, limits.Config{
		Tenants: map[string]limits.TenantLimit{
			// Generous ops, small byte budget: the handshake (including
			// gob's per-connection type descriptors) fits, a
			// payload-heavy create does not.
			"heavy": {OpsPerSec: 1000, OpsBurst: 1000, BytesPerSec: 0.0001, BytesBurst: 4096},
		},
	})
	client, err := Dial(tctx, addr, WithTenant("heavy"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	big := registry.NewEntry("big", 1, "task", registry.Location{Site: 1, Node: 1})
	for i := 0; i < 1024; i++ {
		big.Locations = append(big.Locations, registry.Location{Site: cloud.SiteID(i), Node: cloud.NodeID(i)})
	}
	_, err = client.Create(tctx, big)
	if !errors.Is(err, limits.ErrOverloaded) {
		t.Fatalf("byte-heavy Create = %v, want ErrOverloaded", err)
	}
	if reg.Snapshot().Counters["limits_rejected_bytes_total"] == 0 {
		t.Fatal("byte rejection not counted by reason")
	}
}
