package rpc_test

import (
	"context"
	"fmt"

	"geomds/internal/cloud"
	"geomds/internal/memcache"
	"geomds/internal/registry"
	"geomds/internal/rpc"
)

// ExampleClient_Batch shows many registry operations travelling in a single
// frame and round trip: the server executes them in order and returns one
// Response per operation, with per-operation failures reported in the
// individual responses rather than as a call error.
func ExampleClient_Batch() {
	// A registry instance served over TCP, the way cmd/metaserver runs one.
	inst := registry.NewInstance(cloud.SiteID(1), memcache.New(memcache.Config{}))
	srv := rpc.NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer srv.Close()

	ctx := context.Background()
	client, err := rpc.Dial(ctx, addr)
	if err != nil {
		fmt.Println("dial:", err)
		return
	}
	defer client.Close()

	// Two puts, a get and a lookup of a missing entry — one round trip.
	responses, err := client.Batch(ctx, []rpc.Request{
		{Op: rpc.OpPut, Entry: registry.NewEntry("batch/a", 1024, "task-1", registry.Location{Site: 1})},
		{Op: rpc.OpPut, Entry: registry.NewEntry("batch/b", 2048, "task-1", registry.Location{Site: 1})},
		{Op: rpc.OpGet, Name: "batch/a"},
		{Op: rpc.OpGet, Name: "batch/missing"},
	})
	if err != nil {
		fmt.Println("batch:", err)
		return
	}
	for i, resp := range responses {
		if resp.OK {
			fmt.Printf("op %d: ok %s (%d bytes)\n", i, resp.Entry.Name, resp.Entry.Size)
		} else {
			fmt.Printf("op %d: %s\n", i, resp.Err)
		}
	}

	// Output:
	// op 0: ok batch/a (1024 bytes)
	// op 1: ok batch/b (2048 bytes)
	// op 2: ok batch/a (1024 bytes)
	// op 3: not-found
}
