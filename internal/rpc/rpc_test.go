package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/memcache"
	"geomds/internal/registry"
)

var tctx = context.Background()

// startTestServer brings up a server on a random localhost port and returns a
// connected client. Both are torn down when the test finishes.
func startTestServer(t *testing.T, site cloud.SiteID) (*Server, *Client) {
	t.Helper()
	inst := registry.NewInstance(site, memcache.New(memcache.Config{}))
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(tctx, addr, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func wireEntry(name string) registry.Entry {
	return registry.NewEntry(name, 2048, "task-w", registry.Location{Site: 1, Node: 4})
}

func TestClientSiteAndPing(t *testing.T) {
	_, client := startTestServer(t, 3)
	if client.Site() != 3 {
		t.Errorf("Site = %d, want 3", client.Site())
	}
	if err := client.Ping(tctx); err != nil {
		t.Errorf("Ping: %v", err)
	}
	if client.Addr() == "" {
		t.Error("Addr should not be empty")
	}
}

func TestCreateGetOverWire(t *testing.T) {
	_, client := startTestServer(t, 0)
	e := wireEntry("wire-1")
	stored, err := client.Create(tctx, e)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if stored.Version == 0 {
		t.Error("Create should return the stored version")
	}
	got, err := client.Get(tctx, "wire-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !got.Equal(e) {
		t.Errorf("Get = %+v, want %+v", got, e)
	}
	if !client.Contains(tctx, "wire-1") || client.Contains(tctx, "nope") {
		t.Error("Contains misbehaves")
	}
	if client.Len(tctx) != 1 {
		t.Errorf("Len = %d, want 1", client.Len(tctx))
	}
}

func TestErrorsCrossTheWire(t *testing.T) {
	_, client := startTestServer(t, 0)
	e := wireEntry("dup")
	if _, err := client.Create(tctx, e); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Create(tctx, e); !errors.Is(err, registry.ErrExists) {
		t.Errorf("duplicate Create = %v, want ErrExists", err)
	}
	if _, err := client.Get(tctx, "missing"); !errors.Is(err, registry.ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
	if err := client.Delete(tctx, "missing"); !errors.Is(err, registry.ErrNotFound) {
		t.Errorf("Delete missing = %v, want ErrNotFound", err)
	}
	if _, err := client.Create(tctx, registry.Entry{}); !errors.Is(err, registry.ErrInvalidEntry) {
		t.Errorf("Create invalid = %v, want ErrInvalidEntry", err)
	}
	if _, err := client.AddLocation(tctx, "missing", registry.Location{}); !errors.Is(err, registry.ErrNotFound) {
		t.Errorf("AddLocation missing = %v, want ErrNotFound", err)
	}
}

func TestUpdateDeleteOverWire(t *testing.T) {
	_, client := startTestServer(t, 0)
	e := wireEntry("upd")
	client.Create(tctx, e)
	loc := registry.Location{Site: 2, Node: 9}
	updated, err := client.AddLocation(tctx, "upd", loc)
	if err != nil {
		t.Fatalf("AddLocation: %v", err)
	}
	if !updated.HasLocation(loc) {
		t.Error("location not added")
	}
	if err := client.Delete(tctx, "upd"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if client.Contains(tctx, "upd") {
		t.Error("entry still present after delete")
	}
}

func TestPutNamesEntriesMergeOverWire(t *testing.T) {
	_, client := startTestServer(t, 0)
	var batch []registry.Entry
	for i := 0; i < 5; i++ {
		batch = append(batch, wireEntry(fmt.Sprintf("m%d", i)))
	}
	n, err := client.Merge(tctx, batch)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if n != 5 {
		t.Errorf("Merge applied %d, want 5", n)
	}
	if _, err := client.Put(tctx, wireEntry("m0")); err != nil {
		t.Errorf("Put: %v", err)
	}
	names := client.Names(tctx)
	if len(names) != 5 {
		t.Errorf("Names = %d, want 5", len(names))
	}
	entries, err := client.Entries(tctx)
	if err != nil || len(entries) != 5 {
		t.Errorf("Entries = %d, %v; want 5", len(entries), err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, first := startTestServer(t, 0)
	addr := first.Addr()
	const clients = 6
	const perClient = 30
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(tctx, addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				name := fmt.Sprintf("c%d-f%d", ci, i)
				if _, err := c.Create(tctx, wireEntry(name)); err != nil {
					errs <- fmt.Errorf("create %s: %w", name, err)
					return
				}
				if _, err := c.Get(tctx, name); err != nil {
					errs <- fmt.Errorf("get %s: %w", name, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if first.Len(tctx) != clients*perClient {
		t.Errorf("server holds %d entries, want %d", first.Len(tctx), clients*perClient)
	}
	if srv.Requests() == 0 {
		t.Error("server request counter did not advance")
	}
}

func TestClientReconnects(t *testing.T) {
	_, client := startTestServer(t, 0)
	if _, err := client.Create(tctx, wireEntry("before")); err != nil {
		t.Fatal(err)
	}
	// Force every pooled connection to go stale; the next call must recover.
	client.mu.Lock()
	for _, pc := range client.conns {
		if pc != nil {
			pc.conn.Close()
		}
	}
	client.mu.Unlock()
	if _, err := client.Get(tctx, "before"); err != nil {
		t.Errorf("Get after dropped connection: %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	_, client := startTestServer(t, 0)
	client.Close()
	if _, err := client.Get(tctx, "x"); err == nil {
		t.Error("calls on a closed client should fail")
	}
	if err := client.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial(tctx, "127.0.0.1:1", WithTimeout(200*time.Millisecond)); err == nil {
		t.Error("Dial to a closed port should fail")
	}
}

func TestServerClose(t *testing.T) {
	inst := registry.NewInstance(0, memcache.New(memcache.Config{}))
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(tctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// The client should fail (possibly after its one retry) once the server
	// is gone.
	if err := client.Ping(tctx); err == nil {
		t.Error("Ping should fail after server shutdown")
	}
	client.Close()
	if srv.Addr() == "" {
		t.Error("Addr should remain known after close")
	}
}

func TestBadOpRejected(t *testing.T) {
	_, client := startTestServer(t, 0)
	resp, err := client.call(tctx, Request{Op: Op("bogus")})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if resp.OK || resp.Err != ErrBadOp {
		t.Errorf("bogus op response = %+v", resp)
	}
}

func TestCoreFabricOverRPC(t *testing.T) {
	// End-to-end: four registry servers (one per site) driven through the
	// strategies via rpc clients plugged into the fabric. Exercised more
	// fully in examples/multisite; here we check the wiring compiles and a
	// round trip works through registry.API.
	sites := []cloud.SiteID{0, 1, 2, 3}
	proxies := make(map[cloud.SiteID]registry.API, len(sites))
	for _, s := range sites {
		inst := registry.NewInstance(s, memcache.New(memcache.Config{}))
		srv := NewServer(inst, nil)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		client, err := Dial(tctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		proxies[s] = client
	}
	e := wireEntry("fabric-over-rpc")
	if _, err := proxies[2].Create(tctx, e); err != nil {
		t.Fatalf("Create via proxy: %v", err)
	}
	got, err := proxies[2].Get(tctx, "fabric-over-rpc")
	if err != nil || !got.Equal(e) {
		t.Errorf("Get via proxy: %v", err)
	}
}
