package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/memcache"
	"geomds/internal/registry"
)

// slowAPI delays Get calls whose name carries the "slow" prefix, so tests
// can hold one pipelined request open while others complete.
type slowAPI struct {
	registry.API
	delay time.Duration
}

func (s slowAPI) Get(ctx context.Context, name string) (registry.Entry, error) {
	if strings.HasPrefix(name, "slow") {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return registry.Entry{}, ctx.Err()
		}
	}
	return s.API.Get(ctx, name)
}

func startSlowServer(t *testing.T, delay time.Duration, opts ...ClientOption) *Client {
	t.Helper()
	inst := registry.NewInstance(0, memcache.New(memcache.Config{}))
	srv := NewServer(slowAPI{API: inst, delay: delay}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(tctx, addr, append([]ClientOption{WithTimeout(5 * time.Second)}, opts...)...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// TestPipelinedOutOfOrder verifies that on a single connection a fast
// request overtakes a slow one already in flight: the response
// demultiplexer must route by ID, not by arrival order.
func TestPipelinedOutOfOrder(t *testing.T) {
	const delay = 400 * time.Millisecond
	client := startSlowServer(t, delay, WithPoolSize(1))
	if _, err := client.Create(tctx, wireEntry("slow-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Create(tctx, wireEntry("fast-1")); err != nil {
		t.Fatal(err)
	}

	slowDone := make(chan error, 1)
	go func() {
		_, err := client.Get(tctx, "slow-1")
		slowDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the slow request hit the wire first

	start := time.Now()
	if _, err := client.Get(tctx, "fast-1"); err != nil {
		t.Fatalf("fast Get: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= delay {
		t.Errorf("fast Get took %v; it waited behind the slow request instead of overtaking it", elapsed)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow Get: %v", err)
	}
}

// TestReconnectMidPipeline drops the transport while several pipelined
// requests are in flight: every caller must recover through the client's
// transparent retry on a fresh connection.
func TestReconnectMidPipeline(t *testing.T) {
	client := startSlowServer(t, 300*time.Millisecond, WithPoolSize(1))
	const inflight = 8
	for i := 0; i < inflight; i++ {
		if _, err := client.Create(tctx, wireEntry(fmt.Sprintf("slow-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.Get(tctx, fmt.Sprintf("slow-%d", i)); err != nil {
				errs <- err
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // all requests are written and pending
	client.mu.Lock()
	for _, pc := range client.conns {
		if pc != nil {
			pc.conn.Close()
		}
	}
	client.mu.Unlock()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("pipelined call did not survive the reconnect: %v", err)
	}
	// The pool must be usable afterwards.
	if _, err := client.Get(tctx, "slow-0"); err != nil {
		t.Errorf("Get after recovery: %v", err)
	}
}

// TestBatchEquivalence runs the same operation sequence through one batch
// frame and through per-op calls against a twin server, asserting identical
// responses and final state.
func TestBatchEquivalence(t *testing.T) {
	_, batched := startTestServer(t, 0)
	_, perOp := startTestServer(t, 0)

	var ops []Request
	for i := 0; i < 4; i++ {
		ops = append(ops, Request{Op: OpCreate, Entry: wireEntry(fmt.Sprintf("b%d", i))})
	}
	ops = append(ops,
		Request{Op: OpGet, Name: "b2"},
		Request{Op: OpContains, Name: "b3"},
		Request{Op: OpDelete, Name: "b0"},
		Request{Op: OpGet, Name: "b0"}, // must fail: deleted by the previous op
		Request{Op: OpLen},
	)

	batchResps, err := batched.Batch(tctx, ops)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	var singleResps []Response
	for _, op := range ops {
		resp, err := perOp.call(tctx, op)
		if err != nil {
			t.Fatalf("per-op %s: %v", op.Op, err)
		}
		singleResps = append(singleResps, resp)
	}

	if len(batchResps) != len(singleResps) {
		t.Fatalf("batch returned %d responses, per-op %d", len(batchResps), len(singleResps))
	}
	for i := range ops {
		b, s := batchResps[i], singleResps[i]
		if b.OK != s.OK || b.Err != s.Err || b.Bool != s.Bool || b.N != s.N || !b.Entry.Equal(s.Entry) {
			t.Errorf("op %d (%s): batch=%+v per-op=%+v", i, ops[i].Op, b, s)
		}
	}
	if got, want := batched.Len(tctx), perOp.Len(tctx); got != want {
		t.Errorf("final Len: batch server %d, per-op server %d", got, want)
	}
}

// TestPutManyDeleteManyOverWire exercises the first-class bulk ops as
// single frames.
func TestPutManyDeleteManyOverWire(t *testing.T) {
	_, client := startTestServer(t, 0)
	var batch []registry.Entry
	for i := 0; i < 6; i++ {
		batch = append(batch, wireEntry(fmt.Sprintf("pm%d", i)))
	}
	stored, err := client.PutMany(tctx, batch)
	if err != nil {
		t.Fatalf("PutMany: %v", err)
	}
	if len(stored) != len(batch) {
		t.Fatalf("PutMany returned %d entries, want %d", len(stored), len(batch))
	}
	for i, e := range stored {
		if e.Version == 0 {
			t.Errorf("stored[%d] has no version", i)
		}
	}
	if client.Len(tctx) != 6 {
		t.Errorf("Len = %d, want 6", client.Len(tctx))
	}
	n, err := client.DeleteMany(tctx, []string{"pm0", "pm1", "absent", "pm2"})
	if err != nil {
		t.Fatalf("DeleteMany: %v", err)
	}
	if n != 3 {
		t.Errorf("DeleteMany removed %d, want 3 (absent names are skipped)", n)
	}
	if client.Len(tctx) != 3 {
		t.Errorf("Len after DeleteMany = %d, want 3", client.Len(tctx))
	}
	if _, err := client.PutMany(tctx, nil); err != nil {
		t.Errorf("empty PutMany: %v", err)
	}
	if _, err := client.DeleteMany(tctx, nil); err != nil {
		t.Errorf("empty DeleteMany: %v", err)
	}
	if _, err := client.PutMany(tctx, []registry.Entry{{}}); !errors.Is(err, registry.ErrInvalidEntry) {
		t.Errorf("PutMany with invalid entry = %v, want ErrInvalidEntry", err)
	}
}

// TestLegacyV1ClientAgainstV2Server speaks the version-1 un-tagged protocol
// by hand: bare length-framed Requests must still be answered, in order,
// with bare Responses on the same connection.
func TestLegacyV1ClientAgainstV2Server(t *testing.T) {
	inst := registry.NewInstance(7, memcache.New(memcache.Config{}))
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	exchange := func(req Request) Response {
		t.Helper()
		if err := writeFrame(conn, req); err != nil {
			t.Fatalf("legacy write: %v", err)
		}
		var resp Response
		if err := readFrame(conn, &resp); err != nil {
			t.Fatalf("legacy read: %v", err)
		}
		return resp
	}

	e := wireEntry("legacy-1")
	if resp := exchange(Request{Op: OpSite}); !resp.OK || siteFromN(resp.N) != cloud.SiteID(7) {
		t.Errorf("legacy OpSite = %+v", resp)
	}
	if resp := exchange(Request{Op: OpCreate, Entry: e}); !resp.OK {
		t.Errorf("legacy OpCreate = %+v", resp)
	}
	if resp := exchange(Request{Op: OpGet, Name: "legacy-1"}); !resp.OK || !resp.Entry.Equal(e) {
		t.Errorf("legacy OpGet = %+v", resp)
	}

	// A version-2 client sharing the server (even the registry state) works.
	v2, err := Dial(tctx, addr)
	if err != nil {
		t.Fatalf("v2 dial: %v", err)
	}
	defer v2.Close()
	if _, err := v2.Get(tctx, "legacy-1"); err != nil {
		t.Errorf("v2 Get of legacy-created entry: %v", err)
	}
}
