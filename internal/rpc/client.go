package rpc

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/registry"
)

// DefaultPoolSize is the number of TCP connections a Client opens (lazily)
// towards its server unless WithPoolSize says otherwise.
const DefaultPoolSize = 4

// Client is a registry.API proxy for a registry server reached over TCP.
//
// It is safe and efficient under heavy concurrent use: calls are spread
// round-robin over a pool of connections, and on each connection many
// requests can be in flight at once — every request carries a unique ID and
// a per-connection demultiplexer routes responses, which may arrive out of
// order, back to their callers (pipelining). Connections are established
// lazily and re-established transparently after transport errors.
type Client struct {
	addr    string
	site    cloud.SiteID
	timeout time.Duration
	pool    int

	nextConn atomic.Uint64 // round-robin cursor over the pool
	nextID   atomic.Uint64 // request ID source, unique per client

	mu     sync.Mutex
	conns  []*poolConn
	closed bool
}

// Client implements the registry API.
var _ registry.API = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout bounds each remote call (connect + request + response).
// The default is 10 seconds.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithPoolSize sets how many connections the client spreads its calls over
// (default DefaultPoolSize). One connection already supports pipelining;
// more connections add parallelism on the server side and amortize
// head-of-line blocking on large frames.
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.pool = n
		}
	}
}

// Dial connects to a registry server and verifies it is reachable. The
// returned client reports the site ID advertised by the server.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{addr: addr, timeout: 10 * time.Second, pool: DefaultPoolSize}
	for _, o := range opts {
		o(c)
	}
	c.conns = make([]*poolConn, c.pool)
	resp, err := c.call(Request{Op: OpSite})
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c.site = siteFromN(resp.N)
	return c, nil
}

// Addr returns the server address this client talks to.
func (c *Client) Addr() string { return c.addr }

// PoolSize returns the configured connection-pool size.
func (c *Client) PoolSize() int { return c.pool }

// Site implements registry.API with the site ID advertised by the server.
func (c *Client) Site() cloud.SiteID { return c.site }

// Ping verifies the server is reachable.
func (c *Client) Ping() error {
	_, err := c.call(Request{Op: OpPing})
	return err
}

// Close releases every pooled connection. Subsequent calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, pc := range conns {
		if pc != nil {
			pc.fail(fmt.Errorf("rpc: client for %s is closed", c.addr))
		}
	}
	return nil
}

// Create implements registry.API.
func (c *Client) Create(e registry.Entry) (registry.Entry, error) {
	return c.entryCall(Request{Op: OpCreate, Entry: e})
}

// Put implements registry.API.
func (c *Client) Put(e registry.Entry) (registry.Entry, error) {
	return c.entryCall(Request{Op: OpPut, Entry: e})
}

// Get implements registry.API.
func (c *Client) Get(name string) (registry.Entry, error) {
	return c.entryCall(Request{Op: OpGet, Name: name})
}

// Contains implements registry.API. Transport errors are reported as
// "does not contain", matching the best-effort semantics of the in-process
// Contains.
func (c *Client) Contains(name string) bool {
	resp, err := c.call(Request{Op: OpContains, Name: name})
	if err != nil {
		return false
	}
	return resp.Bool
}

// AddLocation implements registry.API.
func (c *Client) AddLocation(name string, loc registry.Location) (registry.Entry, error) {
	return c.entryCall(Request{Op: OpAddLoc, Name: name, Location: loc})
}

// Delete implements registry.API.
func (c *Client) Delete(name string) error {
	resp, err := c.call(Request{Op: OpDelete, Name: name})
	if err != nil {
		return err
	}
	return decodeErr(resp.Err, resp.Detail)
}

// Names implements registry.API. Transport errors yield an empty list.
func (c *Client) Names() []string {
	resp, err := c.call(Request{Op: OpNames})
	if err != nil {
		return nil
	}
	return resp.Names
}

// Entries implements registry.API.
func (c *Client) Entries() ([]registry.Entry, error) {
	resp, err := c.call(Request{Op: OpEntries})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, decodeErr(resp.Err, resp.Detail)
	}
	return resp.Entries, nil
}

// GetMany implements registry.API. The whole name list travels in one frame.
func (c *Client) GetMany(names []string) ([]registry.Entry, error) {
	resp, err := c.call(Request{Op: OpGetMany, Names: names})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, decodeErr(resp.Err, resp.Detail)
	}
	return resp.Entries, nil
}

// PutMany implements registry.API. The whole batch travels in one frame.
func (c *Client) PutMany(entries []registry.Entry) ([]registry.Entry, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	resp, err := c.call(Request{Op: OpPutMany, Entries: entries})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, decodeErr(resp.Err, resp.Detail)
	}
	return resp.Entries, nil
}

// DeleteMany implements registry.API. The whole name list travels in one
// frame; it returns how many of the named entries were present and removed.
func (c *Client) DeleteMany(names []string) (int, error) {
	if len(names) == 0 {
		return 0, nil
	}
	resp, err := c.call(Request{Op: OpDeleteMany, Names: names})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, decodeErr(resp.Err, resp.Detail)
	}
	return resp.N, nil
}

// Merge implements registry.API.
func (c *Client) Merge(entries []registry.Entry) (int, error) {
	resp, err := c.call(Request{Op: OpMerge, Entries: entries})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, decodeErr(resp.Err, resp.Detail)
	}
	return resp.N, nil
}

// Len implements registry.API. Transport errors yield zero.
func (c *Client) Len() int {
	resp, err := c.call(Request{Op: OpLen})
	if err != nil {
		return 0
	}
	return resp.N
}

// Batch sends many registry operations to the server in a single frame and
// round trip, returning one Response per operation in order. The server
// executes the operations sequentially, so a batch is equivalent to issuing
// them back-to-back on a dedicated connection — at a fraction of the framing
// and round-trip cost. Per-operation failures are reported in the individual
// Responses; the returned error covers transport problems only.
func (c *Client) Batch(ops []Request) ([]Response, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	rf, err := c.roundTrip(RequestFrame{
		Header: Header{Version: ProtocolVersion, Kind: FrameBatch},
		Batch:  BatchRequest{Ops: ops},
	})
	if err != nil {
		return nil, err
	}
	if len(rf.Batch.Ops) != len(ops) {
		return nil, fmt.Errorf("rpc: batch answered %d of %d ops", len(rf.Batch.Ops), len(ops))
	}
	return rf.Batch.Ops, nil
}

func (c *Client) entryCall(req Request) (registry.Entry, error) {
	resp, err := c.call(req)
	if err != nil {
		return registry.Entry{}, err
	}
	if !resp.OK {
		return registry.Entry{}, decodeErr(resp.Err, resp.Detail)
	}
	return resp.Entry, nil
}

// call performs one request/response exchange.
func (c *Client) call(req Request) (Response, error) {
	rf, err := c.roundTrip(RequestFrame{
		Header: Header{Version: ProtocolVersion, Kind: FrameSingle},
		Req:    req,
	})
	if err != nil {
		return Response{}, err
	}
	return rf.Resp, nil
}

// roundTrip tags the frame with a fresh ID, sends it over a pooled
// connection and waits for the matching response. A transport error is
// retried once on a fresh connection (the server may have dropped an idle
// connection between calls).
func (c *Client) roundTrip(f RequestFrame) (ResponseFrame, error) {
	f.Header.ID = c.nextID.Add(1)
	pc, err := c.grabConn()
	if err != nil {
		return ResponseFrame{}, err
	}
	resp, err := pc.do(f, c.timeout)
	if err == nil {
		return resp, nil
	}
	pc, err2 := c.grabConn()
	if err2 != nil {
		return ResponseFrame{}, err2
	}
	return pc.do(f, c.timeout)
}

// grabConn returns the next pooled connection in round-robin order, dialing
// a replacement if that slot is empty or its connection has died. The dial
// happens outside the client lock so a slow or failing connect never stalls
// calls headed for the other, healthy pool slots.
func (c *Client) grabConn() (*poolConn, error) {
	idx := int(c.nextConn.Add(1)-1) % c.pool
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: client for %s is closed", c.addr)
	}
	if pc := c.conns[idx]; pc != nil && !pc.dead() {
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: connect %s: %w", c.addr, err)
	}
	pc := newPoolConn(conn)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		pc.fail(fmt.Errorf("rpc: client for %s is closed", c.addr))
		return nil, fmt.Errorf("rpc: client for %s is closed", c.addr)
	}
	if cur := c.conns[idx]; cur != nil && !cur.dead() {
		// A concurrent caller repaired the slot first; use theirs.
		c.mu.Unlock()
		pc.fail(fmt.Errorf("rpc: superseded connection"))
		return cur, nil
	}
	c.conns[idx] = pc
	c.mu.Unlock()
	return pc, nil
}

// poolConn is one pooled connection: a frame writer serialized by wmu and a
// background demultiplexer that routes response frames to the in-flight
// calls registered in pending.
type poolConn struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan ResponseFrame
	err     error // sticky; set once the connection is unusable
}

func newPoolConn(conn net.Conn) *poolConn {
	pc := &poolConn{conn: conn, pending: make(map[uint64]chan ResponseFrame)}
	go pc.readLoop()
	return pc
}

func (pc *poolConn) dead() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.err != nil
}

// do registers the frame's ID, writes the frame, and waits for the demuxed
// response or the timeout. A timed-out connection is torn down: its
// demultiplexer could otherwise deliver a response for a retired ID.
func (pc *poolConn) do(f RequestFrame, timeout time.Duration) (ResponseFrame, error) {
	ch := make(chan ResponseFrame, 1)
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return ResponseFrame{}, err
	}
	pc.pending[f.Header.ID] = ch
	pc.mu.Unlock()

	frame, err := encodeFrame(f)
	if err != nil {
		pc.mu.Lock()
		delete(pc.pending, f.Header.ID)
		pc.mu.Unlock()
		return ResponseFrame{}, err
	}
	pc.wmu.Lock()
	pc.conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err = pc.conn.Write(frame)
	pc.wmu.Unlock()
	if err != nil {
		pc.fail(fmt.Errorf("rpc: write frame: %w", err))
		return ResponseFrame{}, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			pc.mu.Lock()
			err := pc.err
			pc.mu.Unlock()
			return ResponseFrame{}, fmt.Errorf("rpc: read response: %w", err)
		}
		return resp, nil
	case <-timer.C:
		err := fmt.Errorf("rpc: no response within %v", timeout)
		pc.fail(err)
		return ResponseFrame{}, err
	}
}

// readLoop demultiplexes response frames by header ID until the connection
// dies.
func (pc *poolConn) readLoop() {
	for {
		var rf ResponseFrame
		if err := readFrame(pc.conn, &rf); err != nil {
			pc.fail(err)
			return
		}
		pc.mu.Lock()
		ch := pc.pending[rf.Header.ID]
		delete(pc.pending, rf.Header.ID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- rf
		}
	}
}

// fail marks the connection dead, closes it, and wakes every in-flight call
// with the failure.
func (pc *poolConn) fail(err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
	}
	pending := pc.pending
	pc.pending = make(map[uint64]chan ResponseFrame)
	pc.mu.Unlock()
	pc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}
