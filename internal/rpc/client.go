package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/registry"
)

// Client is a registry.API proxy for a registry server reached over TCP.
// It is safe for concurrent use: requests are serialized over a single
// connection (the protocol is strictly request/response) and the connection
// is re-established transparently after transport errors.
type Client struct {
	addr    string
	site    cloud.SiteID
	timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// Client implements the registry API.
var _ registry.API = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout bounds each remote call (connect + request + response).
// The default is 10 seconds.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// Dial connects to a registry server and verifies it is reachable. The
// returned client reports the site ID advertised by the server.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{addr: addr, timeout: 10 * time.Second}
	for _, o := range opts {
		o(c)
	}
	resp, err := c.call(Request{Op: OpSite})
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c.site = siteFromN(resp.N)
	return c, nil
}

// Addr returns the server address this client talks to.
func (c *Client) Addr() string { return c.addr }

// Site implements registry.API with the site ID advertised by the server.
func (c *Client) Site() cloud.SiteID { return c.site }

// Ping verifies the server is reachable.
func (c *Client) Ping() error {
	_, err := c.call(Request{Op: OpPing})
	return err
}

// Close releases the connection. Subsequent calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// Create implements registry.API.
func (c *Client) Create(e registry.Entry) (registry.Entry, error) {
	return c.entryCall(Request{Op: OpCreate, Entry: e})
}

// Put implements registry.API.
func (c *Client) Put(e registry.Entry) (registry.Entry, error) {
	return c.entryCall(Request{Op: OpPut, Entry: e})
}

// Get implements registry.API.
func (c *Client) Get(name string) (registry.Entry, error) {
	return c.entryCall(Request{Op: OpGet, Name: name})
}

// Contains implements registry.API. Transport errors are reported as
// "does not contain", matching the best-effort semantics of the in-process
// Contains.
func (c *Client) Contains(name string) bool {
	resp, err := c.call(Request{Op: OpContains, Name: name})
	if err != nil {
		return false
	}
	return resp.Bool
}

// AddLocation implements registry.API.
func (c *Client) AddLocation(name string, loc registry.Location) (registry.Entry, error) {
	return c.entryCall(Request{Op: OpAddLoc, Name: name, Location: loc})
}

// Delete implements registry.API.
func (c *Client) Delete(name string) error {
	resp, err := c.call(Request{Op: OpDelete, Name: name})
	if err != nil {
		return err
	}
	return decodeErr(resp.Err, resp.Detail)
}

// Names implements registry.API. Transport errors yield an empty list.
func (c *Client) Names() []string {
	resp, err := c.call(Request{Op: OpNames})
	if err != nil {
		return nil
	}
	return resp.Names
}

// Entries implements registry.API.
func (c *Client) Entries() ([]registry.Entry, error) {
	resp, err := c.call(Request{Op: OpEntries})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, decodeErr(resp.Err, resp.Detail)
	}
	return resp.Entries, nil
}

// GetMany implements registry.API.
func (c *Client) GetMany(names []string) ([]registry.Entry, error) {
	resp, err := c.call(Request{Op: OpGetMany, Names: names})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, decodeErr(resp.Err, resp.Detail)
	}
	return resp.Entries, nil
}

// Merge implements registry.API.
func (c *Client) Merge(entries []registry.Entry) (int, error) {
	resp, err := c.call(Request{Op: OpMerge, Entries: entries})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, decodeErr(resp.Err, resp.Detail)
	}
	return resp.N, nil
}

// Len implements registry.API. Transport errors yield zero.
func (c *Client) Len() int {
	resp, err := c.call(Request{Op: OpLen})
	if err != nil {
		return 0
	}
	return resp.N
}

func (c *Client) entryCall(req Request) (registry.Entry, error) {
	resp, err := c.call(req)
	if err != nil {
		return registry.Entry{}, err
	}
	if !resp.OK {
		return registry.Entry{}, decodeErr(resp.Err, resp.Detail)
	}
	return resp.Entry, nil
}

// call performs one request/response exchange, reconnecting once if the
// cached connection has gone stale.
func (c *Client) call(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Response{}, fmt.Errorf("rpc: client for %s is closed", c.addr)
	}
	resp, err := c.exchangeLocked(req)
	if err == nil {
		return resp, nil
	}
	// One transparent retry on a fresh connection (the server may have
	// dropped an idle connection between calls).
	c.dropConnLocked()
	return c.exchangeLocked(req)
}

func (c *Client) exchangeLocked(req Request) (Response, error) {
	if err := c.ensureConnLocked(); err != nil {
		return Response{}, err
	}
	deadline := time.Now().Add(c.timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.dropConnLocked()
		return Response{}, fmt.Errorf("rpc: set deadline: %w", err)
	}
	if err := writeFrame(c.conn, req); err != nil {
		c.dropConnLocked()
		return Response{}, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		c.dropConnLocked()
		return Response{}, fmt.Errorf("rpc: read response: %w", err)
	}
	return resp, nil
}

func (c *Client) ensureConnLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("rpc: connect %s: %w", c.addr, err)
	}
	c.conn = conn
	return nil
}

func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
