package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/limits"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// DefaultPoolSize is the number of TCP connections a Client opens (lazily)
// towards its server unless WithPoolSize says otherwise.
const DefaultPoolSize = 4

// Client is a registry.API proxy for a registry server reached over TCP.
//
// It is safe and efficient under heavy concurrent use: calls are spread
// round-robin over a pool of connections, and on each connection many
// requests can be in flight at once — every request carries a unique ID and
// a per-connection demultiplexer routes responses, which may arrive out of
// order, back to their callers (pipelining). Connections are established
// lazily and re-established transparently after transport errors.
//
// Every operation takes a context. The context's deadline (if any) is
// propagated to the server in the frame header, so the server abandons work
// whose client has given up. Cancelling the context of one in-flight call
// retires just that call: its response channel is deregistered, the late
// response is discarded by the demultiplexer, and the connection keeps
// serving every other pipelined request. The configured transport timeout
// (WithTimeout) remains as a backstop against a hung server: unlike a
// context cancellation it tears the connection down, because an unanswered
// request means the connection state can no longer be trusted.
//
// Transport-level failures (connect refused, broken connection, transport
// timeout, closed client) are reported wrapping registry.ErrUnavailable, so
// callers can distinguish "the site is unreachable" from per-entry errors.
type Client struct {
	addr    string
	site    cloud.SiteID
	timeout time.Duration
	pool    int
	tenant  string
	obs     clientObs

	nextConn atomic.Uint64 // round-robin cursor over the pool
	nextID   atomic.Uint64 // request ID source, unique per client

	mu     sync.Mutex
	conns  []*poolConn
	closed bool
}

// clientObs holds the client's observability instruments, resolved once at
// dial time so the hot path never touches the registry's name map. All
// fields tolerate being nil (instrumentation disabled).
type clientObs struct {
	inflight   *metrics.Gauge     // rpc_client_inflight: calls currently waiting on the wire
	calls      *metrics.Counter   // rpc_client_calls_total: round trips attempted
	errors     *metrics.Counter   // rpc_client_errors_total: round trips that failed
	retired    *metrics.Counter   // rpc_client_retired_total: calls abandoned because their context ended
	dials      *metrics.Counter   // rpc_client_dials_total: TCP connections established
	suppressed *metrics.Counter   // rpc_client_suppressed_errors_total: transport errors swallowed by best-effort ops
	batchOps   *metrics.Histogram // rpc_client_batch_ops: operations carried per batch frame
	latency    *metrics.Histogram // rpc_client_latency_ns: round-trip latency
	trace      *metrics.TraceRing // recent per-call events
}

func newClientObs(reg *metrics.Registry) clientObs {
	return clientObs{
		inflight:   reg.Gauge("rpc_client_inflight"),
		calls:      reg.Counter("rpc_client_calls_total"),
		errors:     reg.Counter("rpc_client_errors_total"),
		retired:    reg.Counter("rpc_client_retired_total"),
		dials:      reg.Counter("rpc_client_dials_total"),
		suppressed: reg.Counter("rpc_client_suppressed_errors_total"),
		batchOps:   reg.Histogram("rpc_client_batch_ops"),
		latency:    reg.Histogram("rpc_client_latency_ns"),
		trace:      reg.Trace(),
	}
}

// Client implements the registry API.
var _ registry.API = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout bounds each remote call at the transport level (connect +
// request + response) when the call's context carries no tighter deadline.
// Unlike a context deadline, a transport timeout tears the connection down.
// The default is 10 seconds.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithPoolSize sets how many connections the client spreads its calls over
// (default DefaultPoolSize). One connection already supports pipelining;
// more connections add parallelism on the server side and amortize
// head-of-line blocking on large frames.
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.pool = n
		}
	}
}

// WithTenant sets the tenant ID stamped into every outgoing frame header,
// identifying whose admission budget this client's requests consume (see
// WithServerLimits). The default is the empty string — the server's default
// tenant. A tenant attached to an individual call's context via
// limits.WithTenant overrides the client-wide value for that call.
func WithTenant(tenant string) ClientOption {
	return func(c *Client) { c.tenant = tenant }
}

// WithMetrics selects the registry the client's instruments report to:
// in-flight requests, calls/errors/retired-on-cancel counts, dials, batch
// sizes and round-trip latencies, plus one trace event per call. The default
// is metrics.Default; pass nil to disable instrumentation entirely.
func WithMetrics(reg *metrics.Registry) ClientOption {
	return func(c *Client) { c.obs = newClientObs(reg) }
}

// Dial connects to a registry server and verifies it is reachable. The
// context bounds the initial connect-and-handshake exchange; the returned
// client reports the site ID advertised by the server.
func Dial(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{addr: addr, timeout: 10 * time.Second, pool: DefaultPoolSize, obs: newClientObs(metrics.Default)}
	for _, o := range opts {
		o(c)
	}
	c.conns = make([]*poolConn, c.pool)
	resp, err := c.call(ctx, Request{Op: OpSite})
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	if !resp.OK {
		// The server answered but refused the handshake — e.g. admission
		// control rejecting a denied tenant.
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, decodeRespErr(resp))
	}
	c.site = siteFromN(resp.N)
	return c, nil
}

// Addr returns the server address this client talks to.
func (c *Client) Addr() string { return c.addr }

// PoolSize returns the configured connection-pool size.
func (c *Client) PoolSize() int { return c.pool }

// Site implements registry.API with the site ID advertised by the server.
// It is resolved once, at dial time, and therefore takes no context.
func (c *Client) Site() cloud.SiteID { return c.site }

// Ping verifies the server is reachable.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.call(ctx, Request{Op: OpPing})
	return err
}

// Close releases every pooled connection. Subsequent calls fail with an
// error wrapping registry.ErrUnavailable.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, pc := range conns {
		if pc != nil {
			pc.fail(c.errClosed())
		}
	}
	return nil
}

func (c *Client) errClosed() error {
	return fmt.Errorf("rpc: client for %s is closed: %w", c.addr, registry.ErrUnavailable)
}

// Create implements registry.API.
func (c *Client) Create(ctx context.Context, e registry.Entry) (registry.Entry, error) {
	return c.entryCall(ctx, Request{Op: OpCreate, Entry: e})
}

// Put implements registry.API.
func (c *Client) Put(ctx context.Context, e registry.Entry) (registry.Entry, error) {
	return c.entryCall(ctx, Request{Op: OpPut, Entry: e})
}

// Get implements registry.API.
func (c *Client) Get(ctx context.Context, name string) (registry.Entry, error) {
	return c.entryCall(ctx, Request{Op: OpGet, Name: name})
}

// Contains implements registry.API. Transport errors and cancelled contexts
// are reported as "does not contain", matching the best-effort semantics of
// the in-process Contains; every swallowed failure feeds the
// rpc_client_suppressed_errors_total counter so the degradation is
// observable even though the API hides it.
func (c *Client) Contains(ctx context.Context, name string) bool {
	resp, err := c.call(ctx, Request{Op: OpContains, Name: name})
	if err != nil {
		c.obs.suppressed.Inc()
		return false
	}
	return resp.Bool
}

// AddLocation implements registry.API.
func (c *Client) AddLocation(ctx context.Context, name string, loc registry.Location) (registry.Entry, error) {
	return c.entryCall(ctx, Request{Op: OpAddLoc, Name: name, Location: loc})
}

// Delete implements registry.API.
func (c *Client) Delete(ctx context.Context, name string) error {
	resp, err := c.call(ctx, Request{Op: OpDelete, Name: name})
	if err != nil {
		return err
	}
	return decodeRespErr(resp)
}

// Names implements registry.API. Transport errors yield an empty list and
// feed the suppressed-error counter (see Contains).
func (c *Client) Names(ctx context.Context) []string {
	resp, err := c.call(ctx, Request{Op: OpNames})
	if err != nil {
		c.obs.suppressed.Inc()
		return nil
	}
	return resp.Names
}

// Entries implements registry.API.
func (c *Client) Entries(ctx context.Context) ([]registry.Entry, error) {
	resp, err := c.call(ctx, Request{Op: OpEntries})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, decodeRespErr(resp)
	}
	return resp.Entries, nil
}

// GetMany implements registry.API. The whole name list travels in one frame.
func (c *Client) GetMany(ctx context.Context, names []string) ([]registry.Entry, error) {
	resp, err := c.call(ctx, Request{Op: OpGetMany, Names: names})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, decodeRespErr(resp)
	}
	return resp.Entries, nil
}

// PutMany implements registry.API. The whole batch travels in one frame.
func (c *Client) PutMany(ctx context.Context, entries []registry.Entry) ([]registry.Entry, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	resp, err := c.call(ctx, Request{Op: OpPutMany, Entries: entries})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, decodeRespErr(resp)
	}
	return resp.Entries, nil
}

// DeleteMany implements registry.API. The whole name list travels in one
// frame; it returns how many of the named entries were present and removed.
func (c *Client) DeleteMany(ctx context.Context, names []string) (int, error) {
	if len(names) == 0 {
		return 0, nil
	}
	resp, err := c.call(ctx, Request{Op: OpDeleteMany, Names: names})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, decodeRespErr(resp)
	}
	return resp.N, nil
}

// Merge implements registry.API.
func (c *Client) Merge(ctx context.Context, entries []registry.Entry) (int, error) {
	resp, err := c.call(ctx, Request{Op: OpMerge, Entries: entries})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, decodeRespErr(resp)
	}
	return resp.N, nil
}

// Len implements registry.API. Transport errors yield zero and feed the
// suppressed-error counter (see Contains).
func (c *Client) Len(ctx context.Context) int {
	resp, err := c.call(ctx, Request{Op: OpLen})
	if err != nil {
		c.obs.suppressed.Inc()
		return 0
	}
	return resp.N
}

// Batch sends many registry operations to the server in a single frame and
// round trip, returning one Response per operation in order. The server
// executes the operations sequentially, so a batch is equivalent to issuing
// them back-to-back on a dedicated connection — at a fraction of the framing
// and round-trip cost. The context's deadline bounds the whole batch; the
// server stops executing between operations once it passes. Per-operation
// failures are reported in the individual Responses; the returned error
// covers transport problems and cancellation only.
func (c *Client) Batch(ctx context.Context, ops []Request) ([]Response, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	c.obs.batchOps.Observe(int64(len(ops)))
	rf, err := c.roundTrip(ctx, RequestFrame{
		Header: Header{Version: ProtocolVersion, Kind: FrameBatch},
		Batch:  BatchRequest{Ops: ops},
	})
	if err != nil {
		return nil, err
	}
	if len(rf.Batch.Ops) != len(ops) {
		return nil, fmt.Errorf("rpc: batch answered %d of %d ops", len(rf.Batch.Ops), len(ops))
	}
	return rf.Batch.Ops, nil
}

func (c *Client) entryCall(ctx context.Context, req Request) (registry.Entry, error) {
	resp, err := c.call(ctx, req)
	if err != nil {
		return registry.Entry{}, err
	}
	if !resp.OK {
		return registry.Entry{}, decodeRespErr(resp)
	}
	return resp.Entry, nil
}

// call performs one request/response exchange.
func (c *Client) call(ctx context.Context, req Request) (Response, error) {
	rf, err := c.roundTrip(ctx, RequestFrame{
		Header: Header{Version: ProtocolVersion, Kind: FrameSingle},
		Req:    req,
	})
	if err != nil {
		return Response{}, err
	}
	return rf.Resp, nil
}

// roundTrip instruments one exchange: it tracks the in-flight gauge, counts
// the call and its outcome (an error with a done context counts as retired
// on cancel), observes the latency and records one trace event, delegating
// the wire work to transact.
func (c *Client) roundTrip(ctx context.Context, f RequestFrame) (ResponseFrame, error) {
	start := time.Now()
	c.obs.inflight.Add(1)
	rf, err := c.transact(ctx, f)
	c.obs.inflight.Add(-1)
	elapsed := time.Since(start)
	c.obs.calls.Inc()
	c.obs.latency.ObserveDuration(elapsed)
	if err != nil {
		c.obs.errors.Inc()
		if ctx.Err() != nil {
			c.obs.retired.Inc()
		}
	}
	if c.obs.trace != nil {
		op := "rpc." + string(f.Req.Op)
		detail := f.Req.Name
		if f.Header.Kind == FrameBatch {
			op = "rpc.batch"
			detail = fmt.Sprintf("%d ops", len(f.Batch.Ops))
		}
		c.obs.trace.Add(op, detail, elapsed, err)
	}
	return rf, err
}

// transact tags the frame with a fresh ID and the context's deadline, sends
// it over a pooled connection and waits for the matching response. A
// transport error is retried once on a fresh connection (the server may have
// dropped an idle connection between calls); a context error is never
// retried — the caller has given up.
func (c *Client) transact(ctx context.Context, f RequestFrame) (ResponseFrame, error) {
	if err := ctx.Err(); err != nil {
		return ResponseFrame{}, fmt.Errorf("rpc: %s: %w", c.addr, err)
	}
	f.Header.ID = c.nextID.Add(1)
	f.Header.TimeoutNs = headerTimeout(ctx)
	f.Header.Tenant = c.tenantFor(ctx)
	pc, err := c.grabConn(ctx)
	if err != nil {
		return ResponseFrame{}, err
	}
	resp, err := pc.do(ctx, f, c.timeout)
	if err == nil {
		return resp, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		// The caller's context is done. If the transport timer happened to
		// fire first (a context deadline close to the transport timeout),
		// report the context error anyway: "the deadline passed" is the
		// truth the caller can act on, not the connection teardown it
		// triggered.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return ResponseFrame{}, err
		}
		return ResponseFrame{}, fmt.Errorf("rpc: %s: %v: %w", c.addr, err, cerr)
	}
	pc, err2 := c.grabConn(ctx)
	if err2 != nil {
		return ResponseFrame{}, err2
	}
	// Re-measure the remaining budget: the first attempt consumed part of it
	// (possibly the whole transport timeout), and re-sending the stale value
	// would let the server's re-anchored deadline extend past the client's.
	f.Header.TimeoutNs = headerTimeout(ctx)
	return pc.do(ctx, f, c.timeout)
}

// tenantFor resolves the tenant stamped into a frame header: a per-call
// override carried by the context wins over the client-wide WithTenant
// value.
func (c *Client) tenantFor(ctx context.Context) string {
	if t := limits.TenantFromContext(ctx); t != "" {
		return t
	}
	return c.tenant
}

// grabConn returns the next pooled connection in round-robin order, dialing
// a replacement if that slot is empty or its connection has died. The dial
// happens outside the client lock so a slow or failing connect never stalls
// calls headed for the other, healthy pool slots.
func (c *Client) grabConn(ctx context.Context) (*poolConn, error) {
	idx := int(c.nextConn.Add(1)-1) % c.pool
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, c.errClosed()
	}
	if pc := c.conns[idx]; pc != nil && !pc.dead() {
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()

	c.obs.dials.Inc()
	dialer := net.Dialer{Timeout: c.timeout}
	conn, err := dialer.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("rpc: connect %s: %w", c.addr, ctx.Err())
		}
		return nil, fmt.Errorf("rpc: connect %s: %v: %w", c.addr, err, registry.ErrUnavailable)
	}
	pc := newPoolConn(conn)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		pc.fail(c.errClosed())
		return nil, c.errClosed()
	}
	if cur := c.conns[idx]; cur != nil && !cur.dead() {
		// A concurrent caller repaired the slot first; use theirs.
		c.mu.Unlock()
		pc.fail(fmt.Errorf("rpc: superseded connection: %w", registry.ErrUnavailable))
		return cur, nil
	}
	c.conns[idx] = pc
	c.mu.Unlock()
	return pc, nil
}

// poolConn is one pooled connection: a frame writer serialized by wmu and a
// background demultiplexer that routes response frames to the in-flight
// calls registered in pending.
type poolConn struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan ResponseFrame
	err     error // sticky; set once the connection is unusable
}

func newPoolConn(conn net.Conn) *poolConn {
	pc := &poolConn{conn: conn, pending: make(map[uint64]chan ResponseFrame)}
	go pc.readLoop()
	return pc
}

func (pc *poolConn) dead() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.err != nil
}

// do registers the frame's ID, writes the frame, and waits for the demuxed
// response, the context, or the transport timeout. The three exits differ:
//
//   - response: delivered, the call succeeded at the transport level;
//   - context done: only this call is retired — its pending ID is
//     deregistered so the demultiplexer discards the late response, and the
//     connection keeps serving other in-flight calls;
//   - transport timeout: the connection is torn down — an unanswered request
//     means its state can no longer be trusted, and its demultiplexer could
//     otherwise deliver a response for a retired ID.
func (pc *poolConn) do(ctx context.Context, f RequestFrame, timeout time.Duration) (ResponseFrame, error) {
	ch := make(chan ResponseFrame, 1)
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return ResponseFrame{}, err
	}
	pc.pending[f.Header.ID] = ch
	pc.mu.Unlock()

	frame, err := encodeFrame(f)
	if err != nil {
		pc.forget(f.Header.ID)
		return ResponseFrame{}, err
	}
	pc.wmu.Lock()
	pc.conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err = pc.conn.Write(frame.Bytes())
	pc.wmu.Unlock()
	releaseFrame(frame)
	if err != nil {
		err = fmt.Errorf("rpc: write frame: %v: %w", err, registry.ErrUnavailable)
		pc.fail(err)
		return ResponseFrame{}, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			pc.mu.Lock()
			err := pc.err
			pc.mu.Unlock()
			return ResponseFrame{}, fmt.Errorf("rpc: read response: %w", err)
		}
		return resp, nil
	case <-ctx.Done():
		pc.forget(f.Header.ID)
		return ResponseFrame{}, fmt.Errorf("rpc: call abandoned: %w", ctx.Err())
	case <-timer.C:
		err := fmt.Errorf("rpc: no response within %v: %w", timeout, registry.ErrUnavailable)
		pc.fail(err)
		return ResponseFrame{}, err
	}
}

// forget retires one in-flight request ID; a response that later arrives for
// it is discarded by the demultiplexer.
func (pc *poolConn) forget(id uint64) {
	pc.mu.Lock()
	delete(pc.pending, id)
	pc.mu.Unlock()
}

// readLoop demultiplexes response frames by header ID until the connection
// dies. Frames for retired IDs (abandoned calls) are discarded.
func (pc *poolConn) readLoop() {
	for {
		var rf ResponseFrame
		if err := readFrame(pc.conn, &rf); err != nil {
			pc.fail(fmt.Errorf("%v: %w", err, registry.ErrUnavailable))
			return
		}
		pc.mu.Lock()
		ch := pc.pending[rf.Header.ID]
		delete(pc.pending, rf.Header.ID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- rf
		}
	}
}

// fail marks the connection dead, closes it, and wakes every in-flight call
// with the failure.
func (pc *poolConn) fail(err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
	}
	pending := pc.pending
	pc.pending = make(map[uint64]chan ResponseFrame)
	pc.mu.Unlock()
	pc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}
