// Package rpc lets a metadata registry instance run as a stand-alone server
// process and be driven remotely over TCP.
//
// The paper's prototype deploys one managed-cache-backed registry instance
// per datacenter; the strategy logic lives in a client-side middleware that
// knows every instance's endpoint and decides, per operation, which instance
// to contact. This package reproduces that split: cmd/metaserver wraps a
// registry.Instance behind a TCP endpoint, and Client is a registry.API proxy
// that the core strategies can use, via core.WithInstances, exactly as if the
// instance were in-process.
//
// The wire protocol is deliberately simple: each message is a 4-byte
// big-endian length followed by a gob-encoded Request or Response. Requests
// on one connection are processed in order.
package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"geomds/internal/cloud"
	"geomds/internal/registry"
)

// Op identifies the requested registry operation.
type Op string

// Supported operations. They mirror registry.API one-to-one.
const (
	OpPing     Op = "ping"
	OpSite     Op = "site"
	OpCreate   Op = "create"
	OpPut      Op = "put"
	OpGet      Op = "get"
	OpContains Op = "contains"
	OpAddLoc   Op = "addloc"
	OpDelete   Op = "delete"
	OpNames    Op = "names"
	OpEntries  Op = "entries"
	OpGetMany  Op = "getmany"
	OpMerge    Op = "merge"
	OpLen      Op = "len"
)

// Request is one client-to-server message.
type Request struct {
	// Op selects the operation.
	Op Op
	// Name is the entry name for Get/Contains/AddLoc/Delete.
	Name string
	// Names carries the name list for GetMany.
	Names []string
	// Entry carries the payload for Create/Put.
	Entry registry.Entry
	// Entries carries the payload for Merge.
	Entries []registry.Entry
	// Location carries the payload for AddLoc.
	Location registry.Location
}

// Response is one server-to-client message.
type Response struct {
	// OK reports whether the operation succeeded.
	OK bool
	// Err is the error classification when OK is false.
	Err ErrCode
	// Detail is the error message when OK is false.
	Detail string
	// Entry is the result of Create/Put/Get/AddLoc.
	Entry registry.Entry
	// Entries is the result of Entries.
	Entries []registry.Entry
	// Names is the result of Names.
	Names []string
	// Bool is the result of Contains.
	Bool bool
	// N is the result of Len/Merge, and carries the SiteID for OpSite.
	N int
}

// ErrCode classifies errors across the wire so clients can map them back to
// the registry sentinel errors.
type ErrCode string

// Error classifications.
const (
	ErrNone     ErrCode = ""
	ErrNotFound ErrCode = "not-found"
	ErrExists   ErrCode = "exists"
	ErrConflict ErrCode = "conflict"
	ErrInvalid  ErrCode = "invalid"
	ErrInternal ErrCode = "internal"
	ErrBadOp    ErrCode = "bad-op"
)

// MaxMessageSize bounds a single framed message (16 MiB), protecting both
// ends from corrupt length prefixes.
const MaxMessageSize = 16 << 20

// encodeErr converts a server-side error into a wire classification.
func encodeErr(err error) (ErrCode, string) {
	switch {
	case err == nil:
		return ErrNone, ""
	case errors.Is(err, registry.ErrNotFound):
		return ErrNotFound, err.Error()
	case errors.Is(err, registry.ErrExists):
		return ErrExists, err.Error()
	case errors.Is(err, registry.ErrConflict):
		return ErrConflict, err.Error()
	case errors.Is(err, registry.ErrInvalidEntry):
		return ErrInvalid, err.Error()
	default:
		return ErrInternal, err.Error()
	}
}

// decodeErr converts a wire classification back into a registry error.
func decodeErr(code ErrCode, detail string) error {
	switch code {
	case ErrNone:
		return nil
	case ErrNotFound:
		return fmt.Errorf("%s: %w", detail, registry.ErrNotFound)
	case ErrExists:
		return fmt.Errorf("%s: %w", detail, registry.ErrExists)
	case ErrConflict:
		return fmt.Errorf("%s: %w", detail, registry.ErrConflict)
	case ErrInvalid:
		return fmt.Errorf("%s: %w", detail, registry.ErrInvalidEntry)
	default:
		return fmt.Errorf("rpc: remote error: %s", detail)
	}
}

// writeFrame writes one length-prefixed gob message to w.
func writeFrame(w io.Writer, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("rpc: encode: %w", err)
	}
	if payload.Len() > MaxMessageSize {
		return fmt.Errorf("rpc: message of %d bytes exceeds limit", payload.Len())
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(payload.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("rpc: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("rpc: write payload: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed gob message from r into v.
func readFrame(r io.Reader, v any) error {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return err // io.EOF is meaningful to callers; do not wrap
	}
	n := binary.BigEndian.Uint32(header[:])
	if n > MaxMessageSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("rpc: read payload: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("rpc: decode: %w", err)
	}
	return nil
}

// siteFromN converts the N field of an OpSite response into a SiteID.
func siteFromN(n int) cloud.SiteID { return cloud.SiteID(n) }
