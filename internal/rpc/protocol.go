// Package rpc lets a metadata registry instance run as a stand-alone server
// process and be driven remotely over TCP.
//
// The normative wire-protocol specification — framing, header fields,
// deadline propagation, batch semantics, error codes and version-1
// compatibility — lives in docs/WIRE.md at the repository root; the
// sections below summarize it next to the code.
//
// The paper's prototype deploys one managed-cache-backed registry instance
// per datacenter; the strategy logic lives in a client-side middleware that
// knows every instance's endpoint and decides, per operation, which instance
// to contact. This package reproduces that split: cmd/metaserver wraps a
// registry.Instance behind a TCP endpoint, and Client is a registry.API proxy
// that the core strategies can use, via core.WithInstances, exactly as if the
// instance were in-process.
//
// # Wire format
//
// Every message is a 4-byte big-endian length followed by a gob-encoded
// frame. Since protocol version 2 a frame is an envelope — RequestFrame on
// the client-to-server direction, ResponseFrame on the way back — carrying a
// versioned Header plus either one Request/Response (FrameSingle) or a
// BatchRequest/BatchResponse holding many registry operations (FrameBatch).
//
// The Header tags each request with a client-assigned ID that the server
// echoes in the matching response. Because responses are correlated by ID
// rather than by arrival order, a client may keep many requests in flight on
// one connection (pipelining) and the server may answer them out of order;
// Client additionally spreads calls over a configurable connection pool.
// A batch frame carries many independent registry operations in a single
// round trip; the server executes them in order and returns one Response per
// operation, so a batch is semantically equivalent to issuing the operations
// back-to-back on a dedicated connection.
//
// # Deadline propagation
//
// The Header optionally carries the client's remaining time budget
// (Header.TimeoutNs, nanoseconds until the context deadline, measured when
// the frame is built; 0 means no deadline). The budget is relative rather
// than an absolute timestamp on purpose: the server re-anchors it on its own
// clock, so client/server clock skew cannot shift — or instantly expire —
// every propagated deadline (the price is that network transit time extends
// the effective deadline by a round-trip's worth, which is the standard
// trade-off). The server derives the context it runs the dispatched handler
// under from this budget, so work whose client has given up is abandoned
// rather than executed: a request arriving with a non-positive budget is
// answered with ErrDeadline without touching the registry, and a batch stops
// between operations once the budget runs out. Cancellation is client-side
// only — an abandoned request's ID is simply retired, and the late response
// (if the server still sends one) is discarded by the demultiplexer while
// the connection keeps serving the other in-flight requests.
//
// # Error codes
//
// A failed operation travels as a structured error frame: Response.Err is a
// machine-readable classification and Response.Detail the human-readable
// message. Client maps codes back to the sentinel errors, so errors.Is works
// across the wire:
//
//	code                sentinel the client surfaces
//	----                ---------------------------------
//	not-found           registry.ErrNotFound
//	exists              registry.ErrExists
//	conflict            registry.ErrConflict
//	invalid             registry.ErrInvalidEntry
//	unavailable         registry.ErrUnavailable
//	deadline-exceeded   context.DeadlineExceeded
//	canceled            context.Canceled
//	overloaded          limits.ErrOverloaded (carries Response.RetryAfterNs)
//	bad-op, internal    (no sentinel; opaque remote error)
//
// # Tenancy and admission control
//
// Header.Tenant names the tenant a request is accounted against; an empty
// field — including every version-1 message, which has no header — maps to
// limits.DefaultTenant. A server configured with a limits.Limiter (see
// WithServerLimits) admits or rejects each frame before dispatching any
// registry work; rejections travel as code "overloaded" with a retry-after
// backoff hint in Response.RetryAfterNs, which the client surfaces as a
// *limits.Overload matching limits.ErrOverloaded. Overloaded is deliberately
// distinct from deadline-exceeded: the request was never started, so
// retrying after the hint cannot duplicate work.
//
// # Compatibility with the version-1 un-tagged protocol
//
// Version 1 framed a bare gob-encoded Request/Response with no header;
// requests on one connection were processed strictly in order. The server
// remains compatible: gob refuses to decode a version-1 Request into a
// RequestFrame (none of the envelope's fields match), so a message that
// fails to decode as a frame is re-decoded as a bare Request, served
// synchronously, and answered with a bare Response — version-1 clients keep
// their one-at-a-time in-order semantics. The two generations can share one
// server, even one connection. The version-2 Client does not fall back:
// dialing a version-1 server fails at the initial handshake.
package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/limits"
	"geomds/internal/registry"
)

// ProtocolVersion is the wire protocol generation stamped into every frame
// header. Version 2 introduced the header itself, request IDs (pipelining)
// and batch frames; version 1 is the legacy un-tagged request/response
// protocol, still accepted by the server (see the package documentation).
const ProtocolVersion = 2

// FrameKind discriminates what a frame's payload carries.
type FrameKind uint8

// Frame kinds.
const (
	// FrameSingle carries one Request (or Response).
	FrameSingle FrameKind = 1
	// FrameBatch carries a BatchRequest (or BatchResponse).
	FrameBatch FrameKind = 2
)

// Header is the versioned frame header prefixed (inside the gob envelope) to
// every protocol message since version 2.
type Header struct {
	// Version is the protocol generation (ProtocolVersion); legacy
	// version-1 messages carry no header at all.
	Version uint16
	// ID tags the request; the server echoes it in the matching response so
	// the client can demultiplex pipelined responses arriving out of order.
	ID uint64
	// Kind selects between a single operation and a batch.
	Kind FrameKind
	// TimeoutNs is the client's remaining time budget in nanoseconds —
	// time.Until the call context's deadline, measured when the frame is
	// built; 0 means no deadline, a negative value an already-expired one.
	// It is deliberately relative, not an absolute timestamp, so the server
	// can anchor it on its own clock and client/server clock skew cannot
	// distort the propagated deadline (see the package documentation). The
	// field is new within protocol version 2; gob tolerates its absence, so
	// frames from clients predating it simply carry no deadline.
	TimeoutNs int64
	// Tenant names the tenant this request is accounted against for
	// admission control; empty means limits.DefaultTenant. Like TimeoutNs
	// it is a later version-2 extension — gob tolerates its absence, so
	// frames from clients predating it land on the default tenant.
	Tenant string
}

// headerTimeout converts a context's deadline into the wire representation:
// the remaining budget relative to now. An already-expired deadline yields a
// negative budget (never 0, which would read as "no deadline").
func headerTimeout(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ns := int64(time.Until(dl))
	if ns == 0 {
		ns = -1
	}
	return ns
}

// deadlineContext derives the server-side context for a request from the
// propagated time budget, re-anchored on the server's clock: base itself
// when the header carries none, a deadline-bounded child otherwise. The
// returned cancel func must be called once the request is answered.
func deadlineContext(base context.Context, timeoutNs int64) (context.Context, context.CancelFunc) {
	if timeoutNs == 0 {
		// No deadline: run directly under base (cancelled on server close).
		// Skipping the child context keeps the deadline-free hot path free
		// of per-request allocations and parent-lock contention.
		return base, func() {}
	}
	return context.WithDeadline(base, time.Now().Add(time.Duration(timeoutNs)))
}

// BatchRequest carries many registry operations in one round trip.
type BatchRequest struct {
	// Ops are executed by the server in order.
	Ops []Request
}

// BatchResponse answers a BatchRequest with one Response per operation, in
// the same order.
type BatchResponse struct {
	Ops []Response
}

// RequestFrame is the client-to-server envelope.
type RequestFrame struct {
	Header Header
	// Req is the payload of a FrameSingle frame.
	Req Request
	// Batch is the payload of a FrameBatch frame.
	Batch BatchRequest
	// Watch is the payload of a FrameWatch frame (see watch.go). The field
	// is a version-2 extension; gob tolerates its absence in frames from
	// older clients.
	Watch WatchRequest
}

// ResponseFrame is the server-to-client envelope.
type ResponseFrame struct {
	Header Header
	// Resp is the payload of a FrameSingle frame. Watch frames reuse it
	// for their success/error status.
	Resp Response
	// Batch is the payload of a FrameBatch frame.
	Batch BatchResponse
	// Watch is the payload of the FrameWatch acknowledgement (see
	// watch.go); a version-2 extension like RequestFrame.Watch.
	Watch WatchAck
	// Events is the payload of a FrameWatchEvent frame.
	Events []WatchEvent
}

// Op identifies the requested registry operation.
type Op string

// Supported operations. They mirror registry.API one-to-one.
const (
	OpPing       Op = "ping"
	OpSite       Op = "site"
	OpCreate     Op = "create"
	OpPut        Op = "put"
	OpGet        Op = "get"
	OpContains   Op = "contains"
	OpAddLoc     Op = "addloc"
	OpDelete     Op = "delete"
	OpNames      Op = "names"
	OpEntries    Op = "entries"
	OpGetMany    Op = "getmany"
	OpPutMany    Op = "putmany"
	OpDeleteMany Op = "deletemany"
	OpMerge      Op = "merge"
	OpLen        Op = "len"
)

// Request is one client-to-server operation.
type Request struct {
	// Op selects the operation.
	Op Op
	// Name is the entry name for Get/Contains/AddLoc/Delete.
	Name string
	// Names carries the name list for GetMany/DeleteMany.
	Names []string
	// Entry carries the payload for Create/Put.
	Entry registry.Entry
	// Entries carries the payload for Merge/PutMany.
	Entries []registry.Entry
	// Location carries the payload for AddLoc.
	Location registry.Location
}

// Response is one server-to-client result.
type Response struct {
	// OK reports whether the operation succeeded.
	OK bool
	// Err is the error classification when OK is false.
	Err ErrCode
	// Detail is the error message when OK is false.
	Detail string
	// Entry is the result of Create/Put/Get/AddLoc.
	Entry registry.Entry
	// Entries is the result of Entries/GetMany/PutMany.
	Entries []registry.Entry
	// Names is the result of Names.
	Names []string
	// Bool is the result of Contains.
	Bool bool
	// N is the result of Len/Merge/DeleteMany, and carries the SiteID for
	// OpSite.
	N int
	// RetryAfterNs is the backoff hint in nanoseconds accompanying an
	// ErrOverloaded rejection (0 otherwise): how long the client should
	// wait before retrying. A version-2 extension tolerated as absent by
	// gob, like Header.Tenant.
	RetryAfterNs int64
}

// ErrCode classifies errors across the wire so clients can map them back to
// the registry sentinel errors.
type ErrCode string

// Error classifications. See the package documentation for the full
// code-to-sentinel table.
const (
	ErrNone     ErrCode = ""
	ErrNotFound ErrCode = "not-found"
	ErrExists   ErrCode = "exists"
	ErrConflict ErrCode = "conflict"
	ErrInvalid  ErrCode = "invalid"
	ErrInternal ErrCode = "internal"
	ErrBadOp    ErrCode = "bad-op"
	// ErrUnavailable reports that the registry behind the server could not
	// be reached (relevant when the server proxies a further hop).
	ErrUnavailable ErrCode = "unavailable"
	// ErrDeadline reports that the operation's propagated deadline passed
	// before (or while) the server executed it.
	ErrDeadline ErrCode = "deadline-exceeded"
	// ErrCanceled reports that the operation's server-side context was
	// cancelled (e.g. the server is shutting down).
	ErrCanceled ErrCode = "canceled"
	// ErrOverloaded reports that admission control rejected the request
	// before any registry work was performed (rate limit, byte quota, or
	// load shed). The response's RetryAfterNs carries the backoff hint.
	ErrOverloaded ErrCode = "overloaded"
)

// MaxMessageSize bounds a single framed message (16 MiB), protecting both
// ends from corrupt length prefixes.
const MaxMessageSize = 16 << 20

// encodeErr converts a server-side error into a wire classification. Context
// errors are checked first: a deadline-exceeded create must round-trip as
// deadline-exceeded, not as whatever registry error it got wrapped into.
func encodeErr(err error) (ErrCode, string) {
	switch {
	case err == nil:
		return ErrNone, ""
	case errors.Is(err, limits.ErrOverloaded):
		return ErrOverloaded, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline, err.Error()
	case errors.Is(err, context.Canceled):
		return ErrCanceled, err.Error()
	case errors.Is(err, registry.ErrNotFound):
		return ErrNotFound, err.Error()
	case errors.Is(err, registry.ErrExists):
		return ErrExists, err.Error()
	case errors.Is(err, registry.ErrConflict):
		return ErrConflict, err.Error()
	case errors.Is(err, registry.ErrInvalidEntry):
		return ErrInvalid, err.Error()
	case errors.Is(err, registry.ErrUnavailable):
		return ErrUnavailable, err.Error()
	default:
		return ErrInternal, err.Error()
	}
}

// wireError is a decoded remote failure: its message is the server's detail
// string verbatim (which already names the sentinel once) and it unwraps to
// the matching sentinel, so errors.Is works on the client exactly as it does
// in-process without duplicating the cause in the text.
type wireError struct {
	detail string
	cause  error
}

func (e *wireError) Error() string { return e.detail }
func (e *wireError) Unwrap() error { return e.cause }

// decodeErr converts a wire classification back into an error matching the
// corresponding sentinel under errors.Is.
func decodeErr(code ErrCode, detail string) error {
	switch code {
	case ErrNone:
		return nil
	case ErrNotFound:
		return &wireError{detail: detail, cause: registry.ErrNotFound}
	case ErrExists:
		return &wireError{detail: detail, cause: registry.ErrExists}
	case ErrConflict:
		return &wireError{detail: detail, cause: registry.ErrConflict}
	case ErrInvalid:
		return &wireError{detail: detail, cause: registry.ErrInvalidEntry}
	case ErrUnavailable:
		return &wireError{detail: detail, cause: registry.ErrUnavailable}
	case ErrDeadline:
		return &wireError{detail: "rpc: remote: " + detail, cause: context.DeadlineExceeded}
	case ErrCanceled:
		return &wireError{detail: "rpc: remote: " + detail, cause: context.Canceled}
	case ErrOverloaded:
		return &wireError{detail: detail, cause: &limits.Overload{}}
	default:
		return fmt.Errorf("rpc: remote error: %s", detail)
	}
}

// decodeRespErr converts a Response's error fields back into an error. It
// extends decodeErr with the overload retry-after hint, which travels in its
// own Response field rather than inside the code.
func decodeRespErr(resp Response) error {
	if resp.Err == ErrOverloaded {
		return &wireError{
			detail: resp.Detail,
			cause:  &limits.Overload{RetryAfter: time.Duration(resp.RetryAfterNs)},
		}
	}
	return decodeErr(resp.Err, resp.Detail)
}

// retryAfterNs extracts the wire representation of an error's backoff hint
// (0 when it carries none).
func retryAfterNs(err error) int64 {
	if d, ok := limits.RetryAfter(err); ok {
		return int64(d)
	}
	return 0
}

// maxPooledFrame caps what the frame and payload pools retain: a buffer
// grown past it (one oversized bulk frame) is dropped instead of pinning
// megabytes for the connection's lifetime.
const maxPooledFrame = 1 << 20

// framePool recycles encode buffers across frames. Every message on the wire
// — request, response, batch, watch event — renders into a pooled buffer,
// which goes back via releaseFrame once its bytes are written, so steady-state
// traffic stops allocating a fresh buffer (and its gob growth) per frame.
var framePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeFrame renders one length-prefixed gob message into a pooled buffer,
// ready to be written with a single Write call. Pre-encoding lets callers
// keep the expensive gob work outside their connection write locks. The
// caller must hand the buffer to releaseFrame after writing it (encodeFrame
// releases it itself on error).
func encodeFrame(v any) (*bytes.Buffer, error) {
	buf := framePool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // length prefix, patched below
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		releaseFrame(buf)
		return nil, fmt.Errorf("rpc: encode: %w", err)
	}
	n := buf.Len() - 4
	if n > MaxMessageSize {
		releaseFrame(buf)
		return nil, fmt.Errorf("rpc: message of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(buf.Bytes()[:4], uint32(n))
	return buf, nil
}

// releaseFrame returns an encode buffer to the pool. The frame's bytes must
// not be referenced afterwards.
func releaseFrame(buf *bytes.Buffer) {
	if buf.Cap() > maxPooledFrame {
		return
	}
	framePool.Put(buf)
}

// writeFrame writes one length-prefixed gob message to w.
func writeFrame(w io.Writer, v any) error {
	frame, err := encodeFrame(v)
	if err != nil {
		return err
	}
	_, err = w.Write(frame.Bytes())
	releaseFrame(frame)
	if err != nil {
		return fmt.Errorf("rpc: write frame: %w", err)
	}
	return nil
}

// payloadPool recycles read buffers across messages (gob copies everything
// it decodes, so a payload is dead the moment decodePayload returns).
var payloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// readPayload reads one length-prefixed message from r and returns its raw
// gob payload, backed by a pooled buffer — the caller owns it until it calls
// releasePayload. Keeping the bytes around lets the server re-decode a
// message under the legacy (version-1) schema after version detection.
func readPayload(r io.Reader) ([]byte, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF is meaningful to callers; do not wrap
	}
	n := binary.BigEndian.Uint32(header[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	bp := payloadPool.Get().(*[]byte)
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	payload := (*bp)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		releasePayload(payload)
		return nil, fmt.Errorf("rpc: read payload: %w", err)
	}
	return payload, nil
}

// releasePayload returns a readPayload buffer to the pool. The payload must
// not be referenced afterwards.
func releasePayload(p []byte) {
	if cap(p) == 0 || cap(p) > maxPooledFrame {
		return
	}
	p = p[:0]
	payloadPool.Put(&p)
}

// decodePayload gob-decodes a raw payload into v.
func decodePayload(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("rpc: decode: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed gob message from r into v.
func readFrame(r io.Reader, v any) error {
	payload, err := readPayload(r)
	if err != nil {
		return err
	}
	err = decodePayload(payload, v)
	releasePayload(payload)
	return err
}

// siteFromN converts the N field of an OpSite response into a SiteID.
func siteFromN(n int) cloud.SiteID { return cloud.SiteID(n) }
