package rpc

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"geomds/internal/registry"
)

// Server exposes one registry instance over TCP. One server corresponds to
// the metadata registry deployment of a single datacenter.
type Server struct {
	reg      registry.API
	listener net.Listener
	logger   *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	requests atomic.Int64
}

// NewServer wraps the given registry behind a server. Call Serve (or
// ListenAndServe) to start accepting connections.
func NewServer(reg registry.API, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{reg: reg, logger: logger, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:7070" or ":0") and serves
// until Close. It returns the error that stopped the accept loop, or nil
// after an orderly Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts connections from ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("rpc: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Start is a convenience wrapper that listens on addr and serves in a
// background goroutine, returning the bound address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	go func() {
		if err := s.Serve(ln); err != nil {
			s.logger.Printf("rpc server stopped: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the listener address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Requests returns the number of requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting connections, closes active ones and waits for
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !s.isClosed() {
				s.logger.Printf("rpc: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.requests.Add(1)
		resp := s.dispatch(req)
		if err := writeFrame(conn, resp); err != nil {
			if !s.isClosed() {
				s.logger.Printf("rpc: write to %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpSite:
		return Response{OK: true, N: int(s.reg.Site())}
	case OpCreate:
		e, err := s.reg.Create(req.Entry)
		return result(e, err)
	case OpPut:
		e, err := s.reg.Put(req.Entry)
		return result(e, err)
	case OpGet:
		e, err := s.reg.Get(req.Name)
		return result(e, err)
	case OpContains:
		return Response{OK: true, Bool: s.reg.Contains(req.Name)}
	case OpAddLoc:
		e, err := s.reg.AddLocation(req.Name, req.Location)
		return result(e, err)
	case OpDelete:
		if err := s.reg.Delete(req.Name); err != nil {
			return failure(err)
		}
		return Response{OK: true}
	case OpNames:
		return Response{OK: true, Names: s.reg.Names()}
	case OpEntries:
		entries, err := s.reg.Entries()
		if err != nil {
			return failure(err)
		}
		return Response{OK: true, Entries: entries}
	case OpGetMany:
		entries, err := s.reg.GetMany(req.Names)
		if err != nil {
			return failure(err)
		}
		return Response{OK: true, Entries: entries}
	case OpMerge:
		n, err := s.reg.Merge(req.Entries)
		if err != nil {
			return failure(err)
		}
		return Response{OK: true, N: n}
	case OpLen:
		return Response{OK: true, N: s.reg.Len()}
	default:
		return Response{OK: false, Err: ErrBadOp, Detail: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func result(e registry.Entry, err error) Response {
	if err != nil {
		return failure(err)
	}
	return Response{OK: true, Entry: e}
}

func failure(err error) Response {
	code, detail := encodeErr(err)
	return Response{OK: false, Err: code, Detail: detail}
}
