package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/limits"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// DefaultMaxInflight is the per-connection bound on concurrently executing
// pipelined requests unless WithMaxInflight says otherwise.
const DefaultMaxInflight = 64

// batchRespPool recycles the per-batch response slice assembled for every
// FrameBatch: batches are the bulk hot path (PutMany/GetMany fan-out sends
// hundreds of operations per frame), and the slice is dead the moment the
// response frame is encoded.
var batchRespPool = sync.Pool{New: func() any { return new([]Response) }}

// takeBatchResponses returns a zeroed response slice of length n, reusing a
// pooled backing array when one is large enough.
func takeBatchResponses(n int) []Response {
	bp := batchRespPool.Get().(*[]Response)
	if cap(*bp) < n {
		return make([]Response, n)
	}
	return (*bp)[:n]
}

// releaseBatchResponses returns a batch response slice to the pool once its
// frame has been encoded; it is cleared here so pooled slices do not pin the
// entries the responses referenced. A nil slice (non-batch frame) is a
// no-op.
func releaseBatchResponses(ops []Response) {
	if cap(ops) == 0 {
		return
	}
	clear(ops)
	ops = ops[:0]
	batchRespPool.Put(&ops)
}

// Server exposes one registry instance over TCP. One server corresponds to
// the metadata registry deployment of a single datacenter.
//
// Requests from version-2 clients are pipelined: each connection executes up
// to the configured in-flight bound concurrently and responses are written
// as they complete, tagged with the request ID, possibly out of order.
// Legacy version-1 connections are served synchronously in order (see the
// package documentation for the compatibility rules).
//
// Each dispatched request runs under a context derived from the deadline the
// client propagated in the frame header: a request whose deadline has
// already passed on arrival is answered with an ErrDeadline error frame
// without touching the registry, a batch stops executing between operations
// once the deadline passes, and the registry operation itself observes the
// context. Closing the server cancels the base context, aborting whatever
// the in-flight handlers are blocked on.
type Server struct {
	reg         registry.API
	listener    net.Listener
	logger      *log.Logger
	maxInflight int
	limiter     *limits.Limiter
	obs         serverObs

	// baseCtx is the root of every request context; cancelled on Close.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	requests  atomic.Int64
	abandoned atomic.Int64
}

// serverObs holds the server's observability instruments, resolved once at
// construction so dispatch never touches the registry's name map. All fields
// tolerate being nil (instrumentation disabled).
type serverObs struct {
	dispatched  *metrics.Counter             // rpc_server_dispatched_total: registry ops executed
	abandoned   *metrics.Counter             // rpc_server_abandoned_total: ops refused because the propagated deadline had passed
	conns       *metrics.Gauge               // rpc_server_conns: connections currently served
	inflight    *metrics.Gauge               // rpc_server_inflight: pipelined frames currently executing
	errsByCode  map[ErrCode]*metrics.Counter // rpc_server_errors_total per wire code
	unknownErrs *metrics.Counter             // fallback for codes outside the known table
	latency     *metrics.Histogram           // rpc_server_latency_ns: per-op execution time
	trace       *metrics.TraceRing           // recent per-op events
}

func newServerObs(reg *metrics.Registry) serverObs {
	obs := serverObs{
		dispatched:  reg.Counter("rpc_server_dispatched_total"),
		abandoned:   reg.Counter("rpc_server_abandoned_total"),
		conns:       reg.Gauge("rpc_server_conns"),
		inflight:    reg.Gauge("rpc_server_inflight"),
		unknownErrs: reg.Counter("rpc_server_errors_unknown_total"),
		latency:     reg.Histogram("rpc_server_latency_ns"),
		trace:       reg.Trace(),
	}
	if reg != nil {
		obs.errsByCode = make(map[ErrCode]*metrics.Counter)
		for _, code := range []ErrCode{
			ErrNotFound, ErrExists, ErrConflict, ErrInvalid, ErrInternal,
			ErrBadOp, ErrUnavailable, ErrDeadline, ErrCanceled,
			ErrOverloaded, ErrCursorTooOld, ErrFeedLagged, ErrFeedClosed,
		} {
			obs.errsByCode[code] = reg.Counter("rpc_server_errors_" + strings.ReplaceAll(string(code), "-", "_") + "_total")
		}
	}
	return obs
}

// countErr attributes one failed response to its wire code. The code map is
// read-only after construction, so no locking is needed.
func (o serverObs) countErr(code ErrCode) {
	if c, ok := o.errsByCode[code]; ok {
		c.Inc()
		return
	}
	o.unknownErrs.Inc()
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerMetrics selects the registry the server's instruments report to:
// dispatched and abandoned operation counts, per-error-code failure counts,
// live connection and in-flight gauges. The default is metrics.Default; pass
// nil to disable instrumentation entirely.
func WithServerMetrics(reg *metrics.Registry) ServerOption {
	return func(s *Server) { s.obs = newServerObs(reg) }
}

// WithServerLimits installs per-tenant admission control: every incoming
// frame is offered to the limiter at the decode boundary — before it takes
// an in-flight slot or touches the registry — and rejected frames are
// answered with an "overloaded" error carrying the limiter's retry-after
// hint. The tenant is read from the frame header (empty, and every
// version-1 message, maps to limits.DefaultTenant); a batch frame pays one
// operation token per batched op, and every frame pays its payload size in
// byte tokens. A nil limiter (the default) admits everything.
func WithServerLimits(l *limits.Limiter) ServerOption {
	return func(s *Server) { s.limiter = l }
}

// WithMaxInflight bounds how many pipelined requests one connection may have
// executing concurrently (default DefaultMaxInflight). Excess requests wait
// in the connection's read loop, applying backpressure to the client.
func WithMaxInflight(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxInflight = n
		}
	}
}

// NewServer wraps the given registry behind a server. Call Serve (or
// ListenAndServe) to start accepting connections.
func NewServer(reg registry.API, logger *log.Logger, opts ...ServerOption) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		reg:         reg,
		logger:      logger,
		maxInflight: DefaultMaxInflight,
		obs:         newServerObs(metrics.Default),
		baseCtx:     baseCtx,
		cancelAll:   cancel,
		conns:       make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:7070" or ":0") and serves
// until Close. It returns the error that stopped the accept loop, or nil
// after an orderly Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts connections from ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("rpc: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Start is a convenience wrapper that listens on addr and serves in a
// background goroutine, returning the bound address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	go func() {
		if err := s.Serve(ln); err != nil {
			s.logger.Printf("rpc server stopped: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the listener address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Requests returns the number of registry operations served (each operation
// of a batch frame counts individually).
func (s *Server) Requests() int64 { return s.requests.Load() }

// Abandoned returns the number of operations the server refused to execute
// because their propagated deadline had already passed on arrival (or passed
// between the operations of a batch). Requests cut short by server shutdown
// are not counted: no client deadline passed for them.
func (s *Server) Abandoned() int64 { return s.abandoned.Load() }

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting connections, closes active ones and waits for
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// Cancel every in-flight request context so handlers blocked inside the
	// registry (or a modelled latency sleep) abort instead of being waited
	// for.
	s.cancelAll()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handle serves one connection until it drops. Version-2 frames are
// dispatched concurrently (bounded by maxInflight) and answered out of
// order; version-1 messages are answered synchronously, preserving the
// legacy in-order contract.
func (s *Server) handle(conn net.Conn) {
	var (
		wmu     sync.Mutex // serializes response-frame writes
		wg      sync.WaitGroup
		slots   = make(chan struct{}, s.maxInflight)
		watches = newConnWatches()
	)
	s.obs.conns.Add(1)
	defer s.obs.conns.Add(-1)
	defer func() {
		// Close before waiting: a response writer stuck on a stalled client
		// is only unblocked by the close. Watch streams block on their feed
		// rather than the connection, so cancel them explicitly.
		conn.Close()
		watches.cancelAll()
		wg.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := readPayload(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !s.isClosed() {
				s.logger.Printf("rpc: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		payloadLen := len(payload) // byte cost for admission, before the buffer is recycled
		var rf RequestFrame
		if err := decodePayload(payload, &rf); err != nil {
			// Not a version-2 envelope: gob refuses to decode a legacy bare
			// Request into a RequestFrame (no fields match), so this is
			// either a version-1 message or garbage. Re-decode and answer in
			// place, preserving the legacy one-at-a-time in-order contract.
			var req Request
			err := decodePayload(payload, &req)
			releasePayload(payload)
			if err != nil {
				s.logger.Printf("rpc: bad frame from %s: %v", conn.RemoteAddr(), err)
				return
			}
			// Version-1 messages carry no tenant header: they are admitted
			// as (and accounted against) the default tenant.
			var resp Response
			if finish, aerr := s.limiter.Admit("", 1, payloadLen); aerr != nil {
				s.obs.countErr(ErrOverloaded)
				resp = failure(aerr)
			} else {
				s.requests.Add(1)
				start := time.Now()
				resp = s.dispatch(s.baseCtx, req)
				finish(time.Since(start))
			}
			// Take the write lock: pipelined version-2 responses may still
			// be in flight on this connection.
			wmu.Lock()
			err = writeFrame(conn, resp)
			wmu.Unlock()
			if err != nil {
				if !s.isClosed() {
					s.logger.Printf("rpc: write to %s: %v", conn.RemoteAddr(), err)
				}
				return
			}
			continue
		}
		releasePayload(payload)

		switch rf.Header.Kind {
		case FrameWatch:
			// A subscription is long-lived, not an in-flight op: it pays
			// one operation token at admission and releases its slot
			// immediately.
			if finish, aerr := s.limiter.Admit(rf.Header.Tenant, 1, payloadLen); aerr != nil {
				s.rejectFrame(conn, &wmu, rf, aerr)
				continue
			} else {
				finish(0)
			}
			// A watch is long-lived: it gets its own goroutine outside the
			// in-flight slots so idle subscriptions never starve pipelined
			// request/response traffic.
			s.startWatch(conn, &wmu, &wg, watches, rf)
			continue
		case FrameWatchCancel:
			// Cancels release resources; refusing one would only pin them.
			watches.cancel(rf.Header.ID)
			continue
		}

		// Admission control at the decode boundary: a rejected frame is
		// answered here on the read loop, before it consumes an in-flight
		// slot or performs any registry work.
		ops := 1
		if rf.Header.Kind == FrameBatch {
			ops = len(rf.Batch.Ops)
		}
		finish, aerr := s.limiter.Admit(rf.Header.Tenant, ops, payloadLen)
		if aerr != nil {
			s.rejectFrame(conn, &wmu, rf, aerr)
			continue
		}

		slots <- struct{}{}
		wg.Add(1)
		go func(rf RequestFrame) {
			s.obs.inflight.Add(1)
			defer func() {
				s.obs.inflight.Add(-1)
				<-slots
				wg.Done()
			}()
			out := ResponseFrame{Header: Header{
				Version: ProtocolVersion,
				ID:      rf.Header.ID,
				Kind:    rf.Header.Kind,
			}}
			// Run the request under the deadline its client propagated in
			// the header; work whose client has given up is abandoned.
			ctx, cancel := deadlineContext(s.baseCtx, rf.Header.TimeoutNs)
			start := time.Now()
			switch rf.Header.Kind {
			case FrameBatch:
				s.requests.Add(int64(len(rf.Batch.Ops)))
				out.Batch.Ops = takeBatchResponses(len(rf.Batch.Ops))
				for i, req := range rf.Batch.Ops {
					out.Batch.Ops[i] = s.dispatch(ctx, req)
				}
			default:
				s.requests.Add(1)
				out.Resp = s.dispatch(ctx, rf.Req)
			}
			finish(time.Since(start))
			cancel()
			frame, err := encodeFrame(out)
			if err == nil {
				wmu.Lock()
				_, err = conn.Write(frame.Bytes())
				wmu.Unlock()
				releaseFrame(frame)
			}
			releaseBatchResponses(out.Batch.Ops)
			if err != nil {
				if !s.isClosed() {
					s.logger.Printf("rpc: write to %s: %v", conn.RemoteAddr(), err)
				}
				conn.Close() // unblock the read loop; the connection is gone
			}
		}(rf)
	}
}

// rejectFrame answers an admission-rejected version-2 frame with an
// "overloaded" error response (one per operation for a batch, so the frame
// shape matches what the client expects). It runs on the connection's read
// loop; the write happens under the shared write lock like any pipelined
// response.
func (s *Server) rejectFrame(conn net.Conn, wmu *sync.Mutex, rf RequestFrame, aerr error) {
	s.obs.countErr(ErrOverloaded)
	out := ResponseFrame{Header: Header{
		Version: ProtocolVersion,
		ID:      rf.Header.ID,
		Kind:    rf.Header.Kind,
	}}
	resp := failure(aerr)
	if rf.Header.Kind == FrameBatch {
		out.Batch.Ops = takeBatchResponses(len(rf.Batch.Ops))
		for i := range out.Batch.Ops {
			out.Batch.Ops[i] = resp
		}
	} else {
		out.Resp = resp
	}
	err := writeWatchFrame(conn, wmu, out) // encode + locked write; shape-agnostic
	releaseBatchResponses(out.Batch.Ops)
	if err != nil {
		if !s.isClosed() {
			s.logger.Printf("rpc: write to %s: %v", conn.RemoteAddr(), err)
		}
		conn.Close()
	}
}

// dispatch executes one registry operation under the request context. A
// context that is already done — the propagated deadline passed, or the
// server is shutting down — short-circuits into an error frame without
// touching the registry: the client has given up, so the work would be
// wasted.
func (s *Server) dispatch(ctx context.Context, req Request) Response {
	// An already-done context short-circuits in execute without touching the
	// registry; counting it as dispatched (or recording its near-zero
	// latency) would make an overload look like a throughput spike with
	// collapsing latencies. Abandoned work has its own counter.
	abandoned := ctx.Err() != nil
	start := time.Now()
	resp := s.execute(ctx, req)
	elapsed := time.Since(start)
	if !abandoned {
		s.obs.dispatched.Inc()
		s.obs.latency.ObserveDuration(elapsed)
	}
	if !resp.OK {
		s.obs.countErr(resp.Err)
	}
	if s.obs.trace != nil {
		var err error
		if !resp.OK {
			err = fmt.Errorf("%s: %s", resp.Err, resp.Detail)
		}
		s.obs.trace.Add("rpc."+string(req.Op), req.Name, elapsed, err)
	}
	return resp
}

// execute runs one registry operation; dispatch wraps it with accounting.
func (s *Server) execute(ctx context.Context, req Request) Response {
	if err := ctx.Err(); err != nil {
		// Only deadline expiries count as abandoned work; a Canceled base
		// context means the server itself is shutting down.
		if errors.Is(err, context.DeadlineExceeded) {
			s.abandoned.Add(1)
			s.obs.abandoned.Inc()
		}
		return failure(fmt.Errorf("abandoned %s: %w", req.Op, err))
	}
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpSite:
		return Response{OK: true, N: int(s.reg.Site())}
	case OpCreate:
		e, err := s.reg.Create(ctx, req.Entry)
		return result(e, err)
	case OpPut:
		e, err := s.reg.Put(ctx, req.Entry)
		return result(e, err)
	case OpGet:
		e, err := s.reg.Get(ctx, req.Name)
		return result(e, err)
	case OpContains:
		return Response{OK: true, Bool: s.reg.Contains(ctx, req.Name)}
	case OpAddLoc:
		e, err := s.reg.AddLocation(ctx, req.Name, req.Location)
		return result(e, err)
	case OpDelete:
		if err := s.reg.Delete(ctx, req.Name); err != nil {
			return failure(err)
		}
		return Response{OK: true}
	case OpNames:
		return Response{OK: true, Names: s.reg.Names(ctx)}
	case OpEntries:
		entries, err := s.reg.Entries(ctx)
		if err != nil {
			return failure(err)
		}
		return Response{OK: true, Entries: entries}
	case OpGetMany:
		entries, err := s.reg.GetMany(ctx, req.Names)
		if err != nil {
			return failure(err)
		}
		return Response{OK: true, Entries: entries}
	case OpPutMany:
		entries, err := s.reg.PutMany(ctx, req.Entries)
		if err != nil {
			return failure(err)
		}
		return Response{OK: true, Entries: entries}
	case OpDeleteMany:
		n, err := s.reg.DeleteMany(ctx, req.Names)
		if err != nil {
			return failure(err)
		}
		return Response{OK: true, N: n}
	case OpMerge:
		n, err := s.reg.Merge(ctx, req.Entries)
		if err != nil {
			return failure(err)
		}
		return Response{OK: true, N: n}
	case OpLen:
		return Response{OK: true, N: s.reg.Len(ctx)}
	case OpWatch:
		// Watching is a streaming exchange: it cannot be expressed in the
		// one-response-per-request protocol, so version-1 clients (and
		// version-2 single/batch frames) naming the op are refused cleanly.
		return Response{OK: false, Err: ErrBadOp, Detail: "watch requires version-2 streaming frames"}
	default:
		return Response{OK: false, Err: ErrBadOp, Detail: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func result(e registry.Entry, err error) Response {
	if err != nil {
		return failure(err)
	}
	return Response{OK: true, Entry: e}
}

func failure(err error) Response {
	code, detail := encodeErr(err)
	return Response{OK: false, Err: code, Detail: detail, RetryAfterNs: retryAfterNs(err)}
}
