package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/feed"
	"geomds/internal/memcache"
	"geomds/internal/registry"
)

// startFeedServer is startTestServer over an instance with a change feed,
// returning the instance too so tests can compare against the source log.
func startFeedServer(t *testing.T, site cloud.SiteID, opts ...registry.InstanceOption) (*registry.Instance, *Server, *Client) {
	t.Helper()
	opts = append([]registry.InstanceOption{registry.WithChangeFeed()}, opts...)
	inst := registry.NewInstance(site, memcache.New(memcache.Config{}), opts...)
	t.Cleanup(func() { inst.Close() })
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(tctx, addr, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return inst, srv, client
}

func watchCollect(t *testing.T, w *WatchStream, n int) []feed.Event {
	t.Helper()
	out := make([]feed.Event, 0, n)
	timeout := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch ended early (%v) after %d/%d events", w.Err(), len(out), n)
			}
			out = append(out, ev)
		case <-timeout:
			t.Fatalf("timed out after %d/%d events: %+v", len(out), n, out)
		}
	}
	return out
}

func TestWatchStreamsCommittedMutations(t *testing.T) {
	_, _, client := startFeedServer(t, 2)
	w, err := client.Watch(tctx, 0, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.StartSeq() != 0 || w.Fallback() {
		t.Fatalf("ack = %+v, want fresh stream from 0", w.ack)
	}
	if _, err := client.Create(tctx, wireEntry("watched")); err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(tctx, "watched"); err != nil {
		t.Fatal(err)
	}
	got := watchCollect(t, w, 2)
	if got[0].Op != feed.OpPut || got[0].Name != "watched" || got[0].Seq != 1 {
		t.Fatalf("event 0 = %+v", got[0])
	}
	if got[1].Op != feed.OpDelete || got[1].Seq != 2 {
		t.Fatalf("event 1 = %+v", got[1])
	}
}

func TestWatchPrefixFilter(t *testing.T) {
	_, _, client := startFeedServer(t, 2)
	w, err := client.Watch(tctx, 0, WatchOptions{Prefix: "jobs/"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, name := range []string{"jobs/a", "other/b", "jobs/c"} {
		if _, err := client.Create(tctx, wireEntry(name)); err != nil {
			t.Fatal(err)
		}
	}
	got := watchCollect(t, w, 2)
	if got[0].Name != "jobs/a" || got[1].Name != "jobs/c" {
		t.Fatalf("filtered names = %q, %q", got[0].Name, got[1].Name)
	}
}

// TestWatchReconnectResumesWithoutGapsOrDuplicates kills a watch mid-stream
// and resumes from its cursor on a fresh stream: the union of the two runs
// must deliver every sequence exactly once.
func TestWatchReconnectResumesWithoutGapsOrDuplicates(t *testing.T) {
	_, _, client := startFeedServer(t, 2)
	const n = 24
	for i := 0; i < n; i++ {
		if _, err := client.Create(tctx, wireEntry(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w, err := client.Watch(tctx, 0, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := watchCollect(t, w, n/3)
	cursor := first[len(first)-1].Seq
	w.Close() // connection torn down mid-stream

	w2, err := client.Watch(tctx, cursor, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Fallback() {
		t.Fatal("in-window resume must not fall back to a snapshot")
	}
	rest := watchCollect(t, w2, n-len(first))
	seen := make(map[uint64]int, n)
	for _, ev := range append(first, rest...) {
		seen[ev.Seq]++
	}
	for s := uint64(1); s <= n; s++ {
		if seen[s] != 1 {
			t.Fatalf("seq %d delivered %d times across reconnect", s, seen[s])
		}
	}
}

// TestWatchCursorTooOldFallsBackToSnapshot subscribes with a cursor the
// server compacted away: the ack reports the fallback and the current state
// arrives as put events at the snapshot head before the live tail.
func TestWatchCursorTooOldFallsBackToSnapshot(t *testing.T) {
	_, _, client := startFeedServer(t, 2, registry.WithChangeFeed(feed.WithCapacity(4)))
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := client.Create(tctx, wireEntry(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w, err := client.Watch(tctx, 1, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.Fallback() || w.StartSeq() != n {
		t.Fatalf("ack = %+v, want fallback at head %d", w.ack, n)
	}
	snapshot := watchCollect(t, w, n)
	names := make(map[string]bool, n)
	for _, ev := range snapshot {
		if ev.Op != feed.OpPut || ev.Seq != n {
			t.Fatalf("snapshot event = %+v, want put at head %d", ev, n)
		}
		names[ev.Name] = true
	}
	if len(names) != n {
		t.Fatalf("snapshot covered %d names, want %d", len(names), n)
	}
	// The tail continues with live sequence numbers after the head.
	if _, err := client.Create(tctx, wireEntry("after")); err != nil {
		t.Fatal(err)
	}
	tail := watchCollect(t, w, 1)
	if tail[0].Seq != n+1 || tail[0].Name != "after" {
		t.Fatalf("tail event = %+v", tail[0])
	}
}

func TestWatchNoFallbackSurfacesCompacted(t *testing.T) {
	_, _, client := startFeedServer(t, 2, registry.WithChangeFeed(feed.WithCapacity(4)))
	for i := 0; i < 16; i++ {
		if _, err := client.Create(tctx, wireEntry(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Watch(tctx, 1, WatchOptions{NoFallback: true}); !errors.Is(err, feed.ErrCompacted) {
		t.Fatalf("err = %v, want feed.ErrCompacted", err)
	}
}

func TestWatchRefusedWithoutChangeFeed(t *testing.T) {
	_, client := startTestServer(t, 2) // instance without WithChangeFeed
	if _, err := client.Watch(tctx, 0, WatchOptions{}); err == nil {
		t.Fatal("watch against a feed-less registry must fail")
	}
}

// TestWatchRefusedForV1Clients speaks the legacy un-tagged protocol and
// names the watch op: the server must answer a clean bad-op error, not hang
// or break the connection.
func TestWatchRefusedForV1Clients(t *testing.T) {
	inst := registry.NewInstance(2, memcache.New(memcache.Config{}), registry.WithChangeFeed())
	defer inst.Close()
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, Request{Op: OpWatch}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readFrame(conn, &resp); err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if resp.OK || resp.Err != ErrBadOp {
		t.Fatalf("legacy watch answered %+v, want bad-op refusal", resp)
	}
	// The connection survives the refusal.
	if err := writeFrame(conn, Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if err := readFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("ping after refusal = %+v, %v", resp, err)
	}
}

// TestWatchCombinerOverRemoteShards fans two remote registries' watches
// into one combiner through the RPC client's FeedSource adapter, and checks
// the stream survives a server-side subscription drop via resubscribe.
func TestWatchCombinerOverRemoteShards(t *testing.T) {
	_, _, clientA := startFeedServer(t, 0)
	_, _, clientB := startFeedServer(t, 1)
	comb := feed.NewCombiner(
		[]feed.Source{clientA.FeedSource("site-0"), clientB.FeedSource("site-1")},
		feed.WithResubscribeBackoff(time.Millisecond, 50*time.Millisecond),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	comb.Start(ctx)
	defer comb.Close()

	const n = 8
	for i := 0; i < n; i++ {
		if _, err := clientA.Create(tctx, wireEntry(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := clientB.Create(tctx, wireEntry(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string][]uint64{}
	timeout := time.After(10 * time.Second)
	for total := 0; total < 2*n; total++ {
		select {
		case ev := <-comb.Events():
			seen[ev.Source] = append(seen[ev.Source], ev.Seq)
		case <-timeout:
			t.Fatalf("timed out with %v", seen)
		}
	}
	for _, source := range []string{"site-0", "site-1"} {
		seqs := seen[source]
		if len(seqs) != n {
			t.Fatalf("source %s delivered %d events, want %d", source, len(seqs), n)
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("source %s out of order: %v", source, seqs)
			}
		}
	}
}
