package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"geomds/internal/feed"
	"geomds/internal/registry"
)

// This file implements the watch half of the wire protocol: a client opens a
// long-lived subscription to the server registry's change feed and the
// server pushes every committed put and delete as it happens, tagged with
// the feed sequence number the client can resume from after a reconnect.
// The frame flow (normatively specified in docs/WIRE.md) is:
//
//	client                              server
//	  ── FrameWatch{FromSeq,Prefix} ──►
//	  ◄── FrameWatch ack{StartSeq,Fallback} ──
//	  ◄── FrameWatchEvent{Events...} ──   (repeated)
//	  ◄── FrameWatchEvent{Err} ──         (terminal, on feed loss)
//	  ── FrameWatchCancel ──►             (or just close the connection)
//
// A FromSeq older than the server's retained event window is answered with
// the cursor-too-old error when the client set NoFallback; otherwise the
// server falls back transparently: the ack carries Fallback=true and the
// current state arrives as synthetic put events (all at StartSeq) before
// the live tail. Watch frames require the version-2 envelope; a legacy
// version-1 client sending the watch op as a bare request is refused with
// bad-op (streaming cannot be expressed in the one-response-per-request
// protocol).

// Watch frame kinds (version 2 extension; see FrameKind).
const (
	// FrameWatch opens a subscription (client to server) and acknowledges
	// it (server to client).
	FrameWatch FrameKind = 3
	// FrameWatchEvent carries a batch of change events server to client. A
	// frame whose Resp.Err is set is terminal: the subscription ended.
	FrameWatchEvent FrameKind = 4
	// FrameWatchCancel closes the subscription with the same header ID.
	FrameWatchCancel FrameKind = 5
)

// OpWatch is the watch operation name. It exists so version-1 clients (and
// version-2 single frames) naming it are refused deterministically with
// bad-op rather than "unknown op": watching requires the streaming frames.
const OpWatch Op = "watch"

// ErrCursorTooOld reports that the requested resume cursor predates the
// server's retained event window and the client disabled the snapshot
// fallback. The client maps it onto feed.ErrCompacted.
const ErrCursorTooOld ErrCode = "cursor-too-old"

// ErrFeedLagged reports that the server dropped the subscription because
// the client consumed too slowly; resume from the last delivered sequence.
const ErrFeedLagged ErrCode = "feed-lagged"

// ErrFeedClosed reports that the feed behind the subscription shut down.
const ErrFeedClosed ErrCode = "feed-closed"

// WatchRequest is the payload of a client-to-server FrameWatch.
type WatchRequest struct {
	// FromSeq is the resume cursor: events with sequence numbers greater
	// than it are streamed. 0 subscribes from the start of the retained
	// window.
	FromSeq uint64
	// Prefix, when non-empty, restricts the stream to names with this
	// prefix (the key-range form of a watch: with the registry's
	// hash-based placement, "keys homed on shard S" is served by watching
	// the tier feed and filtering on Origin client-side instead).
	Prefix string
	// NoFallback refuses the snapshot fallback: a FromSeq older than the
	// retained window then fails with ErrCursorTooOld instead of
	// re-sending the current state.
	NoFallback bool
}

// WatchAck is the payload of the server's FrameWatch acknowledgement.
type WatchAck struct {
	// StartSeq is the sequence number the stream resumes after: FromSeq
	// normally, the snapshot head when Fallback is set.
	StartSeq uint64
	// Fallback reports that the cursor was too old and the current state
	// is being re-sent as put events before the live tail.
	Fallback bool
}

// WatchEvent is one change event on the wire; it mirrors feed.Event.
type WatchEvent struct {
	Seq    uint64
	Op     byte
	Name   string
	Value  []byte
	Origin string
	Commit int64
	Sync   bool
}

func toWireEvent(ev feed.Event) WatchEvent {
	return WatchEvent{Seq: ev.Seq, Op: byte(ev.Op), Name: ev.Name, Value: ev.Value, Origin: ev.Origin, Commit: ev.Commit, Sync: ev.Sync}
}

func fromWireEvent(ev WatchEvent) feed.Event {
	return feed.Event{Seq: ev.Seq, Op: feed.Op(ev.Op), Name: ev.Name, Value: ev.Value, Origin: ev.Origin, Commit: ev.Commit, Sync: ev.Sync}
}

// watchEventBatch bounds how many events one FrameWatchEvent carries: the
// server drains what is immediately available up to this many, so a burst
// amortizes framing without letting one frame grow unboundedly.
const watchEventBatch = 256

// encodeFeedErr classifies the feed sentinels terminating a subscription.
func encodeFeedErr(err error) (ErrCode, string) {
	switch {
	case errors.Is(err, feed.ErrLagged):
		return ErrFeedLagged, err.Error()
	case errors.Is(err, feed.ErrClosed):
		return ErrFeedClosed, err.Error()
	case errors.Is(err, feed.ErrCompacted):
		return ErrCursorTooOld, err.Error()
	}
	return encodeErr(err)
}

// decodeFeedErr maps the feed error codes back to their sentinels; other
// codes fall through to the standard table (which preserves an overload's
// retry-after hint).
func decodeFeedErr(resp Response) error {
	switch resp.Err {
	case ErrFeedLagged:
		return &wireError{detail: resp.Detail, cause: feed.ErrLagged}
	case ErrFeedClosed:
		return &wireError{detail: resp.Detail, cause: feed.ErrClosed}
	case ErrCursorTooOld:
		return &wireError{detail: resp.Detail, cause: feed.ErrCompacted}
	}
	return decodeRespErr(resp)
}

// --- Server side ---

// connWatches tracks one connection's live watch subscriptions so that a
// cancel frame (or the connection ending) stops the matching stream
// goroutines.
type connWatches struct {
	mu sync.Mutex
	m  map[uint64]context.CancelFunc
}

func newConnWatches() *connWatches {
	return &connWatches{m: make(map[uint64]context.CancelFunc)}
}

func (w *connWatches) add(id uint64, cancel context.CancelFunc) {
	w.mu.Lock()
	w.m[id] = cancel
	w.mu.Unlock()
}

func (w *connWatches) cancel(id uint64) {
	w.mu.Lock()
	cancel := w.m[id]
	delete(w.m, id)
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (w *connWatches) cancelAll() {
	w.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(w.m))
	for _, c := range w.m {
		cancels = append(cancels, c)
	}
	w.m = make(map[uint64]context.CancelFunc)
	w.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// writeWatchFrame serializes one watch frame onto the connection under the
// shared write lock (event streams interleave with pipelined responses).
func writeWatchFrame(conn net.Conn, wmu *sync.Mutex, out ResponseFrame) error {
	frame, err := encodeFrame(out)
	if err != nil {
		return err
	}
	wmu.Lock()
	_, err = conn.Write(frame.Bytes())
	wmu.Unlock()
	releaseFrame(frame)
	return err
}

// startWatch opens one subscription and spawns its streaming goroutine. It
// answers the FrameWatch synchronously (ack or error) so the client knows
// the outcome before any event arrives.
func (s *Server) startWatch(conn net.Conn, wmu *sync.Mutex, wg *sync.WaitGroup, watches *connWatches, rf RequestFrame) {
	refuse := func(code ErrCode, detail string) {
		out := ResponseFrame{
			Header: Header{Version: ProtocolVersion, ID: rf.Header.ID, Kind: FrameWatch},
			Resp:   Response{OK: false, Err: code, Detail: detail},
		}
		s.obs.countErr(code)
		if err := writeWatchFrame(conn, wmu, out); err != nil && !s.isClosed() {
			s.logger.Printf("rpc: write to %s: %v", conn.RemoteAddr(), err)
		}
	}
	feeder, ok := s.reg.(registry.ChangeFeeder)
	if !ok || feeder.ChangeFeed() == nil {
		refuse(ErrBadOp, "registry exposes no change feed")
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	log := feeder.ChangeFeed()
	req := rf.Watch
	ack := WatchAck{StartSeq: req.FromSeq}
	var snapshot []feed.Event
	sub, err := log.Subscribe(req.FromSeq, feed.WithPrefix(req.Prefix), feed.WithBuffer(watchEventBatch))
	if errors.Is(err, feed.ErrCompacted) && !req.NoFallback {
		// Cursor too old: re-send the current state, then tail from the
		// head captured before the state was read (at-least-once across
		// the fallback; puts are idempotent upserts).
		var head uint64
		snapshot, head, err = feeder.FeedSnapshot(ctx)
		if err == nil {
			sub, err = log.Subscribe(head, feed.WithPrefix(req.Prefix), feed.WithBuffer(watchEventBatch))
		}
		ack = WatchAck{StartSeq: head, Fallback: true}
	}
	if err != nil {
		cancel()
		code, detail := encodeFeedErr(err)
		refuse(code, detail)
		return
	}
	out := ResponseFrame{
		Header: Header{Version: ProtocolVersion, ID: rf.Header.ID, Kind: FrameWatch},
		Resp:   Response{OK: true},
		Watch:  ack,
	}
	if err := writeWatchFrame(conn, wmu, out); err != nil {
		cancel()
		sub.Close()
		conn.Close()
		return
	}
	watches.add(rf.Header.ID, cancel)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer cancel()
		defer sub.Close()
		s.streamWatch(ctx, conn, wmu, rf.Header.ID, req.Prefix, snapshot, ack.StartSeq, sub)
		watches.cancel(rf.Header.ID)
	}()
}

// streamWatch pushes the snapshot (if any) and then the live tail until the
// subscription, the connection or the context ends.
func (s *Server) streamWatch(ctx context.Context, conn net.Conn, wmu *sync.Mutex, id uint64, prefix string, snapshot []feed.Event, startSeq uint64, sub *feed.Subscription) {
	send := func(events []WatchEvent, terminal error) bool {
		out := ResponseFrame{
			Header: Header{Version: ProtocolVersion, ID: id, Kind: FrameWatchEvent},
			Resp:   Response{OK: terminal == nil},
		}
		out.Events = events
		if terminal != nil {
			out.Resp.Err, out.Resp.Detail = encodeFeedErr(terminal)
		}
		if err := writeWatchFrame(conn, wmu, out); err != nil {
			conn.Close() // the watch consumer is gone; unblock the read loop
			return false
		}
		return true
	}
	if len(snapshot) > 0 {
		batch := make([]WatchEvent, 0, min(len(snapshot), watchEventBatch))
		for _, ev := range snapshot {
			if prefix != "" && (len(ev.Name) < len(prefix) || ev.Name[:len(prefix)] != prefix) {
				continue
			}
			if ev.Seq == 0 {
				ev.Seq = startSeq
			}
			batch = append(batch, toWireEvent(ev))
			if len(batch) == watchEventBatch {
				if !send(batch, nil) {
					return
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 && !send(batch, nil) {
			return
		}
	}
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				err := sub.Err()
				if err == nil {
					err = feed.ErrClosed
				}
				send(nil, err)
				return
			}
			batch := []WatchEvent{toWireEvent(ev)}
			ended := false
		drain:
			for len(batch) < watchEventBatch {
				select {
				case ev2, ok2 := <-sub.Events():
					if !ok2 {
						ended = true
						break drain
					}
					batch = append(batch, toWireEvent(ev2))
				default:
					break drain
				}
			}
			if !send(batch, nil) {
				return
			}
			if ended {
				err := sub.Err()
				if err == nil {
					err = feed.ErrClosed
				}
				send(nil, err)
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// --- Client side ---

// WatchOptions configure Client.Watch.
type WatchOptions struct {
	// Prefix restricts the stream to names with this prefix.
	Prefix string
	// NoFallback makes a too-old cursor fail with feed.ErrCompacted
	// instead of being served by the server's snapshot+tail fallback.
	NoFallback bool
	// Buffer is the local event channel's capacity (default
	// watchEventBatch).
	Buffer int
}

// WatchStream is one live watch subscription. It implements feed.Stream, so
// a feed.Combiner can fan remote shards' watches into one consumer.
//
// The stream rides its own dedicated TCP connection: event delivery applies
// backpressure through the transport instead of competing with pipelined
// request/response traffic.
type WatchStream struct {
	conn net.Conn
	out  chan feed.Event
	done chan struct{}
	once sync.Once
	ack  WatchAck

	mu  sync.Mutex
	err error
}

// Events returns the event channel; it closes when the subscription ends
// (Close, server shutdown, transport loss, or the feed dropping the
// subscriber), after which Err explains why.
func (w *WatchStream) Events() <-chan feed.Event { return w.out }

// Err returns the terminal error after Events closed: nil after a clean
// Close, feed.ErrLagged / feed.ErrClosed for server-side feed ends, an
// error wrapping registry.ErrUnavailable for transport loss.
func (w *WatchStream) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// StartSeq returns the sequence number the stream resumed after: the
// requested cursor, or the snapshot head when Fallback reports true.
func (w *WatchStream) StartSeq() uint64 { return w.ack.StartSeq }

// Fallback reports whether the server fell back to snapshot+tail because
// the requested cursor predated its retained window.
func (w *WatchStream) Fallback() bool { return w.ack.Fallback }

// Close ends the subscription. Idempotent.
func (w *WatchStream) Close() {
	w.once.Do(func() {
		close(w.done)
		w.conn.Close()
	})
}

func (w *WatchStream) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// Watch subscribes to the server registry's change feed, resuming after
// from (0 = the start of the retained window). The context bounds the
// subscription handshake only; the returned stream lives until Close or a
// terminal condition. A from older than the server's retained window is
// served by the snapshot+tail fallback — the current state arrives as put
// events before the live tail — unless opts.NoFallback is set, in which
// case it fails with feed.ErrCompacted.
func (c *Client) Watch(ctx context.Context, from uint64, opts WatchOptions) (*WatchStream, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, c.errClosed()
	}
	c.mu.Unlock()
	dialer := net.Dialer{Timeout: c.timeout}
	conn, err := dialer.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("rpc: connect %s: %w", c.addr, ctx.Err())
		}
		return nil, fmt.Errorf("rpc: connect %s: %v: %w", c.addr, err, registry.ErrUnavailable)
	}
	c.obs.dials.Inc()
	id := c.nextID.Add(1)
	req := RequestFrame{
		Header: Header{Version: ProtocolVersion, ID: id, Kind: FrameWatch, Tenant: c.tenantFor(ctx)},
		Watch:  WatchRequest{FromSeq: from, Prefix: opts.Prefix, NoFallback: opts.NoFallback},
	}
	if err := writeFrame(conn, req); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: watch %s: %v: %w", c.addr, err, registry.ErrUnavailable)
	}
	// The handshake is bounded by the context's deadline (or the transport
	// timeout); the stream itself has no read deadline.
	if dl, ok := ctx.Deadline(); ok {
		conn.SetReadDeadline(dl)
	} else {
		conn.SetReadDeadline(time.Now().Add(c.timeout))
	}
	var ackFrame ResponseFrame
	if err := readFrame(conn, &ackFrame); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: watch %s: %v: %w", c.addr, err, registry.ErrUnavailable)
	}
	conn.SetReadDeadline(time.Time{})
	if ackFrame.Header.Kind != FrameWatch {
		conn.Close()
		return nil, fmt.Errorf("rpc: watch %s: unexpected %d frame in handshake: %w", c.addr, ackFrame.Header.Kind, registry.ErrUnavailable)
	}
	if !ackFrame.Resp.OK {
		conn.Close()
		return nil, decodeFeedErr(ackFrame.Resp)
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = watchEventBatch
	}
	w := &WatchStream{
		conn: conn,
		out:  make(chan feed.Event, buffer),
		done: make(chan struct{}),
		ack:  ackFrame.Watch,
	}
	go w.readLoop()
	return w, nil
}

// readLoop decodes event frames and delivers them in order until the stream
// ends one way or another.
func (w *WatchStream) readLoop() {
	defer close(w.out)
	for {
		var rf ResponseFrame
		if err := readFrame(w.conn, &rf); err != nil {
			select {
			case <-w.done:
				// Closed locally: a clean end, not an error.
			default:
				w.setErr(fmt.Errorf("rpc: watch: %v: %w", err, registry.ErrUnavailable))
			}
			return
		}
		if rf.Header.Kind != FrameWatchEvent {
			continue
		}
		for _, ev := range rf.Events {
			select {
			case w.out <- fromWireEvent(ev):
			case <-w.done:
				return
			}
		}
		if rf.Resp.Err != ErrNone {
			w.setErr(decodeFeedErr(rf.Resp))
			return
		}
	}
}

// FeedSource adapts the client into a feed.Source for a Combiner: Subscribe
// opens a Watch (with the server-side snapshot fallback enabled, so a
// compacted cursor never surfaces to the combiner) and Snapshot is nil.
func (c *Client) FeedSource(name string) feed.Source {
	return feed.Source{
		Name: name,
		Subscribe: func(ctx context.Context, from uint64) (feed.Stream, error) {
			return c.Watch(ctx, from, WatchOptions{})
		},
	}
}
