package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/memcache"
	"geomds/internal/registry"
)

// TestCancelledCallLeavesConnectionUsable cancels one pipelined request while
// another is in flight on the same connection: the cancelled caller must
// return promptly with context.Canceled, the concurrent request must complete
// undisturbed, and the connection must stay alive (no reconnect) and keep
// serving subsequent calls.
func TestCancelledCallLeavesConnectionUsable(t *testing.T) {
	const delay = 500 * time.Millisecond
	client := startSlowServer(t, delay, WithPoolSize(1))
	if _, err := client.Create(tctx, wireEntry("slow-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Create(tctx, wireEntry("slow-b")); err != nil {
		t.Fatal(err)
	}

	// Pin down the single pooled connection so we can verify it survives.
	if err := client.Ping(tctx); err != nil {
		t.Fatal(err)
	}
	client.mu.Lock()
	before := client.conns[0]
	client.mu.Unlock()
	if before == nil {
		t.Fatal("no pooled connection established")
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := client.Get(ctxA, "slow-a")
		aDone <- err
	}()
	bDone := make(chan error, 1)
	go func() {
		_, err := client.Get(tctx, "slow-b")
		bDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // both requests on the wire

	start := time.Now()
	cancelA()
	select {
	case err := <-aDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Get returned %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed >= delay {
			t.Errorf("cancelled Get took %v; it waited for the response instead of aborting", elapsed)
		}
	case <-time.After(delay):
		t.Fatal("cancelled Get did not return")
	}

	// The other in-flight request is undisturbed.
	if err := <-bDone; err != nil {
		t.Fatalf("concurrent Get disturbed by the cancellation: %v", err)
	}

	// Same connection, still alive, still serving.
	client.mu.Lock()
	after := client.conns[0]
	client.mu.Unlock()
	if after != before {
		t.Error("cancellation should not replace the pooled connection")
	}
	if before.dead() {
		t.Error("cancellation should not kill the pooled connection")
	}
	if _, err := client.Get(tctx, "slow-a"); err != nil {
		t.Errorf("Get after cancellation: %v", err)
	}
}

// TestDeadlinePropagatesToServer sends a frame whose header carries an
// already-expired deadline straight over the wire: the server must answer
// with an ErrDeadline error frame without executing the operation.
func TestDeadlinePropagatesToServer(t *testing.T) {
	inst := registry.NewInstance(0, memcache.New(memcache.Config{}))
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := writeFrame(conn, RequestFrame{
		Header: Header{
			Version:   ProtocolVersion,
			ID:        1,
			Kind:      FrameSingle,
			TimeoutNs: -int64(time.Second), // budget already spent
		},
		Req: Request{Op: OpCreate, Entry: wireEntry("never-created")},
	}); err != nil {
		t.Fatal(err)
	}
	var rf ResponseFrame
	if err := readFrame(conn, &rf); err != nil {
		t.Fatal(err)
	}
	if rf.Resp.OK || rf.Resp.Err != ErrDeadline {
		t.Errorf("expired-deadline response = %+v, want ErrDeadline", rf.Resp)
	}
	if got := decodeErr(rf.Resp.Err, rf.Resp.Detail); !errors.Is(got, context.DeadlineExceeded) {
		t.Errorf("decoded error = %v, want context.DeadlineExceeded", got)
	}
	if inst.Len(tctx) != 0 {
		t.Error("server executed an operation whose deadline had passed")
	}
	if srv.Abandoned() != 1 {
		t.Errorf("Abandoned = %d, want 1", srv.Abandoned())
	}
}

// TestServerAbandonsBatchAfterDeadline runs a batch whose first operation
// outlives the client's deadline: the server must stop between operations, so
// the second one is never applied to the registry.
func TestServerAbandonsBatchAfterDeadline(t *testing.T) {
	const delay = 400 * time.Millisecond
	inst := registry.NewInstance(0, memcache.New(memcache.Config{}))
	srv := NewServer(slowAPI{API: inst, delay: delay}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(tctx, addr, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = client.Batch(ctx, []Request{
		{Op: OpGet, Name: "slow-block"}, // held by the server past the deadline
		{Op: OpCreate, Entry: wireEntry("late-entry")},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Batch = %v, want context.DeadlineExceeded", err)
	}

	// The server finishes processing the batch in the background; once it
	// has, the second operation must have been abandoned, not executed.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Abandoned() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Abandoned() == 0 {
		t.Fatal("server never abandoned the post-deadline batch operation")
	}
	if inst.Contains(tctx, "late-entry") {
		t.Error("server executed a batch operation after the propagated deadline passed")
	}
	// The connection survived the abandoned batch.
	if _, err := client.Create(tctx, wireEntry("after-batch")); err != nil {
		t.Errorf("call after abandoned batch: %v", err)
	}
}

// TestTransportErrorsWrapUnavailable asserts transport-level failures carry
// the registry.ErrUnavailable sentinel (surfaced by core as
// ErrSiteUnreachable), so callers can tell a dead site from a missing entry.
func TestTransportErrorsWrapUnavailable(t *testing.T) {
	srv, client := startTestServer(t, 0)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := client.Get(tctx, "anything")
	if !errors.Is(err, registry.ErrUnavailable) {
		t.Errorf("call against a closed server = %v, want registry.ErrUnavailable", err)
	}
	client.Close()
	if _, err := client.Get(tctx, "anything"); !errors.Is(err, registry.ErrUnavailable) {
		t.Errorf("call on closed client = %v, want registry.ErrUnavailable", err)
	}
	if _, err := Dial(tctx, "127.0.0.1:1", WithTimeout(200*time.Millisecond)); !errors.Is(err, registry.ErrUnavailable) {
		t.Errorf("dial to closed port = %v, want registry.ErrUnavailable", err)
	}
}

// TestDeadlineErrorRoundTripsWire exercises the full client path: a deadline
// that expires server-side must come back to a *later* caller as a decodable
// sentinel. (The canonical case — the waiting caller — is covered above; here
// the error frame itself is inspected via a fresh per-op deadline.)
func TestDeadlineErrorRoundTripsWire(t *testing.T) {
	const delay = 300 * time.Millisecond
	client := startSlowServer(t, delay, WithPoolSize(1))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := client.Get(ctx, "slow-timeout")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Get with short deadline = %v, want context.DeadlineExceeded", err)
	}
	// The client remains usable for deadline-free calls.
	if err := client.Ping(tctx); err != nil {
		t.Errorf("Ping after deadline-exceeded call: %v", err)
	}
}

// TestCoreFabricOverRPCWithDeadlines mirrors the end-to-end wiring test with
// per-operation deadlines in place, proving the ctx flows through
// registry.API proxies transparently.
func TestCoreFabricOverRPCWithDeadlines(t *testing.T) {
	inst := registry.NewInstance(4, memcache.New(memcache.Config{}))
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(tctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	var api registry.API = client

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		name := fmt.Sprintf("deadline-ok-%d", i)
		if _, err := api.Create(ctx, registry.NewEntry(name, 1, "t", registry.Location{Site: cloud.SiteID(4)})); err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		if _, err := api.Get(ctx, name); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		cancel()
	}
	if api.Len(tctx) != 5 {
		t.Errorf("Len = %d, want 5", api.Len(tctx))
	}
}
