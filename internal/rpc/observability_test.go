package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/memcache"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// TestMetricsEndpointUnderRPCLoad composes the same stack cmd/metaserver
// serves behind -metrics-addr — an instrumented cache, a registry instance,
// an instrumented rpc server and the metrics HTTP handler — drives it with
// concurrent instrumented clients, and asserts that the exported Prometheus
// and JSON metrics include the instrumented series and only ever move
// forward. This is the acceptance test for the live-observability endpoint.
func TestMetricsEndpointUnderRPCLoad(t *testing.T) {
	reg := metrics.NewRegistry()
	cache := memcache.New(memcache.Config{Metrics: reg})
	inst := registry.NewInstance(cloud.SiteID(1), cache)
	srv := NewServer(inst, nil, WithServerMetrics(reg))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	web := httptest.NewServer(metrics.Handler(reg))
	defer web.Close()

	scrapeCounter := func(name string) int64 {
		t.Helper()
		body := httpGet(t, web.URL+"/metrics")
		m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("series %s missing from scrape:\n%s", name, body)
		}
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	before := scrapeCounter("rpc_server_dispatched_total")

	ctx := context.Background()
	const clients, perClient = 4, 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(ctx, addr, WithMetrics(reg))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			ops := make([]Request, 0, perClient)
			for i := 0; i < perClient; i++ {
				name := fmt.Sprintf("obs/c%d/f%d", c, i)
				if _, err := cl.Put(ctx, registry.NewEntry(name, 1024, "t", registry.Location{Site: 1})); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				ops = append(ops, Request{Op: OpGet, Name: name})
			}
			if _, err := cl.Batch(ctx, ops); err != nil {
				t.Errorf("batch: %v", err)
			}
			// A miss, to move the per-code error counters.
			if _, err := cl.Get(ctx, fmt.Sprintf("obs/c%d/missing", c)); err == nil {
				t.Error("get of missing entry succeeded")
			}
		}(c)
	}
	wg.Wait()

	after := scrapeCounter("rpc_server_dispatched_total")
	wantOps := int64(clients * (perClient*2 + 1)) // puts + batched gets + one miss
	if after-before < wantOps {
		t.Errorf("dispatched moved %d -> %d, want growth >= %d", before, after, wantOps)
	}
	if got := scrapeCounter("rpc_server_errors_not_found_total"); got < int64(clients) {
		t.Errorf("not-found errors = %d, want >= %d", got, clients)
	}
	// Client round trips: one per put, one per batch (N ops, one frame),
	// one per miss, plus the dial handshake.
	if wantCalls := int64(clients * (perClient + 3)); scrapeCounter("rpc_client_calls_total") < wantCalls-int64(clients) {
		t.Errorf("client calls = %d, want >= %d", scrapeCounter("rpc_client_calls_total"), wantCalls-int64(clients))
	}
	if got := scrapeCounter("rpc_client_dials_total"); got < int64(clients) {
		t.Errorf("dials = %d, want >= %d", got, clients)
	}
	if got := scrapeCounter("memcache_items"); got != int64(clients*perClient) {
		t.Errorf("memcache_items = %d, want %d", got, clients*perClient)
	}

	// Monotonicity across repeated scrapes of an idle system.
	if again := scrapeCounter("rpc_server_dispatched_total"); again < after {
		t.Errorf("dispatched went backwards: %d -> %d", after, again)
	}

	// The JSON snapshot must carry the batch-size histogram and the in-flight
	// gauge must be back to zero with every client done.
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/metrics.json")), &snap); err != nil {
		t.Fatal(err)
	}
	h, ok := snap.Histograms["rpc_client_batch_ops"]
	if !ok || h.Count != clients {
		t.Errorf("batch histogram = %+v, want %d batches", h, clients)
	}
	if h.Max != perClient {
		t.Errorf("batch max = %d, want %d", h.Max, perClient)
	}
	if got := snap.Gauges["rpc_client_inflight"]; got != 0 {
		t.Errorf("inflight = %d with all clients closed, want 0", got)
	}

	// And the trace ring must have seen the RPC ops.
	var events []metrics.TraceEvent
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/trace.json?n=32")), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events after RPC load")
	}
}

// TestClientRetiredOnCancelCounter verifies the retired-on-cancel counter:
// a call whose context is cancelled mid-flight counts as retired, not just
// errored.
func TestClientRetiredOnCancelCounter(t *testing.T) {
	reg := metrics.NewRegistry()
	slow := memcache.New(memcache.Config{ServiceTime: 200 * time.Millisecond, Concurrency: 1})
	inst := registry.NewInstance(cloud.SiteID(1), slow)
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(context.Background(), addr, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cl.Get(ctx, "never"); err == nil {
		t.Fatal("expected the deadline to cut the call short")
	}
	if got := reg.Counter("rpc_client_retired_total").Value(); got != 1 {
		t.Fatalf("retired = %d, want 1", got)
	}
	if got := reg.Counter("rpc_client_errors_total").Value(); got < 1 {
		t.Fatalf("errors = %d, want >= 1", got)
	}
}

// TestClientSuppressedErrorCounter asserts the best-effort operations
// (Contains, Names, Len) count the transport errors they swallow, so a site
// silently degrading to "absent / empty / zero" answers is observable.
func TestClientSuppressedErrorCounter(t *testing.T) {
	reg := metrics.NewRegistry()
	inst := registry.NewInstance(cloud.SiteID(1), memcache.New(memcache.Config{}))
	srv := NewServer(inst, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	cl, err := Dial(ctx, addr, WithMetrics(reg), WithTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Create(ctx, registry.NewEntry("seed", 1, "t", registry.Location{Site: 1})); err != nil {
		t.Fatal(err)
	}
	suppressed := reg.Counter("rpc_client_suppressed_errors_total")

	// Healthy server: best-effort ops answer truthfully and swallow nothing.
	if !cl.Contains(ctx, "seed") || len(cl.Names(ctx)) != 1 || cl.Len(ctx) != 1 {
		t.Fatal("best-effort ops gave wrong answers against a healthy server")
	}
	if got := suppressed.Value(); got != 0 {
		t.Fatalf("suppressed = %d against a healthy server, want 0", got)
	}

	// Dead server: the same calls degrade to absent/empty/zero — and each
	// swallowed failure is counted.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if cl.Contains(ctx, "seed") {
		t.Fatal("Contains should read absent once the server is gone")
	}
	if names := cl.Names(ctx); names != nil {
		t.Fatalf("Names should be empty once the server is gone, got %v", names)
	}
	if n := cl.Len(ctx); n != 0 {
		t.Fatalf("Len should be 0 once the server is gone, got %d", n)
	}
	if got := suppressed.Value(); got != 3 {
		t.Fatalf("suppressed = %d after three degraded best-effort calls, want 3", got)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
