package registry

import (
	"context"
	"errors"
	"fmt"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/feed"
	"geomds/internal/memcache"
	"geomds/internal/store"
)

// Store is the subset of the cache-tier API the registry relies on. Both
// *memcache.Cache and *memcache.HACache satisfy it, so an instance can run on
// a plain cache or on the highly-available primary/replica pair.
type Store interface {
	Get(key string) (memcache.Item, error)
	Put(key string, value []byte, ttl time.Duration) (memcache.Item, error)
	CAS(key string, value []byte, ttl time.Duration, expectedVersion uint64) (memcache.Item, error)
	Delete(key string) error
	Contains(key string) bool
	Keys() []string
	Snapshot() []memcache.Item
	Len() int
	Stats() memcache.Stats
	// GetBatch, PutBatch and DeleteBatch are the bulk paths used by the
	// synchronization agent and lazy propagation; they are far cheaper per
	// item than the individual operations.
	GetBatch(keys []string) (found []memcache.Item, missing []string, err error)
	PutBatch(kvs []memcache.KV) ([]memcache.Item, error)
	DeleteBatch(keys []string) (int, error)
}

// Statically assert that both cache flavours implement Store.
var (
	_ Store = (*memcache.Cache)(nil)
	_ Store = (*memcache.HACache)(nil)
)

// Instance is one Metadata Registry instance: the registry deployed in a
// single datacenter. The multi-site strategies (internal/core) compose one or
// more instances; the Cache Manager role of the paper — translating registry
// operations into cache operations — lives here.
//
// An Instance is safe for concurrent use.
type Instance struct {
	site  cloud.SiteID
	store Store
	codec Codec
	// maxCASRetries bounds optimistic-concurrency retries on updates.
	maxCASRetries int
	// durable is the persistence layer when WithStorage wrapped the store;
	// nil for memory-only instances. storageErr records a failed storage
	// open so constructors can surface it.
	durable    *store.Durable
	storageErr error
	// Change-feed state (see feed.go): wantFeed/feedOpts record a
	// WithChangeFeed option until the constructor materializes feedLog.
	wantFeed bool
	feedOpts []feed.LogOption
	feedLog  *feed.Log
}

// InstanceOption configures an Instance.
type InstanceOption func(*Instance)

// WithCodec selects the serialization codec (default GobCodec).
func WithCodec(c Codec) InstanceOption {
	return func(i *Instance) { i.codec = c }
}

// WithCASRetries sets the maximum number of optimistic-concurrency retries
// performed by Update (default 8).
func WithCASRetries(n int) InstanceOption {
	return func(i *Instance) {
		if n > 0 {
			i.maxCASRetries = n
		}
	}
}

// NewInstance returns a registry instance for the given site backed by the
// given store. It panics if a WithStorage option failed to open its
// directory — construction cannot half-succeed; use OpenInstance to handle
// the error instead.
func NewInstance(site cloud.SiteID, store Store, opts ...InstanceOption) *Instance {
	inst := &Instance{site: site, store: store, codec: GobCodec{}, maxCASRetries: 8}
	for _, o := range opts {
		o(inst)
	}
	if inst.storageErr != nil {
		panic(inst.storageErr)
	}
	inst.finishFeed()
	return inst
}

// Site returns the datacenter this instance serves.
func (i *Instance) Site() cloud.SiteID { return i.site }

// Store exposes the underlying cache store (used by the synchronization
// agent and by tests).
func (i *Instance) Store() Store { return i.store }

// Len returns the number of entries held by this instance.
func (i *Instance) Len(ctx context.Context) int {
	if ctx.Err() != nil {
		return 0
	}
	return i.store.Len()
}

// Create publishes a new entry. The paper defines a write as a look-up (to
// verify the entry does not already exist) followed by the actual write; the
// cache tier's optimistic concurrency lets the instance collapse both into a
// single conditional store — a CAS with "must not exist" semantics — so a
// create costs one cache operation and fails with ErrExists if the name is
// taken.
func (i *Instance) Create(ctx context.Context, e Entry) (Entry, error) {
	if err := ctx.Err(); err != nil {
		return Entry{}, fmt.Errorf("create %q: %w", e.Name, err)
	}
	if err := e.Validate(); err != nil {
		return Entry{}, err
	}
	data, err := i.codec.Encode(e)
	if err != nil {
		return Entry{}, err
	}
	it, err := i.store.CAS(e.Name, data, 0, 0)
	if err != nil {
		if errors.Is(err, memcache.ErrVersionConflict) {
			return Entry{}, fmt.Errorf("create %q: %w", e.Name, ErrExists)
		}
		return Entry{}, fmt.Errorf("create %q: %w", e.Name, err)
	}
	e.Version = it.Version
	return e, nil
}

// Put stores the entry unconditionally (upsert). The synchronization agent
// and the lazy-propagation path use it to apply remote updates.
func (i *Instance) Put(ctx context.Context, e Entry) (Entry, error) {
	if err := ctx.Err(); err != nil {
		return Entry{}, fmt.Errorf("put %q: %w", e.Name, err)
	}
	if err := e.Validate(); err != nil {
		return Entry{}, err
	}
	data, err := i.codec.Encode(e)
	if err != nil {
		return Entry{}, err
	}
	it, err := i.store.Put(e.Name, data, 0)
	if err != nil {
		return Entry{}, fmt.Errorf("put %q: %w", e.Name, err)
	}
	e.Version = it.Version
	return e, nil
}

// Get returns the entry stored under name.
func (i *Instance) Get(ctx context.Context, name string) (Entry, error) {
	if err := ctx.Err(); err != nil {
		return Entry{}, fmt.Errorf("get %q: %w", name, err)
	}
	it, err := i.store.Get(name)
	if err != nil {
		if errors.Is(err, memcache.ErrNotFound) {
			return Entry{}, fmt.Errorf("get %q: %w", name, ErrNotFound)
		}
		return Entry{}, fmt.Errorf("get %q: %w", name, err)
	}
	e, err := i.codec.Decode(it.Value)
	if err != nil {
		return Entry{}, err
	}
	e.Version = it.Version
	return e, nil
}

// Contains reports whether an entry with the given name exists.
func (i *Instance) Contains(ctx context.Context, name string) bool {
	if ctx.Err() != nil {
		return false
	}
	return i.store.Contains(name)
}

// Update applies mutate to the current value of the entry and stores the
// result using optimistic concurrency, retrying on conflicts up to the
// configured limit. The entry must exist.
func (i *Instance) Update(ctx context.Context, name string, mutate func(Entry) Entry) (Entry, error) {
	for attempt := 0; attempt < i.maxCASRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return Entry{}, fmt.Errorf("update %q: %w", name, err)
		}
		it, err := i.store.Get(name)
		if err != nil {
			if errors.Is(err, memcache.ErrNotFound) {
				return Entry{}, fmt.Errorf("update %q: %w", name, ErrNotFound)
			}
			return Entry{}, fmt.Errorf("update %q: %w", name, err)
		}
		cur, err := i.codec.Decode(it.Value)
		if err != nil {
			return Entry{}, err
		}
		cur.Version = it.Version
		next := mutate(cur)
		next.Name = name // the key is immutable
		if err := next.Validate(); err != nil {
			return Entry{}, err
		}
		data, err := i.codec.Encode(next)
		if err != nil {
			return Entry{}, err
		}
		stored, err := i.store.CAS(name, data, 0, it.Version)
		if err == nil {
			next.Version = stored.Version
			return next, nil
		}
		if !errors.Is(err, memcache.ErrVersionConflict) {
			return Entry{}, fmt.Errorf("update %q: %w", name, err)
		}
		// Lost the race: reload and retry.
	}
	return Entry{}, fmt.Errorf("update %q: too many retries: %w", name, ErrConflict)
}

// AddLocation records an additional copy of the file named name.
func (i *Instance) AddLocation(ctx context.Context, name string, loc Location) (Entry, error) {
	return i.Update(ctx, name, func(e Entry) Entry { return e.AddLocation(loc) })
}

// Delete removes the entry stored under name.
func (i *Instance) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("delete %q: %w", name, err)
	}
	if err := i.store.Delete(name); err != nil {
		if errors.Is(err, memcache.ErrNotFound) {
			return fmt.Errorf("delete %q: %w", name, ErrNotFound)
		}
		return fmt.Errorf("delete %q: %w", name, err)
	}
	return nil
}

// Names returns the names of all entries held by this instance.
func (i *Instance) Names(ctx context.Context) []string {
	if ctx.Err() != nil {
		return nil
	}
	return i.store.Keys()
}

// Entries decodes and returns every entry held by this instance. The
// synchronization agent uses it to pull an instance's content.
func (i *Instance) Entries(ctx context.Context) ([]Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("entries: %w", err)
	}
	items := i.store.Snapshot()
	out := make([]Entry, 0, len(items))
	for _, it := range items {
		e, err := i.codec.Decode(it.Value)
		if err != nil {
			return nil, fmt.Errorf("entries: decoding %q: %w", it.Key, err)
		}
		e.Version = it.Version
		out = append(out, e)
	}
	return out, nil
}

// GetMany returns the entries stored under the given names, silently
// skipping absent ones. It uses the store's bulk path, so it is the
// preferred way for the synchronization agent to pull a round's updates.
func (i *Instance) GetMany(ctx context.Context, names []string) ([]Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("get-many: %w", err)
	}
	items, _, err := i.store.GetBatch(names)
	if err != nil {
		return nil, fmt.Errorf("get-many: %w", err)
	}
	out := make([]Entry, 0, len(items))
	for _, it := range items {
		e, err := i.codec.Decode(it.Value)
		if err != nil {
			return nil, fmt.Errorf("get-many: decoding %q: %w", it.Key, err)
		}
		e.Version = it.Version
		out = append(out, e)
	}
	return out, nil
}

// PutMany upserts the whole batch through the store's bulk path (one write
// batch), returning the stored entries with their new versions in input
// order. It is the write half of the batch API the synchronization agents
// and the RPC transport forward as single frames.
func (i *Instance) PutMany(ctx context.Context, entries []Entry) ([]Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("put-many: %w", err)
	}
	if len(entries) == 0 {
		return nil, nil
	}
	kvs := make([]memcache.KV, 0, len(entries))
	for _, e := range entries {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		data, err := i.codec.Encode(e)
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, memcache.KV{Key: e.Name, Value: data})
	}
	items, err := i.store.PutBatch(kvs)
	if err != nil {
		return nil, fmt.Errorf("put-many: %w", err)
	}
	out := append([]Entry(nil), entries...)
	for idx := range out {
		if idx < len(items) {
			out[idx].Version = items[idx].Version
		}
	}
	return out, nil
}

// DeleteMany removes the named entries through the store's bulk path,
// returning how many of them were present. Names that are absent are
// silently skipped: bulk deletes propagate deletions that already succeeded
// at their origin site, so "already gone" is success.
func (i *Instance) DeleteMany(ctx context.Context, names []string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("delete-many: %w", err)
	}
	if len(names) == 0 {
		return 0, nil
	}
	n, err := i.store.DeleteBatch(names)
	if err != nil {
		return 0, fmt.Errorf("delete-many: %w", err)
	}
	return n, nil
}

// Merge upserts every entry of the batch whose content differs from what the
// instance already holds, returning the number of entries applied. It is the
// apply side of the synchronization agent and of lazy propagation: last
// writer wins, location lists are unioned. Merge uses the store's bulk path
// (one read batch, one write batch).
func (i *Instance) Merge(ctx context.Context, entries []Entry) (applied int, err error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("merge: %w", err)
	}
	if len(entries) == 0 {
		return 0, nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if err := e.Validate(); err != nil {
			return 0, err
		}
		names = append(names, e.Name)
	}
	items, _, err := i.store.GetBatch(names)
	if err != nil {
		return 0, fmt.Errorf("merge: %w", err)
	}
	current := make(map[string]Entry, len(items))
	for _, it := range items {
		cur, err := i.codec.Decode(it.Value)
		if err != nil {
			return 0, fmt.Errorf("merge: decoding %q: %w", it.Key, err)
		}
		current[it.Key] = cur
	}

	var batch []memcache.KV
	for _, e := range entries {
		cur, exists := current[e.Name]
		var next Entry
		switch {
		case !exists:
			next = e
		default:
			next = cur
			for _, loc := range e.Locations {
				next = next.AddLocation(loc)
			}
			if next.Size != e.Size && e.Size > 0 {
				next.Size = e.Size
			}
			if next.Equal(cur) {
				continue // nothing new
			}
		}
		data, err := i.codec.Encode(next)
		if err != nil {
			return applied, err
		}
		batch = append(batch, memcache.KV{Key: e.Name, Value: data})
		current[e.Name] = next // later duplicates in the batch merge onto this
		applied++
	}
	if len(batch) == 0 {
		return 0, nil
	}
	if _, err := i.store.PutBatch(batch); err != nil {
		return 0, fmt.Errorf("merge: %w", err)
	}
	return applied, nil
}
