package registry

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"geomds/internal/cloud"
)

func sampleEntry() Entry {
	return Entry{
		Name:      "montage/projected_001.fits",
		Size:      190 << 10,
		Producer:  "mProject-001",
		Locations: []Location{{Site: 1, Node: 3, Path: "/data/projected_001.fits"}},
		Created:   time.Date(2015, 9, 8, 12, 0, 0, 0, time.UTC),
	}
}

func TestEntryValidate(t *testing.T) {
	if err := sampleEntry().Validate(); err != nil {
		t.Errorf("valid entry rejected: %v", err)
	}
	noName := sampleEntry()
	noName.Name = ""
	if err := noName.Validate(); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("empty name = %v, want ErrInvalidEntry", err)
	}
	negSize := sampleEntry()
	negSize.Size = -1
	if err := negSize.Validate(); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("negative size = %v, want ErrInvalidEntry", err)
	}
	dup := sampleEntry()
	dup.Locations = append(dup.Locations, dup.Locations[0])
	if err := dup.Validate(); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("duplicate location = %v, want ErrInvalidEntry", err)
	}
}

func TestNewEntry(t *testing.T) {
	loc := Location{Site: 2, Node: 7}
	e := NewEntry("f.dat", 1024, "task-1", loc)
	if err := e.Validate(); err != nil {
		t.Fatalf("NewEntry produced invalid entry: %v", err)
	}
	if !e.HasLocation(loc) {
		t.Error("NewEntry should record the initial location")
	}
	if e.Created.IsZero() {
		t.Error("NewEntry should stamp creation time")
	}
}

func TestAddLocationIsImmutable(t *testing.T) {
	e := sampleEntry()
	loc := Location{Site: 3, Node: 9}
	e2 := e.AddLocation(loc)
	if e.HasLocation(loc) {
		t.Error("AddLocation modified the receiver")
	}
	if !e2.HasLocation(loc) {
		t.Error("AddLocation did not add the location")
	}
	// Adding an existing location is a no-op.
	e3 := e2.AddLocation(loc)
	if len(e3.Locations) != len(e2.Locations) {
		t.Error("duplicate AddLocation should not grow the list")
	}
}

func TestSitesWithCopy(t *testing.T) {
	e := sampleEntry()
	e = e.AddLocation(Location{Site: 3, Node: 1})
	e = e.AddLocation(Location{Site: 1, Node: 5}) // same site, other node
	sites := e.SitesWithCopy()
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 3 {
		t.Errorf("SitesWithCopy = %v, want [1 3]", sites)
	}
}

func TestNearestCopy(t *testing.T) {
	topo := cloud.Azure4DC()
	weu, _ := topo.SiteByName(cloud.SiteWestEU)
	neu, _ := topo.SiteByName(cloud.SiteNorthEU)
	scus, _ := topo.SiteByName(cloud.SiteSouthCentralUS)

	e := Entry{Name: "f", Locations: []Location{
		{Site: scus.ID, Node: 1},
		{Site: neu.ID, Node: 2},
	}}
	got, ok := e.NearestCopy(topo, weu.ID)
	if !ok || got.Site != neu.ID {
		t.Errorf("NearestCopy from WEU = %+v, want North Europe copy", got)
	}
	// A local copy always wins.
	e = e.AddLocation(Location{Site: weu.ID, Node: 3})
	got, _ = e.NearestCopy(topo, weu.ID)
	if got.Site != weu.ID {
		t.Errorf("NearestCopy with local copy = %+v, want local", got)
	}
	var empty Entry
	if _, ok := empty.NearestCopy(topo, weu.ID); ok {
		t.Error("NearestCopy on empty entry should report !ok")
	}
}

func TestEntryEqual(t *testing.T) {
	a := sampleEntry()
	b := sampleEntry()
	if !a.Equal(b) {
		t.Error("identical entries should be equal")
	}
	b.Version = 42
	if !a.Equal(b) {
		t.Error("Equal should ignore Version")
	}
	c := sampleEntry()
	c.Size = 1
	if a.Equal(c) {
		t.Error("entries with different sizes should differ")
	}
	d := sampleEntry()
	d.Locations = append(d.Locations, Location{Site: 9})
	if a.Equal(d) {
		t.Error("entries with different locations should differ")
	}
}

func TestGobCodecRoundTrip(t *testing.T) {
	testCodecRoundTrip(t, GobCodec{})
}

func TestJSONCodecRoundTrip(t *testing.T) {
	testCodecRoundTrip(t, JSONCodec{})
}

func testCodecRoundTrip(t *testing.T, c Codec) {
	t.Helper()
	e := sampleEntry()
	data, err := c.Encode(e)
	if err != nil {
		t.Fatalf("%s encode: %v", c.Name(), err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatalf("%s decode: %v", c.Name(), err)
	}
	if !got.Equal(e) {
		t.Errorf("%s round trip mismatch:\n got %+v\nwant %+v", c.Name(), got, e)
	}
}

func TestCodecDecodeGarbage(t *testing.T) {
	if _, err := (GobCodec{}).Decode([]byte("not gob")); err == nil {
		t.Error("gob decode of garbage should fail")
	}
	if _, err := (JSONCodec{}).Decode([]byte("{invalid")); err == nil {
		t.Error("json decode of garbage should fail")
	}
}

func TestCodecNames(t *testing.T) {
	if (GobCodec{}).Name() != "gob" || (JSONCodec{}).Name() != "json" {
		t.Error("codec names changed")
	}
}

// Property: both codecs round-trip arbitrary (valid) entries.
func TestCodecRoundTripProperty(t *testing.T) {
	codecs := []Codec{GobCodec{}, JSONCodec{}}
	f := func(name string, size uint32, producer string, site, node uint8) bool {
		if name == "" {
			return true
		}
		e := Entry{
			Name:      name,
			Size:      int64(size),
			Producer:  producer,
			Locations: []Location{{Site: cloud.SiteID(site % 4), Node: cloud.NodeID(node)}},
			Created:   time.Unix(1441713600, 0).UTC(),
		}
		for _, c := range codecs {
			data, err := c.Encode(e)
			if err != nil {
				return false
			}
			got, err := c.Decode(data)
			if err != nil || !got.Equal(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: AddLocation is idempotent and never removes locations.
func TestAddLocationProperty(t *testing.T) {
	f := func(sites []uint8) bool {
		e := sampleEntry()
		for _, s := range sites {
			loc := Location{Site: cloud.SiteID(s % 8), Node: cloud.NodeID(s)}
			before := len(e.Locations)
			e = e.AddLocation(loc)
			if len(e.Locations) < before || !e.HasLocation(loc) {
				return false
			}
			again := e.AddLocation(loc)
			if len(again.Locations) != len(e.Locations) {
				return false
			}
		}
		return e.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
