package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
)

// gateShard wraps a shard so tests can hold selected Gets open: while block
// is set, a Get parks until release is closed or its context ends, recording
// which way it left. Everything else passes through.
type gateShard struct {
	API
	block     atomic.Bool
	entered   chan struct{} // one token per Get that parked at the gate
	release   chan struct{}
	cancelled atomic.Int64 // parked Gets whose context ended first
	gets      atomic.Int64
}

func newGateShard(inner API) *gateShard {
	return &gateShard{API: inner, entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gateShard) Get(ctx context.Context, name string) (Entry, error) {
	if name == probeKey {
		return g.API.Get(ctx, name)
	}
	g.gets.Add(1)
	if g.block.Load() {
		select {
		case g.entered <- struct{}{}:
		default:
		}
		select {
		case <-g.release:
		case <-ctx.Done():
			g.cancelled.Add(1)
			return Entry{}, ctx.Err()
		}
	}
	return g.API.Get(ctx, name)
}

// newHedgeRouter builds a replicated tier of gate-wrapped shards with
// hedging armed at a fixed threshold and its own metrics registry, and
// resolves one key's primary and hedge-target gates.
func newHedgeRouter(t *testing.T, n int, threshold time.Duration, opts ...RouterOption) (*Router, *metrics.Registry, map[cloud.SiteID]*gateShard) {
	t.Helper()
	reg := metrics.NewRegistry()
	gates := make(map[cloud.SiteID]*gateShard, n)
	apis := make([]API, n)
	for i := range apis {
		g := newGateShard(newShard(7))
		gates[cloud.SiteID(i)] = g
		apis[i] = g
	}
	opts = append([]RouterOption{
		WithRouterReplication(2),
		WithRouterMetrics(reg),
		// A slow prober: shards a test marks down stay down for its whole
		// duration instead of being revived mid-assertion.
		WithRouterHealth(2, time.Minute),
		WithRouterHedgedReads(threshold, threshold),
	}, opts...)
	r, err := NewRouter(7, apis, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, reg, gates
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRouterHedgeWinsCancelsPrimary(t *testing.T) {
	ctx := context.Background()
	r, reg, gates := newHedgeRouter(t, 3, time.Millisecond)

	const name = "tail/hedge-wins"
	refs, err := r.replicaSet(name)
	if err != nil {
		t.Fatal(err)
	}
	primary, hedgeTarget := gates[refs[0].id], gates[refs[1].id]
	if _, err := r.Put(ctx, testEntry(name)); err != nil {
		t.Fatal(err)
	}

	primary.block.Store(true)
	start := time.Now()
	e, err := r.Get(ctx, name)
	if err != nil {
		t.Fatalf("hedged Get: %v", err)
	}
	if e.Name != name {
		t.Fatalf("hedged Get returned %q", e.Name)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged Get waited out the blocked primary (%v)", elapsed)
	}
	if got := reg.Counter("router_hedged_reads_total").Value(); got != 1 {
		t.Fatalf("router_hedged_reads_total = %d, want 1", got)
	}
	if got := reg.Counter("router_hedge_wins_total").Value(); got != 1 {
		t.Fatalf("router_hedge_wins_total = %d, want 1", got)
	}
	if hedgeTarget.gets.Load() == 0 {
		t.Fatal("hedge target never saw the read")
	}
	// The losing primary leg must have been cancelled, not left dangling.
	eventually(t, "primary leg cancellation", func() bool { return primary.cancelled.Load() == 1 })
}

func TestRouterPrimaryWinsCancelsHedge(t *testing.T) {
	ctx := context.Background()
	// Threshold 1ns: the hedge fires essentially immediately, then loses to
	// the primary because the hedge target is gated shut.
	r, reg, gates := newHedgeRouter(t, 3, time.Nanosecond)

	const name = "tail/primary-wins"
	refs, err := r.replicaSet(name)
	if err != nil {
		t.Fatal(err)
	}
	primary, hedgeTarget := gates[refs[0].id], gates[refs[1].id]
	if _, err := r.Put(ctx, testEntry(name)); err != nil {
		t.Fatal(err)
	}

	hedgeTarget.block.Store(true)
	e, err := r.Get(ctx, name)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if e.Name != name {
		t.Fatalf("Get returned %q", e.Name)
	}
	if got := reg.Counter("router_hedge_wins_total").Value(); got != 0 {
		t.Fatalf("router_hedge_wins_total = %d, want 0 (primary answered)", got)
	}
	if primary.cancelled.Load() != 0 {
		t.Fatal("winning primary leg was cancelled")
	}
	// The losing hedge leg must be cancelled once the primary answers.
	eventually(t, "hedge leg cancellation", func() bool { return hedgeTarget.cancelled.Load() == 1 })
}

func TestRouterHedgeNeverFiresAtBreakerOpenReplica(t *testing.T) {
	ctx := context.Background()
	r, reg, gates := newHedgeRouter(t, 3, time.Millisecond)

	const name = "tail/skip-open-breaker"
	refs, err := r.replicaSet(name)
	if err != nil {
		t.Fatal(err)
	}
	primary, natural := gates[refs[0].id], gates[refs[1].id]

	// Open the natural hedge target's breaker, write (the entry lands on the
	// primary and the healthy substitute replica), then hold the primary
	// open past the threshold: the hedge must go to the substitute, never
	// the breaker-open shard.
	r.MarkShardDown(refs[1].id)
	if _, err := r.Put(ctx, testEntry(name)); err != nil {
		t.Fatal(err)
	}
	naturalGetsBefore := natural.gets.Load()
	primary.block.Store(true)
	defer close(primary.release)

	e, err := r.Get(ctx, name)
	if err != nil {
		t.Fatalf("Get with breaker-open natural replica: %v", err)
	}
	if e.Name != name {
		t.Fatalf("Get returned %q", e.Name)
	}
	if got := reg.Counter("router_hedged_reads_total").Value(); got != 1 {
		t.Fatalf("router_hedged_reads_total = %d, want 1", got)
	}
	if got := natural.gets.Load(); got != naturalGetsBefore {
		t.Fatalf("breaker-open replica received %d hedge read(s)", got-naturalGetsBefore)
	}
}

func TestRouterHedgeNeedsASecondHealthyReplica(t *testing.T) {
	ctx := context.Background()
	// Two shards at replication 2: with one down, every key's healthy
	// replica set is a single shard — there is nowhere to hedge.
	r, reg, gates := newHedgeRouter(t, 2, time.Millisecond)

	const name = "tail/no-healthy-hedge-target"
	refs, err := r.replicaSet(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put(ctx, testEntry(name)); err != nil {
		t.Fatal(err)
	}
	r.MarkShardDown(refs[1].id)

	// Delay (don't block) the primary so a buggy hedge would have time to
	// fire at the down shard.
	primary := gates[refs[0].id]
	primary.block.Store(true)
	go func() {
		<-primary.entered
		time.Sleep(5 * time.Millisecond)
		close(primary.release)
	}()

	e, err := r.Get(ctx, name)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if e.Name != name {
		t.Fatalf("Get returned %q", e.Name)
	}
	if got := reg.Counter("router_hedged_reads_total").Value(); got != 0 {
		t.Fatalf("router_hedged_reads_total = %d, want 0 with a lone healthy replica", got)
	}
}

func TestRouterHedgeNotFoundStaysAuthoritative(t *testing.T) {
	ctx := context.Background()
	r, reg, gates := newHedgeRouter(t, 3, time.Millisecond)

	const name = "tail/absent-everywhere"
	refs, err := r.replicaSet(name)
	if err != nil {
		t.Fatal(err)
	}
	primary := gates[refs[0].id]
	primary.block.Store(true)

	// The hedge replica answers "not found"; that answer is authoritative
	// and must be returned without waiting out the blocked primary.
	start := time.Now()
	_, err = r.Get(ctx, name)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("authoritative miss took %v", elapsed)
	}
	if got := reg.Counter("router_hedge_wins_total").Value(); got != 1 {
		t.Fatalf("router_hedge_wins_total = %d, want 1", got)
	}
	eventually(t, "primary leg cancellation", func() bool { return primary.cancelled.Load() == 1 })
}

// newCoalescingRouter builds a single-shard router with read coalescing over
// a gate-wrapped, call-counted shard.
func newCoalescingRouter(t *testing.T, inner API) (*Router, *metrics.Registry, *gateShard) {
	t.Helper()
	reg := metrics.NewRegistry()
	gate := newGateShard(inner)
	r, err := NewRouter(7, []API{gate}, WithRouterMetrics(reg), WithRouterReadCoalescing())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, reg, gate
}

func TestRouterCoalescesConcurrentGets(t *testing.T) {
	ctx := context.Background()
	const name = "tail/coalesce"
	inst := newShard(7)
	counting := newCountingShard(inst)
	r, reg, gate := newCoalescingRouter(t, counting)
	if _, err := r.Put(ctx, testEntry(name)); err != nil {
		t.Fatal(err)
	}
	baseline := counting.Calls("Get")

	gate.block.Store(true)
	const waiters = 16
	var (
		wg   sync.WaitGroup
		errs [waiters]error
		got  [waiters]Entry
	)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = r.Get(ctx, name)
		}(i)
	}
	<-gate.entered // the flight owner reached the shard
	// Joining increments the counter before blocking, so once it reads
	// waiters-1 every other caller is parked on the shared flight.
	coalescedC := reg.Counter("router_coalesced_reads_total")
	eventually(t, "every other caller to join the flight", func() bool {
		return coalescedC.Value() == waiters-1
	})
	close(gate.release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if got[i].Name != name {
			t.Fatalf("waiter %d got %q", i, got[i].Name)
		}
	}
	if calls := counting.Calls("Get") - baseline; calls != 1 {
		t.Fatalf("%d concurrent Gets issued %d downstream reads, want 1", waiters, calls)
	}
}

func TestRouterCoalescedErrorReachesEveryWaiter(t *testing.T) {
	ctx := context.Background()
	const name = "tail/coalesce-error"
	kill := &killableShard{API: newShard(7)}
	r, _, gate := newCoalescingRouter(t, kill)

	gate.block.Store(true)
	const waiters = 8
	var (
		wg   sync.WaitGroup
		errs [waiters]error
	)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Get(ctx, name)
		}(i)
	}
	<-gate.entered
	// Kill the shard while everyone is parked on the flight, then let the
	// downstream read proceed into the failure.
	kill.kill()
	close(gate.release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if !errors.Is(errs[i], ErrUnavailable) {
			t.Fatalf("waiter %d: %v, want ErrUnavailable fan-out", i, errs[i])
		}
	}
}

func TestRouterCoalescedCancellationDoesNotPoisonFlight(t *testing.T) {
	ctx := context.Background()
	const name = "tail/coalesce-cancel"
	inst := newShard(7)
	r, reg, gate := newCoalescingRouter(t, inst)
	if _, err := r.Put(ctx, testEntry(name)); err != nil {
		t.Fatal(err)
	}

	gate.block.Store(true)
	ownerDone := make(chan error, 1)
	go func() {
		_, err := r.Get(ctx, name)
		ownerDone <- err
	}()
	<-gate.entered

	joinCtx, joinCancel := context.WithCancel(context.Background())
	joinDone := make(chan error, 1)
	go func() {
		_, err := r.Get(joinCtx, name)
		joinDone <- err
	}()
	coalescedC := reg.Counter("router_coalesced_reads_total")
	eventually(t, "second caller to join the flight", func() bool { return coalescedC.Value() == 1 })

	// Cancel the joiner: it gets its own context error immediately while
	// the shared flight keeps running for the owner.
	joinCancel()
	if err := <-joinDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner got %v, want context.Canceled", err)
	}
	select {
	case err := <-ownerDone:
		t.Fatalf("flight owner returned early with %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(gate.release)
	if err := <-ownerDone; err != nil {
		t.Fatalf("flight owner: %v", err)
	}
	if gate.cancelled.Load() != 0 {
		t.Fatal("joiner cancellation leaked into the downstream read")
	}
}

func TestRouterCoalescedFlightCancelledWhenLastWaiterLeaves(t *testing.T) {
	const name = "tail/coalesce-abandon"
	inst := newShard(7)
	r, _, gate := newCoalescingRouter(t, inst)

	gate.block.Store(true)
	callCtx, callCancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Get(callCtx, name)
		done <- err
	}()
	<-gate.entered

	// The only caller gives up: the downstream read must be cancelled, not
	// left holding shard resources.
	callCancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller got %v, want context.Canceled", err)
	}
	eventually(t, "abandoned flight cancellation", func() bool { return gate.cancelled.Load() == 1 })

	// A fresh Get after the abandonment starts a new flight and succeeds.
	gate.block.Store(false)
	if _, err := r.Put(context.Background(), testEntry(name)); err != nil {
		t.Fatal(err)
	}
	e, err := r.Get(context.Background(), name)
	if err != nil || e.Name != name {
		t.Fatalf("fresh Get after abandonment: %v (%q)", err, e.Name)
	}
}

// TestRouterHedgedZipfianTierStaysConsistent drives a hedged + coalesced
// replicated tier from many goroutines hammering a tiny hot set (the
// skewed-workload shape the tail program targets) and checks every read
// returns the committed value. It doubles as the race-detector workout the
// nightly chaos loop runs.
func TestRouterHedgedZipfianTierStaysConsistent(t *testing.T) {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	apis := make([]API, 4)
	for i := range apis {
		apis[i] = newShard(7)
	}
	r, err := NewRouter(7, apis,
		WithRouterReplication(2),
		WithRouterMetrics(reg),
		WithRouterHedgedReads(50*time.Microsecond, time.Millisecond),
		WithRouterReadCoalescing(),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	const hotKeys = 8
	names := make([]string, hotKeys)
	for i := range names {
		names[i] = fmt.Sprintf("tail/hot/%d", i)
		if _, err := r.Put(ctx, testEntry(names[i])); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := names[(g+i)%hotKeys]
				e, gerr := r.Get(ctx, name)
				if gerr != nil {
					t.Errorf("goroutine %d: Get(%s): %v", g, name, gerr)
					return
				}
				if e.Name != name {
					t.Errorf("goroutine %d: Get(%s) returned %q", g, name, e.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
