package registry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/feed"
	"geomds/internal/memcache"
)

// collectFeed drains n events from the subscription, failing the test if the
// stream ends or stalls first.
func collectFeed(t *testing.T, sub *feed.Subscription, n int) []feed.Event {
	t.Helper()
	out := make([]feed.Event, 0, n)
	timeout := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("feed ended early (%v) after %d/%d events", sub.Err(), len(out), n)
			}
			out = append(out, ev)
		case <-timeout:
			t.Fatalf("timed out after %d/%d events: %+v", len(out), n, out)
		}
	}
	return out
}

func TestInstanceFeedPublishesCommittedMutations(t *testing.T) {
	ctx := context.Background()
	inst := NewInstance(3, memcache.New(memcache.Config{}), WithChangeFeed())
	defer inst.Close()
	log := inst.ChangeFeed()
	if log == nil {
		t.Fatal("ChangeFeed() = nil with WithChangeFeed")
	}
	sub, err := log.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if _, err := inst.Create(ctx, NewEntry("a", 1, "t", Location{Site: 3})); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.AddLocation(ctx, "a", Location{Site: 4}); err != nil {
		t.Fatal(err)
	}
	if err := inst.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	got := collectFeed(t, sub, 3)
	wantOps := []feed.Op{feed.OpPut, feed.OpPut, feed.OpDelete}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) || ev.Op != wantOps[i] || ev.Name != "a" {
			t.Fatalf("event %d = %+v, want seq %d op %v name a", i, ev, i+1, wantOps[i])
		}
	}
	// Put events carry the encoded entry: decodable with the instance codec.
	e, err := GobCodec{}.Decode(got[1].Value)
	if err != nil {
		t.Fatalf("decoding put event value: %v", err)
	}
	if len(e.Locations) != 2 {
		t.Fatalf("decoded entry has %d locations, want 2", len(e.Locations))
	}
}

func TestInstanceFeedSkipsNoopDeletes(t *testing.T) {
	ctx := context.Background()
	inst := NewInstance(3, memcache.New(memcache.Config{}), WithChangeFeed())
	defer inst.Close()
	sub, err := inst.ChangeFeed().Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Deleting names that do not exist must publish nothing: a replication
	// consumer applying deletes everywhere would otherwise echo them forever.
	if _, err := inst.DeleteMany(ctx, []string{"ghost1", "ghost2"}); err != nil {
		t.Fatal(err)
	}
	if err := inst.Delete(ctx, "ghost3"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete absent: %v", err)
	}
	if _, err := inst.Create(ctx, NewEntry("real", 1, "t", Location{Site: 3})); err != nil {
		t.Fatal(err)
	}
	got := collectFeed(t, sub, 1)
	if got[0].Op != feed.OpPut || got[0].Name != "real" {
		t.Fatalf("first event = %+v, want the put of %q", got[0], "real")
	}
}

func TestDurableFeedResumeTokensSurviveRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	inst, err := OpenInstance(3, memcache.New(memcache.Config{}), dir, nil, WithChangeFeed())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := inst.ChangeFeed().Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := inst.Create(ctx, NewEntry(fmt.Sprintf("k%d", i), 1, "t", Location{Site: 3})); err != nil {
			t.Fatal(err)
		}
	}
	got := collectFeed(t, sub, 4)
	cursor := got[1].Seq // a consumer that stopped after the second event
	if walSeq, ok := inst.DurableSeq(); !ok || got[3].Seq != walSeq {
		t.Fatalf("feed head %d, WAL seq %d ok=%v — events must ride the WAL sequence", got[3].Seq, walSeq, ok)
	}
	sub.Close()
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart. The feed's floor is the recovered WAL position: the stored
	// state is durable but the event window is gone, so a pre-restart cursor
	// is compacted and must take the snapshot fallback rather than silently
	// missing k2 and k3.
	inst2, err := OpenInstance(3, memcache.New(memcache.Config{}), dir, nil, WithChangeFeed())
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	if _, err := inst2.ChangeFeed().Subscribe(cursor); !errors.Is(err, feed.ErrCompacted) {
		t.Fatalf("pre-restart cursor: err = %v, want ErrCompacted", err)
	}
	events, head, err := inst2.FeedSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if walSeq, _ := inst2.DurableSeq(); head != walSeq {
		t.Fatalf("snapshot head = %d, want recovered WAL seq %d", head, walSeq)
	}
	if len(events) != 4 {
		t.Fatalf("snapshot carries %d events, want the 4 recovered entries", len(events))
	}
	// Tailing from the snapshot head picks up exactly the post-restart
	// mutations, under continuing WAL sequence numbers.
	tail, err := inst2.ChangeFeed().Subscribe(head)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, err := inst2.Create(ctx, NewEntry("k4", 1, "t", Location{Site: 3})); err != nil {
		t.Fatal(err)
	}
	next := collectFeed(t, tail, 1)
	if next[0].Seq != head+1 || next[0].Name != "k4" {
		t.Fatalf("post-restart event = %+v, want k4 at seq %d", next[0], head+1)
	}
}

// newFeedRouter is newTestRouter with change feeds on every shard.
func newFeedRouter(t *testing.T, n int, opts ...RouterOption) (*Router, map[cloud.SiteID]*Instance) {
	t.Helper()
	insts := make([]*Instance, n)
	apis := make([]API, n)
	for i := range insts {
		insts[i] = NewInstance(7, memcache.New(memcache.Config{}), WithChangeFeed())
		apis[i] = insts[i]
	}
	r, err := NewRouter(7, apis, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChangeFeed() == nil {
		t.Fatal("router over feeding shards has no relay feed")
	}
	byID := make(map[cloud.SiteID]*Instance, n)
	for i, inst := range insts {
		byID[cloud.SiteID(i)] = inst
	}
	return r, byID
}

func TestRouterWithoutFeedingShardsHasNoRelay(t *testing.T) {
	r, _ := newTestRouter(t, 2)
	defer r.Close()
	if r.ChangeFeed() != nil {
		t.Fatal("relay enabled although shards expose no feeds")
	}
}

// TestRouterFeedAcrossRebalance pins the migration rule: a watch on the
// tier's combined feed keeps seeing a key across AddShard — the sweep
// surfaces as a put event originated at the key's new home shard plus a
// delete event originated at its old home — instead of the subscription
// being dropped or the key silently vanishing.
func TestRouterFeedAcrossRebalance(t *testing.T) {
	ctx := context.Background()
	r, _ := newFeedRouter(t, 2)
	defer r.Close()
	sub, err := r.ChangeFeed().Subscribe(0, feed.WithBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const n = 32
	oldHome := make(map[string]cloud.SiteID, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("feed/key/%d", i)
		if _, err := r.Create(ctx, testEntry(name)); err != nil {
			t.Fatal(err)
		}
		oldHome[name] = r.Home(name)
	}
	collectFeed(t, sub, n) // the creates themselves

	id := r.AddShard(NewInstance(7, memcache.New(memcache.Config{}), WithChangeFeed()))
	r.Wait()

	var moved []string
	for name, old := range oldHome {
		if r.Home(name) == id && old != id {
			moved = append(moved, name)
		}
	}
	if len(moved) == 0 {
		t.Fatal("consistent-hash ring moved no keys to the new shard")
	}
	// The sweep's migration events: put at the new home, delete at the old.
	type pair struct{ put, del bool }
	seen := make(map[string]*pair, len(moved))
	for _, name := range moved {
		seen[name] = &pair{}
	}
	newLabel := fmt.Sprintf("shard-%d", id)
	deadline := time.After(10 * time.Second)
	for done := 0; done < len(moved); {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("watch dropped during rebalance (%v)", sub.Err())
			}
			p := seen[ev.Name]
			if p == nil {
				continue
			}
			switch {
			case ev.Op == feed.OpPut && ev.Origin == newLabel && !p.put:
				p.put = true
			case ev.Op == feed.OpDelete && ev.Origin == fmt.Sprintf("shard-%d", oldHome[ev.Name]) && !p.del:
				p.del = true
			}
			if p.put && p.del {
				done++
			}
		case <-deadline:
			t.Fatalf("migration events incomplete: %+v", seen)
		}
	}
}

// TestRouterFeedKillAndResume subscribes to a replicated tier's feed,
// kills the subscription mid-stream and resumes from its cursor: the two
// runs together must deliver every relay sequence exactly once, and every
// key's put must appear once per replica.
func TestRouterFeedKillAndResume(t *testing.T) {
	ctx := context.Background()
	const rep = 2
	r, _ := newFeedRouter(t, 4, WithRouterReplication(rep))
	defer r.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if _, err := r.Create(ctx, testEntry(fmt.Sprintf("kr/key/%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	total := n * rep // every create lands on rep shards, each feeding the relay

	sub, err := r.ChangeFeed().Subscribe(0, feed.WithBuffer(total))
	if err != nil {
		t.Fatal(err)
	}
	first := collectFeed(t, sub, total/3)
	cursor := first[len(first)-1].Seq
	sub.Close() // the consumer dies mid-stream

	resumed, err := r.ChangeFeed().Subscribe(cursor, feed.WithBuffer(total))
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	rest := collectFeed(t, resumed, total-len(first))

	seqs := make(map[uint64]int, total)
	puts := make(map[string]int, n)
	for _, ev := range append(first, rest...) {
		seqs[ev.Seq]++
		if ev.Op == feed.OpPut {
			puts[ev.Name]++
		}
	}
	for s := uint64(1); s <= uint64(total); s++ {
		if seqs[s] != 1 {
			t.Fatalf("relay seq %d delivered %d times across kill+resume", s, seqs[s])
		}
	}
	for name, c := range puts {
		if c != rep {
			t.Fatalf("key %s has %d put events, want one per replica (%d)", name, c, rep)
		}
	}
}
