package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"geomds/internal/cloud"
)

// This file holds the Router's replicated operation paths, used when the
// router was built with WithRouterReplication(r > 1).
//
// Placement: every key lives on the first r distinct shards of its
// consistent-hash successor list (dht.Placer.Homes), primary first. Routing
// draws the set from *healthy* shards only — a shard whose breaker is open
// is skipped and the next successor substitutes, so availability survives a
// shard crash without waiting for an operator. The re-sync sweep that runs
// when a shard's breaker closes (see sweepShard) moves everything back to
// the placement the ring prescribes.
//
// Writes fan out to every replica and fold the acknowledgements under the
// configured WriteConcern. Reads try the primary and fail over down the
// replica list on transport errors; an answering replica's ErrNotFound is
// authoritative — except while a sweep is reshuffling entries, when the
// whole tier is consulted, exactly like the single-home fallback. Bulk
// operations keep the one-frame-per-shard contract: a shard that is primary
// for some keys of a batch and replica for others receives one combined
// sub-batch.

// shardRef pairs a shard ID with its API for one resolved replica set.
type shardRef struct {
	id  cloud.SiteID
	api API
}

// Unavailable returns a placeholder shard whose every operation fails with
// ErrUnavailable (best-effort operations degrade to their zero answers).
// Clients building a router over a partially-reachable replicated tier use
// it to keep an undialable shard's position in the placement — placement
// derives from the listing order, so the slot cannot simply be skipped —
// and mark it down so routing draws replica sets from the healthy shards.
func Unavailable(site cloud.SiteID) API { return unavailableShard{site: site} }

type unavailableShard struct{ site cloud.SiteID }

var errShardUnreachable = fmt.Errorf("registry: shard unreachable: %w", ErrUnavailable)

func (u unavailableShard) Site() cloud.SiteID { return u.site }
func (u unavailableShard) Create(context.Context, Entry) (Entry, error) {
	return Entry{}, errShardUnreachable
}
func (u unavailableShard) Put(context.Context, Entry) (Entry, error) {
	return Entry{}, errShardUnreachable
}
func (u unavailableShard) Get(context.Context, string) (Entry, error) {
	return Entry{}, errShardUnreachable
}
func (u unavailableShard) Contains(context.Context, string) bool { return false }
func (u unavailableShard) AddLocation(context.Context, string, Location) (Entry, error) {
	return Entry{}, errShardUnreachable
}
func (u unavailableShard) Delete(context.Context, string) error { return errShardUnreachable }
func (u unavailableShard) Names(context.Context) []string       { return nil }
func (u unavailableShard) Entries(context.Context) ([]Entry, error) {
	return nil, errShardUnreachable
}
func (u unavailableShard) GetMany(context.Context, []string) ([]Entry, error) {
	return nil, errShardUnreachable
}
func (u unavailableShard) PutMany(context.Context, []Entry) ([]Entry, error) {
	return nil, errShardUnreachable
}
func (u unavailableShard) DeleteMany(context.Context, []string) (int, error) {
	return 0, errShardUnreachable
}
func (u unavailableShard) Merge(context.Context, []Entry) (int, error) {
	return 0, errShardUnreachable
}
func (u unavailableShard) Len(context.Context) int { return 0 }

// replicaIDsLocked resolves the key's home shard IDs under the current
// placement, primary first. r.mu must be held (read). With replication the
// set is drawn from healthy shards; if every successor is down the raw
// prefix of the list is returned so callers fail with the shard's transport
// error instead of inventing emptiness.
func (r *Router) replicaIDsLocked(name string) []cloud.SiteID {
	if r.rep <= 1 {
		return []cloud.SiteID{r.placer.Home(name)}
	}
	if !r.health.anyDown() {
		return r.placer.Homes(name, r.rep)
	}
	homes := r.placer.Homes(name, r.rep)
	downIn := false
	for _, id := range homes {
		if r.health.isDown(id) {
			downIn = true
			break
		}
	}
	if !downIn {
		// Some shard is down, but not one of this key's homes: no need for
		// the (allocating) full-successor-list walk below.
		return homes
	}
	// len(r.shards) bounds the membership (it additionally counts draining
	// shards; Homes clamps at the membership itself).
	all := r.placer.Homes(name, len(r.shards))
	healthy := make([]cloud.SiteID, 0, r.rep)
	for _, id := range all {
		if !r.health.isDown(id) {
			healthy = append(healthy, id)
			if len(healthy) == r.rep {
				break
			}
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	if len(all) > r.rep {
		all = all[:r.rep]
	}
	return all
}

// replicaSet resolves the key's healthy home shards, primary first.
func (r *Router) replicaSet(name string) ([]shardRef, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := r.replicaIDsLocked(name)
	refs := make([]shardRef, 0, len(ids))
	for _, id := range ids {
		if api, ok := r.shards[id]; ok && id != cloud.NoSite {
			refs = append(refs, shardRef{id: id, api: api})
		}
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("registry: router for site %d: no shard owns %q: %w", r.site, name, ErrUnavailable)
	}
	return refs, nil
}

// ackNeed returns how many replica acknowledgements a write over nTargets
// replicas needs under the configured concern.
func (r *Router) ackNeed(nTargets int) int {
	if r.concern == WriteQuorum {
		q := r.rep/2 + 1
		if q > nTargets {
			q = nTargets
		}
		return q
	}
	return nTargets
}

// ackOutcome folds replica acknowledgements into the caller-visible error:
// under WriteAll every target must have acknowledged; under WriteQuorum a
// majority of the replication factor suffices and the remaining failures are
// suppressed (router_replica_write_errors_total) — the caller then schedules
// a background repair for each failed replica (spawnRepair), with the
// breaker/re-sync path as the backstop when the shard is truly down.
// Replicas that were reached stay applied either way.
func (r *Router) ackOutcome(op string, acks, targets int, errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	if r.concern == WriteQuorum && acks >= r.ackNeed(targets) {
		r.obs.replicaErrs.Add(int64(len(errs)))
		return nil
	}
	return r.shardErr(op, errs)
}

// bulkQuorumOutcome folds a replicated bulk call's per-shard failures into
// the caller-visible error: nil when nothing failed; under WriteQuorum,
// when every input position still met its quorum, the failures are
// suppressed and counted (router_replica_write_errors_total) and each
// failed group is handed to the repair callback; otherwise the joined
// shard error.
func (r *Router) bulkQuorumOutcome(op string, acks []int, homesOf [][]cloud.SiteID, errs []error, failed []*repGroup, repair func(*repGroup)) error {
	if len(errs) == 0 {
		return nil
	}
	if r.concern == WriteQuorum {
		quorate := true
		for pos := range acks {
			if acks[pos] < r.ackNeed(len(homesOf[pos])) {
				quorate = false
				break
			}
		}
		if quorate {
			r.obs.replicaErrs.Add(int64(len(errs)))
			for _, g := range failed {
				repair(g)
			}
			return nil
		}
	}
	return r.shardErr(op, errs)
}

// fanOutWrite applies one write to every given replica concurrently,
// reporting each outcome to the health tracker. It returns the first
// successful stored entry, the acknowledgement count, the per-shard
// failures, and the refs that failed (for background repair when the
// failures end up quorum-suppressed).
func (r *Router) fanOutWrite(refs []shardRef, do func(shardRef) (Entry, error)) (Entry, int, []error, []shardRef) {
	type result struct {
		e   Entry
		err error
	}
	results := make([]result, len(refs))
	var wg sync.WaitGroup
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref shardRef) {
			defer wg.Done()
			e, err := do(ref)
			r.report(ref.id, err)
			results[i] = result{e, err}
		}(i, ref)
	}
	wg.Wait()
	var (
		stored Entry
		got    bool
		acks   int
		errs   []error
		failed []shardRef
	)
	for i, res := range results {
		if res.err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", refs[i].id, res.err))
			failed = append(failed, refs[i])
			continue
		}
		acks++
		if !got {
			stored, got = res.e, true
		}
	}
	return stored, acks, errs, failed
}

// forceNoteDeleted records deletion notes unconditionally. The replicated
// delete paths use it whenever a replica failed to apply a deletion that was
// (or may have been) acknowledged: the failed replica holds a stale copy
// now, whether or not its breaker ever opens, and every sweep consults the
// notes before merging — so the stale copy can be purged but never
// resurrected. A write re-establishing the name clears its note as usual.
func (r *Router) forceNoteDeleted(names ...string) {
	r.delMu.Lock()
	if r.deletedDuringSweep == nil {
		r.deletedDuringSweep = make(map[string]bool)
	}
	for _, name := range names {
		r.deletedDuringSweep[name] = true
	}
	// Pin the note table until a clean sweep reconciles every shard: the
	// stale copy these notes guard against exists regardless of breaker,
	// sweep, or repair state.
	r.staleNotes.Store(true)
	r.delMu.Unlock()
}

// hasDeletionNote reports whether the name's deletion note still stands
// (i.e. no write has re-established the name since).
func (r *Router) hasDeletionNote(name string) bool {
	r.delMu.Lock()
	defer r.delMu.Unlock()
	return r.deletedDuringSweep[name]
}

// Background replica-repair tuning: a failed replica write is retried this
// many times before the repair is abandoned to the breaker/re-sync path.
const (
	repairRetries = 3
	repairTimeout = 2 * time.Second
)

// spawnRepair retries one replica write that a quorum-acknowledged
// operation could not apply. Suppressing the failure made the caller whole;
// this makes the replica whole: without it, a transient single-call failure
// (too short to open the breaker, so no re-sync sweep ever runs) would
// leave the replica divergent forever — serving a stale entry, or a deleted
// one, from the primary position. If the shard keeps failing, the retries
// feed its breaker and the recovery re-sync finishes the job. Router.Wait
// covers in-flight repairs. The repair holds the repairsPending guard for
// its lifetime, so deletions issued meanwhile are noted and the repair's
// note check can see them.
func (r *Router) spawnRepair(id cloud.SiteID, do func(context.Context) error) {
	r.sweeps.Add(1)
	r.repairsPending.Add(1)
	go func() {
		defer r.sweeps.Done()
		defer r.endRepairWindow()
		for attempt := 0; attempt < repairRetries; attempt++ {
			ctx, cancel := context.WithTimeout(context.Background(), repairTimeout)
			err := do(ctx)
			cancel()
			r.report(id, err)
			if err == nil || !errors.Is(err, ErrUnavailable) {
				return
			}
			time.Sleep(time.Duration(attempt+1) * 25 * time.Millisecond)
		}
		// Abandoned: the replica still diverges. Pin the note table (before
		// this goroutine's guard hold is released) so a deletion this repair
		// would have applied stays noted until a clean sweep reconciles the
		// shard.
		r.staleNotes.Store(true)
		r.obs.repairFails.Inc()
	}()
}

// repairEntry re-applies one stored entry at a replica that missed its
// write, via Merge (idempotent; locations are unioned, so a repair racing a
// newer write cannot clobber it).
func (r *Router) repairEntry(ref shardRef, stored Entry) {
	r.spawnRepair(ref.id, func(ctx context.Context) error {
		if r.hasDeletionNote(stored.Name) {
			return nil // deleted since; re-merging would resurrect it
		}
		_, err := ref.api.Merge(ctx, []Entry{stored})
		return err
	})
}

// repairDeletion re-applies one deletion at a replica that missed it,
// unless a write has re-established the name since.
func (r *Router) repairDeletion(ref shardRef, name string) {
	r.spawnRepair(ref.id, func(ctx context.Context) error {
		if !r.hasDeletionNote(name) {
			return nil // re-created since; the deletion no longer stands
		}
		_, err := ref.api.DeleteMany(ctx, []string{name})
		return err
	})
}

// repairBatch re-merges a failed shard's bulk sub-batch in the background,
// skipping names whose deletion note stands (deleted since the write).
func (r *Router) repairBatch(ref shardRef, sub []Entry) {
	r.spawnRepair(ref.id, func(ctx context.Context) error {
		kept := make([]Entry, 0, len(sub))
		for _, e := range sub {
			if !r.hasDeletionNote(e.Name) {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			return nil
		}
		_, err := ref.api.Merge(ctx, kept)
		return err
	})
}

// repairBatchDeletion re-applies the deletions of a failed bulk sub-batch,
// skipping names a write has re-established since.
func (r *Router) repairBatchDeletion(ref shardRef, names []string) {
	r.spawnRepair(ref.id, func(ctx context.Context) error {
		kept := make([]string, 0, len(names))
		for _, name := range names {
			if r.hasDeletionNote(name) {
				kept = append(kept, name)
			}
		}
		if len(kept) == 0 {
			return nil
		}
		_, err := ref.api.DeleteMany(ctx, kept)
		return err
	})
}

// reassertDeletion restores the protection a failed write removed: the name
// was deleted while a sweep was active or a shard was down, the write that
// cleared its note did not take effect, so the deletion must stand. The note
// is re-recorded and the name purged everywhere, best-effort — the in-flight
// sweep may have merged a stale copy during the window the note was gone.
func (r *Router) reassertDeletion(ctx context.Context, name string) {
	r.noteDeleted(name)
	for _, api := range r.snapshotShards() {
		api.DeleteMany(ctx, []string{name}) //nolint:errcheck // best-effort re-assertion of the standing deletion
	}
}

// reanchorReplicated handles an acknowledged replicated write that raced the
// start of a membership change or recovery: the homes are re-resolved and
// any that were not in the original target set receive the stored entry,
// best-effort — the sweep migrating the original copies converges the same
// way.
func (r *Router) reanchorReplicated(ctx context.Context, wrote []shardRef, stored Entry) {
	r.clearDeleted(stored.Name)
	refs, err := r.replicaSet(stored.Name)
	if err != nil {
		return
	}
	was := make(map[cloud.SiteID]bool, len(wrote))
	for _, ref := range wrote {
		was[ref.id] = true
	}
	for _, ref := range refs {
		if !was[ref.id] {
			ref.api.Put(ctx, stored) //nolint:errcheck // best-effort; the sweep converges the same way
		}
	}
}

// createReplicated is Create for the replicated tier: existence is decided
// at the primary (failing over down the replica list on transport errors),
// then the stored entry is replicated to the remaining homes as an upsert.
func (r *Router) createReplicated(ctx context.Context, e Entry) (Entry, error) {
	refs, err := r.replicaSet(e.Name)
	if err != nil {
		return Entry{}, err
	}
	defer r.repairWindow()()
	r.noteWritten(e.Name)
	gen := r.sweepGen.Load()
	noted := r.clearDeleted(e.Name)

	var (
		stored    Entry
		createErr error
		creator   = -1
		errs      []error
	)
	for i, ref := range refs {
		stored, createErr = ref.api.Create(ctx, e)
		r.report(ref.id, createErr)
		if createErr == nil {
			creator = i
			break
		}
		if noted && errors.Is(createErr, ErrExists) {
			// The "existing" copy is a stale resurrection of a name deleted
			// while a sweep ran or a shard was down; the create wins over it.
			stored, createErr = ref.api.Put(ctx, e)
			r.report(ref.id, createErr)
			if createErr == nil {
				creator = i
				break
			}
		}
		if !errors.Is(createErr, ErrUnavailable) {
			break // an application answer (ErrExists, validation) is final
		}
		errs = append(errs, fmt.Errorf("shard %d: %w", ref.id, createErr))
	}
	if createErr != nil {
		if noted && !errors.Is(createErr, ErrExists) {
			r.reassertDeletion(ctx, e.Name)
		}
		if errors.Is(createErr, ErrUnavailable) {
			return Entry{}, r.shardErr("create", errs)
		}
		return Entry{}, createErr
	}

	rest := make([]shardRef, 0, len(refs)-1)
	for i, ref := range refs {
		if i != creator {
			rest = append(rest, ref)
		}
	}
	_, acks, perrs, failed := r.fanOutWrite(rest, func(ref shardRef) (Entry, error) { return ref.api.Put(ctx, stored) })
	if err := r.ackOutcome("create", acks+1, len(refs), perrs); err != nil {
		return Entry{}, err
	}
	for _, ref := range failed { // quorum-suppressed: make the replicas whole
		r.repairEntry(ref, stored)
	}
	if r.sweepActive() || r.sweepGen.Load() != gen {
		r.reanchorReplicated(ctx, refs, stored)
	}
	return stored, nil
}

// putReplicated is Put for the replicated tier: the upsert fans out to every
// replica and the acknowledgements fold under the write concern.
func (r *Router) putReplicated(ctx context.Context, e Entry) (Entry, error) {
	refs, err := r.replicaSet(e.Name)
	if err != nil {
		return Entry{}, err
	}
	defer r.repairWindow()()
	r.noteWritten(e.Name)
	gen := r.sweepGen.Load()
	noted := r.clearDeleted(e.Name)
	stored, acks, errs, failed := r.fanOutWrite(refs, func(ref shardRef) (Entry, error) { return ref.api.Put(ctx, e) })
	if err := r.ackOutcome("put", acks, len(refs), errs); err != nil {
		if noted {
			r.reassertDeletion(ctx, e.Name)
		}
		return Entry{}, err
	}
	for _, ref := range failed { // quorum-suppressed: make the replicas whole
		r.repairEntry(ref, stored)
	}
	if r.sweepActive() || r.sweepGen.Load() != gen {
		r.reanchorReplicated(ctx, refs, stored)
	}
	return stored, nil
}

// addLocationReplicated is AddLocation for the replicated tier: the
// read-modify-write runs at one authority — the first replica that answers —
// and its result is replicated as an upsert.
func (r *Router) addLocationReplicated(ctx context.Context, name string, loc Location) (Entry, error) {
	refs, err := r.replicaSet(name)
	if err != nil {
		return Entry{}, err
	}
	defer r.repairWindow()()
	r.noteWritten(name)
	var (
		stored Entry
		uerr   error
		at     = -1
		errs   []error
	)
	for i, ref := range refs {
		stored, uerr = ref.api.AddLocation(ctx, name, loc)
		r.report(ref.id, uerr)
		if uerr == nil {
			at = i
			break
		}
		if !errors.Is(uerr, ErrUnavailable) {
			return Entry{}, uerr // ErrNotFound and friends are final
		}
		errs = append(errs, fmt.Errorf("shard %d: %w", ref.id, uerr))
	}
	if uerr != nil {
		return Entry{}, r.shardErr("add-location", errs)
	}
	rest := make([]shardRef, 0, len(refs)-1)
	for i, ref := range refs {
		if i != at {
			rest = append(rest, ref)
		}
	}
	_, acks, perrs, failed := r.fanOutWrite(rest, func(ref shardRef) (Entry, error) { return ref.api.Put(ctx, stored) })
	if err := r.ackOutcome("add-location", acks+1, len(refs), perrs); err != nil {
		return Entry{}, err
	}
	for _, ref := range failed { // quorum-suppressed: make the replicas whole
		r.repairEntry(ref, stored)
	}
	return stored, nil
}

// deleteReplicated is Delete for the replicated tier. The deletion is noted
// before any shard is touched (the note is recorded only while a sweep runs
// or a shard is down — the windows in which a stale copy somewhere could
// resurrect it), then fans out to every replica; while a sweep is in flight
// the remaining shards are purged too, since un-migrated copies may live
// anywhere. A replica answering "not found" already agrees with the
// deletion and counts as an acknowledgement.
func (r *Router) deleteReplicated(ctx context.Context, name string) error {
	refs, err := r.replicaSet(name)
	if err != nil {
		return err
	}
	r.noteDeleted(name)

	results := make([]error, len(refs))
	var wg sync.WaitGroup
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref shardRef) {
			defer wg.Done()
			derr := ref.api.Delete(ctx, name)
			r.report(ref.id, derr)
			results[i] = derr
		}(i, ref)
	}
	wg.Wait()

	var (
		deleted  int // replicas that removed a present copy
		agreed   int // replicas now in the deleted state (removed or already absent)
		notFound error
		errs     []error
		failed   []shardRef
	)
	for i, derr := range results {
		switch {
		case derr == nil:
			deleted++
			agreed++
		case errors.Is(derr, ErrNotFound):
			agreed++
			if notFound == nil {
				notFound = derr
			}
		default:
			errs = append(errs, fmt.Errorf("shard %d: %w", refs[i].id, derr))
			failed = append(failed, refs[i])
		}
	}
	if len(errs) > 0 {
		// A replica holds an undeleted copy now, whether or not its breaker
		// ever opens: note the deletion unconditionally so no sweep can
		// resurrect the stale copy, even if the failure stays a one-off.
		r.forceNoteDeleted(name)
	}

	// While a sweep is in flight, un-migrated copies may live on shards
	// outside the replica set; purge them too. Purges are accounted apart
	// from the replicas: a successful purge is not a replica
	// acknowledgement, and a failed purge must not cost the quorum a vote —
	// the deletion note (recorded before any shard was touched) already
	// guarantees no sweep can resurrect the copy the purge missed. Shards
	// with open breakers are skipped for the same reason Entries skips them:
	// purging a down shard can only fail, and its stale copy is handled by
	// the note-aware re-sync sweep when it returns.
	var (
		purged       int
		purgeErrs    []error
		failedPurges []shardRef
	)
	if r.sweepActive() {
		targeted := make(map[cloud.SiteID]bool, len(refs))
		for _, ref := range refs {
			targeted[ref.id] = true
		}
		var (
			pmu sync.Mutex
			pwg sync.WaitGroup
		)
		for id, other := range r.reachableShards() {
			if targeted[id] {
				continue
			}
			pwg.Add(1)
			go func(id cloud.SiteID, other API) {
				defer pwg.Done()
				n, derr := other.DeleteMany(ctx, []string{name})
				pmu.Lock()
				defer pmu.Unlock()
				if derr != nil {
					purgeErrs = append(purgeErrs, fmt.Errorf("shard %d: %w", id, derr))
					failedPurges = append(failedPurges, shardRef{id: id, api: other})
					return
				}
				purged += n
			}(id, other)
		}
		pwg.Wait()
	}

	if err := r.ackOutcome("delete", agreed, len(refs), errs); err != nil {
		return err
	}
	for _, ref := range failed { // quorum-suppressed: finish the deletion on the replica
		r.repairDeletion(ref, name)
	}
	if len(purgeErrs) > 0 {
		if r.concern != WriteQuorum {
			return r.shardErr("delete", purgeErrs)
		}
		r.obs.replicaErrs.Add(int64(len(purgeErrs)))
		for _, ref := range failedPurges {
			r.repairDeletion(ref, name)
		}
	}
	if deleted+purged == 0 {
		return notFound
	}
	return nil
}

// getReplicated is Get for the replicated tier: the primary is tried first
// and transport errors fail over down the replica list
// (router_failover_reads_total). A replica that answers "not found" is
// authoritative — unless a sweep is reshuffling entries, in which case the
// whole tier is consulted, like the single-home fallback.
func (r *Router) getReplicated(ctx context.Context, name string) (Entry, error) {
	refs, err := r.replicaSet(name)
	if err != nil {
		return Entry{}, err
	}
	// With hedging armed and a second healthy replica resolved, race the
	// primary against a deferred hedge instead of waiting out a slow shard.
	// Mid-sweep reads keep the serial path: its full-tier fallback owns the
	// off-home-copy semantics.
	if th := r.hedgeThreshold(); th > 0 && len(refs) > 1 && !r.sweepActive() {
		return r.getHedged(ctx, name, refs, th)
	}
	var (
		notFound error
		errs     []error
		tried    = make(map[cloud.SiteID]bool, len(refs))
	)
	for i, ref := range refs {
		e, gerr := ref.api.Get(ctx, name)
		r.report(ref.id, gerr)
		tried[ref.id] = true
		if gerr == nil {
			if i > 0 {
				r.obs.failovers.Inc()
			}
			return e, nil
		}
		if errors.Is(gerr, ErrNotFound) {
			if !r.sweepActive() {
				return Entry{}, gerr
			}
			notFound = gerr
			break
		}
		errs = append(errs, fmt.Errorf("shard %d: %w", ref.id, gerr))
	}
	if r.sweepActive() {
		e, ok, ferrs := r.sweepFallbackGet(ctx, name, tried)
		if ok {
			return e, nil
		}
		errs = append(errs, ferrs...)
		if notFound != nil && len(ferrs) > 0 {
			// A miss is only authoritative when every fallback shard
			// answered; an unreachable one may hold the copy.
			notFound = nil
		}
	}
	if notFound != nil {
		return Entry{}, notFound
	}
	return Entry{}, r.shardErr("get", errs)
}

// containsReplicated mirrors getReplicated for the best-effort existence
// check: any replica answering true wins; during a sweep the whole tier is
// consulted before answering false.
func (r *Router) containsReplicated(ctx context.Context, name string) bool {
	refs, err := r.replicaSet(name)
	if err != nil {
		r.obs.suppressed.Inc()
		return false
	}
	tried := make(map[cloud.SiteID]bool, len(refs))
	for i, ref := range refs {
		tried[ref.id] = true
		if ref.api.Contains(ctx, name) {
			if i > 0 {
				r.obs.failovers.Inc()
			}
			return true
		}
	}
	if !r.sweepActive() {
		return false
	}
	return r.sweepFallbackContains(ctx, name, tried)
}

// repGroup is one shard's combined sub-batch of a replicated bulk call: the
// input positions routed to it, whether as primary or replica. One group is
// one wire frame.
type repGroup struct {
	id  cloud.SiteID
	api API
	idx []int
}

// groupReplicas partitions input positions across replica sets: every
// position lands in the group of each of its homes, so each shard still
// receives exactly one sub-batch. homesOf records each position's resolved
// replica IDs (primary first) for acknowledgement accounting.
func (r *Router) groupReplicas(names []string) (map[cloud.SiteID]*repGroup, [][]cloud.SiteID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	groups := make(map[cloud.SiteID]*repGroup)
	homesOf := make([][]cloud.SiteID, len(names))
	for i, name := range names {
		ids := r.replicaIDsLocked(name)
		var valid []cloud.SiteID
		for _, id := range ids {
			api, ok := r.shards[id]
			if id == cloud.NoSite || !ok {
				continue
			}
			g := groups[id]
			if g == nil {
				g = &repGroup{id: id, api: api}
				groups[id] = g
			}
			g.idx = append(g.idx, i)
			valid = append(valid, id)
		}
		if len(valid) == 0 {
			return nil, nil, fmt.Errorf("registry: router for site %d: no shard owns %q: %w", r.site, name, ErrUnavailable)
		}
		homesOf[i] = valid
	}
	return groups, homesOf, nil
}

// bulkCountDivisor returns the factor a replicated bulk call's per-replica
// count sum divides by: the smallest resolved home-set size of the batch —
// normally the replication factor, smaller when the tier (or its healthy
// part) has fewer shards than replicas — so the derived per-name count
// cannot undercount a fully-applied batch.
func bulkCountDivisor(rep int, homesOf [][]cloud.SiteID) int {
	div := rep
	for _, homes := range homesOf {
		if len(homes) < div {
			div = len(homes)
		}
	}
	if div < 1 {
		div = 1
	}
	return div
}

// putManyReplicated is PutMany for the replicated tier: one combined
// sub-batch per shard across all replica sets, stored entries returned in
// input order, partial failures folded per entry under the write concern.
func (r *Router) putManyReplicated(ctx context.Context, entries []Entry) ([]Entry, error) {
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	groups, homesOf, err := r.groupReplicas(names)
	if err != nil {
		return nil, err
	}
	defer r.repairWindow()()
	r.noteWritten(names...)
	r.countBulk(len(groups))

	var (
		mu     sync.Mutex
		out    = make([]Entry, len(entries))
		have   = make([]bool, len(entries))
		acks   = make([]int, len(entries))
		errs   []error
		failed []*repGroup
		wg     sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]Entry, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = entries[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, g *repGroup, sub []Entry) {
			defer wg.Done()
			stored, serr := g.api.PutMany(ctx, sub)
			r.report(id, serr)
			mu.Lock()
			defer mu.Unlock()
			if serr != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, serr))
				failed = append(failed, g)
				return
			}
			for i, pos := range g.idx {
				acks[pos]++
				if i < len(stored) && !have[pos] {
					out[pos] = stored[i]
					have[pos] = true
				}
			}
		}(id, g, sub)
	}
	wg.Wait()
	if err := r.bulkQuorumOutcome("put-many", acks, homesOf, errs, failed, func(g *repGroup) {
		sub := make([]Entry, len(g.idx))
		for i, pos := range g.idx {
			if have[pos] {
				sub[i] = out[pos]
			} else {
				sub[i] = entries[pos]
			}
		}
		r.repairBatch(shardRef{id: g.id, api: g.api}, sub)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// deleteManyReplicated is DeleteMany for the replicated tier. With every
// present name deleted at each of its replicas, the per-shard counts sum to
// (present names) x (replication factor); the returned count divides that
// back out, rounding up so partially-replicated names still count once.
func (r *Router) deleteManyReplicated(ctx context.Context, names []string) (int, error) {
	groups, homesOf, err := r.groupReplicas(names)
	if err != nil {
		return 0, err
	}
	r.noteDeletedAll(names)
	r.countBulk(len(groups))

	var (
		mu     sync.Mutex
		total  int
		acks   = make([]int, len(names))
		errs   []error
		failed []*repGroup
		wg     sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]string, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = names[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, g *repGroup, sub []string) {
			defer wg.Done()
			n, serr := g.api.DeleteMany(ctx, sub)
			r.report(id, serr)
			mu.Lock()
			defer mu.Unlock()
			if serr != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, serr))
				failed = append(failed, g)
				return
			}
			total += n
			for _, pos := range g.idx {
				acks[pos]++
			}
		}(id, g, sub)
	}
	wg.Wait()
	if len(failed) > 0 {
		// Replicas hold undeleted copies now, whether or not their breakers
		// ever open: note the deletions unconditionally so no sweep can
		// resurrect the stale copies.
		for _, g := range failed {
			sub := make([]string, len(g.idx))
			for i, pos := range g.idx {
				sub[i] = names[pos]
			}
			r.forceNoteDeleted(sub...)
		}
	}

	div := bulkCountDivisor(r.rep, homesOf)
	count := (total + div - 1) / div
	return count, r.bulkQuorumOutcome("delete-many", acks, homesOf, errs, failed, func(g *repGroup) {
		sub := make([]string, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = names[pos]
		}
		r.repairBatchDeletion(shardRef{id: g.id, api: g.api}, sub)
	})
}

// mergeReplicated is Merge for the replicated tier; like
// deleteManyReplicated, the applied count divides the per-replica sum back
// out by the replication factor.
func (r *Router) mergeReplicated(ctx context.Context, entries []Entry) (int, error) {
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	groups, homesOf, err := r.groupReplicas(names)
	if err != nil {
		return 0, err
	}
	defer r.repairWindow()()
	r.noteWritten(names...)
	r.countBulk(len(groups))

	var (
		mu     sync.Mutex
		total  int
		acks   = make([]int, len(entries))
		errs   []error
		failed []*repGroup
		wg     sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]Entry, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = entries[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, g *repGroup, sub []Entry) {
			defer wg.Done()
			n, serr := g.api.Merge(ctx, sub)
			r.report(id, serr)
			mu.Lock()
			defer mu.Unlock()
			if serr != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, serr))
				failed = append(failed, g)
				return
			}
			total += n
			for _, pos := range g.idx {
				acks[pos]++
			}
		}(id, g, sub)
	}
	wg.Wait()

	div := bulkCountDivisor(r.rep, homesOf)
	applied := (total + div - 1) / div
	return applied, r.bulkQuorumOutcome("merge", acks, homesOf, errs, failed, func(g *repGroup) {
		sub := make([]Entry, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = entries[pos]
		}
		r.repairBatch(shardRef{id: g.id, api: g.api}, sub)
	})
}

// getManyReplicated is GetMany for the replicated tier. Round one groups
// every name at its primary; a sub-batch that fails moves its names one step
// down their replica lists for the next round — at most one sub-batch per
// shard per round, at most R rounds — so a crashed shard degrades a bulk
// read into one retry round instead of an error. Names whose every replica
// failed surface as a joined error; an answering shard's misses are
// authoritative (with the usual full-tier fallback while a sweep runs).
func (r *Router) getManyReplicated(ctx context.Context, names []string) ([]Entry, error) {
	uniq := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if !seen[name] {
			seen[name] = true
			uniq = append(uniq, name)
		}
	}
	remaining := make(map[string][]shardRef, len(uniq))
	{
		r.mu.RLock()
		for _, name := range uniq {
			ids := r.replicaIDsLocked(name)
			refs := make([]shardRef, 0, len(ids))
			for _, id := range ids {
				if api, ok := r.shards[id]; ok && id != cloud.NoSite {
					refs = append(refs, shardRef{id: id, api: api})
				}
			}
			if len(refs) == 0 {
				r.mu.RUnlock()
				return nil, fmt.Errorf("registry: router for site %d: no shard owns %q: %w", r.site, name, ErrUnavailable)
			}
			remaining[name] = refs
		}
		r.mu.RUnlock()
	}

	var (
		mu    sync.Mutex
		found = make(map[string]Entry, len(uniq))
		errs  []error
	)
	r.obs.bulkOps.Inc()
	for round := 0; len(remaining) > 0 && round < r.rep; round++ {
		groups := make(map[cloud.SiteID]*repGroup)
		batch := make(map[cloud.SiteID][]string)
		for name, refs := range remaining {
			ref := refs[0]
			if groups[ref.id] == nil {
				groups[ref.id] = &repGroup{api: ref.api}
			}
			batch[ref.id] = append(batch[ref.id], name)
		}
		r.obs.subBatches.Add(int64(len(groups)))

		failed := make(map[cloud.SiteID]error)
		var wg sync.WaitGroup
		for id, g := range groups {
			wg.Add(1)
			go func(id cloud.SiteID, api API, sub []string) {
				defer wg.Done()
				entries, gerr := api.GetMany(ctx, sub)
				r.report(id, gerr)
				mu.Lock()
				defer mu.Unlock()
				if gerr != nil {
					failed[id] = gerr
					return
				}
				for _, e := range entries {
					found[e.Name] = e
				}
			}(id, g.api, batch[id])
		}
		wg.Wait()

		if round > 0 {
			r.obs.failovers.Add(int64(len(remaining) - len(failedNames(batch, failed))))
		}
		next := make(map[string][]shardRef)
		for id, gerr := range failed {
			for _, name := range batch[id] {
				rest := remaining[name][1:]
				if len(rest) == 0 {
					errs = append(errs, fmt.Errorf("shard %d: %q: %w", id, name, gerr))
					continue
				}
				next[name] = rest
			}
		}
		remaining = next
	}
	for name, refs := range remaining {
		// The round budget ran out with replicas left untried (cannot happen
		// with distinct homes, but stay defensive).
		errs = append(errs, fmt.Errorf("shard %d: %q: %w", refs[0].id, name, ErrUnavailable))
	}
	if len(errs) > 0 {
		return nil, r.shardErr("get-many", errs)
	}

	// During a migration or re-sync sweep an entry may not have reached its
	// current home set yet; misses fall back to the whole tier, one
	// concurrent sub-batch per shard, matching the single-home path.
	if r.sweepActive() {
		var missing []string
		for _, name := range uniq {
			if _, ok := found[name]; !ok {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			var fwg sync.WaitGroup
			for _, api := range r.snapshotShards() {
				fwg.Add(1)
				go func(api API) {
					defer fwg.Done()
					entries, ferr := api.GetMany(ctx, missing)
					if ferr != nil {
						return // best-effort fallback; the home answer stands
					}
					mu.Lock()
					for _, e := range entries {
						if _, ok := found[e.Name]; !ok {
							found[e.Name] = e
						}
					}
					mu.Unlock()
				}(api)
			}
			fwg.Wait()
		}
	}

	out := make([]Entry, 0, len(found))
	emitted := make(map[string]bool, len(found))
	for _, name := range names {
		if e, ok := found[name]; ok && !emitted[name] {
			emitted[name] = true
			out = append(out, e)
		}
	}
	return out, nil
}

// failedNames counts the names of sub-batches that failed this round.
func failedNames(batch map[cloud.SiteID][]string, failed map[cloud.SiteID]error) []string {
	var out []string
	for id := range failed {
		out = append(out, batch[id]...)
	}
	return out
}

// noteDeletedAll records deletion notes for a whole batch under one lock
// acquisition; like noteDeleted, notes are only kept while something could
// resurrect them (see notesNeeded).
func (r *Router) noteDeletedAll(names []string) {
	r.delMu.Lock()
	if r.notesNeeded() {
		if r.deletedDuringSweep == nil {
			r.deletedDuringSweep = make(map[string]bool)
		}
		for _, name := range names {
			r.deletedDuringSweep[name] = true
		}
	}
	r.delMu.Unlock()
}
