// Package registry defines the metadata model of the system and the per-site
// Metadata Registry instance built on top of the in-memory cache tier.
//
// A Registry Entry is the fundamental metadata storage unit of the paper
// (§V): any serializable record with a unique identifier. The base case —
// and the one every experiment uses — is a file uniquely identified by its
// name, carrying the set of its locations within the network. Per the design
// principle of §III-B the entry is deliberately small: no POSIX permissions,
// no extended attributes, only what is needed to locate the file.
package registry

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"geomds/internal/cloud"
)

// Location describes one copy of a file: the datacenter holding it and the
// node that produced or stores it.
type Location struct {
	// Site is the datacenter where the copy lives.
	Site cloud.SiteID `json:"site"`
	// Node is the execution node holding the copy (NoNode if only the site
	// is known, e.g. for data in the site's object store).
	Node cloud.NodeID `json:"node"`
	// Path is an optional storage path or object key within the site.
	Path string `json:"path,omitempty"`
}

// NoNode marks a location that is not pinned to a particular node.
const NoNode cloud.NodeID = -1

// Entry is one metadata record: the description of a (usually small) file
// produced or consumed by workflow tasks.
type Entry struct {
	// Name uniquely identifies the file across the whole multi-site
	// deployment; it is the key hashed by the decentralized strategies.
	Name string `json:"name"`
	// Size is the file size in bytes (most workflow files are small, KBs to
	// a few MBs; the strategies work for any size).
	Size int64 `json:"size"`
	// Locations lists every known copy of the file.
	Locations []Location `json:"locations"`
	// Producer identifies the workflow task that created the file, enabling
	// provenance-based provisioning (paper §III-C). Empty for external inputs.
	Producer string `json:"producer,omitempty"`
	// Created is the creation timestamp of the entry.
	Created time.Time `json:"created"`
	// Version is the registry version of the entry; 0 until stored.
	Version uint64 `json:"version"`
}

// Validation and lookup errors.
var (
	// ErrInvalidEntry is returned when an entry misses mandatory fields.
	ErrInvalidEntry = errors.New("registry: invalid entry")
	// ErrNotFound is returned when a requested entry does not exist.
	ErrNotFound = errors.New("registry: entry not found")
	// ErrExists is returned when creating an entry whose name is taken.
	ErrExists = errors.New("registry: entry already exists")
	// ErrConflict is returned when an optimistic update lost the race.
	ErrConflict = errors.New("registry: version conflict")
	// ErrUnavailable is returned when a registry instance cannot be reached
	// at all — the connection failed, the server is gone, or the transport
	// broke mid-call. It distinguishes "the site is unreachable" from
	// per-entry failures like ErrNotFound, so callers can treat partitions
	// and crashes differently from misses (core exposes it as
	// ErrSiteUnreachable).
	ErrUnavailable = errors.New("registry: instance unavailable")
)

// NewEntry returns an entry for a file produced by task producer at the given
// location.
func NewEntry(name string, size int64, producer string, loc Location) Entry {
	return Entry{
		Name:      name,
		Size:      size,
		Producer:  producer,
		Locations: []Location{loc},
		Created:   time.Now().UTC(),
	}
}

// Validate checks that the entry has a name, a non-negative size and no
// duplicated locations.
func (e Entry) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalidEntry)
	}
	if e.Size < 0 {
		return fmt.Errorf("%w: negative size %d", ErrInvalidEntry, e.Size)
	}
	seen := make(map[Location]bool, len(e.Locations))
	for _, l := range e.Locations {
		if seen[l] {
			return fmt.Errorf("%w: duplicate location %+v", ErrInvalidEntry, l)
		}
		seen[l] = true
	}
	return nil
}

// HasLocation reports whether the entry already lists the given location.
func (e Entry) HasLocation(loc Location) bool {
	for _, l := range e.Locations {
		if l == loc {
			return true
		}
	}
	return false
}

// AddLocation returns a copy of the entry with loc appended if not already
// present. The receiver is not modified.
func (e Entry) AddLocation(loc Location) Entry {
	if e.HasLocation(loc) {
		return e
	}
	out := e
	out.Locations = append(append([]Location(nil), e.Locations...), loc)
	return out
}

// SitesWithCopy returns the distinct sites holding a copy, in ascending order.
func (e Entry) SitesWithCopy() []cloud.SiteID {
	set := make(map[cloud.SiteID]bool, len(e.Locations))
	for _, l := range e.Locations {
		set[l.Site] = true
	}
	out := make([]cloud.SiteID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NearestCopy returns the location of the copy closest to the given site
// according to the topology (local beats same-region beats geo-distant;
// ties broken by link RTT, then by declaration order). ok is false when the
// entry has no locations.
func (e Entry) NearestCopy(topo *cloud.Topology, from cloud.SiteID) (Location, bool) {
	if len(e.Locations) == 0 {
		return Location{}, false
	}
	best := e.Locations[0]
	bestRTT := topo.Link(from, best.Site).RTT
	for _, l := range e.Locations[1:] {
		if rtt := topo.Link(from, l.Site).RTT; rtt < bestRTT {
			best, bestRTT = l, rtt
		}
	}
	return best, true
}

// Equal reports whether two entries carry the same metadata, ignoring the
// registry-assigned Version.
func (e Entry) Equal(other Entry) bool {
	if e.Name != other.Name || e.Size != other.Size || e.Producer != other.Producer {
		return false
	}
	if !e.Created.Equal(other.Created) {
		return false
	}
	if len(e.Locations) != len(other.Locations) {
		return false
	}
	for i := range e.Locations {
		if e.Locations[i] != other.Locations[i] {
			return false
		}
	}
	return true
}

// Codec serializes entries for storage in the cache tier or transmission on
// the wire.
type Codec interface {
	Encode(Entry) ([]byte, error)
	Decode([]byte) (Entry, error)
	// Name identifies the codec (e.g. "gob", "json").
	Name() string
}

// GobCodec encodes entries with encoding/gob: compact and fast, the default
// for cache storage and the TCP protocol.
type GobCodec struct{}

// Name implements Codec.
func (GobCodec) Name() string { return "gob" }

// Encode implements Codec.
func (GobCodec) Encode(e Entry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("registry: gob encode %q: %w", e.Name, err)
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GobCodec) Decode(data []byte) (Entry, error) {
	var e Entry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return Entry{}, fmt.Errorf("registry: gob decode: %w", err)
	}
	return e, nil
}

// JSONCodec encodes entries as JSON: larger but human-readable, used by the
// CLI tools and the on-disk workflow specifications.
type JSONCodec struct{}

// Name implements Codec.
func (JSONCodec) Name() string { return "json" }

// Encode implements Codec.
func (JSONCodec) Encode(e Entry) ([]byte, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("registry: json encode %q: %w", e.Name, err)
	}
	return data, nil
}

// Decode implements Codec.
func (JSONCodec) Decode(data []byte) (Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, fmt.Errorf("registry: json decode: %w", err)
	}
	return e, nil
}
