package registry

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
)

// killableShard wraps a shard and, while killed, answers every operation
// with a transport failure wrapping ErrUnavailable — an rpc.Client whose
// server process died. Best-effort operations degrade the way the real proxy
// does (false/nil/zero).
type killableShard struct {
	API
	dead atomic.Bool
}

func (k *killableShard) kill()   { k.dead.Store(true) }
func (k *killableShard) revive() { k.dead.Store(false) }

func (k *killableShard) Create(ctx context.Context, e Entry) (Entry, error) {
	if k.dead.Load() {
		return Entry{}, errShardDown
	}
	return k.API.Create(ctx, e)
}

func (k *killableShard) Put(ctx context.Context, e Entry) (Entry, error) {
	if k.dead.Load() {
		return Entry{}, errShardDown
	}
	return k.API.Put(ctx, e)
}

func (k *killableShard) Get(ctx context.Context, name string) (Entry, error) {
	if k.dead.Load() {
		return Entry{}, errShardDown
	}
	return k.API.Get(ctx, name)
}

func (k *killableShard) Contains(ctx context.Context, name string) bool {
	if k.dead.Load() {
		return false
	}
	return k.API.Contains(ctx, name)
}

func (k *killableShard) AddLocation(ctx context.Context, name string, loc Location) (Entry, error) {
	if k.dead.Load() {
		return Entry{}, errShardDown
	}
	return k.API.AddLocation(ctx, name, loc)
}

func (k *killableShard) Delete(ctx context.Context, name string) error {
	if k.dead.Load() {
		return errShardDown
	}
	return k.API.Delete(ctx, name)
}

func (k *killableShard) Names(ctx context.Context) []string {
	if k.dead.Load() {
		return nil
	}
	return k.API.Names(ctx)
}

func (k *killableShard) Entries(ctx context.Context) ([]Entry, error) {
	if k.dead.Load() {
		return nil, errShardDown
	}
	return k.API.Entries(ctx)
}

func (k *killableShard) GetMany(ctx context.Context, names []string) ([]Entry, error) {
	if k.dead.Load() {
		return nil, errShardDown
	}
	return k.API.GetMany(ctx, names)
}

func (k *killableShard) PutMany(ctx context.Context, entries []Entry) ([]Entry, error) {
	if k.dead.Load() {
		return nil, errShardDown
	}
	return k.API.PutMany(ctx, entries)
}

func (k *killableShard) DeleteMany(ctx context.Context, names []string) (int, error) {
	if k.dead.Load() {
		return 0, errShardDown
	}
	return k.API.DeleteMany(ctx, names)
}

func (k *killableShard) Merge(ctx context.Context, entries []Entry) (int, error) {
	if k.dead.Load() {
		return 0, errShardDown
	}
	return k.API.Merge(ctx, entries)
}

func (k *killableShard) Len(ctx context.Context) int {
	if k.dead.Load() {
		return 0
	}
	return k.API.Len(ctx)
}

// newReplicatedRouter builds a router over n killable in-process shards with
// the given replication factor and a fast breaker (threshold 2, 10ms probe).
func newReplicatedRouter(t *testing.T, n, rep int, opts ...RouterOption) (*Router, []*killableShard, []*Instance) {
	t.Helper()
	insts := make([]*Instance, n)
	kills := make([]*killableShard, n)
	apis := make([]API, n)
	for i := range apis {
		insts[i] = newShard(7)
		kills[i] = &killableShard{API: insts[i]}
		apis[i] = kills[i]
	}
	opts = append([]RouterOption{
		WithRouterReplication(rep),
		WithRouterHealth(2, 10*time.Millisecond),
	}, opts...)
	r, err := NewRouter(7, apis, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, kills, insts
}

// namesWithPrimary returns count names whose resolved primary is the given
// shard.
func namesWithPrimary(t *testing.T, r *Router, shard cloud.SiteID, prefix string, count int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < count && i < 100000; i++ {
		name := fmt.Sprintf("%s/%d", prefix, i)
		refs, err := r.replicaSet(name)
		if err != nil {
			t.Fatal(err)
		}
		if refs[0].id == shard {
			out = append(out, name)
		}
	}
	if len(out) < count {
		t.Fatalf("could not find %d names with primary shard %d", count, shard)
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterReplicatedWritesFanOut pins R-way placement: every created entry
// lives on exactly its R resolved home shards, and the homes are distinct.
func TestRouterReplicatedWritesFanOut(t *testing.T) {
	ctx := context.Background()
	r, _, insts := newReplicatedRouter(t, 4, 2)

	for i := 0; i < 128; i++ {
		name := fmt.Sprintf("rep/fanout/%d", i)
		if _, err := r.Create(ctx, testEntry(name)); err != nil {
			t.Fatalf("create %q: %v", name, err)
		}
		refs, err := r.replicaSet(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 2 || refs[0].id == refs[1].id {
			t.Fatalf("replica set for %q not two distinct shards: %v", name, refs)
		}
		homes := map[cloud.SiteID]bool{refs[0].id: true, refs[1].id: true}
		for id, inst := range insts {
			has := inst.Contains(ctx, name)
			if homes[cloud.SiteID(id)] != has {
				t.Fatalf("entry %q on shard %d: got %v, want %v", name, id, has, homes[cloud.SiteID(id)])
			}
		}
	}

	// The tier's logical size counts every entry once, not once per replica.
	if got := r.Len(ctx); got != 128 {
		t.Fatalf("replicated Len: got %d, want 128", got)
	}
	entries, err := r.Entries(ctx)
	if err != nil || len(entries) != 128 {
		t.Fatalf("replicated Entries: got %d (%v), want 128", len(entries), err)
	}
	if names := r.Names(ctx); len(names) != 128 {
		t.Fatalf("replicated Names: got %d, want 128", len(names))
	}

	// Duplicate create still fails, and delete removes every replica.
	if _, err := r.Create(ctx, testEntry("rep/fanout/0")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: want ErrExists, got %v", err)
	}
	if err := r.Delete(ctx, "rep/fanout/0"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	for id, inst := range insts {
		if inst.Contains(ctx, "rep/fanout/0") {
			t.Fatalf("deleted entry still on shard %d", id)
		}
	}
	if _, err := r.Get(ctx, "rep/fanout/0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: want ErrNotFound, got %v", err)
	}
}

// TestRouterReplicatedReadFailsOver kills a shard and checks single-key and
// bulk reads of its keys succeed via the replica list without waiting for
// the breaker.
func TestRouterReplicatedReadFailsOver(t *testing.T) {
	ctx := context.Background()
	r, kills, _ := newReplicatedRouter(t, 4, 2, WithRouterMetrics(metrics.NewRegistry()))

	const n = 200
	names := make([]string, n)
	entries := make([]Entry, n)
	for i := range names {
		names[i] = fmt.Sprintf("rep/failover/%d", i)
		entries[i] = testEntry(names[i])
	}
	if _, err := r.PutMany(ctx, entries); err != nil {
		t.Fatal(err)
	}

	kills[2].kill()

	for _, name := range names {
		if _, err := r.Get(ctx, name); err != nil {
			t.Fatalf("get %q with shard 2 dead: %v", name, err)
		}
	}
	got, err := r.GetMany(ctx, names)
	if err != nil {
		t.Fatalf("get-many with shard 2 dead: %v", err)
	}
	if len(got) != n {
		t.Fatalf("get-many with shard 2 dead returned %d of %d", len(got), n)
	}
	// Listing survives too, whether or not the breaker opened yet.
	if entries, err := r.Entries(ctx); err != nil || len(entries) != n {
		t.Fatalf("entries with shard 2 dead: got %d (%v), want %d", len(entries), err, n)
	}
}

// opCountingShard counts operations that reach the shard, excluding health
// probes — the satellite acceptance test uses it to pin that a down-marked
// shard receives zero routed operations until its probe succeeds.
type opCountingShard struct {
	API
	ops atomic.Int64
}

func (c *opCountingShard) Create(ctx context.Context, e Entry) (Entry, error) {
	c.ops.Add(1)
	return c.API.Create(ctx, e)
}

func (c *opCountingShard) Put(ctx context.Context, e Entry) (Entry, error) {
	c.ops.Add(1)
	return c.API.Put(ctx, e)
}

func (c *opCountingShard) Get(ctx context.Context, name string) (Entry, error) {
	if name != probeKey {
		c.ops.Add(1)
	}
	return c.API.Get(ctx, name)
}

func (c *opCountingShard) Contains(ctx context.Context, name string) bool {
	c.ops.Add(1)
	return c.API.Contains(ctx, name)
}

func (c *opCountingShard) AddLocation(ctx context.Context, name string, loc Location) (Entry, error) {
	c.ops.Add(1)
	return c.API.AddLocation(ctx, name, loc)
}

func (c *opCountingShard) Delete(ctx context.Context, name string) error {
	c.ops.Add(1)
	return c.API.Delete(ctx, name)
}

func (c *opCountingShard) Names(ctx context.Context) []string {
	c.ops.Add(1)
	return c.API.Names(ctx)
}

func (c *opCountingShard) Entries(ctx context.Context) ([]Entry, error) {
	c.ops.Add(1)
	return c.API.Entries(ctx)
}

func (c *opCountingShard) GetMany(ctx context.Context, names []string) ([]Entry, error) {
	c.ops.Add(1)
	return c.API.GetMany(ctx, names)
}

func (c *opCountingShard) PutMany(ctx context.Context, entries []Entry) ([]Entry, error) {
	c.ops.Add(1)
	return c.API.PutMany(ctx, entries)
}

func (c *opCountingShard) DeleteMany(ctx context.Context, names []string) (int, error) {
	c.ops.Add(1)
	return c.API.DeleteMany(ctx, names)
}

func (c *opCountingShard) Merge(ctx context.Context, entries []Entry) (int, error) {
	c.ops.Add(1)
	return c.API.Merge(ctx, entries)
}

// TestRouterDownShardReceivesZeroRoutedOps is the breaker acceptance test: a
// shard marked down receives no routed operations at all — single-key,
// bulk, or listing — until its probe succeeds, after which it serves again.
func TestRouterDownShardReceivesZeroRoutedOps(t *testing.T) {
	ctx := context.Background()
	const n = 4
	insts := make([]*Instance, n)
	kills := make([]*killableShard, n)
	counts := make([]*opCountingShard, n)
	apis := make([]API, n)
	for i := range apis {
		insts[i] = newShard(7)
		kills[i] = &killableShard{API: insts[i]}
		counts[i] = &opCountingShard{API: kills[i]}
		apis[i] = counts[i]
	}
	r, err := NewRouter(7, apis,
		WithRouterReplication(2),
		WithRouterHealth(2, 10*time.Millisecond),
		WithRouterMetrics(metrics.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const victim = cloud.SiteID(1)
	seed := namesWithPrimary(t, r, victim, "rep/breaker", 32)
	for _, name := range seed {
		if _, err := r.Create(ctx, testEntry(name)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the shard and feed the breaker until it opens: reads of its keys
	// keep succeeding via failover while the failures accumulate.
	kills[victim].kill()
	waitFor(t, "breaker to open", func() bool {
		if _, err := r.Get(ctx, seed[0]); err != nil {
			t.Fatalf("failover read during breaker warm-up: %v", err)
		}
		return len(r.DownShards()) == 1
	})

	// From here on, not a single routed operation may reach the down shard.
	counts[victim].ops.Store(0)
	var bulkEntries []Entry
	var bulkNames []string
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("rep/breaker/after/%d", i)
		bulkNames = append(bulkNames, name)
		bulkEntries = append(bulkEntries, testEntry(name))
		if _, err := r.Create(ctx, testEntry(fmt.Sprintf("rep/breaker/single/%d", i))); err != nil {
			t.Fatalf("create with shard down: %v", err)
		}
		if _, err := r.Get(ctx, seed[i%len(seed)]); err != nil {
			t.Fatalf("get with shard down: %v", err)
		}
	}
	if _, err := r.PutMany(ctx, bulkEntries); err != nil {
		t.Fatalf("put-many with shard down: %v", err)
	}
	if _, err := r.GetMany(ctx, bulkNames); err != nil {
		t.Fatalf("get-many with shard down: %v", err)
	}
	if _, err := r.Entries(ctx); err != nil {
		t.Fatalf("entries with shard down: %v", err)
	}
	r.Names(ctx)
	r.Len(ctx)
	if got := counts[victim].ops.Load(); got != 0 {
		t.Fatalf("down-marked shard received %d routed operations, want 0", got)
	}

	// The shard comes back: the probe closes the breaker, a re-sync sweep
	// repairs it, and routing hands it operations again.
	kills[victim].revive()
	waitFor(t, "probe to close the breaker", func() bool { return len(r.DownShards()) == 0 })
	r.Wait()
	if got := counts[victim].ops.Load(); got == 0 {
		t.Fatal("recovered shard never received the re-sync sweep")
	}
	counts[victim].ops.Store(0)
	for _, name := range seed {
		if _, err := r.Get(ctx, name); err != nil {
			t.Fatalf("get %q after recovery: %v", name, err)
		}
	}
	if got := counts[victim].ops.Load(); got == 0 {
		t.Fatal("recovered shard still receives no routed operations")
	}
}

// TestRouterShardOutageResync covers the full outage story: writes and
// deletions issued while a shard is down land on substitute replicas, and
// the re-sync sweep after recovery restores ring placement — without
// resurrecting anything deleted during the outage from the dead shard's
// stale copies.
func TestRouterShardOutageResync(t *testing.T) {
	ctx := context.Background()
	r, kills, insts := newReplicatedRouter(t, 4, 2)

	const victim = cloud.SiteID(3)
	stale := namesWithPrimary(t, r, victim, "rep/outage/stale", 8)
	for _, name := range stale {
		if _, err := r.Create(ctx, testEntry(name)); err != nil {
			t.Fatal(err)
		}
	}

	kills[victim].kill()
	r.MarkShardDown(victim)

	// Deletions during the outage: the dead shard still holds stale copies.
	for _, name := range stale[:4] {
		if err := r.Delete(ctx, name); err != nil {
			t.Fatalf("delete %q during outage: %v", name, err)
		}
	}
	// Writes during the outage land on substitute replicas.
	var during []string
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("rep/outage/during/%d", i)
		during = append(during, name)
		if _, err := r.Create(ctx, testEntry(name)); err != nil {
			t.Fatalf("create %q during outage: %v", name, err)
		}
	}

	kills[victim].revive()
	r.MarkShardUp(victim)
	r.Wait()

	// Deletions stand: the stale copies on the returned shard were purged,
	// not resurrected.
	for _, name := range stale[:4] {
		if _, err := r.Get(ctx, name); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted %q resurrected after resync: %v", name, err)
		}
		if insts[victim].Contains(ctx, name) {
			t.Fatalf("returned shard still holds stale copy of deleted %q", name)
		}
	}
	// Everything else is back at ring placement: each entry on exactly its
	// two home shards, including the returned one.
	for _, name := range append(append([]string{}, stale[4:]...), during...) {
		refs, err := r.replicaSet(name)
		if err != nil {
			t.Fatal(err)
		}
		homes := make(map[cloud.SiteID]bool, len(refs))
		for _, ref := range refs {
			homes[ref.id] = true
		}
		for id, inst := range insts {
			if has := inst.Contains(ctx, name); has != homes[cloud.SiteID(id)] {
				t.Fatalf("after resync, entry %q on shard %d: got %v, want %v", name, id, has, homes[cloud.SiteID(id)])
			}
		}
		if _, err := r.Get(ctx, name); err != nil {
			t.Fatalf("get %q after resync: %v", name, err)
		}
	}
}

// TestRouterWriteConcernQuorum pins the difference between the two write
// concerns under an unmarked replica failure: WriteAll surfaces it,
// WriteQuorum suppresses it when a majority acked (and counts it).
func TestRouterWriteConcernQuorum(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		concern WriteConcern
		wantErr bool
	}{
		{WriteAll, true},
		{WriteQuorum, false},
	} {
		t.Run(tc.concern.String(), func(t *testing.T) {
			reg := metrics.NewRegistry()
			// Threshold high enough that the dying replica is never marked
			// down during the test: the failure stays a per-write surprise.
			r, kills, _ := newReplicatedRouter(t, 4, 3,
				WithRouterWriteConcern(tc.concern),
				WithRouterMetrics(reg),
				WithRouterHealth(10000, time.Hour))

			const victim = cloud.SiteID(2)
			// A name replicated on the victim, but not primaried there — the
			// create succeeds at the primary either way.
			var name string
			for i := 0; name == "" && i < 100000; i++ {
				cand := fmt.Sprintf("rep/concern/%d", i)
				refs, err := r.replicaSet(cand)
				if err != nil {
					t.Fatal(err)
				}
				for _, ref := range refs[1:] {
					if ref.id == victim {
						name = cand
					}
				}
			}
			if name == "" {
				t.Fatal("no candidate name replicates on the victim shard")
			}
			kills[victim].kill()
			_, err := r.Put(ctx, testEntry(name))
			if tc.wantErr {
				if err == nil || !errors.Is(err, ErrUnavailable) {
					t.Fatalf("WriteAll with a dead replica: want ErrUnavailable, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("WriteQuorum with a dead replica and 2/3 acks: %v", err)
			}
			if got := reg.Counter("router_replica_write_errors_total").Value(); got == 0 {
				t.Fatal("quorum-suppressed replica failure not counted")
			}
			// The write is readable despite the dead replica.
			if _, err := r.Get(ctx, name); err != nil {
				t.Fatalf("get after quorum write: %v", err)
			}
		})
	}
}

// TestRouterReplicatedBulkOneFramePerShard extends the batching contract to
// the replicated tier: a bulk call issues at most one combined sub-batch per
// shard even though every entry targets R shards.
func TestRouterReplicatedBulkOneFramePerShard(t *testing.T) {
	ctx := context.Background()
	const nShards = 4
	counters := make([]*countingShard, nShards)
	apis := make([]API, nShards)
	for i := range counters {
		counters[i] = newCountingShard(newShard(7))
		apis[i] = counters[i]
	}
	r, err := NewRouter(7, apis, WithRouterReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 256
	entries := make([]Entry, n)
	names := make([]string, n)
	for i := range entries {
		names[i] = fmt.Sprintf("repbulk/%d", i)
		entries[i] = testEntry(names[i])
	}
	if _, err := r.PutMany(ctx, entries); err != nil {
		t.Fatalf("put-many: %v", err)
	}
	got, err := r.GetMany(ctx, names)
	if err != nil {
		t.Fatalf("get-many: %v", err)
	}
	if len(got) != n {
		t.Fatalf("get-many returned %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Name != names[i] {
			t.Fatalf("get-many result out of order at %d: got %q want %q", i, e.Name, names[i])
		}
	}
	if _, err := r.Merge(ctx, entries); err != nil {
		t.Fatalf("merge: %v", err)
	}
	deleted, err := r.DeleteMany(ctx, names)
	if err != nil {
		t.Fatalf("delete-many: %v", err)
	}
	if deleted != n {
		t.Fatalf("replicated delete-many reported %d, want %d", deleted, n)
	}
	for i, c := range counters {
		for _, bulk := range []string{"PutMany", "GetMany", "Merge", "DeleteMany"} {
			if calls := c.Calls(bulk); calls > 1 {
				t.Errorf("shard %d: %s called %d times for one replicated bulk call, want at most 1", i, bulk, calls)
			}
		}
		for _, single := range []string{"Get", "Put", "Delete"} {
			if calls := c.Calls(single); calls != 0 {
				t.Errorf("shard %d: replicated bulk ops fell back to %d per-key %s calls", i, calls, single)
			}
		}
	}
}

// TestRouterReplicatedMembershipChange checks joins and leaves still migrate
// correctly when placement is replicated: after the sweep every entry sits
// on exactly its R home shards.
func TestRouterReplicatedMembershipChange(t *testing.T) {
	ctx := context.Background()
	r, _, insts := newReplicatedRouter(t, 3, 2)

	const n = 300
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("rep/member/%d", i)
		if _, err := r.Create(ctx, testEntry(names[i])); err != nil {
			t.Fatal(err)
		}
	}

	joined := newShard(7)
	id := r.AddShard(joined)
	r.Wait()

	byID := make(map[cloud.SiteID]API, len(insts)+1)
	for i, inst := range insts {
		byID[cloud.SiteID(i)] = inst
	}
	byID[id] = joined

	if got := r.Len(ctx); got != n {
		t.Fatalf("tier size after join: got %d, want %d", got, n)
	}
	for _, name := range names {
		refs, err := r.replicaSet(name)
		if err != nil {
			t.Fatal(err)
		}
		homes := make(map[cloud.SiteID]bool, len(refs))
		for _, ref := range refs {
			homes[ref.id] = true
		}
		for sid, api := range byID {
			if has := api.Contains(ctx, name); has != homes[sid] {
				t.Fatalf("after join, entry %q on shard %d: got %v, want %v", name, sid, has, homes[sid])
			}
		}
	}
	if joined.Len(ctx) == 0 {
		t.Fatal("joined shard received no replicas")
	}

	if err := r.RemoveShard(id); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	if joined.Len(ctx) != 0 {
		t.Fatalf("removed shard still holds %d entries", joined.Len(ctx))
	}
	if got := r.Len(ctx); got != n {
		t.Fatalf("tier size after leave: got %d, want %d", got, n)
	}
	for _, name := range names {
		if _, err := r.Get(ctx, name); err != nil {
			t.Fatalf("get %q after leave: %v", name, err)
		}
	}
}

// nameReplicatedOn returns a name whose replica set includes the given
// shard.
func nameReplicatedOn(t *testing.T, r *Router, shard cloud.SiteID, prefix string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("%s/%d", prefix, i)
		refs, err := r.replicaSet(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			if ref.id == shard {
				return name
			}
		}
	}
	t.Fatalf("no name replicates on shard %d", shard)
	return ""
}

// TestRouterQuorumDeleteNotResurrectedByResync pins the pre-breaker window:
// a quorum-acknowledged delete whose replica failed *before* any breaker
// opened must not be resurrected when that shard later cycles through a
// down/up re-sync — the deletion note is recorded on the failed write
// itself, not on breaker state.
func TestRouterQuorumDeleteNotResurrectedByResync(t *testing.T) {
	ctx := context.Background()
	// Threshold high enough that nothing is ever marked down automatically:
	// the replica failure stays a one-off surprise.
	r, kills, insts := newReplicatedRouter(t, 4, 3,
		WithRouterWriteConcern(WriteQuorum),
		WithRouterHealth(10000, time.Hour))

	const victim = cloud.SiteID(1)
	name := nameReplicatedOn(t, r, victim, "rep/prebreaker")
	if _, err := r.Create(ctx, testEntry(name)); err != nil {
		t.Fatal(err)
	}

	kills[victim].kill()
	if err := r.Delete(ctx, name); err != nil {
		t.Fatalf("quorum delete with one dead replica: %v", err)
	}
	r.Wait() // background repair retries exhaust against the dead shard

	// The shard cycles down and back up — stale copy in hand — and the
	// re-sync sweep runs. The deletion must stand everywhere.
	r.MarkShardDown(victim)
	kills[victim].revive()
	r.MarkShardUp(victim)
	r.Wait()

	if _, err := r.Get(ctx, name); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quorum-acknowledged delete resurrected by resync: %v", err)
	}
	for id, inst := range insts {
		if inst.Contains(ctx, name) {
			t.Fatalf("shard %d still holds the deleted entry after resync", id)
		}
	}
}

// TestRouterQuorumSuppressedFailureRepaired pins the transient-blip window:
// a quorum-acknowledged write (and delete) whose replica failed without the
// breaker ever opening is made whole by the background repair alone — no
// sweep, no membership change, no breaker cycle.
func TestRouterQuorumSuppressedFailureRepaired(t *testing.T) {
	ctx := context.Background()
	r, kills, insts := newReplicatedRouter(t, 4, 3,
		WithRouterWriteConcern(WriteQuorum),
		WithRouterHealth(10000, time.Hour))

	const victim = cloud.SiteID(2)
	name := nameReplicatedOn(t, r, victim, "rep/blip")

	// Write during a blip: the victim misses the Put, revives immediately,
	// and the background repair delivers the entry.
	kills[victim].kill()
	if _, err := r.Put(ctx, testEntry(name)); err != nil {
		t.Fatalf("quorum put with one dead replica: %v", err)
	}
	kills[victim].revive()
	r.Wait()
	if !insts[victim].Contains(ctx, name) {
		t.Fatal("blipped replica was not repaired after a quorum-suppressed put")
	}

	// Delete during a blip: the victim misses the deletion, revives, and
	// the background repair finishes it — reads can never serve the stale
	// copy from the primary position.
	kills[victim].kill()
	if err := r.Delete(ctx, name); err != nil {
		t.Fatalf("quorum delete with one dead replica: %v", err)
	}
	kills[victim].revive()
	r.Wait()
	if insts[victim].Contains(ctx, name) {
		t.Fatal("blipped replica still holds the entry after a quorum-suppressed delete")
	}
	if _, err := r.Get(ctx, name); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after repaired delete: %v", err)
	}
}

// TestRouterReplicationLargerThanTier pins the degenerate configuration
// where the requested factor exceeds the shard count: placement caps at the
// membership, ops work, and bulk counts divide by the effective home-set
// size rather than the nominal factor.
func TestRouterReplicationLargerThanTier(t *testing.T) {
	ctx := context.Background()
	r, _, insts := newReplicatedRouter(t, 2, 4)

	const n = 16
	names := make([]string, n)
	entries := make([]Entry, n)
	for i := range names {
		names[i] = fmt.Sprintf("rep/overshoot/%d", i)
		entries[i] = testEntry(names[i])
	}
	if _, err := r.PutMany(ctx, entries); err != nil {
		t.Fatal(err)
	}
	// Every entry on both (all) shards, counted once.
	for _, inst := range insts {
		if inst.Len(ctx) != n {
			t.Fatalf("shard holds %d entries, want %d (all replicas)", inst.Len(ctx), n)
		}
	}
	if got := r.Len(ctx); got != n {
		t.Fatalf("Len: got %d, want %d", got, n)
	}
	deleted, err := r.DeleteMany(ctx, names)
	if err != nil {
		t.Fatalf("delete-many: %v", err)
	}
	if deleted != n {
		t.Fatalf("delete-many count with rep > shards: got %d, want %d", deleted, n)
	}
}

// TestRouterRepairDoesNotResurrectDeletion pins the repair/delete race
// guard: a background repair spawned by a quorum-suppressed write that
// *preceded* a delete must not merge the entry back after the delete — the
// write's repair window forces the delete to note itself, and the repair
// stands down on the note.
func TestRouterRepairDoesNotResurrectDeletion(t *testing.T) {
	ctx := context.Background()
	r, kills, insts := newReplicatedRouter(t, 4, 3,
		WithRouterWriteConcern(WriteQuorum),
		WithRouterHealth(10000, time.Hour))

	const victim = cloud.SiteID(0)
	name := nameReplicatedOn(t, r, victim, "rep/repairrace")

	// The victim misses the put; a repair is spawned. Before it can land,
	// the victim revives and the entry is deleted.
	kills[victim].kill()
	if _, err := r.Put(ctx, testEntry(name)); err != nil {
		t.Fatalf("quorum put with one dead replica: %v", err)
	}
	kills[victim].revive()
	if err := r.Delete(ctx, name); err != nil {
		t.Fatalf("delete racing the repair: %v", err)
	}
	r.Wait() // repairs drain

	if _, err := r.Get(ctx, name); !errors.Is(err, ErrNotFound) {
		t.Fatalf("repair resurrected the deletion: %v", err)
	}
	for id, inst := range insts {
		if inst.Contains(ctx, name) {
			t.Fatalf("shard %d holds the deleted entry after the repair drained", id)
		}
	}
}
