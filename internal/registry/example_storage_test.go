package registry_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"geomds/internal/memcache"
	"geomds/internal/registry"
)

// ExampleOpenInstance opens a registry instance backed by an on-disk
// write-ahead log, writes an entry, and shows that a fresh instance over
// the same directory recovers it.
func ExampleOpenInstance() {
	dir, err := os.MkdirTemp("", "geomds-registry-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// Open a persistent instance for site 1. A nil option slice means the
	// defaults: fsync on every append, compaction every 8192 records.
	inst, err := registry.OpenInstance(1, memcache.New(memcache.Config{}), dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	e := registry.NewEntry("datasets/climate/v1", 2048, "ingest",
		registry.Location{Site: 1, Node: 3})
	if _, err := inst.Create(ctx, e); err != nil {
		log.Fatal(err)
	}
	if err := inst.Close(); err != nil {
		log.Fatal(err)
	}

	// A new instance over the same directory replays the log into its
	// (empty) cache and reports how far the recovered log reaches.
	reopened, err := registry.OpenInstance(1, memcache.New(memcache.Config{}), dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()

	got, err := reopened.Get(ctx, "datasets/climate/v1")
	if err != nil {
		log.Fatal(err)
	}
	seq, durable := reopened.DurableSeq()
	fmt.Println(got.Name, len(got.Locations))
	fmt.Println(seq, durable)
	// Output:
	// datasets/climate/v1 1
	// 1 true
}
