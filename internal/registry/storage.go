package registry

import (
	"fmt"

	"geomds/internal/cloud"
	"geomds/internal/store"
)

// This file wires the internal/store durability layer into the registry:
// WithStorage/OpenInstance give an Instance an on-disk WAL plus snapshots,
// and the Recoverable interface lets the router's recovery path ask a
// returning shard how much state it brought back — the basis for the delta
// repair that replaces the full re-sync sweep (see delta.go).

// Recoverable is implemented by shards that persist their state locally and
// can report the sequence number of the last durable mutation. The router
// uses it on both edges of an outage: when a shard's breaker opens, the
// last durable sequence number is recorded; when the shard returns, a
// recovered sequence number at or above that mark proves the shard brought
// its pre-outage state back, so only what was written *during* the outage
// needs repair.
type Recoverable interface {
	// DurableSeq returns the sequence number of the last locally durable
	// mutation, and whether the shard persists at all — (0, false) means
	// memory-only, for which every recovery needs the full re-sync sweep.
	DurableSeq() (uint64, bool)
}

// An Instance is Recoverable (memory-only instances answer false).
var _ Recoverable = (*Instance)(nil)

// WithStorage wraps the instance's store in the durable WAL+snapshot layer
// rooted at dir: prior state is recovered into the backing store before the
// instance serves, and every mutation is journaled before it is
// acknowledged. NewInstance panics if the storage cannot be opened (a
// construction-time invariant, like an unroutable placement); use
// OpenInstance where the error should surface instead.
func WithStorage(dir string, opts ...store.Option) InstanceOption {
	return func(i *Instance) {
		d, err := store.Open(dir, i.store, opts...)
		if err != nil {
			i.storageErr = fmt.Errorf("registry: opening storage in %s: %w", dir, err)
			return
		}
		i.store = d
		i.durable = d
	}
}

// OpenInstance is NewInstance plus WithStorage with the error returned
// rather than panicking: the instance recovers its state from dir (created
// if needed) and journals every mutation there. storeOpts tune the WAL
// (fsync policy, compaction interval); opts are the usual instance options.
func OpenInstance(site cloud.SiteID, backing Store, dir string, storeOpts []store.Option, opts ...InstanceOption) (*Instance, error) {
	inst := &Instance{site: site, store: backing, codec: GobCodec{}, maxCASRetries: 8}
	for _, o := range opts {
		o(inst)
	}
	WithStorage(dir, storeOpts...)(inst)
	if inst.storageErr != nil {
		return nil, inst.storageErr
	}
	inst.finishFeed()
	return inst, nil
}

// Close flushes and fsyncs the instance's log — regardless of the fsync
// policy — so a Close followed by OpenInstance over the same directory is
// lossless. Memory-only instances close to a no-op. Idempotent; mutations
// after Close fail with store.ErrClosed.
func (i *Instance) Close() error {
	if i.feedLog != nil {
		i.feedLog.Close()
	}
	if i.durable == nil {
		return nil
	}
	return i.durable.Close()
}

// DurableSeq implements Recoverable: the sequence number of the last
// durable mutation, or (0, false) for a memory-only instance.
func (i *Instance) DurableSeq() (uint64, bool) {
	if i.durable == nil {
		return 0, false
	}
	return i.durable.Seq(), true
}

// Storage returns the instance's durability layer, nil when the instance is
// memory-only. Tests and operational tooling read its recovery and log
// counters (store.LogStats).
func (i *Instance) Storage() *store.Durable { return i.durable }
