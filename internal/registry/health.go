package registry

import (
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
)

// healthTracker is the router's per-shard circuit breaker. Every routed
// operation reports its outcome for the shard it touched; a run of
// consecutive transport failures (errors wrapping ErrUnavailable) opens the
// shard's breaker, and from that moment routing skips the shard — replica
// sets are drawn from the healthy successors instead, so a crashed shard
// costs at most `threshold` failed calls, not an error storm for its whole
// key range. A background probe re-checks down shards and, when one answers
// again, closes its breaker and notifies the router so a re-sync sweep can
// reconcile what the shard missed while it was away.
//
// Responses that carry application errors (ErrNotFound, ErrExists) count as
// successes: the shard answered, it is the data that disagreed.
//
// A healthTracker is safe for concurrent use.
type healthTracker struct {
	threshold     int           // consecutive failures that open a breaker
	probeInterval time.Duration // how often down shards are re-probed

	// probe asks one down shard whether it is answering again; healthy
	// means the breaker may close. The recover hooks bracket a breaker
	// closing (all run outside the tracker's locks): preRecover runs before
	// the shard re-enters routing (the router raises its sweep flag here, so
	// mitigations are armed before the shard can be handed operations),
	// postRecover after (the router spawns the re-sync sweep), and
	// abortRecover balances a preRecover whose CAS lost a markUp race.
	probe        func(id cloud.SiteID) bool
	preRecover   func(id cloud.SiteID)
	abortRecover func()
	postRecover  func(id cloud.SiteID)
	// onDown fires once per breaker opening, right after the CAS that
	// opened it (the router samples the shard's durable sequence number
	// here, while the in-process handle still answers).
	onDown func(id cloud.SiteID)

	// mu guards breakers (lookups take the read lock; membership changes
	// the write lock) and the prober lifecycle fields below.
	mu       sync.RWMutex
	breakers map[cloud.SiteID]*shardBreaker
	proberUp bool
	stop     chan struct{}
	closed   bool

	// nDown counts currently-open breakers so the routing hot path can ask
	// "is anything down?" with one atomic load.
	nDown atomic.Int32

	obs healthObs
}

// shardBreaker is the breaker state of one shard.
type shardBreaker struct {
	fails atomic.Int32 // consecutive transport failures
	down  atomic.Bool  // breaker open: routing skips this shard
}

// healthObs holds the tracker's observability instruments. All fields
// tolerate being nil (instrumentation disabled).
type healthObs struct {
	downG      *metrics.Gauge   // router_shards_down: breakers currently open
	downC      *metrics.Counter // router_shard_down_total: breakers opened
	upC        *metrics.Counter // router_shard_up_total: breakers closed by a successful probe
	probes     *metrics.Counter // router_probes_total: health probes issued
	probeFails *metrics.Counter // router_probe_failures_total: probes the down shard failed
}

func newHealthObs(reg *metrics.Registry) healthObs {
	return healthObs{
		downG:      reg.Gauge("router_shards_down"),
		downC:      reg.Counter("router_shard_down_total"),
		upC:        reg.Counter("router_shard_up_total"),
		probes:     reg.Counter("router_probes_total"),
		probeFails: reg.Counter("router_probe_failures_total"),
	}
}

// Default breaker tuning: a shard is marked down after three consecutive
// transport failures and re-probed four times a second. Both are modest — the
// cost of a too-eager breaker is a spurious re-sync sweep, the cost of a
// too-lazy one is `threshold` extra failed calls per shard death.
const (
	defaultHealthThreshold = 3
	defaultProbeInterval   = 250 * time.Millisecond
)

func newHealthTracker(threshold int, probeInterval time.Duration, reg *metrics.Registry) *healthTracker {
	if threshold <= 0 {
		threshold = defaultHealthThreshold
	}
	if probeInterval <= 0 {
		probeInterval = defaultProbeInterval
	}
	return &healthTracker{
		threshold:     threshold,
		probeInterval: probeInterval,
		breakers:      make(map[cloud.SiteID]*shardBreaker),
		stop:          make(chan struct{}),
		obs:           newHealthObs(reg),
	}
}

// track registers a shard with a closed breaker.
func (h *healthTracker) track(id cloud.SiteID) {
	h.mu.Lock()
	if _, ok := h.breakers[id]; !ok {
		h.breakers[id] = &shardBreaker{}
	}
	h.mu.Unlock()
}

// untrack forgets a detached shard. A shard that leaves while down no longer
// counts against the down gauge.
func (h *healthTracker) untrack(id cloud.SiteID) {
	h.mu.Lock()
	if b, ok := h.breakers[id]; ok {
		if b.down.Load() {
			h.nDown.Add(-1)
			h.obs.downG.Add(-1)
		}
		delete(h.breakers, id)
	}
	h.mu.Unlock()
}

// breaker returns the shard's breaker, nil for unknown shards.
func (h *healthTracker) breaker(id cloud.SiteID) *shardBreaker {
	h.mu.RLock()
	b := h.breakers[id]
	h.mu.RUnlock()
	return b
}

// anyDown reports whether at least one breaker is open; the routing hot path
// uses it to keep the all-healthy case free of health bookkeeping.
func (h *healthTracker) anyDown() bool { return h.nDown.Load() > 0 }

// isDown reports whether the shard's breaker is open.
func (h *healthTracker) isDown(id cloud.SiteID) bool {
	b := h.breaker(id)
	return b != nil && b.down.Load()
}

// downShards returns the shards whose breakers are currently open, in no
// particular order.
func (h *healthTracker) downShards() []cloud.SiteID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []cloud.SiteID
	for id, b := range h.breakers {
		if b.down.Load() {
			out = append(out, id)
		}
	}
	return out
}

// reportSuccess records that an operation on the shard got an answer (even an
// application error), resetting its consecutive-failure count.
func (h *healthTracker) reportSuccess(id cloud.SiteID) {
	b := h.breaker(id)
	if b == nil || b.fails.Load() == 0 {
		return // fast path: healthy shard, nothing to reset
	}
	b.fails.Store(0)
}

// reportFailure records one transport failure on the shard; reaching the
// threshold opens the breaker and starts the probe loop.
func (h *healthTracker) reportFailure(id cloud.SiteID) {
	b := h.breaker(id)
	if b == nil {
		return
	}
	if b.fails.Add(1) >= int32(h.threshold) {
		h.markDown(id)
	}
}

// markDown opens the shard's breaker immediately, regardless of the failure
// count, and ensures the probe loop is running.
func (h *healthTracker) markDown(id cloud.SiteID) {
	b := h.breaker(id)
	if b == nil || !b.down.CompareAndSwap(false, true) {
		return
	}
	h.nDown.Add(1)
	h.obs.downG.Add(1)
	h.obs.downC.Inc()
	if h.onDown != nil {
		h.onDown(id)
	}
	h.ensureProber()
}

// markUp closes the shard's breaker and notifies the router (re-sync sweep).
// It is the probe loop's recovery path and the manual override for tests and
// operators.
func (h *healthTracker) markUp(id cloud.SiteID) {
	b := h.breaker(id)
	if b == nil || !b.down.Load() {
		return
	}
	if h.preRecover != nil {
		h.preRecover(id)
	}
	if !b.down.CompareAndSwap(true, false) {
		// Lost a race against another markUp; undo our preRecover.
		if h.abortRecover != nil {
			h.abortRecover()
		}
		return
	}
	b.fails.Store(0)
	h.nDown.Add(-1)
	h.obs.downG.Add(-1)
	h.obs.upC.Inc()
	if h.postRecover != nil {
		h.postRecover(id)
	}
}

// ensureProber starts the background probe loop if it is not already
// running. The loop lives only while breakers are open: it exits once every
// shard is healthy again, so routers in healthy tiers own no goroutine.
func (h *healthTracker) ensureProber() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.proberUp || h.closed || h.probe == nil {
		return
	}
	h.proberUp = true
	go h.probeLoop()
}

// probeLoop re-probes down shards every probeInterval, closing breakers of
// shards that answer. It exits when no breaker is open or the tracker is
// closed; the exit check holds the lifecycle lock so a markDown racing the
// exit starts a fresh loop instead of being missed.
func (h *healthTracker) probeLoop() {
	ticker := time.NewTicker(h.probeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			h.mu.Lock()
			h.proberUp = false
			h.mu.Unlock()
			return
		case <-ticker.C:
		}
		for _, id := range h.downShards() {
			h.obs.probes.Inc()
			if h.probe(id) {
				h.markUp(id)
			} else {
				h.obs.probeFails.Inc()
			}
		}
		h.mu.Lock()
		if h.nDown.Load() == 0 || h.closed {
			h.proberUp = false
			h.mu.Unlock()
			return
		}
		h.mu.Unlock()
	}
}

// close stops the probe loop. Idempotent.
func (h *healthTracker) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.stop)
}
