package registry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/feed"
	"geomds/internal/memcache"
	"geomds/internal/store"
)

// This file wires the change-feed layer (internal/feed) into the registry.
//
// An Instance built with WithChangeFeed publishes every committed put and
// delete as a sequenced feed.Event. Durable instances tap the WAL itself —
// store.Durable invokes the sink under its mutation mutex, so feed order is
// exactly log order and the WAL sequence numbers double as resume tokens
// that survive restarts (the feed starts at the recovered sequence, so
// pre-restart cursors fall below the floor and trigger the snapshot
// fallback). Memory-only instances route mutations through a serializing
// tap that assigns its own consecutive sequence.
//
// A Router whose shards all expose feeds relays them into one combined,
// re-sequenced feed: per-shard order is preserved, events are tagged with
// their origin shard, and commit timestamps pass through so replication lag
// measured downstream spans the whole pipeline. Because migration sweeps
// move entries with ordinary Merge/DeleteMany calls on the shard stores, a
// membership change surfaces in the combined feed as put events at a key's
// new home shard followed by delete events at its old home — a watch keeps
// seeing the key across AddShard/RemoveShard instead of silently losing it
// (see TestRouterFeedAcrossRebalance for the rule).

// ChangeFeeder is implemented by registry deployments that expose a change
// feed: *Instance (with WithChangeFeed) and *Router (when every shard
// feeds). The RPC server serves Watch frames from any API implementing it.
type ChangeFeeder interface {
	// ChangeFeed returns the live feed log, nil when feeds are disabled.
	ChangeFeed() *feed.Log
	// FeedSnapshot returns the current state as synthetic put events plus
	// the feed head sequence captured *before* reading the state, so
	// tailing from the returned head misses nothing. It backs the
	// cursor-too-old fallback of the watch protocol.
	FeedSnapshot(ctx context.Context) ([]feed.Event, uint64, error)
	// FeedBarrier returns a head sequence that every mutation committed
	// before the call is published at or below, waiting if the feed has
	// asynchronous relay stages (a router's shard pumps) that have not
	// absorbed those commits yet. A consumer whose cursor reaches the
	// returned head has seen everything committed before the barrier.
	FeedBarrier(ctx context.Context) (uint64, error)
}

// Feed assertions.
var (
	_ ChangeFeeder = (*Instance)(nil)
	_ ChangeFeeder = (*Router)(nil)
)

// WithChangeFeed gives the instance a change feed: every committed put and
// delete is published as a sequenced event on ChangeFeed(). Durable
// instances publish under the WAL's own sequence numbers; memory-only ones
// assign an in-memory sequence.
func WithChangeFeed(opts ...feed.LogOption) InstanceOption {
	return func(i *Instance) {
		i.wantFeed = true
		i.feedOpts = opts
	}
}

// finishFeed materializes the feed after every option has been applied (so
// it composes with WithStorage in either order). Called by the
// constructors, never concurrently.
func (i *Instance) finishFeed() {
	if !i.wantFeed || i.feedLog != nil {
		return
	}
	log := feed.NewLog(i.feedOpts...)
	if i.durable != nil {
		// The WAL assigns the sequence numbers; the feed starts at the
		// recovered high-water mark so cursors from before the restart are
		// correctly reported as compacted.
		log.StartAt(i.durable.Seq())
		i.durable.SetEventSink(func(seq uint64, op byte, key string, value []byte, sync bool) {
			ev := feed.Event{Seq: seq, Op: feed.OpPut, Name: key, Value: value, Sync: sync}
			if op == store.OpDelete {
				ev.Op = feed.OpDelete
				ev.Value = nil
			}
			log.Publish(ev)
		})
	} else {
		i.store = &tapStore{backing: i.store, log: log}
	}
	i.feedLog = log
}

// ChangeFeed returns the instance's feed log, nil when WithChangeFeed was
// not used.
func (i *Instance) ChangeFeed() *feed.Log { return i.feedLog }

// FeedBarrier implements ChangeFeeder: an instance publishes synchronously
// with the commit, so the current head already covers everything committed.
func (i *Instance) FeedBarrier(ctx context.Context) (uint64, error) {
	if i.feedLog == nil {
		return 0, fmt.Errorf("registry: instance at site %d has no change feed", i.site)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return i.feedLog.Seq(), nil
}

// FeedSnapshot implements ChangeFeeder: the instance's current entries as
// put events, plus the feed head captured before the state was read. Events
// racing the snapshot may appear both in the state and in the tail — safe,
// because puts are idempotent upserts.
func (i *Instance) FeedSnapshot(ctx context.Context) ([]feed.Event, uint64, error) {
	if i.feedLog == nil {
		return nil, 0, fmt.Errorf("registry: instance at site %d has no change feed", i.site)
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	head := i.feedLog.Seq()
	items := i.store.Snapshot()
	now := time.Now().UnixNano()
	events := make([]feed.Event, 0, len(items))
	for _, it := range items {
		events = append(events, feed.Event{Seq: head, Op: feed.OpPut, Name: it.Key, Value: it.Value, Commit: now})
	}
	return events, head, nil
}

// tapStore wraps a memory-only Store so that mutations are serialized and
// published to the feed with self-assigned sequence numbers — the in-memory
// equivalent of the WAL's mutation mutex. Reads bypass the tap entirely.
type tapStore struct {
	backing Store
	mu      sync.Mutex
	log     *feed.Log
}

func (t *tapStore) Get(key string) (memcache.Item, error) { return t.backing.Get(key) }
func (t *tapStore) Contains(key string) bool              { return t.backing.Contains(key) }
func (t *tapStore) Keys() []string                        { return t.backing.Keys() }
func (t *tapStore) Snapshot() []memcache.Item             { return t.backing.Snapshot() }
func (t *tapStore) Len() int                              { return t.backing.Len() }
func (t *tapStore) Stats() memcache.Stats                 { return t.backing.Stats() }
func (t *tapStore) GetBatch(keys []string) ([]memcache.Item, []string, error) {
	return t.backing.GetBatch(keys)
}

func (t *tapStore) Put(key string, value []byte, ttl time.Duration) (memcache.Item, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	it, err := t.backing.Put(key, value, ttl)
	if err == nil {
		t.log.Append(feed.OpPut, key, value)
	}
	return it, err
}

func (t *tapStore) CAS(key string, value []byte, ttl time.Duration, expectedVersion uint64) (memcache.Item, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	it, err := t.backing.CAS(key, value, ttl, expectedVersion)
	if err == nil {
		// A version conflict published nothing: only committed writes feed.
		t.log.Append(feed.OpPut, key, value)
	}
	return it, err
}

func (t *tapStore) Delete(key string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.backing.Delete(key)
	if err == nil {
		t.log.Append(feed.OpDelete, key, nil)
	}
	return err
}

func (t *tapStore) PutBatch(kvs []memcache.KV) ([]memcache.Item, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	items, err := t.backing.PutBatch(kvs)
	if err == nil {
		for _, kv := range kvs {
			// The batch path is the bulk-apply side (Merge): mark the events
			// Sync so feed-driven replication agents recognize their own
			// applies coming back and do not re-broadcast them.
			t.log.Publish(feed.Event{Op: feed.OpPut, Name: kv.Key, Value: kv.Value, Sync: true})
		}
	}
	return items, err
}

func (t *tapStore) DeleteBatch(keys []string) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Like the WAL sink, only deletes that change state publish events —
	// replication consumers re-applying a delete everywhere must quiesce,
	// not echo forever.
	existed := make([]bool, len(keys))
	for idx, k := range keys {
		existed[idx] = t.backing.Contains(k)
	}
	n, err := t.backing.DeleteBatch(keys)
	if err == nil {
		for idx, k := range keys {
			if existed[idx] {
				t.log.Publish(feed.Event{Op: feed.OpDelete, Name: k, Sync: true})
			}
		}
	}
	return n, err
}

// --- Router: the combined, re-sequenced relay feed over its shards. ---

// relayTap pumps one shard's feed into the router's relay log.
type relayTap struct {
	cancel context.CancelFunc
	comb   *feed.Combiner
	done   chan struct{}
	feeder ChangeFeeder
	// relayed is the last shard sequence published into the relay; the
	// router's FeedBarrier waits on it to know the asynchronous pump has
	// absorbed everything committed on the shard.
	relayed atomic.Uint64
}

// initRelay enables the router's combined feed when every initial shard
// exposes one. Called from NewRouter before the router is shared.
func (r *Router) initRelay(shards map[cloud.SiteID]API) {
	for _, api := range shards {
		f, ok := api.(ChangeFeeder)
		if !ok || f.ChangeFeed() == nil {
			return
		}
	}
	r.relay = feed.NewLog()
	r.taps = make(map[cloud.SiteID]*relayTap, len(shards))
	for id, api := range shards {
		r.startTap(id, api)
	}
}

// ChangeFeed returns the router's combined relay feed: every shard's events
// re-sequenced into one log, tagged with their origin shard and preserving
// commit timestamps. Nil when any shard lacks a feed.
func (r *Router) ChangeFeed() *feed.Log { return r.relay }

// FeedSnapshot implements ChangeFeeder for the tier: the union of the
// reachable shards' states (one event per name — with replication a key
// lives on R shards, the relay snapshot carries it once), plus the relay
// head captured first.
func (r *Router) FeedSnapshot(ctx context.Context) ([]feed.Event, uint64, error) {
	if r.relay == nil {
		return nil, 0, fmt.Errorf("registry: router for site %d has no change feed", r.site)
	}
	head := r.relay.Seq()
	seen := make(map[string]bool)
	var events []feed.Event
	for id, api := range r.reachableShards() {
		f, ok := api.(ChangeFeeder)
		if !ok {
			continue
		}
		shardEvents, _, err := f.FeedSnapshot(ctx)
		if err != nil {
			return nil, 0, fmt.Errorf("registry: snapshotting shard %d: %w", id, err)
		}
		for _, ev := range shardEvents {
			if seen[ev.Name] {
				continue
			}
			seen[ev.Name] = true
			ev.Seq = head
			ev.Origin = fmt.Sprintf("shard-%d", id)
			events = append(events, ev)
		}
	}
	return events, head, nil
}

// FeedBarrier implements ChangeFeeder for the tier. The shard→relay pumps
// are asynchronous, so the relay head alone can trail committed shard
// mutations; the barrier first waits for every pump to absorb its shard's
// current head, then returns the relay head.
func (r *Router) FeedBarrier(ctx context.Context) (uint64, error) {
	if r.relay == nil {
		return 0, fmt.Errorf("registry: router for site %d has no change feed", r.site)
	}
	r.tapMu.Lock()
	taps := make([]*relayTap, 0, len(r.taps))
	for _, tap := range r.taps {
		taps = append(taps, tap)
	}
	r.tapMu.Unlock()
	for _, tap := range taps {
		target := tap.feeder.ChangeFeed().Seq()
		for tap.relayed.Load() < target {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-tap.done:
				// Pump torn down (shard removed mid-barrier): whatever it
				// relayed is all the relay will ever carry from it.
				target = 0
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
	return r.relay.Seq(), nil
}

// startTap launches the relay pump for one shard. The pump rides a
// single-source Combiner, so a shard that restarts (durable recovery) or
// drops the subscription is resubscribed automatically, falling back to a
// state snapshot when its cursor compacted away.
func (r *Router) startTap(id cloud.SiteID, api API) {
	feeder, ok := api.(ChangeFeeder)
	if !ok || r.relay == nil {
		return
	}
	label := fmt.Sprintf("shard-%d", id)
	comb := feed.NewCombiner([]feed.Source{{
		Name: label,
		Subscribe: func(ctx context.Context, from uint64) (feed.Stream, error) {
			return feeder.ChangeFeed().Subscribe(from)
		},
		Snapshot: feeder.FeedSnapshot,
	}})
	ctx, cancel := context.WithCancel(context.Background())
	comb.Start(ctx)
	tap := &relayTap{cancel: cancel, comb: comb, done: make(chan struct{}), feeder: feeder}
	go func() {
		defer close(tap.done)
		for ev := range comb.Events() {
			r.relay.Publish(feed.Event{
				Op:     ev.Op,
				Name:   ev.Name,
				Value:  ev.Value,
				Origin: label,
				Commit: ev.Commit,
				Sync:   ev.Sync,
			})
			tap.relayed.Store(ev.Seq)
		}
	}()
	r.tapMu.Lock()
	r.taps[id] = tap
	r.tapMu.Unlock()
}

// stopTap tears one shard's relay pump down, draining its pending events
// into the relay first. Idempotent.
func (r *Router) stopTap(id cloud.SiteID) {
	r.tapMu.Lock()
	tap := r.taps[id]
	delete(r.taps, id)
	r.tapMu.Unlock()
	if tap == nil {
		return
	}
	tap.cancel()
	tap.comb.Close()
	<-tap.done
}

// closeRelay stops every tap and closes the combined feed. Idempotent.
func (r *Router) closeRelay() {
	if r.relay == nil {
		return
	}
	r.tapMu.Lock()
	ids := make([]cloud.SiteID, 0, len(r.taps))
	for id := range r.taps {
		ids = append(ids, id)
	}
	r.tapMu.Unlock()
	for _, id := range ids {
		r.stopTap(id)
	}
	r.relay.Close()
}
