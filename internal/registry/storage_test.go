package registry

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/memcache"
	"geomds/internal/metrics"
	"geomds/internal/store"
)

// restartableShard wraps a shard whose backing process can be killed and
// later replaced by a fresh instance recovered from the same data
// directory — the in-process model of `kill -9` plus restart. While dead,
// every operation answers a transport failure wrapping ErrUnavailable.
type restartableShard struct {
	mu    sync.RWMutex
	inner API
	dead  atomic.Bool
}

func (s *restartableShard) kill() { s.dead.Store(true) }

// restart installs the recovered replacement instance and marks the shard
// answering again.
func (s *restartableShard) restart(inner API) {
	s.mu.Lock()
	s.inner = inner
	s.mu.Unlock()
	s.dead.Store(false)
}

func (s *restartableShard) api() (API, error) {
	if s.dead.Load() {
		return nil, errShardDown
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner, nil
}

// DurableSeq forwards Recoverable to the current inner instance. It keeps
// answering while the shard is dead — the router samples it from the
// in-process handle when the breaker opens, before the "process" is gone.
func (s *restartableShard) DurableSeq() (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rec, ok := s.inner.(Recoverable); ok {
		return rec.DurableSeq()
	}
	return 0, false
}

func (s *restartableShard) Site() cloud.SiteID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Site()
}

func (s *restartableShard) Create(ctx context.Context, e Entry) (Entry, error) {
	api, err := s.api()
	if err != nil {
		return Entry{}, err
	}
	return api.Create(ctx, e)
}

func (s *restartableShard) Put(ctx context.Context, e Entry) (Entry, error) {
	api, err := s.api()
	if err != nil {
		return Entry{}, err
	}
	return api.Put(ctx, e)
}

func (s *restartableShard) Get(ctx context.Context, name string) (Entry, error) {
	api, err := s.api()
	if err != nil {
		return Entry{}, err
	}
	return api.Get(ctx, name)
}

func (s *restartableShard) Contains(ctx context.Context, name string) bool {
	api, err := s.api()
	if err != nil {
		return false
	}
	return api.Contains(ctx, name)
}

func (s *restartableShard) AddLocation(ctx context.Context, name string, loc Location) (Entry, error) {
	api, err := s.api()
	if err != nil {
		return Entry{}, err
	}
	return api.AddLocation(ctx, name, loc)
}

func (s *restartableShard) Delete(ctx context.Context, name string) error {
	api, err := s.api()
	if err != nil {
		return err
	}
	return api.Delete(ctx, name)
}

func (s *restartableShard) Names(ctx context.Context) []string {
	api, err := s.api()
	if err != nil {
		return nil
	}
	return api.Names(ctx)
}

func (s *restartableShard) Entries(ctx context.Context) ([]Entry, error) {
	api, err := s.api()
	if err != nil {
		return nil, err
	}
	return api.Entries(ctx)
}

func (s *restartableShard) GetMany(ctx context.Context, names []string) ([]Entry, error) {
	api, err := s.api()
	if err != nil {
		return nil, err
	}
	return api.GetMany(ctx, names)
}

func (s *restartableShard) PutMany(ctx context.Context, entries []Entry) ([]Entry, error) {
	api, err := s.api()
	if err != nil {
		return nil, err
	}
	return api.PutMany(ctx, entries)
}

func (s *restartableShard) DeleteMany(ctx context.Context, names []string) (int, error) {
	api, err := s.api()
	if err != nil {
		return 0, err
	}
	return api.DeleteMany(ctx, names)
}

func (s *restartableShard) Merge(ctx context.Context, entries []Entry) (int, error) {
	api, err := s.api()
	if err != nil {
		return 0, err
	}
	return api.Merge(ctx, entries)
}

func (s *restartableShard) Len(ctx context.Context) int {
	api, err := s.api()
	if err != nil {
		return 0
	}
	return api.Len(ctx)
}

// openDurableShard opens a persistent instance over dir with the given
// fsync policy.
func openDurableShard(t *testing.T, site cloud.SiteID, dir string, opts ...store.Option) *Instance {
	t.Helper()
	inst, err := OpenInstance(site, memcache.New(memcache.Config{}), dir, opts)
	if err != nil {
		t.Fatalf("OpenInstance(%s): %v", dir, err)
	}
	return inst
}

func TestInstanceStorageRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	inst := openDurableShard(t, 3, dir)
	if _, ok := inst.DurableSeq(); !ok {
		t.Fatal("DurableSeq() not ok for a persistent instance")
	}

	for i := 0; i < 5; i++ {
		if _, err := inst.Create(ctx, NewEntry(fmt.Sprintf("f/%d", i), 100, "p", Location{Site: 3, Node: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inst.AddLocation(ctx, "f/1", Location{Site: 3, Node: 9}); err != nil {
		t.Fatal(err)
	}
	if err := inst.Delete(ctx, "f/4"); err != nil {
		t.Fatal(err)
	}
	seq, _ := inst.DurableSeq()
	if err := inst.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := openDurableShard(t, 3, dir)
	defer re.Close()
	if got, _ := re.DurableSeq(); got != seq {
		t.Errorf("recovered DurableSeq = %d, want %d", got, seq)
	}
	if n := re.Len(ctx); n != 4 {
		t.Errorf("recovered Len = %d, want 4", n)
	}
	e, err := re.Get(ctx, "f/1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Locations) != 2 {
		t.Errorf("f/1 recovered with %d locations, want 2", len(e.Locations))
	}
	if _, err := re.Get(ctx, "f/4"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted f/4 resurrected by recovery: %v", err)
	}
}

// TestInstanceCloseLosslessRelaxedFsync pins the close-path fix at the
// registry level: with FsyncNever nothing on the write path syncs, yet
// Close must flush and fsync so a clean shutdown loses nothing.
func TestInstanceCloseLosslessRelaxedFsync(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	inst := openDurableShard(t, 3, dir, store.WithFsync(store.FsyncNever))
	for i := 0; i < 50; i++ {
		if _, err := inst.Create(ctx, NewEntry(fmt.Sprintf("f/%d", i), 100, "p", Location{Site: 3, Node: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if st := inst.Storage().LogStats(); st.Syncs != 0 {
		t.Fatalf("FsyncNever write path issued %d syncs, want 0", st.Syncs)
	}
	if err := inst.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := inst.Storage().LogStats(); st.Syncs == 0 {
		t.Error("Close did not fsync the log")
	}
	if _, err := inst.Put(ctx, NewEntry("late", 1, "p", Location{Site: 3, Node: 1})); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Put after Close = %v, want store.ErrClosed", err)
	}

	re := openDurableShard(t, 3, dir, store.WithFsync(store.FsyncNever))
	defer re.Close()
	if n := re.Len(ctx); n != 50 {
		t.Errorf("reopen after relaxed-fsync Close: Len = %d, want 50", n)
	}
}

func TestNewInstancePanicsOnStorageFailure(t *testing.T) {
	// A regular file where the data directory should go makes store.Open
	// fail; NewInstance must refuse to construct a half-open instance.
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewInstance with failing WithStorage did not panic")
		}
	}()
	NewInstance(3, memcache.New(memcache.Config{}), WithStorage(filepath.Join(path, "sub")))
}

// newDurableRouter builds a replicated router over restartable persistent
// shards, one data subdirectory per shard.
func newDurableRouter(t *testing.T, n, rep int, dir string) (*Router, []*restartableShard, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	shards := make([]*restartableShard, n)
	apis := make([]API, n)
	for i := range apis {
		inst := openDurableShard(t, 7, filepath.Join(dir, fmt.Sprintf("shard-%d", i)))
		t.Cleanup(func() { inst.Close() })
		shards[i] = &restartableShard{inner: inst}
		apis[i] = shards[i]
	}
	r, err := NewRouter(7, apis,
		WithRouterReplication(rep),
		WithRouterHealth(2, 10*time.Millisecond),
		WithRouterMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, shards, reg
}

// TestRouterDeltaRepairAfterRestart is the recovery story end to end: a
// persistent shard is killed, the tier keeps writing and deleting around
// it, the shard restarts from its own data directory, and the router
// repairs it with a delta — not a full sweep — after which the shard serves
// its range from local state: pre-outage entries recovered from disk,
// outage writes merged in, outage deletions honoured.
func TestRouterDeltaRepairAfterRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	r, shards, reg := newDurableRouter(t, 4, 2, dir)
	const victim = cloud.SiteID(2)

	// Pick victim-primary names to exercise every delta case, then preload
	// them along with background entries.
	victimNames := namesWithPrimary(t, r, victim, "pre", 3)
	preload := make([]Entry, 0, 51)
	seen := make(map[string]bool, 3)
	for _, name := range victimNames {
		seen[name] = true
		preload = append(preload, NewEntry(name, 100, "p", Location{Site: 7, Node: 1}))
	}
	for i := 0; i < 48; i++ {
		if name := fmt.Sprintf("pre/%d", i); !seen[name] {
			preload = append(preload, NewEntry(name, 100, "p", Location{Site: 7, Node: 1}))
		}
	}
	if _, err := r.PutMany(ctx, preload); err != nil {
		t.Fatal(err)
	}
	toDelete, toUpdate := victimNames[0], victimNames[1]

	// Kill the shard; the breaker opens and samples its durable seq.
	shards[victim].kill()
	r.MarkShardDown(victim)

	// The tier keeps serving: new entries, an update and a deletion — all
	// routed around the dead shard, all noted as the outage delta.
	for i := 0; i < 16; i++ {
		if _, err := r.Create(ctx, NewEntry(fmt.Sprintf("during/%d", i), 100, "p", Location{Site: 7, Node: 2})); err != nil {
			t.Fatalf("write during outage: %v", err)
		}
	}
	if _, err := r.AddLocation(ctx, toUpdate, Location{Site: 7, Node: 9}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(ctx, toDelete); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh instance recovers the shard's pre-outage state from
	// its data directory, and the router runs the delta repair.
	recovered := openDurableShard(t, 7, filepath.Join(dir, fmt.Sprintf("shard-%d", victim)))
	t.Cleanup(func() { recovered.Close() })
	if seq, ok := recovered.DurableSeq(); !ok || seq == 0 {
		t.Fatalf("restarted shard recovered nothing (seq %d, ok %v)", seq, ok)
	}
	shards[victim].restart(recovered)
	r.MarkShardUp(victim)
	r.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["router_delta_repairs_total"]; got != 1 {
		t.Errorf("router_delta_repairs_total = %d, want 1", got)
	}
	if got := snap.Counters["router_sweeps_total"]; got != 0 {
		t.Errorf("router_sweeps_total = %d, want 0 (recovery must not fall back to a full sweep)", got)
	}
	// Repair traffic is bounded by the outage delta (16 creates + 1 update),
	// nowhere near the full tier (48 preloaded x 2 replicas).
	if got := snap.Counters["router_repaired_entries_total"]; got > 17 {
		t.Errorf("router_repaired_entries_total = %d, want <= 17 (delta, not full resync)", got)
	}

	// The restarted shard answers from local state, queried directly.
	if _, err := recovered.Get(ctx, toUpdate); err != nil {
		t.Errorf("restarted shard lost recovered entry %q: %v", toUpdate, err)
	}
	if _, err := recovered.Get(ctx, toDelete); !errors.Is(err, ErrNotFound) {
		t.Errorf("outage deletion of %q not applied to restarted shard: %v", toDelete, err)
	}
	e, err := recovered.Get(ctx, victimNames[2])
	if err != nil {
		t.Errorf("restarted shard lost recovered entry %q: %v", victimNames[2], err)
	} else if len(e.Locations) != 1 {
		t.Errorf("%q recovered with %d locations, want 1", victimNames[2], len(e.Locations))
	}
	if ue, err := recovered.Get(ctx, toUpdate); err == nil && len(ue.Locations) != 2 {
		t.Errorf("outage update of %q not repaired: %d locations, want 2", toUpdate, len(ue.Locations))
	}

	// And the tier as a whole converged: every live entry readable, the
	// deleted one gone.
	for i := 0; i < 16; i++ {
		if _, err := r.Get(ctx, fmt.Sprintf("during/%d", i)); err != nil {
			t.Errorf("outage write during/%d lost: %v", i, err)
		}
	}
	if _, err := r.Get(ctx, toDelete); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted %q still readable through the router: %v", toDelete, err)
	}
}

// TestRouterFullSweepWhenRecoveryLosesState: a shard that restarts *empty*
// (its data directory gone — the disk died with the process) reports a
// lower sequence number than it went down with; the delta is unsound and
// the router must fall back to the full re-sync sweep.
func TestRouterFullSweepWhenRecoveryLosesState(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	r, shards, reg := newDurableRouter(t, 4, 2, dir)
	const victim = cloud.SiteID(1)

	var preload []Entry
	for i := 0; i < 32; i++ {
		preload = append(preload, NewEntry(fmt.Sprintf("pre/%d", i), 100, "p", Location{Site: 7, Node: 1}))
	}
	if _, err := r.PutMany(ctx, preload); err != nil {
		t.Fatal(err)
	}

	shards[victim].kill()
	r.MarkShardDown(victim)
	if _, err := r.Create(ctx, NewEntry("during/0", 100, "p", Location{Site: 7, Node: 2})); err != nil {
		t.Fatal(err)
	}

	// Restart from a brand-new directory: everything is lost.
	empty := openDurableShard(t, 7, filepath.Join(dir, "replacement-disk"))
	t.Cleanup(func() { empty.Close() })
	shards[victim].restart(empty)
	r.MarkShardUp(victim)
	r.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["router_delta_repairs_total"]; got != 0 {
		t.Errorf("router_delta_repairs_total = %d, want 0 (lost state must not take the delta path)", got)
	}
	if got := snap.Counters["router_sweeps_total"]; got == 0 {
		t.Error("no full sweep ran for a shard that lost its state")
	}
	// The sweep made the empty shard whole again.
	for i := 0; i < 32; i++ {
		if _, err := r.Get(ctx, fmt.Sprintf("pre/%d", i)); err != nil {
			t.Errorf("pre/%d unreadable after recovery sweep: %v", i, err)
		}
	}
}

// TestRouterFullSweepForMemoryShards pins the compatibility contract:
// memory-only shards (no Recoverable) keep the pre-existing full-sweep
// recovery exactly as before, and the delta counter stays untouched.
func TestRouterFullSweepForMemoryShards(t *testing.T) {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	r, kills, _ := newReplicatedRouter(t, 4, 2, WithRouterMetrics(reg))
	if _, err := r.Create(ctx, NewEntry("a", 100, "p", Location{Site: 7, Node: 1})); err != nil {
		t.Fatal(err)
	}
	kills[2].kill()
	r.MarkShardDown(2)
	kills[2].revive()
	r.MarkShardUp(2)
	r.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["router_delta_repairs_total"]; got != 0 {
		t.Errorf("router_delta_repairs_total = %d, want 0 for memory-only shards", got)
	}
	if got := snap.Counters["router_resync_sweeps_total"]; got != 1 {
		t.Errorf("router_resync_sweeps_total = %d, want 1", got)
	}
	if got := snap.Counters["router_sweeps_total"]; got == 0 {
		t.Error("memory-only recovery did not run the full sweep")
	}
}
