package registry

import (
	"context"

	"geomds/internal/cloud"
)

// API is the operation set the multi-site metadata strategies require from a
// registry instance. It is satisfied both by the in-process *Instance (the
// instance co-located with the strategy logic, used by simulations and
// benchmarks) and by the rpc.Client remote proxy (a registry instance running
// as a separate process, reached over TCP), so the same strategy code drives
// either deployment.
//
// Every operation takes a context.Context as its first parameter. The context
// carries per-operation deadlines and cancellation: a caller that gives up —
// because its own client disconnected, its deadline passed, or its service is
// shutting down — unblocks immediately instead of waiting out a slow or
// partitioned instance. Implementations must return promptly with an error
// wrapping ctx.Err() once the context is done; the remote proxy additionally
// propagates the deadline over the wire so the server can abandon work whose
// client has given up. Site is exempt: it is a static attribute of the
// instance, resolved at construction (or dial) time, not an operation.
type API interface {
	// Site returns the datacenter this instance serves. It is a static
	// attribute, not a remote operation, and therefore takes no context.
	Site() cloud.SiteID
	// Create publishes a new entry, failing with ErrExists if the name is taken.
	Create(ctx context.Context, e Entry) (Entry, error)
	// Put stores the entry unconditionally (upsert).
	Put(ctx context.Context, e Entry) (Entry, error)
	// Get returns the entry stored under name, or ErrNotFound.
	Get(ctx context.Context, name string) (Entry, error)
	// Contains reports whether an entry with the given name exists. It is
	// best-effort: a cancelled context or transport failure reads as "absent".
	Contains(ctx context.Context, name string) bool
	// AddLocation records an additional copy of the named file.
	AddLocation(ctx context.Context, name string, loc Location) (Entry, error)
	// Delete removes the entry stored under name.
	Delete(ctx context.Context, name string) error
	// Names lists the names of all stored entries (best-effort: empty on a
	// cancelled context or transport failure).
	Names(ctx context.Context) []string
	// Entries returns every stored entry.
	Entries(ctx context.Context) ([]Entry, error)
	// GetMany returns the entries stored under the given names, skipping
	// absent ones; it is the bulk pull used by the synchronization agent.
	GetMany(ctx context.Context, names []string) ([]Entry, error)
	// PutMany upserts the whole batch in one bulk operation, returning the
	// stored entries in input order; it is the bulk push used by the
	// synchronization agent.
	PutMany(ctx context.Context, entries []Entry) ([]Entry, error)
	// DeleteMany removes the named entries in one bulk operation, skipping
	// absent ones, and returns how many were present; it is how deletions
	// are propagated between sites.
	DeleteMany(ctx context.Context, names []string) (int, error)
	// Merge upserts a batch of entries, unioning locations, and returns how
	// many entries were applied.
	Merge(ctx context.Context, entries []Entry) (int, error)
	// Len returns the number of stored entries (best-effort: zero on a
	// cancelled context or transport failure).
	Len(ctx context.Context) int
}

// Instance implements API.
var _ API = (*Instance)(nil)
