package registry

import "geomds/internal/cloud"

// API is the operation set the multi-site metadata strategies require from a
// registry instance. It is satisfied both by the in-process *Instance (the
// instance co-located with the strategy logic, used by simulations and
// benchmarks) and by the rpc.Client remote proxy (a registry instance running
// as a separate process, reached over TCP), so the same strategy code drives
// either deployment.
type API interface {
	// Site returns the datacenter this instance serves.
	Site() cloud.SiteID
	// Create publishes a new entry, failing with ErrExists if the name is taken.
	Create(e Entry) (Entry, error)
	// Put stores the entry unconditionally (upsert).
	Put(e Entry) (Entry, error)
	// Get returns the entry stored under name, or ErrNotFound.
	Get(name string) (Entry, error)
	// Contains reports whether an entry with the given name exists.
	Contains(name string) bool
	// AddLocation records an additional copy of the named file.
	AddLocation(name string, loc Location) (Entry, error)
	// Delete removes the entry stored under name.
	Delete(name string) error
	// Names lists the names of all stored entries.
	Names() []string
	// Entries returns every stored entry.
	Entries() ([]Entry, error)
	// GetMany returns the entries stored under the given names, skipping
	// absent ones; it is the bulk pull used by the synchronization agent.
	GetMany(names []string) ([]Entry, error)
	// PutMany upserts the whole batch in one bulk operation, returning the
	// stored entries in input order; it is the bulk push used by the
	// synchronization agent.
	PutMany(entries []Entry) ([]Entry, error)
	// DeleteMany removes the named entries in one bulk operation, skipping
	// absent ones, and returns how many were present; it is how deletions
	// are propagated between sites.
	DeleteMany(names []string) (int, error)
	// Merge upserts a batch of entries, unioning locations, and returns how
	// many entries were applied.
	Merge(entries []Entry) (int, error)
	// Len returns the number of stored entries.
	Len() int
}

// Instance implements API.
var _ API = (*Instance)(nil)
