package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"geomds/internal/cloud"
	"geomds/internal/memcache"
)

var tctx = context.Background()

func newTestInstance(opts ...InstanceOption) *Instance {
	return NewInstance(0, memcache.New(memcache.Config{}), opts...)
}

func TestInstanceCreateGet(t *testing.T) {
	inst := newTestInstance()
	e := sampleEntry()
	stored, err := inst.Create(tctx, e)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if stored.Version == 0 {
		t.Error("Create should assign a version")
	}
	got, err := inst.Get(tctx, e.Name)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !got.Equal(e) {
		t.Errorf("Get = %+v, want %+v", got, e)
	}
	if !inst.Contains(tctx, e.Name) || inst.Len(tctx) != 1 {
		t.Error("Contains/Len inconsistent after Create")
	}
	if inst.Site() != 0 {
		t.Errorf("Site = %d, want 0", inst.Site())
	}
}

func TestInstanceCreateDuplicate(t *testing.T) {
	inst := newTestInstance()
	e := sampleEntry()
	if _, err := inst.Create(tctx, e); err != nil {
		t.Fatalf("first Create: %v", err)
	}
	if _, err := inst.Create(tctx, e); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create = %v, want ErrExists", err)
	}
}

func TestInstanceCreateInvalid(t *testing.T) {
	inst := newTestInstance()
	if _, err := inst.Create(tctx, Entry{}); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("Create invalid = %v, want ErrInvalidEntry", err)
	}
}

func TestInstanceGetMissing(t *testing.T) {
	inst := newTestInstance()
	if _, err := inst.Get(tctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestInstancePutUpsert(t *testing.T) {
	inst := newTestInstance()
	e := sampleEntry()
	if _, err := inst.Put(tctx, e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	e.Size = 42
	updated, err := inst.Put(tctx, e)
	if err != nil {
		t.Fatalf("Put upsert: %v", err)
	}
	if updated.Version != 2 {
		t.Errorf("upsert version = %d, want 2", updated.Version)
	}
	got, _ := inst.Get(tctx, e.Name)
	if got.Size != 42 {
		t.Errorf("Size = %d, want 42", got.Size)
	}
	if _, err := inst.Put(tctx, Entry{}); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("Put invalid = %v, want ErrInvalidEntry", err)
	}
}

func TestInstanceUpdateAddLocation(t *testing.T) {
	inst := newTestInstance()
	e := sampleEntry()
	inst.Create(tctx, e)
	loc := Location{Site: 2, Node: 11}
	updated, err := inst.AddLocation(tctx, e.Name, loc)
	if err != nil {
		t.Fatalf("AddLocation: %v", err)
	}
	if !updated.HasLocation(loc) {
		t.Error("location not added")
	}
	got, _ := inst.Get(tctx, e.Name)
	if !got.HasLocation(loc) {
		t.Error("location not persisted")
	}
}

func TestInstanceUpdateMissing(t *testing.T) {
	inst := newTestInstance()
	_, err := inst.Update(tctx, "absent", func(e Entry) Entry { return e })
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("Update missing = %v, want ErrNotFound", err)
	}
}

func TestInstanceUpdatePreservesName(t *testing.T) {
	inst := newTestInstance()
	e := sampleEntry()
	inst.Create(tctx, e)
	updated, err := inst.Update(tctx, e.Name, func(cur Entry) Entry {
		cur.Name = "attempted-rename"
		return cur
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if updated.Name != e.Name {
		t.Errorf("Update allowed a rename to %q", updated.Name)
	}
}

func TestInstanceUpdateConcurrent(t *testing.T) {
	inst := NewInstance(0, memcache.New(memcache.Config{}), WithCASRetries(64))
	e := sampleEntry()
	inst.Create(tctx, e)
	const writers = 12
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			loc := Location{Site: cloud.SiteID(i % 4), Node: cloud.NodeID(100 + i)}
			if _, err := inst.AddLocation(tctx, e.Name, loc); err != nil {
				t.Errorf("AddLocation %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got, _ := inst.Get(tctx, e.Name)
	// initial location + one per writer
	if len(got.Locations) != writers+1 {
		t.Errorf("Locations = %d, want %d", len(got.Locations), writers+1)
	}
}

func TestInstanceDelete(t *testing.T) {
	inst := newTestInstance()
	e := sampleEntry()
	inst.Create(tctx, e)
	if err := inst.Delete(tctx, e.Name); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := inst.Delete(tctx, e.Name); !errors.Is(err, ErrNotFound) {
		t.Errorf("second Delete = %v, want ErrNotFound", err)
	}
	if inst.Len(tctx) != 0 {
		t.Error("instance should be empty after delete")
	}
}

func TestInstanceEntriesAndNames(t *testing.T) {
	inst := newTestInstance()
	for i := 0; i < 5; i++ {
		e := NewEntry(fmt.Sprintf("file-%d", i), int64(i), "t", Location{Site: 0, Node: cloud.NodeID(i)})
		if _, err := inst.Create(tctx, e); err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
	}
	if len(inst.Names(tctx)) != 5 {
		t.Errorf("Names = %d, want 5", len(inst.Names(tctx)))
	}
	entries, err := inst.Entries(tctx)
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(entries) != 5 {
		t.Errorf("Entries = %d, want 5", len(entries))
	}
	for _, e := range entries {
		if e.Version == 0 {
			t.Error("Entries should carry stored versions")
		}
	}
}

func TestInstanceMerge(t *testing.T) {
	src := newTestInstance()
	dst := newTestInstance()
	for i := 0; i < 3; i++ {
		e := NewEntry(fmt.Sprintf("f%d", i), 10, "t", Location{Site: 0, Node: cloud.NodeID(i)})
		src.Create(tctx, e)
	}
	// dst already has f0 with a different location: locations must be unioned.
	dst.Create(tctx, NewEntry("f0", 10, "t", Location{Site: 1, Node: 99}))

	entries, _ := src.Entries(tctx)
	applied, err := dst.Merge(tctx, entries)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if applied != 3 {
		t.Errorf("applied = %d, want 3", applied)
	}
	if dst.Len(tctx) != 3 {
		t.Errorf("dst has %d entries, want 3", dst.Len(tctx))
	}
	f0, _ := dst.Get(tctx, "f0")
	if len(f0.Locations) != 2 {
		t.Errorf("f0 locations = %d, want union of 2", len(f0.Locations))
	}

	// Merging the same batch again changes nothing.
	applied, err = dst.Merge(tctx, entries)
	if err != nil {
		t.Fatalf("second Merge: %v", err)
	}
	if applied != 0 {
		t.Errorf("idempotent merge applied %d, want 0", applied)
	}
}

func TestInstanceMergeInvalid(t *testing.T) {
	dst := newTestInstance()
	if _, err := dst.Merge(tctx, []Entry{{}}); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("Merge invalid = %v, want ErrInvalidEntry", err)
	}
}

func TestInstanceWithJSONCodec(t *testing.T) {
	inst := NewInstance(1, memcache.New(memcache.Config{}), WithCodec(JSONCodec{}))
	e := sampleEntry()
	if _, err := inst.Create(tctx, e); err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := inst.Get(tctx, e.Name)
	if err != nil || !got.Equal(e) {
		t.Errorf("JSON-backed instance round trip failed: %v", err)
	}
}

func TestInstanceOnHACache(t *testing.T) {
	ha := memcache.NewHA(func() *memcache.Cache { return memcache.New(memcache.Config{}) })
	inst := NewInstance(2, ha)
	e := sampleEntry()
	if _, err := inst.Create(tctx, e); err != nil {
		t.Fatalf("Create on HA store: %v", err)
	}
	ha.FailPrimary()
	got, err := inst.Get(tctx, e.Name)
	if err != nil || !got.Equal(e) {
		t.Errorf("entry lost across failover: %v", err)
	}
}
