package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"geomds/internal/cloud"
	"geomds/internal/memcache"
	"geomds/internal/metrics"
)

// newShard returns one in-process shard instance backed by an unbounded,
// zero-service-time cache.
func newShard(site cloud.SiteID) *Instance {
	return NewInstance(site, memcache.New(memcache.Config{}))
}

// newTestRouter builds a router over n fresh in-process shards, returning the
// shard instances keyed by the IDs the router assigned.
func newTestRouter(t *testing.T, n int, opts ...RouterOption) (*Router, map[cloud.SiteID]*Instance) {
	t.Helper()
	insts := make([]*Instance, n)
	apis := make([]API, n)
	for i := range insts {
		insts[i] = newShard(7)
		apis[i] = insts[i]
	}
	r, err := NewRouter(7, apis, opts...)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[cloud.SiteID]*Instance, n)
	for i, inst := range insts {
		byID[cloud.SiteID(i)] = inst
	}
	return r, byID
}

func testEntry(name string) Entry {
	return NewEntry(name, 1024, "router-test", Location{Site: 7, Node: 1})
}

func TestRouterSingleKeyOpsLandOnHomeShard(t *testing.T) {
	ctx := context.Background()
	r, shards := newTestRouter(t, 4)

	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("router/key/%d", i)
		if _, err := r.Create(ctx, testEntry(name)); err != nil {
			t.Fatalf("create %q: %v", name, err)
		}
		home := r.Home(name)
		for id, inst := range shards {
			has := inst.Contains(ctx, name)
			if id == home && !has {
				t.Fatalf("entry %q missing from its home shard %d", name, id)
			}
			if id != home && has {
				t.Fatalf("entry %q leaked onto shard %d (home is %d)", name, id, home)
			}
		}
		got, err := r.Get(ctx, name)
		if err != nil || got.Name != name {
			t.Fatalf("get %q: %v (got %q)", name, err, got.Name)
		}
	}

	// Duplicate create must fail through the router exactly as on an instance.
	if _, err := r.Create(ctx, testEntry("router/key/0")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: want ErrExists, got %v", err)
	}

	// Update and delete route to the same shard.
	if _, err := r.AddLocation(ctx, "router/key/1", Location{Site: 2, Node: 9}); err != nil {
		t.Fatalf("addlocation: %v", err)
	}
	e, err := r.Get(ctx, "router/key/1")
	if err != nil || len(e.Locations) != 2 {
		t.Fatalf("get after addlocation: %v (locations %v)", err, e.Locations)
	}
	if err := r.Delete(ctx, "router/key/1"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := r.Get(ctx, "router/key/1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: want ErrNotFound, got %v", err)
	}
}

// countingShard records how many times each bulk method is invoked, so the
// tests can prove the router issues at most one sub-batch per shard per call
// and never falls back to per-key operations.
type countingShard struct {
	API
	mu    sync.Mutex
	calls map[string]int
}

func newCountingShard(inner API) *countingShard {
	return &countingShard{API: inner, calls: make(map[string]int)}
}

func (c *countingShard) count(m string) {
	c.mu.Lock()
	c.calls[m]++
	c.mu.Unlock()
}

func (c *countingShard) Calls(m string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[m]
}

func (c *countingShard) Get(ctx context.Context, name string) (Entry, error) {
	c.count("Get")
	return c.API.Get(ctx, name)
}

func (c *countingShard) Put(ctx context.Context, e Entry) (Entry, error) {
	c.count("Put")
	return c.API.Put(ctx, e)
}

func (c *countingShard) Delete(ctx context.Context, name string) error {
	c.count("Delete")
	return c.API.Delete(ctx, name)
}

func (c *countingShard) GetMany(ctx context.Context, names []string) ([]Entry, error) {
	c.count("GetMany")
	return c.API.GetMany(ctx, names)
}

func (c *countingShard) PutMany(ctx context.Context, entries []Entry) ([]Entry, error) {
	c.count("PutMany")
	return c.API.PutMany(ctx, entries)
}

func (c *countingShard) DeleteMany(ctx context.Context, names []string) (int, error) {
	c.count("DeleteMany")
	return c.API.DeleteMany(ctx, names)
}

func (c *countingShard) Merge(ctx context.Context, entries []Entry) (int, error) {
	c.count("Merge")
	return c.API.Merge(ctx, entries)
}

// TestRouterBulkOpsIssueOneSubBatchPerShard is the acceptance test for the
// routing tier's batching contract: a bulk call over N shards costs at most
// one sub-batch per shard — never one call per key.
func TestRouterBulkOpsIssueOneSubBatchPerShard(t *testing.T) {
	ctx := context.Background()
	const nShards = 4
	counters := make([]*countingShard, nShards)
	apis := make([]API, nShards)
	for i := range counters {
		counters[i] = newCountingShard(newShard(7))
		apis[i] = counters[i]
	}
	r, err := NewRouter(7, apis)
	if err != nil {
		t.Fatal(err)
	}

	const n = 256
	entries := make([]Entry, n)
	names := make([]string, n)
	for i := range entries {
		names[i] = fmt.Sprintf("bulk/%d", i)
		entries[i] = testEntry(names[i])
	}

	stored, err := r.PutMany(ctx, entries)
	if err != nil {
		t.Fatalf("put-many: %v", err)
	}
	if len(stored) != n {
		t.Fatalf("put-many returned %d entries, want %d", len(stored), n)
	}
	for i, e := range stored {
		if e.Name != names[i] {
			t.Fatalf("put-many result out of order at %d: got %q want %q", i, e.Name, names[i])
		}
		if e.Version == 0 {
			t.Fatalf("put-many result %q missing stored version", e.Name)
		}
	}

	got, err := r.GetMany(ctx, names)
	if err != nil {
		t.Fatalf("get-many: %v", err)
	}
	if len(got) != n {
		t.Fatalf("get-many returned %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Name != names[i] {
			t.Fatalf("get-many result out of order at %d: got %q want %q", i, e.Name, names[i])
		}
	}

	if _, err := r.Merge(ctx, entries); err != nil {
		t.Fatalf("merge: %v", err)
	}
	deleted, err := r.DeleteMany(ctx, names)
	if err != nil {
		t.Fatalf("delete-many: %v", err)
	}
	if deleted != n {
		t.Fatalf("delete-many removed %d, want %d", deleted, n)
	}

	for i, c := range counters {
		for _, bulk := range []string{"PutMany", "GetMany", "Merge", "DeleteMany"} {
			if calls := c.Calls(bulk); calls > 1 {
				t.Errorf("shard %d: %s called %d times for one routed call, want at most 1", i, bulk, calls)
			}
		}
		for _, single := range []string{"Get", "Put", "Delete"} {
			if calls := c.Calls(single); calls != 0 {
				t.Errorf("shard %d: bulk ops fell back to %d per-key %s calls", i, calls, single)
			}
		}
	}
	// With 256 keys over 4 shards every shard must have seen its sub-batch.
	for i, c := range counters {
		if c.Calls("PutMany") == 0 {
			t.Errorf("shard %d received no sub-batch; placement is degenerate", i)
		}
	}
}

// failingShard answers every operation with a transport-style failure
// wrapping ErrUnavailable, like an rpc.Client whose server is gone.
type failingShard struct{ API }

var errShardDown = fmt.Errorf("shard down: %w", ErrUnavailable)

func (f failingShard) GetMany(context.Context, []string) ([]Entry, error) { return nil, errShardDown }
func (f failingShard) PutMany(context.Context, []Entry) ([]Entry, error)  { return nil, errShardDown }
func (f failingShard) DeleteMany(context.Context, []string) (int, error)  { return 0, errShardDown }
func (f failingShard) Merge(context.Context, []Entry) (int, error)        { return 0, errShardDown }
func (f failingShard) Entries(context.Context) ([]Entry, error)           { return nil, errShardDown }
func (f failingShard) Create(context.Context, Entry) (Entry, error)       { return Entry{}, errShardDown }
func (f failingShard) Get(context.Context, string) (Entry, error)         { return Entry{}, errShardDown }

func TestRouterPartialFailureWrapsUnavailable(t *testing.T) {
	ctx := context.Background()
	healthy := []*Instance{newShard(7), newShard(7), newShard(7)}
	apis := []API{healthy[0], healthy[1], healthy[2], failingShard{API: newShard(7)}}
	r, err := NewRouter(7, apis)
	if err != nil {
		t.Fatal(err)
	}

	const n = 128
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = testEntry(fmt.Sprintf("partial/%d", i))
	}
	_, err = r.PutMany(ctx, entries)
	if err == nil {
		t.Fatal("put-many with a dead shard: want error, got nil")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("put-many error should wrap ErrUnavailable, got %v", err)
	}

	// The healthy shards' sub-batches stayed applied: every entry not homed
	// on the dead shard is present.
	applied := 0
	for _, inst := range healthy {
		applied += inst.Len(ctx)
	}
	if applied == 0 {
		t.Fatal("partial failure should leave healthy shards' sub-batches applied")
	}

	// Single-key ops routed to the dead shard report the transport failure
	// unchanged.
	var deadName string
	for i := 0; i < 4*n; i++ {
		name := fmt.Sprintf("probe/%d", i)
		if r.Home(name) == 3 {
			deadName = name
			break
		}
	}
	if deadName == "" {
		t.Fatal("no probe name hashed to the dead shard")
	}
	if _, err := r.Get(ctx, deadName); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("get via dead shard: want ErrUnavailable, got %v", err)
	}
}

func TestRouterMembershipChangeMigratesEntries(t *testing.T) {
	ctx := context.Background()
	r, shards := newTestRouter(t, 2)

	const n = 500
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("member/%d", i)
		if _, err := r.Create(ctx, testEntry(names[i])); err != nil {
			t.Fatal(err)
		}
	}

	// A third shard joins; the background sweep moves the keys the ring now
	// assigns to it.
	third := newShard(7)
	id := r.AddShard(third)
	r.Wait()
	shards[id] = third

	if got := r.ShardCount(); got != 3 {
		t.Fatalf("shard count after join: got %d, want 3", got)
	}
	if r.Len(ctx) != n {
		t.Fatalf("tier size after join: got %d, want %d", r.Len(ctx), n)
	}
	misplaced := 0
	for _, name := range names {
		home := r.Home(name)
		for sid, inst := range shards {
			if inst.Contains(ctx, name) != (sid == home) {
				misplaced++
				break
			}
		}
		if _, err := r.Get(ctx, name); err != nil {
			t.Fatalf("get %q after join: %v", name, err)
		}
	}
	if misplaced != 0 {
		t.Fatalf("%d entries not at their home shard after the join sweep", misplaced)
	}
	// Consistent hashing: the join moved roughly 1/3 of the keys, not all.
	if moved := third.Len(ctx); moved == 0 || moved > (2*n)/3 {
		t.Fatalf("join moved %d of %d keys; consistent hashing should move about 1/3", moved, n)
	}

	// The new shard leaves again; its entries drain back and it is detached.
	if err := r.RemoveShard(id); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	if got := r.ShardCount(); got != 2 {
		t.Fatalf("shard count after leave: got %d, want 2", got)
	}
	if third.Len(ctx) != 0 {
		t.Fatalf("removed shard still holds %d entries after drain", third.Len(ctx))
	}
	if r.Len(ctx) != n {
		t.Fatalf("tier size after leave: got %d, want %d", r.Len(ctx), n)
	}
	for _, name := range names {
		if _, err := r.Get(ctx, name); err != nil {
			t.Fatalf("get %q after leave: %v", name, err)
		}
	}

	// Removing the last shards must be refused.
	if err := r.RemoveShard(r.Shards()[0]); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	if err := r.RemoveShard(r.Shards()[0]); err == nil {
		t.Fatal("removing the last shard should fail")
	}
}

// mergeGate wraps a shard and blocks the first Merge call until released,
// so tests can freeze a migration sweep at the moment it is about to apply
// a moved batch.
type mergeGate struct {
	API
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newMergeGate(inner API) *mergeGate {
	return &mergeGate{API: inner, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *mergeGate) Merge(ctx context.Context, entries []Entry) (int, error) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.API.Merge(ctx, entries)
}

// entriesGate wraps a shard and blocks the first Entries call until
// released, freezing a sweep before it has read the source shard.
type entriesGate struct {
	API
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newEntriesGate(inner API) *entriesGate {
	return &entriesGate{API: inner, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *entriesGate) Entries(ctx context.Context) ([]Entry, error) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.API.Entries(ctx)
}

// TestRouterDeleteDuringSweepNotResurrected freezes a migration sweep right
// before it merges a moved batch into the new shard, deletes one of the
// moved entries through the router, and checks the sweep's post-merge check
// undoes the resurrection: the deletion must stick everywhere.
func TestRouterDeleteDuringSweepNotResurrected(t *testing.T) {
	ctx := context.Background()
	first := newShard(7)
	r, err := NewRouter(7, []API{first})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("resurrect/%d", i)
		if _, err := r.Create(ctx, testEntry(names[i])); err != nil {
			t.Fatal(err)
		}
	}

	second := newShard(7)
	gate := newMergeGate(second)
	id := r.AddShard(gate)
	<-gate.entered // the sweep has read shard 0 and is about to merge into the joiner

	// Pick an entry that is moving to the new shard and delete it while the
	// stale copy is in the sweep's hands.
	var victim string
	for _, name := range names {
		if r.Home(name) == id {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no entry moved to the joining shard")
	}
	if err := r.Delete(ctx, victim); err != nil {
		t.Fatalf("delete during sweep: %v", err)
	}

	close(gate.release)
	r.Wait()

	if _, err := r.Get(ctx, victim); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted entry came back after the sweep: %v", err)
	}
	if second.Contains(ctx, victim) || first.Contains(ctx, victim) {
		t.Fatal("a shard still holds the entry deleted during the sweep")
	}
	// Everything else migrated and survived.
	if got := r.Len(ctx); got != n-1 {
		t.Fatalf("tier holds %d entries after the sweep, want %d", got, n-1)
	}
}

// TestRouterRecreateAfterDeleteDuringSweepSurvives deletes a mid-migration
// entry and immediately re-creates it while the sweep is frozen before its
// merge: the fresh entry must survive the sweep's anti-resurrection check —
// an acknowledged Create is never silently undone.
func TestRouterRecreateAfterDeleteDuringSweepSurvives(t *testing.T) {
	ctx := context.Background()
	first := newShard(7)
	r, err := NewRouter(7, []API{first})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("recreate/%d", i)
		if _, err := r.Create(ctx, testEntry(names[i])); err != nil {
			t.Fatal(err)
		}
	}

	gate := newMergeGate(newShard(7))
	id := r.AddShard(gate)
	<-gate.entered

	var victim string
	for _, name := range names {
		if r.Home(name) == id {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no entry moved to the joining shard")
	}
	if err := r.Delete(ctx, victim); err != nil {
		t.Fatalf("delete during sweep: %v", err)
	}
	if _, err := r.Create(ctx, testEntry(victim)); err != nil {
		t.Fatalf("re-create during sweep: %v", err)
	}

	close(gate.release)
	r.Wait()

	if _, err := r.Get(ctx, victim); err != nil {
		t.Fatalf("re-created entry was lost after the sweep: %v", err)
	}
	if got := r.Len(ctx); got != n {
		t.Fatalf("tier holds %d entries after the sweep, want %d", got, n)
	}
}

// TestRouterGetFallsBackDuringSweep freezes a sweep before it has read the
// old shard and checks that reads of not-yet-migrated entries succeed via
// the fallback instead of reporting ErrNotFound from the new home.
func TestRouterGetFallsBackDuringSweep(t *testing.T) {
	ctx := context.Background()
	gate := newEntriesGate(newShard(7))
	r, err := NewRouter(7, []API{gate})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("fallback/%d", i)
		if _, err := r.Create(ctx, testEntry(names[i])); err != nil {
			t.Fatal(err)
		}
	}

	id := r.AddShard(newShard(7))
	<-gate.entered // the sweep is frozen; nothing has migrated yet

	var moved string
	for _, name := range names {
		if r.Home(name) == id {
			moved = name
			break
		}
	}
	if moved == "" {
		t.Fatal("no entry is due to move to the joining shard")
	}
	if _, err := r.Get(ctx, moved); err != nil {
		t.Fatalf("get of a not-yet-migrated entry during the sweep: %v", err)
	}
	if !r.Contains(ctx, moved) {
		t.Fatal("contains of a not-yet-migrated entry during the sweep: got false")
	}
	// Bulk reads fall back the same way: no entry may be silently dropped.
	got, err := r.GetMany(ctx, names)
	if err != nil {
		t.Fatalf("get-many during the sweep: %v", err)
	}
	if len(got) != n {
		t.Fatalf("get-many during the sweep returned %d of %d entries", len(got), n)
	}

	close(gate.release)
	r.Wait()
	if _, err := r.Get(ctx, moved); err != nil {
		t.Fatalf("get after the sweep: %v", err)
	}
}

func TestRouterBestEffortOpsFeedSuppressedCounter(t *testing.T) {
	reg := metrics.NewRegistry()
	r, _ := newTestRouter(t, 2, WithRouterMetrics(reg))

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if names := r.Names(cancelled); names != nil {
		t.Fatalf("names on cancelled context: got %v, want nil", names)
	}
	if got := reg.Counter("router_suppressed_errors_total").Value(); got == 0 {
		t.Fatal("suppressed-error counter not incremented by best-effort Names on a cancelled context")
	}
}

func TestRouterEntriesAndNamesUnionShards(t *testing.T) {
	ctx := context.Background()
	r, _ := newTestRouter(t, 3)
	const n = 100
	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("union/%d", i)
		want[name] = true
		if _, err := r.Create(ctx, testEntry(name)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := r.Entries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("entries: got %d, want %d", len(entries), n)
	}
	names := r.Names(ctx)
	if len(names) != n {
		t.Fatalf("names: got %d, want %d", len(names), n)
	}
	for _, name := range names {
		if !want[name] {
			t.Fatalf("unexpected name %q", name)
		}
	}
	if r.Len(ctx) != n {
		t.Fatalf("len: got %d, want %d", r.Len(ctx), n)
	}
}
