package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"geomds/internal/metrics"
)

// This file holds the Router's tail-latency machinery: hedged single-key
// reads on the replicated tier (WithRouterHedgedReads) and singleflight
// coalescing of concurrent identical Gets (WithRouterReadCoalescing).
//
// Hedging: a replicated Get normally waits for the primary and only fails
// over on a transport error, so one slow-but-alive replica sets the read's
// latency. With hedging armed, a primary that has not answered within a
// threshold derived from the router's streaming read-latency histogram (the
// observed p95, clamped to the configured [min, max] band) gets a second
// chance fired at the next healthy replica; the first usable answer wins and
// the loser is cancelled through its context. The replica set already
// excludes breaker-open shards, so a hedge can never target a shard known to
// be down. An answering replica's ErrNotFound stays authoritative, exactly
// as on the failover path.
//
// Coalescing: concurrent Gets for the same name collapse into one downstream
// read whose result fans out to every waiter. The flight runs under its own
// context — detached from any single caller — so one waiter's cancellation
// cannot poison the answer for the rest; only when every waiter has given up
// is the downstream read cancelled.

// Default clamp band for the hedge threshold: the p95 estimate is not
// trusted below min (hedging every read would double tier load) nor above
// max (a cold histogram or a latency collapse must not disarm hedging).
const (
	DefaultHedgeMin = time.Millisecond
	DefaultHedgeMax = 25 * time.Millisecond
)

// hedgeMinSamples is how many recorded reads the threshold derivation needs
// before the p95 is meaningful; colder histograms use the max clamp.
const hedgeMinSamples = 32

// hedgeSettings is the resolved hedging configuration.
type hedgeSettings struct {
	enabled  bool
	min, max time.Duration
}

// hedgeThreshold derives the current hedge-fire delay: the read-latency
// histogram's p95 clamped into [min, max], or 0 when hedging is off.
func (r *Router) hedgeThreshold() time.Duration {
	if !r.hedge.enabled || r.rep <= 1 {
		return 0
	}
	snap := r.readLat.Snapshot()
	if snap.Count < hedgeMinSamples {
		return r.hedge.max
	}
	th := time.Duration(snap.Quantile(95))
	if th < r.hedge.min {
		th = r.hedge.min
	}
	if th > r.hedge.max {
		th = r.hedge.max
	}
	return th
}

// hedgeAnswer is one leg's outcome in a hedged read.
type hedgeAnswer struct {
	e      Entry
	err    error
	ref    shardRef
	hedged bool // this leg was the timer-fired hedge
}

// getHedged races the primary against a deferred hedge at the next healthy
// replica. It is only entered with at least two healthy replicas resolved
// and no sweep active (mid-sweep reads keep the full-tier fallback path).
func (r *Router) getHedged(ctx context.Context, name string, refs []shardRef, threshold time.Duration) (Entry, error) {
	pctx, pcancel := context.WithCancel(ctx)
	hctx, hcancel := context.WithCancel(ctx)
	defer pcancel()
	defer hcancel()

	answers := make(chan hedgeAnswer, 2)
	launch := func(legCtx context.Context, ref shardRef, hedged bool) {
		go func() {
			e, err := ref.api.Get(legCtx, name)
			r.report(ref.id, err)
			answers <- hedgeAnswer{e: e, err: err, ref: ref, hedged: hedged}
		}()
	}
	launch(pctx, refs[0], false)

	timer := time.NewTimer(threshold)
	defer timer.Stop()

	var (
		launched = 1
		pending  = 1
		errs     []error
	)
	// fireSecond starts the read at refs[1]: as a counted hedge when the
	// timer expired with the primary still silent, or as plain failover when
	// the primary already failed outright.
	fireSecond := func(asHedge bool) {
		if launched > 1 {
			return
		}
		launched++
		pending++
		if asHedge {
			r.obs.hedged.Inc()
		}
		launch(hctx, refs[1], asHedge)
	}

	for {
		select {
		case <-timer.C:
			fireSecond(true)
		case <-ctx.Done():
			return Entry{}, ctx.Err()
		case a := <-answers:
			pending--
			switch {
			case a.err == nil:
				pcancel()
				hcancel()
				if a.hedged {
					r.obs.hedgeWins.Inc()
				}
				if a.ref.id != refs[0].id {
					r.obs.failovers.Inc()
				}
				return a.e, nil
			case errors.Is(a.err, ErrNotFound):
				// The answering replica's miss is authoritative (no sweep was
				// active when this path was entered).
				pcancel()
				hcancel()
				if a.hedged {
					r.obs.hedgeWins.Inc()
				}
				return Entry{}, a.err
			case errors.Is(a.err, context.Canceled), errors.Is(a.err, context.DeadlineExceeded):
				// A cancelled loser draining, or the caller giving up — the
				// ctx.Done case answers for the latter.
				if pending == 0 && ctx.Err() != nil {
					return Entry{}, ctx.Err()
				}
			default:
				errs = append(errs, fmt.Errorf("shard %d: %w", a.ref.id, a.err))
				// A failed primary needs no timer: go to the replica now.
				fireSecond(false)
				if pending == 0 {
					return r.getHedgeRemainder(ctx, name, refs[2:], errs)
				}
			}
		}
	}
}

// getHedgeRemainder walks the replicas beyond the hedge pair serially after
// both raced legs failed, mirroring the classic failover loop.
func (r *Router) getHedgeRemainder(ctx context.Context, name string, rest []shardRef, errs []error) (Entry, error) {
	for _, ref := range rest {
		e, gerr := ref.api.Get(ctx, name)
		r.report(ref.id, gerr)
		if gerr == nil {
			r.obs.failovers.Inc()
			return e, nil
		}
		if errors.Is(gerr, ErrNotFound) {
			return Entry{}, gerr
		}
		errs = append(errs, fmt.Errorf("shard %d: %w", ref.id, gerr))
	}
	return Entry{}, r.shardErr("get", errs)
}

// flight is one in-progress coalesced read.
type flight struct {
	done     chan struct{}
	e        Entry
	err      error
	waiters  int
	finished bool
	cancel   context.CancelFunc
}

// flightGroup is a hand-rolled singleflight keyed by entry name. joined
// counts callers that piggybacked on a flight another caller started
// (router_coalesced_reads_total), recorded at join time.
type flightGroup struct {
	mu     sync.Mutex
	m      map[string]*flight
	joined *metrics.Counter
}

func newFlightGroup(joined *metrics.Counter) *flightGroup {
	return &flightGroup{m: make(map[string]*flight), joined: joined}
}

// do runs fn once per name across concurrent callers and fans the result out
// to every waiter. The flight executes under its own detached context so one
// caller's cancellation cannot poison the shared answer; a caller that gives
// up gets its own ctx.Err() while the flight carries on for the rest, and
// only the last waiter leaving cancels the downstream read.
func (g *flightGroup) do(ctx context.Context, name string, fn func(context.Context, string) (Entry, error)) (Entry, error) {
	g.mu.Lock()
	if f, ok := g.m[name]; ok {
		f.waiters++
		g.mu.Unlock()
		g.joined.Inc()
		return g.wait(ctx, name, f)
	}
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[name] = f
	g.mu.Unlock()
	go func() {
		fe, ferr := fn(fctx, name)
		g.mu.Lock()
		f.e, f.err, f.finished = fe, ferr, true
		if g.m[name] == f {
			delete(g.m, name)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return g.wait(ctx, name, f)
}

// wait blocks until the flight completes or the caller's context ends.
func (g *flightGroup) wait(ctx context.Context, name string, f *flight) (Entry, error) {
	select {
	case <-f.done:
		return f.e, f.err
	case <-ctx.Done():
		g.abandon(name, f)
		return Entry{}, ctx.Err()
	}
}

// abandon records one waiter giving up. The last waiter out cancels the
// downstream read and unmaps the flight so the next Get starts fresh instead
// of joining a read that is being torn down.
func (g *flightGroup) abandon(name string, f *flight) {
	g.mu.Lock()
	f.waiters--
	if f.waiters == 0 && !f.finished {
		if g.m[name] == f {
			delete(g.m, name)
		}
		f.cancel()
	}
	g.mu.Unlock()
}

// getTimed wraps the routed read with the streaming latency observation the
// hedge threshold derives from. Only answered reads (a hit or an
// authoritative miss) are recorded: a dead shard's timeout must not inflate
// the p95 the hedge clamp is protecting.
func (r *Router) getTimed(ctx context.Context, name string) (Entry, error) {
	start := time.Now()
	e, err := r.getRouted(ctx, name)
	if err == nil || errors.Is(err, ErrNotFound) {
		r.readLat.ObserveDuration(time.Since(start))
	}
	return e, err
}
