package registry

import (
	"context"
	"errors"
	"fmt"
	"time"

	"geomds/internal/cloud"
)

// Delta repair: the recovery path for shards that persist their state.
//
// When every shard is memory-only, a returning shard comes back empty and
// the router must run the full re-sync sweep — every shard's every entry is
// re-merged to its home set, O(entries x rep) Merge traffic per recovery.
// A Recoverable shard changes the math: the router records the shard's
// durable sequence number the moment its breaker opens, and when the shard
// returns with a recovered sequence number at or above that mark, it
// provably holds everything it held before the outage. What it can be
// missing is exactly what the tier changed *while it was away* — and the
// router watched all of it happen: deletions were noted (deletedDuringSweep
// stays pinned while a breaker is open) and writes are noted here
// (wroteDuringOutage). The repair then replays only that delta:
//
//  1. the noted deletions are applied to the returning shard, so copies
//     deleted during the outage cannot be served (or re-merged) from its
//     recovered state;
//  2. each noted write homed on the shard is fetched from a healthy replica
//     and merged in — with the usual post-merge deletion re-check, so a
//     delete racing the repair is not resurrected;
//  3. copies those writes left on substitute shards (the healthy successors
//     that covered for the victim) are purged from shards outside the
//     name's home set.
//
// The repair runs under the sweep flag the recovery raised (preRecover), so
// reads keep their full fallback protection until the shard is whole. If
// the delta cannot be trusted — the shard lost log suffix, a force-noted
// deletion is outstanding, a membership sweep is concurrently reshuffling
// entries, or the shard does not report recovery at all — the router falls
// back to the full sweep, which remains the universal converger.

// recordDownSeq is the health tracker's onDown hook: it samples and stores
// the shard's durable sequence number at the moment its breaker opens.
// Memory-only and remote (rpc.Client) shards record nothing and later take
// the full-sweep path.
func (r *Router) recordDownSeq(id cloud.SiteID) {
	r.mu.RLock()
	api := r.shards[id]
	r.mu.RUnlock()
	rec, ok := api.(Recoverable)
	if !ok {
		return
	}
	seq, ok := rec.DurableSeq()
	if !ok {
		return
	}
	r.seqMu.Lock()
	if r.seqAtDown == nil {
		r.seqAtDown = make(map[cloud.SiteID]uint64)
	}
	r.seqAtDown[id] = seq
	r.seqMu.Unlock()
}

// takeDownSeq consumes the sequence number recorded when the shard's
// breaker opened.
func (r *Router) takeDownSeq(id cloud.SiteID) (uint64, bool) {
	r.seqMu.Lock()
	defer r.seqMu.Unlock()
	seq, ok := r.seqAtDown[id]
	if ok {
		delete(r.seqAtDown, id)
	}
	return seq, ok
}

// noteWritten records names written through the replicated write paths
// while any breaker is open; the down shard misses these writes, and a
// delta repair replays exactly this set. Over-noting is harmless — an
// unneeded name costs one idempotent Merge — so the write paths call this
// before their fan-out, whether or not the down shard is in the target set.
// The notes share delMu (and the clear points) with the deletion notes.
func (r *Router) noteWritten(names ...string) {
	if r.rep <= 1 || !r.health.anyDown() {
		return
	}
	r.delMu.Lock()
	if r.wroteDuringOutage == nil {
		r.wroteDuringOutage = make(map[string]bool)
	}
	for _, name := range names {
		r.wroteDuringOutage[name] = true
	}
	r.delMu.Unlock()
}

// deltaEligible decides whether the returning shard can be repaired by
// replaying the outage delta instead of the full re-sync sweep. Every
// condition is a soundness requirement, not a heuristic: the shard must
// have recorded a durable mark when it went down and report at least that
// mark now (anything lower means log suffix was lost); no force-noted
// deletion may be outstanding (a replica holds a stale copy the notes no
// longer bound to this outage); and no membership sweep may be reshuffling
// entries concurrently (sweeping == 1 is the recovery's own flag) — the
// delta says nothing about entries whose home set is changing under it.
func (r *Router) deltaEligible(id cloud.SiteID, seqDown uint64) bool {
	if r.staleNotes.Load() || r.sweeping.Load() != 1 {
		return false
	}
	r.mu.RLock()
	api := r.shards[id]
	r.mu.RUnlock()
	rec, ok := api.(Recoverable)
	if !ok {
		return false
	}
	seqUp, ok := rec.DurableSeq()
	return ok && seqUp >= seqDown
}

// spawnDeltaRepair runs the delta repair asynchronously under the sweep
// flag the recovery already raised, retrying transient failures like
// spawnSweep does; if the retry budget runs out the full sweep takes over —
// the shard must not re-enter service half-repaired.
func (r *Router) spawnDeltaRepair(victim cloud.SiteID) {
	r.sweeps.Add(1)
	go func() {
		defer r.sweeps.Done()
		defer r.sweepEnd()
		for attempt := 0; ; attempt++ {
			err := r.deltaRepair(context.Background(), victim)
			if err == nil {
				r.obs.deltas.Inc()
				return
			}
			if attempt >= sweepRetries {
				// The delta could not be applied; fall back to the full
				// reconciliation sweep (it raises its own flag, released by
				// spawnSweep; ours releases via the deferred sweepEnd).
				r.obs.sweepFails.Inc()
				r.sweepBegin()
				r.spawnSweep()
				return
			}
			time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
		}
	}()
}

// deltaRepair replays the outage delta onto the returning shard. It is
// idempotent — every step is a Merge or DeleteMany — so a retried or even
// doubly-run repair converges to the same state.
func (r *Router) deltaRepair(ctx context.Context, victim cloud.SiteID) error {
	r.mu.RLock()
	vapi, ok := r.shards[victim]
	r.mu.RUnlock()
	if !ok {
		return nil // detached while recovering; nothing to repair
	}

	r.delMu.Lock()
	written := make([]string, 0, len(r.wroteDuringOutage))
	for name := range r.wroteDuringOutage {
		written = append(written, name)
	}
	deleted := make([]string, 0, len(r.deletedDuringSweep))
	for name := range r.deletedDuringSweep {
		deleted = append(deleted, name)
	}
	r.delMu.Unlock()

	var errs []error

	// 1. Deletions the recovered state predates: apply them first, so the
	// shard cannot serve (and no later step can trip over) a copy deleted
	// during the outage.
	if len(deleted) > 0 {
		if _, err := vapi.DeleteMany(ctx, deleted); err != nil {
			r.report(victim, err)
			errs = append(errs, fmt.Errorf("deleting outage deletions on shard %d: %w", victim, err))
		}
	}

	// 2. Writes the shard missed: for every noted name homed on the victim
	// under the current placement, fetch the entry from a healthy replica
	// and merge it in — grouped into one GetMany per source shard and one
	// Merge per batch. Names without a standing copy elsewhere (deleted
	// since) are skipped by the note check.
	bySource := make(map[cloud.SiteID][]string)
	sources := make(map[cloud.SiteID]API)
	for _, name := range written {
		if r.hasDeletionNote(name) {
			continue
		}
		refs, err := r.replicaSet(name)
		if err != nil {
			continue // no healthy home: the full-sweep backstop handles it
		}
		homed := false
		var src *shardRef
		for i := range refs {
			if refs[i].id == victim {
				homed = true
			} else if src == nil {
				src = &refs[i]
			}
		}
		if !homed || src == nil {
			continue
		}
		bySource[src.id] = append(bySource[src.id], name)
		sources[src.id] = src.api
	}
	repaired := 0
	for sid, names := range bySource {
		entries, err := sources[sid].GetMany(ctx, names)
		r.report(sid, err)
		if err != nil {
			errs = append(errs, fmt.Errorf("reading outage writes from shard %d: %w", sid, err))
			continue
		}
		if len(entries) == 0 {
			continue
		}
		n, err := vapi.Merge(ctx, entries)
		r.report(victim, err)
		if err != nil {
			errs = append(errs, fmt.Errorf("merging outage writes into shard %d: %w", victim, err))
			continue
		}
		repaired += n
		// Post-merge re-check, exactly like sweepShard: a delete that raced
		// the merge noted itself before touching any shard, so it is visible
		// here and the resurrection is undone.
		merged := make([]string, len(entries))
		for i, e := range entries {
			merged[i] = e.Name
		}
		if undo := r.deletedSince(merged); len(undo) > 0 {
			if _, err := vapi.DeleteMany(ctx, undo); err != nil {
				errs = append(errs, fmt.Errorf("undoing resurrected deletions on shard %d: %w", victim, err))
			}
		}
	}

	// 3. Substitute cleanup: while the victim was down, its keys' writes
	// landed on the next healthy successors; those copies are now off-home.
	// Purge every noted name from shards outside its current home set (a
	// DeleteMany of absent names is a cheap no-op, so the per-shard batches
	// are built from home-set membership alone).
	if len(written) > 0 && len(errs) == 0 {
		type purgeBatch struct {
			api   API
			names []string
		}
		offHome := make(map[cloud.SiteID]*purgeBatch)
		r.mu.RLock()
		for _, name := range written {
			homes := make(map[cloud.SiteID]bool, r.rep)
			for _, id := range r.replicaIDsLocked(name) {
				homes[id] = true
			}
			for id, api := range r.shards {
				if homes[id] {
					continue
				}
				g := offHome[id]
				if g == nil {
					g = &purgeBatch{api: api}
					offHome[id] = g
				}
				g.names = append(g.names, name)
			}
		}
		r.mu.RUnlock()
		for id, g := range offHome {
			if _, err := g.api.DeleteMany(ctx, g.names); err != nil {
				r.report(id, err) // best-effort hygiene; the next sweep converges
			}
		}
	}

	if repaired > 0 {
		r.obs.repaired.Add(int64(repaired))
	}
	return errors.Join(errs...)
}
