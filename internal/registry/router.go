package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/dht"
	"geomds/internal/feed"
	"geomds/internal/metrics"
)

// Router implements API over a horizontally-scaled tier of shard instances
// within one site. Where a plain *Instance (or one rpc.Client) is the "one
// registry per datacenter" deployment of the paper, a Router is N of them
// behind one API: single-key operations are routed to the shard owning the
// key (the same hashing machinery internal/dht uses to pick a site picks the
// shard), and bulk operations are split into at most one sub-batch per shard,
// issued concurrently and merged — a GetMany over a 4-shard site costs four
// concurrent sub-batch calls, never one call per key.
//
// Because Router satisfies API, everything built over a registry instance —
// the four strategies, the synchronization agent, the lazy propagator, the
// RPC server — drives a sharded site transparently. The shards themselves may
// be in-process *Instance values (one cache per shard, scaling the site's
// bounded cache capacity) or rpc.Client proxies to shard servers running as
// separate processes (scaling across machines).
//
// Membership can change online: AddShard and RemoveShard update the
// consistent-hash placement and kick a background migration sweep that moves
// the (few, thanks to consistent hashing) entries whose home shard changed.
// Operations issued through the router stay reliable while a sweep is in
// flight: a read that misses at a key's new home falls back to the other
// shards, and a deletion is recorded and purged everywhere so a stale source
// copy can never resurrect it. Routers that share shards but not state (a
// second router process over the same shard servers) see plain eventual
// consistency during a sweep instead — the contract the paper accepts for
// server volatility (§VIII).
//
// Partial failures of bulk operations surface through the typed-error model:
// the returned error wraps each failed shard's cause (so errors.Is sees
// ErrUnavailable when a shard is unreachable), and sub-batches that did reach
// their shard stay applied. Bulk application is idempotent, so callers — like
// the sync agent — simply re-send on the next round.
//
// With WithRouterReplication(r), placement becomes R-way: every key lives on
// the first r distinct shards of its consistent-hash successor list
// (dht.Placer.Homes). Writes fan out to all r homes (all-or-quorum,
// WithRouterWriteConcern), single-key reads try the primary and fail over
// down the replica list on transport errors, and bulk operations still issue
// at most one sub-batch per shard — a shard that is primary for some keys
// and replica for others receives one combined frame. A per-shard health
// breaker (fed by operation outcomes plus a background probe) takes crashed
// shards out of placement so a dead shard costs a few failed calls, not an
// error storm; when the shard answers its probe again a re-sync sweep —
// the same machinery that migrates entries on membership changes — repairs
// everything it missed while it was away. See replication.go.
//
// A Router is safe for concurrent use.
type Router struct {
	site   cloud.SiteID
	placer dht.DynamicPlacer // over shard IDs masquerading as site IDs

	// rep is the replication factor (1 = the classic single-home placement);
	// concern is the write acknowledgement rule when rep > 1. health is the
	// per-shard breaker tier; it is always present, but only rep > 1 routing
	// skips shards whose breaker is open (with one home per key there is
	// nowhere correct to re-route to).
	rep     int
	concern WriteConcern
	health  *healthTracker

	// mu guards shards/nextID and serializes membership changes against the
	// placer (which has its own lock for read paths).
	mu     sync.RWMutex
	shards map[cloud.SiteID]API // active shards plus shards draining after removal
	nextID cloud.SiteID

	// sweeps tracks in-flight background migration sweeps (see Wait);
	// sweeping counts the active ones so the hot path can cheaply tell
	// whether entries may currently live away from their home shard. It is
	// raised *before* a membership change touches the placer and lowered
	// only when the sweep (including retries) is over, so there is no window
	// in which keys are off-home but the mitigations below are inactive.
	// sweepGen increments on every sweepBegin: single-key fast paths snapshot
	// it before their shard call and re-check it afterwards, catching even a
	// sweep that started *and finished* while their call was in flight.
	sweeps   sync.WaitGroup
	sweeping atomic.Int32
	sweepGen atomic.Uint64

	// repairsPending counts quorum-mode write fan-outs and their spawned
	// background repairs. While it is positive, deletions note themselves
	// (see noteDeleted): a repair that lost a race against a delete then
	// finds the note and stands down instead of merging the deleted entry
	// back — without the guard, a repair spawned by a write that preceded
	// the delete could resurrect it. The guard is raised before the write's
	// fan-out begins, so there is no window in which a repair can be pending
	// and a delete unaware of it.
	repairsPending atomic.Int32

	// staleNotes is set whenever a deletion is force-noted (a replica failed
	// to apply it, so a stale copy exists somewhere regardless of breaker or
	// sweep state) and cleared only by a clean full sweep — the point at
	// which every shard has been reconciled against the notes. While set,
	// the note table is never cleared.
	staleNotes atomic.Bool

	// delMu guards deletedDuringSweep — the names deleted while a sweep was
	// active — *and* serializes the sweeping transitions against it: notes
	// are only recorded while the counter is positive and the set is cleared
	// in the same critical section that drops the counter to zero, so a
	// stale note can never leak into a later sweep. A sweep consults the set
	// before and after merging a moved batch so a stale source copy cannot
	// resurrect a concurrent deletion; writes re-establishing a name clear
	// its note.
	delMu              sync.Mutex
	deletedDuringSweep map[string]bool

	// wroteDuringOutage — the names written through the replicated paths
	// while any shard's breaker was open — feeds the delta repair of a
	// Recoverable shard (see delta.go). It shares delMu and the clear
	// points with deletedDuringSweep: both sets describe "what changed
	// while something was away" and die together once nothing needs them.
	wroteDuringOutage map[string]bool

	// seqAtDown records each down shard's durable sequence number, sampled
	// the moment its breaker opened (healthTracker.onDown); the recovery
	// path compares it against the shard's recovered sequence number to
	// decide between delta repair and full sweep.
	seqMu     sync.Mutex
	seqAtDown map[cloud.SiteID]uint64

	// relay is the tier's combined change feed — every shard's events
	// re-sequenced into one log — enabled when all initial shards implement
	// ChangeFeeder (see feed.go). taps holds the per-shard pump goroutines,
	// started when a shard joins and stopped when it is detached after
	// draining (or at Close).
	relay *feed.Log
	tapMu sync.Mutex
	taps  map[cloud.SiteID]*relayTap

	// hedge holds the tail-latency read-hedging configuration; readLat is
	// the streaming latency histogram its threshold derives from (always
	// non-nil when hedging is armed, even with instrumentation disabled).
	hedge   hedgeSettings
	readLat *metrics.Histogram

	// flights coalesces concurrent identical Gets when the router was built
	// WithRouterReadCoalescing; nil otherwise.
	flights *flightGroup

	obs routerObs
}

// Router implements the registry API.
var _ API = (*Router)(nil)

// routerObs holds the router's observability instruments, resolved once at
// construction. All fields tolerate being nil (instrumentation disabled).
type routerObs struct {
	shardsG     *metrics.Gauge   // router_shards: active shards in placement
	replicaG    *metrics.Gauge   // router_replication: configured replication factor
	bulkOps     *metrics.Counter // router_bulk_ops_total: bulk calls on the router
	subBatches  *metrics.Counter // router_subbatches_total: per-shard sub-batches issued
	migrated    *metrics.Counter // router_migrated_entries_total: entries moved by sweeps
	repaired    *metrics.Counter // router_repaired_entries_total: replica copies (re)written by sweeps
	sweepsC     *metrics.Counter // router_sweeps_total: migration sweeps completed
	sweepFails  *metrics.Counter // router_sweep_failures_total: background sweeps abandoned after retries
	resyncs     *metrics.Counter // router_resync_sweeps_total: sweeps triggered by a shard recovering
	deltas      *metrics.Counter // router_delta_repairs_total: recoveries served by a delta repair instead of a full sweep
	failovers   *metrics.Counter // router_failover_reads_total: reads served by a non-primary replica
	replicaErrs *metrics.Counter // router_replica_write_errors_total: write failures suppressed by the quorum concern
	repairFails *metrics.Counter // router_replica_repair_failures_total: background replica repairs abandoned after retries
	suppressed  *metrics.Counter // router_suppressed_errors_total: errors swallowed by best-effort ops
	hedged      *metrics.Counter // router_hedged_reads_total: hedge legs fired by a slow primary
	hedgeWins   *metrics.Counter // router_hedge_wins_total: hedged reads answered by the hedge leg
	coalesced   *metrics.Counter // router_coalesced_reads_total: Gets that joined another caller's in-flight read
}

func newRouterObs(reg *metrics.Registry) routerObs {
	return routerObs{
		shardsG:     reg.Gauge("router_shards"),
		replicaG:    reg.Gauge("router_replication"),
		bulkOps:     reg.Counter("router_bulk_ops_total"),
		subBatches:  reg.Counter("router_subbatches_total"),
		migrated:    reg.Counter("router_migrated_entries_total"),
		repaired:    reg.Counter("router_repaired_entries_total"),
		sweepsC:     reg.Counter("router_sweeps_total"),
		sweepFails:  reg.Counter("router_sweep_failures_total"),
		resyncs:     reg.Counter("router_resync_sweeps_total"),
		deltas:      reg.Counter("router_delta_repairs_total"),
		failovers:   reg.Counter("router_failover_reads_total"),
		replicaErrs: reg.Counter("router_replica_write_errors_total"),
		repairFails: reg.Counter("router_replica_repair_failures_total"),
		suppressed:  reg.Counter("router_suppressed_errors_total"),
		hedged:      reg.Counter("router_hedged_reads_total"),
		hedgeWins:   reg.Counter("router_hedge_wins_total"),
		coalesced:   reg.Counter("router_coalesced_reads_total"),
	}
}

// WriteConcern selects how many replica acknowledgements a write needs when
// the router replicates placement (WithRouterReplication).
type WriteConcern int

const (
	// WriteAll (the default) requires every targeted replica to acknowledge;
	// any replica failure surfaces as an error (replicas that were reached
	// stay applied, matching bulk partial-failure semantics).
	WriteAll WriteConcern = iota
	// WriteQuorum requires a majority of the replication factor. Failures
	// beyond the quorum are suppressed (router_replica_write_errors_total)
	// and repaired by the next re-sync sweep.
	WriteQuorum
)

// String returns the concern's flag spelling ("all", "quorum").
func (c WriteConcern) String() string {
	if c == WriteQuorum {
		return "quorum"
	}
	return "all"
}

// RouterOption configures a Router.
type RouterOption func(*routerConfig)

type routerConfig struct {
	placerFactory   func(shardIDs []cloud.SiteID) dht.DynamicPlacer
	metrics         *metrics.Registry
	replication     int
	concern         WriteConcern
	healthThreshold int
	probeInterval   time.Duration
	hedge           bool
	hedgeMin        time.Duration
	hedgeMax        time.Duration
	coalesce        bool
}

// WithRouterPlacer selects how keys map to shards. The factory receives the
// initial shard IDs and must return a dynamic placer over them. The default
// is a consistent-hash ring (dht.NewRingPlacer), which keeps migration small
// when shards join or leave; pass dht.NewModuloPlacer for the paper's flat
// hash-mod-n scheme.
func WithRouterPlacer(f func(shardIDs []cloud.SiteID) dht.DynamicPlacer) RouterOption {
	return func(c *routerConfig) { c.placerFactory = f }
}

// WithRouterMetrics selects the registry the router's instruments report to:
// the active-shard gauge, bulk-call and sub-batch counters (their ratio is
// the fan-out factor), migrated-entry and sweep counters, and the
// suppressed-error counter fed by best-effort operations. The default is
// metrics.Default; pass nil to disable instrumentation entirely.
func WithRouterMetrics(reg *metrics.Registry) RouterOption {
	return func(c *routerConfig) { c.metrics = reg }
}

// WithRouterReplication stores every key on the first r distinct shards of
// its successor list instead of one home shard: writes fan out to all r
// replicas, reads fail over down the list when the primary is unreachable,
// and routing draws replica sets from healthy shards only — a shard whose
// breaker is open is skipped and re-synced when it returns. r <= 1 keeps the
// classic single-home placement.
func WithRouterReplication(r int) RouterOption {
	return func(c *routerConfig) {
		if r > 1 {
			c.replication = r
		}
	}
}

// WithRouterWriteConcern selects the acknowledgement rule for replicated
// writes (default WriteAll). It has no effect without WithRouterReplication.
func WithRouterWriteConcern(w WriteConcern) RouterOption {
	return func(c *routerConfig) { c.concern = w }
}

// WithRouterHealth tunes the per-shard breaker: threshold is the number of
// consecutive transport failures that mark a shard down, probeInterval is
// how often down shards are re-probed. Non-positive values keep the
// defaults (3 failures, 250ms).
func WithRouterHealth(threshold int, probeInterval time.Duration) RouterOption {
	return func(c *routerConfig) {
		c.healthThreshold = threshold
		c.probeInterval = probeInterval
	}
}

// WithRouterHedgedReads arms tail-latency read hedging on the replicated
// tier: a single-key Get whose primary has not answered within a threshold
// derived from the router's streaming read-latency histogram (the observed
// p95, clamped into [min, max]) fires the same read at the next healthy
// replica, takes the first answer and cancels the loser via its context
// (router_hedged_reads_total / router_hedge_wins_total). Non-positive bounds
// take DefaultHedgeMin / DefaultHedgeMax; max below min is raised to min. It
// has no effect without WithRouterReplication — a single-home tier has no
// replica to hedge at.
func WithRouterHedgedReads(min, max time.Duration) RouterOption {
	return func(c *routerConfig) {
		if min <= 0 {
			min = DefaultHedgeMin
		}
		if max <= 0 {
			max = DefaultHedgeMax
		}
		if max < min {
			max = min
		}
		c.hedge = true
		c.hedgeMin, c.hedgeMax = min, max
	}
}

// WithRouterReadCoalescing collapses concurrent identical single-key Gets
// into one downstream read whose answer fans out to every caller
// (router_coalesced_reads_total). The shared read runs under its own
// context: one caller cancelling gets its own ctx.Err() while the flight
// carries on for the rest, and only the last caller leaving cancels it.
func WithRouterReadCoalescing() RouterOption {
	return func(c *routerConfig) { c.coalesce = true }
}

// NewRouter builds a routing tier for the given site over the given shard
// instances. Shards are assigned IDs 0..n-1 in input order; AddShard hands
// out the following IDs.
func NewRouter(site cloud.SiteID, shards []API, opts ...RouterOption) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("registry: router needs at least one shard")
	}
	cfg := routerConfig{
		placerFactory: func(ids []cloud.SiteID) dht.DynamicPlacer { return dht.NewRingPlacer(ids, 0) },
		metrics:       metrics.Default,
	}
	for _, o := range opts {
		o(&cfg)
	}
	ids := make([]cloud.SiteID, len(shards))
	m := make(map[cloud.SiteID]API, len(shards))
	for i, s := range shards {
		ids[i] = cloud.SiteID(i)
		m[cloud.SiteID(i)] = s
	}
	rep := cfg.replication
	if rep < 1 {
		rep = 1
	}
	r := &Router{
		site:    site,
		placer:  cfg.placerFactory(ids),
		shards:  m,
		nextID:  cloud.SiteID(len(shards)),
		rep:     rep,
		concern: cfg.concern,
		health:  newHealthTracker(cfg.healthThreshold, cfg.probeInterval, cfg.metrics),
		obs:     newRouterObs(cfg.metrics),
	}
	r.readLat = cfg.metrics.Histogram("router_read_latency_ns")
	if cfg.hedge {
		r.hedge = hedgeSettings{enabled: true, min: cfg.hedgeMin, max: cfg.hedgeMax}
		if r.readLat == nil {
			// Threshold derivation needs the histogram even when
			// instrumentation is disabled.
			r.readLat = new(metrics.Histogram)
		}
	}
	if cfg.coalesce {
		r.flights = newFlightGroup(r.obs.coalesced)
	}
	r.health.probe = r.probeShard
	// A recovering shard re-enters placement missing everything written while
	// it was away: raise the sweep flag *before* its breaker closes (so the
	// deletion notes recorded during the outage survive into the sweep and
	// the read-fallback mitigations are armed the moment routing may hand the
	// shard reads again), then run a re-sync sweep to repair it.
	r.health.preRecover = func(cloud.SiteID) { r.sweepBegin() }
	r.health.abortRecover = r.sweepEnd
	// The moment a breaker opens, sample the shard's durable sequence number
	// (delta.go); when it closes again, a shard that provably recovered its
	// pre-outage state takes the delta repair, everything else the full
	// re-sync sweep.
	r.health.onDown = r.recordDownSeq
	r.health.postRecover = func(id cloud.SiteID) {
		r.obs.resyncs.Inc()
		if seqDown, ok := r.takeDownSeq(id); ok && r.deltaEligible(id, seqDown) {
			r.spawnDeltaRepair(id)
			return
		}
		r.spawnSweep()
	}
	for id := range m {
		r.health.track(id)
	}
	r.initRelay(m)
	r.obs.shardsG.Add(int64(len(shards)))
	r.obs.replicaG.Add(int64(rep))
	return r, nil
}

// Replication returns the configured replication factor (1 = single-home
// placement).
func (r *Router) Replication() int { return r.rep }

// Close stops the router's background health prober and, when the tier has
// a change feed, drains and closes the relay. Operations issued after Close
// still work; only probing (and therefore automatic recovery of down
// shards) and the combined feed stop. Idempotent.
func (r *Router) Close() {
	r.health.close()
	r.closeRelay()
}

// probeKey is the reserved name health probes read. It never exists; a
// healthy shard answers ErrNotFound, a dead one a transport error.
const probeKey = "\x00geomds/health/probe"

// probeShard asks one shard whether it is answering requests again. It is
// the health tracker's probe hook.
func (r *Router) probeShard(id cloud.SiteID) bool {
	r.mu.RLock()
	api, ok := r.shards[id]
	r.mu.RUnlock()
	if !ok {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := api.Get(ctx, probeKey)
	return err == nil || errors.Is(err, ErrNotFound)
}

// MarkShardDown opens the shard's breaker immediately, without waiting for
// the failure threshold: replicated routing stops sending the shard
// operations until a probe (or MarkShardUp) closes the breaker again. It is
// the manual override for operators draining a struggling shard and for
// fault-injection tests.
func (r *Router) MarkShardDown(id cloud.SiteID) { r.health.markDown(id) }

// MarkShardUp closes the shard's breaker and kicks the same re-sync sweep a
// successful probe would.
func (r *Router) MarkShardUp(id cloud.SiteID) { r.health.markUp(id) }

// DownShards returns the shards whose breakers are currently open.
func (r *Router) DownShards() []cloud.SiteID { return r.health.downShards() }

// Site implements API: the datacenter this sharded tier serves as a whole.
func (r *Router) Site() cloud.SiteID { return r.site }

// Shards returns the IDs of the shards currently participating in placement,
// sorted. Shards still draining after RemoveShard are excluded.
func (r *Router) Shards() []cloud.SiteID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.placer.Sites()
}

// ShardCount returns the number of shards currently participating in
// placement.
func (r *Router) ShardCount() int { return len(r.Shards()) }

// Home returns the shard ID owning the given key under the current
// placement.
func (r *Router) Home(name string) cloud.SiteID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.placer.Home(name)
}

// shardFor resolves the shard owning name under the current placement.
func (r *Router) shardFor(name string) (cloud.SiteID, API, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id := r.placer.Home(name)
	api, ok := r.shards[id]
	if id == cloud.NoSite || !ok {
		return 0, nil, fmt.Errorf("registry: router for site %d: no shard owns %q: %w", r.site, name, ErrUnavailable)
	}
	return id, api, nil
}

// snapshotShards returns every shard currently attached — active ones plus
// any still draining — for full-tier fan-outs (Entries, Names, Len).
func (r *Router) snapshotShards() map[cloud.SiteID]API {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[cloud.SiteID]API, len(r.shards))
	for id, api := range r.shards {
		out[id] = api
	}
	return out
}

// reachableShards is snapshotShards minus down-marked shards when the tier
// is replicated: a down shard's content also lives on its healthy replicas,
// so full-tier reads need not fail (or stall) on it. Without replication
// every shard is the only holder of its range and stays included.
func (r *Router) reachableShards() map[cloud.SiteID]API {
	out := r.snapshotShards()
	if r.rep > 1 && r.health.anyDown() {
		for _, id := range r.health.downShards() {
			delete(out, id)
		}
	}
	return out
}

// report feeds one shard call's outcome to the health tracker: transport
// failures (ErrUnavailable) trip the breaker, answers — even application
// errors like ErrNotFound — reset it, and caller-side cancellations say
// nothing about the shard at all. Without replication the tracker is not
// fed: a single-home tier has nowhere correct to re-route to, so an open
// breaker could only add recovery sweeps that repair nothing (and
// note-retention that never drains).
func (r *Router) report(id cloud.SiteID, err error) {
	if r.rep <= 1 {
		return
	}
	switch {
	case err == nil:
		r.health.reportSuccess(id)
	case errors.Is(err, ErrUnavailable):
		r.health.reportFailure(id)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The caller gave up; the shard may be fine.
	default:
		r.health.reportSuccess(id)
	}
}

// shardErr wraps the per-shard failures of one routed operation. errors.Is
// and errors.As see through to every cause, so a caller checking
// ErrUnavailable (core.ErrSiteUnreachable) matches if any shard was
// unreachable.
func (r *Router) shardErr(op string, errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("registry: router %s at site %d: %w", op, r.site, errors.Join(errs...))
}

// Create implements API: routed to the shard owning the entry's name. A
// create during a sweep forgets any deletion note for the name first — the
// write re-establishes the entry, and a sweep's post-merge check must not
// undo it — and restores the note if the write fails. A membership change
// that begins while the fast-path write is in flight is caught by a re-check
// afterwards: the acknowledged entry is re-anchored at its current home so
// the sweep's source cleanup cannot orphan it.
func (r *Router) Create(ctx context.Context, e Entry) (Entry, error) {
	if r.rep > 1 {
		return r.createReplicated(ctx, e)
	}
	home, api, err := r.shardFor(e.Name)
	if err != nil {
		return Entry{}, err
	}
	gen := r.sweepGen.Load()
	if !r.sweepActive() {
		stored, cerr := api.Create(ctx, e)
		r.report(home, cerr)
		if cerr == nil && (r.sweepActive() || r.sweepGen.Load() != gen) {
			// A sweep started (and possibly finished) while the write was
			// in flight.
			r.reanchorWrite(ctx, home, stored)
		}
		return stored, cerr
	}
	noted := r.clearDeleted(e.Name)
	stored, err := api.Create(ctx, e)
	r.report(home, err)
	if err != nil && noted && !errors.Is(err, ErrExists) {
		// The entry stays absent; the deletion must stand. Re-note it and
		// re-assert it across the tier — the in-flight sweep may have merged
		// a stale copy during the window the note was cleared.
		r.deleteDuringSweep(ctx, home, api, e.Name) //nolint:errcheck // best-effort re-assertion of the standing deletion
	}
	return stored, err
}

// Put implements API: routed to the shard owning the entry's name. Like
// Create, a put during a sweep clears the name's deletion note (restoring
// it if the write fails), and a fast-path put that raced a membership
// change re-anchors the entry at its current home.
func (r *Router) Put(ctx context.Context, e Entry) (Entry, error) {
	if r.rep > 1 {
		return r.putReplicated(ctx, e)
	}
	home, api, err := r.shardFor(e.Name)
	if err != nil {
		return Entry{}, err
	}
	gen := r.sweepGen.Load()
	if !r.sweepActive() {
		stored, perr := api.Put(ctx, e)
		r.report(home, perr)
		if perr == nil && (r.sweepActive() || r.sweepGen.Load() != gen) {
			r.reanchorWrite(ctx, home, stored)
		}
		return stored, perr
	}
	noted := r.clearDeleted(e.Name)
	stored, err := api.Put(ctx, e)
	r.report(home, err)
	if err != nil && noted {
		// See Create: re-assert the standing deletion everywhere.
		r.deleteDuringSweep(ctx, home, api, e.Name) //nolint:errcheck // best-effort re-assertion of the standing deletion
	}
	return stored, err
}

// reanchorWrite handles an acknowledged fast-path write that raced the start
// of a membership change: if the entry's home moved while the write was in
// flight, the stored entry is upserted at its current home too, so the
// migration sweep's source-side cleanup can never leave the acknowledged
// write behind on a shard that no longer owns it. Clearing the deletion note
// also keeps the sweep's post-merge check from undoing the write.
func (r *Router) reanchorWrite(ctx context.Context, wroteTo cloud.SiteID, e Entry) {
	r.clearDeleted(e.Name)
	if home, api, err := r.shardFor(e.Name); err == nil && home != wroteTo {
		api.Put(ctx, e) //nolint:errcheck // best-effort: the sweep migrating the original copy converges the same way
	}
}

// sweepFallbackGet consults every shard not yet tried for a copy of the
// name, one concurrent Get per shard — the read-reliability fallback while
// entries may be off-home mid-sweep. It returns the best copy found
// (highest version, in case a sweep briefly left two) or the transport
// failures encountered: a miss is only authoritative when every shard
// actually answered.
func (r *Router) sweepFallbackGet(ctx context.Context, name string, tried map[cloud.SiteID]bool) (Entry, bool, []error) {
	var (
		mu    sync.Mutex
		found Entry
		ok    bool
		errs  []error
		wg    sync.WaitGroup
	)
	for id, other := range r.snapshotShards() {
		if tried[id] {
			continue
		}
		wg.Add(1)
		go func(id cloud.SiteID, other API) {
			defer wg.Done()
			e, err := other.Get(ctx, name)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				if !ok || e.Version > found.Version {
					found, ok = e, true
				}
			case !errors.Is(err, ErrNotFound):
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
			}
		}(id, other)
	}
	wg.Wait()
	return found, ok, errs
}

// Get implements API: routed to the shard owning the name. While a
// migration sweep is in flight an entry may not have reached its new home
// yet, so a miss at the home shard falls back to the other shards (one
// concurrent Get per shard) before answering ErrNotFound — and the miss is
// only answered when every fallback shard actually responded; an
// unreachable shard mid-sweep surfaces as ErrUnavailable rather than
// reading an existing entry as absent.
func (r *Router) Get(ctx context.Context, name string) (Entry, error) {
	if r.flights == nil {
		return r.getTimed(ctx, name)
	}
	return r.flights.do(ctx, name, r.getTimed)
}

// getRouted is the uncoalesced, untimed read path: the replicated read (with
// hedging when armed) or the single-home read with its mid-sweep fallback.
func (r *Router) getRouted(ctx context.Context, name string) (Entry, error) {
	if r.rep > 1 {
		return r.getReplicated(ctx, name)
	}
	home, api, err := r.shardFor(name)
	if err != nil {
		return Entry{}, err
	}
	e, err := api.Get(ctx, name)
	r.report(home, err)
	if err == nil || !errors.Is(err, ErrNotFound) || !r.sweepActive() {
		return e, err
	}
	if fe, ok, ferrs := r.sweepFallbackGet(ctx, name, map[cloud.SiteID]bool{home: true}); ok {
		return fe, nil
	} else if len(ferrs) > 0 {
		return Entry{}, r.shardErr("get", ferrs)
	}
	return Entry{}, err
}

// Contains implements API. It is best-effort like every other
// implementation; a tier with no shard owning the name reads as "absent" and
// feeds the suppressed-error counter so the degradation is observable.
// During a migration sweep a miss at the home shard falls back to the other
// shards, matching Get.
func (r *Router) Contains(ctx context.Context, name string) bool {
	if r.rep > 1 {
		return r.containsReplicated(ctx, name)
	}
	home, api, err := r.shardFor(name)
	if err != nil {
		r.obs.suppressed.Inc()
		return false
	}
	if api.Contains(ctx, name) {
		return true
	}
	if !r.sweepActive() {
		return false
	}
	return r.sweepFallbackContains(ctx, name, map[cloud.SiteID]bool{home: true})
}

// sweepFallbackContains is the best-effort companion of sweepFallbackGet:
// one concurrent Contains per untried shard.
func (r *Router) sweepFallbackContains(ctx context.Context, name string, tried map[cloud.SiteID]bool) bool {
	var (
		found atomic.Bool
		wg    sync.WaitGroup
	)
	for id, other := range r.snapshotShards() {
		if tried[id] {
			continue
		}
		wg.Add(1)
		go func(other API) {
			defer wg.Done()
			if other.Contains(ctx, name) {
				found.Store(true)
			}
		}(other)
	}
	wg.Wait()
	return found.Load()
}

// AddLocation implements API: routed to the shard owning the name.
func (r *Router) AddLocation(ctx context.Context, name string, loc Location) (Entry, error) {
	if r.rep > 1 {
		return r.addLocationReplicated(ctx, name, loc)
	}
	home, api, err := r.shardFor(name)
	if err != nil {
		return Entry{}, err
	}
	e, err := api.AddLocation(ctx, name, loc)
	r.report(home, err)
	return e, err
}

// Delete implements API: routed to the shard owning the name. While a
// migration sweep is in flight the deletion is additionally recorded (so the
// sweep cannot resurrect it from a stale source copy — see sweepShard) and
// purged from every other shard that may still hold an un-migrated copy. A
// sweep that begins while the fast-path delete is in flight is caught by a
// re-check afterwards, which re-runs the sweep-aware path (it is
// idempotent).
func (r *Router) Delete(ctx context.Context, name string) error {
	if r.rep > 1 {
		return r.deleteReplicated(ctx, name)
	}
	home, api, err := r.shardFor(name)
	if err != nil {
		return err
	}
	gen := r.sweepGen.Load()
	if r.sweepActive() {
		return r.deleteDuringSweep(ctx, home, api, name)
	}
	err = api.Delete(ctx, name)
	r.report(home, err)
	if r.sweepActive() || r.sweepGen.Load() != gen {
		// A sweep started (and possibly even finished) while the fast-path
		// delete was in flight; re-run the sweep-aware path to purge any
		// copy the sweep migrated meanwhile (it is idempotent).
		rerr := r.deleteDuringSweep(ctx, home, api, name)
		if err == nil {
			// Already acknowledged by the fast path; the re-run only cleans
			// up copies the racing sweep may have moved.
			return nil
		}
		return rerr
	}
	return err
}

// deleteDuringSweep is the sweep-aware delete path: it notes the deletion
// *before* touching any shard — a sweep that merges a stale copy afterwards
// is guaranteed to see the note in its post-merge check and undo the
// resurrection — deletes at the home shard and concurrently purges every
// other shard that may still hold an un-migrated copy.
func (r *Router) deleteDuringSweep(ctx context.Context, home cloud.SiteID, api API, name string) error {
	r.noteDeleted(name)
	err := api.Delete(ctx, name)

	var (
		mu     sync.Mutex
		purged int
		errs   []error
		wg     sync.WaitGroup
	)
	for id, other := range r.snapshotShards() {
		if id == home {
			continue
		}
		wg.Add(1)
		go func(id cloud.SiteID, other API) {
			defer wg.Done()
			n, derr := other.DeleteMany(ctx, []string{name})
			mu.Lock()
			defer mu.Unlock()
			if derr != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, derr))
				return
			}
			purged += n
		}(id, other)
	}
	wg.Wait()

	// A copy found only on a non-home shard (not migrated yet) still counts
	// as a successful delete.
	if errors.Is(err, ErrNotFound) && purged > 0 {
		err = nil
	}
	if err != nil {
		errs = append([]error{err}, errs...)
	}
	if len(errs) > 0 {
		return r.shardErr("delete", errs)
	}
	return nil
}

// sweepActive reports whether a migration sweep is currently in flight.
func (r *Router) sweepActive() bool { return r.sweeping.Load() > 0 }

// sweepBegin marks one sweep as in flight. It runs before the membership
// change it covers touches the placer, so the hot-path mitigations (read
// fallback, deletion notes and purges) are active the moment keys can be
// off-home.
func (r *Router) sweepBegin() {
	r.delMu.Lock()
	r.sweeping.Add(1)
	r.sweepGen.Add(1)
	r.delMu.Unlock()
}

// notesNeeded reports whether deletions must currently be noted (and the
// note table must not be cleared): while a sweep is in flight (a stale
// source copy is in some sweep's hands), while a shard's breaker is open
// (the down shard holds stale copies of everything deleted during its
// outage), while a quorum write or its background repair is pending (the
// repair must be able to see that the entry it would re-merge was deleted),
// or while a force-noted deletion awaits a clean sweep (a replica missed it
// and holds a stale copy no counter tracks). Callers hold delMu.
func (r *Router) notesNeeded() bool {
	return r.sweeping.Load() > 0 || r.repairsPending.Load() > 0 ||
		r.staleNotes.Load() || r.health.anyDown()
}

// sweepEnd retires one sweep, clearing the deletion notes when nothing needs
// them anymore — in the same critical section that drops the counter, so a
// concurrent noteDeleted cannot slip a note into the dying generation.
func (r *Router) sweepEnd() {
	r.delMu.Lock()
	if r.sweeping.Add(-1) == 0 && !r.notesNeeded() {
		r.deletedDuringSweep = nil
		r.wroteDuringOutage = nil
	}
	r.delMu.Unlock()
}

// noteDeleted records a deletion while anything could resurrect it (see
// notesNeeded); otherwise no copy can be off-home and the note is skipped.
func (r *Router) noteDeleted(name string) {
	r.delMu.Lock()
	if r.notesNeeded() {
		if r.deletedDuringSweep == nil {
			r.deletedDuringSweep = make(map[string]bool)
		}
		r.deletedDuringSweep[name] = true
	}
	r.delMu.Unlock()
}

// repairWindow raises the repairsPending guard for one quorum-mode write:
// from before its fan-out until after its repairs (if any) are spawned,
// deletions note themselves so an eventual repair cannot resurrect them.
// The returned release must be called after any spawnRepair calls; each
// spawned repair holds its own count until it finishes. Under WriteAll no
// repairs are ever spawned, so the guard is a no-op.
func (r *Router) repairWindow() func() {
	if r.concern != WriteQuorum {
		return func() {}
	}
	r.repairsPending.Add(1)
	return r.endRepairWindow
}

// endRepairWindow drops one hold on the repair guard, clearing the deletion
// notes when it was the last and nothing else needs them.
func (r *Router) endRepairWindow() {
	r.delMu.Lock()
	if r.repairsPending.Add(-1) == 0 && !r.notesNeeded() {
		r.deletedDuringSweep = nil
		r.wroteDuringOutage = nil
	}
	r.delMu.Unlock()
}

// clearDeleted forgets the deletion note for a name a write is about to
// re-establish, so a sweep's post-merge check cannot undo a fresh
// Create/Put. It reports whether a note existed, so a failed write can
// restore exactly the protection it removed — and never invent a note for a
// name that was not deleted.
func (r *Router) clearDeleted(name string) bool {
	r.delMu.Lock()
	defer r.delMu.Unlock()
	if !r.deletedDuringSweep[name] {
		return false
	}
	delete(r.deletedDuringSweep, name)
	return true
}

// deletedSince reports which of the given names were deleted while a sweep
// was active.
func (r *Router) deletedSince(names []string) []string {
	r.delMu.Lock()
	defer r.delMu.Unlock()
	var out []string
	for _, n := range names {
		if r.deletedDuringSweep[n] {
			out = append(out, n)
		}
	}
	return out
}

// nameGroup is the slice of input positions one shard is responsible for.
type nameGroup struct {
	api API
	idx []int
}

// groupNames partitions input positions by owning shard. Bulk operations use
// it to build exactly one sub-batch per shard.
func (r *Router) groupNames(names []string) (map[cloud.SiteID]*nameGroup, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	groups := make(map[cloud.SiteID]*nameGroup)
	for i, name := range names {
		id := r.placer.Home(name)
		api, ok := r.shards[id]
		if id == cloud.NoSite || !ok {
			return nil, fmt.Errorf("registry: router for site %d: no shard owns %q: %w", r.site, name, ErrUnavailable)
		}
		g := groups[id]
		if g == nil {
			g = &nameGroup{api: api}
			groups[id] = g
		}
		g.idx = append(g.idx, i)
	}
	return groups, nil
}

// GetMany implements API: the name list is split into one sub-batch per
// owning shard, the sub-batches are issued concurrently, and the found
// entries are returned in input order (absent names are skipped, matching
// the single-shard semantics).
func (r *Router) GetMany(ctx context.Context, names []string) ([]Entry, error) {
	if len(names) == 0 {
		return nil, nil
	}
	if r.rep > 1 {
		return r.getManyReplicated(ctx, names)
	}
	groups, err := r.groupNames(names)
	if err != nil {
		return nil, err
	}
	r.countBulk(len(groups))

	var (
		mu    sync.Mutex
		found = make(map[string]Entry, len(names))
		errs  []error
		wg    sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]string, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = names[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, api API, sub []string) {
			defer wg.Done()
			batch, err := api.GetMany(ctx, sub)
			r.report(id, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			for _, e := range batch {
				found[e.Name] = e
			}
		}(id, g.api, sub)
	}
	wg.Wait()
	if err := r.shardErr("get-many", errs); err != nil {
		return nil, err
	}

	// During a migration sweep an entry may not have reached its new home
	// yet; names the home shards missed fall back to the whole tier (one
	// concurrent sub-batch per shard), matching Get's fallback semantics.
	if r.sweepActive() {
		var missing []string
		seenMissing := make(map[string]bool)
		for _, name := range names {
			if _, ok := found[name]; !ok && !seenMissing[name] {
				seenMissing[name] = true
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			var fwg sync.WaitGroup
			for _, api := range r.snapshotShards() {
				fwg.Add(1)
				go func(api API) {
					defer fwg.Done()
					batch, ferr := api.GetMany(ctx, missing)
					if ferr != nil {
						return // best-effort fallback; the home answer stands
					}
					mu.Lock()
					for _, e := range batch {
						if _, ok := found[e.Name]; !ok {
							found[e.Name] = e
						}
					}
					mu.Unlock()
				}(api)
			}
			fwg.Wait()
		}
	}

	out := make([]Entry, 0, len(found))
	seen := make(map[string]bool, len(found))
	for _, name := range names {
		if e, ok := found[name]; ok && !seen[name] {
			seen[name] = true
			out = append(out, e)
		}
	}
	return out, nil
}

// PutMany implements API: the batch is split into one sub-batch per owning
// shard, issued concurrently, and the stored entries are returned in input
// order. Sub-batches that reached their shard stay applied even when another
// shard fails; the returned error wraps every failed shard's cause.
func (r *Router) PutMany(ctx context.Context, entries []Entry) ([]Entry, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	if r.rep > 1 {
		return r.putManyReplicated(ctx, entries)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	groups, err := r.groupNames(names)
	if err != nil {
		return nil, err
	}
	r.countBulk(len(groups))

	var (
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
	)
	out := make([]Entry, len(entries))
	for id, g := range groups {
		sub := make([]Entry, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = entries[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, api API, g *nameGroup, sub []Entry) {
			defer wg.Done()
			stored, err := api.PutMany(ctx, sub)
			r.report(id, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			for i, pos := range g.idx {
				if i < len(stored) {
					out[pos] = stored[i]
				}
			}
		}(id, g.api, g, sub)
	}
	wg.Wait()
	if err := r.shardErr("put-many", errs); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteMany implements API: one sub-batch per owning shard, issued
// concurrently; the count of present-and-removed entries is summed. Shards
// that were reached stay applied on partial failure.
func (r *Router) DeleteMany(ctx context.Context, names []string) (int, error) {
	if len(names) == 0 {
		return 0, nil
	}
	if r.rep > 1 {
		return r.deleteManyReplicated(ctx, names)
	}
	groups, err := r.groupNames(names)
	if err != nil {
		return 0, err
	}
	r.countBulk(len(groups))

	var (
		mu    sync.Mutex
		total int
		errs  []error
		wg    sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]string, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = names[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, api API, sub []string) {
			defer wg.Done()
			n, err := api.DeleteMany(ctx, sub)
			r.report(id, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			total += n
		}(id, g.api, sub)
	}
	wg.Wait()
	return total, r.shardErr("delete-many", errs)
}

// Merge implements API: one sub-batch per owning shard, issued concurrently;
// the number of applied entries is summed. Shards that were reached stay
// applied on partial failure — merge is idempotent, so the caller re-sends
// the whole batch on the next round.
func (r *Router) Merge(ctx context.Context, entries []Entry) (int, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	if r.rep > 1 {
		return r.mergeReplicated(ctx, entries)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	groups, err := r.groupNames(names)
	if err != nil {
		return 0, err
	}
	r.countBulk(len(groups))

	var (
		mu      sync.Mutex
		applied int
		errs    []error
		wg      sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]Entry, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = entries[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, api API, sub []Entry) {
			defer wg.Done()
			n, err := api.Merge(ctx, sub)
			r.report(id, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			applied += n
		}(id, g.api, sub)
	}
	wg.Wait()
	return applied, r.shardErr("merge", errs)
}

// Entries implements API: every shard (including ones still draining) is
// queried concurrently and the results are merged, deduplicating by name —
// during a migration sweep an entry may briefly live on two shards, and the
// copy with the higher version wins. Under replication, shards whose breaker
// is open are skipped: their content is replicated on healthy shards, so the
// full listing survives a shard crash.
func (r *Router) Entries(ctx context.Context) ([]Entry, error) {
	shards := r.reachableShards()
	r.countBulk(len(shards))
	var (
		mu   sync.Mutex
		best = make(map[string]Entry)
		errs []error
		wg   sync.WaitGroup
	)
	for id, api := range shards {
		wg.Add(1)
		go func(id cloud.SiteID, api API) {
			defer wg.Done()
			batch, err := api.Entries(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			for _, e := range batch {
				if cur, ok := best[e.Name]; !ok || e.Version > cur.Version {
					best[e.Name] = e
				}
			}
		}(id, api)
	}
	wg.Wait()
	if err := r.shardErr("entries", errs); err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(best))
	for _, e := range best {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Names implements API: every shard is queried concurrently and the name
// sets are unioned. Best-effort like the other implementations — a shard
// that answers nothing contributes nothing.
func (r *Router) Names(ctx context.Context) []string {
	if ctx.Err() != nil {
		r.obs.suppressed.Inc()
		return nil
	}
	shards := r.reachableShards()
	r.countBulk(len(shards))
	var (
		mu   sync.Mutex
		seen = make(map[string]bool)
		wg   sync.WaitGroup
	)
	for _, api := range shards {
		wg.Add(1)
		go func(api API) {
			defer wg.Done()
			names := api.Names(ctx)
			mu.Lock()
			defer mu.Unlock()
			for _, n := range names {
				seen[n] = true
			}
		}(api)
	}
	wg.Wait()
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len implements API: the shard sizes are summed, querying every shard
// concurrently like the other full-tier fan-outs (best-effort; an entry
// mid-migration may briefly count twice). With replication every entry lives
// on r.rep shards, so the sum over-counts; the replicated tier counts
// distinct names instead.
func (r *Router) Len(ctx context.Context) int {
	if r.rep > 1 {
		return len(r.Names(ctx))
	}
	var (
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for _, api := range r.snapshotShards() {
		wg.Add(1)
		go func(api API) {
			defer wg.Done()
			total.Add(int64(api.Len(ctx)))
		}(api)
	}
	wg.Wait()
	return int(total.Load())
}

// countBulk feeds the bulk-call and sub-batch counters; their ratio is the
// observed fan-out factor of the tier.
func (r *Router) countBulk(subBatches int) {
	r.obs.bulkOps.Inc()
	r.obs.subBatches.Add(int64(subBatches))
}

// AddShard attaches a new shard to the tier, returning its ID. The shard
// immediately participates in placement and a background migration sweep
// moves the entries the consistent-hash ring now assigns to it. Call Wait to
// block until the sweep completes, or Rebalance to run one synchronously.
func (r *Router) AddShard(api API) cloud.SiteID {
	// Raise the sweep flag before the placer changes: from the very first
	// moment a key's home can differ from where its entry lives, reads fall
	// back and deletions purge/note (see Get, Delete).
	r.sweepBegin()
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.shards[id] = api
	r.placer.Add(id)
	r.mu.Unlock()
	r.health.track(id)
	r.startTap(id, api)
	r.obs.shardsG.Add(1)
	r.spawnSweep()
	return id
}

// RemoveShard withdraws a shard from placement. Its entries are drained to
// their new home shards by a background migration sweep, after which the
// shard is detached entirely; until then full-tier reads (Entries, Names)
// still see it. Removing the last shard or an unknown ID is an error.
func (r *Router) RemoveShard(id cloud.SiteID) error {
	r.sweepBegin() // before the placer changes; see AddShard
	r.mu.Lock()
	if _, ok := r.shards[id]; !ok {
		r.mu.Unlock()
		r.sweepEnd()
		return fmt.Errorf("registry: router for site %d: no shard %d", r.site, id)
	}
	active := r.placer.Sites()
	inPlacement := false
	for _, s := range active {
		if s == id {
			inPlacement = true
		}
	}
	if !inPlacement {
		r.mu.Unlock()
		r.sweepEnd()
		return fmt.Errorf("registry: router for site %d: shard %d is already draining", r.site, id)
	}
	if len(active) <= 1 {
		r.mu.Unlock()
		r.sweepEnd()
		return fmt.Errorf("registry: router for site %d: cannot remove the last shard", r.site)
	}
	r.placer.Remove(id)
	r.mu.Unlock()
	r.obs.shardsG.Add(-1)
	r.spawnSweep()
	return nil
}

// sweepRetries bounds how often a failed background sweep is retried before
// it is abandoned (counted in router_sweep_failures_total; an explicit
// Rebalance or the next membership change picks the migration up again).
const sweepRetries = 5

// spawnSweep runs the migration sweep asynchronously — membership changes
// use it so AddShard/RemoveShard return immediately. The caller must have
// called sweepBegin already; the sweep retires it when done. Transient
// failures (an unreachable remote shard) are retried with backoff so keys
// are not left off-home with the mitigations disarmed; a sweep abandoned
// after the retry budget is observable via router_sweep_failures_total.
func (r *Router) spawnSweep() {
	r.sweeps.Add(1)
	go func() {
		defer r.sweeps.Done()
		defer r.sweepEnd()
		for attempt := 0; ; attempt++ {
			_, err := r.rebalance(context.Background())
			if err == nil {
				return
			}
			if attempt >= sweepRetries {
				r.obs.sweepFails.Inc()
				return
			}
			time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
		}
	}()
}

// Wait blocks until every background migration sweep started by AddShard or
// RemoveShard has completed.
func (r *Router) Wait() { r.sweeps.Wait() }

// Rebalance sweeps every shard and migrates entries whose home changed
// (because a shard joined or left) to their current owner, one bulk Merge
// per destination shard followed by one bulk DeleteMany on the source.
// Shards that have been withdrawn from placement are dropped from the tier
// once their drain completes. It returns how many entries moved.
//
// Rebalance is safe to call at any time — a no-op sweep moves nothing — and
// is idempotent: migration uses the same last-writer-wins merge as
// inter-site propagation, so re-running a partially failed sweep converges.
// Deletions issued through *this* router while the sweep runs are tracked
// and can never be resurrected by a stale source copy; concurrent routers
// over the same shards (e.g. a client-side metactl router) do not share
// that protection.
func (r *Router) Rebalance(ctx context.Context) (int, error) {
	r.sweepBegin()
	defer r.sweepEnd()
	return r.rebalance(ctx)
}

// rebalance is Rebalance without the sweep-flag management; spawnSweep calls
// it under a flag the membership change already raised.
func (r *Router) rebalance(ctx context.Context) (int, error) {
	moved := 0
	var errs []error
	for id, api := range r.snapshotShards() {
		n, err := r.sweepShard(ctx, id, api)
		moved += n
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
			continue
		}
		// A drained shard that no longer participates in placement is
		// detached once it holds nothing. The placer read and the (possibly
		// remote, possibly slow) Len call run outside the router lock so a
		// struggling drained shard never stalls the tier's hot path; only
		// the map delete itself takes the lock.
		inPlacement := false
		for _, s := range r.placer.Sites() {
			if s == id {
				inPlacement = true
			}
		}
		if !inPlacement && api.Len(ctx) == 0 {
			r.mu.Lock()
			delete(r.shards, id)
			r.mu.Unlock()
			r.health.untrack(id)
			// The tap outlived the drain on purpose: the sweep's deletes at
			// the old home were published through it, so a watch saw the
			// key move rather than vanish. Now the shard is empty and
			// detached, the tap can go.
			r.stopTap(id)
		}
	}
	if moved > 0 {
		r.obs.migrated.Add(int64(moved))
	}
	err := r.shardErr("rebalance", errs)
	if err == nil {
		// Only clean sweeps count as completed; failed attempts surface via
		// router_sweep_failures_total once the retry budget is spent. A
		// clean sweep reconciled every shard against the deletion notes, so
		// force-noted deletions no longer pin the note table (a force-note
		// racing this store re-pins it and the next sweep serves it).
		r.staleNotes.Store(false)
		r.obs.sweepsC.Inc()
	}
	return moved, err
}

// sweepShard reconciles one shard against the current placement. For every
// entry it holds, the entry's home set (one shard classically, the first R
// healthy successors under replication) is resolved once; copies a home is
// missing — because a shard joined, left, crashed or returned — are grouped
// into one bulk Merge per destination, and copies this shard no longer owns
// are removed with one bulk DeleteMany at the end, only after every replica
// of them was safely placed. Stale copies of names deleted while a sweep ran
// or a shard was down are purged rather than migrated, so a returning shard
// cannot resurrect deletions that happened during its outage.
//
// With replication every sweep is a full reconciliation: each entry is
// merged to every other home, costing O(entries x (rep-1)) Merge traffic per
// sweep even when the replicas are already identical (those merges no-op on
// the destination after one bulk read). Filtering by the destination's name
// list would miss replicas holding stale *content* — exactly what a
// post-outage re-sync exists to repair — and the API has no (name, version)
// listing to filter soundly, so sweeps pay the full pass; they only run on
// membership changes and recoveries.
func (r *Router) sweepShard(ctx context.Context, id cloud.SiteID, api API) (int, error) {
	entries, err := api.Entries(ctx)
	r.report(id, err)
	if err != nil {
		return 0, err
	}

	r.mu.RLock()
	byDest := make(map[cloud.SiteID][]Entry)
	okToDrop := make(map[string]bool)
	for _, e := range entries {
		onThis := false
		for _, home := range r.replicaIDsLocked(e.Name) {
			if home == id {
				onThis = true
				continue
			}
			byDest[home] = append(byDest[home], e)
		}
		if !onThis {
			okToDrop[e.Name] = true
		}
	}
	dests := make(map[cloud.SiteID]API, len(byDest))
	for dest := range byDest {
		if dapi, ok := r.shards[dest]; ok {
			dests[dest] = dapi
		}
	}
	r.mu.RUnlock()

	var errs []error
	applied := 0
	for dest, batch := range byDest {
		// A destination that fails keeps the source copies of its batch: an
		// entry leaves this shard only once every one of its replicas is
		// safely placed.
		failDest := func(err error) {
			errs = append(errs, err)
			for _, e := range batch {
				delete(okToDrop, e.Name)
			}
		}
		dapi, ok := dests[dest]
		if !ok {
			failDest(fmt.Errorf("destination shard %d detached mid-sweep: %w", dest, ErrUnavailable))
			continue
		}
		// Skip entries deleted since the sweep read them: merging the stale
		// source copy would resurrect the deletion at its new home.
		names := make([]string, len(batch))
		for i, e := range batch {
			names[i] = e.Name
		}
		kept := batch
		if dropped := r.deletedSince(names); len(dropped) > 0 {
			gone := make(map[string]bool, len(dropped))
			for _, n := range dropped {
				gone[n] = true
			}
			kept = batch[:0:0]
			for _, e := range batch {
				if !gone[e.Name] {
					kept = append(kept, e)
				}
			}
		}
		n, err := dapi.Merge(ctx, kept)
		r.report(dest, err)
		if err != nil {
			failDest(fmt.Errorf("merge into shard %d: %w", dest, err))
			continue
		}
		applied += n
		// Post-merge check: a Delete that raced the Merge noted itself before
		// touching any shard, so re-reading the note set here catches every
		// deletion the Merge may have resurrected — undo it at the
		// destination.
		movedNames := make([]string, len(kept))
		for i, e := range kept {
			movedNames[i] = e.Name
		}
		if undo := r.deletedSince(movedNames); len(undo) > 0 {
			if _, err := dapi.DeleteMany(ctx, undo); err != nil {
				failDest(fmt.Errorf("undoing resurrected deletions on shard %d: %w", dest, err))
				continue
			}
		}
	}

	// One cleanup DeleteMany on this shard: fully-migrated entries plus —
	// on replicated tiers — stale copies of names deleted while this shard
	// was down or a sweep ran. Migrated entries are always safe to drop (a
	// racing re-create writes to the name's current homes, which exclude
	// this shard). Noted names homed *here* can race a write that just
	// re-established them: the note set is re-read immediately before the
	// delete, and re-checked after it — a note that vanished mid-delete
	// means a write slipped in, and this shard's copy is restored from the
	// name's other replicas (the racing write reached them too). Without
	// replication the noted-name cleanup is skipped entirely: deletions
	// during rep=1 sweeps already purge every shard at delete time, and
	// there would be no replica to restore a raced write from.
	drop := make([]string, 0, len(okToDrop))
	for name := range okToDrop {
		drop = append(drop, name)
	}
	var notedDrop []string
	if r.rep > 1 {
		allNames := make([]string, 0, len(entries))
		for _, e := range entries {
			if !okToDrop[e.Name] {
				allNames = append(allNames, e.Name)
			}
		}
		notedDrop = r.deletedSince(allNames)
		drop = append(drop, notedDrop...)
	}
	moved := 0
	if len(drop) > 0 {
		if _, err := api.DeleteMany(ctx, drop); err != nil {
			errs = append(errs, fmt.Errorf("cleanup on shard %d: %w", id, err))
		} else {
			moved = len(okToDrop)
			if len(notedDrop) > 0 {
				still := make(map[string]bool, len(notedDrop))
				for _, name := range r.deletedSince(notedDrop) {
					still[name] = true
				}
				for _, name := range notedDrop {
					if !still[name] {
						r.restoreRacedWrite(ctx, id, api, name)
					}
				}
			}
		}
	}
	if applied > 0 {
		r.obs.repaired.Add(int64(applied))
	}
	return moved, errors.Join(errs...)
}

// restoreRacedWrite re-establishes this shard's copy of a name whose
// deletion note vanished while the sweep's cleanup delete was in flight: a
// write re-created the name concurrently, and the cleanup may have removed
// the fresh copy from this shard. The replicated write also reached the
// name's other homes, so the copy is recovered from the first replica that
// still holds it (best-effort; the next sweep converges the same way).
func (r *Router) restoreRacedWrite(ctx context.Context, id cloud.SiteID, api API, name string) {
	refs, err := r.replicaSet(name)
	if err != nil {
		return
	}
	for _, ref := range refs {
		if ref.id == id {
			continue
		}
		if e, gerr := ref.api.Get(ctx, name); gerr == nil {
			api.Merge(ctx, []Entry{e}) //nolint:errcheck // best-effort restore; the next sweep converges
			return
		}
	}
}
