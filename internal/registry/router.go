package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/dht"
	"geomds/internal/metrics"
)

// Router implements API over a horizontally-scaled tier of shard instances
// within one site. Where a plain *Instance (or one rpc.Client) is the "one
// registry per datacenter" deployment of the paper, a Router is N of them
// behind one API: single-key operations are routed to the shard owning the
// key (the same hashing machinery internal/dht uses to pick a site picks the
// shard), and bulk operations are split into at most one sub-batch per shard,
// issued concurrently and merged — a GetMany over a 4-shard site costs four
// concurrent sub-batch calls, never one call per key.
//
// Because Router satisfies API, everything built over a registry instance —
// the four strategies, the synchronization agent, the lazy propagator, the
// RPC server — drives a sharded site transparently. The shards themselves may
// be in-process *Instance values (one cache per shard, scaling the site's
// bounded cache capacity) or rpc.Client proxies to shard servers running as
// separate processes (scaling across machines).
//
// Membership can change online: AddShard and RemoveShard update the
// consistent-hash placement and kick a background migration sweep that moves
// the (few, thanks to consistent hashing) entries whose home shard changed.
// Operations issued through the router stay reliable while a sweep is in
// flight: a read that misses at a key's new home falls back to the other
// shards, and a deletion is recorded and purged everywhere so a stale source
// copy can never resurrect it. Routers that share shards but not state (a
// second router process over the same shard servers) see plain eventual
// consistency during a sweep instead — the contract the paper accepts for
// server volatility (§VIII).
//
// Partial failures of bulk operations surface through the typed-error model:
// the returned error wraps each failed shard's cause (so errors.Is sees
// ErrUnavailable when a shard is unreachable), and sub-batches that did reach
// their shard stay applied. Bulk application is idempotent, so callers — like
// the sync agent — simply re-send on the next round.
//
// A Router is safe for concurrent use.
type Router struct {
	site   cloud.SiteID
	placer dht.DynamicPlacer // over shard IDs masquerading as site IDs

	// mu guards shards/nextID and serializes membership changes against the
	// placer (which has its own lock for read paths).
	mu     sync.RWMutex
	shards map[cloud.SiteID]API // active shards plus shards draining after removal
	nextID cloud.SiteID

	// sweeps tracks in-flight background migration sweeps (see Wait);
	// sweeping counts the active ones so the hot path can cheaply tell
	// whether entries may currently live away from their home shard. It is
	// raised *before* a membership change touches the placer and lowered
	// only when the sweep (including retries) is over, so there is no window
	// in which keys are off-home but the mitigations below are inactive.
	// sweepGen increments on every sweepBegin: single-key fast paths snapshot
	// it before their shard call and re-check it afterwards, catching even a
	// sweep that started *and finished* while their call was in flight.
	sweeps   sync.WaitGroup
	sweeping atomic.Int32
	sweepGen atomic.Uint64

	// delMu guards deletedDuringSweep — the names deleted while a sweep was
	// active — *and* serializes the sweeping transitions against it: notes
	// are only recorded while the counter is positive and the set is cleared
	// in the same critical section that drops the counter to zero, so a
	// stale note can never leak into a later sweep. A sweep consults the set
	// before and after merging a moved batch so a stale source copy cannot
	// resurrect a concurrent deletion; writes re-establishing a name clear
	// its note.
	delMu              sync.Mutex
	deletedDuringSweep map[string]bool

	obs routerObs
}

// Router implements the registry API.
var _ API = (*Router)(nil)

// routerObs holds the router's observability instruments, resolved once at
// construction. All fields tolerate being nil (instrumentation disabled).
type routerObs struct {
	shardsG    *metrics.Gauge   // router_shards: active shards in placement
	bulkOps    *metrics.Counter // router_bulk_ops_total: bulk calls on the router
	subBatches *metrics.Counter // router_subbatches_total: per-shard sub-batches issued
	migrated   *metrics.Counter // router_migrated_entries_total: entries moved by sweeps
	sweepsC    *metrics.Counter // router_sweeps_total: migration sweeps completed
	sweepFails *metrics.Counter // router_sweep_failures_total: background sweeps abandoned after retries
	suppressed *metrics.Counter // router_suppressed_errors_total: errors swallowed by best-effort ops
}

func newRouterObs(reg *metrics.Registry) routerObs {
	return routerObs{
		shardsG:    reg.Gauge("router_shards"),
		bulkOps:    reg.Counter("router_bulk_ops_total"),
		subBatches: reg.Counter("router_subbatches_total"),
		migrated:   reg.Counter("router_migrated_entries_total"),
		sweepsC:    reg.Counter("router_sweeps_total"),
		sweepFails: reg.Counter("router_sweep_failures_total"),
		suppressed: reg.Counter("router_suppressed_errors_total"),
	}
}

// RouterOption configures a Router.
type RouterOption func(*routerConfig)

type routerConfig struct {
	placerFactory func(shardIDs []cloud.SiteID) dht.DynamicPlacer
	metrics       *metrics.Registry
}

// WithRouterPlacer selects how keys map to shards. The factory receives the
// initial shard IDs and must return a dynamic placer over them. The default
// is a consistent-hash ring (dht.NewRingPlacer), which keeps migration small
// when shards join or leave; pass dht.NewModuloPlacer for the paper's flat
// hash-mod-n scheme.
func WithRouterPlacer(f func(shardIDs []cloud.SiteID) dht.DynamicPlacer) RouterOption {
	return func(c *routerConfig) { c.placerFactory = f }
}

// WithRouterMetrics selects the registry the router's instruments report to:
// the active-shard gauge, bulk-call and sub-batch counters (their ratio is
// the fan-out factor), migrated-entry and sweep counters, and the
// suppressed-error counter fed by best-effort operations. The default is
// metrics.Default; pass nil to disable instrumentation entirely.
func WithRouterMetrics(reg *metrics.Registry) RouterOption {
	return func(c *routerConfig) { c.metrics = reg }
}

// NewRouter builds a routing tier for the given site over the given shard
// instances. Shards are assigned IDs 0..n-1 in input order; AddShard hands
// out the following IDs.
func NewRouter(site cloud.SiteID, shards []API, opts ...RouterOption) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("registry: router needs at least one shard")
	}
	cfg := routerConfig{
		placerFactory: func(ids []cloud.SiteID) dht.DynamicPlacer { return dht.NewRingPlacer(ids, 0) },
		metrics:       metrics.Default,
	}
	for _, o := range opts {
		o(&cfg)
	}
	ids := make([]cloud.SiteID, len(shards))
	m := make(map[cloud.SiteID]API, len(shards))
	for i, s := range shards {
		ids[i] = cloud.SiteID(i)
		m[cloud.SiteID(i)] = s
	}
	r := &Router{
		site:   site,
		placer: cfg.placerFactory(ids),
		shards: m,
		nextID: cloud.SiteID(len(shards)),
		obs:    newRouterObs(cfg.metrics),
	}
	r.obs.shardsG.Add(int64(len(shards)))
	return r, nil
}

// Site implements API: the datacenter this sharded tier serves as a whole.
func (r *Router) Site() cloud.SiteID { return r.site }

// Shards returns the IDs of the shards currently participating in placement,
// sorted. Shards still draining after RemoveShard are excluded.
func (r *Router) Shards() []cloud.SiteID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.placer.Sites()
}

// ShardCount returns the number of shards currently participating in
// placement.
func (r *Router) ShardCount() int { return len(r.Shards()) }

// Home returns the shard ID owning the given key under the current
// placement.
func (r *Router) Home(name string) cloud.SiteID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.placer.Home(name)
}

// shardFor resolves the shard owning name under the current placement.
func (r *Router) shardFor(name string) (cloud.SiteID, API, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id := r.placer.Home(name)
	api, ok := r.shards[id]
	if id == cloud.NoSite || !ok {
		return 0, nil, fmt.Errorf("registry: router for site %d: no shard owns %q: %w", r.site, name, ErrUnavailable)
	}
	return id, api, nil
}

// snapshotShards returns every shard currently attached — active ones plus
// any still draining — for full-tier fan-outs (Entries, Names, Len).
func (r *Router) snapshotShards() map[cloud.SiteID]API {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[cloud.SiteID]API, len(r.shards))
	for id, api := range r.shards {
		out[id] = api
	}
	return out
}

// shardErr wraps the per-shard failures of one routed operation. errors.Is
// and errors.As see through to every cause, so a caller checking
// ErrUnavailable (core.ErrSiteUnreachable) matches if any shard was
// unreachable.
func (r *Router) shardErr(op string, errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("registry: router %s at site %d: %w", op, r.site, errors.Join(errs...))
}

// Create implements API: routed to the shard owning the entry's name. A
// create during a sweep forgets any deletion note for the name first — the
// write re-establishes the entry, and a sweep's post-merge check must not
// undo it — and restores the note if the write fails. A membership change
// that begins while the fast-path write is in flight is caught by a re-check
// afterwards: the acknowledged entry is re-anchored at its current home so
// the sweep's source cleanup cannot orphan it.
func (r *Router) Create(ctx context.Context, e Entry) (Entry, error) {
	home, api, err := r.shardFor(e.Name)
	if err != nil {
		return Entry{}, err
	}
	gen := r.sweepGen.Load()
	if !r.sweepActive() {
		stored, cerr := api.Create(ctx, e)
		if cerr == nil && (r.sweepActive() || r.sweepGen.Load() != gen) {
			// A sweep started (and possibly finished) while the write was
			// in flight.
			r.reanchorWrite(ctx, home, stored)
		}
		return stored, cerr
	}
	noted := r.clearDeleted(e.Name)
	stored, err := api.Create(ctx, e)
	if err != nil && noted && !errors.Is(err, ErrExists) {
		// The entry stays absent; the deletion must stand. Re-note it and
		// re-assert it across the tier — the in-flight sweep may have merged
		// a stale copy during the window the note was cleared.
		r.deleteDuringSweep(ctx, home, api, e.Name) //nolint:errcheck // best-effort re-assertion of the standing deletion
	}
	return stored, err
}

// Put implements API: routed to the shard owning the entry's name. Like
// Create, a put during a sweep clears the name's deletion note (restoring
// it if the write fails), and a fast-path put that raced a membership
// change re-anchors the entry at its current home.
func (r *Router) Put(ctx context.Context, e Entry) (Entry, error) {
	home, api, err := r.shardFor(e.Name)
	if err != nil {
		return Entry{}, err
	}
	gen := r.sweepGen.Load()
	if !r.sweepActive() {
		stored, perr := api.Put(ctx, e)
		if perr == nil && (r.sweepActive() || r.sweepGen.Load() != gen) {
			r.reanchorWrite(ctx, home, stored)
		}
		return stored, perr
	}
	noted := r.clearDeleted(e.Name)
	stored, err := api.Put(ctx, e)
	if err != nil && noted {
		// See Create: re-assert the standing deletion everywhere.
		r.deleteDuringSweep(ctx, home, api, e.Name) //nolint:errcheck // best-effort re-assertion of the standing deletion
	}
	return stored, err
}

// reanchorWrite handles an acknowledged fast-path write that raced the start
// of a membership change: if the entry's home moved while the write was in
// flight, the stored entry is upserted at its current home too, so the
// migration sweep's source-side cleanup can never leave the acknowledged
// write behind on a shard that no longer owns it. Clearing the deletion note
// also keeps the sweep's post-merge check from undoing the write.
func (r *Router) reanchorWrite(ctx context.Context, wroteTo cloud.SiteID, e Entry) {
	r.clearDeleted(e.Name)
	if home, api, err := r.shardFor(e.Name); err == nil && home != wroteTo {
		api.Put(ctx, e) //nolint:errcheck // best-effort: the sweep migrating the original copy converges the same way
	}
}

// Get implements API: routed to the shard owning the name. While a
// migration sweep is in flight an entry may not have reached its new home
// yet, so a miss at the home shard falls back to the other shards before
// answering ErrNotFound — reads stay reliable through membership changes.
func (r *Router) Get(ctx context.Context, name string) (Entry, error) {
	home, api, err := r.shardFor(name)
	if err != nil {
		return Entry{}, err
	}
	e, err := api.Get(ctx, name)
	if err == nil || !errors.Is(err, ErrNotFound) || !r.sweepActive() {
		return e, err
	}
	for id, other := range r.snapshotShards() {
		if id == home {
			continue
		}
		if e, ferr := other.Get(ctx, name); ferr == nil {
			return e, nil
		}
	}
	return Entry{}, err
}

// Contains implements API. It is best-effort like every other
// implementation; a tier with no shard owning the name reads as "absent" and
// feeds the suppressed-error counter so the degradation is observable.
// During a migration sweep a miss at the home shard falls back to the other
// shards, matching Get.
func (r *Router) Contains(ctx context.Context, name string) bool {
	home, api, err := r.shardFor(name)
	if err != nil {
		r.obs.suppressed.Inc()
		return false
	}
	if api.Contains(ctx, name) {
		return true
	}
	if !r.sweepActive() {
		return false
	}
	for id, other := range r.snapshotShards() {
		if id == home {
			continue
		}
		if other.Contains(ctx, name) {
			return true
		}
	}
	return false
}

// AddLocation implements API: routed to the shard owning the name.
func (r *Router) AddLocation(ctx context.Context, name string, loc Location) (Entry, error) {
	_, api, err := r.shardFor(name)
	if err != nil {
		return Entry{}, err
	}
	return api.AddLocation(ctx, name, loc)
}

// Delete implements API: routed to the shard owning the name. While a
// migration sweep is in flight the deletion is additionally recorded (so the
// sweep cannot resurrect it from a stale source copy — see sweepShard) and
// purged from every other shard that may still hold an un-migrated copy. A
// sweep that begins while the fast-path delete is in flight is caught by a
// re-check afterwards, which re-runs the sweep-aware path (it is
// idempotent).
func (r *Router) Delete(ctx context.Context, name string) error {
	home, api, err := r.shardFor(name)
	if err != nil {
		return err
	}
	gen := r.sweepGen.Load()
	if r.sweepActive() {
		return r.deleteDuringSweep(ctx, home, api, name)
	}
	err = api.Delete(ctx, name)
	if r.sweepActive() || r.sweepGen.Load() != gen {
		// A sweep started (and possibly even finished) while the fast-path
		// delete was in flight; re-run the sweep-aware path to purge any
		// copy the sweep migrated meanwhile (it is idempotent).
		rerr := r.deleteDuringSweep(ctx, home, api, name)
		if err == nil {
			// Already acknowledged by the fast path; the re-run only cleans
			// up copies the racing sweep may have moved.
			return nil
		}
		return rerr
	}
	return err
}

// deleteDuringSweep is the sweep-aware delete path: it notes the deletion
// *before* touching any shard — a sweep that merges a stale copy afterwards
// is guaranteed to see the note in its post-merge check and undo the
// resurrection — deletes at the home shard and concurrently purges every
// other shard that may still hold an un-migrated copy.
func (r *Router) deleteDuringSweep(ctx context.Context, home cloud.SiteID, api API, name string) error {
	r.noteDeleted(name)
	err := api.Delete(ctx, name)

	var (
		mu     sync.Mutex
		purged int
		errs   []error
		wg     sync.WaitGroup
	)
	for id, other := range r.snapshotShards() {
		if id == home {
			continue
		}
		wg.Add(1)
		go func(id cloud.SiteID, other API) {
			defer wg.Done()
			n, derr := other.DeleteMany(ctx, []string{name})
			mu.Lock()
			defer mu.Unlock()
			if derr != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, derr))
				return
			}
			purged += n
		}(id, other)
	}
	wg.Wait()

	// A copy found only on a non-home shard (not migrated yet) still counts
	// as a successful delete.
	if errors.Is(err, ErrNotFound) && purged > 0 {
		err = nil
	}
	if err != nil {
		errs = append([]error{err}, errs...)
	}
	if len(errs) > 0 {
		return r.shardErr("delete", errs)
	}
	return nil
}

// sweepActive reports whether a migration sweep is currently in flight.
func (r *Router) sweepActive() bool { return r.sweeping.Load() > 0 }

// sweepBegin marks one sweep as in flight. It runs before the membership
// change it covers touches the placer, so the hot-path mitigations (read
// fallback, deletion notes and purges) are active the moment keys can be
// off-home.
func (r *Router) sweepBegin() {
	r.delMu.Lock()
	r.sweeping.Add(1)
	r.sweepGen.Add(1)
	r.delMu.Unlock()
}

// sweepEnd retires one sweep, clearing the deletion notes when it was the
// last — in the same critical section that drops the counter, so a
// concurrent noteDeleted cannot slip a note into the dying generation.
func (r *Router) sweepEnd() {
	r.delMu.Lock()
	if r.sweeping.Add(-1) == 0 {
		r.deletedDuringSweep = nil
	}
	r.delMu.Unlock()
}

// noteDeleted records a deletion performed while a sweep is active; if the
// last sweep just retired, the note is not needed and not recorded.
func (r *Router) noteDeleted(name string) {
	r.delMu.Lock()
	if r.sweeping.Load() > 0 {
		if r.deletedDuringSweep == nil {
			r.deletedDuringSweep = make(map[string]bool)
		}
		r.deletedDuringSweep[name] = true
	}
	r.delMu.Unlock()
}

// clearDeleted forgets the deletion note for a name a write is about to
// re-establish, so a sweep's post-merge check cannot undo a fresh
// Create/Put. It reports whether a note existed, so a failed write can
// restore exactly the protection it removed — and never invent a note for a
// name that was not deleted.
func (r *Router) clearDeleted(name string) bool {
	r.delMu.Lock()
	defer r.delMu.Unlock()
	if !r.deletedDuringSweep[name] {
		return false
	}
	delete(r.deletedDuringSweep, name)
	return true
}

// deletedSince reports which of the given names were deleted while a sweep
// was active.
func (r *Router) deletedSince(names []string) []string {
	r.delMu.Lock()
	defer r.delMu.Unlock()
	var out []string
	for _, n := range names {
		if r.deletedDuringSweep[n] {
			out = append(out, n)
		}
	}
	return out
}

// nameGroup is the slice of input positions one shard is responsible for.
type nameGroup struct {
	api API
	idx []int
}

// groupNames partitions input positions by owning shard. Bulk operations use
// it to build exactly one sub-batch per shard.
func (r *Router) groupNames(names []string) (map[cloud.SiteID]*nameGroup, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	groups := make(map[cloud.SiteID]*nameGroup)
	for i, name := range names {
		id := r.placer.Home(name)
		api, ok := r.shards[id]
		if id == cloud.NoSite || !ok {
			return nil, fmt.Errorf("registry: router for site %d: no shard owns %q: %w", r.site, name, ErrUnavailable)
		}
		g := groups[id]
		if g == nil {
			g = &nameGroup{api: api}
			groups[id] = g
		}
		g.idx = append(g.idx, i)
	}
	return groups, nil
}

// GetMany implements API: the name list is split into one sub-batch per
// owning shard, the sub-batches are issued concurrently, and the found
// entries are returned in input order (absent names are skipped, matching
// the single-shard semantics).
func (r *Router) GetMany(ctx context.Context, names []string) ([]Entry, error) {
	if len(names) == 0 {
		return nil, nil
	}
	groups, err := r.groupNames(names)
	if err != nil {
		return nil, err
	}
	r.countBulk(len(groups))

	var (
		mu    sync.Mutex
		found = make(map[string]Entry, len(names))
		errs  []error
		wg    sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]string, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = names[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, api API, sub []string) {
			defer wg.Done()
			batch, err := api.GetMany(ctx, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			for _, e := range batch {
				found[e.Name] = e
			}
		}(id, g.api, sub)
	}
	wg.Wait()
	if err := r.shardErr("get-many", errs); err != nil {
		return nil, err
	}

	// During a migration sweep an entry may not have reached its new home
	// yet; names the home shards missed fall back to the whole tier (one
	// concurrent sub-batch per shard), matching Get's fallback semantics.
	if r.sweepActive() {
		var missing []string
		seenMissing := make(map[string]bool)
		for _, name := range names {
			if _, ok := found[name]; !ok && !seenMissing[name] {
				seenMissing[name] = true
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			var fwg sync.WaitGroup
			for _, api := range r.snapshotShards() {
				fwg.Add(1)
				go func(api API) {
					defer fwg.Done()
					batch, ferr := api.GetMany(ctx, missing)
					if ferr != nil {
						return // best-effort fallback; the home answer stands
					}
					mu.Lock()
					for _, e := range batch {
						if _, ok := found[e.Name]; !ok {
							found[e.Name] = e
						}
					}
					mu.Unlock()
				}(api)
			}
			fwg.Wait()
		}
	}

	out := make([]Entry, 0, len(found))
	seen := make(map[string]bool, len(found))
	for _, name := range names {
		if e, ok := found[name]; ok && !seen[name] {
			seen[name] = true
			out = append(out, e)
		}
	}
	return out, nil
}

// PutMany implements API: the batch is split into one sub-batch per owning
// shard, issued concurrently, and the stored entries are returned in input
// order. Sub-batches that reached their shard stay applied even when another
// shard fails; the returned error wraps every failed shard's cause.
func (r *Router) PutMany(ctx context.Context, entries []Entry) ([]Entry, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	groups, err := r.groupNames(names)
	if err != nil {
		return nil, err
	}
	r.countBulk(len(groups))

	var (
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
	)
	out := make([]Entry, len(entries))
	for id, g := range groups {
		sub := make([]Entry, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = entries[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, api API, g *nameGroup, sub []Entry) {
			defer wg.Done()
			stored, err := api.PutMany(ctx, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			for i, pos := range g.idx {
				if i < len(stored) {
					out[pos] = stored[i]
				}
			}
		}(id, g.api, g, sub)
	}
	wg.Wait()
	if err := r.shardErr("put-many", errs); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteMany implements API: one sub-batch per owning shard, issued
// concurrently; the count of present-and-removed entries is summed. Shards
// that were reached stay applied on partial failure.
func (r *Router) DeleteMany(ctx context.Context, names []string) (int, error) {
	if len(names) == 0 {
		return 0, nil
	}
	groups, err := r.groupNames(names)
	if err != nil {
		return 0, err
	}
	r.countBulk(len(groups))

	var (
		mu    sync.Mutex
		total int
		errs  []error
		wg    sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]string, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = names[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, api API, sub []string) {
			defer wg.Done()
			n, err := api.DeleteMany(ctx, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			total += n
		}(id, g.api, sub)
	}
	wg.Wait()
	return total, r.shardErr("delete-many", errs)
}

// Merge implements API: one sub-batch per owning shard, issued concurrently;
// the number of applied entries is summed. Shards that were reached stay
// applied on partial failure — merge is idempotent, so the caller re-sends
// the whole batch on the next round.
func (r *Router) Merge(ctx context.Context, entries []Entry) (int, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	groups, err := r.groupNames(names)
	if err != nil {
		return 0, err
	}
	r.countBulk(len(groups))

	var (
		mu      sync.Mutex
		applied int
		errs    []error
		wg      sync.WaitGroup
	)
	for id, g := range groups {
		sub := make([]Entry, len(g.idx))
		for i, pos := range g.idx {
			sub[i] = entries[pos]
		}
		wg.Add(1)
		go func(id cloud.SiteID, api API, sub []Entry) {
			defer wg.Done()
			n, err := api.Merge(ctx, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			applied += n
		}(id, g.api, sub)
	}
	wg.Wait()
	return applied, r.shardErr("merge", errs)
}

// Entries implements API: every shard (including ones still draining) is
// queried concurrently and the results are merged, deduplicating by name —
// during a migration sweep an entry may briefly live on two shards, and the
// copy with the higher version wins.
func (r *Router) Entries(ctx context.Context) ([]Entry, error) {
	shards := r.snapshotShards()
	r.countBulk(len(shards))
	var (
		mu   sync.Mutex
		best = make(map[string]Entry)
		errs []error
		wg   sync.WaitGroup
	)
	for id, api := range shards {
		wg.Add(1)
		go func(id cloud.SiteID, api API) {
			defer wg.Done()
			batch, err := api.Entries(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				return
			}
			for _, e := range batch {
				if cur, ok := best[e.Name]; !ok || e.Version > cur.Version {
					best[e.Name] = e
				}
			}
		}(id, api)
	}
	wg.Wait()
	if err := r.shardErr("entries", errs); err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(best))
	for _, e := range best {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Names implements API: every shard is queried concurrently and the name
// sets are unioned. Best-effort like the other implementations — a shard
// that answers nothing contributes nothing.
func (r *Router) Names(ctx context.Context) []string {
	if ctx.Err() != nil {
		r.obs.suppressed.Inc()
		return nil
	}
	shards := r.snapshotShards()
	r.countBulk(len(shards))
	var (
		mu   sync.Mutex
		seen = make(map[string]bool)
		wg   sync.WaitGroup
	)
	for _, api := range shards {
		wg.Add(1)
		go func(api API) {
			defer wg.Done()
			names := api.Names(ctx)
			mu.Lock()
			defer mu.Unlock()
			for _, n := range names {
				seen[n] = true
			}
		}(api)
	}
	wg.Wait()
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len implements API: the shard sizes are summed, querying every shard
// concurrently like the other full-tier fan-outs (best-effort; an entry
// mid-migration may briefly count twice).
func (r *Router) Len(ctx context.Context) int {
	var (
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for _, api := range r.snapshotShards() {
		wg.Add(1)
		go func(api API) {
			defer wg.Done()
			total.Add(int64(api.Len(ctx)))
		}(api)
	}
	wg.Wait()
	return int(total.Load())
}

// countBulk feeds the bulk-call and sub-batch counters; their ratio is the
// observed fan-out factor of the tier.
func (r *Router) countBulk(subBatches int) {
	r.obs.bulkOps.Inc()
	r.obs.subBatches.Add(int64(subBatches))
}

// AddShard attaches a new shard to the tier, returning its ID. The shard
// immediately participates in placement and a background migration sweep
// moves the entries the consistent-hash ring now assigns to it. Call Wait to
// block until the sweep completes, or Rebalance to run one synchronously.
func (r *Router) AddShard(api API) cloud.SiteID {
	// Raise the sweep flag before the placer changes: from the very first
	// moment a key's home can differ from where its entry lives, reads fall
	// back and deletions purge/note (see Get, Delete).
	r.sweepBegin()
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.shards[id] = api
	r.placer.Add(id)
	r.mu.Unlock()
	r.obs.shardsG.Add(1)
	r.spawnSweep()
	return id
}

// RemoveShard withdraws a shard from placement. Its entries are drained to
// their new home shards by a background migration sweep, after which the
// shard is detached entirely; until then full-tier reads (Entries, Names)
// still see it. Removing the last shard or an unknown ID is an error.
func (r *Router) RemoveShard(id cloud.SiteID) error {
	r.sweepBegin() // before the placer changes; see AddShard
	r.mu.Lock()
	if _, ok := r.shards[id]; !ok {
		r.mu.Unlock()
		r.sweepEnd()
		return fmt.Errorf("registry: router for site %d: no shard %d", r.site, id)
	}
	active := r.placer.Sites()
	inPlacement := false
	for _, s := range active {
		if s == id {
			inPlacement = true
		}
	}
	if !inPlacement {
		r.mu.Unlock()
		r.sweepEnd()
		return fmt.Errorf("registry: router for site %d: shard %d is already draining", r.site, id)
	}
	if len(active) <= 1 {
		r.mu.Unlock()
		r.sweepEnd()
		return fmt.Errorf("registry: router for site %d: cannot remove the last shard", r.site)
	}
	r.placer.Remove(id)
	r.mu.Unlock()
	r.obs.shardsG.Add(-1)
	r.spawnSweep()
	return nil
}

// sweepRetries bounds how often a failed background sweep is retried before
// it is abandoned (counted in router_sweep_failures_total; an explicit
// Rebalance or the next membership change picks the migration up again).
const sweepRetries = 5

// spawnSweep runs the migration sweep asynchronously — membership changes
// use it so AddShard/RemoveShard return immediately. The caller must have
// called sweepBegin already; the sweep retires it when done. Transient
// failures (an unreachable remote shard) are retried with backoff so keys
// are not left off-home with the mitigations disarmed; a sweep abandoned
// after the retry budget is observable via router_sweep_failures_total.
func (r *Router) spawnSweep() {
	r.sweeps.Add(1)
	go func() {
		defer r.sweeps.Done()
		defer r.sweepEnd()
		for attempt := 0; ; attempt++ {
			_, err := r.rebalance(context.Background())
			if err == nil {
				return
			}
			if attempt >= sweepRetries {
				r.obs.sweepFails.Inc()
				return
			}
			time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
		}
	}()
}

// Wait blocks until every background migration sweep started by AddShard or
// RemoveShard has completed.
func (r *Router) Wait() { r.sweeps.Wait() }

// Rebalance sweeps every shard and migrates entries whose home changed
// (because a shard joined or left) to their current owner, one bulk Merge
// per destination shard followed by one bulk DeleteMany on the source.
// Shards that have been withdrawn from placement are dropped from the tier
// once their drain completes. It returns how many entries moved.
//
// Rebalance is safe to call at any time — a no-op sweep moves nothing — and
// is idempotent: migration uses the same last-writer-wins merge as
// inter-site propagation, so re-running a partially failed sweep converges.
// Deletions issued through *this* router while the sweep runs are tracked
// and can never be resurrected by a stale source copy; concurrent routers
// over the same shards (e.g. a client-side metactl router) do not share
// that protection.
func (r *Router) Rebalance(ctx context.Context) (int, error) {
	r.sweepBegin()
	defer r.sweepEnd()
	return r.rebalance(ctx)
}

// rebalance is Rebalance without the sweep-flag management; spawnSweep calls
// it under a flag the membership change already raised.
func (r *Router) rebalance(ctx context.Context) (int, error) {
	moved := 0
	var errs []error
	for id, api := range r.snapshotShards() {
		n, err := r.sweepShard(ctx, id, api)
		moved += n
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
			continue
		}
		// A drained shard that no longer participates in placement is
		// detached once it holds nothing. The placer read and the (possibly
		// remote, possibly slow) Len call run outside the router lock so a
		// struggling drained shard never stalls the tier's hot path; only
		// the map delete itself takes the lock.
		inPlacement := false
		for _, s := range r.placer.Sites() {
			if s == id {
				inPlacement = true
			}
		}
		if !inPlacement && api.Len(ctx) == 0 {
			r.mu.Lock()
			delete(r.shards, id)
			r.mu.Unlock()
		}
	}
	if moved > 0 {
		r.obs.migrated.Add(int64(moved))
	}
	err := r.shardErr("rebalance", errs)
	if err == nil {
		// Only clean sweeps count as completed; failed attempts surface via
		// router_sweep_failures_total once the retry budget is spent.
		r.obs.sweepsC.Inc()
	}
	return moved, err
}

// sweepShard moves the entries of one shard that the current placement
// assigns elsewhere: grouped per destination, one bulk Merge per destination
// shard, then one bulk DeleteMany on the source for the entries that were
// safely merged.
func (r *Router) sweepShard(ctx context.Context, id cloud.SiteID, api API) (int, error) {
	entries, err := api.Entries(ctx)
	if err != nil {
		return 0, err
	}
	byDest := make(map[cloud.SiteID][]Entry)
	r.mu.RLock()
	for _, e := range entries {
		home := r.placer.Home(e.Name)
		if home != id {
			byDest[home] = append(byDest[home], e)
		}
	}
	dests := make(map[cloud.SiteID]API, len(byDest))
	for dest := range byDest {
		if dapi, ok := r.shards[dest]; ok {
			dests[dest] = dapi
		}
	}
	r.mu.RUnlock()

	moved := 0
	var errs []error
	for dest, batch := range byDest {
		dapi, ok := dests[dest]
		if !ok {
			errs = append(errs, fmt.Errorf("destination shard %d detached mid-sweep: %w", dest, ErrUnavailable))
			continue
		}
		// Skip entries deleted since the sweep read them: merging the stale
		// source copy would resurrect the deletion at its new home.
		names := make([]string, 0, len(batch))
		kept := batch[:0:0]
		for _, e := range batch {
			names = append(names, e.Name)
			kept = append(kept, e)
		}
		if dropped := r.deletedSince(names); len(dropped) > 0 {
			gone := make(map[string]bool, len(dropped))
			for _, n := range dropped {
				gone[n] = true
			}
			kept = kept[:0]
			for _, e := range batch {
				if !gone[e.Name] {
					kept = append(kept, e)
				}
			}
		}
		if _, err := dapi.Merge(ctx, kept); err != nil {
			errs = append(errs, fmt.Errorf("merge into shard %d: %w", dest, err))
			continue
		}
		if _, err := api.DeleteMany(ctx, names); err != nil {
			errs = append(errs, fmt.Errorf("cleanup after move to shard %d: %w", dest, err))
			continue
		}
		// Post-merge check: a Delete that raced the Merge noted itself before
		// touching any shard, so re-reading the note set here catches every
		// deletion the Merge may have resurrected — undo it at the
		// destination.
		movedNames := make([]string, len(kept))
		for i, e := range kept {
			movedNames[i] = e.Name
		}
		if undo := r.deletedSince(movedNames); len(undo) > 0 {
			if _, err := dapi.DeleteMany(ctx, undo); err != nil {
				errs = append(errs, fmt.Errorf("undoing resurrected deletions on shard %d: %w", dest, err))
				continue
			}
		}
		moved += len(kept)
	}
	return moved, errors.Join(errs...)
}
