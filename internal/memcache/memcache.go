// Package memcache implements the per-site in-memory cache service that the
// metadata registry is built on.
//
// The paper deploys one instance of Azure Managed Cache per datacenter and
// stores every registry entry in it, relying on three of its properties:
//
//   - all data is kept in memory (no disk I/O on the metadata path),
//   - optimistic concurrency: writers do not lock entries, they publish a new
//     version and conflicting writers retry (workflow data is written once, so
//     conflicts are rare),
//   - high availability via a primary cache and a replica that is promoted
//     when the primary fails.
//
// This package reproduces those properties with a sharded, versioned,
// in-memory key-value store. It also models the *capacity* of a managed cache
// instance — a bounded number of concurrent server-side operations, each with
// a small service time — because that bound is what makes a single
// centralized registry saturate under concurrency and produces the scaling
// behaviour of Figs. 5, 7 and 8.
package memcache

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/metrics"
)

// Common errors returned by cache operations.
var (
	// ErrNotFound is returned by Get/CAS/Delete when the key does not exist.
	ErrNotFound = errors.New("memcache: key not found")
	// ErrVersionConflict is returned by CAS when the stored version differs
	// from the expected one (optimistic-concurrency failure).
	ErrVersionConflict = errors.New("memcache: version conflict")
	// ErrStopped is returned once the cache has been stopped.
	ErrStopped = errors.New("memcache: cache stopped")
	// ErrCapacity is returned when the item would exceed the configured
	// maximum number of entries.
	ErrCapacity = errors.New("memcache: capacity exceeded")
)

// Item is one versioned value stored in the cache.
type Item struct {
	// Key is the unique identifier of the item.
	Key string
	// Value is the opaque payload (typically a gob-encoded registry entry).
	Value []byte
	// Version is a monotonically increasing per-key version number starting
	// at 1 for the first Put; CAS uses it for optimistic concurrency.
	Version uint64
	// Expires is the absolute expiration time; the zero time means no TTL.
	Expires time.Time
}

// Expired reports whether the item has passed its TTL at time now.
func (it Item) Expired(now time.Time) bool {
	return !it.Expires.IsZero() && now.After(it.Expires)
}

// Config parameterizes a cache instance.
type Config struct {
	// Shards is the number of lock shards; 0 selects a sensible default.
	Shards int
	// MaxItems bounds the number of live entries across all shards;
	// 0 means unlimited.
	MaxItems int
	// ServiceTime is the simulated per-operation server-side processing time
	// (Azure Managed Cache Basic instances serve a few thousand ops/s).
	// 0 disables service-time modelling.
	ServiceTime time.Duration
	// Concurrency bounds the number of operations the instance serves at the
	// same time (the worker pool of the managed service). 0 means unbounded.
	Concurrency int
	// DefaultTTL is applied to items stored without an explicit TTL;
	// 0 means entries never expire.
	DefaultTTL time.Duration
	// BatchFactor is the amortization factor of bulk operations: a batch of n
	// items costs one slot acquisition plus ServiceTime * (1 + n/BatchFactor)
	// of processing, modelling the server-side efficiency of bulk get/put
	// (0 selects the default of 16).
	BatchFactor int
	// Sleep is the function used to model the service time; tests replace it.
	// nil means time.Sleep.
	Sleep func(time.Duration)
	// Now is the clock used for TTL handling; nil means time.Now.
	Now func() time.Time
	// Metrics, when non-nil, receives live instrumentation: hit/miss/get
	// counters, the occupancy gauge and the worker-slot wait histogram.
	// Instances sharing one registry aggregate into shared series.
	Metrics *metrics.Registry
}

const defaultShards = 16

// defaultBatchFactor is the bulk-operation amortization used when
// Config.BatchFactor is zero.
const defaultBatchFactor = 16

// Stats aggregates operation counters of one cache instance.
type Stats struct {
	Gets, Hits, Misses   uint64
	Puts, CASes, Deletes uint64
	Conflicts            uint64
	Evictions            uint64
	Items                int
	Bytes                int64
}

// Cache is a sharded in-memory key-value store with versioned items and a
// bounded service capacity. It is safe for concurrent use.
type Cache struct {
	cfg    Config
	shards []*shard
	// slots implements the bounded server-side concurrency.
	slots chan struct{}

	stopped atomic.Bool

	gets, hits, misses   atomic.Uint64
	puts, cases, deletes atomic.Uint64
	conflicts, evictions atomic.Uint64
	bytes                atomic.Int64
	items                atomic.Int64

	obs cacheObs
}

// cacheObs mirrors the cache's counters into a metrics.Registry so they can
// be scraped live. All fields tolerate being nil (instrumentation disabled);
// occupancy is maintained as deltas so caches sharing a registry aggregate.
type cacheObs struct {
	gets     *metrics.Counter   // memcache_gets_total
	hits     *metrics.Counter   // memcache_hits_total
	misses   *metrics.Counter   // memcache_misses_total
	items    *metrics.Gauge     // memcache_items: live entries (occupancy)
	slotWait *metrics.Histogram // memcache_slot_wait_ns: time spent queueing for a worker slot
}

func newCacheObs(reg *metrics.Registry) cacheObs {
	return cacheObs{
		gets:     reg.Counter("memcache_gets_total"),
		hits:     reg.Counter("memcache_hits_total"),
		misses:   reg.Counter("memcache_misses_total"),
		items:    reg.Gauge("memcache_items"),
		slotWait: reg.Histogram("memcache_slot_wait_ns"),
	}
}

type shard struct {
	mu    sync.RWMutex
	items map[string]Item
}

// New returns an empty cache with the given configuration.
func New(cfg Config) *Cache {
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.BatchFactor <= 0 {
		cfg.BatchFactor = defaultBatchFactor
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Cache{cfg: cfg, obs: newCacheObs(cfg.Metrics)}
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = &shard{items: make(map[string]Item)}
	}
	if cfg.Concurrency > 0 {
		c.slots = make(chan struct{}, cfg.Concurrency)
	}
	return c
}

// NewBasic returns a cache modelled after the "Basic 512 MB" Azure Managed
// Cache instance used in the paper's evaluation: a modest worker pool and a
// sub-millisecond per-operation service time.
func NewBasic() *Cache {
	return New(Config{
		Shards:      defaultShards,
		ServiceTime: 700 * time.Microsecond,
		Concurrency: 4,
	})
}

// Stop marks the cache as stopped; subsequent operations fail with
// ErrStopped. Stopping an already stopped cache is a no-op.
func (c *Cache) Stop() { c.stopped.Store(true) }

// Stopped reports whether Stop has been called.
func (c *Cache) Stopped() bool { return c.stopped.Load() }

// enter models the service capacity: it acquires a worker slot (possibly
// waiting behind other requests) and charges the per-operation service time.
func (c *Cache) enter() error {
	if c.stopped.Load() {
		return ErrStopped
	}
	if c.slots != nil {
		if c.obs.slotWait != nil {
			start := time.Now()
			c.slots <- struct{}{}
			c.obs.slotWait.ObserveDuration(time.Since(start))
		} else {
			c.slots <- struct{}{}
		}
	}
	return nil
}

// addItems tracks the live-entry count, mirroring it into the occupancy
// gauge when instrumentation is on.
func (c *Cache) addItems(delta int64) {
	c.items.Add(delta)
	c.obs.items.Add(delta)
}

// countGet / countHit / countMiss keep the cache's own statistics and the
// exported live series in lockstep.
func (c *Cache) countGet()  { c.gets.Add(1); c.obs.gets.Inc() }
func (c *Cache) countHit()  { c.hits.Add(1); c.obs.hits.Inc() }
func (c *Cache) countMiss() { c.misses.Add(1); c.obs.misses.Inc() }

func (c *Cache) leave() {
	if c.cfg.ServiceTime > 0 {
		c.cfg.Sleep(c.cfg.ServiceTime)
	}
	if c.slots != nil {
		<-c.slots
	}
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// Get returns the item stored under key. It returns ErrNotFound when the key
// is absent or its TTL has expired.
func (c *Cache) Get(key string) (Item, error) {
	if err := c.enter(); err != nil {
		return Item{}, err
	}
	defer c.leave()
	c.countGet()

	sh := c.shardFor(key)
	sh.mu.RLock()
	it, ok := sh.items[key]
	sh.mu.RUnlock()
	if !ok || it.Expired(c.cfg.Now()) {
		if ok {
			c.removeExpired(key, it.Version)
		}
		c.countMiss()
		return Item{}, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	c.countHit()
	return it, nil
}

// Contains reports whether key is present (and unexpired) without counting as
// a Get in the statistics. Like Keys and Snapshot it bypasses the modelled
// service capacity (no worker slot, no service time) and works on a stopped
// cache — it is a control-plane probe, not a data-plane read.
func (c *Cache) Contains(key string) bool {
	sh := c.shardFor(key)
	sh.mu.RLock()
	it, ok := sh.items[key]
	sh.mu.RUnlock()
	return ok && !it.Expired(c.cfg.Now())
}

// Put stores value under key unconditionally, assigning the next version
// number. It returns the stored item.
func (c *Cache) Put(key string, value []byte, ttl time.Duration) (Item, error) {
	if err := c.enter(); err != nil {
		return Item{}, err
	}
	defer c.leave()
	c.puts.Add(1)
	return c.store(key, value, ttl, nil)
}

// CAS stores value under key only if the currently stored version equals
// expectedVersion. Use expectedVersion == 0 to require that the key does not
// exist yet ("add" semantics). On mismatch it returns ErrVersionConflict and
// the conflicting stored item.
func (c *Cache) CAS(key string, value []byte, ttl time.Duration, expectedVersion uint64) (Item, error) {
	if err := c.enter(); err != nil {
		return Item{}, err
	}
	defer c.leave()
	c.cases.Add(1)
	return c.store(key, value, ttl, &expectedVersion)
}

func (c *Cache) store(key string, value []byte, ttl time.Duration, expected *uint64) (Item, error) {
	if ttl == 0 {
		ttl = c.cfg.DefaultTTL
	}
	now := c.cfg.Now()
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	cur, exists := sh.items[key]
	if exists && cur.Expired(now) {
		delete(sh.items, key)
		c.addItems(-1)
		c.bytes.Add(-int64(len(cur.Value)))
		c.evictions.Add(1)
		exists = false
		cur = Item{}
	}
	if expected != nil {
		var curVersion uint64
		if exists {
			curVersion = cur.Version
		}
		if curVersion != *expected {
			c.conflicts.Add(1)
			return cur, fmt.Errorf("cas %q: have version %d, want %d: %w", key, curVersion, *expected, ErrVersionConflict)
		}
	}
	reserved := false
	if !exists && c.cfg.MaxItems > 0 {
		// Reserve the slot with the same atomic add that commits it: a
		// load-then-add would let two inserts on different shards (each under
		// its own shard lock) both pass the bound and overshoot MaxItems.
		if int(c.items.Add(1)) > c.cfg.MaxItems {
			c.items.Add(-1)
			return Item{}, fmt.Errorf("put %q: %w", key, ErrCapacity)
		}
		c.obs.items.Add(1)
		reserved = true
	}

	it := Item{Key: key, Value: append([]byte(nil), value...), Version: cur.Version + 1}
	if ttl > 0 {
		it.Expires = now.Add(ttl)
	}
	sh.items[key] = it
	if exists {
		c.bytes.Add(int64(len(value)) - int64(len(cur.Value)))
	} else {
		if !reserved {
			c.addItems(1)
		}
		c.bytes.Add(int64(len(value)))
	}
	return it, nil
}

// Delete removes key from the cache. It returns ErrNotFound when absent.
func (c *Cache) Delete(key string) error {
	if err := c.enter(); err != nil {
		return err
	}
	defer c.leave()
	c.deletes.Add(1)

	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, ok := sh.items[key]
	if !ok {
		return fmt.Errorf("delete %q: %w", key, ErrNotFound)
	}
	delete(sh.items, key)
	c.addItems(-1)
	c.bytes.Add(-int64(len(it.Value)))
	return nil
}

// removeExpired removes key if it is still at the given version; used by Get
// to lazily evict expired items.
func (c *Cache) removeExpired(key string, version uint64) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if it, ok := sh.items[key]; ok && it.Version == version {
		delete(sh.items, key)
		c.addItems(-1)
		c.bytes.Add(-int64(len(it.Value)))
		c.evictions.Add(1)
	}
}

// Keys returns all live (unexpired) keys in unspecified order. It bypasses
// the modelled service capacity and works on a stopped cache: it serves
// control-plane sweeps (re-sync, migration), not the measured data path.
func (c *Cache) Keys() []string {
	now := c.cfg.Now()
	var keys []string
	for _, sh := range c.shards {
		sh.mu.RLock()
		for k, it := range sh.items {
			if !it.Expired(now) {
				keys = append(keys, k)
			}
		}
		sh.mu.RUnlock()
	}
	return keys
}

// Snapshot returns a copy of every live item; the synchronization agent uses
// it to pull the full content of a registry instance. Like Keys it bypasses
// the modelled service capacity and works on a stopped cache, which failover
// repopulation (HACache.FailPrimary) depends on.
func (c *Cache) Snapshot() []Item {
	now := c.cfg.Now()
	var items []Item
	for _, sh := range c.shards {
		sh.mu.RLock()
		for _, it := range sh.items {
			if !it.Expired(now) {
				items = append(items, it)
			}
		}
		sh.mu.RUnlock()
	}
	return items
}

// Len returns the number of live entries.
func (c *Cache) Len() int { return int(c.items.Load()) }

// Stats returns a snapshot of the operation counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Gets:      c.gets.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		CASes:     c.cases.Load(),
		Deletes:   c.deletes.Load(),
		Conflicts: c.conflicts.Load(),
		Evictions: c.evictions.Load(),
		Items:     int(c.items.Load()),
		Bytes:     c.bytes.Load(),
	}
}
