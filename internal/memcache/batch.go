package memcache

import "time"

// KV is one key/value pair of a bulk write.
type KV struct {
	// Key is the item's unique identifier.
	Key string
	// Value is the opaque payload.
	Value []byte
	// TTL is the item's time to live (0 = Config.DefaultTTL, or no expiry).
	TTL time.Duration
}

// GetBatch retrieves many keys in one server-side operation. It returns the
// found items and the keys that were absent (or expired). A batch costs one
// worker-slot acquisition plus an amortized per-item service time, which is
// what makes bulk transfers (synchronization agent rounds, lazy-propagation
// flushes) far cheaper than issuing the equivalent individual operations.
func (c *Cache) GetBatch(keys []string) (found []Item, missing []string, err error) {
	if err := c.enter(); err != nil {
		return nil, nil, err
	}
	defer c.leaveBatch(len(keys))

	now := c.cfg.Now()
	for _, key := range keys {
		c.countGet()
		sh := c.shardFor(key)
		sh.mu.RLock()
		it, ok := sh.items[key]
		sh.mu.RUnlock()
		if !ok || it.Expired(now) {
			if ok {
				c.removeExpired(key, it.Version)
			}
			c.countMiss()
			missing = append(missing, key)
			continue
		}
		c.countHit()
		found = append(found, it)
	}
	return found, missing, nil
}

// PutBatch stores many key/value pairs in one server-side operation,
// returning the stored items in input order. Like GetBatch it charges one
// slot acquisition plus an amortized per-item service time.
func (c *Cache) PutBatch(kvs []KV) ([]Item, error) {
	if err := c.enter(); err != nil {
		return nil, err
	}
	defer c.leaveBatch(len(kvs))

	out := make([]Item, 0, len(kvs))
	for _, kv := range kvs {
		c.puts.Add(1)
		it, err := c.store(kv.Key, kv.Value, kv.TTL, nil)
		if err != nil {
			return out, err
		}
		out = append(out, it)
	}
	return out, nil
}

// DeleteBatch removes many keys in one server-side operation, returning how
// many of them were present. Absent keys are skipped rather than reported as
// errors: a bulk delete is the propagation of deletions that already
// succeeded somewhere else, so "already gone" is success.
func (c *Cache) DeleteBatch(keys []string) (int, error) {
	if err := c.enter(); err != nil {
		return 0, err
	}
	defer c.leaveBatch(len(keys))

	deleted := 0
	for _, key := range keys {
		c.deletes.Add(1)
		sh := c.shardFor(key)
		sh.mu.Lock()
		it, ok := sh.items[key]
		if ok {
			delete(sh.items, key)
			c.addItems(-1)
			c.bytes.Add(-int64(len(it.Value)))
			deleted++
		}
		sh.mu.Unlock()
	}
	return deleted, nil
}

// leaveBatch releases the worker slot after charging the amortized service
// time of an n-item batch.
func (c *Cache) leaveBatch(n int) {
	if c.cfg.ServiceTime > 0 {
		d := c.cfg.ServiceTime + c.cfg.ServiceTime*time.Duration(n)/time.Duration(c.cfg.BatchFactor)
		c.cfg.Sleep(d)
	}
	if c.slots != nil {
		<-c.slots
	}
}

// GetBatch implements the bulk read on the highly-available pair by reading
// from the primary.
func (h *HACache) GetBatch(keys []string) ([]Item, []string, error) {
	return h.Primary().GetBatch(keys)
}

// PutBatch implements the bulk write on the highly-available pair, mirroring
// the values to the replica.
func (h *HACache) PutBatch(kvs []KV) ([]Item, error) {
	h.mu.RLock()
	primary, replica := h.primary, h.replica
	h.mu.RUnlock()
	items, err := primary.PutBatch(kvs)
	if err != nil {
		return items, err
	}
	_, merr := replica.PutBatch(kvs)
	h.mirror(merr)
	return items, nil
}

// DeleteBatch implements the bulk delete on the highly-available pair,
// mirroring the removals to the replica.
func (h *HACache) DeleteBatch(keys []string) (int, error) {
	h.mu.RLock()
	primary, replica := h.primary, h.replica
	h.mu.RUnlock()
	n, err := primary.DeleteBatch(keys)
	if err != nil {
		return n, err
	}
	// DeleteBatch treats absent keys as success, so any replica error is
	// real divergence.
	_, merr := replica.DeleteBatch(keys)
	h.mirror(merr)
	return n, nil
}
