package memcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// HACache provides the high-availability behaviour of the managed cache tier
// described in the paper: a primary cache and a replica cache; when the
// primary fails the replica is promoted and a fresh replica is created and
// repopulated in the background.
//
// Reads and writes always go to the current primary; every successful write
// is mirrored synchronously to the replica so the replica can take over
// without losing acknowledged entries. A mirror write that fails (replica at
// capacity, stopped) does not fail the caller's write — the primary accepted
// it — but it does mean the replica has silently diverged and a failover
// would lose the entry; MirrorFailures counts those events so operators and
// tests can detect the divergence instead of discovering it after a
// promotion.
type HACache struct {
	mu       sync.RWMutex
	primary  *Cache
	replica  *Cache
	factory  func() *Cache
	failures int
	// mirrorFailures counts writes the primary accepted but the replica
	// rejected — acknowledged entries a failover would lose.
	mirrorFailures atomic.Uint64
}

// NewHA wraps a primary/replica pair built by factory. The factory is also
// used to create fresh replicas after a failover.
func NewHA(factory func() *Cache) *HACache {
	return &HACache{
		primary: factory(),
		replica: factory(),
		factory: factory,
	}
}

// Primary returns the current primary cache instance.
func (h *HACache) Primary() *Cache {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.primary
}

// Failures returns how many failovers have occurred.
func (h *HACache) Failures() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.failures
}

// MirrorFailures returns how many acknowledged writes the replica failed to
// mirror. A non-zero count means the replica has diverged from the primary
// and a failover would lose those entries.
func (h *HACache) MirrorFailures() uint64 { return h.mirrorFailures.Load() }

// mirror applies one replica write outcome: a failed mirror is counted, not
// surfaced — the primary accepted the write, so the caller's operation
// succeeded — and the counter is how the divergence stays observable.
func (h *HACache) mirror(err error) {
	if err != nil {
		h.mirrorFailures.Add(1)
	}
}

// Get reads from the primary.
func (h *HACache) Get(key string) (Item, error) {
	return h.Primary().Get(key)
}

// Contains reports whether the primary holds the key.
func (h *HACache) Contains(key string) bool {
	return h.Primary().Contains(key)
}

// Put writes to the primary and mirrors the value to the replica.
func (h *HACache) Put(key string, value []byte, ttl time.Duration) (Item, error) {
	h.mu.RLock()
	primary, replica := h.primary, h.replica
	h.mu.RUnlock()
	it, err := primary.Put(key, value, ttl)
	if err != nil {
		return it, err
	}
	// The replica mirrors values but keeps its own version counter; entries
	// are re-versioned on promotion, which is safe because registry entries
	// are written once (paper §III-B).
	_, merr := replica.Put(key, value, ttl)
	h.mirror(merr)
	return it, nil
}

// CAS performs an optimistic-concurrency write on the primary, mirroring the
// result to the replica on success.
func (h *HACache) CAS(key string, value []byte, ttl time.Duration, expectedVersion uint64) (Item, error) {
	h.mu.RLock()
	primary, replica := h.primary, h.replica
	h.mu.RUnlock()
	it, err := primary.CAS(key, value, ttl, expectedVersion)
	if err != nil {
		return it, err
	}
	_, merr := replica.Put(key, value, ttl)
	h.mirror(merr)
	return it, nil
}

// Delete removes the key from both primary and replica.
func (h *HACache) Delete(key string) error {
	h.mu.RLock()
	primary, replica := h.primary, h.replica
	h.mu.RUnlock()
	err := primary.Delete(key)
	// A replica-side ErrNotFound is not divergence — the mirrored state is
	// identical ("already gone"); only count deletes the primary accepted.
	if merr := replica.Delete(key); merr != nil && err == nil && !errors.Is(merr, ErrNotFound) {
		h.mirrorFailures.Add(1)
	}
	return err
}

// Len returns the number of live entries in the primary.
func (h *HACache) Len() int { return h.Primary().Len() }

// Keys lists the live keys of the primary.
func (h *HACache) Keys() []string { return h.Primary().Keys() }

// Snapshot returns all live items of the primary.
func (h *HACache) Snapshot() []Item { return h.Primary().Snapshot() }

// Stats returns the primary's statistics.
func (h *HACache) Stats() Stats { return h.Primary().Stats() }

// FailPrimary simulates a failure of the primary instance: the replica is
// promoted to primary and a new, freshly populated replica is created, as
// described in §III-B of the paper. The failed instance is stopped.
func (h *HACache) FailPrimary() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failures++
	old := h.primary
	h.primary = h.replica
	old.Stop()
	// Create and repopulate a fresh replica from the promoted primary.
	h.replica = h.factory()
	for _, it := range h.primary.Snapshot() {
		ttl := time.Duration(0)
		if !it.Expires.IsZero() {
			// Preserve the remaining TTL approximately, against the cache's
			// own clock so fake-clock tests repopulate correctly.
			ttl = it.Expires.Sub(h.primary.cfg.Now())
			if ttl <= 0 {
				continue
			}
		}
		if _, err := h.replica.Put(it.Key, it.Value, ttl); err != nil {
			h.mirrorFailures.Add(1)
		}
	}
}
