package memcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestCache() *Cache {
	return New(Config{Shards: 4})
}

func TestPutGet(t *testing.T) {
	c := newTestCache()
	it, err := c.Put("file1", []byte("loc:siteA"), 0)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if it.Version != 1 {
		t.Errorf("first Put version = %d, want 1", it.Version)
	}
	got, err := c.Get("file1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got.Value) != "loc:siteA" {
		t.Errorf("value = %q", got.Value)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestGetMissing(t *testing.T) {
	c := newTestCache()
	_, err := c.Get("absent")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestPutOverwritesAndBumpsVersion(t *testing.T) {
	c := newTestCache()
	c.Put("k", []byte("v1"), 0)
	it, _ := c.Put("k", []byte("v2"), 0)
	if it.Version != 2 {
		t.Errorf("version = %d, want 2", it.Version)
	}
	got, _ := c.Get("k")
	if string(got.Value) != "v2" {
		t.Errorf("value = %q, want v2", got.Value)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCASAddSemantics(t *testing.T) {
	c := newTestCache()
	// expectedVersion 0 == "key must not exist".
	if _, err := c.CAS("k", []byte("v1"), 0, 0); err != nil {
		t.Fatalf("CAS add: %v", err)
	}
	_, err := c.CAS("k", []byte("v2"), 0, 0)
	if !errors.Is(err, ErrVersionConflict) {
		t.Errorf("CAS add on existing = %v, want ErrVersionConflict", err)
	}
}

func TestCASVersionedUpdate(t *testing.T) {
	c := newTestCache()
	it, _ := c.Put("k", []byte("v1"), 0)
	if _, err := c.CAS("k", []byte("v2"), 0, it.Version); err != nil {
		t.Fatalf("CAS with matching version: %v", err)
	}
	_, err := c.CAS("k", []byte("v3"), 0, it.Version)
	if !errors.Is(err, ErrVersionConflict) {
		t.Errorf("CAS with stale version = %v, want ErrVersionConflict", err)
	}
	if c.Stats().Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", c.Stats().Conflicts)
	}
}

func TestDelete(t *testing.T) {
	c := newTestCache()
	c.Put("k", []byte("v"), 0)
	if err := c.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if c.Contains("k") {
		t.Error("key still present after delete")
	}
	if err := c.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete = %v, want ErrNotFound", err)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{Now: func() time.Time { return now }})
	c.Put("k", []byte("v"), time.Minute)
	if !c.Contains("k") {
		t.Fatal("key should be present before expiry")
	}
	now = now.Add(2 * time.Minute)
	if c.Contains("k") {
		t.Error("key should have expired")
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get expired = %v, want ErrNotFound", err)
	}
	if c.Len() != 0 {
		t.Errorf("Len after lazy eviction = %d, want 0", c.Len())
	}
	if c.Stats().Evictions == 0 {
		t.Error("expected an eviction to be counted")
	}
}

func TestDefaultTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{DefaultTTL: time.Minute, Now: func() time.Time { return now }})
	it, _ := c.Put("k", []byte("v"), 0)
	if it.Expires.IsZero() {
		t.Error("default TTL should have set an expiry")
	}
}

func TestMaxItems(t *testing.T) {
	c := New(Config{MaxItems: 2})
	c.Put("a", []byte("1"), 0)
	c.Put("b", []byte("2"), 0)
	_, err := c.Put("c", []byte("3"), 0)
	if !errors.Is(err, ErrCapacity) {
		t.Errorf("Put over capacity = %v, want ErrCapacity", err)
	}
	// Overwriting an existing key is always allowed.
	if _, err := c.Put("a", []byte("1b"), 0); err != nil {
		t.Errorf("overwrite at capacity: %v", err)
	}
}

func TestStop(t *testing.T) {
	c := newTestCache()
	c.Put("k", []byte("v"), 0)
	c.Stop()
	if !c.Stopped() {
		t.Error("Stopped() should be true")
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrStopped) {
		t.Errorf("Get after stop = %v, want ErrStopped", err)
	}
	if _, err := c.Put("k", nil, 0); !errors.Is(err, ErrStopped) {
		t.Errorf("Put after stop = %v, want ErrStopped", err)
	}
	if err := c.Delete("k"); !errors.Is(err, ErrStopped) {
		t.Errorf("Delete after stop = %v, want ErrStopped", err)
	}
}

func TestKeysAndSnapshot(t *testing.T) {
	c := newTestCache()
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}, 0)
	}
	keys := c.Keys()
	if len(keys) != 10 {
		t.Errorf("Keys len = %d, want 10", len(keys))
	}
	snap := c.Snapshot()
	if len(snap) != 10 {
		t.Errorf("Snapshot len = %d, want 10", len(snap))
	}
	seen := make(map[string]bool)
	for _, it := range snap {
		seen[it.Key] = true
	}
	for i := 0; i < 10; i++ {
		if !seen[fmt.Sprintf("k%d", i)] {
			t.Errorf("snapshot missing k%d", i)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	c := newTestCache()
	c.Put("a", []byte("12345"), 0)
	c.Get("a")
	c.Get("missing")
	c.CAS("b", []byte("x"), 0, 0)
	c.Delete("a")
	s := c.Stats()
	if s.Puts != 1 || s.Gets != 2 || s.Hits != 1 || s.Misses != 1 || s.CASes != 1 || s.Deletes != 1 {
		t.Errorf("unexpected stats: %+v", s)
	}
	if s.Items != 1 {
		t.Errorf("Items = %d, want 1", s.Items)
	}
	if s.Bytes != 1 {
		t.Errorf("Bytes = %d, want 1", s.Bytes)
	}
}

func TestValueIsCopied(t *testing.T) {
	c := newTestCache()
	buf := []byte("original")
	c.Put("k", buf, 0)
	buf[0] = 'X'
	got, _ := c.Get("k")
	if string(got.Value) != "original" {
		t.Errorf("stored value aliased the caller's buffer: %q", got.Value)
	}
}

func TestServiceTimeAndConcurrency(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	c := New(Config{
		ServiceTime: 5 * time.Millisecond,
		Concurrency: 2,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	})
	c.Put("a", nil, 0)
	c.Get("a")
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 2 {
		t.Fatalf("expected 2 service-time sleeps, got %d", len(slept))
	}
	for _, d := range slept {
		if d != 5*time.Millisecond {
			t.Errorf("service time %v, want 5ms", d)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Config{Shards: 8, Concurrency: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if _, err := c.Put(key, []byte(key), 0); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := c.Get(key); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", c.Len(), 8*200)
	}
}

func TestConcurrentCASOnlyOneWins(t *testing.T) {
	c := newTestCache()
	const writers = 16
	var mu sync.Mutex
	winners := 0
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.CAS("contended", []byte{byte(i)}, 0, 0); err == nil {
				mu.Lock()
				winners++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if winners != 1 {
		t.Errorf("winners = %d, want exactly 1", winners)
	}
}

func TestHACacheBasics(t *testing.T) {
	h := NewHA(func() *Cache { return New(Config{}) })
	h.Put("k", []byte("v"), 0)
	got, err := h.Get("k")
	if err != nil || string(got.Value) != "v" {
		t.Fatalf("Get = %q, %v", got.Value, err)
	}
	if h.Len() != 1 || len(h.Keys()) != 1 || len(h.Snapshot()) != 1 {
		t.Error("accessors disagree about content")
	}
	if !h.Contains("k") {
		t.Error("Contains should be true")
	}
	if h.Stats().Puts == 0 {
		t.Error("stats should record the put")
	}
	if err := h.Delete("k"); err != nil {
		t.Errorf("Delete: %v", err)
	}
}

func TestHACacheCAS(t *testing.T) {
	h := NewHA(func() *Cache { return New(Config{}) })
	if _, err := h.CAS("k", []byte("v1"), 0, 0); err != nil {
		t.Fatalf("CAS add: %v", err)
	}
	if _, err := h.CAS("k", []byte("v2"), 0, 0); !errors.Is(err, ErrVersionConflict) {
		t.Errorf("CAS conflict = %v", err)
	}
}

func TestHACacheFailover(t *testing.T) {
	h := NewHA(func() *Cache { return New(Config{}) })
	for i := 0; i < 20; i++ {
		h.Put(fmt.Sprintf("k%d", i), []byte("v"), 0)
	}
	old := h.Primary()
	h.FailPrimary()
	if h.Failures() != 1 {
		t.Errorf("Failures = %d, want 1", h.Failures())
	}
	if h.Primary() == old {
		t.Error("primary should have changed after failover")
	}
	if !old.Stopped() {
		t.Error("failed primary should be stopped")
	}
	// All acknowledged writes survive the failover.
	for i := 0; i < 20; i++ {
		if _, err := h.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Errorf("Get k%d after failover: %v", i, err)
		}
	}
	// And the service keeps accepting writes.
	if _, err := h.Put("after", []byte("v"), 0); err != nil {
		t.Errorf("Put after failover: %v", err)
	}
	// A second failover still preserves data (fresh replica was repopulated).
	h.FailPrimary()
	if _, err := h.Get("after"); err != nil {
		t.Errorf("Get after second failover: %v", err)
	}
}

// Property: after any sequence of Put operations on distinct keys, Len equals
// the number of distinct keys and every key is retrievable.
func TestPutGetProperty(t *testing.T) {
	f := func(keys []string) bool {
		c := newTestCache()
		distinct := make(map[string]bool)
		for _, k := range keys {
			if k == "" {
				continue
			}
			distinct[k] = true
			if _, err := c.Put(k, []byte(k), 0); err != nil {
				return false
			}
		}
		if c.Len() != len(distinct) {
			return false
		}
		for k := range distinct {
			it, err := c.Get(k)
			if err != nil || string(it.Value) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: versions grow strictly monotonically under repeated Put on the
// same key.
func TestVersionMonotonicityProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		c := newTestCache()
		var last uint64
		for i := 0; i < n; i++ {
			it, err := c.Put("k", []byte{byte(i)}, 0)
			if err != nil || it.Version != last+1 {
				return false
			}
			last = it.Version
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Mirror failures must be counted, not swallowed: a replica that rejects a
// write the primary accepted has silently diverged, and a failover would
// lose the entry.
func TestHACacheCountsMirrorFailures(t *testing.T) {
	// NewHA calls the factory twice, primary first; cap only the replica so
	// the second write diverges.
	calls := 0
	h := NewHA(func() *Cache {
		calls++
		if calls == 2 {
			return New(Config{MaxItems: 1})
		}
		return New(Config{})
	})
	if _, err := h.Put("a", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	if got := h.MirrorFailures(); got != 0 {
		t.Fatalf("MirrorFailures after in-capacity put = %d, want 0", got)
	}
	if _, err := h.Put("b", []byte("v"), 0); err != nil {
		t.Fatalf("primary write must succeed even when the mirror fails: %v", err)
	}
	if got := h.MirrorFailures(); got != 1 {
		t.Errorf("MirrorFailures after replica capacity rejection = %d, want 1", got)
	}
	// Deleting an entry absent on the replica is not divergence.
	if err := h.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if got := h.MirrorFailures(); got != 1 {
		t.Errorf("MirrorFailures after delete of replica-absent key = %d, want 1", got)
	}
}

// MaxItems must hold across shards under concurrency: the bound is enforced
// with an atomic reservation, so racing inserts on different shards cannot
// both squeeze past it.
func TestMaxItemsBoundUnderConcurrency(t *testing.T) {
	const bound = 32
	c := New(Config{MaxItems: bound, Shards: 8})
	var wg sync.WaitGroup
	var accepted, rejected int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < bound; i++ {
				_, err := c.Put(fmt.Sprintf("w%d/k%d", w, i), []byte("v"), 0)
				mu.Lock()
				if err == nil {
					accepted++
				} else if errors.Is(err, ErrCapacity) {
					rejected++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > bound {
		t.Errorf("Len = %d exceeds MaxItems %d", c.Len(), bound)
	}
	if accepted != bound {
		t.Errorf("accepted %d puts, want exactly %d", accepted, bound)
	}
	if rejected != 8*bound-bound {
		t.Errorf("rejected %d puts, want %d", rejected, 8*bound-bound)
	}
}
