package core

import (
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// Propagator implements the lazy metadata update scheme of the paper
// (§III-D): instead of eagerly updating remote replicas on every file
// operation, updates — and deletions — for multiple files are batched and
// asynchronously propagated to their destination sites. Writers therefore
// observe only the local write latency, and the system converges to a
// consistent state eventually.
//
// A flush fans out across the destination sites concurrently, and each
// destination receives its whole batch as bulk operations: one Merge for
// the upserts and one DeleteMany for the deletions, never per-entry calls.
type Propagator struct {
	fabric *Fabric
	// flushInterval is the maximum simulated time an update may wait in a
	// batch before being pushed.
	flushInterval time.Duration
	// maxBatch flushes a destination's batch once it reaches this many
	// entries, even before the interval elapses.
	maxBatch int

	mu      sync.Mutex
	batches map[destination][]registry.Entry
	deletes map[destination][]string
	closed  bool

	flushMu sync.Mutex // serializes flush rounds

	stop chan struct{}
	done chan struct{}

	flushes    int64
	propagated int64
}

// destination identifies one pending propagation stream: updates produced at
// site From that must be applied to the registry instance at site To.
type destination struct {
	From cloud.SiteID
	To   cloud.SiteID
}

// DefaultFlushInterval is the default lazy-propagation period (simulated).
const DefaultFlushInterval = 500 * time.Millisecond

// DefaultMaxBatch is the default number of entries that triggers an early
// flush of one destination's batch.
const DefaultMaxBatch = 64

// NewPropagator starts a lazy-update propagator over the fabric. It runs
// until Close.
func NewPropagator(fabric *Fabric, flushInterval time.Duration, maxBatch int) *Propagator {
	if flushInterval <= 0 {
		flushInterval = DefaultFlushInterval
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	p := &Propagator{
		fabric:        fabric,
		flushInterval: flushInterval,
		maxBatch:      maxBatch,
		batches:       make(map[destination][]registry.Entry),
		deletes:       make(map[destination][]string),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	go p.loop()
	return p
}

// Enqueue schedules the entry, produced at site from, for application at site
// to. The call returns immediately; the transfer happens asynchronously.
// An update supersedes a pending deletion of the same name, so within one
// flush window each name ends up on only one side of the batch and the
// destination converges on the last local operation.
func (p *Propagator) Enqueue(from, to cloud.SiteID, e registry.Entry) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	d := destination{From: from, To: to}
	if dels := p.deletes[d]; len(dels) > 0 {
		kept := dels[:0]
		for _, name := range dels {
			if name != e.Name {
				kept = append(kept, name)
			}
		}
		p.deletes[d] = kept
	}
	p.batches[d] = append(p.batches[d], e)
	full := len(p.batches[d])+len(p.deletes[d]) >= p.maxBatch
	p.mu.Unlock()
	if full {
		go p.FlushNow()
	}
}

// EnqueueDelete schedules the deletion of name, performed at site from, for
// application at site to. Deletions ride the same flush rounds as updates
// and reach the destination as one DeleteMany batch. A deletion supersedes
// pending updates of the same name (see Enqueue).
func (p *Propagator) EnqueueDelete(from, to cloud.SiteID, name string) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	d := destination{From: from, To: to}
	if batch := p.batches[d]; len(batch) > 0 {
		kept := batch[:0]
		for _, e := range batch {
			if e.Name != name {
				kept = append(kept, e)
			}
		}
		p.batches[d] = kept
	}
	p.deletes[d] = append(p.deletes[d], name)
	full := len(p.batches[d])+len(p.deletes[d]) >= p.maxBatch
	p.mu.Unlock()
	if full {
		go p.FlushNow()
	}
}

// Pending returns the number of updates and deletions waiting to be
// propagated.
func (p *Propagator) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, b := range p.batches {
		n += len(b)
	}
	for _, d := range p.deletes {
		n += len(d)
	}
	return n
}

// Flushes returns how many flush rounds have been executed.
func (p *Propagator) Flushes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushes
}

// Propagated returns how many entries (updates and deletions) have been
// applied to remote instances.
func (p *Propagator) Propagated() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.propagated
}

// FlushNow pushes every pending batch to its destination and returns when
// all of them have been applied. Destinations are flushed concurrently.
func (p *Propagator) FlushNow() {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()

	p.mu.Lock()
	batches := p.batches
	deletes := p.deletes
	p.batches = make(map[destination][]registry.Entry)
	p.deletes = make(map[destination][]string)
	p.mu.Unlock()

	dests := make(map[destination]struct{}, len(batches)+len(deletes))
	for d := range batches {
		dests[d] = struct{}{}
	}
	for d := range deletes {
		dests[d] = struct{}{}
	}

	var (
		applied atomic.Int64
		wg      sync.WaitGroup
	)
	for d := range dests {
		entries := batches[d]
		dels := dedupe(deletes[d])
		if len(entries) == 0 && len(dels) == 0 {
			continue
		}
		inst, err := p.fabric.Instance(d.To)
		if err != nil {
			continue
		}
		wg.Add(1)
		go func(d destination, inst registry.API, entries []registry.Entry, dels []string) {
			defer wg.Done()
			start := time.Now()
			batchBytes := len(dels) * p.fabric.queryBytes
			for _, e := range entries {
				batchBytes += p.fabric.EntrySize(e)
			}
			p.fabric.call(d.From, d.To, batchBytes, p.fabric.ackBytes)
			n, _ := inst.Merge(entries)
			if len(dels) > 0 {
				m, _ := inst.DeleteMany(dels)
				n += m
			}
			applied.Add(int64(n))
			p.fabric.record(metrics.OpSync, start, p.fabric.Topology().DistanceClass(d.From, d.To).Remote())
		}(d, inst, entries, dels)
	}
	wg.Wait()

	p.mu.Lock()
	p.flushes++
	p.propagated += applied.Load()
	p.mu.Unlock()
}

// Close flushes any pending batches and stops the propagator.
func (p *Propagator) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	<-p.done
	p.FlushNow()
}

func (p *Propagator) loop() {
	defer close(p.done)
	wallInterval := p.fabric.Latency().ToWall(p.flushInterval)
	if wallInterval <= 0 {
		wallInterval = time.Millisecond
	}
	timer := time.NewTimer(wallInterval)
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
			p.FlushNow()
			timer.Reset(wallInterval)
		}
	}
}
