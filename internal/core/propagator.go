package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// Propagator implements the lazy metadata update scheme of the paper
// (§III-D): instead of eagerly updating remote replicas on every file
// operation, updates — and deletions — for multiple files are batched and
// asynchronously propagated to their destination sites. Writers therefore
// observe only the local write latency, and the system converges to a
// consistent state eventually.
//
// A flush fans out across the destination sites concurrently, and each
// destination receives its whole batch as bulk operations: one Merge for
// the upserts and one DeleteMany for the deletions, never per-entry calls.
// A cancelled flush context aborts the fan-out mid-flight and re-queues the
// drained batches, so a closing caller is never stuck behind a slow site.
type Propagator struct {
	fabric *Fabric
	// flushInterval is the maximum simulated time an update may wait in a
	// batch before being pushed.
	flushInterval time.Duration
	// maxBatch flushes a destination's batch once it reaches this many
	// entries, even before the interval elapses. With adaptive sizing armed
	// (WithAdaptiveBatch) it is only the starting point; curBatch holds the
	// live limit.
	maxBatch int

	// Adaptive batch sizing (WithAdaptiveBatch): the early-flush limit moves
	// between minBatch and capBatch, AIMD-style, driven by the windowed p95
	// of observed flush-round latencies against targetRound — rounds running
	// long halve the limit (smaller, more frequent flushes), rounds with
	// ample headroom grow it additively (better amortization).
	adaptive    bool
	minBatch    int
	capBatch    int
	targetRound time.Duration
	curBatch    atomic.Int64
	roundMu     sync.Mutex
	rounds      []time.Duration // ring of recent round latencies
	roundSeen   int

	// life is cancelled when the propagator closes, aborting in-flight
	// background flush rounds.
	life     context.Context
	lifeStop context.CancelFunc

	mu      sync.Mutex
	batches map[destination][]registry.Entry
	deletes map[destination][]string
	closed  bool

	flushMu sync.Mutex // serializes flush rounds

	stop chan struct{}
	done chan struct{}

	flushes    int64
	propagated int64

	// Live instruments (nil when the fabric's instrumentation is off).
	queueDepth   *metrics.Gauge     // propagator_queue_depth: updates + deletions awaiting a flush
	flushLatency *metrics.Histogram // propagator_flush_latency_ns
	flushesC     *metrics.Counter   // propagator_flushes_total
	propagatedC  *metrics.Counter   // propagator_propagated_total
	requeuedC    *metrics.Counter   // propagator_requeued_total: entries put back by a cancelled flush
	batchG       *metrics.Gauge     // propagator_batch_size: current early-flush limit
}

// destination identifies one pending propagation stream: updates produced at
// site From that must be applied to the registry instance at site To.
type destination struct {
	From cloud.SiteID
	To   cloud.SiteID
}

// DefaultFlushInterval is the default lazy-propagation period (simulated).
const DefaultFlushInterval = 500 * time.Millisecond

// DefaultMaxBatch is the default number of entries that triggers an early
// flush of one destination's batch.
const DefaultMaxBatch = 64

// PropagatorOption tunes a Propagator at construction.
type PropagatorOption func(*Propagator)

// adaptiveWindow is how many recent flush rounds the adaptive batch sizer's
// p95 looks back over.
const adaptiveWindow = 16

// WithAdaptiveBatch replaces the fixed early-flush limit with an adaptive
// one moving in [min, max], driven by the windowed p95 of observed
// flush-round latencies (wall clock, the propagator_flush_latency_ns view):
// rounds running past target halve the limit so batches shrink and flush
// sooner; rounds finishing under half the target grow it additively. The
// limit starts at the constructor's maxBatch, clamped into [min, max].
// Non-positive parameters take min 8, max DefaultMaxBatch*4 and target 50ms.
func WithAdaptiveBatch(min, max int, target time.Duration) PropagatorOption {
	return func(p *Propagator) {
		if min <= 0 {
			min = 8
		}
		if max < min {
			max = DefaultMaxBatch * 4
			if max < min {
				max = min
			}
		}
		if target <= 0 {
			target = 50 * time.Millisecond
		}
		p.adaptive = true
		p.minBatch, p.capBatch, p.targetRound = min, max, target
		p.rounds = make([]time.Duration, adaptiveWindow)
	}
}

// NewPropagator starts a lazy-update propagator over the fabric. It runs
// until Close.
func NewPropagator(fabric *Fabric, flushInterval time.Duration, maxBatch int, opts ...PropagatorOption) *Propagator {
	if flushInterval <= 0 {
		flushInterval = DefaultFlushInterval
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	life, lifeStop := context.WithCancel(context.Background())
	p := &Propagator{
		fabric:        fabric,
		flushInterval: flushInterval,
		maxBatch:      maxBatch,
		life:          life,
		lifeStop:      lifeStop,
		batches:       make(map[destination][]registry.Entry),
		deletes:       make(map[destination][]string),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		queueDepth:    fabric.Metrics().Gauge("propagator_queue_depth"),
		flushLatency:  fabric.Metrics().Histogram("propagator_flush_latency_ns"),
		flushesC:      fabric.Metrics().Counter("propagator_flushes_total"),
		propagatedC:   fabric.Metrics().Counter("propagator_propagated_total"),
		requeuedC:     fabric.Metrics().Counter("propagator_requeued_total"),
		batchG:        fabric.Metrics().Gauge("propagator_batch_size"),
	}
	for _, o := range opts {
		o(p)
	}
	if p.adaptive {
		start := p.maxBatch
		if start < p.minBatch {
			start = p.minBatch
		}
		if start > p.capBatch {
			start = p.capBatch
		}
		p.curBatch.Store(int64(start))
	}
	p.batchG.Set(int64(p.batchLimit()))
	go p.loop()
	return p
}

// batchLimit returns the current early-flush limit: the live adaptive value,
// or the fixed maxBatch.
func (p *Propagator) batchLimit() int {
	if p.adaptive {
		return int(p.curBatch.Load())
	}
	return p.maxBatch
}

// BatchLimit exposes the current early-flush limit (fixed or adaptive).
func (p *Propagator) BatchLimit() int { return p.batchLimit() }

// adaptBatch feeds one completed flush round's latency into the adaptive
// sizer. Empty rounds say nothing about per-batch cost and are skipped.
func (p *Propagator) adaptBatch(round time.Duration, drained int) {
	if !p.adaptive || drained == 0 {
		return
	}
	p.roundMu.Lock()
	p.rounds[p.roundSeen%len(p.rounds)] = round
	p.roundSeen++
	n := p.roundSeen
	if n > len(p.rounds) {
		n = len(p.rounds)
	}
	window := make([]time.Duration, n)
	copy(window, p.rounds[:n])
	p.roundMu.Unlock()
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	p95 := metrics.Percentile(window, 95)

	cur := p.curBatch.Load()
	next := cur
	switch {
	case p95 > p.targetRound:
		next = cur / 2 // multiplicative decrease: flush smaller, sooner
	case p95 <= p.targetRound/2:
		step := cur / 4 // additive-ish increase toward better amortization
		if step < 1 {
			step = 1
		}
		next = cur + step
	}
	if next < int64(p.minBatch) {
		next = int64(p.minBatch)
	}
	if next > int64(p.capBatch) {
		next = int64(p.capBatch)
	}
	if next != cur {
		p.curBatch.Store(next)
		p.batchG.Set(next)
	}
}

// Enqueue schedules the entry, produced at site from, for application at site
// to. The call returns immediately; the transfer happens asynchronously.
// An update supersedes a pending deletion of the same name, so within one
// flush window each name ends up on only one side of the batch and the
// destination converges on the last local operation.
func (p *Propagator) Enqueue(from, to cloud.SiteID, e registry.Entry) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	d := destination{From: from, To: to}
	delta := 1
	if dels := p.deletes[d]; len(dels) > 0 {
		kept := dels[:0]
		for _, name := range dels {
			if name != e.Name {
				kept = append(kept, name)
			}
		}
		delta -= len(dels) - len(kept)
		p.deletes[d] = kept
	}
	p.batches[d] = append(p.batches[d], e)
	full := len(p.batches[d])+len(p.deletes[d]) >= p.batchLimit()
	p.mu.Unlock()
	p.queueDepth.Add(int64(delta))
	if full {
		go p.FlushNow(p.life) //nolint:errcheck // a cancelled flush re-queues its work
	}
}

// EnqueueDelete schedules the deletion of name, performed at site from, for
// application at site to. Deletions ride the same flush rounds as updates
// and reach the destination as one DeleteMany batch. A deletion supersedes
// pending updates of the same name (see Enqueue).
func (p *Propagator) EnqueueDelete(from, to cloud.SiteID, name string) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	d := destination{From: from, To: to}
	delta := 1
	if batch := p.batches[d]; len(batch) > 0 {
		kept := batch[:0]
		for _, e := range batch {
			if e.Name != name {
				kept = append(kept, e)
			}
		}
		delta -= len(batch) - len(kept)
		p.batches[d] = kept
	}
	p.deletes[d] = append(p.deletes[d], name)
	full := len(p.batches[d])+len(p.deletes[d]) >= p.batchLimit()
	p.mu.Unlock()
	p.queueDepth.Add(int64(delta))
	if full {
		go p.FlushNow(p.life) //nolint:errcheck // a cancelled flush re-queues its work
	}
}

// Pending returns the number of updates and deletions waiting to be
// propagated.
func (p *Propagator) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, b := range p.batches {
		n += len(b)
	}
	for _, d := range p.deletes {
		n += len(d)
	}
	return n
}

// Flushes returns how many flush rounds have been executed.
func (p *Propagator) Flushes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushes
}

// Propagated returns how many entries (updates and deletions) have been
// applied to remote instances.
func (p *Propagator) Propagated() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.propagated
}

// FlushNow pushes every pending batch to its destination and returns when
// all of them have been applied. Destinations are flushed concurrently. A
// cancelled context aborts the fan-out: destination goroutines return as
// soon as they observe the cancellation, un-applied batches are re-queued
// for the next round (bulk application is idempotent, so a destination that
// was already updated tolerates seeing its batch again), and the context's
// error is returned.
func (p *Propagator) FlushNow(ctx context.Context) error {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()

	if err := ctx.Err(); err != nil {
		return err
	}

	flushStart := time.Now()

	p.mu.Lock()
	batches := p.batches
	deletes := p.deletes
	p.batches = make(map[destination][]registry.Entry)
	p.deletes = make(map[destination][]string)
	p.mu.Unlock()

	drained := 0
	for _, b := range batches {
		drained += len(b)
	}
	for _, d := range deletes {
		drained += len(d)
	}
	p.queueDepth.Add(-int64(drained))

	dests := make(map[destination]struct{}, len(batches)+len(deletes))
	for d := range batches {
		dests[d] = struct{}{}
	}
	for d := range deletes {
		dests[d] = struct{}{}
	}

	var (
		applied atomic.Int64
		wg      sync.WaitGroup
	)
	for d := range dests {
		entries := batches[d]
		dels := dedupe(deletes[d])
		if len(entries) == 0 && len(dels) == 0 {
			continue
		}
		inst, err := p.fabric.Instance(d.To)
		if err != nil {
			continue
		}
		wg.Add(1)
		go func(d destination, inst registry.API, entries []registry.Entry, dels []string) {
			defer wg.Done()
			start := time.Now()
			batchBytes := len(dels) * p.fabric.queryBytes
			for _, e := range entries {
				batchBytes += p.fabric.EntrySize(e)
			}
			if _, err := p.fabric.call(ctx, d.From, d.To, batchBytes, p.fabric.ackBytes); err != nil {
				return
			}
			n, _ := inst.Merge(ctx, entries)
			if len(dels) > 0 {
				m, _ := inst.DeleteMany(ctx, dels)
				n += m
			}
			applied.Add(int64(n))
			p.fabric.record(metrics.OpSync, start, p.fabric.Topology().DistanceClass(d.From, d.To).Remote())
		}(d, inst, entries, dels)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Put everything back; the next (uncancelled) flush converges. The
		// re-queue ignores the closed flag on purpose: Close's final drain
		// must still see batches a cancelled in-flight round had grabbed.
		p.mu.Lock()
		for d, entries := range batches {
			p.batches[d] = append(p.batches[d], entries...)
		}
		for d, names := range deletes {
			p.deletes[d] = append(p.deletes[d], names...)
		}
		p.mu.Unlock()
		p.queueDepth.Add(int64(drained))
		p.requeuedC.Add(int64(drained))
		return err
	}

	p.mu.Lock()
	p.flushes++
	p.propagated += applied.Load()
	p.mu.Unlock()
	p.flushesC.Inc()
	p.propagatedC.Add(applied.Load())
	round := time.Since(flushStart)
	p.flushLatency.ObserveDuration(round)
	p.adaptBatch(round, drained)
	return nil
}

// Close flushes any pending batches and stops the propagator. The final
// flush runs under a fresh background context — closing must still drain
// what it can — while the cancelled life context aborts any round that was
// already in flight.
func (p *Propagator) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.lifeStop()
	close(p.stop)
	<-p.done
	p.FlushNow(context.Background()) //nolint:errcheck // Background never cancels
}

func (p *Propagator) loop() {
	defer close(p.done)
	wallInterval := p.fabric.Latency().ToWall(p.flushInterval)
	if wallInterval <= 0 {
		wallInterval = time.Millisecond
	}
	timer := time.NewTimer(wallInterval)
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
			p.FlushNow(p.life) //nolint:errcheck // a cancelled flush re-queues its work
			timer.Reset(wallInterval)
		}
	}
}
