package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// CentralizedService is the baseline strategy (paper §IV-A): a single
// metadata registry instance, arbitrarily placed in one of the datacenters,
// serving every node of the multi-site application. Nodes outside the
// registry's datacenter pay a remote round trip for every operation, and the
// single cache instance becomes the throughput bottleneck under concurrency.
type CentralizedService struct {
	fabric *Fabric
	home   cloud.SiteID
	inst   registry.API
	closed atomic.Bool
}

// NewCentralized builds the centralized baseline with the registry placed in
// the given datacenter.
func NewCentralized(fabric *Fabric, home cloud.SiteID) (*CentralizedService, error) {
	inst, err := fabric.Instance(home)
	if err != nil {
		return nil, fmt.Errorf("centralized: %w", err)
	}
	return &CentralizedService{fabric: fabric, home: home, inst: inst}, nil
}

// Kind implements MetadataService.
func (s *CentralizedService) Kind() StrategyKind { return Centralized }

// Home returns the datacenter hosting the single registry instance.
func (s *CentralizedService) Home() cloud.SiteID { return s.home }

// Create implements MetadataService. Per the paper's definition, the write is
// a look-up (to verify the name is free) followed by the actual write; both
// are served by the central instance.
func (s *CentralizedService) Create(from cloud.SiteID, e registry.Entry) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, ErrClosed
	}
	start := time.Now()
	// One round trip to the central registry; the instance performs the
	// look-up (existence check) and the write server-side, as the paper's
	// write = look-up + write composite.
	remote := s.fabric.call(from, s.home, s.fabric.EntrySize(e), s.fabric.ackBytes)
	stored, err := s.inst.Create(e)
	s.fabric.record(metrics.OpWrite, start, remote)
	return stored, err
}

// Lookup implements MetadataService.
func (s *CentralizedService) Lookup(from cloud.SiteID, name string) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, ErrClosed
	}
	start := time.Now()
	e, err := s.inst.Get(name)
	respBytes := s.fabric.ackBytes
	if err == nil {
		respBytes = s.fabric.EntrySize(e)
	}
	remote := s.fabric.call(from, s.home, s.fabric.queryBytes, respBytes)
	s.fabric.record(metrics.OpRead, start, remote)
	return e, err
}

// AddLocation implements MetadataService.
func (s *CentralizedService) AddLocation(from cloud.SiteID, name string, loc registry.Location) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, ErrClosed
	}
	start := time.Now()
	remote := s.fabric.call(from, s.home, s.fabric.queryBytes, s.fabric.ackBytes)
	e, err := s.inst.AddLocation(name, loc)
	s.fabric.record(metrics.OpUpdate, start, remote)
	return e, err
}

// Delete implements MetadataService.
func (s *CentralizedService) Delete(from cloud.SiteID, name string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	start := time.Now()
	remote := s.fabric.call(from, s.home, s.fabric.queryBytes, s.fabric.ackBytes)
	err := s.inst.Delete(name)
	s.fabric.record(metrics.OpDelete, start, remote)
	return err
}

// Flush implements MetadataService; the centralized strategy has no
// asynchronous machinery, so it is a no-op.
func (s *CentralizedService) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	return nil
}

// Close implements MetadataService.
func (s *CentralizedService) Close() error {
	s.closed.Store(true)
	return nil
}
