package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// CentralizedService is the baseline strategy (paper §IV-A): a single
// metadata registry instance, arbitrarily placed in one of the datacenters,
// serving every node of the multi-site application. Nodes outside the
// registry's datacenter pay a remote round trip for every operation, and the
// single cache instance becomes the throughput bottleneck under concurrency.
type CentralizedService struct {
	fabric *Fabric
	home   cloud.SiteID
	inst   registry.API
	closed atomic.Bool
	// ops counts every operation served by this strategy
	// (core_strategy_c_ops_total); nil when instrumentation is off.
	ops *metrics.Counter
}

// NewCentralized builds the centralized baseline with the registry placed in
// the given datacenter.
func NewCentralized(fabric *Fabric, home cloud.SiteID) (*CentralizedService, error) {
	inst, err := fabric.Instance(home)
	if err != nil {
		return nil, fmt.Errorf("centralized: %w", err)
	}
	return &CentralizedService{fabric: fabric, home: home, inst: inst, ops: fabric.strategyOps(Centralized)}, nil
}

// Kind implements MetadataService.
func (s *CentralizedService) Kind() StrategyKind { return Centralized }

// Home returns the datacenter hosting the single registry instance.
func (s *CentralizedService) Home() cloud.SiteID { return s.home }

// Create implements MetadataService. Per the paper's definition, the write is
// a look-up (to verify the name is free) followed by the actual write; both
// are served by the central instance.
func (s *CentralizedService) Create(ctx context.Context, from cloud.SiteID, e registry.Entry) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("create", from, e.Name, ErrClosed)
	}
	s.ops.Inc()
	start := time.Now()
	// One round trip to the central registry; the instance performs the
	// look-up (existence check) and the write server-side, as the paper's
	// write = look-up + write composite.
	remote, err := s.fabric.call(ctx, from, s.home, s.fabric.EntrySize(e), s.fabric.ackBytes)
	if err != nil {
		s.fabric.record(metrics.OpWrite, start, remote)
		return registry.Entry{}, opErr("create", from, e.Name, err)
	}
	stored, err := s.inst.Create(ctx, e)
	s.fabric.record(metrics.OpWrite, start, remote)
	return stored, opErr("create", from, e.Name, err)
}

// Lookup implements MetadataService.
func (s *CentralizedService) Lookup(ctx context.Context, from cloud.SiteID, name string) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("lookup", from, name, ErrClosed)
	}
	s.ops.Inc()
	start := time.Now()
	e, err := s.inst.Get(ctx, name)
	respBytes := s.fabric.ackBytes
	if err == nil {
		respBytes = s.fabric.EntrySize(e)
	}
	remote, callErr := s.fabric.call(ctx, from, s.home, s.fabric.queryBytes, respBytes)
	s.fabric.record(metrics.OpRead, start, remote)
	if lerr := lookupErr(from, name, err, callErr); lerr != nil {
		return registry.Entry{}, lerr
	}
	return e, nil
}

// AddLocation implements MetadataService.
func (s *CentralizedService) AddLocation(ctx context.Context, from cloud.SiteID, name string, loc registry.Location) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("addlocation", from, name, ErrClosed)
	}
	s.ops.Inc()
	start := time.Now()
	remote, err := s.fabric.call(ctx, from, s.home, s.fabric.queryBytes, s.fabric.ackBytes)
	if err != nil {
		s.fabric.record(metrics.OpUpdate, start, remote)
		return registry.Entry{}, opErr("addlocation", from, name, err)
	}
	e, err := s.inst.AddLocation(ctx, name, loc)
	s.fabric.record(metrics.OpUpdate, start, remote)
	return e, opErr("addlocation", from, name, err)
}

// Delete implements MetadataService.
func (s *CentralizedService) Delete(ctx context.Context, from cloud.SiteID, name string) error {
	if s.closed.Load() {
		return opErr("delete", from, name, ErrClosed)
	}
	s.ops.Inc()
	start := time.Now()
	remote, err := s.fabric.call(ctx, from, s.home, s.fabric.queryBytes, s.fabric.ackBytes)
	if err != nil {
		s.fabric.record(metrics.OpDelete, start, remote)
		return opErr("delete", from, name, err)
	}
	err = s.inst.Delete(ctx, name)
	s.fabric.record(metrics.OpDelete, start, remote)
	return opErr("delete", from, name, err)
}

// Flush implements MetadataService; the centralized strategy has no
// asynchronous machinery, so it is a no-op.
func (s *CentralizedService) Flush(ctx context.Context) error {
	if s.closed.Load() {
		return opErr("flush", s.home, "", ErrClosed)
	}
	return ctx.Err()
}

// Close implements MetadataService.
func (s *CentralizedService) Close() error {
	s.closed.Store(true)
	return nil
}
