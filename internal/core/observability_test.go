package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/latency"
	"geomds/internal/metrics"
)

// newObservedFabric builds a fast fabric reporting to a fresh registry.
func newObservedFabric(t *testing.T) (*Fabric, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithScale(0.001), latency.WithSeed(1))
	fabric := NewFabric(topo, lat,
		WithCacheCapacity(0, 0),
		WithMetricsRegistry(reg))
	return fabric, reg
}

// TestStrategiesReportLiveMetrics drives every strategy under concurrent
// load and asserts that the fabric's shared instruments and the per-strategy
// counters move, that the latency histograms fill, and that async queue
// depths drain back to zero after a flush.
func TestStrategiesReportLiveMetrics(t *testing.T) {
	for _, kind := range Strategies {
		t.Run(kind.String(), func(t *testing.T) {
			fabric, reg := newObservedFabric(t)
			svc, err := NewService(fabric, kind)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			ctx := context.Background()
			sites := fabric.Sites()
			var wg sync.WaitGroup
			const perSite = 8
			for _, site := range sites {
				wg.Add(1)
				go func(site cloud.SiteID) {
					defer wg.Done()
					for i := 0; i < perSite; i++ {
						name := fmt.Sprintf("obs/%s/s%d/f%d", kind.Short(), site, i)
						e := testEntry(name, site)
						if _, err := svc.Create(ctx, site, e); err != nil {
							t.Errorf("create %s: %v", name, err)
							return
						}
						svc.Lookup(ctx, site, name) //nolint:errcheck // eventual consistency may miss
					}
				}(site)
			}
			wg.Wait()
			if err := svc.Flush(ctx); err != nil {
				t.Fatalf("flush: %v", err)
			}

			snap := reg.Snapshot()
			wantOps := int64(len(sites) * perSite * 2) // one create + one lookup each
			if got := snap.Counters["core_ops_total"]; got < wantOps {
				t.Errorf("core_ops_total = %d, want >= %d", got, wantOps)
			}
			stratCounter := "core_strategy_" + strings.ToLower(kind.Short()) + "_ops_total"
			if got := snap.Counters[stratCounter]; got < wantOps {
				t.Errorf("%s = %d, want >= %d", stratCounter, got, wantOps)
			}
			if h := snap.Histograms["core_write_latency_ns"]; h.Count < int64(len(sites)*perSite) {
				t.Errorf("write latency histogram count = %d, want >= %d", h.Count, len(sites)*perSite)
			}
			if h := snap.Histograms["core_read_latency_ns"]; h.Count == 0 {
				t.Error("read latency histogram empty")
			}
			if got := snap.Counters["memcache_gets_total"]; got == 0 {
				t.Error("memcache instrumentation did not aggregate into the fabric registry")
			}
			if reg.Trace().Total() == 0 {
				t.Error("no trace events recorded")
			}

			// After a successful flush nothing may be left queued.
			switch kind {
			case Replicated:
				if got := snap.Gauges["sync_queue_depth"]; got != 0 {
					t.Errorf("sync_queue_depth = %d after flush, want 0", got)
				}
				if got := snap.Counters["sync_rounds_total"]; got == 0 {
					t.Error("sync_rounds_total = 0 after flush")
				}
			case DecentralizedReplicated:
				if got := snap.Gauges["propagator_queue_depth"]; got != 0 {
					t.Errorf("propagator_queue_depth = %d after flush, want 0", got)
				}
			}
		})
	}
}

// TestPropagatorQueueDepthTracksSupersededEntries verifies the gauge's delta
// bookkeeping across the supersede paths: an update replacing a pending
// deletion (and vice versa) must not double-count.
func TestPropagatorQueueDepthTracksSupersededEntries(t *testing.T) {
	fabric, reg := newObservedFabric(t)
	p := NewPropagator(fabric, time.Hour, 1<<30) // no background flushing
	defer p.Close()

	sites := fabric.Sites()
	from, to := sites[0], sites[1]
	depth := reg.Gauge("propagator_queue_depth")

	p.Enqueue(from, to, testEntry("obs/x", from))
	p.EnqueueDelete(from, to, "obs/x") // supersedes the pending update
	if got := depth.Value(); got != 1 {
		t.Fatalf("depth after update+delete of same name = %d, want 1", got)
	}
	p.Enqueue(from, to, testEntry("obs/x", from)) // supersedes the deletion
	if got := depth.Value(); got != 1 {
		t.Fatalf("depth after re-update = %d, want 1", got)
	}
	p.Enqueue(from, to, testEntry("obs/y", from))
	if got := depth.Value(); got != 2 {
		t.Fatalf("depth with two names = %d, want 2", got)
	}
	if got := p.Pending(); int64(got) != depth.Value() {
		t.Fatalf("gauge %d disagrees with Pending() %d", depth.Value(), got)
	}

	if err := p.FlushNow(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := depth.Value(); got != 0 {
		t.Fatalf("depth after flush = %d, want 0", got)
	}
	if got := reg.Counter("propagator_flushes_total").Value(); got != 1 {
		t.Fatalf("flushes = %d, want 1", got)
	}
}

// TestCancelledFlushCountsRequeuedEntries verifies that a flush aborted by
// its context restores the queue-depth gauge and counts the re-queued work.
func TestCancelledFlushCountsRequeuedEntries(t *testing.T) {
	// A slow fabric (unscaled WAN latencies) with a short flush deadline:
	// the drain happens immediately, the fan-out blocks in the modelled WAN
	// exchange past the deadline, and the flush must re-queue everything.
	reg := metrics.NewRegistry()
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithScale(1), latency.WithSeed(1))
	fabric := NewFabric(topo, lat, WithCacheCapacity(0, 0), WithMetricsRegistry(reg))
	p := NewPropagator(fabric, time.Hour, 1<<30)
	defer p.Close()

	sites := fabric.Sites()
	for i := 0; i < 5; i++ {
		p.Enqueue(sites[0], sites[1], testEntry(fmt.Sprintf("obs/rq%d", i), sites[0]))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := p.FlushNow(ctx); err == nil {
		t.Fatal("deadline-bound flush against an unscaled WAN must fail")
	}

	if got := reg.Gauge("propagator_queue_depth").Value(); int64(p.Pending()) != got {
		t.Fatalf("gauge %d disagrees with Pending() %d after cancelled flush", got, p.Pending())
	}
	if p.Pending() != 5 {
		t.Fatalf("pending = %d, want 5 (everything re-queued)", p.Pending())
	}
	if got := reg.Counter("propagator_requeued_total").Value(); got != 5 {
		t.Fatalf("requeued = %d, want 5", got)
	}
}
