package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
)

// waitVisible polls the service from the given site until the entry appears,
// returning how long it took. Used to measure convergence without Flush.
func waitVisible(t *testing.T, svc MetadataService, from cloud.SiteID, name string) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := time.After(10 * time.Second)
	for {
		if _, err := svc.Lookup(tctx, from, name); err == nil {
			return time.Since(start)
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("lookup %q from %d: %v", name, from, err)
		}
		select {
		case <-deadline:
			t.Fatalf("%q never became visible from site %d", name, from)
		case <-time.After(200 * time.Microsecond):
		}
	}
}

func TestFeedSyncRequiresChangeFeeds(t *testing.T) {
	f := newTestFabric() // no WithChangeFeeds
	if _, err := NewReplicated(f, 0, WithFeedSync()); !errors.Is(err, ErrNoFeed) {
		t.Fatalf("NewReplicated(WithFeedSync) over feed-less fabric = %v, want ErrNoFeed", err)
	}
	if _, err := NewDecReplicated(f, WithFeedPropagation()); !errors.Is(err, ErrNoFeed) {
		t.Fatalf("NewDecReplicated(WithFeedPropagation) = %v, want ErrNoFeed", err)
	}
}

// TestReplicatedFeedSyncConverges drives the replicated strategy in feed mode
// with a polling interval so long the agent could never help: every mutation
// must still reach every replica, pushed by the feeds.
func TestReplicatedFeedSyncConverges(t *testing.T) {
	reg := metrics.NewRegistry()
	f := newTestFabric(WithChangeFeeds(), WithMetricsRegistry(reg))
	defer f.Close()
	svc, err := NewReplicated(f, 0, WithSyncInterval(time.Hour), WithFeedSync())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if !svc.FeedDriven() {
		t.Fatal("FeedDriven() = false under WithFeedSync")
	}

	const n = 20
	for i := 0; i < n; i++ {
		site := cloud.SiteID(i % 4)
		if _, err := svc.Create(tctx, site, testEntry(fmt.Sprintf("fs/%d", i), site)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("fs/%d", i)
		for _, site := range f.Sites() {
			if _, err := svc.Lookup(tctx, site, name); err != nil {
				t.Fatalf("after flush, %q invisible from site %d: %v", name, site, err)
			}
		}
	}
	if h := reg.Histogram("replication_lag_ns"); h.Count() == 0 {
		t.Fatal("replication_lag_ns recorded no samples")
	}

	// Deletes propagate too, and the delete echo quiesces (no ping-pong).
	if err := svc.Delete(tctx, 1, "fs/0"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for _, site := range f.Sites() {
		if _, err := svc.Lookup(tctx, site, "fs/0"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted entry still visible from site %d: %v", site, err)
		}
	}
}

// TestReplicatedFeedSyncBeatsPollingLag creates entries under both modes and
// compares how quickly they become visible from a remote site: the feed push
// must land well before the polling agent's next round.
func TestReplicatedFeedSyncBeatsPollingLag(t *testing.T) {
	const interval = 300 * time.Millisecond

	visibility := func(opts ...ReplicatedOption) time.Duration {
		f := newTestFabric(WithChangeFeeds())
		defer f.Close()
		svc, err := NewReplicated(f, 0, append([]ReplicatedOption{WithSyncInterval(interval)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		var worst time.Duration
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("lag/%d", i)
			if _, err := svc.Create(tctx, 0, testEntry(name, 0)); err != nil {
				t.Fatal(err)
			}
			if d := waitVisible(t, svc, 2, name); d > worst {
				worst = d
			}
		}
		return worst
	}

	polling := visibility()
	pushed := visibility(WithFeedSync())
	if pushed >= interval {
		t.Fatalf("feed visibility lag %v not under the %v polling interval", pushed, interval)
	}
	if polling < interval/2 {
		t.Fatalf("polling baseline converged in %v — the interval no longer dominates, test is vacuous", polling)
	}
}

// TestDecReplicatedFeedPropagation checks the hybrid strategy's feed mode:
// writes stay local-latency, the home copy converges off the feed, and
// entries resolve from third-party sites via the home lookup.
func TestDecReplicatedFeedPropagation(t *testing.T) {
	f := newTestFabric(WithChangeFeeds())
	defer f.Close()
	svc, err := NewDecReplicated(f, WithFeedPropagation())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if !svc.Lazy() || !svc.FeedDriven() {
		t.Fatalf("Lazy=%v FeedDriven=%v, want feed-driven lazy mode", svc.Lazy(), svc.FeedDriven())
	}

	const n = 16
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("dr/%d", i)
		names = append(names, name)
		if _, err := svc.Create(tctx, 1, testEntry(name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		home := svc.Home(name)
		inst, err := f.Instance(home)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.Contains(tctx, name) {
			t.Fatalf("%q missing at its home site %d after flush", name, home)
		}
		// Visible from every site through the two-step lookup.
		if _, err := svc.Lookup(tctx, 3, name); err != nil {
			t.Fatalf("lookup %q from site 3: %v", name, err)
		}
	}

	// A lazy delete reaches the home through the feed as well.
	if err := svc.Delete(tctx, 1, names[0]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Lookup(tctx, 3, names[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted %q still resolvable: %v", names[0], err)
	}
}

// TestControllerFeedSync threads the feed option through the controller into
// both eventually consistent strategies, over one shared fabric.
func TestControllerFeedSync(t *testing.T) {
	f := newTestFabric(WithChangeFeeds())
	defer f.Close()
	c := NewController(f, WithControllerFeedSync())
	defer c.Close()

	svc, err := c.Use(tctx, Replicated)
	if err != nil {
		t.Fatal(err)
	}
	if rs, ok := svc.(*ReplicatedService); !ok || !rs.FeedDriven() {
		t.Fatalf("controller built %T (feed-driven=%v), want feed-driven replicated", svc, ok)
	}
	if _, err := svc.Create(tctx, 0, testEntry("ctl/a", 0)); err != nil {
		t.Fatal(err)
	}
	svc, err = c.Use(tctx, DecentralizedReplicated)
	if err != nil {
		t.Fatal(err)
	}
	if dr, ok := svc.(*DecReplicatedService); !ok || !dr.FeedDriven() {
		t.Fatalf("controller built %T, want feed-driven hybrid", svc)
	}
}

// TestReplicatedFeedSyncShardedSites runs feed sync over sharded sites: the
// per-site routers' relay feeds re-sequence the shard feeds, and replication
// still converges.
func TestReplicatedFeedSyncShardedSites(t *testing.T) {
	f := newTestFabric(WithChangeFeeds(), WithShardsPerSite(3))
	defer f.Close()
	svc, err := NewReplicated(f, 0, WithSyncInterval(time.Hour), WithFeedSync())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := svc.Create(tctx, 1, testEntry(fmt.Sprintf("sh/%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := svc.Lookup(tctx, 3, fmt.Sprintf("sh/%d", i)); err != nil {
			t.Fatalf("lookup sh/%d from site 3: %v", i, err)
		}
	}
}

// TestFeedSourcesFailWithoutFeeds pins the accessor errors.
func TestFeedSourcesFailWithoutFeeds(t *testing.T) {
	f := newTestFabric()
	if _, err := f.Feed(0); !errors.Is(err, ErrNoFeed) {
		t.Fatalf("Feed(0) = %v, want ErrNoFeed", err)
	}
	if _, err := f.FeedSources(); !errors.Is(err, ErrNoFeed) {
		t.Fatalf("FeedSources() = %v, want ErrNoFeed", err)
	}
	ff := newTestFabric(WithChangeFeeds())
	defer ff.Close()
	sources, err := ff.FeedSources()
	if err != nil || len(sources) != 4 {
		t.Fatalf("FeedSources() = %d sources, %v", len(sources), err)
	}
	sub, err := sources[0].Subscribe(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
}
