// Package core implements the paper's primary contribution: multi-site
// metadata management strategies for geographically distributed cloud
// workflows.
//
// The package offers a single client-facing abstraction, MetadataService,
// with four interchangeable implementations corresponding to the strategies
// of Section IV of the paper:
//
//   - Centralized — a single registry instance in one datacenter, the
//     state-of-the-art baseline (e.g. an HDFS-style central metadata server);
//   - Replicated — one registry instance per datacenter, all holding the full
//     metadata set, kept in sync by a single Synchronization Agent;
//   - Decentralized (non-replicated) — one instance per datacenter, every
//     entry stored only at the site selected by hashing its name (DHT-style
//     partitioning);
//   - DecentralizedReplicated — the hybrid strategy: the hashed home site
//     plus a replica in the writer's local site, with lazy (batched,
//     eventually consistent) propagation.
//
// Strategies are built over a Fabric: the set of per-site registry instances
// plus the latency model of the multi-site cloud. The ArchitectureController
// switches between strategies at run time, mirroring the plug-and-play
// architecture controller of the paper's middleware (§V).
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"geomds/internal/cloud"
	"geomds/internal/limits"
	"geomds/internal/registry"
)

// StrategyKind enumerates the four metadata management strategies.
type StrategyKind int

const (
	// Centralized is the single-site, single-instance baseline (Fig. 2a).
	Centralized StrategyKind = iota
	// Replicated places one instance per site, synchronized by a single
	// agent (Fig. 2b).
	Replicated
	// Decentralized partitions entries across per-site instances by hashing,
	// without replication (Fig. 2c).
	Decentralized
	// DecentralizedReplicated partitions entries by hashing and additionally
	// keeps a replica in the writer's local site (Fig. 2d).
	DecentralizedReplicated
)

// Strategies lists every strategy in presentation order (the order used by
// the paper's figures).
var Strategies = []StrategyKind{Centralized, Replicated, Decentralized, DecentralizedReplicated}

// String returns the strategy's display name.
func (k StrategyKind) String() string {
	switch k {
	case Centralized:
		return "centralized"
	case Replicated:
		return "replicated"
	case Decentralized:
		return "decentralized-nonrep"
	case DecentralizedReplicated:
		return "decentralized-rep"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(k))
	}
}

// Short returns the abbreviation used in the paper's figures (C, R, DN, DR).
func (k StrategyKind) Short() string {
	switch k {
	case Centralized:
		return "C"
	case Replicated:
		return "R"
	case Decentralized:
		return "DN"
	case DecentralizedReplicated:
		return "DR"
	default:
		return "?"
	}
}

// ParseStrategy converts a user-supplied name (full or abbreviated,
// case-insensitive) into a StrategyKind.
func ParseStrategy(s string) (StrategyKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "centralized", "c", "central":
		return Centralized, nil
	case "replicated", "r", "rep":
		return Replicated, nil
	case "decentralized", "decentralized-nonrep", "dn", "dec", "dec-nonrep":
		return Decentralized, nil
	case "decentralized-rep", "dr", "dec-rep", "hybrid":
		return DecentralizedReplicated, nil
	default:
		return Centralized, fmt.Errorf("core: unknown strategy %q", s)
	}
}

// Errors shared by every strategy implementation. Strategy operations report
// failures as *OpError values wrapping one of these sentinel causes (or a
// context error), so callers branch with errors.Is / errors.As instead of
// string matching.
var (
	// ErrNotFound is returned when a looked-up entry does not exist anywhere
	// the strategy is able (or allowed) to look.
	ErrNotFound = registry.ErrNotFound
	// ErrExists is returned when creating an entry whose name is taken.
	ErrExists = registry.ErrExists
	// ErrClosed is returned by operations on a closed service.
	ErrClosed = errors.New("core: metadata service closed")
	// ErrNoSuchSite is returned when an operation names a site outside the
	// fabric.
	ErrNoSuchSite = errors.New("core: site not part of the metadata fabric")
	// ErrNoFeed is returned when a feed-driven mode is requested over a
	// fabric whose instances expose no change feeds (built without
	// WithChangeFeeds, or external instances without registry.ChangeFeeder).
	ErrNoFeed = errors.New("core: registry instance exposes no change feed")
	// ErrSiteUnreachable is returned when the registry instance of a site
	// cannot be reached at all — a partitioned or crashed remote deployment —
	// as opposed to answering with a per-entry error. It is the core-level
	// name of registry.ErrUnavailable (rpc proxies report that sentinel on
	// transport failures), so errors.Is matches either spelling.
	ErrSiteUnreachable = registry.ErrUnavailable
)

// OpError describes the failure of one metadata operation: which operation,
// issued from which site, on which entry, and the underlying cause. It
// implements the errors.Unwrap contract, so errors.Is(err, ErrNotFound),
// errors.Is(err, context.DeadlineExceeded) and friends see through it; use
// errors.As to recover the structured fields.
type OpError struct {
	// Op is the operation that failed ("create", "lookup", "addlocation",
	// "delete", "flush", "sync").
	Op string
	// Site is the datacenter the operation was issued from.
	Site cloud.SiteID
	// Name is the entry the operation targeted; empty when the operation has
	// no single target (e.g. flush).
	Name string
	// Err is the underlying cause — one of the sentinel errors, a context
	// error, or a transport failure.
	Err error
}

// Error implements the error interface.
func (e *OpError) Error() string {
	if e.Name == "" {
		return fmt.Sprintf("core: %s from site %d: %v", e.Op, e.Site, e.Err)
	}
	return fmt.Sprintf("core: %s %q from site %d: %v", e.Op, e.Name, e.Site, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *OpError) Unwrap() error { return e.Err }

// opErr wraps err in an *OpError unless it is nil or already one (the
// innermost operation wins: it knows the site and entry best).
func opErr(op string, site cloud.SiteID, name string, err error) error {
	if err == nil {
		return nil
	}
	var oe *OpError
	if errors.As(err, &oe) {
		return err
	}
	return &OpError{Op: op, Site: site, Name: name, Err: err}
}

// lookupErr merges a read's two failure sources into one typed error: the
// registry operation's error wins (a genuine not-found answer is the result
// even if the caller was cancelled while the modelled exchange completed),
// and only an otherwise-successful read surfaces the modelled call's
// cancellation. Every strategy shares this policy so their lookup error
// semantics cannot drift apart.
func lookupErr(from cloud.SiteID, name string, regErr, callErr error) error {
	if regErr == nil {
		regErr = callErr
	}
	return opErr("lookup", from, name, regErr)
}

// MetadataService is the client-facing API of the metadata middleware. Every
// operation is issued *from* a site: the datacenter hosting the execution
// node performing it. Implementations charge the appropriate wide-area
// latency for any communication that leaves that site.
//
// Every operation takes a context.Context first. Deadlines and cancellation
// propagate all the way down: through the fabric's modelled WAN sleeps,
// through the per-site registry instances, and — when a site is backed by an
// rpc proxy — over the wire to the remote server, which abandons work whose
// client has given up. Operations report failures as *OpError values
// wrapping the sentinel causes (ErrNotFound, ErrExists, ErrClosed,
// ErrSiteUnreachable, context.DeadlineExceeded, ...).
//
// Following the paper's terminology, a "write" (Create) consists of a look-up
// to verify the entry does not already exist followed by the actual write,
// and a "read" (Lookup) queries the registry for an entry.
type MetadataService interface {
	// Kind identifies the strategy implemented by this service.
	Kind() StrategyKind

	// Create publishes a new metadata entry. It fails with ErrExists if an
	// entry with the same name is already visible to the caller's site.
	Create(ctx context.Context, from cloud.SiteID, e registry.Entry) (registry.Entry, error)

	// Lookup retrieves the entry with the given name. Under eventually
	// consistent strategies a recently created entry may not yet be visible
	// from every site, in which case Lookup returns ErrNotFound.
	Lookup(ctx context.Context, from cloud.SiteID, name string) (registry.Entry, error)

	// AddLocation records an additional copy of the named file.
	AddLocation(ctx context.Context, from cloud.SiteID, name string, loc registry.Location) (registry.Entry, error)

	// Delete removes the entry with the given name.
	Delete(ctx context.Context, from cloud.SiteID, name string) error

	// Flush forces any pending asynchronous propagation (sync-agent rounds,
	// lazy batches) to complete, bringing every site up to date. It is a
	// no-op for strategies without asynchronous machinery. A cancelled
	// context aborts the round mid-fan-out; on a closed service Flush
	// returns an error wrapping ErrClosed.
	Flush(ctx context.Context) error

	// Close releases background resources (agents, propagators). The service
	// must not be used afterwards. Close takes no context: it must always be
	// able to run to completion during teardown.
	Close() error
}

// Client binds a MetadataService to one execution node, providing the
// node-local view used by workflow tasks: every operation is issued from the
// node's site.
type Client struct {
	svc    MetadataService
	node   cloud.Node
	tenant string
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTenant tags every operation issued through this client with the given
// tenant ID (via limits.WithTenant), identifying whose admission budget the
// work consumes when a site is backed by a limit-enforcing rpc server. A
// tenant already present on an operation's context wins over the
// client-wide value.
func WithTenant(tenant string) ClientOption {
	return func(c *Client) { c.tenant = tenant }
}

// NewClient returns a client issuing operations from the given node.
func NewClient(svc MetadataService, node cloud.Node, opts ...ClientOption) *Client {
	c := &Client{svc: svc, node: node}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Node returns the execution node this client is bound to.
func (c *Client) Node() cloud.Node { return c.node }

// Service returns the underlying metadata service.
func (c *Client) Service() MetadataService { return c.svc }

// Tenant returns the tenant ID this client tags its operations with ("" =
// the default tenant).
func (c *Client) Tenant() string { return c.tenant }

// tenantCtx attaches the client's tenant to ctx unless the caller already
// carries one (limits.WithTenant keeps an existing value when the new tenant
// is empty, and the explicit check keeps a caller-supplied tenant on top).
func (c *Client) tenantCtx(ctx context.Context) context.Context {
	if c.tenant == "" || limits.TenantFromContext(ctx) != "" {
		return ctx
	}
	return limits.WithTenant(ctx, c.tenant)
}

// PublishFile creates a metadata entry for a file produced by the node.
func (c *Client) PublishFile(ctx context.Context, name string, size int64, producer string) (registry.Entry, error) {
	loc := registry.Location{Site: c.node.Site, Node: c.node.ID}
	return c.svc.Create(c.tenantCtx(ctx), c.node.Site, registry.NewEntry(name, size, producer, loc))
}

// LocateFile looks up the metadata entry of a file.
func (c *Client) LocateFile(ctx context.Context, name string) (registry.Entry, error) {
	return c.svc.Lookup(c.tenantCtx(ctx), c.node.Site, name)
}

// RegisterCopy records that this node now holds a copy of the file.
func (c *Client) RegisterCopy(ctx context.Context, name string) (registry.Entry, error) {
	loc := registry.Location{Site: c.node.Site, Node: c.node.ID}
	return c.svc.AddLocation(c.tenantCtx(ctx), c.node.Site, name, loc)
}

// Remove deletes the metadata entry of a file.
func (c *Client) Remove(ctx context.Context, name string) error {
	return c.svc.Delete(c.tenantCtx(ctx), c.node.Site, name)
}
