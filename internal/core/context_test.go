package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/latency"
	"geomds/internal/registry"
)

// newEveryStrategy builds one service of each kind over its own fabric.
func newEveryStrategy(t *testing.T) map[StrategyKind]MetadataService {
	t.Helper()
	out := make(map[StrategyKind]MetadataService, len(Strategies))
	for _, kind := range Strategies {
		svc, err := NewService(newTestFabric(), kind)
		if err != nil {
			t.Fatalf("building %s: %v", kind, err)
		}
		out[kind] = svc
	}
	return out
}

// TestFlushOnClosedServiceReturnsErrClosed asserts the satellite requirement
// verbatim: Flush(ctx) on a closed service fails with an error matching
// ErrClosed under errors.Is, for every strategy.
func TestFlushOnClosedServiceReturnsErrClosed(t *testing.T) {
	for kind, svc := range newEveryStrategy(t) {
		if err := svc.Close(); err != nil {
			t.Fatalf("%s: Close: %v", kind, err)
		}
		err := svc.Flush(tctx)
		if !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Flush on closed service = %v, want ErrClosed", kind, err)
		}
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Errorf("%s: Flush error %T does not unwrap to *OpError", kind, err)
		} else if oe.Op != "flush" {
			t.Errorf("%s: OpError.Op = %q, want \"flush\"", kind, oe.Op)
		}
	}
}

// TestClosedServiceOperationsReturnErrClosed asserts every operation of a
// closed service reports ErrClosed through the typed error model.
func TestClosedServiceOperationsReturnErrClosed(t *testing.T) {
	for kind, svc := range newEveryStrategy(t) {
		svc.Close()
		if _, err := svc.Create(tctx, 0, testEntry("x", 0)); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Create = %v, want ErrClosed", kind, err)
		}
		if _, err := svc.Lookup(tctx, 0, "x"); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Lookup = %v, want ErrClosed", kind, err)
		}
		if _, err := svc.AddLocation(tctx, 0, "x", registry.Location{Site: 0}); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: AddLocation = %v, want ErrClosed", kind, err)
		}
		if err := svc.Delete(tctx, 0, "x"); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Delete = %v, want ErrClosed", kind, err)
		}
	}
}

// TestOpErrorCarriesStructuredFields asserts a strategy failure surfaces as a
// *OpError whose fields identify the operation, site and entry, with the
// sentinel cause reachable through errors.Is.
func TestOpErrorCarriesStructuredFields(t *testing.T) {
	for kind, svc := range newEveryStrategy(t) {
		_, err := svc.Lookup(tctx, 2, "does-not-exist")
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: Lookup missing = %v, want ErrNotFound", kind, err)
		}
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: error %T does not unwrap to *OpError", kind, err)
		}
		if oe.Op != "lookup" || oe.Site != 2 || oe.Name != "does-not-exist" {
			t.Errorf("%s: OpError = %+v, want op=lookup site=2 name=does-not-exist", kind, oe)
		}
		svc.Close()
	}
}

// TestOpErrorDuplicateCreate asserts ErrExists round-trips the typed model.
func TestOpErrorDuplicateCreate(t *testing.T) {
	for kind, svc := range newEveryStrategy(t) {
		if _, err := svc.Create(tctx, 1, testEntry("dup", 1)); err != nil {
			t.Fatalf("%s: first Create: %v", kind, err)
		}
		_, err := svc.Create(tctx, 1, testEntry("dup", 1))
		if !errors.Is(err, ErrExists) {
			t.Errorf("%s: duplicate Create = %v, want ErrExists", kind, err)
		}
		svc.Close()
	}
}

// TestErrSiteUnreachableAlias pins the cross-layer contract: the transport's
// registry.ErrUnavailable and core's ErrSiteUnreachable are the same
// sentinel, so an rpc failure deep inside a strategy matches either.
func TestErrSiteUnreachableAlias(t *testing.T) {
	wrapped := fmt.Errorf("rpc: connect 10.0.0.1:7070: %w", registry.ErrUnavailable)
	if !errors.Is(wrapped, ErrSiteUnreachable) {
		t.Error("registry.ErrUnavailable should match core.ErrSiteUnreachable")
	}
	if !errors.Is(opErr("lookup", 1, "f", wrapped), ErrSiteUnreachable) {
		t.Error("OpError-wrapped transport failure should match ErrSiteUnreachable")
	}
}

// TestCancelledContextAbortsWANSleep runs a strategy over a *real* (sleeping)
// latency model with long WAN delays and asserts a cancelled context unblocks
// the caller long before the modelled round trip elapses.
func TestCancelledContextAbortsWANSleep(t *testing.T) {
	topo := cloud.Azure4DC()
	// Scale 10: a geo-distant round trip (~100ms RTT) becomes ~1s.
	lat := latency.New(topo, latency.WithSeed(1), latency.WithScale(10))
	fabric := NewFabric(topo, lat, WithCacheCapacity(0, 0))
	svc, err := NewCentralized(fabric, 0) // site 0; calls from site 2 are geo-distant
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Seed the entry directly so the lookup's only blocking step is the
	// modelled WAN round trip (a genuine miss would answer ErrNotFound).
	inst, _ := fabric.Instance(0)
	if _, err := inst.Create(tctx, testEntry("far-away", 0)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.Lookup(ctx, 2, "far-away")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call enter the modelled sleep
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Lookup = %v, want context.Canceled", err)
		}
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Errorf("cancelled Lookup error %T does not unwrap to *OpError", err)
		}
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Errorf("cancellation took %v to unblock the WAN sleep", elapsed)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled Lookup never returned")
	}
}

// TestDeadlineBoundsOperation asserts a context deadline turns into a
// DeadlineExceeded-wrapping OpError when the modelled WAN latency exceeds it.
func TestDeadlineBoundsOperation(t *testing.T) {
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(1), latency.WithScale(10))
	fabric := NewFabric(topo, lat, WithCacheCapacity(0, 0))
	svc, err := NewCentralized(fabric, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = svc.Create(ctx, 2, testEntry("too-slow", 2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Create past deadline = %v, want context.DeadlineExceeded", err)
	}
}

// TestFlushCancellationRequeues asserts a cancelled Flush aborts mid-fan-out
// without losing the drained updates: a later, uncancelled Flush still
// propagates them.
func TestFlushCancellationRequeues(t *testing.T) {
	svc, err := NewDecReplicated(newTestFabric(), WithLazyPropagation(time.Hour, 100000))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Write from site 0 entries homed elsewhere so they queue for propagation.
	var names []string
	for i := 0; len(names) < 8; i++ {
		name := fmt.Sprintf("requeue-%d", i)
		if svc.Home(name) != 0 {
			names = append(names, name)
		}
	}
	for _, name := range names {
		if _, err := svc.Create(tctx, 0, testEntry(name, 0)); err != nil {
			t.Fatal(err)
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.Flush(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Flush = %v, want context.Canceled", err)
	}
	if got := svc.propagator.Pending(); got != len(names) {
		t.Fatalf("after cancelled Flush %d updates pending, want %d (nothing may be lost)", got, len(names))
	}

	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		home, _ := svc.fabric.Instance(svc.Home(name))
		if !home.Contains(tctx, name) {
			t.Errorf("entry %q never reached its home site after the re-queued flush", name)
		}
	}
}

// TestReplicatedFlushCancellationRequeues is the sync-agent counterpart: a
// cancelled round must re-queue the drained updates for the next round.
func TestReplicatedFlushCancellationRequeues(t *testing.T) {
	svc, err := NewReplicated(newTestFabric(), 0, WithSyncInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := svc.Create(tctx, 1, testEntry(fmt.Sprintf("agent-rq-%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.Flush(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Flush = %v, want context.Canceled", err)
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for _, site := range svc.fabric.Sites() {
		inst, _ := svc.fabric.Instance(site)
		if got := inst.Len(tctx); got != n {
			t.Errorf("site %d holds %d entries after re-queued sync, want %d", site, got, n)
		}
	}
}
