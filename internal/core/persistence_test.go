package core

import (
	"errors"
	"fmt"
	"testing"

	"geomds/internal/store"
)

// TestFabricShardPersistence pins the fabric-level durability contract: a
// fabric built with WithShardPersistence recovers every site's entries —
// across a sharded tier — after Close and rebuild over the same directory,
// even under the relaxed fsync policy (Close must flush).
func TestFabricShardPersistence(t *testing.T) {
	dir := t.TempDir()
	persist := []FabricOption{
		WithShardPersistence(dir, store.WithFsync(store.FsyncNever)),
		WithShardsPerSite(2),
		WithMetricsRegistry(nil),
	}

	fabric := newTestFabric(persist...)
	site := fabric.Sites()[0]
	inst, err := fabric.Instance(site)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := inst.Create(tctx, testEntry(fmt.Sprintf("f/%d", i), site)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fabric.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	revived := newTestFabric(persist...)
	defer revived.Close()
	inst, err = revived.Instance(site)
	if err != nil {
		t.Fatal(err)
	}
	if n := inst.Len(tctx); n != 20 {
		t.Errorf("recovered site holds %d entries, want 20", n)
	}
	for i := 0; i < 20; i++ {
		if _, err := inst.Get(tctx, fmt.Sprintf("f/%d", i)); err != nil {
			t.Errorf("f/%d not recovered: %v", i, err)
		}
	}
	// Other sites recovered empty (their directories exist but hold nothing).
	other := revived.Sites()[1]
	oinst, err := revived.Instance(other)
	if err != nil {
		t.Fatal(err)
	}
	if n := oinst.Len(tctx); n != 0 {
		t.Errorf("untouched site recovered %d entries, want 0", n)
	}
}

func TestFabricCloseRejectsFurtherWrites(t *testing.T) {
	fabric := newTestFabric(WithShardPersistence(t.TempDir()), WithMetricsRegistry(nil))
	site := fabric.Sites()[0]
	inst, err := fabric.Instance(site)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Create(tctx, testEntry("f/0", site)); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Create(tctx, testEntry("f/1", site)); !errors.Is(err, store.ErrClosed) {
		t.Errorf("Create after fabric Close = %v, want store.ErrClosed", err)
	}
	// A memory-only fabric closes trivially.
	if err := newTestFabric().Close(); err != nil {
		t.Errorf("memory-only Close: %v", err)
	}
}
