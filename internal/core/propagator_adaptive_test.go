package core

import (
	"fmt"
	"testing"
	"time"
)

func TestPropagatorFixedBatchLimitWithoutOption(t *testing.T) {
	f := newTestFabric()
	p := NewPropagator(f, time.Hour, 17)
	defer p.Close()
	if got := p.BatchLimit(); got != 17 {
		t.Fatalf("BatchLimit = %d, want the fixed 17", got)
	}
	p.Enqueue(0, 1, testEntry("fixed", 0))
	p.FlushNow(tctx)
	if got := p.BatchLimit(); got != 17 {
		t.Fatalf("BatchLimit moved to %d without WithAdaptiveBatch", got)
	}
}

func TestPropagatorAdaptiveBatchShrinksOnSlowRounds(t *testing.T) {
	f := newTestFabric()
	p := NewPropagator(f, time.Hour, 64, WithAdaptiveBatch(8, 256, 10*time.Millisecond))
	defer p.Close()
	if got := p.BatchLimit(); got != 64 {
		t.Fatalf("starting BatchLimit = %d, want 64", got)
	}
	// Rounds far past the 10ms target halve the limit down to the floor.
	for i := 0; i < 6; i++ {
		p.adaptBatch(50*time.Millisecond, 10)
	}
	if got := p.BatchLimit(); got != 8 {
		t.Fatalf("BatchLimit after sustained slow rounds = %d, want the 8 floor", got)
	}
}

func TestPropagatorAdaptiveBatchGrowsWithHeadroom(t *testing.T) {
	f := newTestFabric()
	p := NewPropagator(f, time.Hour, 64, WithAdaptiveBatch(8, 256, 10*time.Millisecond))
	defer p.Close()
	// Rounds finishing well under half the target grow the limit toward the
	// cap, additively.
	for i := 0; i < 32; i++ {
		p.adaptBatch(time.Millisecond, 10)
	}
	if got := p.BatchLimit(); got != 256 {
		t.Fatalf("BatchLimit after sustained fast rounds = %d, want the 256 cap", got)
	}
}

func TestPropagatorAdaptiveBatchIgnoresEmptyRounds(t *testing.T) {
	f := newTestFabric()
	p := NewPropagator(f, time.Hour, 64, WithAdaptiveBatch(8, 256, 10*time.Millisecond))
	defer p.Close()
	// An idle tick's round latency says nothing about per-batch cost.
	for i := 0; i < 6; i++ {
		p.adaptBatch(50*time.Millisecond, 0)
	}
	if got := p.BatchLimit(); got != 64 {
		t.Fatalf("BatchLimit moved to %d on empty rounds", got)
	}
}

func TestPropagatorAdaptiveLimitDrivesEarlyFlush(t *testing.T) {
	f := newTestFabric()
	// Pin the adaptive limit at 3 (floor == cap): the third enqueue must
	// trigger the early flush exactly like a fixed maxBatch of 3.
	p := NewPropagator(f, time.Hour, 64, WithAdaptiveBatch(3, 3, time.Hour))
	defer p.Close()
	if got := p.BatchLimit(); got != 3 {
		t.Fatalf("pinned BatchLimit = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		p.Enqueue(0, 1, testEntry(fmt.Sprintf("adaptive%d", i), 0))
	}
	inst, _ := f.Instance(1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if inst.Len(tctx) == 3 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("adaptive early flush did not run; destination holds %d entries", inst.Len(tctx))
}
