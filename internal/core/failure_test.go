package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/dht"
	"geomds/internal/latency"
	"geomds/internal/memcache"
	"geomds/internal/registry"
)

// This file exercises the failure and elasticity scenarios the paper calls
// out: the cache tier's primary/replica failover (§III-B) and metadata
// servers being added to or removed from the deployment, "a common cloud
// scenario" (§VII-B, §VIII).

// newHAFabric builds a test fabric whose registry instances sit on
// primary/replica cache pairs, exposing the HA caches for fault injection.
func newHAFabric() (*Fabric, map[cloud.SiteID]*memcache.HACache) {
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(4), latency.WithSleeper(func(time.Duration) {}))
	pairs := make(map[cloud.SiteID]*memcache.HACache)
	fabric := NewFabric(topo, lat, WithCacheFactory(func(site cloud.SiteID) registry.Store {
		ha := memcache.NewHA(func() *memcache.Cache { return memcache.New(memcache.Config{}) })
		pairs[site] = ha
		return ha
	}))
	return fabric, pairs
}

func TestCentralizedSurvivesPrimaryCacheFailure(t *testing.T) {
	fabric, pairs := newHAFabric()
	svc, err := NewCentralized(fabric, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for i := 0; i < 50; i++ {
		if _, err := svc.Create(tctx, cloud.SiteID(i%4), testEntry(fmt.Sprintf("pre-%d", i), cloud.SiteID(i%4))); err != nil {
			t.Fatalf("Create before failover: %v", err)
		}
	}
	// The central site's primary cache dies; the replica takes over.
	pairs[0].FailPrimary()

	for i := 0; i < 50; i++ {
		if _, err := svc.Lookup(tctx, cloud.SiteID(i%4), fmt.Sprintf("pre-%d", i)); err != nil {
			t.Errorf("entry pre-%d lost in failover: %v", i, err)
		}
	}
	// The service keeps accepting new entries after the failover.
	if _, err := svc.Create(tctx, 1, testEntry("post-failover", 1)); err != nil {
		t.Errorf("Create after failover: %v", err)
	}
}

func TestDecReplicatedFailoverUnderConcurrentLoad(t *testing.T) {
	fabric, pairs := newHAFabric()
	svc, err := NewDecReplicated(fabric, WithEagerPropagation())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const perWorker = 40
	var wg sync.WaitGroup
	errCh := make(chan error, 8*perWorker)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := cloud.SiteID(w % 4)
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("ha-load/w%d/f%d", w, i)
				if _, err := svc.Create(tctx, site, testEntry(name, site)); err != nil {
					errCh <- fmt.Errorf("create %s: %w", name, err)
					return
				}
				if _, err := svc.Lookup(tctx, site, name); err != nil {
					errCh <- fmt.Errorf("lookup %s: %w", name, err)
					return
				}
			}
		}(w)
	}
	// Fail two primaries while the load is running.
	pairs[1].FailPrimary()
	pairs[3].FailPrimary()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if pairs[1].Failures() != 1 || pairs[3].Failures() != 1 {
		t.Error("failovers not recorded")
	}
}

func TestDecentralizedSiteDepartureWithRingPlacer(t *testing.T) {
	f := newTestFabric()
	ring := dht.NewRingPlacer(f.Sites(), 64)
	svc, err := NewDecentralized(f, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Publish a namespace, remembering each entry's home.
	const entries = 200
	homes := make(map[string]cloud.SiteID, entries)
	for i := 0; i < entries; i++ {
		name := fmt.Sprintf("elastic/file-%04d", i)
		if _, err := svc.Create(tctx, cloud.SiteID(i%4), testEntry(name, cloud.SiteID(i%4))); err != nil {
			t.Fatal(err)
		}
		homes[name] = svc.Home(name)
	}

	// Site 3 is decommissioned: it leaves the placement ring. New operations
	// must avoid it, and entries homed elsewhere remain readable.
	ring.Remove(3)
	reachable, lost := 0, 0
	for name, home := range homes {
		if svc.Home(name) == 3 {
			t.Errorf("%s still placed on the departed site", name)
		}
		_, err := svc.Lookup(tctx, 0, name)
		switch {
		case err == nil:
			reachable++
		case home == 3 && errors.Is(err, ErrNotFound):
			// Entries whose only copy lived on the departed site are lost
			// until re-published — the migration cost §VIII discusses.
			lost++
		default:
			t.Errorf("lookup %s: %v", name, err)
		}
	}
	if reachable == 0 {
		t.Fatal("no entry survived the departure")
	}
	// Consistent hashing keeps the damage proportional to the departed
	// site's share (~1/4), far below a full reshuffle.
	if lost > entries/2 {
		t.Errorf("%d of %d entries lost; consistent hashing should bound the loss near 25%%", lost, entries)
	}
	// New entries keep working and never land on the departed site.
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("elastic/new-%04d", i)
		if _, err := svc.Create(tctx, 0, testEntry(name, 0)); err != nil {
			t.Fatalf("create after departure: %v", err)
		}
		if svc.Home(name) == 3 {
			t.Errorf("%s placed on the departed site", name)
		}
	}
}

func TestDecentralizedSiteArrivalMovesFewPlacements(t *testing.T) {
	// A new datacenter joins a ring-placed deployment: only a bounded share
	// of names change home (the elasticity argument for consistent hashing).
	names := make([]string, 2000)
	for i := range names {
		names[i] = fmt.Sprintf("arrival/file-%05d", i)
	}
	before := dht.NewRingPlacer([]cloud.SiteID{0, 1, 2}, 64)
	after := dht.NewRingPlacer([]cloud.SiteID{0, 1, 2}, 64)
	after.Add(3)
	moved, frac := dht.Moved(before, after, names)
	if moved == 0 {
		t.Error("adding a site should move some placements")
	}
	if frac > 0.5 {
		t.Errorf("site arrival moved %.0f%% of placements; want a bounded share", frac*100)
	}
}

func TestReplicatedAgentSiteFailureIsIsolated(t *testing.T) {
	// Stopping the cache behind a non-agent site must not wedge the agent:
	// sync rounds keep propagating between the surviving sites.
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(6), latency.WithSleeper(func(time.Duration) {}))
	caches := make(map[cloud.SiteID]*memcache.Cache)
	fabric := NewFabric(topo, lat, WithCacheFactory(func(site cloud.SiteID) registry.Store {
		c := memcache.New(memcache.Config{})
		caches[site] = c
		return c
	}))
	svc, err := NewReplicated(fabric, 0, WithSyncInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if _, err := svc.Create(tctx, 1, testEntry("before-crash", 1)); err != nil {
		t.Fatal(err)
	}
	caches[3].Stop() // site 3's registry dies
	if err := svc.Flush(tctx); err != nil {
		t.Fatalf("Flush with a dead site: %v", err)
	}
	// The entry still reached the surviving sites.
	for _, site := range []cloud.SiteID{0, 1, 2} {
		if _, err := svc.Lookup(tctx, site, "before-crash"); err != nil {
			t.Errorf("entry missing at surviving site %d: %v", site, err)
		}
	}
	// Operations against the dead site fail loudly rather than hanging.
	if _, err := svc.Create(tctx, 3, testEntry("at-dead-site", 3)); err == nil {
		t.Error("creating at a stopped site should fail")
	}
}
