package core

import (
	"fmt"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/latency"
	"geomds/internal/memcache"
	"geomds/internal/registry"
)

// newShardedCountingFabric builds a 4-site fabric where every site is a
// registry.Router over nShards counting shards, so tests can assert how many
// calls each individual shard of a sharded site receives.
func newShardedCountingFabric(t *testing.T, nShards int) (*Fabric, map[cloud.SiteID][]*countingAPI) {
	t.Helper()
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(1), latency.WithSleeper(func(time.Duration) {}))
	counters := make(map[cloud.SiteID][]*countingAPI)
	instances := make(map[cloud.SiteID]registry.API)
	for _, s := range topo.Sites() {
		shards := make([]registry.API, nShards)
		for i := range shards {
			c := newCountingAPI(registry.NewInstance(s.ID, memcache.New(memcache.Config{})))
			counters[s.ID] = append(counters[s.ID], c)
			shards[i] = c
		}
		router, err := registry.NewRouter(s.ID, shards, registry.WithRouterMetrics(nil))
		if err != nil {
			t.Fatal(err)
		}
		instances[s.ID] = router
	}
	f := NewFabric(topo, lat, WithCacheCapacity(0, 0), WithInstances(instances))
	return f, counters
}

// TestSyncAgentStaysBatchedPerShard asserts that the replicated strategy's
// synchronization agent keeps its bulk contract through a sharded site: one
// round costs at most one GetMany/Merge/DeleteMany sub-batch per *shard*,
// never a call per entry.
func TestSyncAgentStaysBatchedPerShard(t *testing.T) {
	const nShards = 3
	f, counters := newShardedCountingFabric(t, nShards)
	svc, err := NewReplicated(f, 0, WithSyncInterval(time.Hour)) // manual rounds only
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const n = 40
	for i := 0; i < n; i++ {
		if _, err := svc.Create(tctx, 1, testEntry(fmt.Sprintf("shard-batch-%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(tctx); err != nil { // round 1: propagate the creates
		t.Fatal(err)
	}

	for site, shards := range counters {
		for i, c := range shards {
			if got := c.Calls("GetMany"); got > 1 {
				t.Errorf("site %d shard %d: GetMany called %d times in one round, want at most 1", site, i, got)
			}
			if got := c.Calls("Merge"); got > 1 {
				t.Errorf("site %d shard %d: Merge called %d times in one round, want at most 1", site, i, got)
			}
			if got := c.Calls("Put"); got != 0 {
				t.Errorf("site %d shard %d: %d per-entry Puts; propagation must stay batched", site, i, got)
			}
		}
	}
	// Every site converged on the full entry set.
	for _, site := range f.Sites() {
		inst, _ := f.Instance(site)
		if got := inst.Len(tctx); got != n {
			t.Errorf("site %d holds %d entries after the round, want %d", site, got, n)
		}
	}

	for i := 0; i < n; i++ {
		if err := svc.Delete(tctx, 1, fmt.Sprintf("shard-batch-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(tctx); err != nil { // round 2: propagate the deletes
		t.Fatal(err)
	}
	for site, shards := range counters {
		for i, c := range shards {
			if got := c.Calls("DeleteMany"); got > 1 {
				t.Errorf("site %d shard %d: DeleteMany called %d times in one round, want at most 1", site, i, got)
			}
			// Per-entry deletes only on the writer site's shards (the client's
			// own n local operations, one per entry, routed by key).
			if site != 1 {
				if got := c.Calls("Delete"); got != 0 {
					t.Errorf("site %d shard %d: %d per-entry Deletes; propagation must use DeleteMany", site, i, got)
				}
			}
		}
	}
}

// TestPropagatorStaysBatchedPerShard asserts the hybrid strategy's lazy
// propagator delivers a flush to a sharded home site as bulk sub-batches:
// at most one Merge and one DeleteMany per shard per flush.
func TestPropagatorStaysBatchedPerShard(t *testing.T) {
	const nShards = 3
	f, counters := newShardedCountingFabric(t, nShards)
	svc, err := NewDecReplicated(f, WithLazyPropagation(time.Hour, 100000)) // manual flush only
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Write, from site 0, a pile of entries homed at site 2.
	var names []string
	for i := 0; len(names) < 30; i++ {
		name := fmt.Sprintf("shard-lazy-%d", i)
		if svc.Home(name) != 2 {
			continue
		}
		if _, err := svc.Create(tctx, 0, testEntry(name, 0)); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}

	for i, c := range counters[2] {
		if got := c.Calls("Merge"); got > 1 {
			t.Errorf("home shard %d: Merge called %d times for one flush, want at most 1", i, got)
		}
		if got := c.Calls("Put"); got != 0 {
			t.Errorf("home shard %d: %d per-entry Puts; lazy propagation must stay batched", i, got)
		}
	}

	// Lazy deletes ride the next flush as DeleteMany sub-batches.
	for _, name := range names {
		if err := svc.Delete(tctx, 0, name); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for i, c := range counters[2] {
		if got := c.Calls("DeleteMany"); got > 1 {
			t.Errorf("home shard %d: DeleteMany called %d times for one flush, want at most 1", i, got)
		}
		if got := c.Calls("Delete"); got != 0 {
			t.Errorf("home shard %d: %d per-entry Deletes; lazy deletions must stay batched", i, got)
		}
	}
}

// TestStrategiesOverShardedFabric drives all four strategies over a fabric
// whose sites are 4-shard routed tiers (WithShardsPerSite) and checks the
// basic create → flush → lookup → delete cycle works transparently.
func TestStrategiesOverShardedFabric(t *testing.T) {
	for _, kind := range Strategies {
		t.Run(kind.String(), func(t *testing.T) {
			topo := cloud.Azure4DC()
			lat := latency.New(topo, latency.WithSeed(1), latency.WithSleeper(func(time.Duration) {}))
			f := NewFabric(topo, lat, WithCacheCapacity(0, 0), WithShardsPerSite(4), WithMetricsRegistry(nil))
			if got := f.ShardsPerSite(); got != 4 {
				t.Fatalf("ShardsPerSite: got %d, want 4", got)
			}
			svc, err := NewService(f, kind)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			const n = 32
			for i := 0; i < n; i++ {
				if _, err := svc.Create(tctx, cloud.SiteID(i%4), testEntry(fmt.Sprintf("sharded-%d", i), cloud.SiteID(i%4))); err != nil {
					t.Fatalf("create %d: %v", i, err)
				}
			}
			if err := svc.Flush(tctx); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("sharded-%d", i)
				if _, err := svc.Lookup(tctx, cloud.SiteID((i+1)%4), name); err != nil {
					t.Fatalf("lookup %q from remote site: %v", name, err)
				}
			}
			for i := 0; i < n; i++ {
				if err := svc.Delete(tctx, cloud.SiteID(i%4), fmt.Sprintf("sharded-%d", i)); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
			}
		})
	}
}

// TestStrategiesOverReplicatedShardedFabric drives all four strategies over
// a fabric whose sites are 4-shard, 2-way replicated routed tiers
// (WithShardsPerSite + WithShardReplication) and checks the same
// create → flush → lookup → delete cycle works transparently — the
// strategies cannot tell replicated placement from single-home placement.
func TestStrategiesOverReplicatedShardedFabric(t *testing.T) {
	for _, kind := range Strategies {
		t.Run(kind.String(), func(t *testing.T) {
			topo := cloud.Azure4DC()
			lat := latency.New(topo, latency.WithSeed(1), latency.WithSleeper(func(time.Duration) {}))
			f := NewFabric(topo, lat, WithCacheCapacity(0, 0),
				WithShardsPerSite(4), WithShardReplication(2), WithMetricsRegistry(nil))
			if got := f.ShardReplication(); got != 2 {
				t.Fatalf("ShardReplication: got %d, want 2", got)
			}
			svc, err := NewService(f, kind)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			const n = 32
			for i := 0; i < n; i++ {
				if _, err := svc.Create(tctx, cloud.SiteID(i%4), testEntry(fmt.Sprintf("repl-sharded-%d", i), cloud.SiteID(i%4))); err != nil {
					t.Fatalf("create %d: %v", i, err)
				}
			}
			if err := svc.Flush(tctx); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("repl-sharded-%d", i)
				if _, err := svc.Lookup(tctx, cloud.SiteID((i+1)%4), name); err != nil {
					t.Fatalf("lookup %q from remote site: %v", name, err)
				}
			}
			for i := 0; i < n; i++ {
				if err := svc.Delete(tctx, cloud.SiteID(i%4), fmt.Sprintf("repl-sharded-%d", i)); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
			}
		})
	}
}
