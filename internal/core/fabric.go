package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/feed"
	"geomds/internal/latency"
	"geomds/internal/memcache"
	"geomds/internal/metrics"
	"geomds/internal/readcache"
	"geomds/internal/registry"
	"geomds/internal/store"
)

// Fabric is the substrate every strategy builds on: one metadata registry
// deployment per participating datacenter (backed by the in-memory cache
// tier) plus the latency model of the multi-site cloud. A site's deployment
// is a single instance by default, a registry.Router over several shard
// instances under WithShardsPerSite, or an externally provided registry.API
// (an rpc.Client proxy, or a Router over proxies) under WithInstances — the
// strategies cannot tell the difference. The same fabric can back any
// strategy, which is what lets the ArchitectureController switch between
// them without redeploying anything.
type Fabric struct {
	topo  *cloud.Topology
	lat   *latency.Model
	codec registry.Codec
	rec   *metrics.Recorder

	// metrics is the live-observability registry (nil = disabled); the
	// instruments below are resolved once here so the per-op path never
	// touches the registry's name map.
	metrics   *metrics.Registry
	opHists   [5]*metrics.Histogram // core_<kind>_latency_ns, indexed by OpKind
	opsTotal  *metrics.Counter      // core_ops_total
	remoteOps *metrics.Counter      // core_remote_ops_total
	trace     *metrics.TraceRing

	sites            []cloud.SiteID
	instances        map[cloud.SiteID]registry.API
	shardsPerSite    int
	shardReplication int

	// owned are the close functions of everything the fabric built and is
	// responsible for shutting down: shard routers, and the persistent
	// instances whose write-ahead logs need a final flush. Externally
	// provided instances (WithInstances) are never owned.
	owned []func() error

	// ackBytes is the modelled size of a small acknowledgement message.
	ackBytes int
	// queryBytes is the modelled size of a lookup request (key + framing).
	queryBytes int
}

// FabricOption configures a Fabric.
type FabricOption func(*fabricConfig)

type fabricConfig struct {
	sites            []cloud.SiteID
	codec            registry.Codec
	rec              *metrics.Recorder
	metricsReg       *metrics.Registry
	cacheFactory     func(cloud.SiteID) registry.Store
	instances        map[cloud.SiteID]registry.API
	ha               bool
	serviceTime      time.Duration
	concurrency      int
	shardsPerSite    int
	shardReplication int
	dataDir          string
	storeOpts        []store.Option
	changeFeeds      bool
	feedOpts         []feed.LogOption
	nearCache        bool
	nearCacheOpts    readcache.Options
}

// WithInstances backs specific sites with externally provided registry
// instances (typically rpc.Client proxies to registry servers running as
// separate processes). Sites not present in the map fall back to in-process
// instances built by the cache factory.
func WithInstances(instances map[cloud.SiteID]registry.API) FabricOption {
	return func(c *fabricConfig) { c.instances = instances }
}

// WithSites restricts the fabric to a subset of the topology's sites
// (default: every site).
func WithSites(sites ...cloud.SiteID) FabricOption {
	return func(c *fabricConfig) { c.sites = sites }
}

// WithFabricCodec selects the entry codec (default gob).
func WithFabricCodec(codec registry.Codec) FabricOption {
	return func(c *fabricConfig) { c.codec = codec }
}

// WithRecorder attaches a metrics recorder; every metadata operation served
// through the fabric's strategies is recorded on it.
func WithRecorder(rec *metrics.Recorder) FabricOption {
	return func(c *fabricConfig) { c.rec = rec }
}

// WithMetricsRegistry selects the live-observability registry the fabric —
// and every strategy, propagator and sync agent built over it — reports to:
// per-kind latency histograms, operation counters, queue-depth gauges and
// the per-op trace ring. The default is metrics.Default; pass nil to disable
// instrumentation entirely.
func WithMetricsRegistry(reg *metrics.Registry) FabricOption {
	return func(c *fabricConfig) { c.metricsReg = reg }
}

// WithCacheFactory overrides how the per-site cache instances are built.
func WithCacheFactory(f func(cloud.SiteID) registry.Store) FabricOption {
	return func(c *fabricConfig) { c.cacheFactory = f }
}

// WithHACaches backs every registry instance with a primary/replica pair
// instead of a single cache, as the paper's managed cache tier does.
func WithHACaches() FabricOption {
	return func(c *fabricConfig) { c.ha = true }
}

// WithShardsPerSite backs every in-process site with a registry.Router over n
// shard instances instead of a single instance: single-key operations route
// to the shard owning the key and bulk operations split into one concurrent
// sub-batch per shard, so a site's metadata throughput scales with n instead
// of saturating at one cache instance's capacity. Each shard gets its own
// cache built by the cache factory; the shards report to the fabric's metrics
// registry, so cache occupancy and hit-rate series aggregate across the whole
// sharded tier. Sites provided externally via WithInstances are not wrapped —
// pass a Router there to shard a remote site. n <= 1 keeps the single-instance
// layout.
func WithShardsPerSite(n int) FabricOption {
	return func(c *fabricConfig) {
		if n > 1 {
			c.shardsPerSite = n
		}
	}
}

// WithShardReplication places every key of a sharded site on the first r
// distinct shards of its consistent-hash successor list instead of a single
// home shard: writes fan out to all r replicas, reads fail over down the
// list, and the router's health breaker takes crashed shards out of
// placement until they answer probes again — a site keeps serving its whole
// key range through the loss of any r-1 shards. It only takes effect
// together with WithShardsPerSite (replication needs a routed tier);
// r <= 1 keeps single-home placement.
func WithShardReplication(r int) FabricOption {
	return func(c *fabricConfig) {
		if r > 1 {
			c.shardReplication = r
		}
	}
}

// WithShardPersistence backs every in-process registry instance with an
// append-only write-ahead log under dir, so acknowledged metadata writes
// survive a process crash: each site recovers from dir/site-<id> (or
// dir/site-<id>/shard-<i> when the site is sharded) on the next start, and
// replicated shard tiers repair a restarted shard from its recovered state
// instead of re-syncing it from scratch. The strategies cannot tell the
// difference — durability sits entirely below the registry API. Pass store
// options to tune the fsync policy and compaction cadence. Sites provided
// externally via WithInstances keep their own persistence arrangements.
//
// A fabric with persistence must be shut down with Close, which flushes and
// fsyncs every log so a clean shutdown is lossless even under
// store.FsyncNever. NewFabric panics if a data directory cannot be opened
// (callers that need a recoverable error validate dir beforehand, as
// experiments.Config does).
func WithShardPersistence(dir string, opts ...store.Option) FabricOption {
	return func(c *fabricConfig) {
		c.dataDir = dir
		c.storeOpts = opts
	}
}

// WithChangeFeeds attaches a change feed to every in-process registry
// instance the fabric builds: each committed put and delete is published as a
// sequenced feed event (riding the WAL sequence when the site is persistent,
// so resume tokens survive restarts). Feeds are what the push-based
// replication modes (WithFeedSync on the replicated strategy, feed
// propagation on the hybrid strategy) and the workflow engine's reactive
// lookups consume instead of polling. Sharded sites expose their router's
// relay feed, which re-sequences the per-shard feeds into one ordered stream.
// Sites provided externally via WithInstances must bring their own feeds
// (e.g. an rpc.Client watch source). Extra log options tune capacity.
func WithChangeFeeds(opts ...feed.LogOption) FabricOption {
	return func(c *fabricConfig) {
		c.changeFeeds = true
		c.feedOpts = opts
	}
}

// WithNearCache fronts every site's registry deployment with a feed-coherent
// near cache (internal/readcache): repeated Gets of unchanged entries answer
// from local memory instead of paying the instance's service time (or the
// wire, for sites provided via WithInstances), and repeated not-founds are
// answered by negative entries. When the fabric was built with
// WithChangeFeeds the cache subscribes to each site's own feed and applies
// put events in place using the fabric codec (overridable via opts.Codec),
// so entries can be stale only within the feed-delivery window; a site
// without a feed falls back to the cache's max-staleness TTL. The zero
// Options value selects the defaults (capacity, shards, TTL policy); the
// cache reports readcache_* series to the fabric's metrics registry unless
// opts.Metrics overrides it. Strategies cannot tell a cached site from a raw
// one — the cache implements registry.API and forwards the feed surface.
func WithNearCache(opts readcache.Options) FabricOption {
	return func(c *fabricConfig) {
		c.nearCache = true
		c.nearCacheOpts = opts
	}
}

// WithCacheCapacity tunes the modelled capacity of each per-site cache
// instance: the per-operation service time and the number of operations
// served concurrently. It is ignored when WithCacheFactory is used.
func WithCacheCapacity(serviceTime time.Duration, concurrency int) FabricOption {
	return func(c *fabricConfig) {
		c.serviceTime = serviceTime
		c.concurrency = concurrency
	}
}

// Default capacity of one registry cache instance, calibrated so that a
// single instance saturates around the throughput the paper reports for the
// centralized baseline (a few hundred operations per second) while the four
// instances of the decentralized strategies together scale towards the
// ~1150 ops/s the paper measures at 128 nodes.
const (
	DefaultServiceTime = 3 * time.Millisecond
	DefaultConcurrency = 2
)

// NewFabric builds the per-site registry instances for the given topology and
// latency model.
func NewFabric(topo *cloud.Topology, lat *latency.Model, opts ...FabricOption) *Fabric {
	cfg := fabricConfig{
		codec:       registry.GobCodec{},
		serviceTime: DefaultServiceTime,
		concurrency: DefaultConcurrency,
		metricsReg:  metrics.Default,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.sites) == 0 {
		for _, s := range topo.Sites() {
			cfg.sites = append(cfg.sites, s.ID)
		}
	}
	if cfg.cacheFactory == nil {
		newCache := func() *memcache.Cache {
			return memcache.New(memcache.Config{
				ServiceTime: cfg.serviceTime,
				Concurrency: cfg.concurrency,
				// Route the service-time sleep through the latency model so
				// the experiment's time-compression factor applies uniformly.
				Sleep: lat.Sleeper(),
				// The per-site caches aggregate into the fabric's registry
				// (hit rate, occupancy, slot wait).
				Metrics: cfg.metricsReg,
			})
		}
		if cfg.ha {
			cfg.cacheFactory = func(cloud.SiteID) registry.Store { return memcache.NewHA(newCache) }
		} else {
			cfg.cacheFactory = func(cloud.SiteID) registry.Store { return newCache() }
		}
	}

	f := &Fabric{
		topo:       topo,
		lat:        lat,
		codec:      cfg.codec,
		rec:        cfg.rec,
		metrics:    cfg.metricsReg,
		sites:      append([]cloud.SiteID(nil), cfg.sites...),
		instances:  make(map[cloud.SiteID]registry.API, len(cfg.sites)),
		ackBytes:   64,
		queryBytes: 128,
	}
	for _, kind := range []metrics.OpKind{metrics.OpRead, metrics.OpWrite, metrics.OpUpdate, metrics.OpDelete, metrics.OpSync} {
		f.opHists[kind] = f.metrics.Histogram("core_" + kind.String() + "_latency_ns")
	}
	f.opsTotal = f.metrics.Counter("core_ops_total")
	f.remoteOps = f.metrics.Counter("core_remote_ops_total")
	f.trace = f.metrics.Trace()
	f.shardsPerSite = cfg.shardsPerSite
	f.shardReplication = cfg.shardReplication
	// newInstance builds one shard instance, memory-only or recovered from
	// its own subdirectory of the data dir.
	newInstance := func(s cloud.SiteID, sub string) *registry.Instance {
		backing := cfg.cacheFactory(s)
		instOpts := []registry.InstanceOption{registry.WithCodec(cfg.codec)}
		if cfg.changeFeeds {
			feedOpts := append([]feed.LogOption{feed.WithLogMetrics(cfg.metricsReg)}, cfg.feedOpts...)
			instOpts = append(instOpts, registry.WithChangeFeed(feedOpts...))
		}
		if cfg.dataDir == "" {
			inst := registry.NewInstance(s, backing, instOpts...)
			if cfg.changeFeeds {
				// Feeding instances own a subscriber list that Close drains.
				f.owned = append(f.owned, inst.Close)
			}
			return inst
		}
		dir := filepath.Join(cfg.dataDir, sub)
		inst, err := registry.OpenInstance(s, backing, dir, cfg.storeOpts, instOpts...)
		if err != nil {
			panic(fmt.Sprintf("core: opening persistent registry at %s: %v", dir, err))
		}
		f.owned = append(f.owned, inst.Close)
		return inst
	}
	for _, s := range cfg.sites {
		siteDir := fmt.Sprintf("site-%d", s)
		if ext, ok := cfg.instances[s]; ok && ext != nil {
			f.instances[s] = ext
			continue
		}
		if cfg.shardsPerSite > 1 {
			shards := make([]registry.API, cfg.shardsPerSite)
			for i := range shards {
				shards[i] = newInstance(s, filepath.Join(siteDir, fmt.Sprintf("shard-%d", i)))
			}
			router, err := registry.NewRouter(s, shards,
				registry.WithRouterMetrics(cfg.metricsReg),
				registry.WithRouterReplication(cfg.shardReplication))
			if err != nil {
				// Unreachable: shardsPerSite > 1 guarantees a non-empty tier.
				panic(fmt.Sprintf("core: building shard router for site %d: %v", s, err))
			}
			// The router's sweeps must stop before the shard logs close.
			f.owned = append([]func() error{func() error { router.Close(); return nil }}, f.owned...)
			f.instances[s] = router
			continue
		}
		f.instances[s] = newInstance(s, siteDir)
	}
	if cfg.nearCache {
		for _, s := range cfg.sites {
			inst := f.instances[s]
			opts := cfg.nearCacheOpts
			if opts.Metrics == nil {
				opts.Metrics = cfg.metricsReg
			}
			if opts.Codec == nil {
				opts.Codec = cfg.codec
			}
			cache := readcache.New(inst, opts)
			if feeder, ok := inst.(registry.ChangeFeeder); ok && feeder.ChangeFeed() != nil {
				cache.AttachFeed(context.Background(), []feed.Source{{
					Name: fmt.Sprintf("site-%d", s),
					Subscribe: func(ctx context.Context, from uint64) (feed.Stream, error) {
						return feeder.ChangeFeed().Subscribe(from)
					},
					Snapshot: feeder.FeedSnapshot,
				}}, feed.WithCombinerMetrics(cfg.metricsReg))
			}
			f.instances[s] = cache
			// The cache's feed consumer must detach before the instance
			// feeds close.
			f.owned = append([]func() error{cache.Close}, f.owned...)
		}
	}
	return f
}

// Close shuts down everything the fabric owns: shard routers first (their
// re-sync sweeps must not race the logs closing), then the persistent
// instances, flushing and fsyncing each write-ahead log. A memory-only
// fabric closes trivially. Close is safe to call once per fabric; the
// instances reject operations afterwards.
func (f *Fabric) Close() error {
	var errs []error
	for _, close := range f.owned {
		if err := close(); err != nil {
			errs = append(errs, err)
		}
	}
	f.owned = nil
	return errors.Join(errs...)
}

// ShardsPerSite returns how many registry shards back each in-process site
// (1 = the classic single-instance layout).
func (f *Fabric) ShardsPerSite() int {
	if f.shardsPerSite > 1 {
		return f.shardsPerSite
	}
	return 1
}

// ShardReplication returns the per-site shard replication factor
// (1 = single-home placement).
func (f *Fabric) ShardReplication() int {
	if f.shardReplication > 1 && f.shardsPerSite > 1 {
		return f.shardReplication
	}
	return 1
}

// Topology returns the cloud topology of the fabric.
func (f *Fabric) Topology() *cloud.Topology { return f.topo }

// Latency returns the latency model used for wide-area communication.
func (f *Fabric) Latency() *latency.Model { return f.lat }

// Recorder returns the attached metrics recorder (nil if none).
func (f *Fabric) Recorder() *metrics.Recorder { return f.rec }

// Sites returns the datacenters participating in the fabric.
func (f *Fabric) Sites() []cloud.SiteID {
	out := make([]cloud.SiteID, len(f.sites))
	copy(out, f.sites)
	return out
}

// HasSite reports whether the given site participates in the fabric.
func (f *Fabric) HasSite(site cloud.SiteID) bool {
	_, ok := f.instances[site]
	return ok
}

// Instance returns the registry instance deployed in the given site.
func (f *Fabric) Instance(site cloud.SiteID) (registry.API, error) {
	inst, ok := f.instances[site]
	if !ok {
		return nil, fmt.Errorf("%w: site %d", ErrNoSuchSite, site)
	}
	return inst, nil
}

// Codec returns the entry codec the fabric's instances encode with. Feed
// consumers use it to decode the entry payload carried by put events.
func (f *Fabric) Codec() registry.Codec { return f.codec }

// Feed returns the change-feed surface of the given site's registry
// deployment. It fails when the site does not participate in the fabric or
// its instance exposes no feed (the fabric was built without WithChangeFeeds,
// or an external instance does not implement registry.ChangeFeeder).
func (f *Fabric) Feed(site cloud.SiteID) (registry.ChangeFeeder, error) {
	inst, err := f.Instance(site)
	if err != nil {
		return nil, err
	}
	feeder, ok := inst.(registry.ChangeFeeder)
	if !ok || feeder.ChangeFeed() == nil {
		return nil, fmt.Errorf("core: site %d exposes no change feed (fabric built without WithChangeFeeds?): %w", site, ErrNoFeed)
	}
	return feeder, nil
}

// FeedSources returns one feed.Source per fabric site, named "site-<id>",
// ready to fan into a feed.Combiner: Subscribe tails the site's change feed
// from a cursor and Snapshot captures its current state for the
// cursor-too-old fallback. It fails if any site exposes no feed.
func (f *Fabric) FeedSources() ([]feed.Source, error) {
	sources := make([]feed.Source, 0, len(f.sites))
	for _, site := range f.sites {
		feeder, err := f.Feed(site)
		if err != nil {
			return nil, err
		}
		sources = append(sources, feed.Source{
			Name: fmt.Sprintf("site-%d", site),
			Subscribe: func(ctx context.Context, from uint64) (feed.Stream, error) {
				return feeder.ChangeFeed().Subscribe(from)
			},
			Snapshot: feeder.FeedSnapshot,
		})
	}
	return sources, nil
}

// TotalEntries sums the number of entries stored across every instance
// (entries replicated on k sites count k times).
func (f *Fabric) TotalEntries(ctx context.Context) int {
	total := 0
	for _, inst := range f.instances {
		total += inst.Len(ctx)
	}
	return total
}

// EntrySize returns the modelled wire size of an entry.
func (f *Fabric) EntrySize(e registry.Entry) int {
	data, err := f.codec.Encode(e)
	if err != nil {
		return 256 // conservative fallback; encoding failures surface later
	}
	return len(data)
}

// call models one request/response exchange between the caller's site and the
// site hosting a registry instance, charging WAN latency when they differ.
// It returns whether the exchange was remote; a cancelled context aborts the
// modelled wait early and surfaces as the returned error.
func (f *Fabric) call(ctx context.Context, from, to cloud.SiteID, reqBytes, respBytes int) (bool, error) {
	_, err := f.lat.InjectRoundTrip(ctx, from, to, reqBytes, respBytes)
	return f.topo.DistanceClass(from, to).Remote(), err
}

// Metrics returns the fabric's live-observability registry (nil if
// disabled). Strategies, the propagator and the sync agent resolve their
// instruments here so everything built over one fabric reports to one place.
func (f *Fabric) Metrics() *metrics.Registry { return f.metrics }

// strategyOps returns the operation counter of one strategy
// (core_strategy_<abbrev>_ops_total), nil when instrumentation is off.
func (f *Fabric) strategyOps(k StrategyKind) *metrics.Counter {
	return f.metrics.Counter("core_strategy_" + strings.ToLower(k.Short()) + "_ops_total")
}

// record stores an operation sample on the fabric's recorder (if any) and
// feeds the live instruments: the per-kind latency histogram, the operation
// counters and the trace ring.
func (f *Fabric) record(kind metrics.OpKind, start time.Time, remote bool) {
	f.recordAt(kind, time.Since(start), remote)
}

// recordAt is like record for callers that already measured the duration.
func (f *Fabric) recordAt(kind metrics.OpKind, elapsed time.Duration, remote bool) {
	if f.rec != nil {
		f.rec.Record(kind, elapsed, remote)
	}
	if f.metrics == nil {
		return
	}
	f.opHists[kind].ObserveDuration(elapsed)
	f.opsTotal.Inc()
	if remote {
		f.remoteOps.Inc()
	}
	f.trace.Add("core."+kind.String(), "", elapsed, nil)
}
