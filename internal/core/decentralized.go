package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/dht"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// DecentralizedService implements the decentralized, non-replicated strategy
// (paper §IV-C): one registry instance per datacenter, with every entry
// stored only at the site determined by hashing its name. On average only
// 1/n of the operations are local (n = number of sites), but the registry is
// partitioned so queries are processed in parallel by independent instances.
type DecentralizedService struct {
	fabric *Fabric
	placer dht.Placer
	closed atomic.Bool

	localOps  atomic.Int64
	remoteOps atomic.Int64

	// Live instruments (nil when the fabric's instrumentation is off).
	ops     *metrics.Counter // core_strategy_dn_ops_total
	localC  *metrics.Counter // core_dn_local_ops_total
	remoteC *metrics.Counter // core_dn_remote_ops_total
}

// NewDecentralized builds the non-replicated decentralized strategy. If
// placer is nil a ModuloPlacer over the fabric's sites is used, matching the
// paper's hash-mod-n placement.
func NewDecentralized(fabric *Fabric, placer dht.Placer) (*DecentralizedService, error) {
	if placer == nil {
		placer = dht.NewModuloPlacer(fabric.Sites())
	}
	for _, s := range placer.Sites() {
		if !fabric.HasSite(s) {
			return nil, fmt.Errorf("decentralized: placer site %d: %w", s, ErrNoSuchSite)
		}
	}
	return &DecentralizedService{
		fabric:  fabric,
		placer:  placer,
		ops:     fabric.strategyOps(Decentralized),
		localC:  fabric.Metrics().Counter("core_dn_local_ops_total"),
		remoteC: fabric.Metrics().Counter("core_dn_remote_ops_total"),
	}, nil
}

// Kind implements MetadataService.
func (s *DecentralizedService) Kind() StrategyKind { return Decentralized }

// Home returns the datacenter responsible for the given entry name.
func (s *DecentralizedService) Home(name string) cloud.SiteID { return s.placer.Home(name) }

// LocalRemoteOps returns how many operations were served locally vs remotely,
// which lets experiments verify the ~1/n locality property.
func (s *DecentralizedService) LocalRemoteOps() (local, remote int64) {
	return s.localOps.Load(), s.remoteOps.Load()
}

func (s *DecentralizedService) countLocality(remote bool) {
	s.ops.Inc()
	if remote {
		s.remoteOps.Add(1)
		s.remoteC.Inc()
	} else {
		s.localOps.Add(1)
		s.localC.Inc()
	}
}

// Create implements MetadataService: look-up followed by write, both at the
// entry's hashed home site.
func (s *DecentralizedService) Create(ctx context.Context, from cloud.SiteID, e registry.Entry) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("create", from, e.Name, ErrClosed)
	}
	home := s.placer.Home(e.Name)
	inst, err := s.fabric.Instance(home)
	if err != nil {
		return registry.Entry{}, opErr("create", from, e.Name, err)
	}
	start := time.Now()
	// One round trip to the entry's home instance; the look-up (existence
	// check) and the write happen server-side.
	remote, err := s.fabric.call(ctx, from, home, s.fabric.EntrySize(e), s.fabric.ackBytes)
	if err != nil {
		s.fabric.record(metrics.OpWrite, start, remote)
		return registry.Entry{}, opErr("create", from, e.Name, err)
	}
	stored, err := inst.Create(ctx, e)
	s.fabric.record(metrics.OpWrite, start, remote)
	s.countLocality(remote)
	return stored, opErr("create", from, e.Name, err)
}

// Lookup implements MetadataService: the entry is fetched from its hashed
// home site.
func (s *DecentralizedService) Lookup(ctx context.Context, from cloud.SiteID, name string) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("lookup", from, name, ErrClosed)
	}
	home := s.placer.Home(name)
	inst, err := s.fabric.Instance(home)
	if err != nil {
		return registry.Entry{}, opErr("lookup", from, name, err)
	}
	start := time.Now()
	e, err := inst.Get(ctx, name)
	respBytes := s.fabric.ackBytes
	if err == nil {
		respBytes = s.fabric.EntrySize(e)
	}
	remote, callErr := s.fabric.call(ctx, from, home, s.fabric.queryBytes, respBytes)
	s.fabric.record(metrics.OpRead, start, remote)
	s.countLocality(remote)
	if lerr := lookupErr(from, name, err, callErr); lerr != nil {
		return registry.Entry{}, lerr
	}
	return e, nil
}

// AddLocation implements MetadataService.
func (s *DecentralizedService) AddLocation(ctx context.Context, from cloud.SiteID, name string, loc registry.Location) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("addlocation", from, name, ErrClosed)
	}
	home := s.placer.Home(name)
	inst, err := s.fabric.Instance(home)
	if err != nil {
		return registry.Entry{}, opErr("addlocation", from, name, err)
	}
	start := time.Now()
	remote, err := s.fabric.call(ctx, from, home, s.fabric.queryBytes, s.fabric.ackBytes)
	if err != nil {
		s.fabric.record(metrics.OpUpdate, start, remote)
		return registry.Entry{}, opErr("addlocation", from, name, err)
	}
	e, err := inst.AddLocation(ctx, name, loc)
	s.fabric.record(metrics.OpUpdate, start, remote)
	s.countLocality(remote)
	return e, opErr("addlocation", from, name, err)
}

// Delete implements MetadataService.
func (s *DecentralizedService) Delete(ctx context.Context, from cloud.SiteID, name string) error {
	if s.closed.Load() {
		return opErr("delete", from, name, ErrClosed)
	}
	home := s.placer.Home(name)
	inst, err := s.fabric.Instance(home)
	if err != nil {
		return opErr("delete", from, name, err)
	}
	start := time.Now()
	remote, err := s.fabric.call(ctx, from, home, s.fabric.queryBytes, s.fabric.ackBytes)
	if err != nil {
		s.fabric.record(metrics.OpDelete, start, remote)
		return opErr("delete", from, name, err)
	}
	err = inst.Delete(ctx, name)
	s.fabric.record(metrics.OpDelete, start, remote)
	s.countLocality(remote)
	return opErr("delete", from, name, err)
}

// Flush implements MetadataService; there is no asynchronous machinery.
func (s *DecentralizedService) Flush(ctx context.Context) error {
	if s.closed.Load() {
		return opErr("flush", 0, "", ErrClosed)
	}
	return ctx.Err()
}

// Close implements MetadataService.
func (s *DecentralizedService) Close() error {
	s.closed.Store(true)
	return nil
}
