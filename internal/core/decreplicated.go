package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/dht"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// DecReplicatedService implements the hybrid strategy, decentralized metadata
// with local replication (paper §IV-D): every new entry is first stored in
// the writer's local registry instance, then stored at the site designated by
// hashing its name (the "home"). Reads follow a two-step hierarchical
// procedure: look in the local instance first and, on a miss, in the home
// instance. With uniform metadata creation this doubles the probability of a
// local hit compared to the non-replicated scheme, saving one costly remote
// operation per read served locally (up to ~50x faster per Figure 3).
//
// Propagation to the home site is either eager (synchronous, part of the
// write latency) or lazy (batched and asynchronous, the paper's preferred
// eventual-consistency scheme, §III-D).
type DecReplicatedService struct {
	fabric *Fabric
	placer dht.Placer
	// lazy selects batched asynchronous propagation to the home site.
	lazy       bool
	propagator *Propagator
	// feedSync replaces the propagator in feed mode (WithFeedPropagation):
	// home copies converge by consuming the sites' change feeds.
	feedSync *feedSyncer
	closed   atomic.Bool

	localHits   atomic.Int64
	remoteReads atomic.Int64

	// Live instruments (nil when the fabric's instrumentation is off).
	ops      *metrics.Counter // core_strategy_dr_ops_total
	hitsC    *metrics.Counter // core_dr_local_hits_total
	remotesC *metrics.Counter // core_dr_remote_reads_total
}

// DecReplicatedOption configures a DecReplicatedService.
type DecReplicatedOption func(*decRepConfig)

type decRepConfig struct {
	placer        dht.Placer
	eager         bool
	feed          bool
	flushInterval time.Duration
	maxBatch      int
	propOpts      []PropagatorOption
}

// WithPlacer selects the hashing scheme used to pick home sites (default
// modulo hashing over the fabric's sites).
func WithPlacer(p dht.Placer) DecReplicatedOption {
	return func(c *decRepConfig) { c.placer = p }
}

// WithEagerPropagation makes writes propagate to the home site synchronously
// instead of using lazy batched updates.
func WithEagerPropagation() DecReplicatedOption {
	return func(c *decRepConfig) { c.eager = true }
}

// WithLazyPropagation tunes the lazy-update batching parameters.
func WithLazyPropagation(flushInterval time.Duration, maxBatch int) DecReplicatedOption {
	return func(c *decRepConfig) {
		c.eager = false
		c.feed = false
		c.flushInterval = flushInterval
		c.maxBatch = maxBatch
	}
}

// WithAdaptiveLazyBatch arms the lazy propagator's adaptive batch sizing
// (see WithAdaptiveBatch): the early-flush limit moves within [min, max]
// driven by the windowed p95 of observed flush-round latencies against
// target. It only matters for the lazy propagation scheme.
func WithAdaptiveLazyBatch(min, max int, target time.Duration) DecReplicatedOption {
	return func(c *decRepConfig) {
		c.propOpts = append(c.propOpts, WithAdaptiveBatch(min, max, target))
	}
}

// WithFeedPropagation keeps writes asynchronous like the lazy scheme but
// replaces the interval-driven propagator with a consumer of the sites'
// change feeds: a locally committed write reaches its hashed home site as
// soon as its feed event arrives, rather than on the next flush tick.
// Writers still perceive only the local latency. Requires a fabric built
// WithChangeFeeds; NewDecReplicated fails with ErrNoFeed otherwise.
func WithFeedPropagation() DecReplicatedOption {
	return func(c *decRepConfig) {
		c.eager = false
		c.feed = true
	}
}

// NewDecReplicated builds the hybrid decentralized/replicated strategy.
func NewDecReplicated(fabric *Fabric, opts ...DecReplicatedOption) (*DecReplicatedService, error) {
	cfg := decRepConfig{flushInterval: DefaultFlushInterval, maxBatch: DefaultMaxBatch}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.placer == nil {
		cfg.placer = dht.NewModuloPlacer(fabric.Sites())
	}
	for _, s := range cfg.placer.Sites() {
		if !fabric.HasSite(s) {
			return nil, fmt.Errorf("decentralized-rep: placer site %d: %w", s, ErrNoSuchSite)
		}
	}
	s := &DecReplicatedService{
		fabric:   fabric,
		placer:   cfg.placer,
		lazy:     !cfg.eager,
		ops:      fabric.strategyOps(DecentralizedReplicated),
		hitsC:    fabric.Metrics().Counter("core_dr_local_hits_total"),
		remotesC: fabric.Metrics().Counter("core_dr_remote_reads_total"),
	}
	if s.lazy {
		if cfg.feed {
			fs, err := newFeedSyncer(fabric, s.applyFeed)
			if err != nil {
				return nil, fmt.Errorf("decentralized-rep: %w", err)
			}
			s.feedSync = fs
		} else {
			s.propagator = NewPropagator(fabric, cfg.flushInterval, cfg.maxBatch, cfg.propOpts...)
		}
	}
	return s, nil
}

// FeedDriven reports whether home-site propagation consumes change feeds
// (WithFeedPropagation) instead of the interval-driven propagator.
func (s *DecReplicatedService) FeedDriven() bool { return s.feedSync != nil }

// applyFeed routes one micro-batch of mutations committed at site from to the
// home sites of the touched names. Events already at their home (from ==
// home) drop out — which is also what stops the echo: applying a put at the
// home republishes it on the home's feed, and that event's home is its own
// origin.
func (s *DecReplicatedService) applyFeed(ctx context.Context, from cloud.SiteID, puts []registry.Entry, dels []string) int {
	type group struct {
		puts []registry.Entry
		dels []string
	}
	byHome := make(map[cloud.SiteID]*group)
	add := func(home cloud.SiteID) *group {
		g := byHome[home]
		if g == nil {
			g = &group{}
			byHome[home] = g
		}
		return g
	}
	for _, e := range puts {
		if home := s.placer.Home(e.Name); home != from {
			g := add(home)
			g.puts = append(g.puts, e)
		}
	}
	for _, name := range dels {
		if home := s.placer.Home(name); home != from {
			g := add(home)
			g.dels = append(g.dels, name)
		}
	}
	var (
		applied atomic.Int64
		wg      sync.WaitGroup
	)
	for home, g := range byHome {
		inst, err := s.fabric.Instance(home)
		if err != nil {
			continue
		}
		batchBytes := len(g.dels) * s.fabric.queryBytes
		for _, e := range g.puts {
			batchBytes += s.fabric.EntrySize(e)
		}
		wg.Add(1)
		go func(home cloud.SiteID, inst registry.API, g *group, batchBytes int) {
			defer wg.Done()
			start := time.Now()
			if _, err := s.fabric.call(ctx, from, home, batchBytes, s.fabric.ackBytes); err != nil {
				return
			}
			n, _ := inst.Merge(ctx, g.puts)
			if len(g.dels) > 0 {
				m, _ := inst.DeleteMany(ctx, g.dels)
				n += m
			}
			applied.Add(int64(n))
			s.fabric.record(metrics.OpSync, start, s.fabric.Topology().DistanceClass(from, home).Remote())
		}(home, inst, g, batchBytes)
	}
	wg.Wait()
	return int(applied.Load())
}

// Kind implements MetadataService.
func (s *DecReplicatedService) Kind() StrategyKind { return DecentralizedReplicated }

// Home returns the hashed home site of the given entry name.
func (s *DecReplicatedService) Home(name string) cloud.SiteID { return s.placer.Home(name) }

// Lazy reports whether home-site propagation is lazy (batched) or eager.
func (s *DecReplicatedService) Lazy() bool { return s.lazy }

// LocalHitRate returns the fraction of reads served by the caller's local
// replica. It returns 0 before any read has completed.
func (s *DecReplicatedService) LocalHitRate() float64 {
	hits := s.localHits.Load()
	total := hits + s.remoteReads.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Create implements MetadataService: the entry is stored in the caller's
// local instance first, then replicated to its hashed home site (eagerly or
// lazily). When the hash designates the local site no second copy is made.
func (s *DecReplicatedService) Create(ctx context.Context, from cloud.SiteID, e registry.Entry) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("create", from, e.Name, ErrClosed)
	}
	local, err := s.fabric.Instance(from)
	if err != nil {
		return registry.Entry{}, opErr("create", from, e.Name, err)
	}
	home := s.placer.Home(e.Name)
	s.ops.Inc()
	start := time.Now()

	// The entry is first stored in the local registry instance: one
	// intra-datacenter round trip, with the look-up (existence check against
	// the local replica set) and the write performed server-side.
	if _, err := s.fabric.call(ctx, from, from, s.fabric.EntrySize(e), s.fabric.ackBytes); err != nil {
		s.fabric.record(metrics.OpWrite, start, false)
		return registry.Entry{}, opErr("create", from, e.Name, err)
	}
	stored, err := local.Create(ctx, e)
	if err != nil {
		s.fabric.record(metrics.OpWrite, start, false)
		return registry.Entry{}, opErr("create", from, e.Name, err)
	}

	if home != from {
		if s.lazy {
			// Lazy mode (paper §III-D): the home copy is propagated in a
			// later batch; the writer only perceives the local latency.
			// Writes are optimistic: concurrent creates of the same name at
			// different sites converge at the home via the merge. In feed
			// mode the local commit's feed event carries the propagation —
			// there is nothing to enqueue.
			if s.propagator != nil {
				s.propagator.Enqueue(from, home, stored)
			}
		} else {
			// Eager mode: a second, synchronous round trip stores the entry
			// at its hashed home site (the existence check happens there as
			// part of the same request).
			homeInst, err := s.fabric.Instance(home)
			if err != nil {
				return registry.Entry{}, opErr("create", from, e.Name, err)
			}
			if _, err := s.fabric.call(ctx, from, home, s.fabric.EntrySize(stored), s.fabric.ackBytes); err != nil {
				s.fabric.record(metrics.OpWrite, start, true)
				return registry.Entry{}, opErr("create", from, e.Name, err)
			}
			if _, err := homeInst.Create(ctx, stored); err != nil {
				s.fabric.record(metrics.OpWrite, start, true)
				if errors.Is(err, registry.ErrExists) {
					return registry.Entry{}, opErr("create", from, e.Name, ErrExists)
				}
				return registry.Entry{}, opErr("create", from, e.Name, err)
			}
			s.fabric.record(metrics.OpWrite, start, true)
			return stored, nil
		}
	}
	// The caller only waits for the local write (plus enqueueing).
	s.fabric.record(metrics.OpWrite, start, false)
	return stored, nil
}

// Lookup implements MetadataService: two-step hierarchical read — local
// replica first, then the hashed home site.
func (s *DecReplicatedService) Lookup(ctx context.Context, from cloud.SiteID, name string) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("lookup", from, name, ErrClosed)
	}
	local, err := s.fabric.Instance(from)
	if err != nil {
		return registry.Entry{}, opErr("lookup", from, name, err)
	}
	s.ops.Inc()
	start := time.Now()

	// Step 1: local replica.
	if e, err := local.Get(ctx, name); err == nil {
		if _, callErr := s.fabric.call(ctx, from, from, s.fabric.queryBytes, s.fabric.EntrySize(e)); callErr != nil {
			s.fabric.record(metrics.OpRead, start, false)
			return registry.Entry{}, opErr("lookup", from, name, callErr)
		}
		s.fabric.record(metrics.OpRead, start, false)
		s.localHits.Add(1)
		s.hitsC.Inc()
		return e, nil
	} else if ctx.Err() != nil {
		s.fabric.record(metrics.OpRead, start, false)
		return registry.Entry{}, opErr("lookup", from, name, ctx.Err())
	}
	if _, callErr := s.fabric.call(ctx, from, from, s.fabric.queryBytes, s.fabric.ackBytes); callErr != nil {
		s.fabric.record(metrics.OpRead, start, false)
		return registry.Entry{}, opErr("lookup", from, name, callErr)
	}

	// Step 2: the entry's home site.
	home := s.placer.Home(name)
	if home == from {
		// The local instance *is* the home: the entry does not exist (yet).
		s.fabric.record(metrics.OpRead, start, false)
		s.remoteReads.Add(1)
		s.remotesC.Inc()
		return registry.Entry{}, opErr("lookup", from, name, ErrNotFound)
	}
	homeInst, err := s.fabric.Instance(home)
	if err != nil {
		return registry.Entry{}, opErr("lookup", from, name, err)
	}
	e, err := homeInst.Get(ctx, name)
	respBytes := s.fabric.ackBytes
	if err == nil {
		respBytes = s.fabric.EntrySize(e)
	}
	_, callErr := s.fabric.call(ctx, from, home, s.fabric.queryBytes, respBytes)
	s.fabric.record(metrics.OpRead, start, true)
	s.remoteReads.Add(1)
	s.remotesC.Inc()
	if lerr := lookupErr(from, name, err, callErr); lerr != nil {
		return registry.Entry{}, lerr
	}
	return e, nil
}

// AddLocation implements MetadataService: the update is applied to the local
// replica if present and to the home site (eagerly or lazily).
func (s *DecReplicatedService) AddLocation(ctx context.Context, from cloud.SiteID, name string, loc registry.Location) (registry.Entry, error) {
	if s.closed.Load() {
		return registry.Entry{}, opErr("addlocation", from, name, ErrClosed)
	}
	local, err := s.fabric.Instance(from)
	if err != nil {
		return registry.Entry{}, opErr("addlocation", from, name, err)
	}
	home := s.placer.Home(name)
	s.ops.Inc()
	start := time.Now()

	var updated registry.Entry
	var localErr error
	if _, err := s.fabric.call(ctx, from, from, s.fabric.queryBytes, s.fabric.ackBytes); err != nil {
		s.fabric.record(metrics.OpUpdate, start, false)
		return registry.Entry{}, opErr("addlocation", from, name, err)
	}
	if local.Contains(ctx, name) {
		updated, localErr = local.AddLocation(ctx, name, loc)
	} else {
		localErr = registry.ErrNotFound
	}
	if ctx.Err() != nil {
		s.fabric.record(metrics.OpUpdate, start, false)
		return registry.Entry{}, opErr("addlocation", from, name, ctx.Err())
	}

	if home == from {
		s.fabric.record(metrics.OpUpdate, start, false)
		if localErr != nil {
			return registry.Entry{}, opErr("addlocation", from, name, ErrNotFound)
		}
		return updated, nil
	}

	homeInst, err := s.fabric.Instance(home)
	if err != nil {
		return registry.Entry{}, opErr("addlocation", from, name, err)
	}
	if s.lazy && localErr == nil {
		// Local update succeeded; propagate the new state lazily (the feed
		// event of the local commit carries it in feed mode).
		if s.propagator != nil {
			s.propagator.Enqueue(from, home, updated)
		}
		s.fabric.record(metrics.OpUpdate, start, false)
		return updated, nil
	}
	// Eager mode, or the entry is not replicated locally: update the home.
	remote, callErr := s.fabric.call(ctx, from, home, s.fabric.queryBytes, s.fabric.ackBytes)
	if callErr != nil {
		s.fabric.record(metrics.OpUpdate, start, remote)
		return registry.Entry{}, opErr("addlocation", from, name, callErr)
	}
	e, err := homeInst.AddLocation(ctx, name, loc)
	s.fabric.record(metrics.OpUpdate, start, remote)
	if err != nil && localErr == nil {
		return updated, nil
	}
	return e, opErr("addlocation", from, name, err)
}

// Delete implements MetadataService: the entry is removed from the local
// replica and from its home site. In lazy mode a locally confirmed delete
// only enqueues the home-site removal — it rides the propagator's next batch
// as part of a DeleteMany frame and the caller perceives just the local
// latency, mirroring how lazy creates and updates behave. When there is no
// local copy to confirm against, the home is deleted eagerly so the caller
// gets an authoritative answer.
func (s *DecReplicatedService) Delete(ctx context.Context, from cloud.SiteID, name string) error {
	if s.closed.Load() {
		return opErr("delete", from, name, ErrClosed)
	}
	local, err := s.fabric.Instance(from)
	if err != nil {
		return opErr("delete", from, name, err)
	}
	home := s.placer.Home(name)
	s.ops.Inc()
	start := time.Now()

	if _, err := s.fabric.call(ctx, from, from, s.fabric.queryBytes, s.fabric.ackBytes); err != nil {
		s.fabric.record(metrics.OpDelete, start, false)
		return opErr("delete", from, name, err)
	}
	localErr := local.Delete(ctx, name)
	if ctx.Err() != nil {
		s.fabric.record(metrics.OpDelete, start, false)
		return opErr("delete", from, name, ctx.Err())
	}

	if home == from {
		s.fabric.record(metrics.OpDelete, start, false)
		return opErr("delete", from, name, localErr)
	}
	if s.lazy && localErr == nil {
		// The local delete succeeded; the home copy is removed in a later
		// batch (or by the local delete's feed event in feed mode).
		if s.propagator != nil {
			s.propagator.EnqueueDelete(from, home, name)
		}
		s.fabric.record(metrics.OpDelete, start, false)
		return nil
	}
	homeInst, err := s.fabric.Instance(home)
	if err != nil {
		return opErr("delete", from, name, err)
	}
	remote, callErr := s.fabric.call(ctx, from, home, s.fabric.queryBytes, s.fabric.ackBytes)
	if callErr != nil {
		s.fabric.record(metrics.OpDelete, start, remote)
		return opErr("delete", from, name, callErr)
	}
	homeErr := homeInst.Delete(ctx, name)
	s.fabric.record(metrics.OpDelete, start, remote)
	if localErr == nil || homeErr == nil {
		return nil
	}
	if errors.Is(homeErr, registry.ErrNotFound) {
		return opErr("delete", from, name, ErrNotFound)
	}
	return opErr("delete", from, name, homeErr)
}

// Flush pushes every pending lazy batch to its home site. A cancelled
// context aborts the flush mid-fan-out; the un-applied batches are re-queued
// for the propagator's next round.
func (s *DecReplicatedService) Flush(ctx context.Context) error {
	if s.closed.Load() {
		return opErr("flush", 0, "", ErrClosed)
	}
	if s.feedSync != nil {
		return opErr("flush", 0, "", s.feedSync.Flush(ctx))
	}
	if s.propagator != nil {
		return opErr("flush", 0, "", s.propagator.FlushNow(ctx))
	}
	return ctx.Err()
}

// Close stops the lazy propagator (flushing pending batches first).
func (s *DecReplicatedService) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.propagator != nil {
		s.propagator.Close()
	}
	if s.feedSync != nil {
		s.feedSync.Close()
	}
	return nil
}
