package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// DefaultSyncInterval is the period between synchronization-agent rounds, in
// simulated time.
const DefaultSyncInterval = 2 * time.Second

// ReplicatedService implements the "replicated on each site" strategy (paper
// §IV-B): a local metadata registry instance is placed in every datacenter so
// that every node performs its metadata operations locally; a single
// synchronization agent iteratively queries all registry instances for
// updates and propagates them to the rest of the set.
//
// Local operations are fast, but the information only becomes globally
// visible after the agent's next round, and the single agent is a potential
// bottleneck for metadata-intensive workloads (the degradation beyond 32
// nodes visible in Figs. 7 and 8). This implementation softens — without
// eliminating — that bottleneck: within a round the agent fans the per-site
// pull and push exchanges out concurrently, and every exchange is a bulk
// operation (GetMany / Merge / DeleteMany), one frame per site and
// direction. Closing the service cancels the agent's context, so a round
// blocked mid-fan-out on a slow site aborts instead of delaying shutdown;
// updates a cancelled round had drained are re-queued for the next round.
type ReplicatedService struct {
	fabric    *Fabric
	agentSite cloud.SiteID
	interval  time.Duration

	// wantFeed selects the push-based agent (WithFeedSync); feedSync is the
	// running consumer, nil in the default polling mode.
	wantFeed bool
	feedSync *feedSyncer

	// life is cancelled on Close, aborting the agent's in-flight round.
	life     context.Context
	lifeStop context.CancelFunc

	mu             sync.Mutex
	pendingCreates map[cloud.SiteID][]string
	pendingDeletes map[cloud.SiteID][]string
	closed         bool

	// syncMu serializes synchronization rounds (background loop vs Flush).
	syncMu sync.Mutex

	stop chan struct{}
	done chan struct{}

	rounds          int64
	entriesSynced   int64
	entriesObserved int64

	// Live instruments (nil when the fabric's instrumentation is off).
	ops          *metrics.Counter   // core_strategy_r_ops_total
	queueDepth   *metrics.Gauge     // sync_queue_depth: updates awaiting the next round
	roundLatency *metrics.Histogram // sync_round_latency_ns
	roundsC      *metrics.Counter   // sync_rounds_total
	syncedC      *metrics.Counter   // sync_entries_synced_total
	requeuedC    *metrics.Counter   // sync_requeued_total: updates put back by a cancelled round
}

// ReplicatedOption configures a ReplicatedService.
type ReplicatedOption func(*ReplicatedService)

// WithSyncInterval sets the period between agent rounds (simulated time).
func WithSyncInterval(d time.Duration) ReplicatedOption {
	return func(s *ReplicatedService) {
		if d > 0 {
			s.interval = d
		}
	}
}

// WithFeedSync replaces the polling synchronization agent with a push-based
// consumer of the sites' change feeds: every committed local mutation is
// applied to the other replicas as soon as its feed event arrives, instead of
// waiting for the next agent round. Updates become globally visible after one
// WAN exchange rather than up to a full sync interval, and an idle system
// exchanges nothing at all. Requires a fabric built WithChangeFeeds (or
// external instances implementing registry.ChangeFeeder); NewReplicated
// fails with ErrNoFeed otherwise. The polling agent remains the default —
// and the baseline the feed path is benchmarked against.
func WithFeedSync() ReplicatedOption {
	return func(s *ReplicatedService) { s.wantFeed = true }
}

// NewReplicated builds the replicated strategy with the synchronization agent
// hosted in the given datacenter. The agent starts immediately and runs until
// Close.
func NewReplicated(fabric *Fabric, agentSite cloud.SiteID, opts ...ReplicatedOption) (*ReplicatedService, error) {
	if !fabric.HasSite(agentSite) {
		return nil, fmt.Errorf("replicated: agent site: %w", ErrNoSuchSite)
	}
	life, lifeStop := context.WithCancel(context.Background())
	s := &ReplicatedService{
		fabric:         fabric,
		agentSite:      agentSite,
		interval:       DefaultSyncInterval,
		life:           life,
		lifeStop:       lifeStop,
		pendingCreates: make(map[cloud.SiteID][]string),
		pendingDeletes: make(map[cloud.SiteID][]string),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		ops:            fabric.strategyOps(Replicated),
		queueDepth:     fabric.Metrics().Gauge("sync_queue_depth"),
		roundLatency:   fabric.Metrics().Histogram("sync_round_latency_ns"),
		roundsC:        fabric.Metrics().Counter("sync_rounds_total"),
		syncedC:        fabric.Metrics().Counter("sync_entries_synced_total"),
		requeuedC:      fabric.Metrics().Counter("sync_requeued_total"),
	}
	for _, o := range opts {
		o(s)
	}
	if s.wantFeed {
		fs, err := newFeedSyncer(fabric, s.applyFeed)
		if err != nil {
			lifeStop()
			return nil, fmt.Errorf("replicated: %w", err)
		}
		s.feedSync = fs
		close(s.done) // no agent loop to wait for on Close
		return s, nil
	}
	go s.agentLoop()
	return s, nil
}

// FeedDriven reports whether the service propagates through change feeds
// (WithFeedSync) instead of the polling agent.
func (s *ReplicatedService) FeedDriven() bool { return s.feedSync != nil }

// applyFeed pushes one micro-batch of mutations committed at site from to
// every other replica, mirroring the polling agent's push phase: the batch
// travels as one modelled frame per destination and lands as bulk Merge and
// DeleteMany calls. Echoed batches apply as no-ops (Merge skips equal
// entries, DeleteMany skips absent names) and emit no further events.
func (s *ReplicatedService) applyFeed(ctx context.Context, from cloud.SiteID, puts []registry.Entry, dels []string) int {
	if len(puts) == 0 && len(dels) == 0 {
		return 0
	}
	batchBytes := len(dels) * s.fabric.queryBytes
	for _, e := range puts {
		batchBytes += s.fabric.EntrySize(e)
	}
	var (
		applied atomic.Int64
		wg      sync.WaitGroup
	)
	for _, site := range s.fabric.Sites() {
		if site == from {
			continue
		}
		inst, err := s.fabric.Instance(site)
		if err != nil {
			continue
		}
		wg.Add(1)
		go func(site cloud.SiteID, inst registry.API) {
			defer wg.Done()
			start := time.Now()
			if _, err := s.fabric.call(ctx, from, site, batchBytes, s.fabric.ackBytes); err != nil {
				return
			}
			n, _ := inst.Merge(ctx, puts)
			if len(dels) > 0 {
				m, _ := inst.DeleteMany(ctx, dels)
				n += m
			}
			applied.Add(int64(n))
			s.fabric.record(metrics.OpSync, start, s.fabric.Topology().DistanceClass(from, site).Remote())
		}(site, inst)
	}
	wg.Wait()
	n := applied.Load()
	if n > 0 {
		s.mu.Lock()
		s.entriesSynced += n
		s.mu.Unlock()
		s.syncedC.Add(n)
	}
	return int(n)
}

// Kind implements MetadataService.
func (s *ReplicatedService) Kind() StrategyKind { return Replicated }

// AgentSite returns the datacenter hosting the synchronization agent.
func (s *ReplicatedService) AgentSite() cloud.SiteID { return s.agentSite }

// SyncRounds returns how many synchronization rounds the agent has completed.
func (s *ReplicatedService) SyncRounds() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// EntriesSynced returns how many entry applications the agent has pushed to
// remote instances in total.
func (s *ReplicatedService) EntriesSynced() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entriesSynced
}

func (s *ReplicatedService) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *ReplicatedService) localInstance(from cloud.SiteID) (registry.API, error) {
	return s.fabric.Instance(from)
}

// Create implements MetadataService: the entry is created in the caller's
// local registry instance and queued for propagation by the agent.
func (s *ReplicatedService) Create(ctx context.Context, from cloud.SiteID, e registry.Entry) (registry.Entry, error) {
	if s.isClosed() {
		return registry.Entry{}, opErr("create", from, e.Name, ErrClosed)
	}
	inst, err := s.localInstance(from)
	if err != nil {
		return registry.Entry{}, opErr("create", from, e.Name, err)
	}
	s.ops.Inc()
	start := time.Now()
	// One intra-datacenter round trip; the registry instance performs the
	// look-up (existence check) and the write server-side.
	if _, err := s.fabric.call(ctx, from, from, s.fabric.EntrySize(e), s.fabric.ackBytes); err != nil {
		s.fabric.record(metrics.OpWrite, start, false)
		return registry.Entry{}, opErr("create", from, e.Name, err)
	}
	stored, err := inst.Create(ctx, e)
	if err == nil && s.feedSync == nil {
		// Polling mode queues the name for the agent's next round; in feed
		// mode the commit's feed event carries the update by itself.
		s.mu.Lock()
		s.pendingCreates[from] = append(s.pendingCreates[from], e.Name)
		s.mu.Unlock()
		s.queueDepth.Add(1)
	}
	s.fabric.record(metrics.OpWrite, start, false)
	return stored, opErr("create", from, e.Name, err)
}

// Lookup implements MetadataService: only the caller's local instance is
// consulted. Entries created at other sites become visible after the agent's
// next round (eventual consistency).
func (s *ReplicatedService) Lookup(ctx context.Context, from cloud.SiteID, name string) (registry.Entry, error) {
	if s.isClosed() {
		return registry.Entry{}, opErr("lookup", from, name, ErrClosed)
	}
	inst, err := s.localInstance(from)
	if err != nil {
		return registry.Entry{}, opErr("lookup", from, name, err)
	}
	s.ops.Inc()
	start := time.Now()
	e, err := inst.Get(ctx, name)
	respBytes := s.fabric.ackBytes
	if err == nil {
		respBytes = s.fabric.EntrySize(e)
	}
	_, callErr := s.fabric.call(ctx, from, from, s.fabric.queryBytes, respBytes)
	s.fabric.record(metrics.OpRead, start, false)
	if lerr := lookupErr(from, name, err, callErr); lerr != nil {
		return registry.Entry{}, lerr
	}
	return e, nil
}

// AddLocation implements MetadataService: the update is applied locally and
// queued for propagation.
func (s *ReplicatedService) AddLocation(ctx context.Context, from cloud.SiteID, name string, loc registry.Location) (registry.Entry, error) {
	if s.isClosed() {
		return registry.Entry{}, opErr("addlocation", from, name, ErrClosed)
	}
	inst, err := s.localInstance(from)
	if err != nil {
		return registry.Entry{}, opErr("addlocation", from, name, err)
	}
	s.ops.Inc()
	start := time.Now()
	if _, err := s.fabric.call(ctx, from, from, s.fabric.queryBytes, s.fabric.ackBytes); err != nil {
		s.fabric.record(metrics.OpUpdate, start, false)
		return registry.Entry{}, opErr("addlocation", from, name, err)
	}
	e, err := inst.AddLocation(ctx, name, loc)
	if err == nil && s.feedSync == nil {
		s.mu.Lock()
		s.pendingCreates[from] = append(s.pendingCreates[from], name)
		s.mu.Unlock()
		s.queueDepth.Add(1)
	}
	s.fabric.record(metrics.OpUpdate, start, false)
	return e, opErr("addlocation", from, name, err)
}

// Delete implements MetadataService: the entry is removed locally and the
// deletion is propagated by the agent.
func (s *ReplicatedService) Delete(ctx context.Context, from cloud.SiteID, name string) error {
	if s.isClosed() {
		return opErr("delete", from, name, ErrClosed)
	}
	inst, err := s.localInstance(from)
	if err != nil {
		return opErr("delete", from, name, err)
	}
	s.ops.Inc()
	start := time.Now()
	if _, err := s.fabric.call(ctx, from, from, s.fabric.queryBytes, s.fabric.ackBytes); err != nil {
		s.fabric.record(metrics.OpDelete, start, false)
		return opErr("delete", from, name, err)
	}
	err = inst.Delete(ctx, name)
	if err == nil && s.feedSync == nil {
		s.mu.Lock()
		s.pendingDeletes[from] = append(s.pendingDeletes[from], name)
		s.mu.Unlock()
		s.queueDepth.Add(1)
	}
	s.fabric.record(metrics.OpDelete, start, false)
	return opErr("delete", from, name, err)
}

// Flush runs one synchronization round immediately and returns when every
// instance has been updated (or the context is cancelled mid-round, in which
// case the drained updates are re-queued and the context's error returned).
// In feed mode it instead waits until every event committed before the call
// has been applied to all replicas.
func (s *ReplicatedService) Flush(ctx context.Context) error {
	if s.isClosed() {
		return opErr("flush", s.agentSite, "", ErrClosed)
	}
	if s.feedSync != nil {
		return opErr("flush", s.agentSite, "", s.feedSync.Flush(ctx))
	}
	return opErr("flush", s.agentSite, "", s.syncRound(ctx))
}

// Close stops the synchronization agent, cancelling any in-flight round.
// Pending updates that have not been propagated yet are dropped; call Flush
// first to push them.
func (s *ReplicatedService) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.lifeStop()
	close(s.stop)
	<-s.done
	if s.feedSync != nil {
		s.feedSync.Close()
	}
	return nil
}

// agentLoop runs synchronization rounds until the service is closed.
func (s *ReplicatedService) agentLoop() {
	defer close(s.done)
	wallInterval := s.fabric.Latency().ToWall(s.interval)
	if wallInterval <= 0 {
		wallInterval = time.Millisecond
	}
	timer := time.NewTimer(wallInterval)
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
			s.syncRound(s.life) //nolint:errcheck // a cancelled round re-queues its work
			timer.Reset(wallInterval)
		}
	}
}

// syncRound implements one iteration of the synchronization agent: it
// queries every registry instance for updates, then propagates the merged
// set of updates to every other instance (paper §IV-B and §V). Both phases
// fan out across the sites concurrently — the agent overlaps the per-site
// WAN round trips instead of serializing them — and both travel as bulk
// operations (GetMany on the pull side, Merge plus DeleteMany on the push
// side), so a round costs one request frame per site and direction no matter
// how many entries it carries.
//
// A cancelled context aborts the round mid-fan-out: the per-site goroutines
// return as soon as their modelled exchange or registry call observes the
// cancellation, and every drained update is re-queued so the next round
// picks it up (bulk application is idempotent, so double-propagation is
// harmless).
func (s *ReplicatedService) syncRound(ctx context.Context) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()

	if err := ctx.Err(); err != nil {
		return err
	}

	roundStart := time.Now()

	// Drain the pending queues.
	s.mu.Lock()
	creates := s.pendingCreates
	deletes := s.pendingDeletes
	s.pendingCreates = make(map[cloud.SiteID][]string)
	s.pendingDeletes = make(map[cloud.SiteID][]string)
	s.mu.Unlock()

	drained := 0
	for _, names := range creates {
		drained += len(names)
	}
	for _, names := range deletes {
		drained += len(names)
	}
	s.queueDepth.Add(-int64(drained))

	requeue := func() {
		s.mu.Lock()
		for site, names := range creates {
			s.pendingCreates[site] = append(s.pendingCreates[site], names...)
		}
		for site, names := range deletes {
			s.pendingDeletes[site] = append(s.pendingDeletes[site], names...)
		}
		s.mu.Unlock()
		s.queueDepth.Add(int64(drained))
		s.requeuedC.Add(int64(drained))
	}

	// Pull phase: the agent queries each instance that reported updates,
	// one goroutine per site.
	var (
		pullMu       sync.Mutex
		pullWG       sync.WaitGroup
		all          []registry.Entry
		totalEntries int
	)
	for _, site := range s.fabric.Sites() {
		names := dedupe(creates[site])
		if len(names) == 0 {
			continue
		}
		inst, err := s.fabric.Instance(site)
		if err != nil {
			continue
		}
		pullWG.Add(1)
		go func(site cloud.SiteID, inst registry.API, names []string) {
			defer pullWG.Done()
			start := time.Now()
			// Bulk pull: one request returns every updated entry of the site
			// (entries deleted in the meantime are simply absent).
			batch, err := inst.GetMany(ctx, names)
			if err != nil {
				return
			}
			batchBytes := 0
			for _, e := range batch {
				batchBytes += s.fabric.EntrySize(e)
			}
			s.fabric.call(ctx, s.agentSite, site, s.fabric.queryBytes, batchBytes) //nolint:errcheck // cancellation handled below
			s.fabric.record(metrics.OpSync, start, s.fabric.Topology().DistanceClass(s.agentSite, site).Remote())
			if len(batch) > 0 {
				pullMu.Lock()
				all = append(all, batch...)
				totalEntries += len(batch)
				pullMu.Unlock()
			}
		}(site, inst, names)
	}
	pullWG.Wait()

	if err := ctx.Err(); err != nil {
		requeue()
		return err
	}

	allBytes := 0
	for _, e := range all {
		allBytes += s.fabric.EntrySize(e)
	}
	allDeletes := make([]string, 0)
	for _, names := range deletes {
		allDeletes = append(allDeletes, dedupe(names)...)
	}

	if len(all) == 0 && len(allDeletes) == 0 {
		s.mu.Lock()
		s.rounds++
		s.mu.Unlock()
		s.roundsC.Inc()
		s.roundLatency.ObserveDuration(time.Since(roundStart))
		return nil
	}

	// Push phase: propagate the merged set to every instance concurrently.
	// Creates travel as one Merge batch, deletions as one DeleteMany batch —
	// never as per-entry calls.
	var (
		synced atomic.Int64
		pushWG sync.WaitGroup
	)
	for _, site := range s.fabric.Sites() {
		inst, err := s.fabric.Instance(site)
		if err != nil {
			continue
		}
		pushWG.Add(1)
		go func(site cloud.SiteID, inst registry.API) {
			defer pushWG.Done()
			start := time.Now()
			if _, err := s.fabric.call(ctx, s.agentSite, site, allBytes+len(allDeletes)*s.fabric.queryBytes, s.fabric.ackBytes); err != nil {
				return
			}
			applied, _ := inst.Merge(ctx, all)
			if len(allDeletes) > 0 {
				n, _ := inst.DeleteMany(ctx, allDeletes)
				applied += n
			}
			synced.Add(int64(applied))
			s.fabric.record(metrics.OpSync, start, s.fabric.Topology().DistanceClass(s.agentSite, site).Remote())
		}(site, inst)
	}
	pushWG.Wait()

	if err := ctx.Err(); err != nil {
		// Some sites may have been updated before the cancellation; the bulk
		// operations are idempotent, so re-queueing everything is safe.
		requeue()
		return err
	}

	s.mu.Lock()
	s.rounds++
	s.entriesSynced += synced.Load()
	s.entriesObserved += int64(totalEntries)
	s.mu.Unlock()
	s.roundsC.Inc()
	s.syncedC.Add(synced.Load())
	s.roundLatency.ObserveDuration(time.Since(roundStart))
	return nil
}

// dedupe returns the unique strings of the input, preserving first-seen order.
func dedupe(in []string) []string {
	if len(in) <= 1 {
		return in
	}
	seen := make(map[string]bool, len(in))
	out := in[:0:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
