package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/feed"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// feedApplyBatch bounds how many combined feed events one apply round drains:
// a burst of local commits reaches the remote sites as a handful of bulk
// Merge/DeleteMany frames instead of one WAN exchange per event.
const feedApplyBatch = 64

// applyFunc applies one micro-batch of committed mutations that originated at
// site from to wherever the strategy replicates them, and returns how many
// entry applications actually changed remote state. Within a batch each name
// appears on only one side (the later of its put/delete events wins), so the
// callee can apply puts then deletes in either bulk call order.
type applyFunc func(ctx context.Context, from cloud.SiteID, puts []registry.Entry, dels []string) int

// feedSyncer replaces a strategy's polling agent with a push pipeline: it
// fans every site's change feed into one feed.Combiner and applies each event
// to the strategy's replica set as it arrives, instead of waiting for the
// next polling round. Durable sites contribute WAL sequence numbers, so the
// combiner's resume tokens survive instance restarts; a cursor that falls out
// of a feed's retention window takes the snapshot+tail fallback inside the
// combiner.
//
// Echo safety: applying a batch at a remote site republishes the mutations on
// that site's feed, so the syncer would see its own writes come back. Those
// events carry the Sync mark (set by the bulk-apply store path under the same
// commit lock) and the syncer skips them outright — no echo traffic, and no
// resurrection race where a stale echoed put lands after a later delete.
type feedSyncer struct {
	fabric *Fabric
	comb   *feed.Combiner
	apply  applyFunc
	cancel context.CancelFunc
	done   chan struct{}

	// feeders and origin map a combiner source name back to the site feed it
	// tails: heads for Flush catch-up, origin site for WAN modelling.
	feeders map[string]registry.ChangeFeeder
	origin  map[string]cloud.SiteID

	mu      sync.Mutex
	applied map[string]uint64 // source name -> last applied sequence
	closed  bool

	// Live instruments (nil when the fabric's instrumentation is off).
	lag      *metrics.Histogram // replication_lag_ns: event commit -> remote apply
	appliedC *metrics.Counter   // feed_applied_total: entry applications pushed
}

// newFeedSyncer subscribes to every fabric site's change feed and starts the
// apply loop. It fails with ErrNoFeed when any site exposes no feed.
func newFeedSyncer(fabric *Fabric, apply applyFunc) (*feedSyncer, error) {
	sources, err := fabric.FeedSources()
	if err != nil {
		return nil, err
	}
	fs := &feedSyncer{
		fabric:   fabric,
		apply:    apply,
		done:     make(chan struct{}),
		feeders:  make(map[string]registry.ChangeFeeder, len(sources)),
		origin:   make(map[string]cloud.SiteID, len(sources)),
		applied:  make(map[string]uint64, len(sources)),
		lag:      fabric.Metrics().Histogram("replication_lag_ns"),
		appliedC: fabric.Metrics().Counter("feed_applied_total"),
	}
	for i, site := range fabric.Sites() {
		feeder, err := fabric.Feed(site)
		if err != nil {
			return nil, err
		}
		fs.feeders[sources[i].Name] = feeder
		fs.origin[sources[i].Name] = site
	}
	fs.comb = feed.NewCombiner(sources,
		feed.WithCombinerMetrics(fabric.Metrics()),
		feed.WithCombinerBuffer(feedApplyBatch))
	ctx, cancel := context.WithCancel(context.Background())
	fs.cancel = cancel
	fs.comb.Start(ctx)
	go fs.consume(ctx)
	return fs, nil
}

// consume drains the combiner: it blocks for the first event, opportunistically
// gathers whatever else is already pending (up to feedApplyBatch), and applies
// the micro-batch grouped by origin site.
func (fs *feedSyncer) consume(ctx context.Context) {
	defer close(fs.done)
	for {
		var batch []feed.SourceEvent
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-fs.comb.Events():
			if !ok {
				return
			}
			batch = append(batch, ev)
		}
	drain:
		for len(batch) < feedApplyBatch {
			select {
			case ev, ok := <-fs.comb.Events():
				if !ok {
					fs.applyBatch(ctx, batch)
					return
				}
				batch = append(batch, ev)
			default:
				break drain
			}
		}
		fs.applyBatch(ctx, batch)
	}
}

// applyBatch groups the drained events by source, collapses per-name
// put/delete pairs to the later operation, pushes each group through the
// strategy's apply function, and advances the per-source cursors.
func (fs *feedSyncer) applyBatch(ctx context.Context, batch []feed.SourceEvent) {
	type group struct {
		puts   []registry.Entry
		dels   []string
		oldest int64 // earliest commit nanos in the group, for the lag sample
		last   uint64
	}
	groups := make(map[string]*group)
	order := make([]string, 0, 2)
	for _, sev := range batch {
		g := groups[sev.Source]
		if g == nil {
			g = &group{oldest: sev.Event.Commit}
			groups[sev.Source] = g
			order = append(order, sev.Source)
		}
		if sev.Event.Commit < g.oldest {
			g.oldest = sev.Event.Commit
		}
		g.last = sev.Event.Seq
		if sev.Event.Sync {
			// A bulk-applied event: this is replication itself landing the
			// batch (ours or a migration sweep), not a primary write. Skip it
			// — re-broadcasting would echo around the mesh and can resurrect
			// a deleted name when the echo lands after a later delete — but
			// keep the cursor moving so Flush converges.
			continue
		}
		switch sev.Event.Op {
		case feed.OpPut:
			e, err := fs.fabric.Codec().Decode(sev.Event.Value)
			if err != nil {
				continue // undecodable payload; the snapshot fallback heals it
			}
			g.dels = deleteName(g.dels, e.Name)
			g.puts = upsertEntry(g.puts, e)
		case feed.OpDelete:
			g.puts = deleteEntry(g.puts, sev.Event.Name)
			g.dels = append(deleteName(g.dels, sev.Event.Name), sev.Event.Name)
		}
	}
	for _, source := range order {
		g := groups[source]
		applied := fs.apply(ctx, fs.origin[source], g.puts, g.dels)
		if applied > 0 {
			fs.appliedC.Add(int64(applied))
			// Echo batches apply zero entries and record no lag sample.
			fs.lag.ObserveDuration(time.Since(time.Unix(0, g.oldest)))
		}
		fs.mu.Lock()
		if g.last > fs.applied[source] {
			fs.applied[source] = g.last
		}
		fs.mu.Unlock()
	}
}

// Flush blocks until every event committed before the call has been applied:
// it captures each source feed's head once and waits for the apply cursors to
// reach them (echo events published later keep moving the heads, but only the
// captured values gate the return).
func (fs *feedSyncer) Flush(ctx context.Context) error {
	heads := make(map[string]uint64, len(fs.feeders))
	for name, feeder := range fs.feeders {
		// FeedBarrier, not ChangeFeed().Seq(): a sharded site's relay feed
		// lags its shards' commits until the asynchronous pumps absorb them.
		head, err := feeder.FeedBarrier(ctx)
		if err != nil {
			return err
		}
		heads[name] = head
	}
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for {
		fs.mu.Lock()
		caught := true
		for name, head := range heads {
			if fs.applied[name] < head {
				caught = false
				break
			}
		}
		closed := fs.closed
		fs.mu.Unlock()
		if caught {
			return nil
		}
		if closed {
			return ErrClosed
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-fs.done:
			// The consumer exited (combiner closed); nothing more will apply.
			return fmt.Errorf("feed sync stopped before catching up: %w", ErrClosed)
		case <-ticker.C:
		}
	}
}

// Applied returns how many events from the given source ("site-<id>") have
// been applied, as the source's last applied sequence number.
func (fs *feedSyncer) Applied(source string) uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.applied[source]
}

// Close stops the consumer and detaches every feed subscription. In-flight
// applications finish; events past the cursors stay on the source feeds.
func (fs *feedSyncer) Close() {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return
	}
	fs.closed = true
	fs.mu.Unlock()
	fs.cancel()
	fs.comb.Close()
	<-fs.done
}

// upsertEntry replaces the entry with e's name or appends e, keeping one
// pending state per name within a micro-batch.
func upsertEntry(entries []registry.Entry, e registry.Entry) []registry.Entry {
	for i := range entries {
		if entries[i].Name == e.Name {
			entries[i] = e
			return entries
		}
	}
	return append(entries, e)
}

// deleteEntry removes the entry with the given name, if present.
func deleteEntry(entries []registry.Entry, name string) []registry.Entry {
	for i := range entries {
		if entries[i].Name == name {
			return append(entries[:i], entries[i+1:]...)
		}
	}
	return entries
}

// deleteName removes name from the slice, if present.
func deleteName(names []string, name string) []string {
	for i := range names {
		if names[i] == name {
			return append(names[:i], names[i+1:]...)
		}
	}
	return names
}
