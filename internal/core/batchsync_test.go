package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/latency"
	"geomds/internal/memcache"
	"geomds/internal/registry"
)

// countingAPI wraps a registry instance and counts calls per method, so
// tests can assert that the synchronization agents go through the batch API
// rather than per-entry calls.
type countingAPI struct {
	registry.API
	mu    sync.Mutex
	calls map[string]int
}

func newCountingAPI(inner registry.API) *countingAPI {
	return &countingAPI{API: inner, calls: make(map[string]int)}
}

func (c *countingAPI) count(method string) {
	c.mu.Lock()
	c.calls[method]++
	c.mu.Unlock()
}

func (c *countingAPI) Calls(method string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[method]
}

func (c *countingAPI) Create(ctx context.Context, e registry.Entry) (registry.Entry, error) {
	c.count("Create")
	return c.API.Create(ctx, e)
}

func (c *countingAPI) Put(ctx context.Context, e registry.Entry) (registry.Entry, error) {
	c.count("Put")
	return c.API.Put(ctx, e)
}

func (c *countingAPI) Delete(ctx context.Context, name string) error {
	c.count("Delete")
	return c.API.Delete(ctx, name)
}

func (c *countingAPI) GetMany(ctx context.Context, names []string) ([]registry.Entry, error) {
	c.count("GetMany")
	return c.API.GetMany(ctx, names)
}

func (c *countingAPI) PutMany(ctx context.Context, entries []registry.Entry) ([]registry.Entry, error) {
	c.count("PutMany")
	return c.API.PutMany(ctx, entries)
}

func (c *countingAPI) DeleteMany(ctx context.Context, names []string) (int, error) {
	c.count("DeleteMany")
	return c.API.DeleteMany(ctx, names)
}

func (c *countingAPI) Merge(ctx context.Context, entries []registry.Entry) (int, error) {
	c.count("Merge")
	return c.API.Merge(ctx, entries)
}

// newCountingFabric builds a 4-site test fabric whose every instance is
// wrapped in a call counter.
func newCountingFabric() (*Fabric, map[cloud.SiteID]*countingAPI) {
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(1), latency.WithSleeper(func(time.Duration) {}))
	counters := make(map[cloud.SiteID]*countingAPI)
	instances := make(map[cloud.SiteID]registry.API)
	for _, s := range topo.Sites() {
		inner := registry.NewInstance(s.ID, memcache.New(memcache.Config{}))
		counters[s.ID] = newCountingAPI(inner)
		instances[s.ID] = counters[s.ID]
	}
	f := NewFabric(topo, lat, WithCacheCapacity(0, 0), WithInstances(instances))
	return f, counters
}

// TestReplicatedAgentUsesBatchCalls asserts the replicated strategy's
// synchronization agent propagates pending creates and deletes as bulk
// operations: the push phase must issue exactly one Merge and one DeleteMany
// per site and round, never per-entry Puts or Deletes.
func TestReplicatedAgentUsesBatchCalls(t *testing.T) {
	f, counters := newCountingFabric()
	svc, err := NewReplicated(f, 0, WithSyncInterval(time.Hour)) // manual rounds only
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const n = 25
	for i := 0; i < n; i++ {
		if _, err := svc.Create(tctx, 1, testEntry(fmt.Sprintf("batch-%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush(tctx) // round 1: propagate the creates

	for _, site := range f.Sites() {
		c := counters[site]
		if got := c.Calls("Merge"); got != 1 {
			t.Errorf("site %d: Merge called %d times after create round, want 1", site, got)
		}
		if got := c.Calls("Put"); got != 0 {
			t.Errorf("site %d: %d per-entry Puts issued; creates must travel as one Merge batch", site, got)
		}
	}
	// The only per-entry Creates are the n the writer itself issued locally.
	if got := counters[1].Calls("Create"); got != n {
		t.Errorf("writer site saw %d Creates, want %d", got, n)
	}

	for i := 0; i < n; i++ {
		if err := svc.Delete(tctx, 1, fmt.Sprintf("batch-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush(tctx) // round 2: propagate the deletes

	for _, site := range f.Sites() {
		c := counters[site]
		if got := c.Calls("DeleteMany"); got != 1 {
			t.Errorf("site %d: DeleteMany called %d times after delete round, want 1", site, got)
		}
		// The writer's own n local deletes are the only per-entry calls.
		want := 0
		if site == 1 {
			want = n
		}
		if got := c.Calls("Delete"); got != want {
			t.Errorf("site %d: %d per-entry Deletes, want %d (propagation must use DeleteMany)", site, got, want)
		}
	}
	for _, site := range f.Sites() {
		inst, _ := f.Instance(site)
		if inst.Len(tctx) != 0 {
			t.Errorf("site %d still holds %d entries after propagated deletes", site, inst.Len(tctx))
		}
	}
}

// TestPropagatorOrderWithinFlushWindow asserts that when a name is deleted
// and re-created (or created and deleted) within one flush window, the
// destination converges on the *last* local operation: within a batch the
// newer enqueue supersedes the older one for the same name.
func TestPropagatorOrderWithinFlushWindow(t *testing.T) {
	f := newTestFabric()
	p := NewPropagator(f, time.Hour, 1000)
	defer p.Close()
	inst, _ := f.Instance(2)

	// delete → re-create: the entry must survive the flush.
	old := testEntry("cycle", 0)
	p.Enqueue(0, 2, old)
	p.FlushNow(tctx)
	p.EnqueueDelete(0, 2, "cycle")
	p.Enqueue(0, 2, testEntry("cycle", 0))
	p.FlushNow(tctx)
	if !inst.Contains(tctx, "cycle") {
		t.Error("entry deleted and re-created in one window vanished at the destination")
	}

	// create → delete: the entry must be gone after the flush.
	p.Enqueue(0, 2, testEntry("doomed", 0))
	p.EnqueueDelete(0, 2, "doomed")
	p.FlushNow(tctx)
	if inst.Contains(tctx, "doomed") {
		t.Error("entry created and deleted in one window survived at the destination")
	}
}

// TestDecReplicatedLazyDeleteUsesBatch asserts that in lazy mode the hybrid
// strategy's deletions reach the home site through the propagator as a
// DeleteMany batch, not as eager per-entry calls.
func TestDecReplicatedLazyDeleteUsesBatch(t *testing.T) {
	f, counters := newCountingFabric()
	svc, err := NewDecReplicated(f, WithLazyPropagation(time.Hour, 1000)) // manual flush only
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Collect names homed at site 2, written from site 0.
	var names []string
	for i := 0; len(names) < 10; i++ {
		name := fmt.Sprintf("lazy-del-%d", i)
		if svc.Home(name) == 2 {
			names = append(names, name)
		}
	}
	for _, name := range names {
		if _, err := svc.Create(tctx, 0, testEntry(name, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	if got := counters[2].Calls("Merge"); got != 1 {
		t.Errorf("home site: Merge called %d times, want 1 (lazy creates travel as one batch)", got)
	}

	for _, name := range names {
		if err := svc.Delete(tctx, 0, name); err != nil {
			t.Fatal(err)
		}
	}
	// Before the flush the home copies still exist (eventual consistency)...
	if got := counters[2].Calls("Delete"); got != 0 {
		t.Errorf("home site saw %d eager Deletes in lazy mode, want 0", got)
	}
	home, _ := f.Instance(2)
	if home.Len(tctx) != len(names) {
		t.Errorf("home holds %d entries before flush, want %d", home.Len(tctx), len(names))
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	// ...after it they are gone, removed by exactly one DeleteMany.
	if got := counters[2].Calls("DeleteMany"); got != 1 {
		t.Errorf("home site: DeleteMany called %d times, want 1", got)
	}
	if got := counters[2].Calls("Delete"); got != 0 {
		t.Errorf("home site saw %d per-entry Deletes, want 0", got)
	}
	if home.Len(tctx) != 0 {
		t.Errorf("home still holds %d entries after flushed deletes", home.Len(tctx))
	}
}
