package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/dht"
	"geomds/internal/latency"
	"geomds/internal/limits"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

var tctx = context.Background()

// newTestFabric builds a 4-site fabric whose latency model never actually
// sleeps, so strategy-logic tests run instantly. The cache capacity model is
// disabled for the same reason.
func newTestFabric(opts ...FabricOption) *Fabric {
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithSeed(1), latency.WithSleeper(func(time.Duration) {}))
	base := []FabricOption{WithCacheCapacity(0, 0)}
	return NewFabric(topo, lat, append(base, opts...)...)
}

func testEntry(name string, site cloud.SiteID) registry.Entry {
	return registry.NewEntry(name, 4096, "task-x", registry.Location{Site: site, Node: 1})
}

func TestStrategyKindStrings(t *testing.T) {
	cases := map[StrategyKind][2]string{
		Centralized:             {"centralized", "C"},
		Replicated:              {"replicated", "R"},
		Decentralized:           {"decentralized-nonrep", "DN"},
		DecentralizedReplicated: {"decentralized-rep", "DR"},
	}
	for k, want := range cases {
		if k.String() != want[0] || k.Short() != want[1] {
			t.Errorf("%d: String/Short = %q/%q, want %q/%q", int(k), k.String(), k.Short(), want[0], want[1])
		}
	}
	if StrategyKind(99).String() == "" || StrategyKind(99).Short() != "?" {
		t.Error("unknown kind formatting")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]StrategyKind{
		"centralized": Centralized, "C": Centralized, " central ": Centralized,
		"replicated": Replicated, "r": Replicated,
		"DN": Decentralized, "decentralized": Decentralized,
		"dr": DecentralizedReplicated, "hybrid": DecentralizedReplicated,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy should reject unknown names")
	}
}

func TestFabricBasics(t *testing.T) {
	rec := metrics.NewRecorder()
	f := newTestFabric(WithRecorder(rec))
	if len(f.Sites()) != 4 {
		t.Fatalf("Sites = %v", f.Sites())
	}
	if !f.HasSite(0) || f.HasSite(99) {
		t.Error("HasSite misbehaves")
	}
	if _, err := f.Instance(0); err != nil {
		t.Errorf("Instance(0): %v", err)
	}
	if _, err := f.Instance(99); !errors.Is(err, ErrNoSuchSite) {
		t.Errorf("Instance(99) = %v, want ErrNoSuchSite", err)
	}
	if f.Recorder() != rec {
		t.Error("Recorder not attached")
	}
	if f.EntrySize(testEntry("x", 0)) <= 0 {
		t.Error("EntrySize should be positive")
	}
	if f.TotalEntries(tctx) != 0 {
		t.Error("fresh fabric should be empty")
	}
}

func TestFabricWithSitesSubset(t *testing.T) {
	f := newTestFabric(WithSites(0, 1))
	if len(f.Sites()) != 2 {
		t.Fatalf("Sites = %v, want 2", f.Sites())
	}
	if f.HasSite(3) {
		t.Error("site 3 should not be part of the fabric")
	}
}

func TestCentralizedCreateLookup(t *testing.T) {
	f := newTestFabric()
	svc, err := NewCentralized(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Kind() != Centralized || svc.Home() != 0 {
		t.Error("Kind/Home mismatch")
	}

	e := testEntry("f1", 1)
	if _, err := svc.Create(tctx, 1, e); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Entry exists from every site (single instance).
	for site := cloud.SiteID(0); site < 4; site++ {
		got, err := svc.Lookup(tctx, site, "f1")
		if err != nil {
			t.Fatalf("Lookup from %d: %v", site, err)
		}
		if !got.Equal(e) {
			t.Errorf("Lookup returned %+v", got)
		}
	}
	if _, err := svc.Create(tctx, 2, e); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create = %v, want ErrExists", err)
	}
	if _, err := svc.Lookup(tctx, 0, "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Lookup missing = %v, want ErrNotFound", err)
	}
	if _, err := svc.AddLocation(tctx, 3, "f1", registry.Location{Site: 3, Node: 9}); err != nil {
		t.Errorf("AddLocation: %v", err)
	}
	if err := svc.Delete(tctx, 2, "f1"); err != nil {
		t.Errorf("Delete: %v", err)
	}
	if err := svc.Flush(tctx); err != nil {
		t.Errorf("Flush: %v", err)
	}
}

func TestCentralizedStoresOnlyAtHome(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewCentralized(f, 2)
	defer svc.Close()
	svc.Create(tctx, 0, testEntry("only-home", 0))
	for _, site := range f.Sites() {
		inst, _ := f.Instance(site)
		want := 0
		if site == 2 {
			want = 1
		}
		if inst.Len(tctx) != want {
			t.Errorf("site %d holds %d entries, want %d", site, inst.Len(tctx), want)
		}
	}
}

func TestCentralizedClosed(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewCentralized(f, 0)
	svc.Close()
	if _, err := svc.Create(tctx, 0, testEntry("x", 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Create after close = %v", err)
	}
	if _, err := svc.Lookup(tctx, 0, "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("Lookup after close = %v", err)
	}
	if err := svc.Delete(tctx, 0, "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after close = %v", err)
	}
	if err := svc.Flush(tctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after close = %v", err)
	}
}

func TestNewCentralizedBadSite(t *testing.T) {
	f := newTestFabric(WithSites(0, 1))
	if _, err := NewCentralized(f, 3); !errors.Is(err, ErrNoSuchSite) {
		t.Errorf("NewCentralized on missing site = %v", err)
	}
}

func TestReplicatedLocalThenEventual(t *testing.T) {
	f := newTestFabric()
	svc, err := NewReplicated(f, 0, WithSyncInterval(time.Hour)) // manual sync only
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Kind() != Replicated || svc.AgentSite() != 0 {
		t.Error("Kind/AgentSite mismatch")
	}

	e := testEntry("shared", 1)
	if _, err := svc.Create(tctx, 1, e); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Immediately visible locally...
	if _, err := svc.Lookup(tctx, 1, "shared"); err != nil {
		t.Errorf("local Lookup: %v", err)
	}
	// ...but not yet at other sites (eventual consistency).
	if _, err := svc.Lookup(tctx, 3, "shared"); !errors.Is(err, ErrNotFound) {
		t.Errorf("remote Lookup before sync = %v, want ErrNotFound", err)
	}
	// After a sync round the entry is everywhere.
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for _, site := range f.Sites() {
		if _, err := svc.Lookup(tctx, site, "shared"); err != nil {
			t.Errorf("Lookup from %d after sync: %v", site, err)
		}
	}
	if svc.SyncRounds() == 0 {
		t.Error("SyncRounds should have advanced")
	}
	if svc.EntriesSynced() == 0 {
		t.Error("EntriesSynced should count propagated entries")
	}
}

func TestReplicatedDeletePropagates(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewReplicated(f, 0, WithSyncInterval(time.Hour))
	defer svc.Close()
	svc.Create(tctx, 2, testEntry("todelete", 2))
	svc.Flush(tctx)
	if err := svc.Delete(tctx, 2, "todelete"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	svc.Flush(tctx)
	for _, site := range f.Sites() {
		if _, err := svc.Lookup(tctx, site, "todelete"); !errors.Is(err, ErrNotFound) {
			t.Errorf("entry still visible at %d after propagated delete: %v", site, err)
		}
	}
}

func TestReplicatedAddLocationPropagates(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewReplicated(f, 1, WithSyncInterval(time.Hour))
	defer svc.Close()
	svc.Create(tctx, 0, testEntry("f", 0))
	svc.Flush(tctx)
	if _, err := svc.AddLocation(tctx, 0, "f", registry.Location{Site: 3, Node: 7}); err != nil {
		t.Fatalf("AddLocation: %v", err)
	}
	svc.Flush(tctx)
	got, err := svc.Lookup(tctx, 2, "f")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if !got.HasLocation(registry.Location{Site: 3, Node: 7}) {
		t.Error("location update did not propagate")
	}
}

func TestReplicatedBackgroundAgent(t *testing.T) {
	f := newTestFabric()
	// Simulated 10ms interval at scale 1.0 = wall 10ms: fast enough to observe.
	svc, _ := NewReplicated(f, 0, WithSyncInterval(10*time.Millisecond))
	defer svc.Close()
	svc.Create(tctx, 0, testEntry("bg", 0))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := svc.Lookup(tctx, 3, "bg"); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("background agent never propagated the entry")
}

func TestReplicatedClosed(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewReplicated(f, 0)
	svc.Close()
	if _, err := svc.Create(tctx, 0, testEntry("x", 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Create after close = %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestDecentralizedPlacement(t *testing.T) {
	f := newTestFabric()
	svc, err := NewDecentralized(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Kind() != Decentralized {
		t.Error("Kind mismatch")
	}

	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("file-%d", i)
		if _, err := svc.Create(tctx, cloud.SiteID(i%4), testEntry(name, cloud.SiteID(i%4))); err != nil {
			t.Fatalf("Create %s: %v", name, err)
		}
		home := svc.Home(name)
		inst, _ := f.Instance(home)
		if !inst.Contains(tctx, name) {
			t.Errorf("%s not stored at its home site %d", name, home)
		}
		// It must be stored nowhere else.
		for _, site := range f.Sites() {
			if site == home {
				continue
			}
			other, _ := f.Instance(site)
			if other.Contains(tctx, name) {
				t.Errorf("%s replicated to non-home site %d", name, site)
			}
		}
	}
	if f.TotalEntries(tctx) != 40 {
		t.Errorf("TotalEntries = %d, want 40 (no replication)", f.TotalEntries(tctx))
	}
	local, remote := svc.LocalRemoteOps()
	if local+remote != 40 {
		t.Errorf("locality counters = %d+%d, want 40", local, remote)
	}
}

func TestDecentralizedLookupAndErrors(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewDecentralized(f, nil)
	defer svc.Close()
	e := testEntry("data.bin", 2)
	svc.Create(tctx, 2, e)
	for _, site := range f.Sites() {
		got, err := svc.Lookup(tctx, site, "data.bin")
		if err != nil || !got.Equal(e) {
			t.Errorf("Lookup from %d: %v", site, err)
		}
	}
	if _, err := svc.Lookup(tctx, 0, "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Lookup missing = %v", err)
	}
	if _, err := svc.Create(tctx, 1, e); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create = %v", err)
	}
	if _, err := svc.AddLocation(tctx, 3, "data.bin", registry.Location{Site: 3, Node: 5}); err != nil {
		t.Errorf("AddLocation: %v", err)
	}
	if err := svc.Delete(tctx, 1, "data.bin"); err != nil {
		t.Errorf("Delete: %v", err)
	}
	if err := svc.Flush(tctx); err != nil {
		t.Errorf("Flush: %v", err)
	}
	svc.Close()
	if _, err := svc.Lookup(tctx, 0, "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("Lookup after close = %v", err)
	}
}

func TestDecReplicatedEagerWrite(t *testing.T) {
	f := newTestFabric()
	svc, err := NewDecReplicated(f, WithEagerPropagation())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Lazy() {
		t.Error("eager service should not report lazy")
	}

	// Pick a name whose home is NOT the writer's site so both copies exist.
	var name string
	for i := 0; ; i++ {
		name = fmt.Sprintf("eager-%d", i)
		if svc.Home(name) != 1 {
			break
		}
	}
	if _, err := svc.Create(tctx, 1, testEntry(name, 1)); err != nil {
		t.Fatalf("Create: %v", err)
	}
	local, _ := f.Instance(1)
	home, _ := f.Instance(svc.Home(name))
	if !local.Contains(tctx, name) {
		t.Error("local replica missing")
	}
	if !home.Contains(tctx, name) {
		t.Error("home copy missing (eager propagation)")
	}
}

func TestDecReplicatedLazyWrite(t *testing.T) {
	f := newTestFabric()
	svc, err := NewDecReplicated(f, WithLazyPropagation(time.Hour, 1<<20)) // manual flush only
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if !svc.Lazy() {
		t.Error("service should report lazy")
	}

	var name string
	for i := 0; ; i++ {
		name = fmt.Sprintf("lazy-%d", i)
		if svc.Home(name) != 0 {
			break
		}
	}
	svc.Create(tctx, 0, testEntry(name, 0))
	homeSite := svc.Home(name)
	homeInst, _ := f.Instance(homeSite)
	if homeInst.Contains(tctx, name) {
		t.Error("home copy should not exist before the lazy flush")
	}
	// Reads from the writer's site hit the local replica immediately.
	if _, err := svc.Lookup(tctx, 0, name); err != nil {
		t.Errorf("local Lookup: %v", err)
	}
	// Reads from a third site that is neither writer nor home miss until the
	// flush (eventual consistency).
	var third cloud.SiteID = -1
	for _, s := range f.Sites() {
		if s != 0 && s != homeSite {
			third = s
			break
		}
	}
	if _, err := svc.Lookup(tctx, third, name); !errors.Is(err, ErrNotFound) {
		t.Errorf("third-site Lookup before flush = %v, want ErrNotFound", err)
	}
	if err := svc.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	if !homeInst.Contains(tctx, name) {
		t.Error("home copy missing after flush")
	}
	if _, err := svc.Lookup(tctx, third, name); err != nil {
		t.Errorf("third-site Lookup after flush: %v", err)
	}
	if rate := svc.LocalHitRate(); rate <= 0 || rate > 1 {
		t.Errorf("LocalHitRate = %v, want in (0,1]", rate)
	}
}

func TestDecReplicatedHomeEqualsWriter(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewDecReplicated(f, WithEagerPropagation())
	defer svc.Close()
	// Find a name whose home IS the writer's site: only one copy must exist.
	var name string
	for i := 0; ; i++ {
		name = fmt.Sprintf("samehome-%d", i)
		if svc.Home(name) == 2 {
			break
		}
	}
	svc.Create(tctx, 2, testEntry(name, 2))
	if f.TotalEntries(tctx) != 1 {
		t.Errorf("TotalEntries = %d, want 1 (no self-replication)", f.TotalEntries(tctx))
	}
}

func TestDecReplicatedUpdateAndDelete(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewDecReplicated(f, WithEagerPropagation())
	defer svc.Close()
	var name string
	for i := 0; ; i++ {
		name = fmt.Sprintf("ud-%d", i)
		if svc.Home(name) != 0 {
			break
		}
	}
	svc.Create(tctx, 0, testEntry(name, 0))
	if _, err := svc.AddLocation(tctx, 0, name, registry.Location{Site: 3, Node: 4}); err != nil {
		t.Fatalf("AddLocation: %v", err)
	}
	// Updating from a site that has no local replica works via the home.
	if _, err := svc.AddLocation(tctx, 3, name, registry.Location{Site: 2, Node: 8}); err != nil {
		t.Fatalf("AddLocation from non-replica site: %v", err)
	}
	if err := svc.Delete(tctx, 0, name); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for _, site := range f.Sites() {
		inst, _ := f.Instance(site)
		if inst.Contains(tctx, name) {
			t.Errorf("entry still present at site %d after delete", site)
		}
	}
	if err := svc.Delete(tctx, 0, name); !errors.Is(err, ErrNotFound) {
		t.Errorf("second Delete = %v, want ErrNotFound", err)
	}
	if _, err := svc.AddLocation(tctx, 1, "ghost", registry.Location{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("AddLocation on missing entry = %v, want ErrNotFound", err)
	}
}

func TestDecReplicatedClosed(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewDecReplicated(f)
	svc.Close()
	if _, err := svc.Create(tctx, 0, testEntry("x", 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Create after close = %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestPropagator(t *testing.T) {
	f := newTestFabric()
	p := NewPropagator(f, time.Hour, 1000)
	defer p.Close()
	e := testEntry("prop", 0)
	p.Enqueue(0, 2, e)
	if p.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", p.Pending())
	}
	p.FlushNow(tctx)
	if p.Pending() != 0 {
		t.Errorf("Pending after flush = %d, want 0", p.Pending())
	}
	inst, _ := f.Instance(2)
	if !inst.Contains(tctx, "prop") {
		t.Error("entry not applied at destination")
	}
	if p.Flushes() == 0 || p.Propagated() != 1 {
		t.Errorf("Flushes=%d Propagated=%d", p.Flushes(), p.Propagated())
	}
	p.Close()
	p.Enqueue(0, 2, testEntry("after-close", 0))
	if p.Pending() != 0 {
		t.Error("Enqueue after close should be ignored")
	}
}

func TestPropagatorMaxBatchTriggersFlush(t *testing.T) {
	f := newTestFabric()
	p := NewPropagator(f, time.Hour, 3)
	defer p.Close()
	for i := 0; i < 3; i++ {
		p.Enqueue(0, 1, testEntry(fmt.Sprintf("b%d", i), 0))
	}
	inst, _ := f.Instance(1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if inst.Len(tctx) == 3 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("max-batch flush did not run; destination holds %d entries", inst.Len(tctx))
}

func TestController(t *testing.T) {
	f := newTestFabric()
	ctrl := NewController(f, WithCentralSite(1), WithAgentSite(2),
		WithControllerSyncInterval(time.Hour), WithControllerLazy(time.Hour, 100))
	defer ctrl.Close()

	if _, _, ok := ctrl.Current(); ok {
		t.Error("Current should report not started")
	}
	svc, err := ctrl.Use(tctx, Centralized)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Kind() != Centralized {
		t.Error("wrong kind")
	}
	if c, ok := svc.(*CentralizedService); !ok || c.Home() != 1 {
		t.Error("central site option not honoured")
	}
	// Same kind returns the same instance.
	again, _ := ctrl.Use(tctx, Centralized)
	if again != svc {
		t.Error("Use with same kind should reuse the service")
	}
	// Switch through every strategy.
	for _, kind := range []StrategyKind{Replicated, Decentralized, DecentralizedReplicated} {
		s, err := ctrl.Use(tctx, kind)
		if err != nil {
			t.Fatalf("Use(%v): %v", kind, err)
		}
		if s.Kind() != kind {
			t.Errorf("Kind = %v, want %v", s.Kind(), kind)
		}
		cur, curKind, ok := ctrl.Current()
		if !ok || cur != s || curKind != kind {
			t.Error("Current out of sync")
		}
	}
	// The previously active service is closed after a switch.
	if _, err := svc.Lookup(tctx, 0, "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("old service should be closed, got %v", err)
	}
	if _, err := ctrl.Use(tctx, StrategyKind(42)); err == nil {
		t.Error("unknown strategy should fail")
	}
	if err := ctrl.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := ctrl.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestControllerWithRingPlacer(t *testing.T) {
	f := newTestFabric()
	ring := dht.NewRingPlacer(f.Sites(), 64)
	ctrl := NewController(f, WithControllerPlacer(ring))
	defer ctrl.Close()
	svc, err := ctrl.Use(tctx, Decentralized)
	if err != nil {
		t.Fatal(err)
	}
	dec := svc.(*DecentralizedService)
	if dec.Home("some-file") != ring.Home("some-file") {
		t.Error("controller did not pass the placer through")
	}
}

func TestNewServiceHelper(t *testing.T) {
	f := newTestFabric()
	for _, kind := range Strategies {
		svc, err := NewService(f, kind)
		if err != nil {
			t.Fatalf("NewService(%v): %v", kind, err)
		}
		if svc.Kind() != kind {
			t.Errorf("Kind = %v, want %v", svc.Kind(), kind)
		}
		svc.Close()
	}
}

func TestClient(t *testing.T) {
	f := newTestFabric()
	svc, _ := NewCentralized(f, 0)
	defer svc.Close()
	dep := cloud.NewDeployment(f.Topology())
	nodeID := dep.AddNode(2)
	client := NewClient(svc, dep.Node(nodeID))
	if client.Node().ID != nodeID || client.Service() != svc {
		t.Error("client accessors wrong")
	}
	e, err := client.PublishFile(tctx, "out.dat", 2048, "task-9")
	if err != nil {
		t.Fatalf("PublishFile: %v", err)
	}
	if !e.HasLocation(registry.Location{Site: 2, Node: nodeID}) {
		t.Error("published entry missing the node's location")
	}
	got, err := client.LocateFile(tctx, "out.dat")
	if err != nil || got.Name != "out.dat" {
		t.Errorf("LocateFile: %v", err)
	}
	if _, err := client.RegisterCopy(tctx, "out.dat"); err != nil {
		t.Errorf("RegisterCopy: %v", err)
	}
	if err := client.Remove(tctx, "out.dat"); err != nil {
		t.Errorf("Remove: %v", err)
	}
}

// tenantSpyService wraps a MetadataService and records the tenant carried by
// each operation's context.
type tenantSpyService struct {
	MetadataService
	tenants []string
}

func (s *tenantSpyService) Create(ctx context.Context, from cloud.SiteID, e registry.Entry) (registry.Entry, error) {
	s.tenants = append(s.tenants, limits.TenantFromContext(ctx))
	return s.MetadataService.Create(ctx, from, e)
}

func (s *tenantSpyService) Lookup(ctx context.Context, from cloud.SiteID, name string) (registry.Entry, error) {
	s.tenants = append(s.tenants, limits.TenantFromContext(ctx))
	return s.MetadataService.Lookup(ctx, from, name)
}

func TestClientWithTenant(t *testing.T) {
	f := newTestFabric()
	base, _ := NewCentralized(f, 0)
	defer base.Close()
	spy := &tenantSpyService{MetadataService: base}
	dep := cloud.NewDeployment(f.Topology())
	node := dep.Node(dep.AddNode(0))

	client := NewClient(spy, node, WithTenant("acme"))
	if client.Tenant() != "acme" {
		t.Fatalf("Tenant = %q, want acme", client.Tenant())
	}
	if _, err := client.PublishFile(tctx, "t.dat", 1, "task"); err != nil {
		t.Fatalf("PublishFile: %v", err)
	}
	// A tenant already on the caller's context wins over the client-wide one.
	if _, err := client.LocateFile(limits.WithTenant(tctx, "override"), "t.dat"); err != nil {
		t.Fatalf("LocateFile: %v", err)
	}
	// An untenanted client leaves the context untouched.
	plain := NewClient(spy, node)
	if _, err := plain.LocateFile(tctx, "t.dat"); err != nil {
		t.Fatalf("plain LocateFile: %v", err)
	}
	want := []string{"acme", "override", ""}
	for i, w := range want {
		if spy.tenants[i] != w {
			t.Errorf("op %d tenant = %q, want %q", i, spy.tenants[i], w)
		}
	}
}

func TestRecorderIntegration(t *testing.T) {
	rec := metrics.NewRecorder()
	f := newTestFabric(WithRecorder(rec))
	svc, _ := NewCentralized(f, 0)
	defer svc.Close()
	svc.Create(tctx, 1, testEntry("m1", 1))
	svc.Lookup(tctx, 2, "m1")
	s := rec.Summarize()
	if s.PerKind[metrics.OpWrite] != 1 || s.PerKind[metrics.OpRead] != 1 {
		t.Errorf("recorded kinds = %v", s.PerKind)
	}
	if s.RemoteCount != 2 {
		t.Errorf("RemoteCount = %d, want 2 (both ops were remote)", s.RemoteCount)
	}
}

func TestConcurrentCreatesAllStrategies(t *testing.T) {
	for _, kind := range Strategies {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			f := newTestFabric()
			svc, err := NewService(f, kind)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			var wg sync.WaitGroup
			errs := make(chan error, 16*25)
			for w := 0; w < 16; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					site := cloud.SiteID(w % 4)
					for i := 0; i < 25; i++ {
						name := fmt.Sprintf("w%d-f%d", w, i)
						if _, err := svc.Create(tctx, site, testEntry(name, site)); err != nil {
							errs <- fmt.Errorf("create %s: %w", name, err)
							return
						}
						if _, err := svc.Lookup(tctx, site, name); err != nil {
							errs <- fmt.Errorf("lookup %s: %w", name, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// Property: for every strategy, once an entry has been created and the
// service flushed, a lookup from any site returns it (global visibility
// after convergence), and creating it again fails from any site.
func TestGlobalVisibilityProperty(t *testing.T) {
	for _, kind := range Strategies {
		kind := kind
		f := newTestFabric()
		svc, err := NewService(f, kind)
		if err != nil {
			t.Fatal(err)
		}
		prop := func(nameRaw uint16, writeRaw, readRaw uint8) bool {
			name := fmt.Sprintf("prop-%s-%d", kind.Short(), nameRaw)
			writeSite := cloud.SiteID(writeRaw % 4)
			readSite := cloud.SiteID(readRaw % 4)
			if _, err := svc.Create(tctx, writeSite, testEntry(name, writeSite)); err != nil {
				// The generator may repeat names; only ErrExists is tolerable.
				if !errors.Is(err, ErrExists) {
					return false
				}
			}
			if err := svc.Flush(tctx); err != nil {
				return false
			}
			if _, err := svc.Lookup(tctx, readSite, name); err != nil {
				return false
			}
			_, err := svc.Create(tctx, readSite, testEntry(name, readSite))
			if kind == DecentralizedReplicated {
				// Lazy-mode writes are optimistic: a duplicate create from a
				// site holding neither the local replica nor the home copy is
				// accepted and converges at the home via the merge.
				return err == nil || errors.Is(err, ErrExists)
			}
			return errors.Is(err, ErrExists)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
		svc.Close()
	}
}
