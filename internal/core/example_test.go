package core_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/metrics"
)

// ExampleClient walks the node-local session API a workflow task uses: a
// client bound to one execution node publishes file metadata, another node
// an ocean away resolves it and registers its own copy, and typed errors
// are branched on with errors.Is.
func ExampleClient() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The paper's 4-datacenter Azure testbed, time-compressed 1000x, with
	// the hybrid (decentralized + local replication) strategy over it.
	topo := cloud.Azure4DC()
	lat := latency.New(topo, latency.WithScale(0.001), latency.WithSeed(7))
	fabric := core.NewFabric(topo, lat, core.WithMetricsRegistry(metrics.NewRegistry()))
	svc, err := core.NewDecReplicated(fabric)
	if err != nil {
		fmt.Println("service:", err)
		return
	}
	defer svc.Close()

	// One execution node per site of interest; each Client issues every
	// operation from its node's datacenter.
	dep := cloud.NewDeployment(topo)
	weu, _ := topo.SiteByName(cloud.SiteWestEU)
	eus, _ := topo.SiteByName(cloud.SiteEastUS)
	producer := core.NewClient(svc, dep.Node(dep.AddNode(weu.ID)))
	consumer := core.NewClient(svc, dep.Node(dep.AddNode(eus.ID)))

	// The producer publishes a task output; the write completes at local
	// latency, the home-site replica propagates lazily.
	if _, err := producer.PublishFile(ctx, "mosaic/tile-17.fits", 4<<20, "task-projection"); err != nil {
		fmt.Println("publish:", err)
		return
	}
	// Flush forces the lazy propagation to converge so the consumer is
	// guaranteed visibility (workflow engines poll instead).
	if err := svc.Flush(ctx); err != nil {
		fmt.Println("flush:", err)
		return
	}

	entry, err := consumer.LocateFile(ctx, "mosaic/tile-17.fits")
	if err != nil {
		fmt.Println("locate:", err)
		return
	}
	fmt.Printf("located %s (%d bytes), produced by %s\n", entry.Name, entry.Size, entry.Producer)

	// The consumer now holds a copy too; record it for later tasks.
	if _, err := consumer.RegisterCopy(ctx, "mosaic/tile-17.fits"); err != nil {
		fmt.Println("register:", err)
		return
	}

	// Failures are typed *core.OpError values wrapping sentinel causes.
	_, err = consumer.LocateFile(ctx, "mosaic/tile-99.fits")
	fmt.Println("missing entry is ErrNotFound:", errors.Is(err, core.ErrNotFound))
	var opErr *core.OpError
	if errors.As(err, &opErr) {
		fmt.Printf("failed op %q from site %d\n", opErr.Op, opErr.Site)
	}

	// Output:
	// located mosaic/tile-17.fits (4194304 bytes), produced by task-projection
	// missing entry is ErrNotFound: true
	// failed op "lookup" from site 3
}
