package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/dht"
)

// Controller is the Architecture Controller of the paper's middleware (§V):
// it allows switching between metadata management strategies at run time,
// as new jobs are executed, without altering the application flow. The
// desired strategy is provided as a parameter and the controller builds (or
// reuses) the corresponding service over a shared fabric.
type Controller struct {
	fabric *Fabric

	// defaults used when instantiating strategies.
	centralHome cloud.SiteID
	agentSite   cloud.SiteID
	placer      dht.Placer
	syncEvery   time.Duration
	lazyFlush   time.Duration
	lazyBatch   int
	feedSync    bool

	mu      sync.Mutex
	current MetadataService
	kind    StrategyKind
	started bool
}

// ControllerOption configures a Controller.
type ControllerOption func(*Controller)

// WithCentralSite sets the datacenter hosting the registry in the
// Centralized strategy (default: the fabric's first site).
func WithCentralSite(site cloud.SiteID) ControllerOption {
	return func(c *Controller) { c.centralHome = site }
}

// WithAgentSite sets the datacenter hosting the synchronization agent of the
// Replicated strategy (default: the fabric's first site).
func WithAgentSite(site cloud.SiteID) ControllerOption {
	return func(c *Controller) { c.agentSite = site }
}

// WithControllerPlacer sets the hashing scheme used by the decentralized
// strategies (default: modulo hashing over the fabric's sites).
func WithControllerPlacer(p dht.Placer) ControllerOption {
	return func(c *Controller) { c.placer = p }
}

// WithControllerSyncInterval sets the replicated strategy's agent period.
func WithControllerSyncInterval(d time.Duration) ControllerOption {
	return func(c *Controller) { c.syncEvery = d }
}

// WithControllerLazy sets the lazy-propagation parameters of the hybrid
// strategy.
func WithControllerLazy(flushInterval time.Duration, maxBatch int) ControllerOption {
	return func(c *Controller) {
		c.lazyFlush = flushInterval
		c.lazyBatch = maxBatch
	}
}

// WithControllerFeedSync makes the eventually consistent strategies converge
// through the fabric's change feeds instead of polling: the replicated
// strategy is built WithFeedSync and the hybrid strategy WithFeedPropagation.
// Requires a fabric built WithChangeFeeds — Use fails with ErrNoFeed
// otherwise. Strategies without a polling agent (centralized, decentralized)
// are unaffected.
func WithControllerFeedSync() ControllerOption {
	return func(c *Controller) { c.feedSync = true }
}

// NewController returns a controller over the given fabric.
func NewController(fabric *Fabric, opts ...ControllerOption) *Controller {
	sites := fabric.Sites()
	c := &Controller{
		fabric:    fabric,
		syncEvery: DefaultSyncInterval,
		lazyFlush: DefaultFlushInterval,
		lazyBatch: DefaultMaxBatch,
	}
	if len(sites) > 0 {
		c.centralHome = sites[0]
		c.agentSite = sites[0]
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Fabric returns the controller's shared fabric.
func (c *Controller) Fabric() *Fabric { return c.fabric }

// Current returns the active service and its strategy. ok is false before
// the first Use call.
func (c *Controller) Current() (MetadataService, StrategyKind, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current, c.kind, c.started
}

// Use switches the controller to the given strategy, closing the previously
// active service (after flushing it under ctx) and returning the new one.
// Switching to the strategy already in use returns the existing service. A
// cancelled context aborts the hand-over flush; the previous service is then
// left in place so no pending updates are lost.
func (c *Controller) Use(ctx context.Context, kind StrategyKind) (MetadataService, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started && c.kind == kind {
		return c.current, nil
	}
	if c.started {
		if err := c.current.Flush(ctx); err != nil && !errors.Is(err, ErrClosed) {
			return nil, fmt.Errorf("controller: flushing %s: %w", c.kind, err)
		}
		if err := c.current.Close(); err != nil {
			return nil, fmt.Errorf("controller: closing %s: %w", c.kind, err)
		}
	}
	svc, err := c.build(kind)
	if err != nil {
		c.started = false
		return nil, err
	}
	c.current, c.kind, c.started = svc, kind, true
	return svc, nil
}

// Close shuts the active service down.
func (c *Controller) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return nil
	}
	c.started = false
	return c.current.Close()
}

func (c *Controller) build(kind StrategyKind) (MetadataService, error) {
	switch kind {
	case Centralized:
		return NewCentralized(c.fabric, c.centralHome)
	case Replicated:
		opts := []ReplicatedOption{WithSyncInterval(c.syncEvery)}
		if c.feedSync {
			opts = append(opts, WithFeedSync())
		}
		return NewReplicated(c.fabric, c.agentSite, opts...)
	case Decentralized:
		return NewDecentralized(c.fabric, c.placer)
	case DecentralizedReplicated:
		opts := []DecReplicatedOption{WithLazyPropagation(c.lazyFlush, c.lazyBatch)}
		if c.feedSync {
			opts = append(opts, WithFeedPropagation())
		}
		if c.placer != nil {
			opts = append(opts, WithPlacer(c.placer))
		}
		return NewDecReplicated(c.fabric, opts...)
	default:
		return nil, fmt.Errorf("controller: unknown strategy %v", kind)
	}
}

// NewService is a convenience helper building a stand-alone service of the
// given kind over the fabric with default parameters (central registry and
// sync agent on the fabric's first site, modulo hashing, lazy propagation).
func NewService(fabric *Fabric, kind StrategyKind) (MetadataService, error) {
	return NewController(fabric).Use(context.Background(), kind)
}
