// Package feed implements the change-feed layer of the metadata tier: every
// committed put/delete of a registry shard is published as a sequenced Event
// into a per-shard Log, and consumers subscribe from a sequence cursor to
// receive first the retained backlog and then the live tail.
//
// The sequence numbers are the resume tokens of the watch protocol. For a
// durable shard they are the WAL sequence numbers themselves
// (store.Durable assigns them under its mutation mutex, so event order is
// exactly log order); for a memory-only shard the Log assigns its own
// consecutive sequence. A consumer that reconnects re-subscribes from the
// last sequence it processed and misses nothing, as long as the cursor still
// falls inside the Log's retained window — when it does not (the ring
// evicted past it, or the shard restarted and the pre-restart backlog is
// gone), Subscribe fails with ErrCompacted and the consumer falls back to
// snapshot+tail: fetch the shard's current state as synthetic put events,
// then tail from the head sequence captured before the snapshot.
//
// A Combiner fans many per-shard subscriptions into one consumer with
// per-source resume cursors, automatic resubscribe with exponential backoff,
// the snapshot fallback above, and breaker-style health propagation
// (consecutive subscribe failures mark a source down until a subscribe
// succeeds again — the same consecutive-failure shape as the registry
// router's shard breaker).
package feed

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"geomds/internal/metrics"
)

// Op is the kind of mutation an Event describes.
type Op uint8

const (
	// OpPut is an upsert: the event's Value is the entry's encoded bytes.
	OpPut Op = 1
	// OpDelete is a removal; Value is nil.
	OpDelete Op = 2
)

// String returns "put" or "delete".
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one committed mutation of a shard.
type Event struct {
	// Seq is the event's sequence number in its Log — the resume token. For
	// durable shards it equals the WAL record's sequence number. Sequences
	// are strictly increasing per Log but may have holes (the WAL journals
	// some records, e.g. deletes of absent keys, that change no state and
	// publish no event).
	Seq uint64
	// Op is the mutation kind.
	Op Op
	// Name is the entry's name (the store key).
	Name string
	// Value is the codec-encoded entry for puts, nil for deletes.
	Value []byte
	// Origin labels where the event was produced when a Log relays events
	// from several underlying feeds (the router's combined feed tags each
	// event with its shard, e.g. "shard-2"); empty on a shard's own feed.
	Origin string
	// Commit is the mutation's commit time in Unix nanoseconds. Relays
	// preserve the original commit time, so replication lag measured at the
	// final consumer spans the whole pipeline.
	Commit int64
	// Sync marks a mutation applied by a bulk replication operation (a
	// Merge or DeleteMany landing a batch from another deployment, or a
	// shard-migration sweep) rather than committed by a primary client
	// write. Feed-driven replication agents skip Sync events — they are the
	// agents' own applies coming back around — while watchers still see
	// them; relays preserve the mark.
	Sync bool
}

// Sentinel errors of the subscription protocol.
var (
	// ErrCompacted means the cursor falls outside the Log's retained window
	// — older than the oldest retained event (evicted, or the shard
	// restarted) or newer than the head (a cursor from a previous
	// incarnation). The consumer must fall back to snapshot+tail.
	ErrCompacted = errors.New("feed: cursor outside the retained window")
	// ErrLagged means the subscriber consumed too slowly and its buffer
	// overflowed; the subscription was dropped without losing Log state, so
	// re-subscribing from the last processed cursor resumes cleanly.
	ErrLagged = errors.New("feed: subscriber lagged and was dropped")
	// ErrClosed means the Log was closed.
	ErrClosed = errors.New("feed: log closed")
)

// DefaultCapacity is the number of recent events a Log retains for resume.
const DefaultCapacity = 4096

// DefaultSubscriberBuffer is the default per-subscription channel buffer.
const DefaultSubscriberBuffer = 256

// LogOption configures NewLog.
type LogOption func(*Log)

// WithCapacity sets how many recent events the Log retains (default
// DefaultCapacity). Values <= 0 keep the default.
func WithCapacity(n int) LogOption {
	return func(l *Log) {
		if n > 0 {
			l.capacity = n
		}
	}
}

// WithLogMetrics makes the Log report feed_events_total and
// feed_subscribers to the registry.
func WithLogMetrics(reg *metrics.Registry) LogOption {
	return func(l *Log) {
		l.events = reg.Counter("feed_events_total")
		l.subscribers = reg.Gauge("feed_subscribers")
	}
}

// Log is one shard's change feed: a bounded ring of recent events plus the
// live subscriber set. Publishing is cheap (append to the ring, one
// non-blocking send per subscriber) and never blocks on a slow consumer —
// a subscriber that cannot keep up is dropped with ErrLagged instead of
// back-pressuring the shard's write path.
//
// A Log is safe for concurrent use.
type Log struct {
	capacity int

	mu     sync.Mutex
	ring   []Event
	start  int    // index of the oldest retained event
	count  int    // retained events
	floor  uint64 // sequence horizon: events with Seq <= floor are gone
	seq    uint64 // last published (or started-at) sequence
	subs   map[*Subscription]struct{}
	closed bool

	events      *metrics.Counter
	subscribers *metrics.Gauge
}

// NewLog returns an empty feed log.
func NewLog(opts ...LogOption) *Log {
	l := &Log{capacity: DefaultCapacity, subs: make(map[*Subscription]struct{})}
	for _, o := range opts {
		o(l)
	}
	l.ring = make([]Event, l.capacity)
	return l
}

// StartAt positions an empty log at the given sequence: a durable shard that
// recovered its WAL to sequence n starts its feed there, so cursors from
// before the restart land below the floor and trigger the snapshot
// fallback instead of silently missing the un-replayable backlog.
func (l *Log) StartAt(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 && seq > l.seq {
		l.seq = seq
		l.floor = seq
	}
}

// Seq returns the sequence number of the last published event (the head).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Floor returns the sequence horizon: cursors below it are compacted.
func (l *Log) Floor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// Append publishes a mutation with the next self-assigned sequence number
// and the current time, returning the assigned sequence. Memory-only shards
// (no WAL to borrow sequences from) publish through it.
func (l *Log) Append(op Op, name string, value []byte) uint64 {
	return l.Publish(Event{Op: op, Name: name, Value: value})
}

// Publish publishes an event. A zero Seq is replaced with the next
// self-assigned sequence; a non-zero Seq (a WAL sequence, or a relay
// preserving holes) must exceed the head and becomes the new head. A zero
// Commit is stamped with the current time. Publish returns the event's
// sequence number; publishing on a closed log returns 0.
func (l *Log) Publish(ev Event) uint64 {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0
	}
	switch {
	case ev.Seq == 0:
		l.seq++
		ev.Seq = l.seq
	case ev.Seq > l.seq:
		l.seq = ev.Seq
	default:
		// A non-monotonic external sequence would corrupt every cursor;
		// refuse it.
		l.mu.Unlock()
		return 0
	}
	if ev.Commit == 0 {
		ev.Commit = time.Now().UnixNano()
	}
	if l.count == l.capacity {
		// Evict the oldest retained event; the floor moves up to it.
		l.floor = l.ring[l.start].Seq
		l.start = (l.start + 1) % l.capacity
		l.count--
	}
	l.ring[(l.start+l.count)%l.capacity] = ev
	l.count++
	var dropped []*Subscription
	for sub := range l.subs {
		if !sub.matches(ev) {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			// The subscriber's buffer is full: drop it rather than block
			// the shard's write path. Its cursor lets it resume.
			dropped = append(dropped, sub)
		}
	}
	for _, sub := range dropped {
		l.dropLocked(sub, ErrLagged)
	}
	l.mu.Unlock()
	l.events.Inc()
	return ev.Seq
}

// dropLocked removes the subscription and closes its channel with the given
// terminal error. Callers hold l.mu, so no Publish can race the close.
func (l *Log) dropLocked(sub *Subscription, err error) {
	if _, ok := l.subs[sub]; !ok {
		return
	}
	delete(l.subs, sub)
	sub.setErr(err)
	close(sub.ch)
	l.subscribers.Add(-1)
}

// Close drops every subscription with ErrClosed and stops the log.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for sub := range l.subs {
		l.dropLocked(sub, ErrClosed)
	}
}

// SubOption configures Subscribe.
type SubOption func(*Subscription)

// WithBuffer sets the subscription's channel buffer (default
// DefaultSubscriberBuffer). The buffer bounds how far the consumer may fall
// behind live publishing before being dropped with ErrLagged.
func WithBuffer(n int) SubOption {
	return func(s *Subscription) {
		if n > 0 {
			s.buffer = n
		}
	}
}

// WithPrefix delivers only events whose Name starts with the prefix.
func WithPrefix(p string) SubOption {
	return func(s *Subscription) { s.prefix = p }
}

// Subscribe registers a consumer resuming from the given cursor: every
// retained event with Seq > from is delivered first (the backlog), then the
// live tail. from = 0 on a fresh log means "everything"; from = Seq() means
// "only new events". It fails with ErrCompacted when the cursor falls
// outside the retained window — the caller then snapshots the shard state
// and re-subscribes from the head sequence captured before the snapshot.
func (l *Log) Subscribe(from uint64, opts ...SubOption) (*Subscription, error) {
	sub := &Subscription{log: l, buffer: DefaultSubscriberBuffer}
	for _, o := range opts {
		o(sub)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if from < l.floor || from > l.seq {
		return nil, ErrCompacted
	}
	var backlog []Event
	for i := 0; i < l.count; i++ {
		ev := l.ring[(l.start+i)%l.capacity]
		if ev.Seq > from && sub.matches(ev) {
			backlog = append(backlog, ev)
		}
	}
	// The channel must hold the whole backlog plus live headroom: the
	// backlog is queued before the subscriber reads anything.
	sub.ch = make(chan Event, len(backlog)+sub.buffer)
	for _, ev := range backlog {
		sub.ch <- ev
	}
	l.subs[sub] = struct{}{}
	l.subscribers.Add(1)
	return sub, nil
}

// Subscription is one consumer's view of a Log. Read Events until it is
// closed, then check Err: nil after Close, ErrLagged after a buffer
// overflow, ErrClosed after the log shut down.
type Subscription struct {
	log    *Log
	ch     chan Event
	buffer int
	prefix string

	mu  sync.Mutex
	err error
}

// Events returns the delivery channel. It is closed when the subscription
// ends for any reason.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Err returns why the subscription ended (nil for a clean Close).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Subscription) setErr(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// matches reports whether the event passes the subscription's filter.
func (s *Subscription) matches(ev Event) bool {
	return s.prefix == "" || (len(ev.Name) >= len(s.prefix) && ev.Name[:len(s.prefix)] == s.prefix)
}

// Close detaches the subscription and closes its channel. Idempotent; safe
// to call concurrently with delivery.
func (s *Subscription) Close() {
	s.log.mu.Lock()
	s.log.dropLocked(s, nil)
	s.log.mu.Unlock()
	// dropLocked decremented the gauge only if the sub was still attached;
	// double Close is a no-op by the membership check inside it.
}
