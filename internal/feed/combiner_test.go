package feed

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"geomds/internal/metrics"
)

// logSource adapts an in-process Log to a combiner Source, with the
// snapshot fallback serving the given state function.
func logSource(name string, l *Log, state func() []Event) Source {
	return Source{
		Name: name,
		Subscribe: func(ctx context.Context, from uint64) (Stream, error) {
			return l.Subscribe(from)
		},
		Snapshot: func(ctx context.Context) ([]Event, uint64, error) {
			head := l.Seq()
			if state == nil {
				return nil, head, nil
			}
			return state(), head, nil
		},
	}
}

func TestCombinerMergesSourcesInOrder(t *testing.T) {
	a, b := NewLog(), NewLog()
	c := NewCombiner([]Source{logSource("a", a, nil), logSource("b", b, nil)})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Close()

	for i := 0; i < 5; i++ {
		a.Append(OpPut, fmt.Sprintf("a%d", i), nil)
		b.Append(OpPut, fmt.Sprintf("b%d", i), nil)
	}
	seen := map[string][]uint64{}
	timeout := time.After(5 * time.Second)
	for n := 0; n < 10; n++ {
		select {
		case ev := <-c.Events():
			seen[ev.Source] = append(seen[ev.Source], ev.Seq)
		case <-timeout:
			t.Fatalf("timed out with %v", seen)
		}
	}
	for _, name := range []string{"a", "b"} {
		seqs := seen[name]
		if len(seqs) != 5 {
			t.Fatalf("source %s delivered %d events", name, len(seqs))
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("source %s out of order: %v", name, seqs)
			}
		}
	}
	if c.Cursor("a") != 5 || c.Cursor("b") != 5 {
		t.Fatalf("cursors = %d, %d", c.Cursor("a"), c.Cursor("b"))
	}
}

func TestCombinerResubscribesAfterStreamLoss(t *testing.T) {
	l := NewLog()
	reg := metrics.NewRegistry()

	var mu sync.Mutex
	var streams []*Subscription
	src := Source{
		Name: "s",
		Subscribe: func(ctx context.Context, from uint64) (Stream, error) {
			sub, err := l.Subscribe(from)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			streams = append(streams, sub)
			mu.Unlock()
			return sub, nil
		},
	}
	c := NewCombiner([]Source{src},
		WithCombinerMetrics(reg),
		WithResubscribeBackoff(time.Millisecond, 10*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Close()

	l.Append(OpPut, "k1", nil)
	l.Append(OpPut, "k2", nil)
	var got []uint64
	timeout := time.After(5 * time.Second)
	next := func() SourceEvent {
		select {
		case ev := <-c.Events():
			return ev
		case <-timeout:
			t.Fatalf("timed out; got %v", got)
			return SourceEvent{}
		}
	}
	got = append(got, next().Seq, next().Seq)

	// Kill the live stream out from under the combiner; it must resume
	// from its cursor with no gap and no duplicate.
	mu.Lock()
	streams[0].Close()
	mu.Unlock()
	l.Append(OpPut, "k3", nil)
	l.Append(OpPut, "k4", nil)
	got = append(got, next().Seq, next().Seq)
	for i, want := range []uint64{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("delivered seqs %v, want 1..4 exactly once", got)
		}
	}
	if reg.Counter("feed_resumes_total").Value() == 0 {
		t.Fatal("resume not counted")
	}
}

func TestCombinerSnapshotFallbackOnCompaction(t *testing.T) {
	l := NewLog(WithCapacity(4))
	reg := metrics.NewRegistry()
	state := func() []Event {
		// The source's current materialized state: one entry.
		return []Event{{Op: OpPut, Name: "live", Value: []byte("v")}}
	}
	for i := 0; i < 32; i++ {
		l.Append(OpPut, "live", []byte("v"))
	}
	// Cursor 1 is long compacted: the combiner must fall back to the
	// snapshot and then tail.
	src := logSource("s", l, state)
	src.From = 1
	c := NewCombiner([]Source{src}, WithCombinerMetrics(reg),
		WithResubscribeBackoff(time.Millisecond, 10*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Close()

	timeout := time.After(5 * time.Second)
	var first SourceEvent
	select {
	case first = <-c.Events():
	case <-timeout:
		t.Fatal("no snapshot event")
	}
	if first.Name != "live" || first.Op != OpPut {
		t.Fatalf("snapshot event = %+v", first.Event)
	}
	if first.Seq != 32 {
		t.Fatalf("snapshot event seq = %d, want head 32", first.Seq)
	}
	// Tail continues after the snapshot head.
	l.Append(OpDelete, "live", nil)
	select {
	case ev := <-c.Events():
		if ev.Seq != 33 || ev.Op != OpDelete {
			t.Fatalf("tail event = %+v", ev.Event)
		}
	case <-timeout:
		t.Fatal("no tail event after fallback")
	}
	if reg.Counter("feed_snapshot_fallbacks_total").Value() != 1 {
		t.Fatalf("feed_snapshot_fallbacks_total = %d", reg.Counter("feed_snapshot_fallbacks_total").Value())
	}
}

func TestCombinerHealthBreaker(t *testing.T) {
	var mu sync.Mutex
	transitions := []bool{}
	fail := true
	l := NewLog()
	src := Source{
		Name: "s",
		Subscribe: func(ctx context.Context, from uint64) (Stream, error) {
			mu.Lock()
			f := fail
			mu.Unlock()
			if f {
				return nil, fmt.Errorf("dial refused")
			}
			return l.Subscribe(from)
		},
	}
	c := NewCombiner([]Source{src},
		WithFailureThreshold(2),
		WithResubscribeBackoff(time.Millisecond, 2*time.Millisecond),
		WithHealthFunc(func(_ string, healthy bool) {
			mu.Lock()
			transitions = append(transitions, healthy)
			mu.Unlock()
		}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for c.Healthy("s") {
		if time.Now().After(deadline) {
			t.Fatal("source never marked down")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	for !c.Healthy("s") {
		if time.Now().After(deadline) {
			t.Fatal("source never recovered")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) < 2 || transitions[0] || !transitions[len(transitions)-1] {
		t.Fatalf("health transitions = %v, want down then up", transitions)
	}
}

func TestCombinerCancelledMidEventDeliversAtMostOnce(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 20; i++ {
		l.Append(OpPut, fmt.Sprintf("k%d", i), nil)
	}
	// A tiny output buffer forces the combiner to block mid-stream when
	// the consumer stops reading.
	c := NewCombiner([]Source{logSource("s", l, nil)}, WithCombinerBuffer(1))
	ctx, cancel := context.WithCancel(context.Background())
	c.Start(ctx)

	// Consume a few events, then cancel while the combiner is blocked on
	// the next send.
	var delivered []uint64
	for i := 0; i < 5; i++ {
		ev := <-c.Events()
		delivered = append(delivered, ev.Seq)
	}
	cancel()
	c.Close()
	for ev := range c.Events() { // drain whatever was already buffered
		delivered = append(delivered, ev.Seq)
	}
	cursor := c.Cursor("s")

	// Resume a fresh combiner from the recorded cursor: the union of the
	// two runs must cover 1..20 exactly once.
	c2 := NewCombiner([]Source{{
		Name:      "s",
		From:      cursor,
		Subscribe: func(ctx context.Context, from uint64) (Stream, error) { return l.Subscribe(from) },
	}})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	c2.Start(ctx2)
	defer c2.Close()
	timeout := time.After(5 * time.Second)
	for len(delivered) < 20 {
		select {
		case ev := <-c2.Events():
			delivered = append(delivered, ev.Seq)
		case <-timeout:
			t.Fatalf("timed out; delivered %v", delivered)
		}
	}
	seen := map[uint64]int{}
	for _, s := range delivered {
		seen[s]++
	}
	for i := uint64(1); i <= 20; i++ {
		if seen[i] != 1 {
			t.Fatalf("seq %d delivered %d times (delivered %v)", i, seen[i], delivered)
		}
	}
}
