package feed

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"geomds/internal/metrics"
)

func collect(t *testing.T, sub *Subscription, n int) []Event {
	t.Helper()
	out := make([]Event, 0, n)
	timeout := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("subscription ended early (%v) after %d/%d events", sub.Err(), len(out), n)
			}
			out = append(out, ev)
		case <-timeout:
			t.Fatalf("timed out after %d/%d events", len(out), n)
		}
	}
	return out
}

func TestLogAppendAssignsSequence(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 5; i++ {
		if got := l.Append(OpPut, fmt.Sprintf("k%d", i), []byte("v")); got != uint64(i) {
			t.Fatalf("append %d: seq = %d", i, got)
		}
	}
	if l.Seq() != 5 {
		t.Fatalf("head = %d, want 5", l.Seq())
	}
}

func TestLogPublishExternalSequence(t *testing.T) {
	l := NewLog()
	// WAL sequences may skip records that publish no event.
	for _, seq := range []uint64{3, 4, 7} {
		if got := l.Publish(Event{Seq: seq, Op: OpPut, Name: "k"}); got != seq {
			t.Fatalf("publish seq %d returned %d", seq, got)
		}
	}
	// Non-monotonic external sequences are refused.
	if got := l.Publish(Event{Seq: 5, Op: OpPut, Name: "k"}); got != 0 {
		t.Fatalf("non-monotonic publish accepted, seq %d", got)
	}
	if l.Seq() != 7 {
		t.Fatalf("head = %d, want 7", l.Seq())
	}
}

func TestSubscribeReplaysBacklogThenTails(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(OpPut, fmt.Sprintf("k%d", i), nil)
	}
	sub, err := l.Subscribe(4)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	l.Append(OpDelete, "k0", nil)
	got := collect(t, sub, 7)
	for i, ev := range got {
		if ev.Seq != uint64(5+i) {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, 5+i)
		}
	}
	if got[6].Op != OpDelete {
		t.Fatalf("tail event op = %v", got[6].Op)
	}
}

func TestSubscribeCursorOutsideWindow(t *testing.T) {
	l := NewLog(WithCapacity(4))
	for i := 0; i < 10; i++ {
		l.Append(OpPut, "k", nil)
	}
	// Events 1..6 were evicted; cursor 2 is compacted.
	if _, err := l.Subscribe(2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("stale cursor: err = %v, want ErrCompacted", err)
	}
	// A cursor beyond the head (from another incarnation) is invalid too.
	if _, err := l.Subscribe(99); !errors.Is(err, ErrCompacted) {
		t.Fatalf("future cursor: err = %v, want ErrCompacted", err)
	}
	// The newest retained window resumes fine.
	sub, err := l.Subscribe(6)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	got := collect(t, sub, 4)
	if got[0].Seq != 7 || got[3].Seq != 10 {
		t.Fatalf("window replay = %d..%d, want 7..10", got[0].Seq, got[3].Seq)
	}
}

func TestStartAtSetsFloor(t *testing.T) {
	l := NewLog()
	l.StartAt(100) // a shard recovered its WAL to seq 100
	if _, err := l.Subscribe(50); !errors.Is(err, ErrCompacted) {
		t.Fatalf("pre-restart cursor: err = %v, want ErrCompacted", err)
	}
	sub, err := l.Subscribe(100)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if seq := l.Publish(Event{Seq: 101, Op: OpPut, Name: "k"}); seq != 101 {
		t.Fatalf("publish after StartAt: seq %d", seq)
	}
	if got := collect(t, sub, 1); got[0].Seq != 101 {
		t.Fatalf("tail seq = %d", got[0].Seq)
	}
}

func TestSlowSubscriberDroppedWithLagged(t *testing.T) {
	l := NewLog()
	sub, err := l.Subscribe(0, WithBuffer(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append(OpPut, "k", nil)
	}
	// Drain what arrived before the drop, then observe the closed channel.
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("delivered %d events before drop, want 2", n)
	}
	if !errors.Is(sub.Err(), ErrLagged) {
		t.Fatalf("err = %v, want ErrLagged", sub.Err())
	}
	// The log itself lost nothing: resume from the last delivered cursor.
	resumed, err := l.Subscribe(2)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	got := collect(t, resumed, 3)
	if got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("resume replay = %d..%d, want 3..5", got[0].Seq, got[2].Seq)
	}
}

func TestPrefixFilter(t *testing.T) {
	l := NewLog()
	l.Append(OpPut, "a/1", nil)
	l.Append(OpPut, "b/1", nil)
	l.Append(OpPut, "a/2", nil)
	sub, err := l.Subscribe(0, WithPrefix("a/"))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	got := collect(t, sub, 2)
	if got[0].Name != "a/1" || got[1].Name != "a/2" {
		t.Fatalf("filtered names = %q, %q", got[0].Name, got[1].Name)
	}
}

func TestLogCloseEndsSubscriptions(t *testing.T) {
	l := NewLog()
	sub, err := l.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, ok := <-sub.Events(); ok {
		t.Fatal("events channel still open after log close")
	}
	if !errors.Is(sub.Err(), ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", sub.Err())
	}
	if _, err := l.Subscribe(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after close: err = %v", err)
	}
	if seq := l.Append(OpPut, "k", nil); seq != 0 {
		t.Fatalf("publish after close returned seq %d", seq)
	}
}

func TestSubscriptionCloseIdempotent(t *testing.T) {
	l := NewLog()
	sub, err := l.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close()
	if sub.Err() != nil {
		t.Fatalf("clean close err = %v", sub.Err())
	}
	l.Append(OpPut, "k", nil) // must not panic on the closed channel
}

func TestLogMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	l := NewLog(WithLogMetrics(reg))
	sub, _ := l.Subscribe(0)
	l.Append(OpPut, "k", nil)
	if got := reg.Counter("feed_events_total").Value(); got != 1 {
		t.Fatalf("feed_events_total = %d", got)
	}
	if got := reg.Gauge("feed_subscribers").Value(); got != 1 {
		t.Fatalf("feed_subscribers = %d", got)
	}
	sub.Close()
	if got := reg.Gauge("feed_subscribers").Value(); got != 0 {
		t.Fatalf("feed_subscribers after close = %d", got)
	}
}
