package feed

import (
	"context"
	"errors"
	"sync"
	"time"

	"geomds/internal/metrics"
)

// Stream is one live subscription a Combiner consumes: a channel of events
// that closes when the subscription ends, a terminal error explaining why,
// and a Close to detach early. *Subscription implements it for in-process
// logs; the RPC client's watch stream implements it for remote shards.
type Stream interface {
	Events() <-chan Event
	Err() error
	Close()
}

// Source is one feed a Combiner subscribes to.
type Source struct {
	// Name labels the source in output events, cursors and health callbacks
	// (e.g. "site-2" or "shard-1").
	Name string
	// From is the initial resume cursor (0 = from the beginning).
	From uint64
	// Subscribe opens a stream resuming after the cursor. It must fail with
	// (or wrap) ErrCompacted when the cursor predates the source's retained
	// window, which routes the combiner into the snapshot fallback.
	Subscribe func(ctx context.Context, from uint64) (Stream, error)
	// Snapshot returns the source's current state as synthetic put events
	// plus the head sequence *captured before assembling the state*, so
	// that tailing from the returned head misses nothing (mutations racing
	// the snapshot may be delivered twice — once inside the state, once
	// from the tail — which is safe because puts are idempotent upserts).
	// A nil Snapshot disables the fallback: a compacted cursor then counts
	// as a subscribe failure and is retried with backoff.
	Snapshot func(ctx context.Context) ([]Event, uint64, error)
}

// SourceEvent is one event tagged with the source that produced it.
type SourceEvent struct {
	Source string
	Event
}

// Combiner defaults.
const (
	DefaultResubscribeBackoff    = 50 * time.Millisecond
	DefaultResubscribeBackoffMax = 2 * time.Second
	DefaultFailureThreshold      = 3
)

// CombinerOption configures NewCombiner.
type CombinerOption func(*Combiner)

// WithCombinerMetrics reports feed_resumes_total and
// feed_snapshot_fallbacks_total to the registry.
func WithCombinerMetrics(reg *metrics.Registry) CombinerOption {
	return func(c *Combiner) {
		c.resumes = reg.Counter("feed_resumes_total")
		c.fallbacks = reg.Counter("feed_snapshot_fallbacks_total")
	}
}

// WithResubscribeBackoff sets the initial and maximum delay between failed
// subscribe attempts (exponential in between).
func WithResubscribeBackoff(initial, max time.Duration) CombinerOption {
	return func(c *Combiner) {
		if initial > 0 {
			c.backoff = initial
		}
		if max >= initial && max > 0 {
			c.backoffMax = max
		}
	}
}

// WithFailureThreshold sets how many consecutive subscribe failures mark a
// source unhealthy (default DefaultFailureThreshold — the same shape as the
// shard router's breaker).
func WithFailureThreshold(n int) CombinerOption {
	return func(c *Combiner) {
		if n > 0 {
			c.threshold = n
		}
	}
}

// WithHealthFunc installs a callback invoked (from the source's goroutine)
// when a source crosses the failure threshold (healthy=false) and when it
// successfully resubscribes afterwards (healthy=true).
func WithHealthFunc(fn func(source string, healthy bool)) CombinerOption {
	return func(c *Combiner) { c.health = fn }
}

// WithStreamStateFunc installs a callback invoked (from the source's
// goroutine) on every stream transition: connected=true after each successful
// subscribe (including the snapshot fallback), connected=false the moment a
// live stream ends — lag drop, compaction, shard restart, transport loss —
// before the resubscribe loop starts its backoff. Unlike WithHealthFunc,
// which only fires at the failure threshold, this reports every gap in
// delivery; the near cache uses it to flush and serve through while a gap is
// open, because events published inside the gap were never delivered.
func WithStreamStateFunc(fn func(source string, connected bool)) CombinerOption {
	return func(c *Combiner) { c.streamState = fn }
}

// WithCombinerBuffer sets the output channel's buffer (default 64).
func WithCombinerBuffer(n int) CombinerOption {
	return func(c *Combiner) {
		if n > 0 {
			c.outBuf = n
		}
	}
}

// Combiner fans many per-shard (or per-site) feed subscriptions into one
// consumer channel. Per-source event order is preserved; events of different
// sources interleave arbitrarily. Each source keeps its own resume cursor,
// advanced only after the event has been handed to the consumer, so a
// consumer cancelled mid-event sees every event at most once and a
// reconnect resumes with no gaps: exactly-once delivery to the output
// channel as long as cursors stay inside the sources' retained windows, and
// at-least-once (via the snapshot fallback) beyond that.
type Combiner struct {
	sources     []Source
	backoff     time.Duration
	backoffMax  time.Duration
	threshold   int
	outBuf      int
	health      func(string, bool)
	streamState func(string, bool)

	resumes   *metrics.Counter
	fallbacks *metrics.Counter

	out    chan SourceEvent
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	cursors map[string]uint64
	down    map[string]bool
	started bool
}

// NewCombiner returns a combiner over the given sources; call Start to
// begin consuming.
func NewCombiner(sources []Source, opts ...CombinerOption) *Combiner {
	c := &Combiner{
		sources:    sources,
		backoff:    DefaultResubscribeBackoff,
		backoffMax: DefaultResubscribeBackoffMax,
		threshold:  DefaultFailureThreshold,
		outBuf:     64,
		cursors:    make(map[string]uint64, len(sources)),
		down:       make(map[string]bool, len(sources)),
	}
	for _, o := range opts {
		o(c)
	}
	c.out = make(chan SourceEvent, c.outBuf)
	for _, src := range sources {
		c.cursors[src.Name] = src.From
	}
	return c
}

// Events returns the combined output channel. It closes after Close (or the
// Start context's cancellation) once every source goroutine has drained.
func (c *Combiner) Events() <-chan SourceEvent { return c.out }

// Cursor returns the source's resume cursor: the sequence number of the
// last event delivered to the output channel.
func (c *Combiner) Cursor(source string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cursors[source]
}

// Healthy reports whether the source is currently below the failure
// threshold.
func (c *Combiner) Healthy(source string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.down[source]
}

// Start launches one consuming goroutine per source. The combiner stops
// when ctx is cancelled or Close is called.
func (c *Combiner) Start(ctx context.Context) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	ctx, c.cancel = context.WithCancel(ctx)
	c.wg.Add(len(c.sources))
	for _, src := range c.sources {
		go c.run(ctx, src)
	}
	go func() {
		c.wg.Wait()
		close(c.out)
	}()
}

// Close stops every source goroutine; Events closes once they drain.
func (c *Combiner) Close() {
	c.mu.Lock()
	cancel := c.cancel
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	c.wg.Wait()
}

// run is one source's subscribe/consume/resubscribe loop.
func (c *Combiner) run(ctx context.Context, src Source) {
	defer c.wg.Done()
	backoff := c.backoff
	failures := 0
	first := true
	for ctx.Err() == nil {
		cursor := c.Cursor(src.Name)
		st, err := src.Subscribe(ctx, cursor)
		if err != nil && errors.Is(err, ErrCompacted) && src.Snapshot != nil {
			// The cursor fell out of the retained window: rebuild from a
			// state snapshot, then tail from the head captured before it.
			st, err = c.fallback(ctx, src)
		}
		if err != nil {
			failures++
			if failures == c.threshold {
				c.setDown(src.Name, true)
			}
			if !sleep(ctx, backoff) {
				return
			}
			if backoff *= 2; backoff > c.backoffMax {
				backoff = c.backoffMax
			}
			continue
		}
		if failures >= c.threshold {
			c.setDown(src.Name, false)
		}
		failures = 0
		backoff = c.backoff
		if !first {
			c.resumes.Inc()
		}
		first = false
		if c.streamState != nil {
			c.streamState(src.Name, true)
		}
	consume:
		for {
			select {
			case ev, ok := <-st.Events():
				if !ok {
					// The stream ended (lag, shard restart, transport
					// loss); loop to resubscribe from the cursor.
					if c.streamState != nil {
						c.streamState(src.Name, false)
					}
					break consume
				}
				select {
				case c.out <- SourceEvent{Source: src.Name, Event: ev}:
					c.setCursor(src.Name, ev.Seq)
				case <-ctx.Done():
					// Cancelled mid-event: the cursor was not advanced, so
					// the undelivered event is replayed on the next resume
					// — and everything already delivered is behind the
					// cursor, so nothing is re-queued twice.
					st.Close()
					return
				}
			case <-ctx.Done():
				st.Close()
				return
			}
		}
	}
}

// fallback snapshots the source and returns the tail stream from the
// snapshot's head sequence, queueing the state itself as put events.
func (c *Combiner) fallback(ctx context.Context, src Source) (Stream, error) {
	events, head, err := src.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	st, err := src.Subscribe(ctx, head)
	if err != nil {
		return nil, err
	}
	c.fallbacks.Inc()
	for _, ev := range events {
		if ev.Seq == 0 {
			ev.Seq = head
		}
		select {
		case c.out <- SourceEvent{Source: src.Name, Event: ev}:
		case <-ctx.Done():
			st.Close()
			return nil, ctx.Err()
		}
	}
	c.setCursor(src.Name, head)
	return st, nil
}

func (c *Combiner) setCursor(source string, seq uint64) {
	c.mu.Lock()
	if seq > c.cursors[source] {
		c.cursors[source] = seq
	}
	c.mu.Unlock()
}

func (c *Combiner) setDown(source string, down bool) {
	c.mu.Lock()
	c.down[source] = down
	c.mu.Unlock()
	if c.health != nil {
		c.health(source, !down)
	}
}

// sleep waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
