// Package latency injects wide-area network latency into in-process
// multi-site experiments.
//
// The paper's evaluation runs on four real Azure datacenters connected by
// WANs; this repository reproduces the experiments on a single machine by
// sleeping for the time a message would have spent on the wire. A global
// Scale factor shrinks every injected delay by the same ratio so that an
// experiment representing tens of minutes of datacenter time completes in
// seconds while preserving the local / same-region / geo-distant hierarchy
// that drives every result. Measured wall-clock durations are converted back
// to "simulated" time with Model.ToSimulated.
package latency

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"geomds/internal/cloud"
)

// spinThreshold is the longest delay waited by spinning instead of by
// time.Sleep. Timer granularity on common kernels makes very short sleeps
// overshoot by hundreds of microseconds, which would systematically inflate
// scaled intra-datacenter latencies (and with them every "local is cheap"
// result); spinning keeps those short waits accurate at negligible CPU cost
// because they are, by construction, short.
const spinThreshold = 300 * time.Microsecond

// PreciseSleep waits for d with sub-millisecond fidelity: short waits spin
// (yielding the processor between polls), longer waits sleep for the bulk of
// the duration and spin the remainder.
func PreciseSleep(d time.Duration) {
	PreciseSleepContext(context.Background(), d) //nolint:errcheck // Background never cancels
}

// PreciseSleepContext waits like PreciseSleep but returns early — with the
// context's error — when ctx is cancelled or its deadline passes. The bulk of
// a long wait blocks on a timer racing ctx.Done(), so a cancelled caller
// (a client that gave up, a closing service) is unblocked immediately instead
// of serving out a modelled WAN delay it no longer cares about.
func PreciseSleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	start := time.Now()
	if d > spinThreshold {
		timer := time.NewTimer(d - spinThreshold)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
	for time.Since(start) < d {
		if err := ctx.Err(); err != nil {
			return err
		}
		runtime.Gosched()
	}
	return ctx.Err()
}

// Model converts message exchanges between sites into injected delays.
// A Model is safe for concurrent use.
type Model struct {
	topo *cloud.Topology

	// scale multiplies every injected delay; 1.0 injects real WAN latencies,
	// 0.01 makes the experiment run 100x faster while preserving ratios.
	scale float64

	// sleep, when non-nil, replaces the default context-aware precise sleep;
	// tests use it to capture requested delays without waiting. A custom
	// sleeper is not interruptible — the model checks the context before and
	// after invoking it instead.
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand

	// accounting of injected (unscaled) delay, per distance class.
	injected [3]time.Duration
	messages [3]int64
}

// Option configures a Model.
type Option func(*Model)

// WithScale sets the time-compression factor applied to every injected
// delay. scale must be positive; 1.0 means real time.
func WithScale(scale float64) Option {
	return func(m *Model) {
		if scale > 0 {
			m.scale = scale
		}
	}
}

// WithSeed seeds the jitter generator, making delay sequences reproducible.
func WithSeed(seed int64) Option {
	return func(m *Model) { m.rng = rand.New(rand.NewSource(seed)) }
}

// WithSleeper replaces the sleeping function; tests use it to capture the
// requested delays without actually waiting.
func WithSleeper(sleep func(time.Duration)) Option {
	return func(m *Model) { m.sleep = sleep }
}

// New returns a latency model over the given topology. The default scale is
// 1.0 (real time) and the default jitter seed is 1.
func New(topo *cloud.Topology, opts ...Option) *Model {
	m := &Model{
		topo:  topo,
		scale: 1.0,
		rng:   rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Scale returns the configured time-compression factor.
func (m *Model) Scale() float64 { return m.scale }

// Topology returns the topology the model injects latencies for.
func (m *Model) Topology() *cloud.Topology { return m.topo }

// OneWay computes the unscaled one-way delay for a message of size bytes
// travelling from site a to site b, including jitter and the bandwidth term.
func (m *Model) OneWay(a, b cloud.SiteID, bytes int) time.Duration {
	link := m.topo.Link(a, b)
	d := link.RTT / 2
	d += m.jitter(link.Jitter)
	d += transferTime(link, bytes)
	if d < 0 {
		d = 0
	}
	return d
}

// RoundTrip computes the unscaled request/response delay for a message of
// reqBytes with a reply of respBytes between sites a and b.
func (m *Model) RoundTrip(a, b cloud.SiteID, reqBytes, respBytes int) time.Duration {
	link := m.topo.Link(a, b)
	d := link.RTT
	d += m.jitter(link.Jitter)
	d += transferTime(link, reqBytes) + transferTime(link, respBytes)
	if d < 0 {
		d = 0
	}
	return d
}

// InjectOneWay sleeps for the scaled one-way delay of a message from a to b
// and returns the unscaled delay that was modelled. A cancelled context cuts
// the wait short and is reported as the returned error; the delay is still
// accounted in full (the message was sent — the caller just stopped waiting).
func (m *Model) InjectOneWay(ctx context.Context, a, b cloud.SiteID, bytes int) (time.Duration, error) {
	d := m.OneWay(a, b, bytes)
	m.account(a, b, d)
	return d, m.wait(ctx, m.scaled(d))
}

// InjectRoundTrip sleeps for the scaled round-trip delay of a request from a
// to b and back, returning the unscaled modelled delay. A cancelled context
// cuts the wait short (see InjectOneWay).
func (m *Model) InjectRoundTrip(ctx context.Context, a, b cloud.SiteID, reqBytes, respBytes int) (time.Duration, error) {
	d := m.RoundTrip(a, b, reqBytes, respBytes)
	m.account(a, b, d)
	return d, m.wait(ctx, m.scaled(d))
}

// InjectDuration sleeps for an arbitrary unscaled duration (e.g. a task's
// compute time), applying the model's scale factor. A cancelled context cuts
// the wait short and is reported as the returned error.
func (m *Model) InjectDuration(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	return m.wait(ctx, m.scaled(d))
}

// Sleeper returns a plain, context-free sleep function applying the model's
// scale factor; components that cannot thread a context (e.g. the simulated
// cache tier's service times) use it.
func (m *Model) Sleeper() func(time.Duration) {
	return func(d time.Duration) { m.InjectDuration(context.Background(), d) } //nolint:errcheck
}

// wait blocks for the (already scaled) duration d, honouring cancellation.
func (m *Model) wait(ctx context.Context, d time.Duration) error {
	if m.sleep != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		m.sleep(d)
		return ctx.Err()
	}
	return PreciseSleepContext(ctx, d)
}

// ToSimulated converts a measured wall-clock duration back into simulated
// (paper-scale) time by dividing out the scale factor.
func (m *Model) ToSimulated(wall time.Duration) time.Duration {
	return time.Duration(float64(wall) / m.scale)
}

// ToWall converts a simulated duration into the wall-clock time it will take
// under the configured scale.
func (m *Model) ToWall(sim time.Duration) time.Duration {
	return time.Duration(float64(sim) * m.scale)
}

// Stats reports, per distance class, the number of messages injected and the
// total unscaled delay modelled for them.
func (m *Model) Stats() map[cloud.Distance]LinkStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[cloud.Distance]LinkStats, 3)
	for d := cloud.Local; d <= cloud.GeoDistant; d++ {
		out[d] = LinkStats{Messages: m.messages[d], Injected: m.injected[d]}
	}
	return out
}

// LinkStats aggregates injection accounting for one distance class.
type LinkStats struct {
	// Messages is the number of message exchanges injected.
	Messages int64
	// Injected is the total unscaled delay modelled for those messages.
	Injected time.Duration
}

func (m *Model) scaled(d time.Duration) time.Duration {
	return time.Duration(float64(d) * m.scale)
}

func (m *Model) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Uniform in [-max/2, +max/2] so that the mean delay stays at RTT.
	return time.Duration(m.rng.Int63n(int64(max))) - max/2
}

func (m *Model) account(a, b cloud.SiteID, d time.Duration) {
	class := m.topo.DistanceClass(a, b)
	m.mu.Lock()
	m.messages[class]++
	m.injected[class] += d
	m.mu.Unlock()
}

// transferTime converts a message size into time on the wire given the
// link's sustained bandwidth. Zero-bandwidth links add no transfer time
// (latency-only model).
func transferTime(link cloud.Link, bytes int) time.Duration {
	if link.BandwidthMBps <= 0 || bytes <= 0 {
		return 0
	}
	seconds := float64(bytes) / (link.BandwidthMBps * 1e6)
	return time.Duration(seconds * float64(time.Second))
}
