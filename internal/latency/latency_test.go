package latency

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"geomds/internal/cloud"
)

// recordingSleeper captures requested sleep durations instead of waiting.
type recordingSleeper struct {
	slept []time.Duration
}

func (r *recordingSleeper) sleep(d time.Duration) { r.slept = append(r.slept, d) }

func newTestModel(opts ...Option) (*Model, *recordingSleeper) {
	rec := &recordingSleeper{}
	base := []Option{WithSeed(7), WithSleeper(rec.sleep)}
	return New(cloud.Azure4DC(), append(base, opts...)...), rec
}

func TestOneWayHierarchy(t *testing.T) {
	m, _ := newTestModel()
	topo := m.Topology()
	weu, _ := topo.SiteByName(cloud.SiteWestEU)
	neu, _ := topo.SiteByName(cloud.SiteNorthEU)
	scus, _ := topo.SiteByName(cloud.SiteSouthCentralUS)

	local := m.OneWay(weu.ID, weu.ID, 0)
	regional := m.OneWay(weu.ID, neu.ID, 0)
	wan := m.OneWay(weu.ID, scus.ID, 0)
	if !(local < regional && regional < wan) {
		t.Errorf("latency hierarchy violated: local=%v regional=%v wan=%v", local, regional, wan)
	}
}

func TestRoundTripAtLeastRTTMinusJitter(t *testing.T) {
	m, _ := newTestModel()
	topo := m.Topology()
	weu, _ := topo.SiteByName(cloud.SiteWestEU)
	eus, _ := topo.SiteByName(cloud.SiteEastUS)
	link := topo.Link(weu.ID, eus.ID)
	for i := 0; i < 100; i++ {
		rt := m.RoundTrip(weu.ID, eus.ID, 0, 0)
		if rt < link.RTT-link.Jitter || rt > link.RTT+link.Jitter {
			t.Fatalf("round trip %v outside [RTT-jitter, RTT+jitter] = [%v, %v]", rt, link.RTT-link.Jitter, link.RTT+link.Jitter)
		}
	}
}

func TestBandwidthTermGrowsWithSize(t *testing.T) {
	m, _ := newTestModel(WithSeed(3))
	small := m.OneWay(0, 2, 1<<10)
	large := m.OneWay(0, 2, 64<<20)
	if large <= small {
		t.Errorf("64MB transfer (%v) should take longer than 1KB (%v)", large, small)
	}
}

func TestInjectAppliesScale(t *testing.T) {
	m, rec := newTestModel(WithScale(0.5))
	d, err := m.InjectRoundTrip(context.Background(), 0, 2, 0, 0)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	if len(rec.slept) != 1 {
		t.Fatalf("expected 1 sleep, got %d", len(rec.slept))
	}
	want := time.Duration(float64(d) * 0.5)
	got := rec.slept[0]
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Errorf("slept %v, want about %v", got, want)
	}
}

func TestInjectDuration(t *testing.T) {
	ctx := context.Background()
	m, rec := newTestModel(WithScale(0.1))
	if err := m.InjectDuration(ctx, 10*time.Second); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if len(rec.slept) != 1 {
		t.Fatalf("expected 1 sleep, got %d", len(rec.slept))
	}
	if rec.slept[0] != time.Second {
		t.Errorf("slept %v, want 1s", rec.slept[0])
	}
	m.InjectDuration(ctx, 0)
	m.InjectDuration(ctx, -time.Second)
	if len(rec.slept) != 1 {
		t.Error("non-positive durations should not sleep")
	}
}

func TestInjectHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, rec := newTestModel()
	if err := m.InjectDuration(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Errorf("InjectDuration error = %v, want context.Canceled", err)
	}
	if len(rec.slept) != 0 {
		t.Errorf("cancelled inject slept %v, want no sleep", rec.slept)
	}
	if _, err := m.InjectRoundTrip(ctx, 0, 2, 0, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("InjectRoundTrip error = %v, want context.Canceled", err)
	}
	// The exchange is still accounted: the message was modelled as sent.
	if m.Stats()[cloud.GeoDistant].Messages+m.Stats()[cloud.SameRegion].Messages+m.Stats()[cloud.Local].Messages != 1 {
		t.Error("cancelled round trip should still be accounted")
	}
}

func TestPreciseSleepContextUnblocksOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := PreciseSleepContext(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sleep not interrupted: took %v", elapsed)
	}
}

func TestToSimulatedRoundTripsToWall(t *testing.T) {
	m, _ := newTestModel(WithScale(0.02))
	sim := 500 * time.Second
	wall := m.ToWall(sim)
	back := m.ToSimulated(wall)
	if back < sim-time.Millisecond || back > sim+time.Millisecond {
		t.Errorf("ToSimulated(ToWall(%v)) = %v", sim, back)
	}
}

func TestWithScaleRejectsNonPositive(t *testing.T) {
	m, _ := newTestModel(WithScale(-3))
	if m.Scale() != 1.0 {
		t.Errorf("negative scale should be ignored, got %v", m.Scale())
	}
	m2, _ := newTestModel(WithScale(0))
	if m2.Scale() != 1.0 {
		t.Errorf("zero scale should be ignored, got %v", m2.Scale())
	}
}

func TestStatsAccounting(t *testing.T) {
	m, _ := newTestModel()
	topo := m.Topology()
	weu, _ := topo.SiteByName(cloud.SiteWestEU)
	neu, _ := topo.SiteByName(cloud.SiteNorthEU)
	scus, _ := topo.SiteByName(cloud.SiteSouthCentralUS)

	ctx := context.Background()
	m.InjectRoundTrip(ctx, weu.ID, weu.ID, 0, 0)
	m.InjectRoundTrip(ctx, weu.ID, neu.ID, 0, 0)
	m.InjectRoundTrip(ctx, weu.ID, neu.ID, 0, 0)
	m.InjectOneWay(ctx, weu.ID, scus.ID, 0)

	stats := m.Stats()
	if stats[cloud.Local].Messages != 1 {
		t.Errorf("local messages = %d, want 1", stats[cloud.Local].Messages)
	}
	if stats[cloud.SameRegion].Messages != 2 {
		t.Errorf("same-region messages = %d, want 2", stats[cloud.SameRegion].Messages)
	}
	if stats[cloud.GeoDistant].Messages != 1 {
		t.Errorf("geo-distant messages = %d, want 1", stats[cloud.GeoDistant].Messages)
	}
	if stats[cloud.GeoDistant].Injected <= stats[cloud.Local].Injected {
		t.Error("geo-distant injected time should exceed local injected time")
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a, _ := newTestModel(WithSeed(42))
	b, _ := newTestModel(WithSeed(42))
	for i := 0; i < 50; i++ {
		da := a.RoundTrip(0, 3, 128, 128)
		db := b.RoundTrip(0, 3, 128, 128)
		if da != db {
			t.Fatalf("iteration %d: %v != %v with same seed", i, da, db)
		}
	}
}

// Property: one-way delays are never negative and grow monotonically with the
// message size for any pair of sites.
func TestOneWayProperties(t *testing.T) {
	m, _ := newTestModel(WithSeed(11))
	n := m.Topology().NumSites()
	f := func(aRaw, bRaw uint8, size uint16) bool {
		a := cloud.SiteID(int(aRaw) % n)
		b := cloud.SiteID(int(bRaw) % n)
		small := m.OneWay(a, b, int(size))
		big := m.OneWay(a, b, int(size)+1<<20)
		return small >= 0 && big >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: round-trip modelled delay is always at least as large as the
// deterministic part of the one-way delay (RTT/2 - jitter).
func TestRoundTripLowerBoundProperty(t *testing.T) {
	m, _ := newTestModel(WithSeed(13))
	topo := m.Topology()
	n := topo.NumSites()
	f := func(aRaw, bRaw uint8) bool {
		a := cloud.SiteID(int(aRaw) % n)
		b := cloud.SiteID(int(bRaw) % n)
		link := topo.Link(a, b)
		rt := m.RoundTrip(a, b, 0, 0)
		return rt >= link.RTT-link.Jitter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
