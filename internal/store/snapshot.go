package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"geomds/internal/memcache"
)

// Snapshot file format. A snapshot is the complete key/value state as of
// one sequence number, so recovery can skip every log record at or below
// it. The file is
//
//	8-byte magic | u64 snapshot sequence number | frames...
//
// with the same u32-length/u32-CRC framing as the WAL. Each frame payload
// starts with a kind byte: kind 1 is one key/value pair
// (u32 key length | key | u32 value length | value), kind 2 is the footer
// (u64 record count), which must be the file's last frame. A snapshot
// missing its footer — a crash mid-write, though the write-to-temp-and-rename
// protocol makes that window tiny — is invalid as a whole and recovery
// falls back to an older snapshot (or none) plus a longer log replay.
//
// Snapshots are written to a temporary name that the discovery glob does
// not match, fsynced, then renamed into place; old segments and snapshots
// are deleted only after the new snapshot and the rename are durable.

const (
	snapMagic = "GMDSSNP1"

	snapKindKV     = byte(1)
	snapKindFooter = byte(2)
)

func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.db", seq) }

// listSnapshots returns the directory's snapshots, newest first.
func listSnapshots(dir string) ([]segment, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "snap-*.db"))
	if err != nil {
		return nil, err
	}
	snaps := make([]segment, 0, len(matches))
	for _, m := range matches {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(m), "snap-%016x.db", &seq); err != nil {
			continue
		}
		snaps = append(snaps, segment{path: m, first: seq})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].first > snaps[j].first })
	return snaps, nil
}

// loadSnapshot decodes and validates one snapshot file in full. Any damage
// — bad magic, checksum failure, missing or mismatched footer, trailing
// frames — invalidates the whole file.
func loadSnapshot(path string) ([]memcache.KV, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading snapshot %s: %w", path, err)
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("store: snapshot %s has bad header: %w", path, ErrCorrupt)
	}
	seq := binary.BigEndian.Uint64(data[len(snapMagic):])
	off := len(snapMagic) + 8
	var kvs []memcache.KV
	sawFooter := false
	for off < len(data) {
		if sawFooter {
			return nil, 0, fmt.Errorf("store: snapshot %s has frames after its footer: %w", path, ErrCorrupt)
		}
		if off+frameHeaderLen > len(data) {
			return nil, 0, fmt.Errorf("store: snapshot %s truncated at offset %d: %w", path, off, ErrCorrupt)
		}
		plen := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		end := off + frameHeaderLen + plen
		if plen < 1 || end > len(data) {
			return nil, 0, fmt.Errorf("store: snapshot %s truncated at offset %d: %w", path, off, ErrCorrupt)
		}
		payload := data[off+frameHeaderLen : end]
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, 0, fmt.Errorf("store: snapshot %s checksum mismatch at offset %d: %w", path, off, ErrCorrupt)
		}
		switch payload[0] {
		case snapKindKV:
			kv, err := parseSnapshotKV(payload[1:])
			if err != nil {
				return nil, 0, fmt.Errorf("store: snapshot %s: %w", path, err)
			}
			kvs = append(kvs, kv)
		case snapKindFooter:
			if len(payload) != 1+8 {
				return nil, 0, fmt.Errorf("store: snapshot %s has malformed footer: %w", path, ErrCorrupt)
			}
			if count := binary.BigEndian.Uint64(payload[1:]); count != uint64(len(kvs)) {
				return nil, 0, fmt.Errorf("store: snapshot %s footer count %d != %d records: %w", path, count, len(kvs), ErrCorrupt)
			}
			sawFooter = true
		default:
			return nil, 0, fmt.Errorf("store: snapshot %s has unknown frame kind %d: %w", path, payload[0], ErrCorrupt)
		}
		off = end
	}
	if !sawFooter {
		return nil, 0, fmt.Errorf("store: snapshot %s is missing its footer (partial write): %w", path, ErrCorrupt)
	}
	return kvs, seq, nil
}

func parseSnapshotKV(p []byte) (memcache.KV, error) {
	if len(p) < 4 {
		return memcache.KV{}, fmt.Errorf("store: snapshot record too short: %w", ErrCorrupt)
	}
	klen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if klen < 0 || klen+4 > len(p) {
		return memcache.KV{}, fmt.Errorf("store: snapshot record has bad key length %d: %w", klen, ErrCorrupt)
	}
	kv := memcache.KV{Key: string(p[:klen])}
	p = p[klen:]
	vlen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if vlen != len(p) {
		return memcache.KV{}, fmt.Errorf("store: snapshot record has bad value length %d (have %d): %w", vlen, len(p), ErrCorrupt)
	}
	if vlen > 0 {
		kv.Value = append([]byte(nil), p...)
	}
	return kv, nil
}

// loadNewestSnapshot applies the newest snapshot that validates in full to
// the backing store and returns its sequence number; invalid snapshots are
// counted and skipped in favour of older ones, and 0 means "no snapshot,
// replay the log from the beginning".
func (d *Durable) loadNewestSnapshot() (uint64, error) {
	snaps, err := listSnapshots(d.dir)
	if err != nil {
		return 0, fmt.Errorf("store: listing snapshots: %w", err)
	}
	for _, s := range snaps {
		kvs, seq, err := loadSnapshot(s.path)
		if err != nil {
			d.snapSkipped++
			continue
		}
		if len(kvs) > 0 {
			if _, err := d.backing.PutBatch(kvs); err != nil {
				return 0, fmt.Errorf("store: applying snapshot %s: %w", s.path, err)
			}
		}
		return seq, nil
	}
	return 0, nil
}

// compactLocked writes a snapshot of the backing store at the current
// sequence number, rotates the WAL onto a fresh segment and deletes every
// log segment and snapshot the new one supersedes. Caller holds d.mu.
func (d *Durable) compactLocked() error {
	if d.failed != nil {
		return d.failed
	}
	snapSeq := d.seq
	items := d.backing.Snapshot()

	tmp := filepath.Join(d.dir, fmt.Sprintf("snap-%016x.tmp", snapSeq))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	buf := make([]byte, 0, 64+len(items)*64)
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, snapSeq)
	scratch := make([]byte, 0, 256)
	for _, it := range items {
		scratch = scratch[:0]
		scratch = append(scratch, snapKindKV)
		scratch = binary.BigEndian.AppendUint32(scratch, uint32(len(it.Key)))
		scratch = append(scratch, it.Key...)
		scratch = binary.BigEndian.AppendUint32(scratch, uint32(len(it.Value)))
		scratch = append(scratch, it.Value...)
		buf = appendFrame(buf, scratch)
	}
	scratch = scratch[:0]
	scratch = append(scratch, snapKindFooter)
	scratch = binary.BigEndian.AppendUint64(scratch, uint64(len(items)))
	buf = appendFrame(buf, scratch)

	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(buf); err != nil {
		return cleanup(fmt.Errorf("store: writing snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: syncing snapshot: %w", err))
	}
	d.syncs++
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	final := filepath.Join(d.dir, snapshotName(snapSeq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	if err := syncDir(d.dir); err != nil {
		return fmt.Errorf("store: syncing directory: %w", err)
	}

	// The snapshot is durable; rotate the log onto a fresh segment and drop
	// everything it supersedes.
	nf, size, err := createSegment(d.dir, snapSeq+1)
	if err != nil {
		return err
	}
	if cerr := d.f.Close(); cerr != nil {
		nf.Close()
		return fmt.Errorf("store: closing rotated segment: %w", cerr)
	}
	d.f, d.size = nf, size
	d.sinceSnap = 0
	d.snapshots++
	rmGlob(d.dir, "wal-*.log", segmentName(snapSeq+1))
	rmGlob(d.dir, "snap-*.db", snapshotName(snapSeq))
	rmGlob(d.dir, "snap-*.tmp", "")
	return nil
}

// appendFrame appends one checksummed frame around payload.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}
