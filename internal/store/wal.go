package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"geomds/internal/memcache"
)

// WAL record format. A segment file is the 8-byte magic followed by frames:
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// and each payload is one mutation record:
//
//	u64 sequence number | u8 op (1 = put, 2 = delete) |
//	u32 key length | key bytes | u32 value length | value bytes
//
// All integers are big-endian. Sequence numbers are assigned consecutively
// from 1 across the store's lifetime; segment file names carry the first
// sequence number they may contain (wal-<first, hex>.log), so recovery
// replays segments in name order.

const (
	walMagic = "GMDSWAL1"
	opPut    = byte(1)
	opDelete = byte(2)

	frameHeaderLen = 8 // u32 length + u32 crc
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecordFrame appends one framed record to buf and returns the
// extended slice.
func appendRecordFrame(buf []byte, seq uint64, op byte, key string, value []byte) []byte {
	hdr := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen)...)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = append(buf, op)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(value)))
	buf = append(buf, value...)
	payload := buf[hdr+frameHeaderLen:]
	binary.BigEndian.PutUint32(buf[hdr:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[hdr+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// walEntry is one decoded log record.
type walEntry struct {
	seq   uint64
	op    byte
	key   string
	value []byte
}

// parseRecord decodes a frame payload whose checksum already passed.
func parseRecord(payload []byte) (walEntry, error) {
	if len(payload) < 8+1+4 {
		return walEntry{}, fmt.Errorf("store: record payload too short (%d bytes): %w", len(payload), ErrCorrupt)
	}
	e := walEntry{seq: binary.BigEndian.Uint64(payload), op: payload[8]}
	if e.op != opPut && e.op != opDelete {
		return walEntry{}, fmt.Errorf("store: record seq %d has unknown op %d: %w", e.seq, e.op, ErrCorrupt)
	}
	rest := payload[9:]
	klen := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if klen < 0 || klen+4 > len(rest) {
		return walEntry{}, fmt.Errorf("store: record seq %d has bad key length %d: %w", e.seq, klen, ErrCorrupt)
	}
	e.key = string(rest[:klen])
	rest = rest[klen:]
	vlen := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if vlen != len(rest) {
		return walEntry{}, fmt.Errorf("store: record seq %d has bad value length %d (have %d): %w", e.seq, vlen, len(rest), ErrCorrupt)
	}
	if vlen > 0 {
		e.value = append([]byte(nil), rest...)
	}
	return e, nil
}

// readSegment decodes every frame of one segment file. final marks the last
// (newest) segment, where a bad tail is the signature of a crash mid-append
// and is tolerated: the function reports torn=true and validLen, the byte
// offset the caller should truncate the file to. In any other position —
// or anywhere in a non-final segment — damage means later records would be
// silently dropped, so the error wraps ErrCorrupt instead.
func readSegment(path string, final bool) (entries []walEntry, validLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("store: reading segment %s: %w", path, err)
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		if final {
			// Crash while the segment itself was being created: nothing in
			// it can be valid. validLen < header tells the caller to drop
			// the file entirely.
			return nil, 0, true, nil
		}
		return nil, 0, false, fmt.Errorf("store: segment %s has bad magic: %w", path, ErrCorrupt)
	}
	off := len(walMagic)
	for off < len(data) {
		frameStart := off
		tornHere := func() ([]walEntry, int64, bool, error) {
			if final {
				return entries, int64(frameStart), true, nil
			}
			return nil, 0, false, fmt.Errorf("store: segment %s corrupt at offset %d: %w", path, frameStart, ErrCorrupt)
		}
		if off+frameHeaderLen > len(data) {
			return tornHere() // partial frame header at EOF
		}
		plen := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		end := off + frameHeaderLen + plen
		if plen < 0 || end > len(data) {
			return tornHere() // partial payload at EOF (or garbage length)
		}
		payload := data[off+frameHeaderLen : end]
		if crc32.Checksum(payload, castagnoli) != crc {
			if final && end == len(data) {
				return tornHere() // checksum hole in the very last frame: torn write
			}
			return nil, 0, false, fmt.Errorf("store: segment %s checksum mismatch at offset %d: %w", path, frameStart, ErrCorrupt)
		}
		e, err := parseRecord(payload)
		if err != nil {
			return nil, 0, false, err
		}
		entries = append(entries, e)
		off = end
	}
	return entries, int64(off), false, nil
}

// segment is one discovered WAL segment file.
type segment struct {
	path  string
	first uint64 // first sequence number the segment may contain
}

// listSegments returns the directory's WAL segments in replay order.
func listSegments(dir string) ([]segment, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	segs := make([]segment, 0, len(matches))
	for _, m := range matches {
		var first uint64
		if _, err := fmt.Sscanf(filepath.Base(m), "wal-%016x.log", &first); err != nil {
			continue // not ours; leave it alone
		}
		segs = append(segs, segment{path: m, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

func segmentName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }

// createSegment creates a fresh segment whose first record will carry the
// given sequence number, writes the magic and makes the creation durable.
func createSegment(dir string, first uint64) (*os.File, int64, error) {
	path := filepath.Join(dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: creating segment: %w", err)
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: writing segment magic: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: syncing new segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: syncing directory: %w", err)
	}
	return f, int64(len(walMagic)), nil
}

// recover rebuilds the backing store: newest valid snapshot first, then a
// strict-ordered replay of every log record past the snapshot's sequence
// number. A torn tail in the last segment is truncated away; any other
// damage fails the open with ErrCorrupt.
func (d *Durable) recover() error {
	base, err := d.loadNewestSnapshot()
	if err != nil {
		return err
	}
	segs, err := listSegments(d.dir)
	if err != nil {
		return fmt.Errorf("store: listing segments: %w", err)
	}
	last := base
	for idx, seg := range segs {
		final := idx == len(segs)-1
		entries, validLen, torn, err := readSegment(seg.path, final)
		if err != nil {
			return err
		}
		if torn {
			d.tornTails++
			if validLen < int64(len(walMagic)) {
				if err := os.Remove(seg.path); err != nil {
					return fmt.Errorf("store: dropping torn segment %s: %w", seg.path, err)
				}
				segs = segs[:idx]
			} else if err := os.Truncate(seg.path, validLen); err != nil {
				return fmt.Errorf("store: truncating torn tail of %s: %w", seg.path, err)
			}
		}
		for _, e := range entries {
			if e.seq <= base {
				continue // already covered by the snapshot
			}
			if e.seq != last+1 {
				return fmt.Errorf("store: sequence gap after %d (next surviving record is %d): %w", last, e.seq, ErrCorrupt)
			}
			switch e.op {
			case opPut:
				if _, err := d.backing.Put(e.key, e.value, 0); err != nil {
					return fmt.Errorf("store: replaying put %q (seq %d): %w", e.key, e.seq, err)
				}
			case opDelete:
				if err := d.backing.Delete(e.key); err != nil && !errors.Is(err, memcache.ErrNotFound) {
					return fmt.Errorf("store: replaying delete %q (seq %d): %w", e.key, e.seq, err)
				}
			}
			last = e.seq
		}
	}
	d.seq, d.recovered = last, last
	d.sinceSnap = int(last - base)

	if len(segs) > 0 {
		active := segs[len(segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: opening active segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("store: sizing active segment: %w", err)
		}
		d.f, d.size = f, st.Size()
		return nil
	}
	f, size, err := createSegment(d.dir, last+1)
	if err != nil {
		return err
	}
	d.f, d.size = f, size
	return nil
}
