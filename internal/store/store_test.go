package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"geomds/internal/memcache"
)

func newBacking() *memcache.Cache { return memcache.New(memcache.Config{}) }

// mustOpen opens a store over a fresh backing cache, failing the test on
// error.
func mustOpen(t *testing.T, dir string, opts ...Option) *Durable {
	t.Helper()
	d, err := Open(dir, newBacking(), opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d
}

// put stores key=value, failing the test on error.
func put(t *testing.T, d *Durable, key, value string) {
	t.Helper()
	if _, err := d.Put(key, []byte(value), 0); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

// wantState asserts the store holds exactly the given key=value pairs.
func wantState(t *testing.T, d *Durable, want map[string]string) {
	t.Helper()
	if got := d.Len(); got != len(want) {
		t.Errorf("Len() = %d, want %d (keys: %v)", got, len(want), d.Keys())
	}
	for k, v := range want {
		it, err := d.Get(k)
		if err != nil {
			t.Errorf("Get(%q): %v", k, err)
			continue
		}
		if string(it.Value) != v {
			t.Errorf("Get(%q) = %q, want %q", k, it.Value, v)
		}
	}
}

// activeSegment returns the path of the newest WAL segment.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments(%s): %v (%d segments)", dir, err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	put(t, d, "a", "1")
	put(t, d, "b", "2")
	put(t, d, "a", "3")
	if err := d.Delete("b"); err != nil {
		t.Fatalf("Delete(b): %v", err)
	}
	if _, err := d.PutBatch([]memcache.KV{{Key: "c", Value: []byte("4")}, {Key: "d", Value: []byte("5")}}); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if seq := d.Seq(); seq != 6 {
		t.Errorf("Seq() = %d, want 6 (3 puts + 1 delete + 2 batched puts)", seq)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir)
	defer r.Close()
	wantState(t, r, map[string]string{"a": "3", "c": "4", "d": "5"})
	if r.Recovered() != 6 || r.Seq() != 6 {
		t.Errorf("Recovered()/Seq() = %d/%d, want 6/6", r.Recovered(), r.Seq())
	}
}

// TestCrashRecovery is the table-driven torn-write/corruption suite: each
// case builds a store with a known state, closes it, damages the files the
// way a specific crash would, and asserts what recovery must do.
func TestCrashRecovery(t *testing.T) {
	// Every case starts from the same five acknowledged writes.
	seed := func(t *testing.T, dir string) {
		d := mustOpen(t, dir)
		for i := 1; i <= 5; i++ {
			put(t, d, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	full := map[string]string{"k1": "v1", "k2": "v2", "k3": "v3", "k4": "v4", "k5": "v5"}
	allButLast := map[string]string{"k1": "v1", "k2": "v2", "k3": "v3", "k4": "v4"}

	cases := []struct {
		name    string
		damage  func(t *testing.T, dir string)
		want    map[string]string // nil means Open must fail with ErrCorrupt
		torn    int64
		skipped int64
	}{
		{
			name: "truncated_tail_header",
			damage: func(t *testing.T, dir string) {
				// Crash after 3 bytes of the last frame's header hit disk.
				truncateLastFrame(t, activeSegment(t, dir), 3)
			},
			want: allButLast,
			torn: 1,
		},
		{
			name: "truncated_tail_payload",
			damage: func(t *testing.T, dir string) {
				// Crash mid-payload: header complete, payload half written.
				truncateLastFrame(t, activeSegment(t, dir), frameHeaderLen+5)
			},
			want: allButLast,
			torn: 1,
		},
		{
			name: "corrupt_tail_checksum",
			damage: func(t *testing.T, dir string) {
				// Bit rot (or a lost sector) inside the final frame: the frame
				// is complete but its checksum fails. At EOF that is
				// indistinguishable from a torn write, so it is truncated.
				flipByteInLastFrame(t, activeSegment(t, dir))
			},
			want: allButLast,
			torn: 1,
		},
		{
			name: "corrupt_middle_record",
			damage: func(t *testing.T, dir string) {
				// Damage an early frame with intact records after it: replay
				// must refuse rather than silently drop the suffix.
				flipByteInFrame(t, activeSegment(t, dir), 0)
			},
			want: nil,
		},
		{
			name: "empty_segment_file",
			damage: func(t *testing.T, dir string) {
				// Crash between creating the segment file and writing its
				// magic. Only possible for the newest segment; recovery drops
				// the file and starts a fresh one.
				if err := os.Truncate(activeSegment(t, dir), 0); err != nil {
					t.Fatal(err)
				}
			},
			want: map[string]string{},
			torn: 1,
		},
		{
			name: "partial_snapshot_falls_back_to_log",
			damage: func(t *testing.T, dir string) {
				// An invalid snapshot (here: claiming a future sequence
				// number, cut before its footer) must not shadow the log:
				// recovery skips it and replays from the start.
				writeTruncatedSnapshot(t, dir, 99)
			},
			want:    full,
			skipped: 1,
		},
		{
			name: "empty_snapshot_file",
			damage: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, snapshotName(98)), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want:    full,
			skipped: 1,
		},
		{
			name: "sequence_gap_refused",
			damage: func(t *testing.T, dir string) {
				// Delete a whole record from the middle of the log (seq gap):
				// recovery must fail loudly, not resurrect a hole.
				removeFrame(t, activeSegment(t, dir), 1)
			},
			want: nil,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seed(t, dir)
			tc.damage(t, dir)

			d, err := Open(dir, newBacking())
			if tc.want == nil {
				if err == nil {
					d.Close()
					t.Fatal("Open succeeded, want ErrCorrupt")
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Open error = %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer d.Close()
			wantState(t, d, tc.want)
			st := d.LogStats()
			if st.TornTails != tc.torn {
				t.Errorf("TornTails = %d, want %d", st.TornTails, tc.torn)
			}
			if st.SnapshotsSkipped != tc.skipped {
				t.Errorf("SnapshotsSkipped = %d, want %d", st.SnapshotsSkipped, tc.skipped)
			}

			// The store must accept new writes after recovery and survive
			// another clean restart — the torn tail is gone for good.
			put(t, d, "post", "recovery")
			if err := d.Close(); err != nil {
				t.Fatalf("Close after recovery: %v", err)
			}
			r := mustOpen(t, dir)
			defer r.Close()
			want := make(map[string]string, len(tc.want)+1)
			for k, v := range tc.want {
				want[k] = v
			}
			want["post"] = "recovery"
			wantState(t, r, want)
		})
	}
}

// TestReplayIdempotence proves replaying the same records more than once
// converges to the same state: records at or below the snapshot's sequence
// number are skipped, and repeated open/close cycles are stable.
func TestReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	for i := 1; i <= 8; i++ {
		put(t, d, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	if err := d.Delete("k8"); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	base := d.Seq()
	put(t, d, "k9", "v9")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recreate a stale pre-compaction segment holding duplicates of records
	// the snapshot already covers (the crash window where compaction
	// published its snapshot but not yet deleted the old log).
	var stale []byte
	stale = append(stale, walMagic...)
	for i := 1; i <= 8; i++ {
		stale = appendRecordFrame(stale, uint64(i), opPut, fmt.Sprintf("k%d", i), []byte("STALE"))
	}
	stale = appendRecordFrame(stale, uint64(base), opDelete, "k8", nil)
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	want := map[string]string{
		"k1": "v1", "k2": "v2", "k3": "v3", "k4": "v4",
		"k5": "v5", "k6": "v6", "k7": "v7", "k9": "v9",
	}
	for round := 0; round < 3; round++ {
		r := mustOpen(t, dir)
		wantState(t, r, want)
		if r.Seq() != base+1 {
			t.Fatalf("round %d: Seq() = %d, want %d", round, r.Seq(), base+1)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotCombinesWithNewerLog covers the normal compaction cycle: a
// valid snapshot plus records logged after it recover to the merged state,
// and superseded files are gone.
func TestSnapshotCombinesWithNewerLog(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, WithCompactEvery(10))
	for i := 1; i <= 25; i++ {
		put(t, d, fmt.Sprintf("k%d", i%7), fmt.Sprintf("v%d", i))
	}
	if st := d.LogStats(); st.Snapshots == 0 {
		t.Fatalf("no snapshot after 25 writes with compactEvery=10: %+v", st)
	}
	if err := d.Delete("k0"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if segs, _ := listSegments(dir); len(segs) != 1 {
		t.Errorf("superseded segments not deleted: %d remain", len(segs))
	}
	if snaps, _ := listSnapshots(dir); len(snaps) != 1 {
		t.Errorf("superseded snapshots not deleted: %d remain", len(snaps))
	}

	r := mustOpen(t, dir)
	defer r.Close()
	wantState(t, r, map[string]string{
		"k1": "v22", "k2": "v23", "k3": "v24", "k4": "v25", "k5": "v19", "k6": "v20",
	})
	if r.Seq() != 26 {
		t.Errorf("Seq() = %d, want 26", r.Seq())
	}
}

// TestCloseFlushesUnderFsyncNever pins the Close contract: even under
// FsyncNever — where acknowledged appends are never individually synced —
// Close must flush and fsync before returning, so Close → Open is lossless.
func TestCloseFlushesUnderFsyncNever(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, WithFsync(FsyncNever), WithCompactEvery(1<<30))
	for i := 0; i < 100; i++ {
		put(t, d, fmt.Sprintf("k%d", i), "v")
	}
	if st := d.LogStats(); st.Syncs != 0 {
		t.Fatalf("FsyncNever issued %d syncs on the append path, want 0", st.Syncs)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := d.LogStats(); st.Syncs != 1 {
		t.Errorf("Close issued %d syncs, want exactly 1", st.Syncs)
	}

	// Close is idempotent, and the store refuses writes afterwards.
	if err := d.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := d.Put("late", []byte("x"), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if err := d.Delete("late"); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after Close = %v, want ErrClosed", err)
	}

	r := mustOpen(t, dir)
	defer r.Close()
	if r.Len() != 100 || r.Recovered() != 100 {
		t.Errorf("reopen after FsyncNever Close: Len=%d Recovered=%d, want 100/100", r.Len(), r.Recovered())
	}
}

func TestFsyncAlwaysSyncsEveryAppend(t *testing.T) {
	d := mustOpen(t, t.TempDir())
	defer d.Close()
	put(t, d, "a", "1")
	put(t, d, "b", "2")
	if _, err := d.PutBatch([]memcache.KV{{Key: "c"}, {Key: "d"}}); err != nil {
		t.Fatal(err)
	}
	// One sync per append batch: two singles plus one batch.
	if st := d.LogStats(); st.Syncs != 3 || st.Appends != 4 {
		t.Errorf("Syncs/Appends = %d/%d, want 3/4", st.Syncs, st.Appends)
	}
}

// TestFailedMutationsNotLogged: operations the backing store rejected leave
// no trace in the log, so replay cannot invent state transitions that never
// happened.
func TestFailedMutationsNotLogged(t *testing.T) {
	d := mustOpen(t, t.TempDir())
	defer d.Close()
	put(t, d, "a", "1")
	before := d.Seq()

	if _, err := d.CAS("a", []byte("2"), 0, 42); !errors.Is(err, memcache.ErrVersionConflict) {
		t.Fatalf("CAS with stale version = %v, want ErrVersionConflict", err)
	}
	if err := d.Delete("missing"); !errors.Is(err, memcache.ErrNotFound) {
		t.Fatalf("Delete(missing) = %v, want ErrNotFound", err)
	}
	if d.Seq() != before {
		t.Errorf("failed mutations advanced Seq from %d to %d", before, d.Seq())
	}

	// A successful CAS is journaled as a put.
	it, err := d.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CAS("a", []byte("2"), 0, it.Version); err != nil {
		t.Fatal(err)
	}
	if d.Seq() != before+1 {
		t.Errorf("successful CAS did not advance Seq (%d, want %d)", d.Seq(), before+1)
	}
}

// TestDeleteBatchReplaysAbsentKeys: bulk deletes journal every requested
// key, including absent ones, and replaying those extra deletes is a no-op.
func TestDeleteBatchReplaysAbsentKeys(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	put(t, d, "a", "1")
	put(t, d, "b", "2")
	n, err := d.DeleteBatch([]string{"a", "ghost", "phantom"})
	if err != nil || n != 1 {
		t.Fatalf("DeleteBatch = (%d, %v), want (1, nil)", n, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir)
	defer r.Close()
	wantState(t, r, map[string]string{"b": "2"})
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"", FsyncAlways, true},
		{"never", FsyncNever, true},
		{"sometimes", FsyncAlways, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if FsyncAlways.String() != "always" || FsyncNever.String() != "never" {
		t.Errorf("String() round-trip broken: %q/%q", FsyncAlways, FsyncNever)
	}
}

// --- file-surgery helpers -------------------------------------------------

// frameOffsets returns the byte offset of every frame in a segment file.
func frameOffsets(t *testing.T, path string) []int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int
	off := len(walMagic)
	for off < len(data) {
		if off+frameHeaderLen > len(data) {
			t.Fatalf("segment %s already torn at %d", path, off)
		}
		offs = append(offs, off)
		off += frameHeaderLen + int(binary.BigEndian.Uint32(data[off:]))
	}
	return offs
}

// truncateLastFrame cuts the file so only keep bytes of its last frame
// survive.
func truncateLastFrame(t *testing.T, path string, keep int) {
	t.Helper()
	offs := frameOffsets(t, path)
	if err := os.Truncate(path, int64(offs[len(offs)-1]+keep)); err != nil {
		t.Fatal(err)
	}
}

// flipByteInFrame corrupts one payload byte of the idx'th frame.
func flipByteInFrame(t *testing.T, path string, idx int) {
	t.Helper()
	offs := frameOffsets(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offs[idx]+frameHeaderLen] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func flipByteInLastFrame(t *testing.T, path string) {
	t.Helper()
	flipByteInFrame(t, path, len(frameOffsets(t, path))-1)
}

// writeTruncatedSnapshot writes a snapshot that begins validly but is cut
// before its footer — the shape of a crash mid-snapshot-write.
func writeTruncatedSnapshot(t *testing.T, dir string, seq uint64) {
	t.Helper()
	var buf []byte
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	payload := []byte{snapKindKV}
	payload = binary.BigEndian.AppendUint32(payload, 1)
	payload = append(payload, 'x')
	payload = binary.BigEndian.AppendUint32(payload, 1)
	payload = append(payload, 'y')
	buf = appendFrame(buf, payload)
	// No footer: the file ends as if the machine died here.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(seq)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// removeFrame deletes the idx'th frame wholesale, leaving valid frames on
// both sides — a sequence gap.
func removeFrame(t *testing.T, path string, idx int) {
	t.Helper()
	offs := frameOffsets(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	end := len(data)
	if idx+1 < len(offs) {
		end = offs[idx+1]
	}
	out := append(append([]byte(nil), data[:offs[idx]]...), data[end:]...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}
