// Package store gives a registry shard a durable local state: an append-only
// write-ahead log of put/delete records plus periodic compacted snapshots,
// replayed on open so a restarted shard serves its key range from disk
// instead of leaning on the router's R-way re-sync sweep.
//
// A Durable wraps any Backing (in practice a *memcache.Cache) and logs every
// successful mutation before reporting it applied. The on-disk layout of a
// store directory is
//
//	wal-<firstseq>.log   append-only segments of length-prefixed, CRC-checked
//	                     frames (see wal.go for the record format)
//	snap-<seq>.db        compacted snapshots: the full key/value state as of
//	                     sequence number <seq> (see snapshot.go)
//
// Recovery loads the newest valid snapshot, replays every log record with a
// higher sequence number, and truncates a torn tail write (a partial frame
// at the end of the last segment — the signature of a crash mid-append).
// Corruption anywhere else is refused: a checksum failure in the middle of
// the log means records after it would be silently lost, so Open fails
// rather than resurrect a hole.
//
// Two fsync policies are offered. FsyncAlways (the default) syncs the log
// after every append batch, so an acknowledged write survives an OS crash.
// FsyncNever issues the write() but leaves syncing to snapshots and Close —
// an acknowledged write then survives a process crash but not a machine
// crash. Close always flushes and syncs regardless of policy, so a clean
// Close followed by Open is lossless under either.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"geomds/internal/memcache"
)

// Backing is the mutable key/value store a Durable wraps and logs. It is a
// structural copy of the registry's Store interface, so *memcache.Cache and
// *memcache.HACache satisfy it and a *Durable can be handed back to the
// registry without an import cycle.
type Backing interface {
	Get(key string) (memcache.Item, error)
	Put(key string, value []byte, ttl time.Duration) (memcache.Item, error)
	CAS(key string, value []byte, ttl time.Duration, expectedVersion uint64) (memcache.Item, error)
	Delete(key string) error
	Contains(key string) bool
	Keys() []string
	Snapshot() []memcache.Item
	Len() int
	Stats() memcache.Stats
	GetBatch(keys []string) (found []memcache.Item, missing []string, err error)
	PutBatch(kvs []memcache.KV) ([]memcache.Item, error)
	DeleteBatch(keys []string) (int, error)
}

var _ Backing = (*memcache.Cache)(nil)

// FsyncPolicy selects when the WAL is synced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the log after every append batch. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncNever leaves syncing to snapshots and Close: appends reach the
	// OS page cache (one write() per batch) but are not forced to disk.
	FsyncNever
)

// String returns the policy name as accepted by the metaserver -fsync flag.
func (p FsyncPolicy) String() string {
	if p == FsyncNever {
		return "never"
	}
	return "always"
}

// ParseFsyncPolicy parses "always" or "never" (the metaserver -fsync flag).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("store: unknown fsync policy %q (want always or never)", s)
}

var (
	// ErrClosed is returned by mutations on a closed Durable.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt wraps recovery failures that are not a tolerable torn
	// tail: a mid-log checksum mismatch, a malformed record, or a sequence
	// gap between the snapshot and the surviving log.
	ErrCorrupt = errors.New("store: corrupt log")
)

// DefaultCompactEvery is the number of logged records between automatic
// snapshot compactions.
const DefaultCompactEvery = 8192

// Options tunes a Durable. The zero value means FsyncAlways and
// DefaultCompactEvery.
type Options struct {
	fsync        FsyncPolicy
	compactEvery int
}

// Option configures Open.
type Option func(*Options)

// WithFsync selects the fsync policy (default FsyncAlways).
func WithFsync(p FsyncPolicy) Option {
	return func(o *Options) { o.fsync = p }
}

// WithCompactEvery sets how many logged records trigger an automatic
// snapshot compaction (default DefaultCompactEvery). Values <= 0 keep the
// default; pick a large value to effectively disable compaction in tests.
func WithCompactEvery(n int) Option {
	return func(o *Options) {
		if n > 0 {
			o.compactEvery = n
		}
	}
}

// LogStats is a point-in-time snapshot of a Durable's log counters.
type LogStats struct {
	Seq              uint64 // sequence number of the last logged record
	Recovered        uint64 // sequence number recovered by Open (0 for a fresh dir)
	Appends          int64  // records appended since Open
	Syncs            int64  // fsync calls issued (appends, snapshots, Close)
	Snapshots        int64  // compactions completed since Open
	SnapshotsSkipped int64  // invalid snapshots ignored during recovery
	TornTails        int64  // torn tail writes truncated during recovery
	CompactionErrors int64  // best-effort compactions that failed
}

// Durable is a Backing whose mutations are journaled to an on-disk WAL
// before being reported applied, with periodic snapshot compaction. It
// satisfies Backing itself (and therefore registry.Store), so it drops into
// an Instance in place of the bare cache.
//
// All mutations serialize on one mutex so the log order is exactly the
// apply order — replay then reconstructs the same final state even for
// racing writes to one key. Reads go straight to the backing store and
// never touch the log or its lock.
type Durable struct {
	backing Backing
	dir     string
	opts    Options

	mu        sync.Mutex
	f         *os.File // active segment, opened for append
	size      int64    // bytes in the active segment (tracked, not Seek'd)
	seq       uint64   // last logged sequence number
	recovered uint64   // seq as of Open
	sinceSnap int      // records logged since the last snapshot
	closed    bool
	failed    error // sticky I/O failure: the log state is unknown, fail stop
	buf       []byte

	// sink observes journaled mutations under mu (the change-feed tap).
	sink EventSink

	appends, syncs, snapshots, snapSkipped, tornTails, compactErrs int64
}

// Open opens (creating if needed) the store directory, recovers the backing
// store from the newest valid snapshot plus the surviving log, and returns
// a Durable ready for writes. The backing store must be empty: recovery
// replays into it.
func Open(dir string, backing Backing, opts ...Option) (*Durable, error) {
	o := Options{fsync: FsyncAlways, compactEvery: DefaultCompactEvery}
	for _, opt := range opts {
		opt(&o)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	d := &Durable{backing: backing, dir: dir, opts: o}
	if err := d.recover(); err != nil {
		if d.f != nil {
			d.f.Close()
		}
		return nil, err
	}
	return d, nil
}

// Seq returns the sequence number of the last logged record.
func (d *Durable) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Recovered returns the sequence number recovered by Open — the durable
// high-water mark this store restarted from (0 for a fresh directory).
func (d *Durable) Recovered() uint64 { return d.recovered }

// LogStats returns a snapshot of the log counters.
func (d *Durable) LogStats() LogStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return LogStats{
		Seq:              d.seq,
		Recovered:        d.recovered,
		Appends:          d.appends,
		Syncs:            d.syncs,
		Snapshots:        d.snapshots,
		SnapshotsSkipped: d.snapSkipped,
		TornTails:        d.tornTails,
		CompactionErrors: d.compactErrs,
	}
}

// Close flushes and fsyncs the log, then closes the segment file. It always
// syncs, regardless of the fsync policy, so Close followed by Open is
// lossless even under FsyncNever. Close is idempotent; mutations after
// Close return ErrClosed.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.f == nil {
		return nil
	}
	var firstErr error
	if err := d.f.Sync(); err != nil {
		firstErr = fmt.Errorf("store: syncing log on close: %w", err)
	} else {
		d.syncs++
	}
	if err := d.f.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("store: closing log: %w", err)
	}
	d.f = nil
	return firstErr
}

// Exported record kinds, for EventSink consumers.
const (
	// OpPut marks an upsert record.
	OpPut = opPut
	// OpDelete marks a removal record.
	OpDelete = opDelete
)

// EventSink receives every state-changing journaled mutation with its WAL
// sequence number. It is invoked under the store's mutation mutex, so the
// emission order is exactly the log order; sinks must be fast and must not
// call back into the store. Deletes of absent keys — journaled for frame
// batching but changing no state — are suppressed, so sequence numbers seen
// by a sink may have holes. sync reports that the mutation arrived through
// the bulk-apply path (PutBatch/DeleteBatch, i.e. a replication batch or
// migration sweep) rather than a primary single-key write.
type EventSink func(seq uint64, op byte, key string, value []byte, sync bool)

// SetEventSink installs the sink that observes journaled mutations (the
// change feed's tap). Install it before the store serves mutations —
// typically right after Open — so no committed write goes unobserved.
func (d *Durable) SetEventSink(fn EventSink) {
	d.mu.Lock()
	d.sink = fn
	d.mu.Unlock()
}

// rec is one mutation to journal.
type rec struct {
	op    byte
	key   string
	value []byte
	// noEvent suppresses the EventSink for records that change no state
	// (deletes of absent keys).
	noEvent bool
	// sync marks records journaled by the bulk-apply path (see EventSink).
	sync bool
}

// appendLocked journals the records, assigning consecutive sequence
// numbers, as one write (and one fsync under FsyncAlways). On failure it
// rolls the segment and the sequence counter back so the log never holds a
// half-written batch; if even the rollback fails the store goes fail-stop.
func (d *Durable) appendLocked(recs ...rec) error {
	if d.closed {
		return ErrClosed
	}
	if d.failed != nil {
		return d.failed
	}
	prevSeq, prevSize := d.seq, d.size
	d.buf = d.buf[:0]
	for _, rc := range recs {
		d.seq++
		d.buf = appendRecordFrame(d.buf, d.seq, rc.op, rc.key, rc.value)
	}
	n, err := d.f.Write(d.buf)
	if err == nil {
		d.size += int64(n)
		if d.opts.fsync == FsyncAlways {
			if err = d.f.Sync(); err == nil {
				d.syncs++
			} else {
				err = fmt.Errorf("store: syncing wal: %w", err)
			}
		}
	} else {
		err = fmt.Errorf("store: appending to wal: %w", err)
	}
	if err != nil {
		// Cut the segment back to the last good frame boundary. If that
		// works the store stays usable; if not, its tail is unknown and
		// every further append could land after garbage.
		if terr := d.f.Truncate(prevSize); terr != nil {
			d.failed = fmt.Errorf("store: wal unusable after failed append (truncate: %v): %w", terr, err)
			return d.failed
		}
		d.seq, d.size = prevSeq, prevSize
		return err
	}
	d.appends += int64(len(recs))
	d.sinceSnap += len(recs)
	if d.sink != nil {
		// Emit under mu, after the batch is durably on disk, so feed order
		// is exactly log order and no acknowledged write goes unpublished.
		seq := prevSeq
		for _, rc := range recs {
			seq++
			if !rc.noEvent {
				d.sink(seq, rc.op, rc.key, rc.value, rc.sync)
			}
		}
	}
	if d.sinceSnap >= d.opts.compactEvery {
		// Compaction is best effort: a failed snapshot leaves the log
		// longer, not the data wrong.
		if cerr := d.compactLocked(); cerr != nil {
			d.compactErrs++
		}
	}
	return nil
}

// --- Backing implementation: mutations journal, reads delegate. ---

// Put applies the write to the backing store and journals it.
func (d *Durable) Put(key string, value []byte, ttl time.Duration) (memcache.Item, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return memcache.Item{}, ErrClosed
	}
	it, err := d.backing.Put(key, value, ttl)
	if err != nil {
		return it, err
	}
	if err := d.appendLocked(rec{op: opPut, key: key, value: value}); err != nil {
		return it, err
	}
	return it, nil
}

// CAS applies the conditional write and journals it only when it succeeded;
// a version conflict leaves no trace in the log.
func (d *Durable) CAS(key string, value []byte, ttl time.Duration, expectedVersion uint64) (memcache.Item, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return memcache.Item{}, ErrClosed
	}
	it, err := d.backing.CAS(key, value, ttl, expectedVersion)
	if err != nil {
		return it, err
	}
	if err := d.appendLocked(rec{op: opPut, key: key, value: value}); err != nil {
		return it, err
	}
	return it, nil
}

// Delete removes the key and journals the deletion; a miss is not logged.
func (d *Durable) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.backing.Delete(key); err != nil {
		return err
	}
	return d.appendLocked(rec{op: opDelete, key: key})
}

// PutBatch applies the batch and journals it as one append (one fsync).
func (d *Durable) PutBatch(kvs []memcache.KV) ([]memcache.Item, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	items, err := d.backing.PutBatch(kvs)
	if err != nil {
		return items, err
	}
	if len(kvs) == 0 {
		return items, nil
	}
	recs := make([]rec, len(kvs))
	for i, kv := range kvs {
		recs[i] = rec{op: opPut, key: kv.Key, value: kv.Value, sync: true}
	}
	if err := d.appendLocked(recs...); err != nil {
		return items, err
	}
	return items, nil
}

// DeleteBatch removes the keys and journals every requested deletion as one
// append. Absent keys are journaled too: replaying a delete of a missing
// key is a no-op, and logging the full request keeps the append one frame
// batch instead of a read-check per key.
func (d *Durable) DeleteBatch(keys []string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	// The sink only reports state changes, so record which keys actually
	// exist before the batch removes them. Checked under mu, so no mutation
	// can race the check.
	var existed []bool
	if d.sink != nil {
		existed = make([]bool, len(keys))
		for i, k := range keys {
			existed[i] = d.backing.Contains(k)
		}
	}
	n, err := d.backing.DeleteBatch(keys)
	if err != nil {
		return n, err
	}
	if len(keys) == 0 {
		return n, nil
	}
	recs := make([]rec, len(keys))
	for i, k := range keys {
		recs[i] = rec{op: opDelete, key: k, noEvent: existed != nil && !existed[i], sync: true}
	}
	if err := d.appendLocked(recs...); err != nil {
		return n, err
	}
	return n, nil
}

// Get delegates to the backing store.
func (d *Durable) Get(key string) (memcache.Item, error) { return d.backing.Get(key) }

// Contains delegates to the backing store.
func (d *Durable) Contains(key string) bool { return d.backing.Contains(key) }

// Keys delegates to the backing store.
func (d *Durable) Keys() []string { return d.backing.Keys() }

// Snapshot delegates to the backing store.
func (d *Durable) Snapshot() []memcache.Item { return d.backing.Snapshot() }

// Len delegates to the backing store.
func (d *Durable) Len() int { return d.backing.Len() }

// Stats delegates to the backing store.
func (d *Durable) Stats() memcache.Stats { return d.backing.Stats() }

// GetBatch delegates to the backing store.
func (d *Durable) GetBatch(keys []string) ([]memcache.Item, []string, error) {
	return d.backing.GetBatch(keys)
}

// Compact forces a snapshot compaction now (mainly for tests and an
// operator escape hatch).
func (d *Durable) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.compactLocked()
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// rmGlob best-effort removes every match except keep.
func rmGlob(dir, pattern, keep string) {
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return
	}
	for _, m := range matches {
		if filepath.Base(m) == keep {
			continue
		}
		os.Remove(m)
	}
}
