// Package dht provides the hashing machinery that maps metadata entries to
// datacenters in the decentralized strategies of the paper.
//
// Every time a new entry is written to the metadata registry, a hash function
// is applied to a distinctive attribute of the entry (the file name) to
// determine the site where the entry should be stored; the same procedure
// locates the entry on reads (paper §IV-C). Two placers are provided:
//
//   - ModuloPlacer: hash(name) mod nSites — the flat scheme the paper uses;
//   - RingPlacer: a consistent-hash ring with virtual nodes, which minimizes
//     entry migration when sites join or leave (the "server volatility"
//     problem discussed in §VIII).
//
// Both satisfy the Placer interface so the strategies can be ablated against
// either scheme (see BenchmarkAblationHashingChurn).
package dht

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"geomds/internal/cloud"
)

// Placer maps metadata keys to the site responsible for storing them.
type Placer interface {
	// Home returns the site responsible for the given key.
	Home(key string) cloud.SiteID
	// Homes returns the successor list of the key: the first n distinct
	// sites responsible for it, primary first. Replicated placement stores a
	// key on Homes(key, r); a router that finds the primary unreachable
	// fails over down the same list. Homes(key, 1) is [Home(key)], and n
	// larger than the membership returns every site exactly once. The same
	// site must never appear twice — adjacent virtual nodes of one site on a
	// ring count as a single successor.
	Homes(key string, n int) []cloud.SiteID
	// Sites returns the sites currently participating in placement.
	Sites() []cloud.SiteID
}

// DynamicPlacer is a Placer whose membership can change at run time
// (datacenters joining or leaving the deployment).
type DynamicPlacer interface {
	Placer
	// Add registers a site as a placement target.
	Add(site cloud.SiteID)
	// Remove withdraws a site from placement.
	Remove(site cloud.SiteID)
}

// Hash64 returns the FNV-1a 64-bit hash of the key. All placers derive their
// decisions from this value so that placements are stable across processes.
func Hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv's Write never fails
	return h.Sum64()
}

// ModuloPlacer assigns a key to sites[hash(key) mod len(sites)]. This is the
// scheme described in the paper: simple, uniform, but every membership change
// remaps almost all keys.
type ModuloPlacer struct {
	mu    sync.RWMutex
	sites []cloud.SiteID
}

// NewModuloPlacer returns a placer over the given sites. The site order is
// normalized (sorted) so that independent processes agree on placements.
func NewModuloPlacer(sites []cloud.SiteID) *ModuloPlacer {
	p := &ModuloPlacer{}
	for _, s := range sites {
		p.Add(s)
	}
	return p
}

// Home implements Placer.
func (p *ModuloPlacer) Home(key string) cloud.SiteID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.sites) == 0 {
		return cloud.NoSite
	}
	return p.sites[Hash64(key)%uint64(len(p.sites))]
}

// Homes implements Placer: the successor list starts at the key's modular
// slot and walks the (sorted, duplicate-free) site list, so membership
// changes shift replica sets the same way they shift primaries.
func (p *ModuloPlacer) Homes(key string, n int) []cloud.SiteID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.sites) == 0 || n <= 0 {
		return nil
	}
	if n > len(p.sites) {
		n = len(p.sites)
	}
	start := int(Hash64(key) % uint64(len(p.sites)))
	out := make([]cloud.SiteID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.sites[(start+i)%len(p.sites)])
	}
	return out
}

// Sites implements Placer.
func (p *ModuloPlacer) Sites() []cloud.SiteID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]cloud.SiteID, len(p.sites))
	copy(out, p.sites)
	return out
}

// Add implements DynamicPlacer. Adding a site twice is a no-op.
func (p *ModuloPlacer) Add(site cloud.SiteID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.sites {
		if s == site {
			return
		}
	}
	p.sites = append(p.sites, site)
	sort.Slice(p.sites, func(i, j int) bool { return p.sites[i] < p.sites[j] })
}

// Remove implements DynamicPlacer. Removing an absent site is a no-op.
func (p *ModuloPlacer) Remove(site cloud.SiteID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, s := range p.sites {
		if s == site {
			p.sites = append(p.sites[:i], p.sites[i+1:]...)
			return
		}
	}
}

// RingPlacer is a consistent-hash ring: each site owns a configurable number
// of virtual nodes on a 64-bit ring and a key belongs to the first virtual
// node at or after its hash. Membership changes only remap the keys owned by
// the affected site.
type RingPlacer struct {
	mu       sync.RWMutex
	replicas int
	ring     []ringPoint
	members  map[cloud.SiteID]bool
}

type ringPoint struct {
	hash uint64
	site cloud.SiteID
}

// DefaultVirtualNodes is the number of virtual nodes per site used when the
// caller passes a non-positive count.
const DefaultVirtualNodes = 128

// NewRingPlacer returns a consistent-hash placer over the given sites with
// virtualNodes points per site (DefaultVirtualNodes when <= 0).
func NewRingPlacer(sites []cloud.SiteID, virtualNodes int) *RingPlacer {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	p := &RingPlacer{replicas: virtualNodes, members: make(map[cloud.SiteID]bool)}
	for _, s := range sites {
		p.Add(s)
	}
	return p
}

// Home implements Placer. The key hash runs through the same mix64
// finalizer as the virtual-node labels: raw FNV-1a values of keys sharing a
// prefix with short varying suffixes (file names in one directory, shard
// keys "bulk/0".."bulk/255") cluster in a narrow band of the 64-bit space
// and would all land on the same few arcs of the ring.
func (p *RingPlacer) Home(key string) cloud.SiteID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.ring) == 0 {
		return cloud.NoSite
	}
	h := mix64(Hash64(key))
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	if i == len(p.ring) {
		i = 0
	}
	return p.ring[i].site
}

// Homes implements Placer: the successor list walks the ring clockwise from
// the key's position, collecting the first n *distinct* sites. Virtual nodes
// of one site that sit adjacent on the ring are deduplicated — without this a
// 2-replica placement could silently put both "replicas" on the same shard
// whenever two of its virtual nodes happen to be neighbours.
func (p *RingPlacer) Homes(key string, n int) []cloud.SiteID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.ring) == 0 || n <= 0 {
		return nil
	}
	if n > len(p.members) {
		n = len(p.members)
	}
	h := mix64(Hash64(key))
	start := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	out := make([]cloud.SiteID, 0, n)
	seen := make(map[cloud.SiteID]bool, n)
	for i := 0; i < len(p.ring) && len(out) < n; i++ {
		site := p.ring[(start+i)%len(p.ring)].site
		if seen[site] {
			continue
		}
		seen[site] = true
		out = append(out, site)
	}
	return out
}

// Sites implements Placer.
func (p *RingPlacer) Sites() []cloud.SiteID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]cloud.SiteID, 0, len(p.members))
	for s := range p.members {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Add implements DynamicPlacer.
func (p *RingPlacer) Add(site cloud.SiteID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.members[site] {
		return
	}
	p.members[site] = true
	for v := 0; v < p.replicas; v++ {
		h := mix64(Hash64(fmt.Sprintf("site-%d#%d", site, v)))
		p.ring = append(p.ring, ringPoint{hash: h, site: site})
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
}

// Remove implements DynamicPlacer.
func (p *RingPlacer) Remove(site cloud.SiteID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.members[site] {
		return
	}
	delete(p.members, site)
	kept := p.ring[:0]
	for _, pt := range p.ring {
		if pt.site != site {
			kept = append(kept, pt)
		}
	}
	p.ring = kept
}

// mix64 is a SplitMix64-style finalizer that scatters the virtual-node
// labels (which are short, similar strings) evenly across the 64-bit ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Distribution counts, for a sample of keys, how many each site would own
// under the given placer. It is used to verify placement uniformity.
func Distribution(p Placer, keys []string) map[cloud.SiteID]int {
	out := make(map[cloud.SiteID]int)
	for _, k := range keys {
		out[p.Home(k)]++
	}
	return out
}

// Moved counts how many of the sample keys change homes between two placers
// (e.g. before and after a membership change). The returned fraction is in
// [0, 1]; 0 means no key moved.
func Moved(before, after Placer, keys []string) (count int, fraction float64) {
	if len(keys) == 0 {
		return 0, 0
	}
	for _, k := range keys {
		if before.Home(k) != after.Home(k) {
			count++
		}
	}
	return count, float64(count) / float64(len(keys))
}
