package dht

import (
	"fmt"
	"testing"
	"testing/quick"

	"geomds/internal/cloud"
)

func sites(n int) []cloud.SiteID {
	out := make([]cloud.SiteID, n)
	for i := range out {
		out[i] = cloud.SiteID(i)
	}
	return out
}

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("file-%06d.fits", i)
	}
	return keys
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64("montage/p1.fits") != Hash64("montage/p1.fits") {
		t.Error("Hash64 must be deterministic")
	}
	if Hash64("a") == Hash64("b") {
		t.Error("different keys should (almost surely) hash differently")
	}
}

func TestModuloPlacerEmpty(t *testing.T) {
	p := NewModuloPlacer(nil)
	if got := p.Home("k"); got != cloud.NoSite {
		t.Errorf("Home on empty placer = %v, want NoSite", got)
	}
	if len(p.Sites()) != 0 {
		t.Error("Sites should be empty")
	}
}

func TestModuloPlacerStability(t *testing.T) {
	// Two placers constructed with the same membership in different orders
	// must agree on every placement.
	a := NewModuloPlacer([]cloud.SiteID{2, 0, 3, 1})
	b := NewModuloPlacer([]cloud.SiteID{0, 1, 2, 3})
	for _, k := range sampleKeys(500) {
		if a.Home(k) != b.Home(k) {
			t.Fatalf("placers disagree on %q", k)
		}
	}
}

func TestModuloPlacerAddRemove(t *testing.T) {
	p := NewModuloPlacer(sites(4))
	p.Add(2) // duplicate add is a no-op
	if len(p.Sites()) != 4 {
		t.Fatalf("Sites = %v, want 4 entries", p.Sites())
	}
	p.Remove(2)
	if len(p.Sites()) != 3 {
		t.Fatalf("Sites after remove = %v", p.Sites())
	}
	for _, k := range sampleKeys(200) {
		if p.Home(k) == 2 {
			t.Fatalf("key %q still placed on removed site", k)
		}
	}
	p.Remove(99) // absent: no-op
	if len(p.Sites()) != 3 {
		t.Error("removing an absent site changed membership")
	}
}

func TestModuloPlacerUniformity(t *testing.T) {
	p := NewModuloPlacer(sites(4))
	keys := sampleKeys(8000)
	dist := Distribution(p, keys)
	for s, n := range dist {
		if n < 1600 || n > 2400 {
			t.Errorf("site %d owns %d of 8000 keys; want roughly 2000 (+/-20%%)", s, n)
		}
	}
}

func TestRingPlacerEmpty(t *testing.T) {
	p := NewRingPlacer(nil, 16)
	if got := p.Home("k"); got != cloud.NoSite {
		t.Errorf("Home on empty ring = %v, want NoSite", got)
	}
}

func TestRingPlacerMembership(t *testing.T) {
	p := NewRingPlacer(sites(4), 64)
	got := p.Sites()
	if len(got) != 4 {
		t.Fatalf("Sites = %v", got)
	}
	p.Add(1) // duplicate
	if len(p.Sites()) != 4 {
		t.Error("duplicate add changed membership")
	}
	p.Remove(3)
	if len(p.Sites()) != 3 {
		t.Error("remove failed")
	}
	for _, k := range sampleKeys(500) {
		if p.Home(k) == 3 {
			t.Fatalf("key %q still on removed site", k)
		}
	}
	p.Remove(3) // absent: no-op
}

func TestRingPlacerDefaultVirtualNodes(t *testing.T) {
	p := NewRingPlacer(sites(2), 0)
	if p.replicas != DefaultVirtualNodes {
		t.Errorf("replicas = %d, want %d", p.replicas, DefaultVirtualNodes)
	}
}

func TestRingPlacerUniformity(t *testing.T) {
	p := NewRingPlacer(sites(4), 256)
	keys := sampleKeys(8000)
	dist := Distribution(p, keys)
	for s, n := range dist {
		if n < 1200 || n > 2800 {
			t.Errorf("site %d owns %d of 8000 keys; want roughly 2000 (+/-40%%)", s, n)
		}
	}
}

func TestRingChurnMovesFewKeys(t *testing.T) {
	keys := sampleKeys(5000)
	before := NewRingPlacer(sites(4), 128)
	after := NewRingPlacer(sites(4), 128)
	after.Add(4) // one site joins
	_, frac := Moved(before, after, keys)
	// Consistent hashing should move about 1/5 of the keys; far less than the
	// near-total remapping of modulo hashing.
	if frac > 0.35 {
		t.Errorf("ring churn moved %.0f%% of keys, want <= 35%%", frac*100)
	}

	modBefore := NewModuloPlacer(sites(4))
	modAfter := NewModuloPlacer(sites(5))
	_, modFrac := Moved(modBefore, modAfter, keys)
	if modFrac <= frac {
		t.Errorf("modulo churn (%.2f) should exceed ring churn (%.2f)", modFrac, frac)
	}
}

// TestRingMembershipChangeBounds pins down the §VIII "server volatility"
// claim the shard router relies on: when a member joins a consistent-hash
// ring, only the keys the newcomer now owns move — survivors never shuffle
// keys among themselves — and the moved fraction stays near the ideal 1/(n+1).
// Symmetrically, when a member leaves, exactly the keys it owned move.
func TestRingMembershipChangeBounds(t *testing.T) {
	keys := sampleKeys(20000)
	for _, n := range []int{2, 4, 8} {
		before := NewRingPlacer(sites(n), 128)
		after := NewRingPlacer(sites(n), 128)
		joiner := cloud.SiteID(n)
		after.Add(joiner)

		moved, frac := Moved(before, after, keys)
		ideal := 1.0 / float64(n+1)
		if frac < ideal/2 || frac > 2*ideal {
			t.Errorf("n=%d: join moved %.1f%% of keys; want within [%.1f%%, %.1f%%] of the ideal %.1f%%",
				n, frac*100, ideal*50, ideal*200, ideal*100)
		}
		// Every moved key must have moved *to* the joiner.
		shuffled := 0
		for _, k := range keys {
			if b, a := before.Home(k), after.Home(k); b != a && a != joiner {
				shuffled++
			}
		}
		if shuffled != 0 {
			t.Errorf("n=%d: join shuffled %d of %d moved keys between surviving members", n, shuffled, moved)
		}

		// Leave: the joiner withdraws again; exactly its keys move back and
		// the survivors recover the original placement.
		after.Remove(joiner)
		if backMoved, backFrac := Moved(before, after, keys); backMoved != 0 {
			t.Errorf("n=%d: leave did not restore the original placement (%.1f%% still moved)", n, backFrac*100)
		}

		// Leave from the original ring: only the leaver's keys move.
		leaver := cloud.SiteID(0)
		owned := Distribution(before, keys)[leaver]
		shrunk := NewRingPlacer(sites(n), 128)
		shrunk.Remove(leaver)
		leaveMoved, _ := Moved(before, shrunk, keys)
		if leaveMoved != owned {
			t.Errorf("n=%d: leave moved %d keys, want exactly the %d the leaver owned", n, leaveMoved, owned)
		}
	}
}

func TestMovedEmptyKeys(t *testing.T) {
	p := NewModuloPlacer(sites(2))
	n, frac := Moved(p, p, nil)
	if n != 0 || frac != 0 {
		t.Error("Moved on empty keys should be zero")
	}
}

func TestMovedIdenticalPlacers(t *testing.T) {
	p := NewRingPlacer(sites(4), 64)
	q := NewRingPlacer(sites(4), 64)
	n, frac := Moved(p, q, sampleKeys(1000))
	if n != 0 || frac != 0 {
		t.Errorf("identical placers moved %d keys", n)
	}
}

// Property: both placers always return a member site for any key when the
// membership is non-empty, and the same key always maps to the same site.
func TestPlacerTotalityProperty(t *testing.T) {
	f := func(key string, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		members := make(map[cloud.SiteID]bool)
		for _, s := range sites(n) {
			members[s] = true
		}
		mod := NewModuloPlacer(sites(n))
		ring := NewRingPlacer(sites(n), 32)
		hm1, hm2 := mod.Home(key), mod.Home(key)
		hr1, hr2 := ring.Home(key), ring.Home(key)
		return hm1 == hm2 && hr1 == hr2 && members[hm1] && members[hr1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: removing a site never leaves placements pointing at it.
func TestRemovePlacementProperty(t *testing.T) {
	f := func(keys []string, removeRaw uint8) bool {
		remove := cloud.SiteID(removeRaw % 4)
		mod := NewModuloPlacer(sites(4))
		ring := NewRingPlacer(sites(4), 32)
		mod.Remove(remove)
		ring.Remove(remove)
		for _, k := range keys {
			if mod.Home(k) == remove || ring.Home(k) == remove {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHomesPrimaryMatchesHome pins that the successor list starts at the
// key's primary: Homes(k, 1) is exactly [Home(k)] on both placers.
func TestHomesPrimaryMatchesHome(t *testing.T) {
	mod := NewModuloPlacer(sites(5))
	ring := NewRingPlacer(sites(5), 32)
	for _, key := range sampleKeys(500) {
		if got := mod.Homes(key, 1); len(got) != 1 || got[0] != mod.Home(key) {
			t.Fatalf("modulo Homes(%q, 1) = %v, Home = %d", key, got, mod.Home(key))
		}
		if got := ring.Homes(key, 1); len(got) != 1 || got[0] != ring.Home(key) {
			t.Fatalf("ring Homes(%q, 1) = %v, Home = %d", key, got, ring.Home(key))
		}
	}
}

// TestHomesDistinctAndBounded pins the successor-list contract on both
// placers: no site appears twice, the length is min(n, membership), and
// asking for more sites than exist returns every member exactly once.
func TestHomesDistinctAndBounded(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Placer
	}{
		{"modulo", NewModuloPlacer(sites(4))},
		{"ring", NewRingPlacer(sites(4), 32)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, key := range sampleKeys(1000) {
				for n := 1; n <= 6; n++ {
					homes := tc.p.Homes(key, n)
					wantLen := n
					if wantLen > 4 {
						wantLen = 4
					}
					if len(homes) != wantLen {
						t.Fatalf("Homes(%q, %d): got %d sites %v, want %d", key, n, len(homes), homes, wantLen)
					}
					seen := make(map[cloud.SiteID]bool, len(homes))
					for _, s := range homes {
						if seen[s] {
							t.Fatalf("Homes(%q, %d) places two replicas on site %d: %v", key, n, s, homes)
						}
						seen[s] = true
					}
					// The successor list is a prefix-stable extension: growing n
					// never reorders the earlier replicas.
					if prev := tc.p.Homes(key, n-1); len(prev) > 0 {
						for i, s := range prev {
							if homes[i] != s {
								t.Fatalf("Homes(%q, %d) reordered prefix: %v vs %v", key, n, prev, homes)
							}
						}
					}
				}
			}
		})
	}
}

// TestRingHomesSkipsAdjacentVirtualNodes is the regression test for the
// duplicate-shard bug: when two virtual nodes of the same site sit adjacent
// on the ring, a naive successor walk would return that site twice and a
// 2-replica placement would silently store both "replicas" on one shard. The
// test first proves adjacency actually occurs in this configuration (so the
// dedup is exercised, not vacuously true), then checks Homes never repeats a
// site for any sampled key.
func TestRingHomesSkipsAdjacentVirtualNodes(t *testing.T) {
	ring := NewRingPlacer(sites(3), DefaultVirtualNodes)
	adjacent := 0
	for i := range ring.ring {
		if ring.ring[i].site == ring.ring[(i+1)%len(ring.ring)].site {
			adjacent++
		}
	}
	if adjacent == 0 {
		t.Fatal("test configuration has no adjacent virtual nodes of one site; the dedup would be untested")
	}
	for _, key := range sampleKeys(5000) {
		homes := ring.Homes(key, 2)
		if len(homes) != 2 {
			t.Fatalf("Homes(%q, 2): got %v", key, homes)
		}
		if homes[0] == homes[1] {
			t.Fatalf("Homes(%q, 2) placed both replicas on site %d", key, homes[0])
		}
	}
}

// TestHomesMembershipChangeKeepsReplicasDistinct pins that the successor
// list stays duplicate-free through joins and leaves.
func TestHomesMembershipChangeKeepsReplicasDistinct(t *testing.T) {
	ring := NewRingPlacer(sites(4), 64)
	check := func(members int) {
		for _, key := range sampleKeys(300) {
			homes := ring.Homes(key, 2)
			want := 2
			if members < want {
				want = members
			}
			if len(homes) != want {
				t.Fatalf("Homes(%q, 2) with %d members: got %v", key, members, homes)
			}
			if len(homes) == 2 && homes[0] == homes[1] {
				t.Fatalf("Homes(%q, 2) duplicated site %d after membership change", key, homes[0])
			}
		}
	}
	check(4)
	ring.Remove(2)
	check(3)
	ring.Remove(0)
	check(2)
	ring.Remove(1)
	check(1)
	ring.Add(7)
	check(2)
}
