// Package workloads provides the workloads used in the paper's evaluation:
// the synthetic concurrent reader/writer metadata benchmark (Figs. 5-8) and
// DAG generators for the two real-life applications, BuzzFlow and Montage
// (Fig. 9), parameterized by the Table I scenarios (Fig. 10).
package workloads

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"geomds/internal/cloud"
	"geomds/internal/core"
	"geomds/internal/latency"
	"geomds/internal/limits"
	"geomds/internal/metrics"
	"geomds/internal/registry"
)

// SyntheticConfig parameterizes the synthetic metadata benchmark of §VI-B:
// half of the nodes act as writers posting consecutive entries to the
// registry, the other half act as readers getting random entries from it.
type SyntheticConfig struct {
	// OpsPerNode is the number of metadata operations each node performs.
	OpsPerNode int
	// EntrySize is the modelled size of the files whose metadata is posted.
	// The paper uses empty files to isolate metadata costs; 0 reproduces that.
	EntrySize int64
	// ThinkTime is an optional simulated pause between a node's operations.
	ThinkTime time.Duration
	// ReadRetryInterval is the simulated back-off when a reader requests an
	// entry that is not visible yet (default 250 ms).
	ReadRetryInterval time.Duration
	// MaxReadRetries bounds the polls per read before the reader gives up and
	// counts the operation as a miss (default 2). A read that misses still
	// counts as a completed metadata operation — the paper's readers request
	// random entries and a not-found answer is a valid answer.
	MaxReadRetries int
	// Seed makes the readers' random choices reproducible.
	Seed int64
	// Prefix namespaces entry names so repeated runs do not collide.
	Prefix string
	// KeyDist shapes which entries the readers request. The zero value keeps
	// the paper's uniform draws; Zipfian and hot-spot skews concentrate reads
	// on a small set of hot entries (tail-latency scenarios).
	KeyDist KeyDist
	// Tenants spreads the nodes across this many tenants: node n issues its
	// operations as "tenant-<n mod Tenants>" (via limits.WithTenant), so
	// limit-enforcing deployments see a multi-tenant workload. 0 leaves
	// operations untagged — they land on the default tenant.
	Tenants int
}

// withDefaults fills unset fields.
func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.OpsPerNode <= 0 {
		c.OpsPerNode = 100
	}
	if c.ReadRetryInterval <= 0 {
		c.ReadRetryInterval = 250 * time.Millisecond
	}
	if c.MaxReadRetries < 0 {
		c.MaxReadRetries = 0
	} else if c.MaxReadRetries == 0 {
		c.MaxReadRetries = 2
	}
	if c.Prefix == "" {
		c.Prefix = "bench"
	}
	return c
}

// SyntheticResult summarizes one synthetic benchmark run.
type SyntheticResult struct {
	// Strategy is the metadata strategy exercised.
	Strategy core.StrategyKind
	// Nodes is the number of execution nodes.
	Nodes int
	// OpsPerNode is the configured per-node operation count.
	OpsPerNode int
	// TotalOps is the number of completed operations across all nodes.
	TotalOps int
	// NodeTimes holds each node's completion time (simulated).
	NodeTimes []time.Duration
	// Makespan is the completion time of the slowest node.
	Makespan time.Duration
	// MeanNodeTime is the average node completion time — the metric of Fig. 5.
	MeanNodeTime time.Duration
	// Throughput is TotalOps divided by the makespan — the metric of Fig. 7.
	Throughput float64
	// Retries counts reader polls that found their entry not yet visible.
	Retries int
	// Misses counts reads that never found their entry within the retry
	// budget (still counted as completed operations).
	Misses int
}

// RunSynthetic executes the synthetic benchmark: the deployment's nodes are
// split into writers (even IDs) and readers (odd IDs); writers post
// consecutive entries while readers get random ones, mirroring §VI-B. The
// optional progress tracker receives one event per completed operation. The
// context bounds the whole run: cancellation aborts every node's loop at its
// next metadata operation or simulated wait.
func RunSynthetic(ctx context.Context, svc core.MetadataService, dep *cloud.Deployment, lat *latency.Model,
	cfg SyntheticConfig, progress *metrics.Progress) (SyntheticResult, error) {

	cfg = cfg.withDefaults()
	nodes := dep.Nodes()
	if len(nodes) < 2 {
		return SyntheticResult{}, fmt.Errorf("workloads: synthetic benchmark needs at least 2 nodes, have %d", len(nodes))
	}

	var writers, readers []cloud.Node
	for _, n := range nodes {
		if int(n.ID)%2 == 0 {
			writers = append(writers, n)
		} else {
			readers = append(readers, n)
		}
	}

	res := SyntheticResult{
		Strategy:   svc.Kind(),
		Nodes:      len(nodes),
		OpsPerNode: cfg.OpsPerNode,
		NodeTimes:  make([]time.Duration, len(nodes)),
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(node cloud.NodeID, elapsed time.Duration, ops, retries, misses int, err error) {
		mu.Lock()
		defer mu.Unlock()
		res.NodeTimes[node] = elapsed
		res.TotalOps += ops
		res.Retries += retries
		res.Misses += misses
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	start := time.Now()
	// Writers post consecutive entries file-<writer>-<i>.
	for wi, node := range writers {
		wg.Add(1)
		go func(wi int, node cloud.Node) {
			defer wg.Done()
			ctx := tenantCtx(ctx, cfg.Tenants, node.ID)
			nodeStart := time.Now()
			ops := 0
			var err error
			for i := 0; i < cfg.OpsPerNode; i++ {
				name := entryName(cfg.Prefix, wi, i)
				entry := registry.NewEntry(name, cfg.EntrySize, fmt.Sprintf("writer-%d", wi),
					registry.Location{Site: node.Site, Node: node.ID})
				if _, cerr := svc.Create(ctx, node.Site, entry); cerr != nil && !errors.Is(cerr, core.ErrExists) {
					err = fmt.Errorf("writer %d op %d: %w", wi, i, cerr)
					break
				}
				ops++
				if progress != nil {
					progress.Done()
				}
				if cfg.ThinkTime > 0 {
					if err = lat.InjectDuration(ctx, cfg.ThinkTime); err != nil {
						break
					}
				}
			}
			record(node.ID, lat.ToSimulated(time.Since(nodeStart)), ops, 0, 0, err)
		}(wi, node)
	}

	// Readers get random entries among those that should already exist. One
	// read-only sampler is shared across readers; each reader draws from it
	// with its own seeded rand source, so runs stay deterministic per seed.
	sampler := NewKeySampler(cfg.KeyDist, len(writers)*cfg.OpsPerNode)
	for ri, node := range readers {
		wg.Add(1)
		go func(ri int, node cloud.Node) {
			defer wg.Done()
			ctx := tenantCtx(ctx, cfg.Tenants, node.ID)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ri)*7919))
			nodeStart := time.Now()
			ops, retries, misses := 0, 0, 0
			var err error
			for i := 0; i < cfg.OpsPerNode; i++ {
				// Target an entry a writer should have posted by now: writer
				// chosen uniformly, index no later than this reader's own
				// progress (writers and readers proceed at similar paces).
				maxIdx := i
				if maxIdx >= cfg.OpsPerNode {
					maxIdx = cfg.OpsPerNode - 1
				}
				var w, idx int
				if cfg.KeyDist.Kind == KeyUniform {
					w = rng.Intn(len(writers))
					if maxIdx > 0 {
						idx = rng.Intn(maxIdx + 1)
					}
				} else {
					// Rank the currently visible keyspace so that low ranks —
					// the hot keys — are the entries every writer posted
					// first: rank r maps to writer r%W, index r/W.
					rank := sampler.Rank(rng, len(writers)*(maxIdx+1))
					w = rank % len(writers)
					idx = rank / len(writers)
				}
				name := entryName(cfg.Prefix, w, idx)
				found := false
				for attempt := 0; attempt <= cfg.MaxReadRetries; attempt++ {
					_, lerr := svc.Lookup(ctx, node.Site, name)
					if lerr == nil {
						found = true
						break
					}
					if !errors.Is(lerr, core.ErrNotFound) {
						err = fmt.Errorf("reader %d op %d: %w", ri, i, lerr)
						break
					}
					retries++
					if err = lat.InjectDuration(ctx, cfg.ReadRetryInterval); err != nil {
						break
					}
				}
				if err != nil {
					break
				}
				if !found {
					misses++
				}
				ops++
				if progress != nil {
					progress.Done()
				}
				if cfg.ThinkTime > 0 {
					if err = lat.InjectDuration(ctx, cfg.ThinkTime); err != nil {
						break
					}
				}
			}
			record(node.ID, lat.ToSimulated(time.Since(nodeStart)), ops, retries, misses, err)
		}(ri, node)
	}

	wg.Wait()
	res.Makespan = lat.ToSimulated(time.Since(start))
	res.MeanNodeTime = metrics.Mean(res.NodeTimes)
	res.Throughput = metrics.Throughput(res.TotalOps, res.Makespan)
	return res, firstErr
}

// tenantCtx tags ctx with the node's tenant when the workload is
// multi-tenant; with tenants <= 0 every node stays on the default tenant.
func tenantCtx(ctx context.Context, tenants int, node cloud.NodeID) context.Context {
	if tenants <= 0 {
		return ctx
	}
	return limits.WithTenant(ctx, fmt.Sprintf("tenant-%d", int(node)%tenants))
}

// entryName builds the deterministic name of the i-th entry posted by a
// writer, shared between writers and readers.
func entryName(prefix string, writer, i int) string {
	return fmt.Sprintf("%s/w%03d/file%06d", prefix, writer, i)
}

// ExpectedTotalOps returns the aggregate operation count of a synthetic run
// (the grey bars of Fig. 5).
func ExpectedTotalOps(nodes, opsPerNode int) int { return nodes * opsPerNode }
